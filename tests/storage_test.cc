// Unit tests for storage (Table/ColumnData), stats building, the catalog
// registry, the schema layer, zone maps, the kernel layer, and the flat
// hash index.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "exec/cost_ledger.h"
#include "exec/kernels.h"
#include "storage/hash_index.h"
#include "storage/stats_builder.h"
#include "storage/table.h"

namespace robustqp {
namespace {

std::shared_ptr<Table> MakeSmallTable() {
  TableSchema schema("t", {{"k", DataType::kInt64}, {"v", DataType::kDouble}});
  auto table = std::make_shared<Table>(schema);
  for (int64_t i = 0; i < 10; ++i) {
    table->column(0).AppendInt(i % 5);
    table->column(1).AppendDouble(static_cast<double>(i) * 1.5);
  }
  EXPECT_TRUE(table->Finalize().ok());
  return table;
}

TEST(SchemaTest, FindColumn) {
  TableSchema schema("t", {{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(schema.FindColumn("a"), 0);
  EXPECT_EQ(schema.FindColumn("b"), 1);
  EXPECT_EQ(schema.FindColumn("c"), -1);
}

TEST(SchemaTest, DataTypeNames) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "DOUBLE");
}

TEST(TableTest, FinalizeCountsRows) {
  auto table = MakeSmallTable();
  EXPECT_EQ(table->num_rows(), 10);
  EXPECT_EQ(table->column(0).GetInt(7), 2);
  EXPECT_DOUBLE_EQ(table->column(1).GetDouble(2), 3.0);
  EXPECT_DOUBLE_EQ(table->column(0).GetNumeric(7), 2.0);
}

TEST(TableTest, RaggedColumnsRejected) {
  TableSchema schema("t", {{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Table table(schema);
  table.column(0).AppendInt(1);
  EXPECT_FALSE(table.Finalize().ok());
}

TEST(StatsBuilderTest, MinMaxDistinct) {
  auto table = MakeSmallTable();
  auto stats = ComputeTableStats(*table);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].min, 0.0);
  EXPECT_DOUBLE_EQ(stats[0].max, 4.0);
  EXPECT_EQ(stats[0].distinct_count, 5);
  EXPECT_EQ(stats[0].row_count, 10);
  EXPECT_EQ(stats[1].distinct_count, 10);
}

TEST(StatsBuilderTest, HistogramEstimatesLessEq) {
  TableSchema schema("t", {{"x", DataType::kInt64}});
  auto table = std::make_shared<Table>(schema);
  for (int64_t i = 1; i <= 1000; ++i) table->column(0).AppendInt(i);
  ASSERT_TRUE(table->Finalize().ok());
  auto stats = ComputeTableStats(*table);
  // Uniform 1..1000: P(x <= 250) ~ 0.25.
  EXPECT_NEAR(stats[0].histogram.EstimateLessEq(250), 0.25, 0.05);
  EXPECT_NEAR(stats[0].histogram.EstimateLessEq(900), 0.90, 0.05);
  EXPECT_DOUBLE_EQ(stats[0].histogram.EstimateLessEq(1000), 1.0);
  EXPECT_DOUBLE_EQ(stats[0].histogram.EstimateLessEq(2000), 1.0);
}

TEST(StatsBuilderTest, EmptyHistogramSafe) {
  EquiDepthHistogram h;
  EXPECT_DOUBLE_EQ(h.EstimateLessEq(5.0), 0.0);
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  auto table = MakeSmallTable();
  auto stats = ComputeTableStats(*table);
  ASSERT_TRUE(catalog.AddTable(table, stats).ok());
  EXPECT_NE(catalog.FindTable("t"), nullptr);
  EXPECT_EQ(catalog.FindTable("nope"), nullptr);
  EXPECT_EQ(catalog.RowCount("t"), 10);
  EXPECT_EQ(catalog.RowCount("nope"), 0);
  const ColumnStats* cs = catalog.FindColumnStats("t", "k");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->distinct_count, 5);
  EXPECT_EQ(catalog.FindColumnStats("t", "zz"), nullptr);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  auto table = MakeSmallTable();
  auto stats = ComputeTableStats(*table);
  ASSERT_TRUE(catalog.AddTable(table, stats).ok());
  EXPECT_FALSE(catalog.AddTable(table, stats).ok());
}

TEST(CatalogTest, StatsArityChecked) {
  Catalog catalog;
  auto table = MakeSmallTable();
  EXPECT_FALSE(catalog.AddTable(table, {}).ok());
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  auto t1 = MakeSmallTable();
  ASSERT_TRUE(catalog.AddTable(t1, ComputeTableStats(*t1)).ok());
  auto names = catalog.TableNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "t");
}

TEST(ZoneMapTest, BlocksCoverIntColumn) {
  TableSchema schema("t", {{"x", DataType::kInt64}});
  Table table(schema);
  // Two full blocks plus a 10-row tail; values ascend so block summaries
  // are disjoint ranges.
  const int64_t n = 2 * kZoneBlockRows + 10;
  for (int64_t i = 0; i < n; ++i) table.column(0).AppendInt(i);
  ASSERT_TRUE(table.Finalize().ok());
  const ZoneMap& z = table.column(0).zones();
  ASSERT_EQ(z.num_blocks(), 3);
  EXPECT_DOUBLE_EQ(z.min[0], 0.0);
  EXPECT_DOUBLE_EQ(z.max[0], static_cast<double>(kZoneBlockRows - 1));
  EXPECT_DOUBLE_EQ(z.min[2], static_cast<double>(2 * kZoneBlockRows));
  EXPECT_DOUBLE_EQ(z.max[2], static_cast<double>(n - 1));
}

TEST(ZoneMapTest, NanRowsTrackedNotSummarized) {
  TableSchema schema("t", {{"x", DataType::kDouble}});
  Table table(schema);
  table.column(0).AppendDouble(1.0);
  table.column(0).AppendDouble(std::nan(""));
  table.column(0).AppendDouble(3.0);
  ASSERT_TRUE(table.Finalize().ok());
  const ZoneMap& z = table.column(0).zones();
  ASSERT_EQ(z.num_blocks(), 1);
  EXPECT_DOUBLE_EQ(z.min[0], 1.0);
  EXPECT_DOUBLE_EQ(z.max[0], 3.0);
  EXPECT_EQ(z.has_nan[0], 1);
}

TEST(ZoneMapTest, AllNanBlockIsUnsatisfiable) {
  TableSchema schema("t", {{"x", DataType::kDouble}});
  Table table(schema);
  table.column(0).AppendDouble(std::nan(""));
  table.column(0).AppendDouble(std::nan(""));
  ASSERT_TRUE(table.Finalize().ok());
  const ColumnData& col = table.column(0);
  EXPECT_GT(col.zones().min[0], col.zones().max[0]);
  EXPECT_EQ(kernels::ClassifyZones(col, CompareOp::kLt, 1e30, 0, 2),
            kernels::ZoneMatch::kNone);
}

TEST(ClassifyZonesTest, ProvesNoneAllSome) {
  using kernels::ClassifyZones;
  using kernels::ZoneMatch;
  TableSchema schema("t", {{"x", DataType::kInt64}});
  Table table(schema);
  const int64_t n = 2 * kZoneBlockRows;
  for (int64_t i = 0; i < n; ++i) table.column(0).AppendInt(i);
  ASSERT_TRUE(table.Finalize().ok());
  const ColumnData& col = table.column(0);
  // Block 0 holds [0, 4095], block 1 holds [4096, 8191].
  EXPECT_EQ(ClassifyZones(col, CompareOp::kLt, 100.0, kZoneBlockRows, n),
            ZoneMatch::kNone);
  EXPECT_EQ(ClassifyZones(col, CompareOp::kLt, 1e9, 0, n), ZoneMatch::kAll);
  EXPECT_EQ(ClassifyZones(col, CompareOp::kLt, 100.0, 0, kZoneBlockRows),
            ZoneMatch::kSome);
  // A range spanning a kNone block and a kAll block is kSome.
  EXPECT_EQ(ClassifyZones(col, CompareOp::kGe,
                          static_cast<double>(kZoneBlockRows), 0, n),
            ZoneMatch::kSome);
  // Boundary inclusivity per operator.
  EXPECT_EQ(ClassifyZones(col, CompareOp::kLe, -1.0, 0, kZoneBlockRows),
            ZoneMatch::kNone);
  EXPECT_EQ(ClassifyZones(col, CompareOp::kLe,
                          static_cast<double>(kZoneBlockRows - 1), 0,
                          kZoneBlockRows),
            ZoneMatch::kAll);
  EXPECT_EQ(ClassifyZones(col, CompareOp::kEq, 0.5, 0, kZoneBlockRows),
            ZoneMatch::kSome);  // inside [min,max] but between values
  EXPECT_EQ(ClassifyZones(col, CompareOp::kEq, -3.0, 0, kZoneBlockRows),
            ZoneMatch::kNone);
  // NaN literal satisfies nothing.
  EXPECT_EQ(ClassifyZones(col, CompareOp::kEq, std::nan(""), 0, n),
            ZoneMatch::kNone);
  // Rows past the zone map (unfinalized view) stay kSome.
  Table raw(schema);
  raw.column(0).AppendInt(7);
  EXPECT_EQ(ClassifyZones(raw.column(0), CompareOp::kEq, 7.0, 0, 1),
            ZoneMatch::kSome);
}

TEST(FilterKernelTest, DenseAndSparseAgree) {
  TableSchema schema("t", {{"x", DataType::kInt64}});
  Table table(schema);
  for (int64_t i = 0; i < 5000; ++i) table.column(0).AppendInt(i % 97);
  ASSERT_TRUE(table.Finalize().ok());
  const ColumnData& col = table.column(0);
  kernels::FilterScratch fsc;
  std::vector<int64_t> dense, sparse;
  const int64_t nd = kernels::FilterRange(col, CompareOp::kLt, 40.0, 100,
                                          4900, 0.9, &dense, &fsc);
  const int64_t ns = kernels::FilterRange(col, CompareOp::kLt, 40.0, 100,
                                          4900, 0.01, &sparse, &fsc);
  EXPECT_EQ(nd, ns);
  EXPECT_EQ(dense, sparse);
  ASSERT_GT(nd, 0);
  for (int64_t r : dense) EXPECT_LT(col.GetInt(r), 40);
}

TEST(FilterKernelTest, RefineCompactsInPlace) {
  TableSchema schema("t", {{"x", DataType::kDouble}});
  Table table(schema);
  const double inf = std::numeric_limits<double>::infinity();
  const double vals[] = {1.0, std::nan(""), -inf, 5.0, inf, 2.0};
  for (double v : vals) table.column(0).AppendDouble(v);
  ASSERT_TRUE(table.Finalize().ok());
  std::vector<int64_t> sel = {0, 1, 2, 3, 4, 5};
  // NaN fails every comparison; -inf passes, +inf fails.
  EXPECT_EQ(kernels::FilterRefine(table.column(0), CompareOp::kLe, 5.0, &sel),
            4);
  EXPECT_EQ(sel, (std::vector<int64_t>{0, 2, 3, 5}));
}

TEST(FlatJoinTableTest, FindAndFindBatchAgree) {
  kernels::FlatJoinTable ht;
  ht.Init(1, 1);
  for (int i = 0; i < 500; ++i) {
    const double k = static_cast<double>(i * 3);
    const double p = static_cast<double>(i);
    ht.Insert(&k, &p);
    ht.Insert(&k, &p);  // two entries per key: chains of length 2
  }
  EXPECT_EQ(ht.num_keys(), 500);
  std::vector<double> probes;
  for (int i = -5; i < 1505; ++i) probes.push_back(static_cast<double>(i));
  probes.push_back(std::nan(""));
  probes.push_back(-0.0);  // must hash/compare equal to key 0.0
  std::vector<int64_t> batch(probes.size());
  std::vector<uint64_t> hashes;
  ht.FindBatch(probes.data(), static_cast<int64_t>(probes.size()),
               batch.data(), &hashes);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(batch[i], ht.Find(&probes[i])) << "probe " << probes[i];
  }
  const double miss = std::nan("");
  EXPECT_EQ(ht.Find(&miss), -1);
  const double neg_zero = -0.0;
  const int64_t u = ht.Find(&neg_zero);
  ASSERT_GE(u, 0);
  EXPECT_EQ(ht.ChainLen(u), 2);
}

TEST(HashIndexTest, FlatLookupSpansAscending) {
  TableSchema schema("t", {{"k", DataType::kInt64}});
  auto table = std::make_shared<Table>(schema);
  // Keys 0..9 repeated 100 times: each key owns 100 ascending row ids.
  for (int64_t r = 0; r < 1000; ++r) table->column(0).AppendInt(r % 10);
  ASSERT_TRUE(table->Finalize().ok());
  HashIndex idx(*table, 0);
  EXPECT_EQ(idx.distinct_keys(), 10);
  const RowIdSpan rows = idx.Lookup(7);
  ASSERT_EQ(rows.size(), 100);
  for (int64_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], 7 + i * 10);
  }
  EXPECT_TRUE(idx.Lookup(10).empty());
  EXPECT_TRUE(idx.Lookup(-1).empty());
}

TEST(HashIndexTest, NegativeAndSparseKeys) {
  TableSchema schema("t", {{"k", DataType::kInt64}});
  auto table = std::make_shared<Table>(schema);
  const int64_t keys[] = {-1000000007, 0, 42, -1, 1ll << 40, 42};
  for (int64_t k : keys) table->column(0).AppendInt(k);
  ASSERT_TRUE(table->Finalize().ok());
  HashIndex idx(*table, 0);
  EXPECT_EQ(idx.distinct_keys(), 5);
  EXPECT_EQ(idx.Lookup(42).size(), 2);
  EXPECT_EQ(idx.Lookup(42)[0], 2);
  EXPECT_EQ(idx.Lookup(42)[1], 5);
  EXPECT_EQ(idx.Lookup(-1000000007).size(), 1);
  EXPECT_EQ(idx.Lookup(1ll << 40)[0], 4);
  EXPECT_TRUE(idx.Lookup(43).empty());
}

TEST(EventCountTest, SaturatesInsteadOfWrapping) {
  const int64_t max = std::numeric_limits<int64_t>::max();
  EventCount c;
  c += max - 1;
  EXPECT_EQ(static_cast<int64_t>(c), max - 1);
  ++c;
  EXPECT_EQ(static_cast<int64_t>(c), max);
#ifdef NDEBUG
  // Release builds clamp; debug builds assert (covered by the sanitizer
  // jobs compiling with assertions on, where this would abort).
  c += 1000;
  EXPECT_EQ(static_cast<int64_t>(c), max);
#endif
}

}  // namespace
}  // namespace robustqp
