// Unit tests for storage (Table/ColumnData), stats building, the catalog
// registry, and the schema layer.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "storage/stats_builder.h"
#include "storage/table.h"

namespace robustqp {
namespace {

std::shared_ptr<Table> MakeSmallTable() {
  TableSchema schema("t", {{"k", DataType::kInt64}, {"v", DataType::kDouble}});
  auto table = std::make_shared<Table>(schema);
  for (int64_t i = 0; i < 10; ++i) {
    table->column(0).AppendInt(i % 5);
    table->column(1).AppendDouble(static_cast<double>(i) * 1.5);
  }
  EXPECT_TRUE(table->Finalize().ok());
  return table;
}

TEST(SchemaTest, FindColumn) {
  TableSchema schema("t", {{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(schema.FindColumn("a"), 0);
  EXPECT_EQ(schema.FindColumn("b"), 1);
  EXPECT_EQ(schema.FindColumn("c"), -1);
}

TEST(SchemaTest, DataTypeNames) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "DOUBLE");
}

TEST(TableTest, FinalizeCountsRows) {
  auto table = MakeSmallTable();
  EXPECT_EQ(table->num_rows(), 10);
  EXPECT_EQ(table->column(0).GetInt(7), 2);
  EXPECT_DOUBLE_EQ(table->column(1).GetDouble(2), 3.0);
  EXPECT_DOUBLE_EQ(table->column(0).GetNumeric(7), 2.0);
}

TEST(TableTest, RaggedColumnsRejected) {
  TableSchema schema("t", {{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  Table table(schema);
  table.column(0).AppendInt(1);
  EXPECT_FALSE(table.Finalize().ok());
}

TEST(StatsBuilderTest, MinMaxDistinct) {
  auto table = MakeSmallTable();
  auto stats = ComputeTableStats(*table);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].min, 0.0);
  EXPECT_DOUBLE_EQ(stats[0].max, 4.0);
  EXPECT_EQ(stats[0].distinct_count, 5);
  EXPECT_EQ(stats[0].row_count, 10);
  EXPECT_EQ(stats[1].distinct_count, 10);
}

TEST(StatsBuilderTest, HistogramEstimatesLessEq) {
  TableSchema schema("t", {{"x", DataType::kInt64}});
  auto table = std::make_shared<Table>(schema);
  for (int64_t i = 1; i <= 1000; ++i) table->column(0).AppendInt(i);
  ASSERT_TRUE(table->Finalize().ok());
  auto stats = ComputeTableStats(*table);
  // Uniform 1..1000: P(x <= 250) ~ 0.25.
  EXPECT_NEAR(stats[0].histogram.EstimateLessEq(250), 0.25, 0.05);
  EXPECT_NEAR(stats[0].histogram.EstimateLessEq(900), 0.90, 0.05);
  EXPECT_DOUBLE_EQ(stats[0].histogram.EstimateLessEq(1000), 1.0);
  EXPECT_DOUBLE_EQ(stats[0].histogram.EstimateLessEq(2000), 1.0);
}

TEST(StatsBuilderTest, EmptyHistogramSafe) {
  EquiDepthHistogram h;
  EXPECT_DOUBLE_EQ(h.EstimateLessEq(5.0), 0.0);
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  auto table = MakeSmallTable();
  auto stats = ComputeTableStats(*table);
  ASSERT_TRUE(catalog.AddTable(table, stats).ok());
  EXPECT_NE(catalog.FindTable("t"), nullptr);
  EXPECT_EQ(catalog.FindTable("nope"), nullptr);
  EXPECT_EQ(catalog.RowCount("t"), 10);
  EXPECT_EQ(catalog.RowCount("nope"), 0);
  const ColumnStats* cs = catalog.FindColumnStats("t", "k");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->distinct_count, 5);
  EXPECT_EQ(catalog.FindColumnStats("t", "zz"), nullptr);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  auto table = MakeSmallTable();
  auto stats = ComputeTableStats(*table);
  ASSERT_TRUE(catalog.AddTable(table, stats).ok());
  EXPECT_FALSE(catalog.AddTable(table, stats).ok());
}

TEST(CatalogTest, StatsArityChecked) {
  Catalog catalog;
  auto table = MakeSmallTable();
  EXPECT_FALSE(catalog.AddTable(table, {}).ok());
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  auto t1 = MakeSmallTable();
  ASSERT_TRUE(catalog.AddTable(t1, ComputeTableStats(*t1)).ok());
  auto names = catalog.TableNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "t");
}

}  // namespace
}  // namespace robustqp
