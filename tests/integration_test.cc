// End-to-end integration: the discovery algorithms driving the *real*
// Volcano executor (EngineOracle) on stored synthetic data — the paper's
// Section 6.3 wall-clock modality — plus cross-checks between simulated
// and engine-backed discovery.

#include <gtest/gtest.h>

#include <memory>

#include "core/alignedbound.h"
#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "exec/executor.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

class EngineIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeTinyCatalog().release();
    query_ = new Query(MakeStarQuery(2));
    Ess::Config config;
    config.points_per_dim = 16;
    config.min_sel = 1e-4;
    ess_ = Ess::Build(*catalog_, *query_, config).release();
    executor_ = new Executor(catalog_, config.cost_model);
  }

  static Catalog* catalog_;
  static Query* query_;
  static Ess* ess_;
  static Executor* executor_;
};

Catalog* EngineIntegrationTest::catalog_ = nullptr;
Query* EngineIntegrationTest::query_ = nullptr;
Ess* EngineIntegrationTest::ess_ = nullptr;
Executor* EngineIntegrationTest::executor_ = nullptr;

TEST_F(EngineIntegrationTest, SpillBoundCompletesOnRealData) {
  SpillBound sb(ess_);
  EngineOracle oracle(executor_);
  const DiscoveryResult r = sb.Run(&oracle);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.total_cost, 0.0);
  EXPECT_GE(r.num_executions(), 1);
}

TEST_F(EngineIntegrationTest, SpillBoundLearnsTrueSelectivities) {
  // The tiny catalog's joins are FK joins, so the observed selectivities
  // sit near 1/NDV — but only near: the zipf-skewed foreign keys interact
  // with the dimension filters (a mild, realistic violation of the
  // selectivity-independence assumption), so we assert a band rather than
  // exact equality.
  SpillBound sb(ess_);
  EngineOracle oracle(executor_);
  const DiscoveryResult r = sb.Run(&oracle);
  ASSERT_TRUE(r.completed);
  for (const auto& s : r.steps) {
    if (s.spill_dim == 0 && s.completed) {
      EXPECT_NEAR(s.learned_sel, 0.01, 0.005);
    }
    if (s.spill_dim == 1 && s.completed) {
      EXPECT_NEAR(s.learned_sel, 1.0 / 400, 1.0 / 800);
    }
  }
}

TEST_F(EngineIntegrationTest, EngineSuboptimalityWithinGuarantee) {
  // Discovery cost relative to the optimal plan's true execution cost
  // must respect the MSO guarantee (the cost model and engine charge
  // identical constants, so the guarantee carries over to engine mode).
  SpillBound sb(ess_);
  EngineOracle oracle(executor_);
  const DiscoveryResult r = sb.Run(&oracle);
  ASSERT_TRUE(r.completed);

  // The oracle plan: optimize at the true selectivities and execute.
  CardinalityEstimator est(catalog_, query_);
  const EssPoint truth = {0.01, 1.0 / 400};
  const std::unique_ptr<Plan> opt_plan = ess_->optimizer().Optimize(truth);
  const Result<ExecutionResult> opt_run = executor_->Execute(*opt_plan, -1.0);
  ASSERT_TRUE(opt_run.ok() && opt_run->completed);

  const double subopt = r.total_cost / opt_run->cost_used;
  EXPECT_LE(subopt, SpillBound::MsoGuarantee(2) * 1.25)
      << "engine-mode suboptimality should respect the bound (with slack "
         "for cost-model vs execution discretization)";
}

TEST_F(EngineIntegrationTest, PlanBouquetCompletesOnRealData) {
  PlanBouquet pb(ess_);
  EngineOracle oracle(executor_);
  const DiscoveryResult r = pb.Run(&oracle);
  ASSERT_TRUE(r.completed);
}

TEST_F(EngineIntegrationTest, AlignedBoundCompletesOnRealData) {
  AlignedBound ab(ess_);
  EngineOracle oracle(executor_);
  const DiscoveryResult r = ab.Run(&oracle);
  ASSERT_TRUE(r.completed);
}

TEST_F(EngineIntegrationTest, EngineVsSimulatedAgreeOnContourOfCompletion) {
  // The simulated oracle at the data's true grid location should finish
  // within one contour of the engine-backed run (cost-model discretization
  // can shift the boundary by at most a neighbouring contour).
  SpillBound sb(ess_);
  EngineOracle engine_oracle(executor_);
  const DiscoveryResult engine_run = sb.Run(&engine_oracle);
  ASSERT_TRUE(engine_run.completed);

  GridLoc qa_grid = {ess_->axis().NearestIndex(0.01),
                     ess_->axis().NearestIndex(1.0 / 400)};
  SimulatedOracle sim_oracle(ess_, qa_grid);
  const DiscoveryResult sim_run = sb.Run(&sim_oracle);
  ASSERT_TRUE(sim_run.completed);
  EXPECT_LE(std::abs(engine_run.final_contour - sim_run.final_contour), 2);
}

}  // namespace
}  // namespace robustqp
