// Unit tests for the query layer: structure accessors and validation.

#include <gtest/gtest.h>

#include "query/query.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeBranchQuery;
using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

TEST(QueryTest, BasicAccessors) {
  const Query q = MakeStarQuery(2);
  EXPECT_EQ(q.num_tables(), 4);
  EXPECT_EQ(q.num_joins(), 3);
  EXPECT_EQ(q.num_epps(), 2);
  EXPECT_EQ(q.TableIndex("f"), 0);
  EXPECT_EQ(q.TableIndex("d3"), 3);
  EXPECT_EQ(q.TableIndex("zz"), -1);
}

TEST(QueryTest, EppDimensionMapping) {
  const Query q = MakeStarQuery(2);
  EXPECT_EQ(q.EppDimensionOfJoin(0), 0);
  EXPECT_EQ(q.EppDimensionOfJoin(1), 1);
  EXPECT_EQ(q.EppDimensionOfJoin(2), -1);  // third join is not error-prone
  EXPECT_EQ(q.JoinOfEppDimension(0), 0);
  EXPECT_EQ(q.EppLabel(0), "F~D1");
}

TEST(QueryTest, JoinTableMask) {
  const Query q = MakeStarQuery(3);
  EXPECT_EQ(q.JoinTableMask(0), 0b0011u);  // f, d1
  EXPECT_EQ(q.JoinTableMask(1), 0b0101u);  // f, d2
  EXPECT_EQ(q.JoinTableMask(2), 0b1001u);  // f, d3
}

TEST(QueryTest, ValidatesAgainstCatalog) {
  auto catalog = MakeTinyCatalog();
  EXPECT_TRUE(MakeStarQuery(3).Validate(*catalog).ok());
  EXPECT_TRUE(MakeBranchQuery(3).Validate(*catalog).ok());
}

TEST(QueryTest, RejectsUnknownTable) {
  auto catalog = MakeTinyCatalog();
  Query q("bad", {"f", "nope"}, {{"f", "f_fk1", "nope", "x", ""}}, {}, std::vector<int>{});
  EXPECT_FALSE(q.Validate(*catalog).ok());
}

TEST(QueryTest, RejectsUnknownColumn) {
  auto catalog = MakeTinyCatalog();
  Query q("bad", {"f", "d1"}, {{"f", "f_nope", "d1", "d1_k", ""}}, {}, std::vector<int>{});
  EXPECT_FALSE(q.Validate(*catalog).ok());
}

TEST(QueryTest, RejectsDisconnectedJoinGraph) {
  auto catalog = MakeTinyCatalog();
  Query q("bad", {"f", "d1", "d2"}, {{"f", "f_fk1", "d1", "d1_k", ""}}, {}, std::vector<int>{});
  EXPECT_FALSE(q.Validate(*catalog).ok());
}

TEST(QueryTest, RejectsDuplicateTables) {
  auto catalog = MakeTinyCatalog();
  Query q("bad", {"f", "f"}, {}, {}, std::vector<int>{});
  EXPECT_FALSE(q.Validate(*catalog).ok());
}

TEST(QueryTest, RejectsBadEppIndices) {
  auto catalog = MakeTinyCatalog();
  Query q1("bad", {"f", "d1"}, {{"f", "f_fk1", "d1", "d1_k", ""}}, {}, std::vector<int>{5});
  EXPECT_FALSE(q1.Validate(*catalog).ok());
  Query q2("bad", {"f", "d1"}, {{"f", "f_fk1", "d1", "d1_k", ""}}, {}, std::vector<int>{0, 0});
  EXPECT_FALSE(q2.Validate(*catalog).ok());
}

TEST(QueryTest, RejectsFilterOnForeignTable) {
  auto catalog = MakeTinyCatalog();
  Query q("bad", {"f", "d1"}, {{"f", "f_fk1", "d1", "d1_k", ""}},
          {{"d2", "d2_a", CompareOp::kLt, 1.0}}, std::vector<int>{});
  EXPECT_FALSE(q.Validate(*catalog).ok());
}

TEST(CompareOpTest, Names) {
  EXPECT_STREQ(CompareOpToString(CompareOp::kLt), "<");
  EXPECT_STREQ(CompareOpToString(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kGt), ">");
  EXPECT_STREQ(CompareOpToString(CompareOp::kGe), ">=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kEq), "=");
}

}  // namespace
}  // namespace robustqp
