// Differential tests for the batch execution engine: on random
// (query, plan, budget, spill-node) tuples the batch engine must produce
// an ExecutionResult that is *bit-identical* to the tuple engine's —
// same completion flag, same output_rows, same cost_used double, and the
// same NodeStats counters down to the exact tuple a budget abort lands
// on (including aborts that fall mid-batch). Morsel-parallel full runs
// must be deterministic across thread counts. Failures print the seed.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "storage/stats_builder.h"
#include "storage/table.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

Executor MakeEngine(const Catalog* catalog, Executor::Engine engine,
                    int threads = 1, bool zone_maps = true,
                    bool compression = true) {
  Executor::Options options;
  options.engine = engine;
  options.num_threads = threads;
  options.use_zone_maps = zone_maps;
  options.use_compression = compression;
  return Executor(catalog, CostModel::PostgresFlavour(), options);
}

void ExpectSameResult(const ExecutionResult& a, const ExecutionResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.output_rows, b.output_rows) << what;
  EXPECT_EQ(a.cost_used, b.cost_used) << what;  // bitwise double equality
  ASSERT_EQ(a.node_stats.size(), b.node_stats.size()) << what;
  for (size_t i = 0; i < a.node_stats.size(); ++i) {
    const NodeStats& x = a.node_stats[i];
    const NodeStats& y = b.node_stats[i];
    EXPECT_EQ(x.left_in, y.left_in) << what << " node " << i;
    EXPECT_EQ(x.right_in, y.right_in) << what << " node " << i;
    EXPECT_EQ(x.out, y.out) << what << " node " << i;
    ASSERT_EQ(x.filter_in.size(), y.filter_in.size()) << what << " node " << i;
    for (size_t k = 0; k < x.filter_in.size(); ++k) {
      EXPECT_EQ(x.filter_in[k], y.filter_in[k])
          << what << " node " << i << " filter " << k;
      EXPECT_EQ(x.filter_pass[k], y.filter_pass[k])
          << what << " node " << i << " filter " << k;
    }
  }
}

struct ExecInstance {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Query> query;
};

/// Random database + tree-join query, in the style of fuzz_property_test:
/// one fact table (sized >= min_fact_rows), 2-4 dimensions with zipf-skewed
/// FKs, random filters, random epp set. Indexes on most dimension keys so
/// index-NL plans participate.
ExecInstance MakeExecInstance(uint64_t seed, int64_t min_fact_rows = 2000) {
  Rng rng(seed);
  ExecInstance inst;
  inst.catalog = std::make_unique<Catalog>();

  const int num_tables = static_cast<int>(rng.UniformInt(3, 5));
  std::vector<std::string> names;
  std::vector<int64_t> sizes;
  for (int t = 0; t < num_tables; ++t) {
    names.push_back("t" + std::to_string(t));
    sizes.push_back(t == 0 ? rng.UniformInt(min_fact_rows, min_fact_rows + 4000)
                           : rng.UniformInt(20, 400));
  }

  std::vector<JoinPredicate> joins;
  std::vector<std::vector<std::pair<std::string, std::function<double(Rng&, int64_t)>>>>
      columns(static_cast<size_t>(num_tables));
  for (int t = 0; t < num_tables; ++t) {
    columns[static_cast<size_t>(t)].push_back(
        {"k" + std::to_string(t),
         [](Rng&, int64_t row) { return static_cast<double>(row + 1); }});
    const int64_t attr_domain = rng.UniformInt(4, 40);
    columns[static_cast<size_t>(t)].push_back(
        {"a" + std::to_string(t), [attr_domain](Rng& r, int64_t) {
           return static_cast<double>(r.UniformInt(1, attr_domain));
         }});
  }
  for (int t = 1; t < num_tables; ++t) {
    const int parent = static_cast<int>(rng.UniformInt(0, t - 1));
    const double theta = rng.UniformDouble(0.2, 1.2);
    auto sampler = std::make_shared<ZipfSampler>(
        sizes[static_cast<size_t>(parent)], theta);
    const std::string fk = "fk" + std::to_string(t);
    const int big =
        sizes[static_cast<size_t>(t)] >= sizes[static_cast<size_t>(parent)]
            ? t
            : parent;
    const int small = big == t ? parent : t;
    columns[static_cast<size_t>(big)].push_back(
        {fk, [sampler](Rng& r, int64_t) {
           return static_cast<double>(sampler->Sample(&r));
         }});
    joins.push_back({names[static_cast<size_t>(big)], fk,
                     names[static_cast<size_t>(small)],
                     "k" + std::to_string(small), ""});
  }

  for (int t = 0; t < num_tables; ++t) {
    std::vector<ColumnDef> defs;
    for (const auto& [cname, gen] : columns[static_cast<size_t>(t)]) {
      defs.push_back({cname, DataType::kInt64});
    }
    auto table = std::make_shared<Table>(
        TableSchema(names[static_cast<size_t>(t)], defs));
    for (int64_t r = 0; r < sizes[static_cast<size_t>(t)]; ++r) {
      for (size_t c = 0; c < columns[static_cast<size_t>(t)].size(); ++c) {
        table->column(static_cast<int>(c))
            .AppendInt(static_cast<int64_t>(
                columns[static_cast<size_t>(t)][c].second(rng, r)));
      }
    }
    RQP_CHECK(table->Finalize().ok());
    auto stats = ComputeTableStats(*table);
    RQP_CHECK(inst.catalog->AddTable(std::move(table), std::move(stats)).ok());
  }
  for (int t = 1; t < num_tables; ++t) {
    if (rng.Bernoulli(0.7)) {
      RQP_CHECK(inst.catalog
                        ->BuildIndex(names[static_cast<size_t>(t)],
                                     "k" + std::to_string(t))
                        .ok() ||
                true);
    }
  }

  std::vector<FilterPredicate> filters;
  for (int t = 1; t < num_tables && filters.size() < 2; ++t) {
    if (rng.Bernoulli(0.6)) {
      filters.push_back({names[static_cast<size_t>(t)],
                         "a" + std::to_string(t), CompareOp::kLe,
                         static_cast<double>(rng.UniformInt(2, 20))});
    }
  }

  std::vector<EppRef> epps;
  const int want = static_cast<int>(rng.UniformInt(2, 3));
  for (int j = 0; j < static_cast<int>(joins.size()) &&
                  static_cast<int>(epps.size()) < want;
       ++j) {
    epps.push_back(EppRef::Join(j));
  }
  if (!filters.empty() && rng.Bernoulli(0.5)) {
    epps.push_back(EppRef::Filter(0));
  }

  inst.query = std::make_unique<Query>("exbatch" + std::to_string(seed), names,
                                       joins, filters, epps);
  RQP_CHECK(inst.query->Validate(*inst.catalog).ok());
  return inst;
}

/// Random log-uniform selectivity point in [1e-4, 1]^dims.
EssPoint RandomPoint(Rng* rng, int dims) {
  EssPoint p(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    p[static_cast<size_t>(d)] =
        std::pow(10.0, -4.0 * rng->UniformDouble(0.0, 1.0));
  }
  return p;
}

class ExecBatchDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// The core differential property: tuple and batch engines agree exactly —
// on full runs, on budget-limited runs whose abort lands at arbitrary
// (mostly mid-batch) tuples, and on spill executions of epp subtrees.
TEST_P(ExecBatchDifferentialTest, TupleAndBatchAgreeExactly) {
  const uint64_t seed = GetParam();
  ExecInstance inst = MakeExecInstance(seed);
  Rng rng(seed * 7919 + 1);
  Executor tuple_exec =
      MakeEngine(inst.catalog.get(), Executor::Engine::kTuple);
  Executor batch_exec =
      MakeEngine(inst.catalog.get(), Executor::Engine::kBatch);

  Optimizer opt(inst.catalog.get(), inst.query.get());
  const int dims = inst.query->num_epps();
  std::set<std::string> shapes;
  for (int trial = 0; trial < 4; ++trial) {
    const std::unique_ptr<Plan> plan = opt.Optimize(RandomPoint(&rng, dims));
    shapes.insert(plan->signature());
    const std::string tag =
        "seed " + std::to_string(seed) + " plan " + plan->signature();

    // Full runs.
    const Result<ExecutionResult> ft = tuple_exec.Execute(*plan, -1.0);
    const Result<ExecutionResult> fb = batch_exec.Execute(*plan, -1.0);
    ASSERT_TRUE(ft.ok()) << tag;
    ASSERT_TRUE(fb.ok()) << tag;
    ASSERT_TRUE(ft->completed) << tag;
    ExpectSameResult(*ft, *fb, tag + " [full]");

    // Budgeted runs: sweep fractions of the true cost so aborts land at
    // arbitrary positions inside batches (none of these budgets align
    // with a 1024-row morsel boundary in general).
    for (const double frac : {0.031, 0.22, 0.455, 0.71, 0.93, 0.997}) {
      const double budget = ft->cost_used * frac;
      const Result<ExecutionResult> bt = tuple_exec.Execute(*plan, budget);
      const Result<ExecutionResult> bb = batch_exec.Execute(*plan, budget);
      ASSERT_TRUE(bt.ok()) << tag;
      ASSERT_TRUE(bb.ok()) << tag;
      ExpectSameResult(*bt, *bb,
                       tag + " [budget " + std::to_string(budget) + "]");
    }

    // Spill executions (full and budget-aborted) on every epp subtree.
    for (int d = 0; d < dims; ++d) {
      const int node_id = plan->EppNodeId(d);
      if (node_id < 0) continue;
      const Result<ExecutionResult> st =
          tuple_exec.ExecuteSpill(*plan, node_id, -1.0);
      const Result<ExecutionResult> sb =
          batch_exec.ExecuteSpill(*plan, node_id, -1.0);
      ASSERT_TRUE(st.ok()) << tag;
      ASSERT_TRUE(sb.ok()) << tag;
      ExpectSameResult(*st, *sb,
                       tag + " [spill node " + std::to_string(node_id) + "]");

      const double sbudget = st->cost_used * 0.47;
      const Result<ExecutionResult> pt =
          tuple_exec.ExecuteSpill(*plan, node_id, sbudget);
      const Result<ExecutionResult> pb =
          batch_exec.ExecuteSpill(*plan, node_id, sbudget);
      ASSERT_TRUE(pt.ok()) << tag;
      ASSERT_TRUE(pb.ok()) << tag;
      ExpectSameResult(
          *pt, *pb,
          tag + " [spill-budget node " + std::to_string(node_id) + "]");
    }
  }
}

// Full (non-budgeted, non-spill) batch runs with morsel-parallel scans
// must be bit-identical at any thread count — and identical to the tuple
// engine. The fact table exceeds the parallel threshold so morsels
// actually fan out.
TEST_P(ExecBatchDifferentialTest, MorselParallelScansAreDeterministic) {
  const uint64_t seed = GetParam() + 5000;
  ExecInstance inst = MakeExecInstance(seed, /*min_fact_rows=*/6000);
  Rng rng(seed * 104729 + 3);
  Executor tuple_exec =
      MakeEngine(inst.catalog.get(), Executor::Engine::kTuple);
  Executor batch1 = MakeEngine(inst.catalog.get(), Executor::Engine::kBatch, 1);
  Executor batch2 = MakeEngine(inst.catalog.get(), Executor::Engine::kBatch, 2);
  Executor batch4 = MakeEngine(inst.catalog.get(), Executor::Engine::kBatch, 4);

  Optimizer opt(inst.catalog.get(), inst.query.get());
  const int dims = inst.query->num_epps();
  for (int trial = 0; trial < 3; ++trial) {
    const std::unique_ptr<Plan> plan = opt.Optimize(RandomPoint(&rng, dims));
    const std::string tag =
        "seed " + std::to_string(seed) + " plan " + plan->signature();
    const Result<ExecutionResult> rt = tuple_exec.Execute(*plan, -1.0);
    const Result<ExecutionResult> r1 = batch1.Execute(*plan, -1.0);
    const Result<ExecutionResult> r2 = batch2.Execute(*plan, -1.0);
    const Result<ExecutionResult> r4 = batch4.Execute(*plan, -1.0);
    ASSERT_TRUE(rt.ok() && r1.ok() && r2.ok() && r4.ok()) << tag;
    ExpectSameResult(*rt, *r1, tag + " [tuple vs 1t]");
    ExpectSameResult(*r1, *r2, tag + " [1t vs 2t]");
    ExpectSameResult(*r1, *r4, tag + " [1t vs 4t]");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecBatchDifferentialTest,
                         ::testing::Values(11, 23, 37, 41, 59, 67, 73, 89),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Deterministic golden: a budget that exhausts strictly inside a morsel.
// The engines must agree on the exact abort tuple, and the abort must in
// fact land mid-batch (some executed scan consumed a number of rows that
// is not a multiple of the 1024-row batch width).
TEST(ExecBatchGoldenTest, MidBatchAbortLandsOnSameTuple) {
  const std::unique_ptr<Catalog> catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog.get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.01, 0.0025, 0.02});
  Executor tuple_exec = MakeEngine(catalog.get(), Executor::Engine::kTuple);
  Executor batch_exec = MakeEngine(catalog.get(), Executor::Engine::kBatch);

  const Result<ExecutionResult> full = tuple_exec.Execute(*plan, -1.0);
  ASSERT_TRUE(full.ok() && full->completed);

  bool saw_mid_batch_abort = false;
  for (const double frac : {0.11, 0.29, 0.52, 0.78, 0.96}) {
    const double budget = full->cost_used * frac;
    const Result<ExecutionResult> bt = tuple_exec.Execute(*plan, budget);
    const Result<ExecutionResult> bb = batch_exec.Execute(*plan, budget);
    ASSERT_TRUE(bt.ok() && bb.ok());
    EXPECT_FALSE(bt->completed);
    ExpectSameResult(*bt, *bb, "budget " + std::to_string(budget));
    for (const NodeStats& st : bb->node_stats) {
      if (st.left_in > 0 && st.left_in % 1024 != 0) saw_mid_batch_abort = true;
    }
  }
  EXPECT_TRUE(saw_mid_batch_abort)
      << "sweep never aborted mid-batch; weaken the test's assumptions";
}

// Budget edge cases around the exact completion cost: the abort predicate
// is strictly `total > budget`, so a budget equal to the full run's cost
// completes on both engines, while one representable double below it
// aborts — on the same tuple in both engines.
TEST(ExecBatchGoldenTest, BudgetExactlyMetAndJustMissed) {
  const std::unique_ptr<Catalog> catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog.get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.01, 0.0025, 0.02});
  Executor tuple_exec = MakeEngine(catalog.get(), Executor::Engine::kTuple);
  Executor batch_exec = MakeEngine(catalog.get(), Executor::Engine::kBatch);

  const Result<ExecutionResult> full = tuple_exec.Execute(*plan, -1.0);
  ASSERT_TRUE(full.ok() && full->completed);
  const double exact = full->cost_used;

  // Budget exactly met: completes, charges exactly the budget.
  const Result<ExecutionResult> et = tuple_exec.Execute(*plan, exact);
  const Result<ExecutionResult> eb = batch_exec.Execute(*plan, exact);
  ASSERT_TRUE(et.ok() && eb.ok());
  EXPECT_TRUE(et->completed);
  EXPECT_EQ(et->cost_used, exact);
  ExpectSameResult(*et, *eb, "budget == exact cost");

  // One ulp below: the final cost event exceeds the budget, so the run
  // aborts on the very last charge of the plan.
  const double just_under = std::nextafter(exact, 0.0);
  const Result<ExecutionResult> ut = tuple_exec.Execute(*plan, just_under);
  const Result<ExecutionResult> ub = batch_exec.Execute(*plan, just_under);
  ASSERT_TRUE(ut.ok() && ub.ok());
  EXPECT_FALSE(ut->completed);
  EXPECT_LE(ut->cost_used, just_under);
  ExpectSameResult(*ut, *ub, "budget one ulp under exact cost");
}

// A transient fault mid-spill: the spill attempt's lost work is charged
// (cost_used = clean cost + retried work) while the retried attempt's
// learned counters stand — identically on both engines, because fault
// draws happen before the attempt, outside engine internals.
TEST(ExecBatchGoldenTest, MidSpillTransientChargesLostWorkOnBothEngines) {
  const std::unique_ptr<Catalog> catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog.get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.01, 0.0025, 0.02});
  const int node_id = plan->EppNodeId(0);
  ASSERT_GE(node_id, 0);
  Executor tuple_exec = MakeEngine(catalog.get(), Executor::Engine::kTuple);
  Executor batch_exec = MakeEngine(catalog.get(), Executor::Engine::kBatch);

  const Result<ExecutionResult> clean =
      tuple_exec.ExecuteSpill(*plan, node_id, -1.0);
  ASSERT_TRUE(clean.ok() && clean->completed);

  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("exec.spill.run:after=0", 42)
                  .ok());
  ExecutionResult rt, rb;
  {
    FaultStreamScope scope(0);
    Result<ExecutionResult> r = tuple_exec.ExecuteSpill(*plan, node_id, -1.0);
    ASSERT_TRUE(r.ok());
    rt = r.MoveValue();
  }
  {
    FaultStreamScope scope(0);
    Result<ExecutionResult> r = batch_exec.ExecuteSpill(*plan, node_id, -1.0);
    ASSERT_TRUE(r.ok());
    rb = r.MoveValue();
  }
  FaultInjector::Disarm();

  EXPECT_EQ(rt.robustness.transient_retries, 1);
  EXPECT_TRUE(rt.completed);
  // Lost work is charged on top of the clean attempt's cost.
  EXPECT_DOUBLE_EQ(rt.cost_used,
                   clean->cost_used + rt.robustness.retried_cost);
  // The counters of the surviving attempt are the clean run's.
  ASSERT_EQ(rt.node_stats.size(), clean->node_stats.size());
  for (size_t i = 0; i < rt.node_stats.size(); ++i) {
    EXPECT_EQ(rt.node_stats[i].out, clean->node_stats[i].out);
  }
  // Same stream => same severity draw => bit-identical charge on the
  // batch engine too.
  EXPECT_EQ(rb.robustness.transient_retries, 1);
  EXPECT_EQ(rb.cost_used, rt.cost_used);
  ExpectSameResult(rt, rb, "faulted spill, tuple vs batch");
}

// Differential fuzz under an armed injector: with per-attempt pre-drawn
// faults the engines must still agree exactly — completion, abort tuple,
// cost_used including retry charges — stream-scoped so both engines see
// the identical fault sequence.
TEST_P(ExecBatchDifferentialTest, TupleAndBatchAgreeUnderFaults) {
  const uint64_t seed = GetParam() + 9000;
  ExecInstance inst = MakeExecInstance(seed);
  Rng rng(seed * 6151 + 5);
  Executor tuple_exec =
      MakeEngine(inst.catalog.get(), Executor::Engine::kTuple);
  Executor batch_exec =
      MakeEngine(inst.catalog.get(), Executor::Engine::kBatch);

  Optimizer opt(inst.catalog.get(), inst.query.get());
  const int dims = inst.query->num_epps();
  // Transients and spikes on the shared operator sites. The batch engine
  // additionally draws exec.batch.pipeline, but per-site counters are
  // independent, so the shared sites' sequences stay identical.
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("exec.scan.read:p=0.3;exec.hashjoin.build:p=0.3;"
                             "exec.nljoin.pair:p=0.2,kind=spike,mult=2",
                             seed)
                  .ok());
  for (int trial = 0; trial < 3; ++trial) {
    const std::unique_ptr<Plan> plan = opt.Optimize(RandomPoint(&rng, dims));
    const std::string tag =
        "seed " + std::to_string(seed) + " plan " + plan->signature();
    for (const double frac : {-1.0, 0.9, 0.45}) {
      FaultInjector::Disarm();
      const Result<ExecutionResult> clean = tuple_exec.Execute(*plan, -1.0);
      ASSERT_TRUE(clean.ok()) << tag;
      const double budget = frac < 0.0 ? -1.0 : clean->cost_used * frac;
      ASSERT_TRUE(FaultInjector::Global()
                      .Configure("exec.scan.read:p=0.3;"
                                 "exec.hashjoin.build:p=0.3;"
                                 "exec.nljoin.pair:p=0.2,kind=spike,mult=2",
                                 seed)
                      .ok());
      ExecutionResult rt, rb;
      bool rt_ok, rb_ok;
      {
        FaultStreamScope scope(static_cast<uint64_t>(trial));
        Result<ExecutionResult> r = tuple_exec.Execute(*plan, budget);
        rt_ok = r.ok();
        if (rt_ok) rt = r.MoveValue();
        // Unbudgeted retry exhaustion is a legal transient outcome; any
        // other error is a real failure.
        if (!rt_ok) ASSERT_TRUE(r.status().IsTransient()) << tag;
      }
      {
        FaultStreamScope scope(static_cast<uint64_t>(trial));
        Result<ExecutionResult> r = batch_exec.Execute(*plan, budget);
        rb_ok = r.ok();
        if (rb_ok) rb = r.MoveValue();
        if (!rb_ok) ASSERT_TRUE(r.status().IsTransient()) << tag;
      }
      // Same stream, same draws: the engines must agree on the outcome
      // shape, not just on successful results.
      ASSERT_EQ(rt_ok, rb_ok) << tag;
      if (!rt_ok) continue;
      ExpectSameResult(rt, rb, tag + " [faulted, budget " +
                                   std::to_string(budget) + "]");
      EXPECT_EQ(rt.robustness.transient_retries,
                rb.robustness.transient_retries)
          << tag;
      EXPECT_EQ(rt.robustness.cost_spikes, rb.robustness.cost_spikes) << tag;
      EXPECT_EQ(rt.robustness.retried_cost, rb.robustness.retried_cost)
          << tag;
    }
  }
  FaultInjector::Disarm();
}

// ---------------------------------------------------------------------------
// Zone-map / kernel differential fuzz: predicates engineered to stress
// block classification (block-boundary constants, clustered columns,
// NaN/±inf doubles, empty ranges) must yield identical tuples, NodeStats,
// and cost_used across (a) the tuple engine — whose per-row loops and
// node-based join structures are the legacy reference — (b) the batch
// engine with zone-map pruning, and (c) the batch engine with pruning
// disabled. Any block a pruned scan skips but still has to account for
// shows up as a counter diff here.
// ---------------------------------------------------------------------------

/// Star instance tuned for zone maps: a multi-block fact table with a
/// clustered int column (monotone in row order, so blocks have disjoint
/// ranges) and a double column salted with NaN/±inf/-0.0; filter
/// constants drawn from block edges and out-of-domain values. `policy`
/// picks the storage layout — the same seed yields identical data and
/// query under every policy, which is what the compression differential
/// tests lean on (fk1/fk2/c0 are dictionary-friendly, k0 is serial so it
/// packs, d0's salted doubles abandon the dictionary under kAuto).
ExecInstance MakeZoneInstance(uint64_t seed,
                              const EncodingPolicy& policy =
                                  EncodingPolicy::Raw()) {
  Rng rng(seed);
  ExecInstance inst;
  inst.catalog = std::make_unique<Catalog>();

  const int64_t fact_rows = rng.UniformInt(3 * 4096 - 100, 4 * 4096 + 100);
  const int64_t dim_rows[2] = {rng.UniformInt(40, 250),
                               rng.UniformInt(40, 250)};

  // Fact table t0: serial key, two FKs, clustered c0, salted double d0.
  {
    TableSchema schema("t0", {{"k0", DataType::kInt64},
                              {"fk1", DataType::kInt64},
                              {"fk2", DataType::kInt64},
                              {"c0", DataType::kInt64},
                              {"d0", DataType::kDouble}});
    auto table = std::make_shared<Table>(schema);
    const double inf = std::numeric_limits<double>::infinity();
    for (int64_t r = 0; r < fact_rows; ++r) {
      table->column(0).AppendInt(r + 1);
      table->column(1).AppendInt(rng.UniformInt(1, dim_rows[0]));
      table->column(2).AppendInt(rng.UniformInt(1, dim_rows[1]));
      table->column(3).AppendInt(r / 97);  // clustered: ascending in r
      double d = static_cast<double>(r) * 0.5;
      if (rng.Bernoulli(0.01)) d = std::nan("");
      if (rng.Bernoulli(0.005)) d = inf;
      if (rng.Bernoulli(0.005)) d = -inf;
      if (rng.Bernoulli(0.005)) d = -0.0;
      table->column(4).AppendDouble(d);
    }
    RQP_CHECK(table->Finalize(policy).ok());
    auto stats = ComputeTableStats(*table);
    RQP_CHECK(inst.catalog->AddTable(std::move(table), std::move(stats)).ok());
  }
  for (int t = 0; t < 2; ++t) {
    const std::string name = "t" + std::to_string(t + 1);
    TableSchema schema(name, {{"k" + std::to_string(t + 1), DataType::kInt64},
                              {"a" + std::to_string(t + 1), DataType::kInt64}});
    auto table = std::make_shared<Table>(schema);
    for (int64_t r = 0; r < dim_rows[t]; ++r) {
      table->column(0).AppendInt(r + 1);
      table->column(1).AppendInt(rng.UniformInt(1, 20));
    }
    RQP_CHECK(table->Finalize(policy).ok());
    auto stats = ComputeTableStats(*table);
    RQP_CHECK(inst.catalog->AddTable(std::move(table), std::move(stats)).ok());
    RQP_CHECK(
        inst.catalog->BuildIndex(name, "k" + std::to_string(t + 1)).ok());
  }

  const std::vector<JoinPredicate> joins = {{"t0", "fk1", "t1", "k1", ""},
                                            {"t0", "fk2", "t2", "k2", ""}};

  // Filter constants that land on or next to zone-block and morsel
  // boundaries, plus out-of-domain (empty-range) and special values.
  const CompareOp ops[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                           CompareOp::kGe, CompareOp::kEq};
  auto pick_op = [&]() {
    return ops[rng.UniformInt(0, 4)];
  };
  const double c0_max = static_cast<double>((fact_rows - 1) / 97);
  const double c0_candidates[] = {
      0.0,
      static_cast<double>(1024 / 97),
      static_cast<double>(4095 / 97),
      static_cast<double>(4096 / 97),
      static_cast<double>(4097 / 97),
      c0_max / 2.0,
      c0_max,
      c0_max + 5.0,  // empty range for kGt/kGe/kEq
      -3.0,          // empty range for kLt/kLe/kEq
  };
  const double inf = std::numeric_limits<double>::infinity();
  const double d0_candidates[] = {
      0.0, -0.0, 512.0, 2048.0, static_cast<double>(fact_rows) * 0.25,
      inf, -inf, std::nan(""),  // NaN literal: satisfies nothing
  };
  std::vector<FilterPredicate> filters;
  filters.push_back({"t0", "c0", pick_op(),
                     c0_candidates[rng.UniformInt(0, 8)]});
  if (rng.Bernoulli(0.8)) {
    filters.push_back({"t0", "d0", pick_op(),
                       d0_candidates[rng.UniformInt(0, 7)]});
  }
  if (rng.Bernoulli(0.5)) {
    filters.push_back({"t1", "a1", CompareOp::kLe,
                       static_cast<double>(rng.UniformInt(2, 18))});
  }

  const std::vector<EppRef> epps = {EppRef::Join(0), EppRef::Join(1)};
  inst.query = std::make_unique<Query>(
      "zonefuzz" + std::to_string(seed), std::vector<std::string>{"t0", "t1", "t2"},
      joins, filters, epps);
  RQP_CHECK(inst.query->Validate(*inst.catalog).ok());
  return inst;
}

class ZoneMapDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ZoneMapDifferentialTest, PrunedUnprunedAndTupleAgreeExactly) {
  const uint64_t seed = GetParam();
  ExecInstance inst = MakeZoneInstance(seed);
  Rng rng(seed * 2713 + 9);
  Executor tuple_exec =
      MakeEngine(inst.catalog.get(), Executor::Engine::kTuple);
  Executor pruned =
      MakeEngine(inst.catalog.get(), Executor::Engine::kBatch, 1, true);
  Executor unpruned =
      MakeEngine(inst.catalog.get(), Executor::Engine::kBatch, 1, false);

  Optimizer opt(inst.catalog.get(), inst.query.get());
  const int dims = inst.query->num_epps();
  for (int trial = 0; trial < 4; ++trial) {
    const std::unique_ptr<Plan> plan = opt.Optimize(RandomPoint(&rng, dims));
    const std::string tag =
        "seed " + std::to_string(seed) + " plan " + plan->signature();

    const Result<ExecutionResult> ft = tuple_exec.Execute(*plan, -1.0);
    const Result<ExecutionResult> fp = pruned.Execute(*plan, -1.0);
    const Result<ExecutionResult> fu = unpruned.Execute(*plan, -1.0);
    ASSERT_TRUE(ft.ok() && fp.ok() && fu.ok()) << tag;
    ExpectSameResult(*ft, *fp, tag + " [full tuple vs pruned]");
    ExpectSameResult(*fp, *fu, tag + " [full pruned vs unpruned]");

    // Budgeted: pruned scans must charge skipped blocks as scanned, so
    // the abort lands on the same tuple whether or not blocks were read.
    for (const double frac : {0.18, 0.62, 0.94}) {
      const double budget = ft->cost_used * frac;
      const Result<ExecutionResult> bt = tuple_exec.Execute(*plan, budget);
      const Result<ExecutionResult> bp = pruned.Execute(*plan, budget);
      const Result<ExecutionResult> bu = unpruned.Execute(*plan, budget);
      ASSERT_TRUE(bt.ok() && bp.ok() && bu.ok()) << tag;
      ExpectSameResult(*bt, *bp,
                       tag + " [budget " + std::to_string(budget) + " pruned]");
      ExpectSameResult(*bp, *bu, tag + " [budget " + std::to_string(budget) +
                                     " pruned vs unpruned]");
    }

    // Spill executions on the epp subtrees.
    for (int d = 0; d < dims; ++d) {
      const int node_id = plan->EppNodeId(d);
      if (node_id < 0) continue;
      const Result<ExecutionResult> st =
          tuple_exec.ExecuteSpill(*plan, node_id, -1.0);
      const Result<ExecutionResult> sp =
          pruned.ExecuteSpill(*plan, node_id, -1.0);
      const Result<ExecutionResult> su =
          unpruned.ExecuteSpill(*plan, node_id, -1.0);
      ASSERT_TRUE(st.ok() && sp.ok() && su.ok()) << tag;
      ExpectSameResult(*st, *sp,
                       tag + " [spill " + std::to_string(node_id) + "]");
      ExpectSameResult(*sp, *su, tag + " [spill " + std::to_string(node_id) +
                                     " pruned vs unpruned]");
    }
  }
}

// The same agreement must hold with the fault injector armed: fault draws
// happen per attempt outside engine internals, so pruning cannot shift
// the fault sequence or the retry accounting.
TEST_P(ZoneMapDifferentialTest, PrunedUnprunedAgreeUnderFaults) {
  const uint64_t seed = GetParam() + 400;
  ExecInstance inst = MakeZoneInstance(seed);
  Rng rng(seed * 911 + 4);
  Executor tuple_exec =
      MakeEngine(inst.catalog.get(), Executor::Engine::kTuple);
  Executor pruned =
      MakeEngine(inst.catalog.get(), Executor::Engine::kBatch, 1, true);
  Executor unpruned =
      MakeEngine(inst.catalog.get(), Executor::Engine::kBatch, 1, false);

  Optimizer opt(inst.catalog.get(), inst.query.get());
  const int dims = inst.query->num_epps();
  const char* spec =
      "exec.scan.read:p=0.3;exec.hashjoin.build:p=0.3;"
      "exec.nljoin.pair:p=0.2,kind=spike,mult=2";
  for (int trial = 0; trial < 2; ++trial) {
    const std::unique_ptr<Plan> plan = opt.Optimize(RandomPoint(&rng, dims));
    const std::string tag =
        "seed " + std::to_string(seed) + " plan " + plan->signature();
    FaultInjector::Disarm();
    const Result<ExecutionResult> clean = tuple_exec.Execute(*plan, -1.0);
    ASSERT_TRUE(clean.ok()) << tag;
    for (const double frac : {-1.0, 0.55}) {
      const double budget = frac < 0.0 ? -1.0 : clean->cost_used * frac;
      ExecutionResult rt, rp, ru;
      bool rt_ok, rp_ok, ru_ok;
      ASSERT_TRUE(FaultInjector::Global().Configure(spec, seed).ok());
      {
        FaultStreamScope scope(static_cast<uint64_t>(trial));
        Result<ExecutionResult> r = tuple_exec.Execute(*plan, budget);
        rt_ok = r.ok();
        if (rt_ok) rt = r.MoveValue();
        if (!rt_ok) ASSERT_TRUE(r.status().IsTransient()) << tag;
      }
      {
        FaultStreamScope scope(static_cast<uint64_t>(trial));
        Result<ExecutionResult> r = pruned.Execute(*plan, budget);
        rp_ok = r.ok();
        if (rp_ok) rp = r.MoveValue();
        if (!rp_ok) ASSERT_TRUE(r.status().IsTransient()) << tag;
      }
      {
        FaultStreamScope scope(static_cast<uint64_t>(trial));
        Result<ExecutionResult> r = unpruned.Execute(*plan, budget);
        ru_ok = r.ok();
        if (ru_ok) ru = r.MoveValue();
        if (!ru_ok) ASSERT_TRUE(r.status().IsTransient()) << tag;
      }
      FaultInjector::Disarm();
      ASSERT_EQ(rt_ok, rp_ok) << tag;
      ASSERT_EQ(rp_ok, ru_ok) << tag;
      if (!rt_ok) continue;
      ExpectSameResult(rt, rp, tag + " [faulted tuple vs pruned]");
      ExpectSameResult(rp, ru, tag + " [faulted pruned vs unpruned]");
      EXPECT_EQ(rp.robustness.transient_retries, ru.robustness.transient_retries)
          << tag;
      EXPECT_EQ(rp.robustness.retried_cost, ru.robustness.retried_cost) << tag;
    }
  }
  FaultInjector::Disarm();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneMapDifferentialTest,
                         ::testing::Values(3, 17, 29, 53, 71),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Compression differential fuzz: the same instance built raw and encoded
// must be indistinguishable through every cost-visible surface — tuple
// engine, batch fused filter-on-compressed, batch decode-then-filter,
// zone maps on and off, full / budgeted / spill runs, faults armed.
// ---------------------------------------------------------------------------

class CompressionDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CompressionDifferentialTest, EncodedAndRawAgreeExactly) {
  const uint64_t seed = GetParam();
  for (const Encoding kind :
       {Encoding::kAuto, Encoding::kDict, Encoding::kPacked}) {
    EncodingPolicy policy;
    policy.kind = kind;
    ExecInstance raw = MakeZoneInstance(seed);
    ExecInstance enc = MakeZoneInstance(seed, policy);
    Rng rng(seed * 131 + static_cast<uint64_t>(kind));

    Executor tuple_raw = MakeEngine(raw.catalog.get(), Executor::Engine::kTuple);
    Executor tuple_enc = MakeEngine(enc.catalog.get(), Executor::Engine::kTuple);
    Executor batch_raw = MakeEngine(raw.catalog.get(), Executor::Engine::kBatch);
    Executor fused =
        MakeEngine(enc.catalog.get(), Executor::Engine::kBatch, 1, true, true);
    Executor decoded =
        MakeEngine(enc.catalog.get(), Executor::Engine::kBatch, 1, true, false);
    Executor fused_nz =
        MakeEngine(enc.catalog.get(), Executor::Engine::kBatch, 1, false, true);

    Optimizer opt(raw.catalog.get(), raw.query.get());
    const int dims = raw.query->num_epps();
    for (int trial = 0; trial < 2; ++trial) {
      const std::unique_ptr<Plan> plan = opt.Optimize(RandomPoint(&rng, dims));
      const std::string tag = "seed " + std::to_string(seed) + " enc " +
                              EncodingName(kind) + " plan " +
                              plan->signature();

      const Result<ExecutionResult> rt = tuple_raw.Execute(*plan, -1.0);
      const Result<ExecutionResult> et = tuple_enc.Execute(*plan, -1.0);
      const Result<ExecutionResult> rb = batch_raw.Execute(*plan, -1.0);
      const Result<ExecutionResult> ef = fused.Execute(*plan, -1.0);
      const Result<ExecutionResult> ed = decoded.Execute(*plan, -1.0);
      const Result<ExecutionResult> en = fused_nz.Execute(*plan, -1.0);
      ASSERT_TRUE(rt.ok() && et.ok() && rb.ok() && ef.ok() && ed.ok() &&
                  en.ok())
          << tag;
      ExpectSameResult(*rt, *et, tag + " [tuple raw vs encoded]");
      ExpectSameResult(*rt, *rb, tag + " [tuple vs batch raw]");
      ExpectSameResult(*rb, *ef, tag + " [batch raw vs fused]");
      ExpectSameResult(*ef, *ed, tag + " [fused vs decode-then-filter]");
      ExpectSameResult(*ef, *en, tag + " [fused zones on vs off]");

      // Budget aborts must land on the same tuple on every storage form.
      for (const double frac : {0.22, 0.71}) {
        const double budget = rt->cost_used * frac;
        const std::string btag =
            tag + " [budget " + std::to_string(budget) + "]";
        const Result<ExecutionResult> bt = tuple_raw.Execute(*plan, budget);
        const Result<ExecutionResult> bf = fused.Execute(*plan, budget);
        const Result<ExecutionResult> bd = decoded.Execute(*plan, budget);
        const Result<ExecutionResult> bn = fused_nz.Execute(*plan, budget);
        ASSERT_TRUE(bt.ok() && bf.ok() && bd.ok() && bn.ok()) << btag;
        ExpectSameResult(*bt, *bf, btag + " tuple vs fused");
        ExpectSameResult(*bf, *bd, btag + " fused vs decoded");
        ExpectSameResult(*bf, *bn, btag + " zones on vs off");
      }

      // Spill executions over the epp subtrees.
      for (int d = 0; d < dims; ++d) {
        const int node_id = plan->EppNodeId(d);
        if (node_id < 0) continue;
        const std::string stag = tag + " [spill " + std::to_string(node_id) +
                                 "]";
        const Result<ExecutionResult> sr =
            batch_raw.ExecuteSpill(*plan, node_id, -1.0);
        const Result<ExecutionResult> sf =
            fused.ExecuteSpill(*plan, node_id, -1.0);
        const Result<ExecutionResult> sd =
            decoded.ExecuteSpill(*plan, node_id, -1.0);
        ASSERT_TRUE(sr.ok() && sf.ok() && sd.ok()) << stag;
        ExpectSameResult(*sr, *sf, stag + " raw vs fused");
        ExpectSameResult(*sf, *sd, stag + " fused vs decoded");
      }
    }
  }
}

// Armed fault specs must not distinguish the storage forms either: the
// per-attempt draw sequence depends on charged events, which compression
// leaves untouched.
TEST_P(CompressionDifferentialTest, EncodedAndRawAgreeUnderFaults) {
  const uint64_t seed = GetParam() + 800;
  EncodingPolicy policy;  // kAuto
  ExecInstance raw = MakeZoneInstance(seed);
  ExecInstance enc = MakeZoneInstance(seed, policy);
  Rng rng(seed * 577 + 1);
  Executor batch_raw = MakeEngine(raw.catalog.get(), Executor::Engine::kBatch);
  Executor fused =
      MakeEngine(enc.catalog.get(), Executor::Engine::kBatch, 1, true, true);
  Executor decoded =
      MakeEngine(enc.catalog.get(), Executor::Engine::kBatch, 1, true, false);

  Optimizer opt(raw.catalog.get(), raw.query.get());
  const int dims = raw.query->num_epps();
  const char* spec =
      "exec.scan.read:p=0.3;exec.hashjoin.build:p=0.3;"
      "exec.nljoin.pair:p=0.2,kind=spike,mult=2";
  for (int trial = 0; trial < 2; ++trial) {
    const std::unique_ptr<Plan> plan = opt.Optimize(RandomPoint(&rng, dims));
    const std::string tag = "seed " + std::to_string(seed) + " plan " +
                            plan->signature();
    FaultInjector::Disarm();
    const Result<ExecutionResult> clean = batch_raw.Execute(*plan, -1.0);
    ASSERT_TRUE(clean.ok()) << tag;
    for (const double frac : {-1.0, 0.55}) {
      const double budget = frac < 0.0 ? -1.0 : clean->cost_used * frac;
      ExecutionResult rr, rf, rd;
      bool rr_ok, rf_ok, rd_ok;
      ASSERT_TRUE(FaultInjector::Global().Configure(spec, seed).ok());
      {
        FaultStreamScope scope(static_cast<uint64_t>(trial));
        Result<ExecutionResult> r = batch_raw.Execute(*plan, budget);
        rr_ok = r.ok();
        if (rr_ok) rr = r.MoveValue();
        if (!rr_ok) ASSERT_TRUE(r.status().IsTransient()) << tag;
      }
      {
        FaultStreamScope scope(static_cast<uint64_t>(trial));
        Result<ExecutionResult> r = fused.Execute(*plan, budget);
        rf_ok = r.ok();
        if (rf_ok) rf = r.MoveValue();
        if (!rf_ok) ASSERT_TRUE(r.status().IsTransient()) << tag;
      }
      {
        FaultStreamScope scope(static_cast<uint64_t>(trial));
        Result<ExecutionResult> r = decoded.Execute(*plan, budget);
        rd_ok = r.ok();
        if (rd_ok) rd = r.MoveValue();
        if (!rd_ok) ASSERT_TRUE(r.status().IsTransient()) << tag;
      }
      FaultInjector::Disarm();
      ASSERT_EQ(rr_ok, rf_ok) << tag;
      ASSERT_EQ(rf_ok, rd_ok) << tag;
      if (!rr_ok) continue;
      ExpectSameResult(rr, rf, tag + " [faulted raw vs fused]");
      ExpectSameResult(rf, rd, tag + " [faulted fused vs decoded]");
      EXPECT_EQ(rr.robustness.transient_retries, rf.robustness.transient_retries)
          << tag;
      EXPECT_EQ(rr.robustness.retried_cost, rf.robustness.retried_cost) << tag;
    }
  }
  FaultInjector::Disarm();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionDifferentialTest,
                         ::testing::Values(7, 23, 47),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// ExecuteMinMax: the metadata fast path must answer like a naive scan and
// charge like one, identically on raw and encoded storage.
// ---------------------------------------------------------------------------

TEST(ExecuteMinMaxTest, MatchesNaiveScanAndIsStorageInvariant) {
  const uint64_t seed = 5;
  EncodingPolicy dict;
  dict.kind = Encoding::kDict;
  ExecInstance raw = MakeZoneInstance(seed);
  ExecInstance enc = MakeZoneInstance(seed, dict);
  Executor eraw = MakeEngine(raw.catalog.get(), Executor::Engine::kBatch);
  Executor eenc = MakeEngine(enc.catalog.get(), Executor::Engine::kBatch);

  for (const std::string& tname : raw.catalog->TableNames()) {
    const Table& table = *raw.catalog->FindTable(tname)->table;
    for (int c = 0; c < table.schema().num_columns(); ++c) {
      const std::string cname = table.schema().column(c).name;
      const std::string tag = tname + "." + cname;
      const Result<Executor::MinMaxResult> a = eraw.ExecuteMinMax(tname, cname);
      const Result<Executor::MinMaxResult> b = eenc.ExecuteMinMax(tname, cname);
      ASSERT_TRUE(a.ok() && b.ok()) << tag;
      EXPECT_TRUE(a->completed) << tag;
      EXPECT_EQ(a->rows, table.num_rows()) << tag;
      // Storage-invariant: answer and cost bitwise equal across layouts.
      EXPECT_EQ(a->completed, b->completed) << tag;
      EXPECT_EQ(a->cost_used, b->cost_used) << tag;
      EXPECT_EQ(a->rows, b->rows) << tag;
      EXPECT_EQ(a->min, b->min) << tag;
      EXPECT_EQ(a->max, b->max) << tag;
      EXPECT_EQ(a->has_nan, b->has_nan) << tag;
      EXPECT_GT(a->cost_used, 0.0) << tag;
      // Naive reference over the raw column.
      double mn = std::numeric_limits<double>::infinity();
      double mx = -std::numeric_limits<double>::infinity();
      bool has_nan = false;
      for (int64_t r = 0; r < table.num_rows(); ++r) {
        const double v = table.column(c).GetNumeric(r);
        if (std::isnan(v)) {
          has_nan = true;
          continue;
        }
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      EXPECT_EQ(a->has_nan, has_nan) << tag;
      if (mn <= mx) {
        EXPECT_EQ(a->min, mn) << tag;
        EXPECT_EQ(a->max, mx) << tag;
      } else {
        EXPECT_GT(a->min, a->max) << tag;
      }

      // Budget abort: same row and bitwise-equal cost on both layouts.
      const double budget = a->cost_used * 0.4;
      const Result<Executor::MinMaxResult> ba =
          eraw.ExecuteMinMax(tname, cname, budget);
      const Result<Executor::MinMaxResult> bb =
          eenc.ExecuteMinMax(tname, cname, budget);
      ASSERT_TRUE(ba.ok() && bb.ok()) << tag;
      EXPECT_FALSE(ba->completed) << tag;
      EXPECT_EQ(ba->completed, bb->completed) << tag;
      EXPECT_EQ(ba->cost_used, bb->cost_used) << tag;
      EXPECT_EQ(ba->rows, bb->rows) << tag;
      EXPECT_EQ(ba->cost_used, budget) << tag;
      EXPECT_LT(ba->rows, table.num_rows()) << tag;
      // A budget covering the whole scan completes with the same answer.
      const Result<Executor::MinMaxResult> fa =
          eraw.ExecuteMinMax(tname, cname, a->cost_used);
      ASSERT_TRUE(fa.ok()) << tag;
      EXPECT_TRUE(fa->completed) << tag;
      EXPECT_EQ(fa->cost_used, a->cost_used) << tag;
    }
  }

  EXPECT_FALSE(eraw.ExecuteMinMax("nope", "k0").ok());
  EXPECT_FALSE(eraw.ExecuteMinMax("t0", "nope").ok());
}

TEST(ExecBatchGoldenTest, ParseEngine) {
  Executor::Engine e;
  EXPECT_TRUE(Executor::ParseEngine("tuple", &e));
  EXPECT_EQ(e, Executor::Engine::kTuple);
  EXPECT_TRUE(Executor::ParseEngine("batch", &e));
  EXPECT_EQ(e, Executor::Engine::kBatch);
  EXPECT_FALSE(Executor::ParseEngine("vector", &e));
}

// Regression for the ObservedJoinSelectivity evidence guard: empty input
// sides yield 0.0 (not NaN/inf), and the ratio is clamped to [0, 1].
TEST(ObservedJoinSelectivityTest, GuardsZeroAndClampsOverflow) {
  ExecutionResult res;
  res.node_stats.resize(1);
  NodeStats& st = res.node_stats[0];

  st.left_in = 0;
  st.right_in = 0;
  st.out = 0;
  EXPECT_EQ(res.ObservedJoinSelectivity(0), 0.0);

  st.left_in = 0;
  st.right_in = 100;
  st.out = 0;
  EXPECT_EQ(res.ObservedJoinSelectivity(0), 0.0);

  // Cross-joins (or count mismatches) can push out above left*right; the
  // value must clamp to 1, never exceed it.
  st.left_in = 2;
  st.right_in = 1;
  st.out = 10;
  EXPECT_EQ(res.ObservedJoinSelectivity(0), 1.0);

  st.left_in = 5;
  st.right_in = 4;
  st.out = 2;
  EXPECT_DOUBLE_EQ(res.ObservedJoinSelectivity(0), 0.1);
}

}  // namespace
}  // namespace robustqp
