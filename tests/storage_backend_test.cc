// Differential tests for the storage backends: execution against an
// mmap-backed column-file catalog must be *bit-identical* to the resident
// catalog — same cost_used double, same NodeStats counters — across
// engines, thread counts, shards, budgets, spill runs, and fused/decode.
// Also covers the storage.page_fault injection site (mapped blocks degrade
// to the decode path without changing any result bit), string-predicate
// exactness on dictionary columns, and the backend-aware cache keys
// (ContextCache, FeedbackStore) including InvalidateQuery prefix edges.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "feedback/feedback_store.h"
#include "optimizer/optimizer.h"
#include "server/context_cache.h"
#include "storage/column_file.h"
#include "storage/table.h"
#include "workloads/queries.h"
#include "workloads/tpcds.h"

namespace robustqp {
namespace {

struct ArmedScope {
  explicit ArmedScope(const std::string& spec, uint64_t seed = 42) {
    const Status st = FaultInjector::Global().Configure(spec, seed);
    RQP_CHECK(st.ok());
  }
  ~ArmedScope() { FaultInjector::Disarm(); }
};

Executor MakeEngine(const Catalog* catalog, Executor::Engine engine,
                    int threads = 1, bool compression = true, int shards = 1) {
  Executor::Options options;
  options.engine = engine;
  options.num_threads = threads;
  options.use_zone_maps = true;
  options.use_compression = compression;
  options.num_shards = shards;
  return Executor(catalog, CostModel::PostgresFlavour(), options);
}

void ExpectSameResult(const ExecutionResult& a, const ExecutionResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.output_rows, b.output_rows) << what;
  EXPECT_EQ(a.cost_used, b.cost_used) << what;  // bitwise double equality
  ASSERT_EQ(a.node_stats.size(), b.node_stats.size()) << what;
  for (size_t i = 0; i < a.node_stats.size(); ++i) {
    const NodeStats& x = a.node_stats[i];
    const NodeStats& y = b.node_stats[i];
    EXPECT_EQ(x.left_in, y.left_in) << what << " node " << i;
    EXPECT_EQ(x.right_in, y.right_in) << what << " node " << i;
    EXPECT_EQ(x.out, y.out) << what << " node " << i;
    ASSERT_EQ(x.filter_in.size(), y.filter_in.size()) << what << " node " << i;
    for (size_t k = 0; k < x.filter_in.size(); ++k) {
      EXPECT_EQ(x.filter_in[k], y.filter_in[k])
          << what << " node " << i << " filter " << k;
      EXPECT_EQ(x.filter_pass[k], y.filter_pass[k])
          << what << " node " << i << " filter " << k;
    }
  }
}

/// Serializes every table of `resident` to column files and reopens them
/// mapped, with the same indexes — the RemapCatalog discipline. The files
/// are unlinked once mapped (the mappings keep them alive).
std::shared_ptr<Catalog> BuildMappedTwin(const Catalog& resident) {
  char tmpl[] = "/tmp/rqp_twin_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  RQP_CHECK(dir != nullptr);
  auto mapped = std::make_shared<Catalog>();
  for (const std::string& name : resident.TableNames()) {
    const CatalogEntry* entry = resident.FindTable(name);
    const std::string path = std::string(dir) + "/" + name + ".rqp";
    RQP_CHECK(WriteTableFile(*entry->table, entry->stats, path).ok());
    MappedTable mt;
    RQP_CHECK(OpenMappedTable(path, &mt).ok());
    std::remove(path.c_str());
    RQP_CHECK(mapped->AddTable(mt.table, std::move(mt.stats)).ok());
    for (const auto& [column, index] : entry->indexes) {
      (void)index;
      RQP_CHECK(mapped->BuildIndex(name, column).ok());
    }
  }
  rmdir(dir);
  return mapped;
}

/// Shared catalogs, built once per process. Scale 0.5 gives store_sales
/// 30000 rows — several 4096-row blocks, so mapped scans cross block and
/// chunk boundaries and page-fault degradation has blocks to hit.
const Catalog& ResidentCatalog() {
  static const std::shared_ptr<Catalog> c = BuildTpcdsCatalog(42, 0.5);
  return *c;
}

const Catalog& MappedCatalog() {
  static const std::shared_ptr<Catalog> c = BuildMappedTwin(ResidentCatalog());
  return *c;
}

EssPoint RandomPoint(Rng* rng, int dims) {
  EssPoint p(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    p[static_cast<size_t>(d)] =
        std::pow(10.0, rng->UniformDouble(-4.0, 0.0));
  }
  return p;
}

// The core differential: for suite queries (including the string-filter
// query 2D_QBRAND), every (engine, threads, shards, fused, budget, spill)
// combination must produce bit-identical results on resident and mapped
// catalogs.
TEST(StorageBackendTest, ResidentAndMappedExecuteBitIdentically) {
  EXPECT_FALSE(ResidentCatalog().FindTable("store_sales")->table->IsMapped());
  EXPECT_TRUE(MappedCatalog().FindTable("store_sales")->table->IsMapped());

  Rng rng(777);
  for (const char* id : {"2D_QBRAND", "3D_Q96", "4D_Q26"}) {
    SCOPED_TRACE(id);
    const Query q = MakeSuiteQuery(id);
    Optimizer opt(&ResidentCatalog(), &q);
    for (int p = 0; p < 2; ++p) {
      const std::unique_ptr<Plan> plan =
          opt.Optimize(RandomPoint(&rng, q.num_epps()));
      const std::string tag = std::string(id) + " point " + std::to_string(p);

      struct Variant {
        const char* name;
        Executor::Engine engine;
        int threads;
        bool compression;
        int shards;
      };
      const std::vector<Variant> variants = {
          {"tuple", Executor::Engine::kTuple, 1, true, 1},
          {"batch", Executor::Engine::kBatch, 1, true, 1},
          {"batch-mt", Executor::Engine::kBatch, 2, true, 1},
          {"batch-decode", Executor::Engine::kBatch, 1, false, 1},
          {"batch-sharded", Executor::Engine::kBatch, 2, true, 3},
      };
      double full_cost = 0.0;
      for (const Variant& v : variants) {
        Executor res_ex = MakeEngine(&ResidentCatalog(), v.engine, v.threads,
                                     v.compression, v.shards);
        Executor map_ex = MakeEngine(&MappedCatalog(), v.engine, v.threads,
                                     v.compression, v.shards);
        const Result<ExecutionResult> r = res_ex.Execute(*plan, -1.0);
        const Result<ExecutionResult> m = map_ex.Execute(*plan, -1.0);
        ASSERT_TRUE(r.ok() && m.ok()) << tag << " " << v.name;
        ExpectSameResult(*r, *m, tag + " full " + v.name);
        full_cost = r->cost_used;

        // Budgeted partial run: the abort must land on the same tuple.
        const Result<ExecutionResult> rb = res_ex.Execute(*plan, 0.455 * full_cost);
        const Result<ExecutionResult> mb = map_ex.Execute(*plan, 0.455 * full_cost);
        ASSERT_TRUE(rb.ok() && mb.ok()) << tag << " " << v.name;
        ExpectSameResult(*rb, *mb, tag + " budget " + v.name);
      }

      // Spill-mode run at the first EPP node.
      Executor res_ex = MakeEngine(&ResidentCatalog(), Executor::Engine::kBatch);
      Executor map_ex = MakeEngine(&MappedCatalog(), Executor::Engine::kBatch);
      const int spill_node = plan->EppNodeId(0);
      const Result<ExecutionResult> rs =
          res_ex.ExecuteSpill(*plan, spill_node, 0.6 * full_cost);
      const Result<ExecutionResult> ms =
          map_ex.ExecuteSpill(*plan, spill_node, 0.6 * full_cost);
      ASSERT_TRUE(rs.ok() && ms.ok()) << tag;
      ExpectSameResult(*rs, *ms, tag + " spill");
    }
  }
}

// The order-preserving dictionary mapping must make a string predicate
// behave exactly like direct evaluation on the strings: the item scan's
// filter_pass equals a by-hand count of rows with i_brand <= the literal.
TEST(StorageBackendTest, StringPredicateMatchesDirectEvaluation) {
  const Query q = MakeSuiteQuery("2D_QBRAND");
  Optimizer opt(&ResidentCatalog(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.2, 0.2});

  const CatalogEntry* item = ResidentCatalog().FindTable("item");
  const int64_t item_rows = item->table->num_rows();
  const int brand_col = item->table->schema().FindColumn("i_brand");
  ASSERT_GE(brand_col, 0);
  int64_t expect_pass = 0;
  for (int64_t r = 0; r < item_rows; ++r) {
    if (item->table->column(brand_col).GetString(r) <= "brand_19") {
      ++expect_pass;
    }
  }
  ASSERT_GT(expect_pass, 0);
  ASSERT_LT(expect_pass, item_rows);

  for (const Catalog* catalog : {&ResidentCatalog(), &MappedCatalog()}) {
    Executor ex = MakeEngine(catalog, Executor::Engine::kBatch);
    const Result<ExecutionResult> res = ex.Execute(*plan, -1.0);
    ASSERT_TRUE(res.ok() && res->completed);
    int matches = 0;
    for (const NodeStats& ns : res->node_stats) {
      if (ns.filter_in.size() == 1 && ns.filter_in[0] == item_rows) {
        EXPECT_EQ(ns.filter_pass[0], expect_pass);
        ++matches;
      }
    }
    EXPECT_EQ(matches, 1) << "expected exactly one item scan node";
  }
}

// storage.page_fault: transient mmap read faults degrade the affected
// blocks to the resident decode path. Results stay bit-identical to the
// disarmed run; the degradations are charged to the robustness report.
TEST(StorageBackendTest, PageFaultDegradesWithoutChangingResults) {
  const Query q = MakeSuiteQuery("3D_Q96");
  Optimizer opt(&MappedCatalog(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.05, 0.05, 0.05});

  Executor ex = MakeEngine(&MappedCatalog(), Executor::Engine::kBatch);
  const Result<ExecutionResult> baseline = ex.Execute(*plan, -1.0);
  ASSERT_TRUE(baseline.ok() && baseline->completed);
  EXPECT_EQ(baseline->robustness.page_fault_degradations, 0);

  {
    ArmedScope armed("storage.page_fault:p=0.7", 5);
    FaultStreamScope scope(3);
    const Result<ExecutionResult> faulted = ex.Execute(*plan, -1.0);
    ASSERT_TRUE(faulted.ok());
    ExpectSameResult(*baseline, *faulted, "page-fault degraded");
    EXPECT_GT(faulted->robustness.page_fault_degradations, 0);
  }
  {
    // Every block degraded: still bit-identical.
    ArmedScope armed("storage.page_fault:p=1", 6);
    FaultStreamScope scope(4);
    const Result<ExecutionResult> faulted = ex.Execute(*plan, -1.0);
    ASSERT_TRUE(faulted.ok());
    ExpectSameResult(*baseline, *faulted, "page-fault all-degraded");
    EXPECT_GT(faulted->robustness.page_fault_degradations, 0);
  }
}

// Armed-quiet ≡ disarmed: a spec that never fires leaves everything
// bitwise identical, including a zero degradation count.
TEST(StorageBackendTest, PageFaultArmedQuietIsBitwiseDisarmed) {
  const Query q = MakeSuiteQuery("3D_Q96");
  Optimizer opt(&MappedCatalog(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.05, 0.05, 0.05});
  Executor ex = MakeEngine(&MappedCatalog(), Executor::Engine::kBatch);
  const Result<ExecutionResult> baseline = ex.Execute(*plan, -1.0);
  ASSERT_TRUE(baseline.ok());

  ArmedScope armed("storage.page_fault:after=1000000000", 5);
  FaultStreamScope scope(3);
  const Result<ExecutionResult> quiet = ex.Execute(*plan, -1.0);
  ASSERT_TRUE(quiet.ok());
  ExpectSameResult(*baseline, *quiet, "armed quiet");
  EXPECT_EQ(quiet->robustness.page_fault_degradations, 0);
}

// The site only exists for mapped storage: a resident catalog never draws
// from it, and the tuple engine (which decodes per-row anyway) never
// degrades either.
TEST(StorageBackendTest, PageFaultIgnoredOffTheMappedBatchPath) {
  const Query q = MakeSuiteQuery("3D_Q96");
  Optimizer opt(&ResidentCatalog(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.05, 0.05, 0.05});

  {
    Executor ex = MakeEngine(&ResidentCatalog(), Executor::Engine::kBatch);
    const Result<ExecutionResult> baseline = ex.Execute(*plan, -1.0);
    ArmedScope armed("storage.page_fault:p=1", 5);
    FaultStreamScope scope(3);
    const Result<ExecutionResult> armed_run = ex.Execute(*plan, -1.0);
    ASSERT_TRUE(baseline.ok() && armed_run.ok());
    ExpectSameResult(*baseline, *armed_run, "resident armed");
    EXPECT_EQ(armed_run->robustness.page_fault_degradations, 0);
  }
  {
    Executor ex = MakeEngine(&MappedCatalog(), Executor::Engine::kTuple);
    const Result<ExecutionResult> baseline = ex.Execute(*plan, -1.0);
    ArmedScope armed("storage.page_fault:p=1", 5);
    FaultStreamScope scope(3);
    const Result<ExecutionResult> armed_run = ex.Execute(*plan, -1.0);
    ASSERT_TRUE(baseline.ok() && armed_run.ok());
    ExpectSameResult(*baseline, *armed_run, "tuple armed");
    EXPECT_EQ(armed_run->robustness.page_fault_degradations, 0);
  }
}

// Degradation under morsel parallelism and sharding: the coordinator draws
// the per-block fault set once, so results stay deterministic and
// bit-identical to the disarmed run at any thread/shard count.
TEST(StorageBackendTest, PageFaultDeterministicAcrossThreadsAndShards) {
  const Query q = MakeSuiteQuery("3D_Q96");
  Optimizer opt(&MappedCatalog(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.05, 0.05, 0.05});

  Executor ex = MakeEngine(&MappedCatalog(), Executor::Engine::kBatch,
                           /*threads=*/2, /*compression=*/true, /*shards=*/3);
  const Result<ExecutionResult> baseline = ex.Execute(*plan, -1.0);
  ASSERT_TRUE(baseline.ok());

  ArmedScope armed("storage.page_fault:p=0.7", 5);
  FaultStreamScope scope(3);
  const Result<ExecutionResult> faulted = ex.Execute(*plan, -1.0);
  ASSERT_TRUE(faulted.ok());
  ExpectSameResult(*baseline, *faulted, "sharded page-fault");
  EXPECT_GT(faulted->robustness.page_fault_degradations, 0);
}

// ---------------------------------------------------------------------------
// Backend-aware cache keys.
// ---------------------------------------------------------------------------

TEST(StorageBackendTest, ContextCacheKeySeparatesBackends) {
  Ess::Config cfg;
  cfg.points_per_dim = 8;
  const std::string resident =
      ContextCache::Key("2D_Q91", cfg, Encoding::kAuto, true,
                        StorageBackend::kResident);
  const std::string mapped = ContextCache::Key(
      "2D_Q91", cfg, Encoding::kAuto, true, StorageBackend::kMmap);
  EXPECT_NE(resident, mapped);
  EXPECT_NE(resident.find("|resident"), std::string::npos);
  EXPECT_NE(mapped.find("|mmap"), std::string::npos);
  // The default-knob overload keys as resident.
  EXPECT_EQ(ContextCache::Key("2D_Q91", cfg), resident);
}

TEST(StorageBackendTest, ContextCacheServesBothBackends) {
  ContextCache cache(ContextCache::Options{/*capacity=*/8});
  Ess::Config cfg;
  cfg.points_per_dim = 8;
  bool hit = true;
  const auto resident = cache.Get("2D_Q91", cfg, Encoding::kAuto, true,
                                  StorageBackend::kResident, &hit);
  ASSERT_TRUE(resident.ok());
  EXPECT_FALSE(hit);
  const auto mapped = cache.Get("2D_Q91", cfg, Encoding::kAuto, true,
                                StorageBackend::kMmap, &hit);
  ASSERT_TRUE(mapped.ok());
  EXPECT_FALSE(hit) << "backends must not alias";
  EXPECT_FALSE(
      (*resident)->catalog->FindTable("store_sales")->table->IsMapped());
  EXPECT_TRUE((*mapped)->catalog->FindTable("store_sales")->table->IsMapped());

  // Warm hits on both keys; and the ESS surfaces are bit-identical (the
  // backend is physical only).
  ASSERT_TRUE(cache.Get("2D_Q91", cfg, Encoding::kAuto, true,
                        StorageBackend::kResident, &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.Get("2D_Q91", cfg, Encoding::kAuto, true,
                        StorageBackend::kMmap, &hit).ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ((*resident)->ess->num_contours(), (*mapped)->ess->num_contours());
}

// InvalidateQuery matches on the `id|` prefix, so an id that is a proper
// prefix of another id (the q1 vs q10 shape) must never cross-invalidate.
TEST(StorageBackendTest, InvalidateQueryPrefixEdgeCases) {
  Ess::Config cfg;
  cfg.points_per_dim = 8;
  // Key-level: "q1"'s invalidation prefix does not match "q10"'s key.
  const std::string k10 = ContextCache::Key("q10", cfg);
  EXPECT_EQ(k10.compare(0, 4, "q10|"), 0);
  EXPECT_NE(k10.compare(0, 3, "q1|"), 0);

  // Cache-level: "2D_Q9" is a proper prefix of "2D_Q91"; invalidating it
  // must drop nothing, while the exact id drops exactly its entries.
  ContextCache cache(ContextCache::Options{/*capacity=*/8});
  ASSERT_TRUE(cache.Get("2D_Q91", cfg).ok());
  ASSERT_TRUE(cache.Get("2D_QBRAND", cfg).ok());
  EXPECT_EQ(cache.InvalidateQuery("2D_Q9"), 0u);
  EXPECT_EQ(cache.InvalidateQuery("2D_Q"), 0u);
  bool hit = false;
  ASSERT_TRUE(cache.Get("2D_Q91", cfg, &hit).ok());
  EXPECT_TRUE(hit) << "prefix invalidation must not cross ids";
  EXPECT_EQ(cache.InvalidateQuery("2D_Q91"), 1u);
  ASSERT_TRUE(cache.Get("2D_QBRAND", cfg, &hit).ok());
  EXPECT_TRUE(hit) << "sibling id must survive";
  ASSERT_TRUE(cache.Get("2D_Q91", cfg, &hit).ok());
  EXPECT_FALSE(hit) << "invalidated id must rebuild";
  EXPECT_EQ(cache.stats().invalidations, 1);
}

TEST(StorageBackendTest, FeedbackStoreKeySeparatesBackends) {
  const std::string resident = feedback::FeedbackStore::Key("3D_Q96", 3);
  EXPECT_EQ(resident, feedback::FeedbackStore::Key("3D_Q96", 3, "resident"));
  const std::string mapped =
      feedback::FeedbackStore::Key("3D_Q96", 3, "mmap");
  EXPECT_NE(resident, mapped);
  // Dims still key too.
  EXPECT_NE(feedback::FeedbackStore::Key("3D_Q96", 2, "mmap"), mapped);
}

}  // namespace
}  // namespace robustqp
