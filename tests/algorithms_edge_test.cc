// Edge-case and invariant tests for the discovery algorithms beyond the
// headline theorems: boundary true locations, platform independence of
// the bound, non-doubling contour ratios, determinism, per-step budget
// accounting, contour coverage invariants, and alignment-analysis sanity.

#include <gtest/gtest.h>

#include <memory>

#include "core/alignedbound.h"
#include "core/alignment.h"
#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "harness/evaluator.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeBranchQuery;
using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

struct Bundle {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Query> query;
  std::unique_ptr<Ess> ess;
};

Bundle MakeBundle(int num_epps, int points, double ratio = 2.0,
                  CostModel cm = CostModel::PostgresFlavour()) {
  Bundle b;
  b.catalog = MakeTinyCatalog();
  b.query = std::make_unique<Query>(MakeStarQuery(num_epps));
  Ess::Config config;
  config.points_per_dim = points;
  config.min_sel = 1e-4;
  config.contour_cost_ratio = ratio;
  config.cost_model = cm;
  b.ess = Ess::Build(*b.catalog, *b.query, config);
  return b;
}

TEST(AlgorithmEdgeTest, OriginLocationIsCheapForAll) {
  Bundle b = MakeBundle(2, 16);
  const GridLoc origin = {0, 0};
  for (int algo = 0; algo < 3; ++algo) {
    SimulatedOracle oracle(b.ess.get(), origin);
    DiscoveryResult r;
    switch (algo) {
      case 0: {
        PlanBouquet pb(b.ess.get());
        r = pb.Run(&oracle);
        break;
      }
      case 1: {
        SpillBound sb(b.ess.get());
        r = sb.Run(&oracle);
        break;
      }
      default: {
        AlignedBound ab(b.ess.get());
        r = ab.Run(&oracle);
        break;
      }
    }
    ASSERT_TRUE(r.completed) << "algo " << algo;
    EXPECT_EQ(r.final_contour, 0) << "algo " << algo;
    // At the origin, total cost is at most a handful of C_min budgets.
    EXPECT_LE(r.total_cost / b.ess->OptimalCost(origin), 4.0) << "algo " << algo;
  }
}

TEST(AlgorithmEdgeTest, TerminusLocationCompletes) {
  Bundle b = MakeBundle(2, 16);
  const GridLoc terminus = {15, 15};
  SpillBound sb(b.ess.get());
  SimulatedOracle oracle(b.ess.get(), terminus);
  const DiscoveryResult r = sb.Run(&oracle);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.final_contour, b.ess->num_contours() - 1);
  EXPECT_LE(r.total_cost / b.ess->OptimalCost(terminus),
            SpillBound::MsoGuarantee(2) * (1 + 1e-6));
}

TEST(AlgorithmEdgeTest, BoundHoldsOnCommercialFlavour) {
  // Platform independence: the same D^2+3D bound holds on a different
  // engine cost model, even though the plan diagram (and PB's rho) shift.
  Bundle pg = MakeBundle(2, 12);
  Bundle com = MakeBundle(2, 12, 2.0, CostModel::CommercialFlavour());
  SpillBound sb_pg(pg.ess.get());
  SpillBound sb_com(com.ess.get());
  EXPECT_LE(Evaluate(sb_pg, *pg.ess).mso, 10.0 * (1 + 1e-6));
  EXPECT_LE(Evaluate(sb_com, *com.ess).mso, 10.0 * (1 + 1e-6));
  PlanBouquet pb_pg(pg.ess.get());
  PlanBouquet pb_com(com.ess.get());
  // PB's guarantee may differ across flavours; each must still hold.
  EXPECT_LE(Evaluate(pb_pg, *pg.ess).mso,
            pb_pg.MsoGuarantee() * (1 + 1e-6));
  EXPECT_LE(Evaluate(pb_com, *com.ess).mso,
            pb_com.MsoGuarantee() * (1 + 1e-6));
}

struct RatioCase {
  double ratio;
};

class CostRatioTest : public ::testing::TestWithParam<RatioCase> {};

TEST_P(CostRatioTest, GuaranteeHoldsForRatio) {
  const double r = GetParam().ratio;
  Bundle b = MakeBundle(2, 12, r);
  SpillBound sb(b.ess.get());
  const SuboptimalityStats stats = Evaluate(sb, *b.ess);
  EXPECT_LE(stats.mso,
            SpillBound::MsoGuaranteeForRatio(2, r) * (1 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CostRatioTest,
                         ::testing::Values(RatioCase{1.5}, RatioCase{1.8},
                                           RatioCase{2.5}, RatioCase{3.0}),
                         [](const ::testing::TestParamInfo<RatioCase>& info) {
                           return "r" + std::to_string(static_cast<int>(
                                            info.param.ratio * 10));
                         });

TEST(AlgorithmEdgeTest, GuaranteeFormulaSpecialValues) {
  // Paper values: doubling gives 10 in 2D; 1.8 gives 9.9.
  EXPECT_DOUBLE_EQ(SpillBound::MsoGuaranteeForRatio(2, 2.0), 10.0);
  EXPECT_NEAR(SpillBound::MsoGuaranteeForRatio(2, 1.8), 9.9, 1e-9);
  EXPECT_DOUBLE_EQ(SpillBound::MsoGuaranteeForRatio(1, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(SpillBound::MsoGuarantee(6), 54.0);
}

TEST(AlgorithmEdgeTest, RunsAreDeterministic) {
  Bundle b = MakeBundle(3, 8);
  SpillBound sb(b.ess.get());
  const GridLoc qa = {5, 2, 6};
  SimulatedOracle o1(b.ess.get(), qa);
  SimulatedOracle o2(b.ess.get(), qa);
  const DiscoveryResult r1 = sb.Run(&o1);
  const DiscoveryResult r2 = sb.Run(&o2);
  ASSERT_EQ(r1.steps.size(), r2.steps.size());
  EXPECT_DOUBLE_EQ(r1.total_cost, r2.total_cost);
  for (size_t i = 0; i < r1.steps.size(); ++i) {
    EXPECT_EQ(r1.steps[i].plan_name, r2.steps[i].plan_name);
    EXPECT_EQ(r1.steps[i].spill_dim, r2.steps[i].spill_dim);
    EXPECT_DOUBLE_EQ(r1.steps[i].cost_charged, r2.steps[i].cost_charged);
  }
}

TEST(AlgorithmEdgeTest, EveryStepChargesAtMostBudget) {
  Bundle b = MakeBundle(3, 8);
  SpillBound sb(b.ess.get());
  AlignedBound ab(b.ess.get());
  PlanBouquet pb(b.ess.get());
  for (int64_t lin = 0; lin < b.ess->num_locations(); lin += 13) {
    for (int algo = 0; algo < 3; ++algo) {
      SimulatedOracle oracle(b.ess.get(), b.ess->FromLinear(lin));
      const DiscoveryResult r = algo == 0   ? pb.Run(&oracle)
                                : algo == 1 ? sb.Run(&oracle)
                                            : ab.Run(&oracle);
      ASSERT_TRUE(r.completed);
      double total = 0.0;
      for (const auto& s : r.steps) {
        EXPECT_LE(s.cost_charged, s.budget * (1 + 1e-9));
        total += s.cost_charged;
      }
      EXPECT_NEAR(total, r.total_cost, r.total_cost * 1e-12);
    }
  }
}

TEST(AlgorithmEdgeTest, PlanBouquetContourSetsCoverFrontiers) {
  // The completion-everywhere proof needs: every frontier location of
  // contour i is covered by a reduced-set plan within (1+lambda) CC_i.
  Bundle b = MakeBundle(2, 16);
  const double lambda = 0.2;
  PlanBouquet pb(b.ess.get(), {lambda, true});
  for (int i = 0; i < b.ess->num_contours(); ++i) {
    const double budget = b.ess->ContourCost(i) * (1 + lambda) * (1 + 1e-9);
    for (int64_t lin : b.ess->FrontierLocations(i)) {
      const EssPoint q = b.ess->SelAt(b.ess->FromLinear(lin));
      bool covered = false;
      for (const Plan* p : pb.ContourSet(i)) {
        if (b.ess->optimizer().PlanCost(*p, q) <= budget) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "contour " << i << " location " << lin;
    }
  }
}

TEST(AlgorithmEdgeTest, SpillBoundChoicesSpillOnRequestedDim) {
  // P^j_max must actually spill on dimension j given the unlearned set.
  Bundle b = MakeBundle(3, 8);
  SpillBound sb(b.ess.get());
  SimulatedOracle oracle(b.ess.get(), {7, 7, 7});
  const DiscoveryResult r = sb.Run(&oracle);
  ASSERT_TRUE(r.completed);
  // Reconstruct unlearned state along the trace and check each spill step.
  std::vector<bool> unlearned(3, true);
  for (const auto& s : r.steps) {
    if (s.spill_dim < 0) continue;
    const Plan* plan = nullptr;
    for (const Plan* p : b.ess->pool().plans()) {
      if (p->display_name() == s.plan_name) plan = p;
    }
    ASSERT_NE(plan, nullptr) << s.plan_name;
    EXPECT_EQ(plan->SpillDimension(unlearned), s.spill_dim);
    if (s.completed) unlearned[static_cast<size_t>(s.spill_dim)] = false;
  }
}

TEST(AlignmentAnalysisTest, NativeAlignmentImpliesUnitPenalty) {
  Bundle b = MakeBundle(2, 16);
  ConstrainedPlanCache cache(b.ess.get());
  const std::vector<ContourAlignmentInfo> infos =
      AnalyzeContourAlignment(*b.ess, &cache);
  ASSERT_EQ(static_cast<int>(infos.size()), b.ess->num_contours());
  for (const auto& info : infos) {
    if (info.natively_aligned) {
      EXPECT_DOUBLE_EQ(info.min_induce_penalty, 1.0);
    } else {
      EXPECT_GE(info.min_induce_penalty, 1.0 - 1e-9);
    }
  }
}

TEST(AlignmentAnalysisTest, ConstrainedCacheMemoizes) {
  Bundle b = MakeBundle(2, 12);
  ConstrainedPlanCache cache(b.ess.get());
  const std::vector<bool> unlearned = {true, true};
  const auto& e1 = cache.Get(5, 0, unlearned);
  const int plans_after_first = cache.num_plans();
  const auto& e2 = cache.Get(5, 0, unlearned);
  EXPECT_EQ(&e1, &e2);
  EXPECT_EQ(cache.num_plans(), plans_after_first);
  // The constrained plan really spills on the requested dim.
  ASSERT_NE(e1.plan, nullptr);
  EXPECT_EQ(e1.plan->SpillDimension(unlearned), 0);
  EXPECT_GE(e1.cost, b.ess->OptimalCost(int64_t{5}) * (1 - 1e-9));
}

TEST(EssSliceTest, SliceCoveringPropertyUnderLearnedDims) {
  // The quantum-progress argument applied within an effective (learnt)
  // slice: every in-slice hypograph point is dominated (within the slice)
  // by a slice-frontier point.
  Bundle b = MakeBundle(2, 16);
  const int pin = 9;
  const std::vector<int> fixed = {pin, -1};
  for (int i = 0; i < b.ess->num_contours(); i += 2) {
    const double budget = b.ess->ContourCost(i) * (1 + 1e-9);
    const std::vector<int64_t> frontier = b.ess->SliceFrontier(i, fixed);
    for (int y = 0; y < 16; ++y) {
      const GridLoc loc = {pin, y};
      if (b.ess->OptimalCost(loc) > budget) continue;
      bool dominated = false;
      for (int64_t f : frontier) {
        if (b.ess->FromLinear(f)[1] >= y) dominated = true;
      }
      EXPECT_TRUE(dominated) << "contour " << i << " y " << y;
    }
  }
}

}  // namespace
}  // namespace robustqp
