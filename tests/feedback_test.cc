// Tests for the closed-loop feedback subsystem: the FeedbackStore's
// calibration/drift/eviction mechanics, the MSO-preserving warm-start
// hint construction, the empty-store == store-disabled bitwise contract,
// warm-vs-cold differentials over stale statistics x shards x armed
// fault specs (every run's sub-optimality within the cold MSO bound),
// graceful degradation under feedback.store_load faults, the
// committed-attempt-only observation guarantee under transient retries,
// and the QueryService integration (counters, drift-driven ContextCache
// invalidation).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "exec/executor.h"
#include "ess/ess.h"
#include "feedback/feedback_store.h"
#include "feedback/warm_start.h"
#include "harness/evaluator.h"
#include "optimizer/optimizer.h"
#include "server/context_cache.h"
#include "server/query_service.h"
#include "test_util.h"
#include "workloads/stale_stats.h"

namespace robustqp {
namespace {

using feedback::FeedbackStore;
using feedback::MakeWarmStartHint;
using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

/// RAII disarm so a failing assertion cannot leak an armed injector into
/// later tests.
struct ArmedScope {
  explicit ArmedScope(const std::string& spec, uint64_t seed = 42) {
    const Status st = FaultInjector::Global().Configure(spec, seed);
    RQP_CHECK(st.ok());
  }
  ~ArmedScope() { FaultInjector::Disarm(); }
};

struct EssBundle {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Query> query;
  std::unique_ptr<Ess> ess;
};

EssBundle MakeEss(int num_epps, bool stale = false, int points = 12) {
  EssBundle b;
  b.catalog = MakeTinyCatalog();
  if (stale) {
    // Drifted NDV statistics: the classic "outdated ANALYZE" estimation
    // failure the feedback loop is meant to survive.
    b.catalog = WithStaleStatistics(*b.catalog, 50.0);
  }
  b.query = std::make_unique<Query>(MakeStarQuery(num_epps));
  Ess::Config config;
  config.points_per_dim = points;
  config.min_sel = 1e-4;
  b.ess = Ess::Build(*b.catalog, *b.query, config);
  return b;
}

GridLoc DeepQa(const Ess& ess) {
  return GridLoc(static_cast<size_t>(ess.dims()), ess.points() * 3 / 4);
}

GridLoc ShallowQa(const Ess& ess) {
  return GridLoc(static_cast<size_t>(ess.dims()), ess.points() / 4);
}

/// Seeds `store` with min_observations identical raw observations.
void SeedStore(FeedbackStore* store, const std::string& key,
               const std::vector<double>& obs, double cost) {
  for (int i = 0; i < store->options().min_observations; ++i) {
    ASSERT_FALSE(store->Observe(key, obs, cost, 0).drifted);
  }
}

/// Seeds `store` with enough identical observations at `qa` that Get()
/// returns a valid calibration centred there.
void SeedStore(FeedbackStore* store, const std::string& key, const Ess& ess,
               const GridLoc& qa) {
  const EssPoint sel = ess.SelAt(qa);
  const double cost = ess.OptimalCost(qa);
  const int contour = ess.ContourOf(cost);
  for (int i = 0; i < store->options().min_observations; ++i) {
    const FeedbackStore::DriftSignal sig =
        store->Observe(key, sel, cost, contour);
    ASSERT_FALSE(sig.drifted);
  }
}

// ---------------------------------------------------------------------------
// FeedbackStore basics: keying, calibration gating, LRU, invalidation.
// ---------------------------------------------------------------------------

TEST(FeedbackStoreTest, KeyPoolsAcrossPlatformKnobs) {
  // Engines/encodings/build modes deliberately do NOT key the store —
  // only query shape, ESS dimensionality, and the storage backend do
  // (mmap catalogs are rebuilt from disk, so their calibrations must not
  // leak into resident serving and vice versa).
  EXPECT_EQ(FeedbackStore::Key("2D_Q91", 2), "2D_Q91|d2|resident");
  EXPECT_EQ(FeedbackStore::Key("5D_Q19", 5), "5D_Q19|d5|resident");
  EXPECT_EQ(FeedbackStore::Key("2D_Q91", 2, "mmap"), "2D_Q91|d2|mmap");
  EXPECT_NE(FeedbackStore::Key("2D_Q91", 2), FeedbackStore::Key("2D_Q91", 3));
  EXPECT_NE(FeedbackStore::Key("2D_Q91", 2),
            FeedbackStore::Key("2D_Q91", 2, "mmap"));
}

TEST(FeedbackStoreTest, CalibrationGatesOnMinObservations) {
  FeedbackStore store;
  const std::string key = FeedbackStore::Key("q", 2);
  const std::vector<double> obs = {0.01, 0.02};

  EXPECT_FALSE(store.Get(key).valid);  // nothing recorded
  for (int i = 0; i < store.options().min_observations - 1; ++i) {
    EXPECT_FALSE(store.Observe(key, obs, 100.0, 1).drifted);
    EXPECT_FALSE(store.Get(key).valid) << "valid before min_observations";
  }
  EXPECT_FALSE(store.Observe(key, obs, 100.0, 1).drifted);

  const FeedbackStore::Calibration cal = store.Get(key);
  ASSERT_TRUE(cal.valid);
  EXPECT_FALSE(cal.degraded);
  ASSERT_EQ(cal.sel.size(), 2u);
  // Identical observations: the geometric mean is the observation itself,
  // and the confidence region (sigma floored) brackets it.
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_NEAR(cal.sel[d], obs[d], obs[d] * 1e-9);
    EXPECT_LT(cal.lo[d], cal.sel[d]);
    EXPECT_GT(cal.hi[d], cal.sel[d]);
    EXPECT_GT(cal.lo[d], 0.0);
    EXPECT_LE(cal.hi[d], 1.0);
  }
  EXPECT_DOUBLE_EQ(cal.confirmed_cost, 100.0);
  EXPECT_EQ(cal.confirmed_contour, 1);
  EXPECT_EQ(cal.version, 0);

  const FeedbackStore::Stats s = store.stats();
  EXPECT_EQ(s.observations, store.options().min_observations);
  EXPECT_GE(s.misses, 1);
  EXPECT_GE(s.hits, 1);
  EXPECT_EQ(s.drift_events, 0);
  EXPECT_EQ(s.size, 1u);
}

TEST(FeedbackStoreTest, NonPositiveEntriesAreUnknownAndSkipped) {
  FeedbackStore store;
  const std::string key = FeedbackStore::Key("q", 2);
  // Dimension 1 carries no evidence (-1) in any observation, so the
  // calibration never becomes valid no matter how dim 0 accumulates.
  for (int i = 0; i < 8; ++i) {
    store.Observe(key, {0.01, -1.0}, 10.0, 0);
  }
  EXPECT_FALSE(store.Get(key).valid);
  // One full observation later, dim 1 still lacks min_observations.
  store.Observe(key, {0.01, 0.5}, 10.0, 0);
  EXPECT_FALSE(store.Get(key).valid);
  store.Observe(key, {0.01, 0.5}, 10.0, 0);
  EXPECT_TRUE(store.Get(key).valid);
}

TEST(FeedbackStoreTest, LruEvictionAtCapacity) {
  FeedbackStore::Options opts;
  opts.capacity = 2;
  FeedbackStore store(opts);
  const std::vector<double> obs = {0.1};
  SeedStore(&store, "a|d1", obs, /*cost=*/1.0);
  SeedStore(&store, "b|d1", obs, 1.0);
  ASSERT_TRUE(store.Get("a|d1").valid);  // touch a: b is now LRU
  SeedStore(&store, "c|d1", obs, 1.0);   // evicts b
  EXPECT_TRUE(store.Get("a|d1").valid);
  EXPECT_FALSE(store.Get("b|d1").valid);
  EXPECT_TRUE(store.Get("c|d1").valid);
  const FeedbackStore::Stats s = store.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.size, 2u);
}

TEST(FeedbackStoreTest, InvalidateAndClear) {
  FeedbackStore store;
  const std::string key = FeedbackStore::Key("q", 1);
  SeedStore(&store, key, {0.05}, 7.0);
  ASSERT_TRUE(store.Get(key).valid);

  store.Invalidate(key);
  EXPECT_FALSE(store.Get(key).valid);
  // History restarts: min_observations must accumulate again.
  SeedStore(&store, key, {0.05}, 7.0);
  EXPECT_TRUE(store.Get(key).valid);

  const int64_t observations_before = store.stats().observations;
  store.Clear();
  EXPECT_FALSE(store.Get(key).valid);
  EXPECT_EQ(store.stats().size, 0u);
  // Counters survive Clear.
  EXPECT_EQ(store.stats().observations, observations_before);
}

// ---------------------------------------------------------------------------
// Drift detection: CUSUM fires on a regime shift, invalidates, reseeds.
// ---------------------------------------------------------------------------

TEST(FeedbackStoreDriftTest, CusumFiresOnRegimeShiftAndReseeds) {
  FeedbackStore store;
  const std::string key = FeedbackStore::Key("q", 2);
  for (int i = 0; i < 6; ++i) {
    ASSERT_FALSE(store.Observe(key, {0.01, 0.02}, 50.0, 1).drifted);
  }
  ASSERT_TRUE(store.Get(key).valid);

  // The data changed regimes: a 50x selectivity shift is a ~34-sigma
  // residual against the floored sigma, far past the CUSUM threshold.
  const FeedbackStore::DriftSignal sig =
      store.Observe(key, {0.5, 0.02}, 900.0, 3);
  EXPECT_TRUE(sig.drifted);
  EXPECT_EQ(sig.dim, 0);  // dim 0 carried the shift
  EXPECT_GT(sig.score, store.options().drift_threshold);
  EXPECT_EQ(store.stats().drift_events, 1);

  // The old calibration is gone; the shifted observation seeds the new
  // regime with a bumped version.
  FeedbackStore::Calibration cal = store.Get(key);
  EXPECT_FALSE(cal.valid);
  for (int i = 0; i < store.options().min_observations; ++i) {
    EXPECT_FALSE(store.Observe(key, {0.5, 0.02}, 900.0, 3).drifted)
        << "stable new regime must not re-trip";
  }
  cal = store.Get(key);
  ASSERT_TRUE(cal.valid);
  EXPECT_EQ(cal.version, 1);
  EXPECT_NEAR(cal.sel[0], 0.5, 0.5 * 1e-9);
}

TEST(FeedbackStoreDriftTest, SmallNoiseDoesNotTrip) {
  FeedbackStore store;
  const std::string key = FeedbackStore::Key("q", 1);
  // Alternating observations within the slack band: CUSUM must decay,
  // never accumulate to the threshold.
  for (int i = 0; i < 64; ++i) {
    const double sel = (i % 2 == 0) ? 0.010 : 0.011;
    EXPECT_FALSE(store.Observe(key, {sel}, 5.0, 0).drifted) << "obs " << i;
  }
  EXPECT_EQ(store.stats().drift_events, 0);
  EXPECT_TRUE(store.Get(key).valid);
}

// ---------------------------------------------------------------------------
// Warm-start hint construction: cold-schedule budgets, conservative
// snapping, rejection of unusable calibrations.
// ---------------------------------------------------------------------------

class WarmStartHintTest : public ::testing::Test {
 protected:
  void SetUp() override { bundle_ = MakeEss(2); }
  EssBundle bundle_;
};

TEST_F(WarmStartHintTest, BudgetsAreTheUnchangedColdContourCosts) {
  const Ess& ess = *bundle_.ess;
  FeedbackStore store;
  const std::string key = FeedbackStore::Key("star2", ess.dims());
  SeedStore(&store, key, ess, DeepQa(ess));

  const FeedbackStore::Calibration cal = store.Get(key);
  ASSERT_TRUE(cal.valid);
  const WarmStartHint hint = MakeWarmStartHint(ess, cal, /*max_probes=*/2);
  ASSERT_TRUE(hint.valid);
  ASSERT_NE(hint.probe_plan, nullptr);
  ASSERT_FALSE(hint.probe_budgets.empty());
  EXPECT_LE(hint.probe_budgets.size(), 2u);
  EXPECT_EQ(hint.last_contour - hint.first_contour + 1,
            static_cast<int>(hint.probe_budgets.size()));
  // The probes reuse the cold doubling schedule verbatim — this is the
  // heart of the MSO-preservation argument.
  for (size_t i = 0; i < hint.probe_budgets.size(); ++i) {
    EXPECT_DOUBLE_EQ(hint.probe_budgets[i],
                     ess.ContourCost(hint.first_contour + static_cast<int>(i)));
  }
  // The final budget covers the region's expensive corner: the seeded
  // location's optimal cost must fit under it.
  EXPECT_GE(hint.probe_budgets.back(), ess.OptimalCost(DeepQa(ess)));
}

TEST_F(WarmStartHintTest, UnusableCalibrationsYieldInvalidHints) {
  const Ess& ess = *bundle_.ess;
  FeedbackStore::Calibration cal;  // invalid by default
  EXPECT_FALSE(MakeWarmStartHint(ess, cal).valid);

  cal.valid = true;
  cal.degraded = true;
  cal.sel = cal.lo = cal.hi = std::vector<double>(2, 0.01);
  EXPECT_FALSE(MakeWarmStartHint(ess, cal).valid);

  // Dimensionality mismatch with the surface.
  cal.degraded = false;
  cal.sel = cal.lo = cal.hi = std::vector<double>(3, 0.01);
  EXPECT_FALSE(MakeWarmStartHint(ess, cal).valid);
}

// ---------------------------------------------------------------------------
// Bitwise contracts: empty store == disabled store == no store.
// ---------------------------------------------------------------------------

TEST(FeedbackDifferentialTest, EmptyStoreFirstRunBitIdenticalToDisabled) {
  const EssBundle b = MakeEss(2);
  const Ess& ess = *b.ess;
  const GridLoc qa = DeepQa(ess);
  SpillBound sb(&ess);

  const std::vector<RepeatedRunStats> cold =
      EvaluateRepeated(sb, ess, qa, "star2", /*store=*/nullptr, 1);
  FeedbackStore store;
  const std::vector<RepeatedRunStats> fresh =
      EvaluateRepeated(sb, ess, qa, "star2", &store, 1);

  ASSERT_EQ(cold.size(), 1u);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_TRUE(cold[0].completed && fresh[0].completed);
  // An empty store's miss must produce the disabled-store run, bitwise.
  EXPECT_EQ(fresh[0].total_cost, cold[0].total_cost);
  EXPECT_EQ(fresh[0].num_executions, cold[0].num_executions);
  EXPECT_FALSE(fresh[0].feedback_hit);
  EXPECT_FALSE(fresh[0].warm_started);
}

TEST(FeedbackDifferentialTest, RunOneShotNullStoreMatchesFeedbackOff) {
  ServiceRequest off;
  off.qa = {0.05, 0.1};
  ServiceRequest on = off;
  on.options.use_feedback = true;

  ContextCache cache_a(ContextCache::Options{4});
  ContextCache cache_b(ContextCache::Options{4});
  const ServiceResponse r_off = QueryService::RunOneShot(off, &cache_a);
  // use_feedback with no store behaves exactly like feedback off.
  const ServiceResponse r_on =
      QueryService::RunOneShot(on, &cache_b, /*store=*/nullptr);

  ASSERT_TRUE(r_off.status.ok());
  ASSERT_TRUE(r_on.status.ok());
  EXPECT_EQ(r_on.cost_used, r_off.cost_used);
  EXPECT_EQ(r_on.discovery.steps.size(), r_off.discovery.steps.size());
  EXPECT_EQ(r_on.suboptimality, r_off.suboptimality);
  EXPECT_FALSE(r_on.feedback_hit);
  EXPECT_FALSE(r_on.warm_started);
  EXPECT_FALSE(r_on.feedback_drift);
}

// ---------------------------------------------------------------------------
// Warm-vs-cold differential: stale statistics x algorithms x shards x
// armed fault specs. Every run must complete within the cold MSO bound;
// warm runs must be cheaper than cold ones.
// ---------------------------------------------------------------------------

TEST(FeedbackDifferentialTest, WarmNeverExceedsColdMsoBoundUnderChaos) {
  constexpr int kRepeats = 6;
  const char* kSpecs[] = {"", "exec.*:p=0.01",
                          "exec.*:p=0.005;feedback.store_load:p=0.2"};
  for (const bool stale : {false, true}) {
    const EssBundle b = MakeEss(2, stale);
    const Ess& ess = *b.ess;
    const GridLoc qa = DeepQa(ess);
    SpillBound sb(&ess);
    PlanBouquet pb(&ess);
    for (const DiscoveryAlgorithm* algo :
         {static_cast<const DiscoveryAlgorithm*>(&sb),
          static_cast<const DiscoveryAlgorithm*>(&pb)}) {
      for (const int shards : {1, 4}) {
        for (const char* spec : kSpecs) {
          SCOPED_TRACE(std::string(algo->name()) + " stale=" +
                       (stale ? "1" : "0") + " shards=" +
                       std::to_string(shards) + " spec=" + spec);
          EvalOptions opts;
          opts.fault_spec = spec;
          opts.num_shards = shards;
          // Sharding is guarantee-preserving (shard/mso.h): the composed
          // bound equals the per-shard one for homogeneous shards.
          const double bound =
              shard::ComposeMsoBound(algo->MsoGuarantee(), shards).composed;

          FeedbackStore store;
          const std::vector<RepeatedRunStats> runs = EvaluateRepeated(
              *algo, ess, qa, "star2", &store, kRepeats, opts);
          ASSERT_EQ(runs.size(), static_cast<size_t>(kRepeats));
          const double cold_cost = runs[0].total_cost;
          bool any_warm = false;
          for (int i = 0; i < kRepeats; ++i) {
            EXPECT_TRUE(runs[i].completed) << "run " << i;
            // The acceptance claim: warm-started or not, degraded or
            // not, no run's sub-optimality exceeds the cold MSO bound.
            EXPECT_LE(runs[i].suboptimality, bound) << "run " << i;
            if (runs[i].warm_started) {
              any_warm = true;
              EXPECT_TRUE(runs[i].feedback_hit) << "run " << i;
              // Repeats at a fixed q_a stay inside the region: probes
              // complete, no cold fallback, cheaper than the cold run.
              EXPECT_TRUE(runs[i].warm_completed) << "run " << i;
              EXPECT_FALSE(runs[i].warm_fell_back) << "run " << i;
              EXPECT_LE(runs[i].total_cost, cold_cost) << "run " << i;
            }
          }
          // min_observations cold runs seed the store; with store_load
          // faults armed some later lookups degrade back to cold, but at
          // p=0.2 six repeats cannot all degrade.
          EXPECT_TRUE(any_warm);
        }
      }
    }
  }
}

TEST(FeedbackDifferentialTest, WarmRepeatIsAtLeastTwiceAsCheapDeepInTheGrid) {
  // The headline amortization claim (also RQP_CHECKed by bench_feedback
  // and gated by CI at 2x): a deep true location makes the cold doubling
  // sequence climb several contours that a warm start skips.
  const EssBundle b = MakeEss(2);
  const Ess& ess = *b.ess;
  const GridLoc qa = DeepQa(ess);
  for (const char* algo_name : {"sb", "pb"}) {
    std::unique_ptr<DiscoveryAlgorithm> algo;
    if (std::string(algo_name) == "pb") {
      algo = std::make_unique<PlanBouquet>(&ess);
    } else {
      algo = std::make_unique<SpillBound>(&ess);
    }
    FeedbackStore store;
    const std::vector<RepeatedRunStats> runs =
        EvaluateRepeated(*algo, ess, qa, "star2", &store,
                         store.options().min_observations + 2);
    const RepeatedRunStats& cold = runs.front();
    const RepeatedRunStats& warm = runs.back();
    ASSERT_TRUE(warm.warm_started && warm.warm_completed) << algo_name;
    EXPECT_GE(cold.total_cost, 2.0 * warm.total_cost) << algo_name;
    EXPECT_LT(warm.num_executions, cold.num_executions) << algo_name;
  }
}

// ---------------------------------------------------------------------------
// Region miss: probes fail, the complete cold schedule runs after them,
// and the warm spend is a bounded additive tax.
// ---------------------------------------------------------------------------

TEST(WarmFallbackTest, BoundaryCrossingRunsTheFullColdScheduleAfterProbes) {
  const EssBundle b = MakeEss(2);
  const Ess& ess = *b.ess;
  SpillBound sb(&ess);
  const GridLoc deep = DeepQa(ess);

  // Calibration centred on a shallow location; the true location is deep
  // — far outside the tight (sigma-floored) confidence region.
  FeedbackStore store;
  const std::string key = FeedbackStore::Key("star2", ess.dims());
  SeedStore(&store, key, ess, ShallowQa(ess));
  const FeedbackStore::Calibration cal = store.Get(key);
  ASSERT_TRUE(cal.valid);
  const WarmStartHint hint = MakeWarmStartHint(ess, cal);
  ASSERT_TRUE(hint.valid);

  SimulatedOracle cold_oracle(&ess, deep);
  const DiscoveryResult cold = sb.Run(&cold_oracle);
  ASSERT_TRUE(cold.completed);

  SimulatedOracle warm_oracle(&ess, deep);
  const DiscoveryResult warm = sb.Run(&warm_oracle, &hint);
  ASSERT_TRUE(warm.completed);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_FALSE(warm.warm_completed);
  EXPECT_TRUE(warm.warm_fell_back);
  EXPECT_GT(warm.warm_cost, 0.0);

  // Provable fallback: after the probes, the cold sequence runs verbatim
  // from contour 0 — step for step the same schedule, charges included.
  const size_t probes = warm.steps.size() - cold.steps.size();
  ASSERT_GE(warm.steps.size(), cold.steps.size());
  ASSERT_EQ(probes, hint.probe_budgets.size());
  for (size_t i = 0; i < cold.steps.size(); ++i) {
    const ExecutionStep& w = warm.steps[probes + i];
    const ExecutionStep& c = cold.steps[i];
    EXPECT_EQ(w.plan_name, c.plan_name) << "step " << i;
    EXPECT_EQ(w.contour, c.contour) << "step " << i;
    EXPECT_EQ(w.spill_dim, c.spill_dim) << "step " << i;
    EXPECT_DOUBLE_EQ(w.budget, c.budget) << "step " << i;
    EXPECT_DOUBLE_EQ(w.cost_charged, c.cost_charged) << "step " << i;
  }
  // The abandoned warm spend is an additive tax bounded by twice the
  // largest probe budget (geometric schedule) — the guarantee is never
  // weakened, only the constant.
  EXPECT_DOUBLE_EQ(warm.total_cost, cold.total_cost + warm.warm_cost);
  EXPECT_LE(warm.warm_cost, 2.0 * hint.probe_budgets.back());
  EXPECT_EQ(warm.final_contour, cold.final_contour);
}

// ---------------------------------------------------------------------------
// feedback.store_load fault site: a degraded lookup is a cold start,
// charged to the robustness report, never a correctness problem.
// ---------------------------------------------------------------------------

TEST(FeedbackStoreLoadFaultTest, DegradedLookupIsAChargedColdStart) {
  const EssBundle b = MakeEss(2);
  const Ess& ess = *b.ess;
  FeedbackStore store;
  const std::string key = FeedbackStore::Key("star2", ess.dims());
  SeedStore(&store, key, ess, DeepQa(ess));
  ASSERT_TRUE(store.Get(key).valid);

  {
    ArmedScope armed("feedback.store_load:p=1", 7);
    FaultStreamScope scope(0);
    RobustnessReport report;
    const FeedbackStore::Calibration cal = store.Get(key, &report);
    EXPECT_FALSE(cal.valid);
    EXPECT_TRUE(cal.degraded);
    EXPECT_GE(report.feedback_degradations, 1);
  }
  EXPECT_GE(store.stats().load_degradations, 1);
  // The history itself is untouched: disarmed lookups are warm again.
  EXPECT_TRUE(store.Get(key).valid);
}

TEST(FeedbackStoreLoadFaultTest, AlwaysDegradedRunsMatchNullStoreBitwise) {
  const EssBundle b = MakeEss(2);
  const Ess& ess = *b.ess;
  const GridLoc qa = DeepQa(ess);
  SpillBound sb(&ess);

  EvalOptions chaos;
  chaos.fault_spec = "feedback.store_load:p=1";
  FeedbackStore store;
  const std::vector<RepeatedRunStats> degraded =
      EvaluateRepeated(sb, ess, qa, "star2", &store, 4, chaos);
  const std::vector<RepeatedRunStats> cold =
      EvaluateRepeated(sb, ess, qa, "star2", /*store=*/nullptr, 4);

  ASSERT_EQ(degraded.size(), cold.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    // Every lookup degraded to a cold start: identical to no store at
    // all, bit for bit (the site only gates the read, not discovery).
    EXPECT_FALSE(degraded[i].feedback_hit) << "run " << i;
    EXPECT_FALSE(degraded[i].warm_started) << "run " << i;
    EXPECT_EQ(degraded[i].total_cost, cold[i].total_cost) << "run " << i;
    EXPECT_EQ(degraded[i].num_executions, cold[i].num_executions)
        << "run " << i;
  }
  EXPECT_GE(store.stats().load_degradations, 4);
}

// ---------------------------------------------------------------------------
// Committed-attempt-only observation: transient retries never perturb the
// observed selectivities the store learns from.
// ---------------------------------------------------------------------------

TEST(CommittedAttemptTest, TransientRetriesDoNotPerturbObservations) {
  const std::unique_ptr<Catalog> catalog = MakeTinyCatalog();
  const Query query = MakeStarQuery(2);
  Optimizer optimizer(catalog.get(), &query);
  const std::unique_ptr<Plan> plan = optimizer.Optimize({0.01, 0.02});

  for (const auto engine :
       {Executor::Engine::kTuple, Executor::Engine::kBatch}) {
    Executor::Options opts;
    opts.engine = engine;
    Executor exec(catalog.get(), CostModel::PostgresFlavour(), opts);

    const Result<ExecutionResult> clean = exec.Execute(*plan, -1.0);
    ASSERT_TRUE(clean.ok());
    const std::vector<double> clean_obs =
        ObservedEppSelectivities(*plan, *clean);

    ExecutionResult faulted;
    {
      // after=0: the very first scan read faults (transient), so the
      // attempt is retried — the committed attempt must carry the counts.
      ArmedScope armed("exec.scan.read:after=0", 5);
      FaultStreamScope scope(3);
      const Result<ExecutionResult> r = exec.Execute(*plan, 1e12);
      ASSERT_TRUE(r.ok());
      faulted = *r;
    }
    ASSERT_TRUE(faulted.completed);
    EXPECT_GE(faulted.robustness.transient_retries, 1);
    const std::vector<double> faulted_obs =
        ObservedEppSelectivities(*plan, faulted);

    ASSERT_EQ(faulted_obs.size(), clean_obs.size());
    for (size_t d = 0; d < clean_obs.size(); ++d) {
      // Bitwise: retried work never double-counts into the ratios.
      EXPECT_EQ(faulted_obs[d], clean_obs[d]) << "dim " << d;
    }
  }
}

// ---------------------------------------------------------------------------
// QueryService integration: repeated feedback-enabled requests warm up,
// drift invalidates the serving cache, counters account for all of it.
// ---------------------------------------------------------------------------

TEST(QueryServiceFeedbackTest, RepeatedSubmitsWarmUpAndDriftEvictsContexts) {
  QueryService::Options opts;
  opts.num_threads = 2;
  QueryService service(opts);
  const int64_t session = *service.OpenSession();

  ServiceRequest req;
  req.query_id = "2D_Q91";
  req.mode = RobustnessMode::kSpillBound;
  req.qa = {0.2, 0.2};
  req.options.use_feedback = true;
  req.options.points_per_dim = 8;
  req.options.ess_threads = 1;

  const int warmup = FeedbackStore::Options{}.min_observations;
  for (int i = 0; i < warmup; ++i) {
    const ServiceResponse r = *service.Wait(session, *service.Submit(session, req));
    ASSERT_TRUE(r.status.ok()) << i;
    EXPECT_FALSE(r.feedback_hit) << i;
    EXPECT_FALSE(r.warm_started) << i;
  }
  const ServiceResponse warm =
      *service.Wait(session, *service.Submit(session, req));
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.feedback_hit);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_TRUE(warm.warm_completed);
  EXPECT_FALSE(warm.feedback_drift);

  // The data drifts: the same query now sees selectivities orders of
  // magnitude away. The observation trips CUSUM; the response reports it
  // and the query's cached contexts are evicted for rebuild.
  ServiceRequest shifted = req;
  shifted.qa = {0.0005, 0.001};
  const ServiceResponse drift =
      *service.Wait(session, *service.Submit(session, shifted));
  ASSERT_TRUE(drift.status.ok());
  EXPECT_TRUE(drift.feedback_drift);
  EXPECT_GE(service.cache_stats().invalidations, 1);

  const QueryService::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.feedback_misses, warmup);
  EXPECT_GE(stats.feedback_hits, 2);  // the warm run and the drift run
  EXPECT_GE(stats.warm_starts, 1);
  EXPECT_GE(stats.warm_completions, 1);
  EXPECT_EQ(stats.drift_events, 1);
  const FeedbackStore::Stats fb = service.feedback_stats();
  EXPECT_EQ(fb.drift_events, 1);
  // One observation per completed request: warmup runs, the warm run,
  // and the drift run (its observation seeds the new regime).
  EXPECT_EQ(fb.observations, warmup + 2);

  // Post-drift: the store reseeds on the new regime and warms up again.
  for (int i = 0; i < warmup; ++i) {
    ASSERT_TRUE(
        service.Wait(session, *service.Submit(session, shifted))->status.ok());
  }
  const ServiceResponse rewarmed =
      *service.Wait(session, *service.Submit(session, shifted));
  ASSERT_TRUE(rewarmed.status.ok());
  EXPECT_TRUE(rewarmed.warm_started);
  ASSERT_TRUE(service.CloseSession(session).ok());
}

TEST(ContextCacheTest, InvalidateQueryDropsOnlyMatchingEntries) {
  ContextCache cache(ContextCache::Options{/*capacity=*/4});
  RequestOptions small;
  small.points_per_dim = 8;
  small.ess_threads = 1;
  Ess::Config a = small.ToEssConfig();
  Ess::Config b = a;
  b.points_per_dim = 6;
  ASSERT_TRUE(cache.Get("2D_Q91", a).ok());
  ASSERT_TRUE(cache.Get("2D_Q91", b).ok());
  ASSERT_TRUE(cache.Get("3D_Q15", a).ok());
  ASSERT_EQ(cache.stats().size, 3u);

  // Both 2D_Q91 configurations drop; the other query survives.
  EXPECT_EQ(cache.InvalidateQuery("2D_Q91"), 2u);
  ContextCache::Stats s = cache.stats();
  EXPECT_EQ(s.size, 1u);
  EXPECT_EQ(s.invalidations, 2);
  bool hit = true;
  ASSERT_TRUE(cache.Get("3D_Q15", a, &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.Get("2D_Q91", a, &hit).ok());
  EXPECT_FALSE(hit);  // rebuilt after invalidation

  // A query id that is a prefix of another must not over-match.
  EXPECT_EQ(cache.InvalidateQuery("2D_Q9"), 0u);
}

}  // namespace
}  // namespace robustqp
