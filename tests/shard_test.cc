// Tests for the sharded scatter-gather execution layer (src/shard/):
// chunk geometry and round-robin layout, whole-chunk zone classification,
// the composed per-shard MSO bound, the core differential property
// (sharded runs bit-identical to unsharded at any shard count x thread
// count, with and without zone maps), count-exact whole-chunk pruning,
// and the shard.straggler / shard.lost_chunk fault goldens with
// retry-on-replica recovery charged into cost_used.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "core/oracle.h"
#include "core/spillbound.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "shard/chunking.h"
#include "shard/mso.h"
#include "shard/shard_executor.h"
#include "storage/stats_builder.h"
#include "storage/table.h"
#include "test_util.h"

namespace robustqp {
namespace {

using shard::ChunkMatch;
using shard::ComposedMso;
using shard::ShardLayout;
using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

// --- Chunk geometry ------------------------------------------------------

TEST(ShardChunkingTest, GeometryEdgeCases) {
  EXPECT_EQ(shard::ChunkCount(0), 0);
  EXPECT_EQ(shard::ChunkCount(1), 1);
  EXPECT_EQ(shard::ChunkCount(kShardChunkRows), 1);
  EXPECT_EQ(shard::ChunkCount(kShardChunkRows + 1), 2);
  EXPECT_EQ(shard::ChunkCount(3 * kShardChunkRows), 3);

  EXPECT_EQ(shard::ChunkBegin(0), 0);
  EXPECT_EQ(shard::ChunkBegin(2), 2 * kShardChunkRows);
  // End clamps to the table size; a full chunk ends on the boundary.
  EXPECT_EQ(shard::ChunkEnd(0, 3 * kShardChunkRows), kShardChunkRows);
  EXPECT_EQ(shard::ChunkEnd(1, kShardChunkRows + 1000),
            kShardChunkRows + 1000);

  // Chunk boundaries are whole multiples of the zone-map block, so a
  // chunk never splits a block and chunk summaries fold block summaries.
  EXPECT_EQ(kShardChunkRows % kZoneBlockRows, 0);

  for (int64_t c = 0; c < 12; ++c) {
    EXPECT_EQ(shard::ShardOfChunk(c, 1), 0);
    EXPECT_EQ(shard::ShardOfChunk(c, 3), static_cast<int>(c % 3));
  }
}

TEST(ShardChunkingTest, LayoutRoundRobin) {
  const ShardLayout lay = shard::MakeShardLayout(3 * kShardChunkRows + 7, 3);
  EXPECT_EQ(lay.num_shards, 3);
  EXPECT_EQ(lay.num_chunks, 4);
  ASSERT_EQ(lay.worker_chunks.size(), 3u);
  EXPECT_EQ(lay.worker_chunks[0], (std::vector<int64_t>{0, 3}));
  EXPECT_EQ(lay.worker_chunks[1], (std::vector<int64_t>{1}));
  EXPECT_EQ(lay.worker_chunks[2], (std::vector<int64_t>{2}));

  // Worker counts below 1 clamp; an empty table has no chunks anywhere.
  const ShardLayout clamped = shard::MakeShardLayout(100, 0);
  EXPECT_EQ(clamped.num_shards, 1);
  EXPECT_EQ(clamped.num_chunks, 1);
  const ShardLayout empty = shard::MakeShardLayout(0, 4);
  EXPECT_EQ(empty.num_chunks, 0);
  for (const auto& w : empty.worker_chunks) EXPECT_TRUE(w.empty());
}

// --- Whole-chunk classification ------------------------------------------

TEST(ShardChunkingTest, ClassifyChunkVerdicts) {
  // Clustered column: value == row + 1, three full chunks.
  const int64_t rows = 3 * kShardChunkRows;
  auto table = std::make_shared<Table>(
      TableSchema("zc", {{"k", DataType::kInt64}}));
  for (int64_t r = 0; r < rows; ++r) table->column(0).AppendInt(r + 1);
  ASSERT_TRUE(table->Finalize().ok());
  const ColumnData& col = table->column(0);
  ASSERT_EQ(col.chunk_zones().num_blocks(), 3);

  // Chunk c holds values [c*R + 1, (c+1)*R].
  const double r1 = static_cast<double>(kShardChunkRows);
  EXPECT_EQ(shard::ClassifyChunk(col, CompareOp::kLe, r1, 0), ChunkMatch::kAll);
  EXPECT_EQ(shard::ClassifyChunk(col, CompareOp::kLe, r1, 1),
            ChunkMatch::kNone);
  EXPECT_EQ(shard::ClassifyChunk(col, CompareOp::kLe, r1 + 10.0, 1),
            ChunkMatch::kSome);
  EXPECT_EQ(shard::ClassifyChunk(col, CompareOp::kGt, 2.0 * r1, 2),
            ChunkMatch::kAll);
  EXPECT_EQ(shard::ClassifyChunk(col, CompareOp::kGe, 2.0 * r1, 1),
            ChunkMatch::kSome);
  EXPECT_EQ(shard::ClassifyChunk(col, CompareOp::kEq, r1 + 1.0, 0),
            ChunkMatch::kNone);
  EXPECT_EQ(shard::ClassifyChunk(col, CompareOp::kEq, r1 + 1.0, 1),
            ChunkMatch::kSome);

  // A NaN literal satisfies nothing; out-of-range chunks are undecided.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(shard::ClassifyChunk(col, CompareOp::kLe, nan, 0),
            ChunkMatch::kNone);
  EXPECT_EQ(shard::ClassifyChunk(col, CompareOp::kLe, r1, 99),
            ChunkMatch::kSome);

  // Without Finalize there is no summary: always scan.
  Table raw(TableSchema("raw", {{"k", DataType::kInt64}}));
  raw.column(0).AppendInt(5);
  EXPECT_EQ(shard::ClassifyChunk(raw.column(0), CompareOp::kLe, 10.0, 0),
            ChunkMatch::kSome);
}

// --- Composed MSO bound --------------------------------------------------

TEST(ShardMsoTest, ComposeBound) {
  const ComposedMso m = shard::ComposeMsoBound(10.0, 4);
  EXPECT_EQ(m.num_shards, 4);
  EXPECT_DOUBLE_EQ(m.per_shard_guarantee, 10.0);
  // Homogeneous shards: the composed global bound IS the per-shard bound.
  EXPECT_DOUBLE_EQ(m.composed, 10.0);

  EXPECT_EQ(shard::ComposeMsoBound(10.0, 0).num_shards, 1);
  EXPECT_DOUBLE_EQ(shard::ComposeMsoBound(0.0, 8).composed, 0.0);

  EXPECT_DOUBLE_EQ(shard::ComposeShardGuarantees({}), 0.0);
  EXPECT_DOUBLE_EQ(shard::ComposeShardGuarantees({3.0, 7.0, 5.0}), 7.0);
}

// --- Shared execution fixtures -------------------------------------------

Executor MakeEngine(const Catalog* catalog, int threads, int shards,
                    bool zone_maps = true) {
  Executor::Options options;
  options.engine = Executor::Engine::kBatch;
  options.num_threads = threads;
  options.num_shards = shards;
  options.use_zone_maps = zone_maps;
  return Executor(catalog, CostModel::PostgresFlavour(), options);
}

void ExpectSameResult(const ExecutionResult& a, const ExecutionResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.output_rows, b.output_rows) << what;
  EXPECT_EQ(a.cost_used, b.cost_used) << what;  // bitwise double equality
  ASSERT_EQ(a.node_stats.size(), b.node_stats.size()) << what;
  for (size_t i = 0; i < a.node_stats.size(); ++i) {
    const NodeStats& x = a.node_stats[i];
    const NodeStats& y = b.node_stats[i];
    EXPECT_EQ(x.left_in, y.left_in) << what << " node " << i;
    EXPECT_EQ(x.right_in, y.right_in) << what << " node " << i;
    EXPECT_EQ(x.out, y.out) << what << " node " << i;
    ASSERT_EQ(x.filter_in.size(), y.filter_in.size()) << what << " node " << i;
    for (size_t k = 0; k < x.filter_in.size(); ++k) {
      EXPECT_EQ(x.filter_in[k], y.filter_in[k])
          << what << " node " << i << " filter " << k;
      EXPECT_EQ(x.filter_pass[k], y.filter_pass[k])
          << what << " node " << i << " filter " << k;
    }
  }
}

struct ShardInstance {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Query> query;
  int64_t fact_rows = 0;
};

/// A star instance whose fact table spans several shard chunks: clustered
/// key `k` (== row + 1), zipf FKs into two small dimensions, and an
/// optional selective filter on the clustered key (`fact_key_le` > 0) so
/// whole-chunk pruning has something to prove.
ShardInstance MakeShardInstance(uint64_t seed, int64_t fact_rows,
                                double fact_key_le = -1.0) {
  Rng rng(seed);
  ShardInstance inst;
  inst.catalog = std::make_unique<Catalog>();
  inst.fact_rows = fact_rows;

  const int64_t d1_rows = 100;
  const int64_t d2_rows = 50;
  auto zipf1 = std::make_shared<ZipfSampler>(d1_rows, 0.8);
  auto zipf2 = std::make_shared<ZipfSampler>(d2_rows, 0.5);

  auto fact = std::make_shared<Table>(TableSchema(
      "f", {{"k", DataType::kInt64},
            {"fk1", DataType::kInt64},
            {"fk2", DataType::kInt64},
            {"a", DataType::kInt64}}));
  for (int64_t r = 0; r < fact_rows; ++r) {
    fact->column(0).AppendInt(r + 1);
    fact->column(1).AppendInt(zipf1->Sample(&rng));
    fact->column(2).AppendInt(zipf2->Sample(&rng));
    fact->column(3).AppendInt(rng.UniformInt(1, 16));
  }
  RQP_CHECK(fact->Finalize().ok());
  auto fact_stats = ComputeTableStats(*fact);
  RQP_CHECK(inst.catalog->AddTable(std::move(fact), std::move(fact_stats))
                .ok());

  const auto add_dim = [&](const std::string& name, int64_t n) {
    auto t = std::make_shared<Table>(TableSchema(
        name, {{"k" + name, DataType::kInt64}, {"a" + name, DataType::kInt64}}));
    for (int64_t r = 0; r < n; ++r) {
      t->column(0).AppendInt(r + 1);
      t->column(1).AppendInt(rng.UniformInt(1, 8));
    }
    RQP_CHECK(t->Finalize().ok());
    auto stats = ComputeTableStats(*t);
    RQP_CHECK(inst.catalog->AddTable(std::move(t), std::move(stats)).ok());
  };
  add_dim("d1", d1_rows);
  add_dim("d2", d2_rows);

  std::vector<JoinPredicate> joins = {{"f", "fk1", "d1", "kd1", ""},
                                      {"f", "fk2", "d2", "kd2", ""}};
  std::vector<FilterPredicate> filters = {
      {"d1", "ad1", CompareOp::kLe, 5.0}};
  if (fact_key_le > 0.0) {
    filters.insert(filters.begin(),
                   {"f", "k", CompareOp::kLe, fact_key_le});
  }
  std::vector<EppRef> epps = {EppRef::Join(0), EppRef::Join(1)};
  inst.query = std::make_unique<Query>("shard" + std::to_string(seed),
                                       std::vector<std::string>{"f", "d1",
                                                                "d2"},
                                       joins, filters, epps);
  RQP_CHECK(inst.query->Validate(*inst.catalog).ok());
  return inst;
}

/// Random log-uniform selectivity point in [1e-4, 1]^dims.
EssPoint RandomPoint(Rng* rng, int dims) {
  EssPoint p(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    p[static_cast<size_t>(d)] =
        std::pow(10.0, -4.0 * rng->UniformDouble(0.0, 1.0));
  }
  return p;
}

// --- The differential property -------------------------------------------

class ShardDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// Sharded runs must be bit-identical to the unsharded baseline at every
// (shard count x thread count), and budgeted / spill executions — which
// never scatter — must come back identical through the sharded options
// too.
TEST_P(ShardDifferentialTest, ShardedMatchesUnshardedExactly) {
  const uint64_t seed = GetParam();
  ShardInstance inst =
      MakeShardInstance(seed, 3 * kShardChunkRows + 1000);
  Rng rng(seed * 7919 + 1);
  Executor base = MakeEngine(inst.catalog.get(), 1, 1);

  Optimizer opt(inst.catalog.get(), inst.query.get());
  const int dims = inst.query->num_epps();
  for (int trial = 0; trial < 2; ++trial) {
    const std::unique_ptr<Plan> plan = opt.Optimize(RandomPoint(&rng, dims));
    const std::string tag = "seed " + std::to_string(seed) + " plan " +
                            plan->signature();

    const Result<ExecutionResult> clean = base.Execute(*plan, -1.0);
    ASSERT_TRUE(clean.ok() && clean->completed) << tag;
    EXPECT_FALSE(clean->shard.Any()) << tag;

    for (const int shards : {2, 4}) {
      for (const int threads : {1, 2, 4}) {
        Executor sharded = MakeEngine(inst.catalog.get(), threads, shards);
        const std::string s_tag = tag + " shards=" + std::to_string(shards) +
                                  " threads=" + std::to_string(threads);
        const Result<ExecutionResult> r = sharded.Execute(*plan, -1.0);
        ASSERT_TRUE(r.ok()) << s_tag;
        ExpectSameResult(*clean, *r, s_tag + " [full]");
        // The run actually scattered: the fact scan alone spans 4 chunks.
        EXPECT_EQ(r->shard.num_shards, shards) << s_tag;
        EXPECT_TRUE(r->shard.Any()) << s_tag;
        EXPECT_GE(r->shard.chunks_total, 4) << s_tag;
        EXPECT_EQ(r->shard.chunks_scanned + r->shard.chunks_pruned,
                  r->shard.chunks_total)
            << s_tag;
        ASSERT_EQ(r->shard.shard_cost.size(), static_cast<size_t>(shards))
            << s_tag;
      }
    }

    // Budgeted runs keep the sequential single-platform semantics: the
    // sharded options must not perturb a single bit, and no scatter
    // happens.
    Executor sharded2 = MakeEngine(inst.catalog.get(), 2, 4);
    for (const double frac : {0.22, 0.71}) {
      const double budget = clean->cost_used * frac;
      const Result<ExecutionResult> a = base.Execute(*plan, budget);
      const Result<ExecutionResult> b = sharded2.Execute(*plan, budget);
      ASSERT_TRUE(a.ok() && b.ok()) << tag;
      ExpectSameResult(*a, *b, tag + " [budget]");
      EXPECT_FALSE(b->shard.Any()) << tag;
    }

    // Spill executions never scatter either.
    for (int d = 0; d < dims; ++d) {
      const int node_id = plan->EppNodeId(d);
      if (node_id < 0) continue;
      const Result<ExecutionResult> a = base.ExecuteSpill(*plan, node_id, -1.0);
      const Result<ExecutionResult> b =
          sharded2.ExecuteSpill(*plan, node_id, -1.0);
      ASSERT_TRUE(a.ok() && b.ok()) << tag;
      ExpectSameResult(*a, *b, tag + " [spill]");
      EXPECT_FALSE(b->shard.Any()) << tag;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardDifferentialTest,
                         ::testing::Values(1u, 2u, 3u));

// Whole-chunk pruning is physical-only: with a selective filter on the
// clustered key, sharded zone-mapped runs skip whole chunks yet charge
// counts identical to per-batch evaluation — and to runs with zone maps
// off entirely.
TEST(ShardPruningTest, WholeChunkPruneIsCountExact) {
  // Filter covers chunk 0 fully (kAll), chunk 1 partially (kSome), and
  // proves chunks 2..3 empty (kNone -> pruned).
  ShardInstance inst = MakeShardInstance(
      17, 3 * kShardChunkRows + 1000,
      static_cast<double>(kShardChunkRows) + 7000.0);
  Rng rng(99);
  Optimizer opt(inst.catalog.get(), inst.query.get());
  const std::unique_ptr<Plan> plan =
      opt.Optimize(RandomPoint(&rng, inst.query->num_epps()));

  Executor base = MakeEngine(inst.catalog.get(), 1, 1);
  Executor no_zones = MakeEngine(inst.catalog.get(), 1, 2, false);
  Executor sharded = MakeEngine(inst.catalog.get(), 2, 2);

  const Result<ExecutionResult> a = base.Execute(*plan, -1.0);
  const Result<ExecutionResult> b = no_zones.Execute(*plan, -1.0);
  const Result<ExecutionResult> c = sharded.Execute(*plan, -1.0);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok()) << a.status().ToString() << " / " << b.status().ToString() << " / " << c.status().ToString();
  ExpectSameResult(*a, *c, "pruned vs unsharded");
  ExpectSameResult(*b, *c, "pruned vs zone-maps-off");
  EXPECT_GE(c->shard.chunks_pruned, 2);
  EXPECT_EQ(b->shard.chunks_pruned, 0);
  ExpectSameResult(*b, *c, "zone-maps-off sharded vs sharded");
}

// The ShardExecutor facade: clamping, pass-through execution, and the
// composed-bound statement.
TEST(ShardExecutorTest, FacadeMatchesPlainExecutor) {
  ShardInstance inst = MakeShardInstance(5, 2 * kShardChunkRows + 100);
  Rng rng(5);
  Optimizer opt(inst.catalog.get(), inst.query.get());
  const std::unique_ptr<Plan> plan =
      opt.Optimize(RandomPoint(&rng, inst.query->num_epps()));

  Executor::Options options;
  options.engine = Executor::Engine::kBatch;
  options.num_threads = 2;
  options.num_shards = 3;
  shard::ShardExecutor se(inst.catalog.get(), CostModel::PostgresFlavour(),
                          options);
  EXPECT_EQ(se.num_shards(), 3);

  Executor base = MakeEngine(inst.catalog.get(), 1, 1);
  const Result<ExecutionResult> a = base.Execute(*plan, -1.0);
  const Result<ExecutionResult> b = se.Execute(*plan);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectSameResult(*a, *b, "facade");
  EXPECT_TRUE(b->shard.Any());

  const ComposedMso m = se.ComposeBound(12.0);
  EXPECT_EQ(m.num_shards, 3);
  EXPECT_DOUBLE_EQ(m.composed, 12.0);

  options.num_shards = 0;
  shard::ShardExecutor clamped(inst.catalog.get(),
                               CostModel::PostgresFlavour(), options);
  EXPECT_EQ(clamped.num_shards(), 1);
}

// --- Shard fault goldens -------------------------------------------------

/// RAII disarm so a failing assertion cannot leak an armed injector into
/// later tests.
struct ArmedScope {
  explicit ArmedScope(const std::string& spec, uint64_t seed = 42) {
    const Status st = FaultInjector::Global().Configure(spec, seed);
    RQP_CHECK(st.ok());
  }
  ~ArmedScope() { FaultInjector::Disarm(); }
};

// shard.straggler with p=1/permanent: every shard of every scattered
// pipeline is speculatively re-dispatched. The committed results are the
// clean run's, the duplicate work is charged into cost_used, and the
// whole episode is deterministic.
TEST(ShardFaultTest, StragglerSpeculationChargesDuplicates) {
  ShardInstance inst = MakeShardInstance(7, 2 * kShardChunkRows + 500);
  Rng rng(7);
  Optimizer opt(inst.catalog.get(), inst.query.get());
  const std::unique_ptr<Plan> plan =
      opt.Optimize(RandomPoint(&rng, inst.query->num_epps()));
  Executor sharded = MakeEngine(inst.catalog.get(), 2, 2);

  const Result<ExecutionResult> clean = sharded.Execute(*plan, -1.0);
  ASSERT_TRUE(clean.ok() && clean->completed);

  ExecutionResult r1, r2;
  {
    ArmedScope armed("shard.straggler:p=1,kind=permanent");
    {
      FaultStreamScope scope(0);
      Result<ExecutionResult> r = sharded.Execute(*plan, -1.0);
      ASSERT_TRUE(r.ok());
      r1 = r.MoveValue();
    }
    {
      FaultStreamScope scope(0);
      Result<ExecutionResult> r = sharded.Execute(*plan, -1.0);
      ASSERT_TRUE(r.ok());
      r2 = r.MoveValue();
    }
  }

  // Speculation does not perturb committed rows or stats.
  EXPECT_TRUE(r1.completed);
  EXPECT_EQ(r1.output_rows, clean->output_rows);
  ASSERT_EQ(r1.node_stats.size(), clean->node_stats.size());
  for (size_t i = 0; i < r1.node_stats.size(); ++i) {
    EXPECT_EQ(r1.node_stats[i].out, clean->node_stats[i].out) << i;
  }
  // Every shard of every scattered pipeline straggled.
  EXPECT_GE(r1.robustness.shard_stragglers, 2);
  EXPECT_EQ(r1.robustness.shard_stragglers, r1.shard.straggler_retries);
  EXPECT_GT(r1.shard.retried_cost, 0.0);
  // Duplicate work is visible in cost_used, on top of the clean cost.
  EXPECT_DOUBLE_EQ(r1.cost_used, clean->cost_used + r1.shard.retried_cost);
  // Deterministic: same spec, same stream, same bits.
  EXPECT_EQ(r1.cost_used, r2.cost_used);
  EXPECT_EQ(r1.shard.retried_cost, r2.shard.retried_cost);
  EXPECT_EQ(r1.robustness.shard_stragglers, r2.robustness.shard_stragglers);
}

// shard.lost_chunk with p=1/permanent: every scanned chunk's primary is
// doomed mid-scan, charged, discarded, and recovered on a replica whose
// partials are the ones committed — results identical to clean.
TEST(ShardFaultTest, LostChunkRecoversOnReplica) {
  ShardInstance inst = MakeShardInstance(9, 2 * kShardChunkRows + 500);
  Rng rng(9);
  Optimizer opt(inst.catalog.get(), inst.query.get());
  const std::unique_ptr<Plan> plan =
      opt.Optimize(RandomPoint(&rng, inst.query->num_epps()));
  Executor sharded = MakeEngine(inst.catalog.get(), 1, 2);

  const Result<ExecutionResult> clean = sharded.Execute(*plan, -1.0);
  ASSERT_TRUE(clean.ok() && clean->completed);

  ExecutionResult r1;
  {
    ArmedScope armed("shard.lost_chunk:p=1,kind=permanent");
    FaultStreamScope scope(0);
    Result<ExecutionResult> r = sharded.Execute(*plan, -1.0);
    ASSERT_TRUE(r.ok());
    r1 = r.MoveValue();
  }

  EXPECT_TRUE(r1.completed);
  EXPECT_EQ(r1.output_rows, clean->output_rows);
  EXPECT_EQ(r1.shard.chunks_scanned, clean->shard.chunks_scanned);
  // Every scanned chunk was lost once and recovered.
  EXPECT_EQ(r1.shard.lost_chunks, r1.shard.chunks_scanned);
  EXPECT_EQ(r1.robustness.shard_lost_chunks, r1.shard.lost_chunks);
  EXPECT_GT(r1.shard.retried_cost, 0.0);
  EXPECT_DOUBLE_EQ(r1.cost_used, clean->cost_used + r1.shard.retried_cost);
  // The replica's committed stats equal the clean run's.
  ASSERT_EQ(r1.node_stats.size(), clean->node_stats.size());
  for (size_t i = 0; i < r1.node_stats.size(); ++i) {
    EXPECT_EQ(r1.node_stats[i].left_in, clean->node_stats[i].left_in) << i;
    EXPECT_EQ(r1.node_stats[i].out, clean->node_stats[i].out) << i;
  }
}

// Arming the shard sites with p=0 draws the full fault sequence but fires
// nothing: results stay bit-identical to the disarmed run, proving the
// coordinator-side draws sit outside the committed accounting.
TEST(ShardFaultTest, ArmedQuietMatchesDisarmed) {
  ShardInstance inst = MakeShardInstance(11, 2 * kShardChunkRows + 500);
  Rng rng(11);
  Optimizer opt(inst.catalog.get(), inst.query.get());
  const std::unique_ptr<Plan> plan =
      opt.Optimize(RandomPoint(&rng, inst.query->num_epps()));
  Executor sharded = MakeEngine(inst.catalog.get(), 2, 4);

  const Result<ExecutionResult> clean = sharded.Execute(*plan, -1.0);
  ASSERT_TRUE(clean.ok());

  ExecutionResult quiet;
  {
    ArmedScope armed("shard.straggler:p=0;shard.lost_chunk:p=0");
    FaultStreamScope scope(0);
    Result<ExecutionResult> r = sharded.Execute(*plan, -1.0);
    ASSERT_TRUE(r.ok());
    quiet = r.MoveValue();
  }
  ExpectSameResult(*clean, quiet, "armed-quiet");
  EXPECT_EQ(quiet.shard.straggler_retries, 0);
  EXPECT_EQ(quiet.shard.lost_chunks, 0);
}

// --- Composed bound through discovery ------------------------------------

// A sharded oracle surfaces the composed per-shard bound in every
// DiscoveryResult, and — faults aside — sharding never changes what the
// discovery protocol observes.
TEST(ShardComposedMsoTest, DiscoverySurfacesComposedBound) {
  auto catalog = MakeTinyCatalog();
  Query query = MakeStarQuery(2);
  Ess::Config config;
  config.points_per_dim = 8;
  config.min_sel = 1e-4;
  std::unique_ptr<Ess> ess = Ess::Build(*catalog, query, config);
  ASSERT_NE(ess, nullptr);

  SpillBound sb(ess.get());
  const GridLoc qa = {5, 3};

  SimulatedOracle plain(ess.get(), qa);
  const DiscoveryResult base = sb.Run(&plain);
  EXPECT_TRUE(base.completed);
  EXPECT_EQ(base.composed_mso.num_shards, 1);
  EXPECT_DOUBLE_EQ(base.composed_mso.composed, sb.MsoGuarantee());

  SimulatedOracle sharded(ess.get(), qa);
  sharded.set_num_shards(4);
  const DiscoveryResult r = sb.Run(&sharded);
  EXPECT_TRUE(r.completed);
  // Clean sharded discovery is observationally identical...
  EXPECT_DOUBLE_EQ(r.total_cost, base.total_cost);
  EXPECT_EQ(r.num_executions(), base.num_executions());
  // ...and carries the composed statement: max over homogeneous shards,
  // i.e. the single-platform guarantee survives scale-out unchanged.
  EXPECT_EQ(r.composed_mso.num_shards, 4);
  EXPECT_DOUBLE_EQ(r.composed_mso.per_shard_guarantee, sb.MsoGuarantee());
  EXPECT_DOUBLE_EQ(r.composed_mso.composed, sb.MsoGuarantee());
}

}  // namespace
}  // namespace robustqp
