#include "test_util.h"

#include "common/rng.h"
#include "common/status.h"
#include "storage/stats_builder.h"
#include "storage/table.h"

namespace robustqp {
namespace testing_util {

namespace {

void Register(Catalog* catalog, std::shared_ptr<Table> table) {
  auto stats = ComputeTableStats(*table);
  RQP_CHECK(catalog->AddTable(std::move(table), std::move(stats)).ok());
}

}  // namespace

std::unique_ptr<Catalog> MakeTinyCatalog(uint64_t seed) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(seed);

  {
    TableSchema schema("d1", {{"d1_k", DataType::kInt64},
                              {"d1_a", DataType::kInt64}});
    auto t = std::make_shared<Table>(schema);
    for (int64_t i = 1; i <= 100; ++i) {
      t->column(0).AppendInt(i);
      t->column(1).AppendInt(rng.UniformInt(1, 10));
    }
    RQP_CHECK(t->Finalize().ok());
    Register(catalog.get(), t);
  }
  {
    TableSchema schema("d3", {{"d3_k", DataType::kInt64},
                              {"d3_a", DataType::kInt64}});
    auto t = std::make_shared<Table>(schema);
    for (int64_t i = 1; i <= 50; ++i) {
      t->column(0).AppendInt(i);
      t->column(1).AppendInt(rng.UniformInt(1, 5));
    }
    RQP_CHECK(t->Finalize().ok());
    Register(catalog.get(), t);
  }
  {
    TableSchema schema("d2", {{"d2_k", DataType::kInt64},
                              {"d2_fk3", DataType::kInt64},
                              {"d2_a", DataType::kInt64}});
    auto t = std::make_shared<Table>(schema);
    ZipfSampler z(50, 0.7);
    for (int64_t i = 1; i <= 400; ++i) {
      t->column(0).AppendInt(i);
      t->column(1).AppendInt(z.Sample(&rng));
      t->column(2).AppendInt(rng.UniformInt(1, 20));
    }
    RQP_CHECK(t->Finalize().ok());
    Register(catalog.get(), t);
  }
  {
    TableSchema schema("f", {{"f_fk1", DataType::kInt64},
                             {"f_fk2", DataType::kInt64},
                             {"f_fk3", DataType::kInt64},
                             {"f_v", DataType::kDouble}});
    auto t = std::make_shared<Table>(schema);
    ZipfSampler z1(100, 0.9), z2(400, 1.1), z3(50, 0.5);
    for (int64_t i = 0; i < 4000; ++i) {
      t->column(0).AppendInt(z1.Sample(&rng));
      t->column(1).AppendInt(z2.Sample(&rng));
      t->column(2).AppendInt(z3.Sample(&rng));
      t->column(3).AppendDouble(rng.UniformDouble(0.0, 100.0));
    }
    RQP_CHECK(t->Finalize().ok());
    Register(catalog.get(), t);
  }
  RQP_CHECK(catalog->BuildIndex("d1", "d1_k").ok());
  RQP_CHECK(catalog->BuildIndex("d2", "d2_k").ok());
  RQP_CHECK(catalog->BuildIndex("d3", "d3_k").ok());
  return catalog;
}

Query MakeStarQuery(int num_epps) {
  std::vector<int> epps;
  for (int d = 0; d < num_epps; ++d) epps.push_back(d);
  return Query("star" + std::to_string(num_epps), {"f", "d1", "d2", "d3"},
               {{"f", "f_fk1", "d1", "d1_k", "F~D1"},
                {"f", "f_fk2", "d2", "d2_k", "F~D2"},
                {"f", "f_fk3", "d3", "d3_k", "F~D3"}},
               {{"d1", "d1_a", CompareOp::kLe, 3},
                {"d2", "d2_a", CompareOp::kLe, 10}},
               epps);
}

Query MakeBranchQuery(int num_epps) {
  std::vector<int> epps;
  for (int d = 0; d < num_epps; ++d) epps.push_back(d);
  return Query("branch" + std::to_string(num_epps), {"f", "d1", "d2", "d3"},
               {{"f", "f_fk1", "d1", "d1_k", "F~D1"},
                {"f", "f_fk2", "d2", "d2_k", "F~D2"},
                {"d2", "d2_fk3", "d3", "d3_k", "D2~D3"}},
               {{"d3", "d3_a", CompareOp::kLe, 2}},
               epps);
}

Query MakeMixedEppQuery() {
  return Query("mixed", {"f", "d1", "d2", "d3"},
               {{"f", "f_fk1", "d1", "d1_k", "F~D1"},
                {"f", "f_fk2", "d2", "d2_k", "F~D2"},
                {"f", "f_fk3", "d3", "d3_k", "F~D3"}},
               {{"d1", "d1_a", CompareOp::kLe, 3},
                {"d2", "d2_a", CompareOp::kLe, 10}},
               std::vector<EppRef>{EppRef::Join(0), EppRef::Join(1),
                                   EppRef::Filter(0)});
}

}  // namespace testing_util
}  // namespace robustqp
