// Tests for the Section 7 deployment extensions: delta-bounded cost-model
// error (NoisyOracle — the (1+delta)^2 guarantee inflation) and
// statistics-driven identification of error-prone predicates.

#include <gtest/gtest.h>

#include <memory>

#include "core/noisy_oracle.h"
#include "core/spillbound.h"
#include "harness/evaluator.h"
#include "optimizer/epp_identifier.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

struct NoisyBundle {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Query> query;
  std::unique_ptr<Ess> ess;
};

NoisyBundle MakeBundle(int num_epps, int points) {
  NoisyBundle b;
  b.catalog = MakeTinyCatalog();
  b.query = std::make_unique<Query>(MakeStarQuery(num_epps));
  Ess::Config config;
  config.points_per_dim = points;
  config.min_sel = 1e-4;
  b.ess = Ess::Build(*b.catalog, *b.query, config);
  return b;
}

TEST(NoisyOracleTest, ZeroDeltaMatchesSimulatedOracle) {
  NoisyBundle b = MakeBundle(2, 12);
  const GridLoc qa = {7, 4};
  NoisyOracle noisy(b.ess.get(), qa, 0.0, 1);
  SimulatedOracle clean(b.ess.get(), qa);
  const Plan* plan = b.ess->OptimalPlan(qa);
  const double budget = b.ess->OptimalCost(qa) * 1.5;
  const ExecOutcome a = noisy.ExecuteFull(*plan, budget);
  const ExecOutcome c = clean.ExecuteFull(*plan, budget);
  EXPECT_EQ(a.completed, c.completed);
  EXPECT_DOUBLE_EQ(a.cost_charged, c.cost_charged);
  EXPECT_DOUBLE_EQ(noisy.ErrorFactor(*plan), 1.0);
}

TEST(NoisyOracleTest, ErrorFactorWithinBand) {
  NoisyBundle b = MakeBundle(2, 12);
  const double delta = 0.3;
  NoisyOracle oracle(b.ess.get(), {3, 3}, delta, 17);
  for (const Plan* p : b.ess->pool().plans()) {
    const double f = oracle.ErrorFactor(*p);
    EXPECT_GE(f, 1.0 / (1.0 + delta) - 1e-12);
    EXPECT_LE(f, (1.0 + delta) + 1e-12);
  }
}

TEST(NoisyOracleTest, ErrorFactorDeterministicPerPlan) {
  NoisyBundle b = MakeBundle(2, 12);
  NoisyOracle o1(b.ess.get(), {3, 3}, 0.3, 17);
  NoisyOracle o2(b.ess.get(), {9, 2}, 0.3, 17);
  for (const Plan* p : b.ess->pool().plans()) {
    EXPECT_DOUBLE_EQ(o1.ErrorFactor(*p), o2.ErrorFactor(*p));
  }
}

TEST(NoisyOracleTest, SpillFloorStaysSound) {
  // An aborted spill must never certify a floor at or beyond q_a's true
  // coordinate, whatever the error factor did.
  NoisyBundle b = MakeBundle(2, 16);
  const std::vector<double> no_learned = {-1.0, -1.0};
  const std::vector<bool> unlearned = {true, true};
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    for (int x = 2; x < 16; x += 4) {
      const GridLoc qa = {x, 11};
      NoisyOracle oracle(b.ess.get(), qa, 0.4, seed);
      for (int lx = 0; lx < 16; lx += 3) {
        const GridLoc loc = {lx, 5};
        const Plan* plan = b.ess->OptimalPlan(loc);
        const int dim = plan->SpillDimension(unlearned);
        const ExecOutcome out = oracle.ExecuteSpill(
            *plan, dim, b.ess->OptimalCost(loc), no_learned);
        if (!out.completed) {
          EXPECT_LT(out.learned_floor, qa[static_cast<size_t>(dim)])
              << "unsound floor at seed " << seed;
        } else {
          EXPECT_DOUBLE_EQ(
              out.learned_sel,
              b.ess->axis().value(qa[static_cast<size_t>(dim)]));
        }
      }
    }
  }
}

struct DeltaCase {
  double delta;
  uint64_t seed;
};

class NoisyGuaranteeTest : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(NoisyGuaranteeTest, MsoWithinInflatedGuarantee) {
  // Section 7: with budgets inflated by (1 + delta), MSO stays within
  // (D^2 + 3D)(1 + delta)^2 under delta-bounded cost model errors.
  // Exhaustive over a 2D ESS.
  NoisyBundle b = MakeBundle(2, 12);
  const double delta = GetParam().delta;
  SpillBound sb(b.ess.get(), SpillBound::Options{1.0 + delta});
  const double inflated =
      SpillBound::MsoGuarantee(2) * (1.0 + delta) * (1.0 + delta);
  for (int64_t lin = 0; lin < b.ess->num_locations(); ++lin) {
    NoisyOracle oracle(b.ess.get(), b.ess->FromLinear(lin), delta,
                       GetParam().seed);
    const DiscoveryResult r = sb.Run(&oracle);
    ASSERT_TRUE(r.completed);
    const double subopt = r.total_cost / oracle.ActualOptimalCost();
    EXPECT_LE(subopt, inflated * (1 + 1e-6)) << "qa=" << lin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoisyGuaranteeTest,
    ::testing::Values(DeltaCase{0.0, 1}, DeltaCase{0.1, 2}, DeltaCase{0.3, 3},
                      DeltaCase{0.3, 99}, DeltaCase{0.5, 4}),
    [](const ::testing::TestParamInfo<DeltaCase>& info) {
      return "delta" + std::to_string(static_cast<int>(info.param.delta * 10)) +
             "_s" + std::to_string(info.param.seed);
    });

// --- EPP identification ---------------------------------------------------

TEST(EppIdentifierTest, SkewScoreDetectsZipf) {
  auto catalog = MakeTinyCatalog();
  // f_fk2 is zipf(theta=1.1) over 400 values: heavy skew.
  const ColumnStats* zipf = catalog->FindColumnStats("f", "f_fk2");
  // d1_k is a serial key: perfectly uniform.
  const ColumnStats* uniform = catalog->FindColumnStats("d1", "d1_k");
  EXPECT_GT(ColumnSkewScore(*zipf), 8.0);
  EXPECT_LE(ColumnSkewScore(*uniform), 2.0);
}

TEST(EppIdentifierTest, FlagsSkewedJoins) {
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(0);  // no epps designated yet
  EppIdentifierOptions options;
  options.flag_filtered_inputs = false;
  options.skew_threshold = 8.0;
  const std::vector<int> epps = IdentifyErrorProneJoins(*catalog, q, options);
  // f_fk2 (zipf 1.1) must be flagged; f_fk3 (zipf 0.5, mild) should not.
  EXPECT_NE(std::find(epps.begin(), epps.end(), 1), epps.end());
  EXPECT_EQ(std::find(epps.begin(), epps.end(), 2), epps.end());
}

TEST(EppIdentifierTest, FiltersTriggerFlagging) {
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(0);
  EppIdentifierOptions options;
  options.skew_threshold = 1e9;  // disable skew path
  options.flag_filtered_inputs = true;
  const std::vector<int> epps = IdentifyErrorProneJoins(*catalog, q, options);
  // d1 and d2 carry filters -> joins 0 and 1 flagged; join 2 (d3,
  // unfiltered, mild skew) not.
  EXPECT_EQ(epps, (std::vector<int>{0, 1}));
}

TEST(EppIdentifierTest, ConservativeFlagsEverything) {
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(0);
  EppIdentifierOptions options;
  options.conservative = true;
  const std::vector<int> epps = IdentifyErrorProneJoins(*catalog, q, options);
  EXPECT_EQ(static_cast<int>(epps.size()), q.num_joins());
}

TEST(EppIdentifierTest, WithIdentifiedEppsRebuildsQuery) {
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(0);
  EppIdentifierOptions options;
  options.conservative = true;
  const Query q2 = WithIdentifiedEpps(*catalog, q, options);
  EXPECT_EQ(q2.num_epps(), q.num_joins());
  EXPECT_TRUE(q2.Validate(*catalog).ok());
  EXPECT_EQ(q2.tables(), q.tables());
}

}  // namespace
}  // namespace robustqp
