// Tests for the harness layer: exhaustive evaluator plumbing, the
// context cache, ground-truth selectivity measurement, and the trace
// printers.

#include <gtest/gtest.h>

#include <sstream>

#include "core/oracle.h"
#include "core/spillbound.h"
#include "harness/evaluator.h"
#include "harness/trace_printer.h"
#include "harness/true_selectivity.h"
#include "server/context_cache.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

TEST(ContextCacheTest, CachesByQueryAndConfig) {
  ContextCache& cache = ContextCache::Default();
  const auto a = *cache.Get("2D_Q91", Ess::Config{});
  const auto b = *cache.Get("2D_Q91", Ess::Config{});
  EXPECT_EQ(a.get(), b.get());

  Ess::Config other;
  other.points_per_dim = 12;
  const auto c = *cache.Get("2D_Q91", other);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->ess->points(), 12);

  Ess::Config commercial;
  commercial.cost_model = CostModel::CommercialFlavour();
  const auto d = *cache.Get("2D_Q91", commercial);
  EXPECT_NE(a.get(), d.get());
}

TEST(ContextCacheTest, SharedCatalogs) {
  EXPECT_EQ(ContextCache::TpcdsCatalog().get(),
            ContextCache::TpcdsCatalog().get());
  EXPECT_NE(ContextCache::TpcdsCatalog().get(),
            ContextCache::JobCatalog().get());
  const auto job = *ContextCache::Default().Get("4D_JOB_Q1a", Ess::Config{});
  EXPECT_EQ(job->catalog.get(), ContextCache::JobCatalog().get());
}

// GetDefault (the old Workbench::Get contract, now on ContextCache) must
// hand out a stable reference into the process-default (unbounded) cache,
// identical to the entry Default().Get serves for the same key.
TEST(ContextCacheTest, GetDefaultAliasesDefaultCache) {
  const ContextCache::Entry& ref = ContextCache::GetDefault("2D_Q91");
  const auto direct = *ContextCache::Default().Get("2D_Q91", Ess::Config{});
  EXPECT_EQ(&ref, direct.get());
}

TEST(TrueSelectivityTest, MatchesHandCount) {
  auto catalog = MakeTinyCatalog();
  // Unfiltered single FK join: truth is exactly 1/|d1| = 0.01 (every fact
  // row matches exactly one d1 row; no filter interplay).
  Query q("t", {"f", "d1"}, {{"f", "f_fk1", "d1", "d1_k", ""}}, {}, std::vector<int>{0});
  const EssPoint truth = ComputeTrueSelectivities(*catalog, q);
  ASSERT_EQ(truth.size(), 1u);
  EXPECT_NEAR(truth[0], 0.01, 1e-12);
}

TEST(TrueSelectivityTest, FiltersChangeTheDenominator) {
  auto catalog = MakeTinyCatalog();
  // With the d1_a <= 3 filter, the denominator shrinks to the filtered d1
  // and the numerator to facts whose d1 row survives; the ratio stays
  // within a sane band around 1/100 but is not exactly it (zipf skew).
  const Query q = MakeStarQuery(1);
  const EssPoint truth = ComputeTrueSelectivities(*catalog, q);
  EXPECT_GT(truth[0], 0.003);
  EXPECT_LT(truth[0], 0.03);
}

TEST(TrueSelectivityTest, AllEppDimensionsComputed) {
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(3);
  const EssPoint truth = ComputeTrueSelectivities(*catalog, q);
  ASSERT_EQ(truth.size(), 3u);
  for (double s : truth) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

class TracePrinterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeTinyCatalog().release();
    query_ = new Query(MakeStarQuery(2));
    Ess::Config config;
    config.points_per_dim = 12;
    ess_ = Ess::Build(*catalog_, *query_, config).release();
  }
  static Catalog* catalog_;
  static Query* query_;
  static Ess* ess_;
};
Catalog* TracePrinterTest::catalog_ = nullptr;
Query* TracePrinterTest::query_ = nullptr;
Ess* TracePrinterTest::ess_ = nullptr;

TEST_F(TracePrinterTest, ExecutionTraceContainsEveryStep) {
  SpillBound sb(ess_);
  SimulatedOracle oracle(ess_, {8, 8});
  const DiscoveryResult r = sb.Run(&oracle);
  ASSERT_TRUE(r.completed);
  std::ostringstream os;
  PrintExecutionTrace(*ess_, r, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("total cost:"), std::string::npos);
  EXPECT_NE(out.find("query completed"), std::string::npos);
  // One data row per execution (count pipe-prefixed lines minus header
  // and separator).
  int rows = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '|') ++rows;
  }
  EXPECT_EQ(rows, r.num_executions() + 2);  // + header + separator rows
}

TEST_F(TracePrinterTest, SpillStepsLowerCased) {
  SpillBound sb(ess_);
  SimulatedOracle oracle(ess_, {8, 8});
  const DiscoveryResult r = sb.Run(&oracle);
  std::ostringstream os;
  PrintExecutionTrace(*ess_, r, os);
  // Spill executions render as p<N>[e<dim>].
  bool has_spill = false;
  for (const auto& s : r.steps) has_spill |= s.spill_dim >= 0;
  if (has_spill) {
    EXPECT_NE(os.str().find("[e"), std::string::npos);
  }
}

TEST_F(TracePrinterTest, DrilldownHasEppColumns) {
  SpillBound sb(ess_);
  SimulatedOracle oracle(ess_, {6, 9});
  const DiscoveryResult r = sb.Run(&oracle);
  std::ostringstream os;
  PrintContourDrilldown(*ess_, r, os);
  EXPECT_NE(os.str().find("e1 ("), std::string::npos);
  EXPECT_NE(os.str().find("e2 ("), std::string::npos);
  EXPECT_NE(os.str().find("cum. cost"), std::string::npos);
}

TEST_F(TracePrinterTest, DrilldownSecondsColumn) {
  SpillBound sb(ess_);
  SimulatedOracle oracle(ess_, {6, 9});
  const DiscoveryResult r = sb.Run(&oracle);
  std::ostringstream os;
  PrintContourDrilldown(*ess_, r, os, /*seconds_per_unit=*/1e-6);
  EXPECT_NE(os.str().find("time (s)"), std::string::npos);
}

TEST(EvaluatorPlumbingTest, PercentileSemantics) {
  SuboptimalityStats stats;
  for (int i = 1; i <= 100; ++i) stats.subopt.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(stats.Percentile(100.0), 100.0);
  EXPECT_NEAR(stats.Percentile(50.0), 51.0, 1.0);
  EXPECT_NEAR(stats.Percentile(95.0), 96.0, 1.0);
  SuboptimalityStats empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(95.0), 0.0);
}

// Parallel evaluation must be bit-identical to serial: per-location
// sub-optimalities are independent of the worker partitioning and the
// reduction is a serial scan, so every field of SuboptimalityStats —
// including the full subopt vector — must match exactly (operator==,
// no tolerance) for any thread count.
class EvaluateDeterminismTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::shared_ptr<const ContextCache::Entry> entry() {
    Ess::Config config;
    config.points_per_dim = GetParam() == "2D_Q91" ? 12 : 8;
    return *ContextCache::Default().Get(GetParam(), config);
  }
};

TEST_P(EvaluateDeterminismTest, StatsIdenticalAcrossThreadCounts) {
  const Ess& ess = *entry()->ess;
  const SpillBound sb(&ess);
  const SuboptimalityStats serial = Evaluate(sb, ess, EvalOptions{1});
  for (int threads : {2, 8}) {
    const SuboptimalityStats parallel = Evaluate(sb, ess, EvalOptions{threads});
    EXPECT_EQ(parallel.mso, serial.mso) << threads << " threads";
    EXPECT_EQ(parallel.aso, serial.aso) << threads << " threads";
    EXPECT_EQ(parallel.worst_location, serial.worst_location)
        << threads << " threads";
    EXPECT_EQ(parallel.max_penalty, serial.max_penalty) << threads
                                                        << " threads";
    EXPECT_TRUE(parallel.subopt == serial.subopt) << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, EvaluateDeterminismTest,
                         ::testing::Values("2D_Q91", "3D_Q15"));

TEST(EvaluatorPlumbingTest, WorstLocationConsistent) {
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(2);
  Ess::Config config;
  config.points_per_dim = 10;
  auto ess = Ess::Build(*catalog, q, config);
  SpillBound sb(ess.get());
  const SuboptimalityStats stats = Evaluate(sb, *ess);
  ASSERT_GE(stats.worst_location, 0);
  EXPECT_DOUBLE_EQ(stats.subopt[static_cast<size_t>(stats.worst_location)],
                   stats.mso);
  // ASO equals the mean of the per-location vector.
  double sum = 0.0;
  for (double s : stats.subopt) sum += s;
  EXPECT_NEAR(stats.aso, sum / static_cast<double>(stats.subopt.size()), 1e-12);
  // Sub-optimality is >= 1 everywhere.
  for (double s : stats.subopt) EXPECT_GE(s, 1.0 - 1e-9);
}

}  // namespace
}  // namespace robustqp
