// Tests for the on-disk column-file format (storage/column_file.h): write
// → map round-trips for every column shape (ints, doubles, dictionary
// strings), streaming-writer equivalence with the resident build, and the
// durability discipline — truncations and footer bit-flips must surface
// as clean Statuses, never crashes (the same CKSUM contract the ess_io
// tests pin for surface files).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/column_file.h"
#include "storage/table.h"
#include "workloads/tpcds.h"
#include "workloads/tpcds_scale.h"

namespace robustqp {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/rqp_colf_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  RQP_CHECK(dir != nullptr);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RQP_CHECK(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  RQP_CHECK(out.good());
}

void ExpectZoneMapsEqual(const ZoneMap& a, const ZoneMap& b,
                         const std::string& what) {
  ASSERT_EQ(a.num_blocks(), b.num_blocks()) << what;
  for (int64_t i = 0; i < a.num_blocks(); ++i) {
    EXPECT_EQ(a.min[static_cast<size_t>(i)], b.min[static_cast<size_t>(i)])
        << what << " block " << i;
    EXPECT_EQ(a.max[static_cast<size_t>(i)], b.max[static_cast<size_t>(i)])
        << what << " block " << i;
  }
  ASSERT_EQ(a.has_nan.size(), b.has_nan.size()) << what;
  for (size_t i = 0; i < a.has_nan.size(); ++i) {
    EXPECT_EQ(a.has_nan[i], b.has_nan[i]) << what << " block " << i;
  }
}

void ExpectStatsEqual(const ColumnStats& a, const ColumnStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.max, b.max) << what;
  EXPECT_EQ(a.distinct_count, b.distinct_count) << what;
  EXPECT_EQ(a.row_count, b.row_count) << what;
  EXPECT_EQ(a.histogram.bounds, b.histogram.bounds) << what;
  EXPECT_EQ(a.histogram.rows_per_bucket, b.histogram.rows_per_bucket) << what;
  EXPECT_EQ(a.histogram.total_rows, b.histogram.total_rows) << what;
  EXPECT_EQ(a.str_histogram.bounds, b.str_histogram.bounds) << what;
  EXPECT_EQ(a.str_histogram.rows_per_bucket, b.str_histogram.rows_per_bucket)
      << what;
  EXPECT_EQ(a.str_histogram.total_rows, b.str_histogram.total_rows) << what;
  EXPECT_EQ(a.str_min, b.str_min) << what;
  EXPECT_EQ(a.str_max, b.str_max) << what;
}

void ExpectTablesEqual(const Table& a, const Table& b, int64_t stride,
                       const std::string& what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.schema().num_columns(), b.schema().num_columns()) << what;
  for (int c = 0; c < a.schema().num_columns(); ++c) {
    const DataType type = a.schema().column(c).type;
    ASSERT_EQ(type, b.schema().column(c).type) << what << " col " << c;
    EXPECT_EQ(a.schema().column(c).name, b.schema().column(c).name)
        << what << " col " << c;
    for (int64_t r = 0; r < a.num_rows(); r += stride) {
      if (type == DataType::kInt64) {
        ASSERT_EQ(a.column(c).GetInt(r), b.column(c).GetInt(r))
            << what << " col " << c << " row " << r;
      } else if (type == DataType::kDouble) {
        ASSERT_EQ(a.column(c).GetDouble(r), b.column(c).GetDouble(r))
            << what << " col " << c << " row " << r;
      } else {
        ASSERT_EQ(a.column(c).GetString(r), b.column(c).GetString(r))
            << what << " col " << c << " row " << r;
      }
    }
    ExpectZoneMapsEqual(a.column(c).zones(), b.column(c).zones(),
                        what + " col " + std::to_string(c) + " zones");
    ExpectZoneMapsEqual(a.column(c).chunk_zones(), b.column(c).chunk_zones(),
                        what + " col " + std::to_string(c) + " chunk zones");
  }
}

// Write → map round-trip for every TPC-DS table (the set now includes a
// dictionary string column, item.i_brand): values, zone maps (block and
// chunk granularity) and stats must all survive the file bit-exactly.
TEST(ColumnFileTest, ResidentRoundTripAllTables) {
  const std::string dir = MakeTempDir();
  auto catalog = BuildTpcdsCatalog(42, 0.05);
  for (const std::string& name : catalog->TableNames()) {
    const CatalogEntry* entry = catalog->FindTable(name);
    const std::string path = dir + "/" + name + ".rqp";
    ASSERT_TRUE(WriteTableFile(*entry->table, entry->stats, path).ok()) << name;
    MappedTable mt;
    ASSERT_TRUE(OpenMappedTable(path, &mt).ok()) << name;
    EXPECT_TRUE(mt.table->IsMapped()) << name;
    ExpectTablesEqual(*entry->table, *mt.table, /*stride=*/1, name);
    ASSERT_EQ(entry->stats.size(), mt.stats.size()) << name;
    for (size_t c = 0; c < entry->stats.size(); ++c) {
      ExpectStatsEqual(entry->stats[c], mt.stats[c],
                       name + " col " + std::to_string(c));
    }
    std::remove(path.c_str());
  }
  rmdir(dir.c_str());
}

// The streaming scale build must produce the same logical tables as the
// resident build at the same seed and scale: same values, same zone maps,
// same statistics (StreamingColumnStats reproduces ComputeColumnStats
// exactly below its cap). Only the physical residence differs.
TEST(ColumnFileTest, StreamingBuildMatchesResidentBuild) {
  const std::string dir = MakeTempDir();
  ScaleBuildStats build_stats;
  // 3000 store_sales rows == scale 0.05.
  ASSERT_TRUE(BuildTpcdsScaleFiles(dir, 42, 3000, &build_stats).ok());
  EXPECT_EQ(build_stats.store_sales_rows, 3000);
  EXPECT_GT(build_stats.file_bytes, 0u);

  auto resident = BuildTpcdsCatalog(42, 0.05);
  Result<std::shared_ptr<Catalog>> mapped = OpenTpcdsScaleCatalog(dir);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  for (const std::string& name : resident->TableNames()) {
    const CatalogEntry* re = resident->FindTable(name);
    const CatalogEntry* me = (*mapped)->FindTable(name);
    ASSERT_NE(me, nullptr) << name;
    ExpectTablesEqual(*re->table, *me->table, /*stride=*/1, name);
    ASSERT_EQ(re->stats.size(), me->stats.size()) << name;
    for (size_t c = 0; c < re->stats.size(); ++c) {
      ExpectStatsEqual(re->stats[c], me->stats[c],
                       name + " col " + std::to_string(c));
    }
    // The mapped twin exposes the same index access paths.
    for (const auto& [column, _] : re->indexes) {
      EXPECT_NE((*mapped)->FindIndex(name, column), nullptr)
          << name << "." << column;
    }
    std::remove((dir + "/" + name + ".rqp").c_str());
  }
  rmdir(dir.c_str());
}

class ColumnFileDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir();
    path_ = dir_ + "/item.rqp";
    auto catalog = BuildTpcdsCatalog(42, 0.05);
    const CatalogEntry* entry = catalog->FindTable("item");
    ASSERT_TRUE(WriteTableFile(*entry->table, entry->stats, path_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(fuzz_path().c_str());
    rmdir(dir_.c_str());
  }
  std::string fuzz_path() const { return dir_ + "/fuzz.rqp"; }

  std::string dir_;
  std::string path_;
  std::string bytes_;
};

// Any truncation — mid-payload, mid-footer, or inside the 32-byte tail —
// must fail with a clean Status (the tail extent / checksum discipline),
// never crash or return a table.
TEST_F(ColumnFileDurabilityTest, TruncationFailsCleanly) {
  const size_t sz = bytes_.size();
  std::vector<size_t> cuts = {0, 1, 4, 7, 8, 9, 16, sz / 4, sz / 2, sz - 33,
                              sz - 32, sz - 31, sz - 24, sz - 17, sz - 16,
                              sz - 9, sz - 8, sz - 7, sz - 1};
  for (const size_t cut : cuts) {
    WriteFileBytes(fuzz_path(), bytes_.substr(0, cut));
    MappedTable mt;
    const Status st = OpenMappedTable(fuzz_path(), &mt);
    EXPECT_FALSE(st.ok()) << "truncated to " << cut << " of " << sz;
  }
}

// Every single-bit flip in the footer blob or the tail must be detected:
// footer flips by the FNV-1a checksum, tail flips by the magic / extent /
// checksum comparisons. 512 deterministic trials.
TEST_F(ColumnFileDurabilityTest, FooterAndTailBitFlipsFailCleanly) {
  const size_t sz = bytes_.size();
  uint64_t footer_off = 0;
  std::memcpy(&footer_off, bytes_.data() + sz - 32, sizeof(footer_off));
  ASSERT_LT(footer_off, sz);
  Rng rng(1234);
  for (int trial = 0; trial < 512; ++trial) {
    const size_t pos = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(footer_off), static_cast<int64_t>(sz - 1)));
    const char mask = static_cast<char>(1 << rng.UniformInt(0, 7));
    std::string corrupt = bytes_;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ mask);
    WriteFileBytes(fuzz_path(), corrupt);
    MappedTable mt;
    const Status st = OpenMappedTable(fuzz_path(), &mt);
    EXPECT_FALSE(st.ok()) << "bit flip at " << pos;
  }
}

// Head-magic corruption and degenerate files fail cleanly too.
TEST_F(ColumnFileDurabilityTest, GarbageFilesFailCleanly) {
  MappedTable mt;
  EXPECT_FALSE(OpenMappedTable(dir_ + "/does_not_exist.rqp", &mt).ok());

  WriteFileBytes(fuzz_path(), "not a column file");
  EXPECT_FALSE(OpenMappedTable(fuzz_path(), &mt).ok());

  WriteFileBytes(fuzz_path(), std::string(4096, '\0'));
  EXPECT_FALSE(OpenMappedTable(fuzz_path(), &mt).ok());

  std::string bad_magic = bytes_;
  bad_magic[0] = 'X';
  WriteFileBytes(fuzz_path(), bad_magic);
  EXPECT_FALSE(OpenMappedTable(fuzz_path(), &mt).ok());
}

}  // namespace
}  // namespace robustqp
