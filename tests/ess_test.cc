// Tests for the ESS machinery: grid indexing, cost-surface monotonicity
// (PCM on the optimal cost surface), contour budgets, and the discrete
// frontier invariants that the algorithms' quantum-progress lemmas need.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "ess/ess.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

class EssTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeTinyCatalog().release();
    query_ = new Query(MakeStarQuery(2));
    Ess::Config config;
    config.points_per_dim = 24;
    config.min_sel = 1e-4;
    ess_ = Ess::Build(*catalog_, *query_, config).release();
  }

  static Catalog* catalog_;
  static Query* query_;
  static Ess* ess_;
};

Catalog* EssTest::catalog_ = nullptr;
Query* EssTest::query_ = nullptr;
Ess* EssTest::ess_ = nullptr;

TEST_F(EssTest, GridIndexRoundTrip) {
  EXPECT_EQ(ess_->num_locations(), 24 * 24);
  for (int64_t lin : {int64_t{0}, int64_t{5}, int64_t{24 * 24 - 1}, int64_t{317}}) {
    EXPECT_EQ(ess_->ToLinear(ess_->FromLinear(lin)), lin);
  }
}

TEST_F(EssTest, SelAtMatchesAxis) {
  const GridLoc loc = {3, 10};
  const EssPoint q = ess_->SelAt(loc);
  EXPECT_DOUBLE_EQ(q[0], ess_->axis().value(3));
  EXPECT_DOUBLE_EQ(q[1], ess_->axis().value(10));
}

TEST_F(EssTest, CminCmaxAtCorners) {
  EXPECT_DOUBLE_EQ(ess_->cmin(), ess_->OptimalCost(int64_t{0}));
  EXPECT_DOUBLE_EQ(ess_->cmax(), ess_->OptimalCost(ess_->num_locations() - 1));
  EXPECT_LT(ess_->cmin(), ess_->cmax());
}

TEST_F(EssTest, OptimalCostSurfaceIsMonotone) {
  // PCM on the OCS: every up-step in any dimension strictly increases the
  // optimal cost.
  for (int64_t lin = 0; lin < ess_->num_locations(); ++lin) {
    const GridLoc loc = ess_->FromLinear(lin);
    for (int d = 0; d < ess_->dims(); ++d) {
      if (loc[static_cast<size_t>(d)] + 1 >= ess_->points()) continue;
      GridLoc up = loc;
      ++up[static_cast<size_t>(d)];
      EXPECT_GT(ess_->OptimalCost(up), ess_->OptimalCost(loc));
    }
  }
}

TEST_F(EssTest, ContourBudgetsDoubleAndCapAtCmax) {
  ASSERT_GE(ess_->num_contours(), 2);
  EXPECT_DOUBLE_EQ(ess_->ContourCost(0), ess_->cmin());
  EXPECT_DOUBLE_EQ(ess_->ContourCost(ess_->num_contours() - 1), ess_->cmax());
  for (int i = 1; i + 1 < ess_->num_contours(); ++i) {
    EXPECT_NEAR(ess_->ContourCost(i) / ess_->ContourCost(i - 1), 2.0, 1e-9);
  }
  // The cap never exceeds a doubling step.
  const int m = ess_->num_contours();
  EXPECT_LE(ess_->ContourCost(m - 1) / ess_->ContourCost(m - 2), 2.0 + 1e-9);
}

TEST_F(EssTest, ContourOfIsConsistent) {
  for (int64_t lin = 0; lin < ess_->num_locations(); lin += 7) {
    const double c = ess_->OptimalCost(lin);
    const int i = ess_->ContourOf(c);
    EXPECT_LE(c, ess_->ContourCost(i) * (1 + 1e-9));
    if (i > 0) EXPECT_GT(c, ess_->ContourCost(i - 1));
  }
}

TEST_F(EssTest, FrontierMembersAreWithinBudgetAndMaximal) {
  for (int i = 0; i < ess_->num_contours(); ++i) {
    const double budget = ess_->ContourCost(i) * (1 + 1e-9);
    for (int64_t lin : ess_->FrontierLocations(i)) {
      EXPECT_LE(ess_->OptimalCost(lin), budget);
      const GridLoc loc = ess_->FromLinear(lin);
      for (int d = 0; d < ess_->dims(); ++d) {
        if (loc[static_cast<size_t>(d)] + 1 >= ess_->points()) continue;
        GridLoc up = loc;
        ++up[static_cast<size_t>(d)];
        EXPECT_GT(ess_->OptimalCost(up), budget)
            << "frontier point has an in-hypograph up-neighbour";
      }
    }
  }
}

TEST_F(EssTest, EveryHypographPointDominatedByFrontier) {
  // The covering property behind Lemmas 3.2/4.3: every grid location in a
  // contour's hypograph is dominated by some frontier location.
  for (int i = 0; i < ess_->num_contours(); i += 3) {
    const double budget = ess_->ContourCost(i) * (1 + 1e-9);
    const auto& frontier = ess_->FrontierLocations(i);
    for (int64_t lin = 0; lin < ess_->num_locations(); lin += 11) {
      if (ess_->OptimalCost(lin) > budget) continue;
      const GridLoc loc = ess_->FromLinear(lin);
      bool dominated = false;
      for (int64_t f : frontier) {
        const GridLoc floc = ess_->FromLinear(f);
        bool ok = true;
        for (int d = 0; d < ess_->dims(); ++d) {
          if (floc[static_cast<size_t>(d)] < loc[static_cast<size_t>(d)]) {
            ok = false;
            break;
          }
        }
        if (ok) {
          dominated = true;
          break;
        }
      }
      EXPECT_TRUE(dominated) << "hypograph point " << lin << " not covered";
    }
  }
}

TEST_F(EssTest, SliceFrontierMatchesFullFrontierWhenUnconstrained) {
  const std::vector<int> free(static_cast<size_t>(ess_->dims()), -1);
  for (int i = 0; i < ess_->num_contours(); i += 4) {
    const std::vector<int64_t> slice = ess_->SliceFrontier(i, free);
    const std::vector<int64_t>& full = ess_->FrontierLocations(i);
    EXPECT_EQ(std::set<int64_t>(slice.begin(), slice.end()),
              std::set<int64_t>(full.begin(), full.end()));
  }
}

TEST_F(EssTest, SliceFrontierRespectsPinnedDims) {
  const int pin = ess_->points() / 2;
  const std::vector<int> fixed = {pin, -1};
  for (int i = 0; i < ess_->num_contours(); ++i) {
    for (int64_t lin : ess_->SliceFrontier(i, fixed)) {
      EXPECT_EQ(ess_->FromLinear(lin)[0], pin);
      EXPECT_LE(ess_->OptimalCost(lin), ess_->ContourCost(i) * (1 + 1e-9));
    }
  }
}

TEST_F(EssTest, SliceFrontierIn1DIsSingleton) {
  // A fully pinned-but-one slice frontier has at most one location: the
  // largest index within budget.
  const std::vector<int> fixed = {5, -1};
  for (int i = 0; i < ess_->num_contours(); ++i) {
    const std::vector<int64_t> slice = ess_->SliceFrontier(i, fixed);
    EXPECT_LE(slice.size(), 1u);
  }
}

TEST_F(EssTest, PospPlansOptimalSomewhere) {
  // Every pooled plan must be the optimal plan of at least one location.
  std::set<const Plan*> used;
  for (int64_t lin = 0; lin < ess_->num_locations(); ++lin) {
    used.insert(ess_->OptimalPlan(lin));
  }
  EXPECT_EQ(static_cast<int>(used.size()), ess_->pool().size());
  EXPECT_GE(ess_->pool().size(), 3) << "expect plan diversity across the ESS";
}

TEST_F(EssTest, OptimalPlanCostMatchesOptimizer) {
  for (int64_t lin = 0; lin < ess_->num_locations(); lin += 37) {
    const EssPoint q = ess_->SelAt(ess_->FromLinear(lin));
    EXPECT_DOUBLE_EQ(ess_->OptimalCost(lin),
                     ess_->optimizer().PlanCost(*ess_->OptimalPlan(lin), q));
  }
}

TEST_F(EssTest, OptimalPlanIsActuallyOptimalAmongPool) {
  // No pooled plan may beat the recorded optimum anywhere.
  for (int64_t lin = 0; lin < ess_->num_locations(); lin += 53) {
    const EssPoint q = ess_->SelAt(ess_->FromLinear(lin));
    const double opt = ess_->OptimalCost(lin);
    for (const Plan* p : ess_->pool().plans()) {
      EXPECT_GE(ess_->optimizer().PlanCost(*p, q), opt * (1 - 1e-9));
    }
  }
}

TEST(EssConfigTest, DefaultPointsPerDim) {
  EXPECT_EQ(DefaultPointsPerDim(1), 64);
  EXPECT_EQ(DefaultPointsPerDim(2), 40);
  EXPECT_GE(DefaultPointsPerDim(6), 4);
}

TEST(EssConfigTest, CostRatioRespected) {
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(2);
  Ess::Config config;
  config.points_per_dim = 10;
  config.contour_cost_ratio = 1.8;
  auto ess = Ess::Build(*catalog, q, config);
  for (int i = 1; i + 1 < ess->num_contours(); ++i) {
    EXPECT_NEAR(ess->ContourCost(i) / ess->ContourCost(i - 1), 1.8, 1e-9);
  }
}

}  // namespace
}  // namespace robustqp
