// Tests for the synthetic TPC-DS / JOB catalogs and the paper query suite.

#include <gtest/gtest.h>

#include "storage/table.h"
#include "workloads/job.h"
#include "workloads/queries.h"
#include "workloads/tpcds.h"

namespace robustqp {
namespace {

TEST(TpcdsCatalogTest, TablesPresentWithExpectedShapes) {
  auto catalog = BuildTpcdsCatalog(42, 0.2);
  for (const char* name :
       {"date_dim", "time_dim", "item", "customer", "customer_address",
        "customer_demographics", "household_demographics", "income_band",
        "store", "call_center", "promotion", "store_sales", "catalog_sales",
        "store_returns"}) {
    ASSERT_NE(catalog->FindTable(name), nullptr) << name;
    EXPECT_GT(catalog->RowCount(name), 0) << name;
  }
  // Fact tables scale; dimensions don't.
  EXPECT_EQ(catalog->RowCount("store_sales"), 12000);
  EXPECT_EQ(catalog->RowCount("date_dim"), 1826);
}

TEST(TpcdsCatalogTest, DeterministicForSeed) {
  auto a = BuildTpcdsCatalog(42, 0.05);
  auto b = BuildTpcdsCatalog(42, 0.05);
  const Table& ta = *a->FindTable("store_sales")->table;
  const Table& tb = *b->FindTable("store_sales")->table;
  ASSERT_EQ(ta.num_rows(), tb.num_rows());
  for (int64_t r = 0; r < ta.num_rows(); r += 97) {
    EXPECT_EQ(ta.column(0).GetInt(r), tb.column(0).GetInt(r));
  }
}

TEST(TpcdsCatalogTest, ForeignKeysWithinParentDomain) {
  auto catalog = BuildTpcdsCatalog(42, 0.05);
  const Table& ss = *catalog->FindTable("store_sales")->table;
  const int64_t n_date = catalog->RowCount("date_dim");
  const int col = ss.schema().FindColumn("ss_sold_date_sk");
  ASSERT_GE(col, 0);
  for (int64_t r = 0; r < ss.num_rows(); ++r) {
    const int64_t fk = ss.column(col).GetInt(r);
    EXPECT_GE(fk, 1);
    EXPECT_LE(fk, n_date);
  }
}

TEST(TpcdsCatalogTest, ZipfSkewPresentOnFactFks) {
  auto catalog = BuildTpcdsCatalog(42, 1.0);
  const Table& cs = *catalog->FindTable("catalog_sales")->table;
  const int col = cs.schema().FindColumn("cs_call_center_sk");
  std::map<int64_t, int64_t> counts;
  for (int64_t r = 0; r < cs.num_rows(); ++r) ++counts[cs.column(col).GetInt(r)];
  // Rank 1 must dominate the median call center noticeably.
  EXPECT_GT(counts[1], counts[15] * 2);
}

TEST(JobCatalogTest, TablesPresent) {
  auto catalog = BuildJobCatalog(7, 0.2);
  for (const char* name : {"company_type", "info_type", "title",
                           "movie_companies", "movie_info_idx"}) {
    ASSERT_NE(catalog->FindTable(name), nullptr) << name;
    EXPECT_GT(catalog->RowCount(name), 0) << name;
  }
  EXPECT_EQ(catalog->RowCount("company_type"), 4);
  EXPECT_EQ(catalog->RowCount("info_type"), 113);
}

TEST(QuerySuiteTest, AllTpcdsQueriesValidate) {
  auto catalog = BuildTpcdsCatalog(42, 0.1);
  for (const std::string& id : SuiteQueryIds()) {
    if (IsJobQuery(id)) continue;
    const Query q = MakeSuiteQuery(id);
    EXPECT_TRUE(q.Validate(*catalog).ok()) << id;
  }
}

TEST(QuerySuiteTest, JobQueryValidates) {
  auto catalog = BuildJobCatalog(7, 0.2);
  const Query q = MakeSuiteQuery("4D_JOB_Q1a");
  EXPECT_TRUE(q.Validate(*catalog).ok());
}

TEST(QuerySuiteTest, DimensionalityMatchesName) {
  for (const std::string& id : SuiteQueryIds()) {
    const Query q = MakeSuiteQuery(id);
    const int d = id[0] - '0';
    EXPECT_EQ(q.num_epps(), d) << id;
  }
}

TEST(QuerySuiteTest, PaperSuiteHasElevenQueries) {
  EXPECT_EQ(PaperQuerySuite().size(), 11u);
  EXPECT_EQ(Q91Family().size(), 5u);
  EXPECT_EQ(AlignmentQuerySuite().size(), 6u);
}

TEST(QuerySuiteTest, Q91FamilyIsNested) {
  // Each higher-D Q91 adds epps while keeping the earlier ones.
  const Query q2 = MakeSuiteQuery("2D_Q91");
  const Query q4 = MakeSuiteQuery("4D_Q91");
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(q2.JoinOfEppDimension(d), q4.JoinOfEppDimension(d));
  }
  EXPECT_EQ(q2.num_tables(), q4.num_tables());
  EXPECT_EQ(q2.num_joins(), q4.num_joins());
}

TEST(QuerySuiteTest, EppLabelsAreInformative) {
  const Query q = MakeSuiteQuery("2D_Q91");
  EXPECT_EQ(q.EppLabel(0), "CS~DD");
  EXPECT_EQ(q.EppLabel(1), "C~CA");
}

TEST(QuerySuiteTest, IsJobQueryDetection) {
  EXPECT_TRUE(IsJobQuery("4D_JOB_Q1a"));
  EXPECT_FALSE(IsJobQuery("4D_Q91"));
}

}  // namespace
}  // namespace robustqp
