// Tests for the Theorem 4.6 lower-bound adversary game: every strategy —
// optimal play, SpillBound-style play, and randomized play — pays at
// least D times the oracle-optimal cost, and the bound is tight (optimal
// play pays exactly D).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/lower_bound_game.h"

namespace robustqp {
namespace {

TEST(LowerBoundGameTest, OptimalPlayPaysExactlyD) {
  for (int dims = 2; dims <= 8; ++dims) {
    LowerBoundGame game(dims, 1.0);
    // Best possible deterministic play: resolve D-1 dimensions at exactly
    // the informative budget, then complete the pinned scenario.
    for (int d = 0; d < dims - 1; ++d) {
      const auto r = game.ProbeDimension(d, 1.0);
      EXPECT_TRUE(r.resolved);
      EXPECT_FALSE(r.coordinate_is_far) << "adversary must deny dim " << d;
    }
    EXPECT_EQ(game.remaining_scenarios(), 1);
    EXPECT_TRUE(game.AttemptCompletion(dims - 1, 1.0));
    EXPECT_DOUBLE_EQ(game.total_cost(), static_cast<double>(dims));
  }
}

TEST(LowerBoundGameTest, SubUnitProbesRevealNothing) {
  LowerBoundGame game(3, 1.0);
  const auto r = game.ProbeDimension(0, 0.5);
  EXPECT_FALSE(r.resolved);
  EXPECT_EQ(game.remaining_scenarios(), 3);
  EXPECT_DOUBLE_EQ(game.total_cost(), 0.5);
}

TEST(LowerBoundGameTest, PrematureCompletionIsDenied) {
  LowerBoundGame game(3, 1.0);
  // Gambling on a scenario before discovery: the adversary denies it and
  // the whole budget burns.
  EXPECT_FALSE(game.AttemptCompletion(1, 7.0));
  EXPECT_DOUBLE_EQ(game.total_cost(), 7.0);
  EXPECT_EQ(game.remaining_scenarios(), 2);
  // Denying all but one pins the adversary.
  EXPECT_FALSE(game.AttemptCompletion(0, 1.0));
  EXPECT_EQ(game.remaining_scenarios(), 1);
  EXPECT_TRUE(game.AttemptCompletion(2, 1.0));
  EXPECT_GE(game.total_cost(), 3.0);
}

TEST(LowerBoundGameTest, SpillBoundStyleStrategyAtLeastD) {
  for (int dims = 2; dims <= 8; ++dims) {
    const double subopt = PlaySpillBoundStyleStrategy(dims);
    EXPECT_GE(subopt, static_cast<double>(dims)) << "dims " << dims;
    // And comfortably below the D^2+3D upper guarantee.
    EXPECT_LE(subopt, static_cast<double>(dims * dims + 3 * dims));
  }
}

TEST(LowerBoundGameTest, RandomStrategiesNeverBeatD) {
  // Property: no play-out, however lucky-looking, finishes below D * C.
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const int dims = static_cast<int>(rng.UniformInt(2, 6));
    LowerBoundGame game(dims, 1.0);
    int guard = 0;
    while (!game.finished() && ++guard < 500) {
      const int dim = static_cast<int>(rng.UniformInt(0, dims - 1));
      const double budget = rng.UniformDouble(0.1, 3.0);
      if (rng.Bernoulli(0.3)) {
        game.AttemptCompletion(dim, budget);
      } else {
        game.ProbeDimension(dim, budget);
      }
    }
    if (game.finished()) {
      EXPECT_GE(game.total_cost(), static_cast<double>(dims) - 1e-9)
          << "seed " << seed;
    }
  }
}

TEST(LowerBoundGameTest, AdversaryKeepsAScenarioAlive) {
  LowerBoundGame game(4, 2.0);
  for (int d = 0; d < 4 && !game.finished(); ++d) {
    game.ProbeDimension(d, 2.0);
    EXPECT_GE(game.remaining_scenarios(), 1);
  }
  EXPECT_EQ(game.remaining_scenarios(), 1);
}

}  // namespace
}  // namespace robustqp
