// Suite-wide property tests: for every query of the paper's workload
// (TPC-DS 3D..6D plus JOB), on a reduced grid, verify the structural
// invariants the guarantees rest on — PCM of the optimal cost surface,
// frontier maximality/covering, plan-identity sanity — and spot-check
// that all three discovery algorithms complete within their guarantees
// from scattered true locations.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/alignedbound.h"
#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "server/context_cache.h"
#include "workloads/queries.h"

namespace robustqp {
namespace {

/// Small grids keep the whole-suite sweep fast while preserving the
/// structure the invariants quantify over.
Ess::Config SmallConfig(int dims) {
  Ess::Config config;
  switch (dims) {
    case 2:
      config.points_per_dim = 12;
      break;
    case 3:
      config.points_per_dim = 8;
      break;
    case 4:
      config.points_per_dim = 6;
      break;
    default:
      config.points_per_dim = 4;
      break;
  }
  return config;
}

class SuitePropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::shared_ptr<const ContextCache::Entry> entry() {
    const Query probe = MakeSuiteQuery(GetParam());
    return *ContextCache::Default().Get(GetParam(),
                                        SmallConfig(probe.num_epps()));
  }
};

TEST_P(SuitePropertyTest, OptimalCostSurfaceMonotone) {
  const Ess& ess = *entry()->ess;
  for (int64_t lin = 0; lin < ess.num_locations(); ++lin) {
    const GridLoc loc = ess.FromLinear(lin);
    for (int d = 0; d < ess.dims(); ++d) {
      if (loc[static_cast<size_t>(d)] + 1 >= ess.points()) continue;
      GridLoc up = loc;
      ++up[static_cast<size_t>(d)];
      EXPECT_GT(ess.OptimalCost(up), ess.OptimalCost(loc))
          << GetParam() << " at " << lin << " dim " << d;
    }
  }
}

TEST_P(SuitePropertyTest, FrontiersAreMaximalAndWithinBudget) {
  const Ess& ess = *entry()->ess;
  for (int i = 0; i < ess.num_contours(); ++i) {
    // Same relative tolerance as the frontier computation itself.
    const double budget = ess.ContourCost(i) * (1 + 1e-12);
    for (int64_t lin : ess.FrontierLocations(i)) {
      EXPECT_LE(ess.OptimalCost(lin), budget);
      const GridLoc loc = ess.FromLinear(lin);
      for (int d = 0; d < ess.dims(); ++d) {
        if (loc[static_cast<size_t>(d)] + 1 >= ess.points()) continue;
        GridLoc up = loc;
        ++up[static_cast<size_t>(d)];
        EXPECT_GT(ess.OptimalCost(up), budget) << GetParam();
      }
    }
  }
}

TEST_P(SuitePropertyTest, EveryPlanSpillsOnSomeDim) {
  // Valid SPJ plans contain every epp join, so with all dims unlearned
  // each POSP plan has a well-defined spill dimension.
  const Ess& ess = *entry()->ess;
  const std::vector<bool> unlearned(static_cast<size_t>(ess.dims()), true);
  for (const Plan* p : ess.pool().plans()) {
    const int dim = p->SpillDimension(unlearned);
    EXPECT_GE(dim, 0) << GetParam() << " plan " << p->display_name();
    EXPECT_LT(dim, ess.dims());
    // Epp order mentions every dimension exactly once.
    std::set<int> dims_seen(p->epp_execution_order().begin(),
                            p->epp_execution_order().end());
    EXPECT_EQ(static_cast<int>(dims_seen.size()), ess.dims())
        << GetParam() << " plan " << p->display_name();
  }
}

TEST_P(SuitePropertyTest, AllAlgorithmsWithinGuaranteesOnSampledLocations) {
  const Ess& ess = *entry()->ess;
  const int D = ess.dims();
  PlanBouquet pb(&ess);
  SpillBound sb(&ess);
  AlignedBound ab(&ess);
  const double pb_guarantee = pb.MsoGuarantee();
  const double sb_guarantee = SpillBound::MsoGuarantee(D);

  const int64_t stride = std::max<int64_t>(1, ess.num_locations() / 40);
  for (int64_t lin = 0; lin < ess.num_locations(); lin += stride) {
    const double opt = ess.OptimalCost(lin);
    {
      SimulatedOracle oracle(&ess, ess.FromLinear(lin));
      const DiscoveryResult r = pb.Run(&oracle);
      ASSERT_TRUE(r.completed) << GetParam() << " PB qa=" << lin;
      EXPECT_LE(r.total_cost / opt, pb_guarantee * (1 + 1e-6)) << GetParam();
    }
    {
      SimulatedOracle oracle(&ess, ess.FromLinear(lin));
      const DiscoveryResult r = sb.Run(&oracle);
      ASSERT_TRUE(r.completed) << GetParam() << " SB qa=" << lin;
      EXPECT_LE(r.total_cost / opt, sb_guarantee * (1 + 1e-6)) << GetParam();
    }
    {
      SimulatedOracle oracle(&ess, ess.FromLinear(lin));
      const DiscoveryResult r = ab.Run(&oracle);
      ASSERT_TRUE(r.completed) << GetParam() << " AB qa=" << lin;
      EXPECT_LE(r.total_cost / opt, sb_guarantee * (1 + 1e-6)) << GetParam();
    }
  }
}

TEST_P(SuitePropertyTest, PospPlansAreDistinctAndValid) {
  const Ess& ess = *entry()->ess;
  std::set<std::string> signatures;
  for (const Plan* p : ess.pool().plans()) {
    EXPECT_TRUE(signatures.insert(p->signature()).second)
        << "duplicate signature in pool: " << p->signature();
    EXPECT_GE(p->num_nodes(), 2 * ess.query().num_tables() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, SuitePropertyTest,
    ::testing::Values("2D_Q91", "3D_Q15", "3D_Q96", "4D_Q7", "4D_Q26",
                      "4D_Q27", "4D_Q91", "5D_Q19", "5D_Q29", "5D_Q84",
                      "6D_Q18", "6D_Q91", "4D_JOB_Q1a"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace robustqp
