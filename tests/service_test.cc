// Tests for the service layer: the session API's concurrency-determinism
// contract, ContextCache LRU/stats behaviour, admission control and
// deadlines, the stable error-code mapping, and the TCP line protocol.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "server/context_cache.h"
#include "server/query_service.h"
#include "server/tcp_server.h"

namespace robustqp {
namespace {

/// Small grid so context builds stay cheap.
RequestOptions SmallOptions() {
  RequestOptions opts;
  opts.points_per_dim = 8;
  opts.ess_threads = 1;
  return opts;
}

// ---------------------------------------------------------------------------
// Stable error codes (the client-visible contract shared by CLI exit codes
// and the TCP protocol's ERR code= field). One expectation per StatusCode:
// these numbers must never change meaning.
// ---------------------------------------------------------------------------

TEST(ExitCodeTest, EveryStatusCodeHasItsStableNumber) {
  EXPECT_EQ(ExitCodeFor(StatusCode::kOk), 0);
  EXPECT_EQ(ExitCodeFor(StatusCode::kInvalidArgument), 2);
  EXPECT_EQ(ExitCodeFor(StatusCode::kNotFound), 3);
  EXPECT_EQ(ExitCodeFor(StatusCode::kOutOfRange), 4);
  EXPECT_EQ(ExitCodeFor(StatusCode::kUnsupported), 5);
  EXPECT_EQ(ExitCodeFor(StatusCode::kInternal), 6);
  EXPECT_EQ(ExitCodeFor(StatusCode::kBudgetExhausted), 7);
  EXPECT_EQ(ExitCodeFor(StatusCode::kUnavailable), 8);
  EXPECT_EQ(ExitCodeFor(StatusCode::kResourceExhausted), 9);
  EXPECT_EQ(ExitCodeFor(StatusCode::kDeadlineExceeded), 10);
}

// ---------------------------------------------------------------------------
// ContextCache: LRU eviction and hit/miss goldens.
// ---------------------------------------------------------------------------

TEST(ContextCacheLruTest, EvictionAndStatsGoldens) {
  ContextCache cache(ContextCache::Options{/*capacity=*/2});
  Ess::Config a = SmallOptions().ToEssConfig();
  Ess::Config b = a;
  b.points_per_dim = 6;
  Ess::Config c = a;
  c.points_per_dim = 10;

  bool hit = true;
  ASSERT_TRUE(cache.Get("2D_Q91", a, &hit).ok());
  EXPECT_FALSE(hit);  // cold miss
  ASSERT_TRUE(cache.Get("2D_Q91", a, &hit).ok());
  EXPECT_TRUE(hit);  // warm hit
  ASSERT_TRUE(cache.Get("2D_Q91", b, &hit).ok());
  EXPECT_FALSE(hit);
  // Third distinct key: capacity 2 evicts the least recently used (a).
  ASSERT_TRUE(cache.Get("2D_Q91", c, &hit).ok());
  EXPECT_FALSE(hit);
  {
    const ContextCache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 1);
    EXPECT_EQ(s.misses, 3);
    EXPECT_EQ(s.evictions, 1);
    EXPECT_EQ(s.failures, 0);
    EXPECT_EQ(s.size, 2u);
  }
  // b was touched more recently than the evicted a: still resident.
  ASSERT_TRUE(cache.Get("2D_Q91", b, &hit).ok());
  EXPECT_TRUE(hit);
  // a misses again (rebuild) and evicts c, the LRU of {c, b-touched}.
  ASSERT_TRUE(cache.Get("2D_Q91", a, &hit).ok());
  EXPECT_FALSE(hit);
  const ContextCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 2);
  EXPECT_EQ(s.misses, 4);
  EXPECT_EQ(s.evictions, 2);
  EXPECT_EQ(s.size, 2u);
}

TEST(ContextCacheLruTest, EvictionDoesNotInvalidateHolders) {
  ContextCache cache(ContextCache::Options{/*capacity=*/1});
  Ess::Config a = SmallOptions().ToEssConfig();
  Ess::Config b = a;
  b.points_per_dim = 6;
  const auto held = *cache.Get("2D_Q91", a);
  ASSERT_TRUE(cache.Get("2D_Q91", b).ok());  // evicts a's slot
  EXPECT_EQ(cache.stats().evictions, 1);
  // The shared_ptr keeps the evicted entry alive and usable.
  EXPECT_EQ(held->ess->points(), 8);
  EXPECT_GT(held->ess->num_contours(), 0);
}

TEST(ContextCacheLruTest, UnknownQueryIsNotFoundAndNotCached) {
  ContextCache cache(ContextCache::Options{/*capacity=*/2});
  const auto r = cache.Get("9D_NOPE", SmallOptions().ToEssConfig());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  const ContextCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 0);
  EXPECT_EQ(s.size, 0u);
}

TEST(ContextCacheLruTest, DistinctKeysBuildConcurrently) {
  ContextCache cache(ContextCache::Options{/*capacity=*/8});
  std::vector<std::thread> threads;
  std::vector<Status> results(4, Status::OK());
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&cache, &results, i] {
      Ess::Config config = SmallOptions().ToEssConfig();
      config.points_per_dim = 6 + 2 * (i % 2);  // two distinct keys, raced
      results[static_cast<size_t>(i)] =
          cache.Get("2D_Q91", config).ok() ? Status::OK()
                                           : Status::Internal("get failed");
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& s : results) EXPECT_TRUE(s.ok());
  const ContextCache::Stats s = cache.stats();
  // Two keys were requested twice each: every request is a hit or a miss,
  // and same-key racers that arrived before the build finished count as
  // misses served by the one build.
  EXPECT_EQ(s.hits + s.misses, 4);
  EXPECT_EQ(s.size, 2u);
}

// ---------------------------------------------------------------------------
// QueryService: admission control, deadlines, error mapping.
// ---------------------------------------------------------------------------

/// A gate the pre_run_hook blocks on, holding every worker busy until
/// released — makes queue-full and deadline states deterministic.
class Gate {
 public:
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void WaitOpen() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(QueryServiceTest, AdmissionControlRejectsBeyondQueueLimit) {
  Gate gate;
  QueryService::Options opts;
  opts.num_threads = 2;
  opts.queue_limit = 2;
  opts.pre_run_hook = [&gate] { gate.WaitOpen(); };
  QueryService service(opts);
  const int64_t session = *service.OpenSession();

  ServiceRequest req;
  req.query_id = "2D_Q91";
  req.options = SmallOptions();
  const Result<int64_t> first = service.Submit(session, req);
  const Result<int64_t> second = service.Submit(session, req);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // The queue is full (2 admitted, nothing can finish while gated):
  // rejection is immediate and side-effect free.
  const Result<int64_t> third = service.Submit(session, req);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ExitCodeFor(third.status().code()), 9);

  gate.Release();
  EXPECT_TRUE(service.Wait(session, *first)->status.ok());
  EXPECT_TRUE(service.Wait(session, *second)->status.ok());

  // Load drained: the same request is admitted now.
  const Result<int64_t> retry = service.Submit(session, req);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(service.Wait(session, *retry)->status.ok());

  const QueryService::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 3);
  EXPECT_TRUE(service.CloseSession(session).ok());
}

TEST(QueryServiceTest, DeadlineExpiredInQueueIsNotRun) {
  Gate gate;
  QueryService::Options opts;
  opts.num_threads = 1;
  opts.pre_run_hook = [&gate] { gate.WaitOpen(); };
  QueryService service(opts);
  const int64_t session = *service.OpenSession();

  ServiceRequest blocker;
  blocker.query_id = "2D_Q91";
  blocker.options = SmallOptions();
  ServiceRequest victim = blocker;
  victim.deadline_ms = 0.0;  // any queueing at all exceeds it

  const int64_t blocker_id = *service.Submit(session, blocker);
  const int64_t victim_id = *service.Submit(session, victim);
  gate.Release();

  EXPECT_TRUE(service.Wait(session, blocker_id)->status.ok());
  const ServiceResponse victim_resp = *service.Wait(session, victim_id);
  EXPECT_EQ(victim_resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ExitCodeFor(victim_resp.status.code()), 10);
  // Expired before running: no payload was produced.
  EXPECT_FALSE(victim_resp.completed);
  EXPECT_EQ(victim_resp.cost_used, 0.0);
  EXPECT_EQ(service.stats().deadline_expired, 1);
  EXPECT_TRUE(service.CloseSession(session).ok());
}

TEST(QueryServiceTest, EveryRequestFailureMapsToItsCode) {
  QueryService service;
  const int64_t session = *service.OpenSession();

  // Unknown session.
  EXPECT_EQ(service.Submit(session + 99, ServiceRequest{}).status().code(),
            StatusCode::kNotFound);
  // Unknown request id / session mismatch.
  EXPECT_EQ(service.Wait(session, 12345).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Poll(session, 12345).status().code(),
            StatusCode::kNotFound);
  // Unknown session on close.
  EXPECT_EQ(service.CloseSession(session + 99).code(), StatusCode::kNotFound);

  auto run = [&](const ServiceRequest& req) {
    return service.Wait(session, *service.Submit(session, req))->status;
  };

  ServiceRequest base;
  base.query_id = "2D_Q91";
  base.options = SmallOptions();

  // Unknown suite query.
  ServiceRequest unknown = base;
  unknown.query_id = "2D_NOPE";
  EXPECT_EQ(run(unknown).code(), StatusCode::kNotFound);

  // Wrong qa arity.
  ServiceRequest bad_arity = base;
  bad_arity.qa = {0.1};
  EXPECT_EQ(run(bad_arity).code(), StatusCode::kInvalidArgument);

  // qa outside (0, 1].
  ServiceRequest bad_range = base;
  bad_range.qa = {0.1, 2.5};
  EXPECT_EQ(run(bad_range).code(), StatusCode::kOutOfRange);

  // Malformed chaos spec.
  ServiceRequest bad_spec = base;
  bad_spec.options.fault_spec = "::not-a-spec::";
  EXPECT_EQ(run(bad_spec).code(), StatusCode::kInvalidArgument);

  // Service-level budget cap.
  ServiceRequest tiny_budget = base;
  tiny_budget.budget = 1e-6;
  EXPECT_EQ(run(tiny_budget).code(), StatusCode::kBudgetExhausted);

  // And the happy path is OK with a cache hit by now.
  const ServiceResponse ok_resp =
      *service.Wait(session, *service.Submit(session, base));
  EXPECT_TRUE(ok_resp.status.ok());
  EXPECT_TRUE(ok_resp.cache_hit);
  EXPECT_TRUE(service.CloseSession(session).ok());
}

// ---------------------------------------------------------------------------
// The determinism contract: N concurrent sessions, mixed requests (chaos
// included), every payload bit-identical to a serial RunOneShot of the
// same request on a fresh cache.
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, SixteenConcurrentClientsBitIdenticalToSerial) {
  // A mixed workload covering both catalogs' cost models is unnecessary —
  // what matters is mode coverage, parameter coverage, and a chaos spec.
  std::vector<ServiceRequest> mix;
  {
    ServiceRequest r;
    r.query_id = "2D_Q91";
    r.options = SmallOptions();
    r.mode = RobustnessMode::kSpillBound;
    mix.push_back(r);
    r.mode = RobustnessMode::kPlanBouquet;
    mix.push_back(r);
    r.mode = RobustnessMode::kAlignedBound;
    r.qa = {0.04, 0.1};
    mix.push_back(r);
    r.mode = RobustnessMode::kNative;
    mix.push_back(r);
    // A chaos request: deterministic injected faults keyed by (spec, seed).
    r.mode = RobustnessMode::kSpillBound;
    r.qa = {0.2, 0.3};
    r.options.fault_spec = "*:p=0.05";
    r.options.fault_seed = 7;
    mix.push_back(r);
    // Different grid = different context cache key.
    ServiceRequest q15;
    q15.query_id = "3D_Q15";
    q15.options = SmallOptions();
    q15.options.points_per_dim = 6;
    q15.mode = RobustnessMode::kSpillBound;
    mix.push_back(q15);
  }

  // Serial references, each on a fresh private cache: the ground truth a
  // fresh one-shot process would produce.
  std::vector<ServiceResponse> expected;
  for (const ServiceRequest& req : mix) {
    ContextCache fresh;
    expected.push_back(QueryService::RunOneShot(req, &fresh));
    ASSERT_TRUE(expected.back().status.ok()) << expected.back().status.ToString();
  }

  constexpr int kClients = 16;
  QueryService::Options opts;
  opts.num_threads = 8;
  opts.queue_limit = 2 * kClients;
  QueryService service(opts);

  std::vector<ServiceResponse> got(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const ServiceRequest& req = mix[static_cast<size_t>(c) % mix.size()];
      const int64_t session = *service.OpenSession();
      const int64_t id = *service.Submit(session, req);
      got[static_cast<size_t>(c)] = *service.Wait(session, id);
      ASSERT_TRUE(service.CloseSession(session).ok());
    });
  }
  for (auto& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    const ServiceResponse& want = expected[static_cast<size_t>(c) % mix.size()];
    const ServiceResponse& resp = got[static_cast<size_t>(c)];
    SCOPED_TRACE("client " + std::to_string(c) + " (" + want.query_id + " " +
                 want.algorithm + ")");
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.algorithm, want.algorithm);
    EXPECT_EQ(resp.completed, want.completed);
    // Bit-exact payload comparisons: no tolerance anywhere.
    EXPECT_EQ(resp.cost_used, want.cost_used);
    EXPECT_EQ(resp.opt_cost, want.opt_cost);
    EXPECT_EQ(resp.suboptimality, want.suboptimality);
    EXPECT_EQ(resp.guarantee, want.guarantee);
    EXPECT_EQ(resp.discovery.total_cost, want.discovery.total_cost);
    EXPECT_EQ(resp.discovery.num_executions(), want.discovery.num_executions());
    EXPECT_EQ(resp.discovery.final_contour, want.discovery.final_contour);
    EXPECT_EQ(resp.robustness.transient_retries,
              want.robustness.transient_retries);
    EXPECT_EQ(resp.robustness.cost_spikes, want.robustness.cost_spikes);
    EXPECT_EQ(resp.robustness.corruptions, want.robustness.corruptions);
    EXPECT_EQ(resp.robustness.retried_cost, want.robustness.retried_cost);
  }

  // The chaos variant actually injected faults (the test would otherwise
  // not exercise the exclusive-lock path).
  EXPECT_TRUE(expected[4].robustness.Any());
  // The injector is disarmed once the storm has passed.
  EXPECT_FALSE(FaultInjector::Armed());
}

// ---------------------------------------------------------------------------
// TCP line protocol: parsing and formatting units, then a socket round-trip.
// ---------------------------------------------------------------------------

TEST(TcpProtocolTest, ParseSubmitLineRoundTrip) {
  ServiceRequest req;
  ASSERT_TRUE(ParseSubmitLine(
                  "SUBMIT query=3D_Q15 mode=ab qa=0.1,0.2,0.3 budget=500 "
                  "deadline_ms=2000 engine=tuple threads=2 points=6 "
                  "ratio=1.5 build=recost:2.5 faults=exec.*:p=0.01 seed=9",
                  &req)
                  .ok());
  EXPECT_EQ(req.query_id, "3D_Q15");
  EXPECT_EQ(req.mode, RobustnessMode::kAlignedBound);
  EXPECT_EQ(req.qa, (std::vector<double>{0.1, 0.2, 0.3}));
  EXPECT_EQ(req.budget, 500.0);
  EXPECT_EQ(req.deadline_ms, 2000.0);
  EXPECT_EQ(req.options.engine, Executor::Engine::kTuple);
  EXPECT_EQ(req.options.num_threads, 2);
  EXPECT_EQ(req.options.points_per_dim, 6);
  EXPECT_EQ(req.options.contour_cost_ratio, 1.5);
  EXPECT_EQ(req.options.ess_build_mode, EssBuildMode::kRecost);
  EXPECT_EQ(req.options.recost_lambda, 2.5);
  EXPECT_EQ(req.options.fault_spec, "exec.*:p=0.01");
  EXPECT_EQ(req.options.fault_seed, 9u);
}

TEST(TcpProtocolTest, ParseSubmitLineRejectsMalformedInput) {
  ServiceRequest req;
  EXPECT_EQ(ParseSubmitLine("FROBNICATE", &req).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSubmitLine("SUBMIT nonsense", &req).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSubmitLine("SUBMIT color=blue", &req).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSubmitLine("SUBMIT mode=warp", &req).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSubmitLine("SUBMIT qa=1,two,3", &req).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSubmitLine("SUBMIT build=sideways", &req).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseSubmitLine("SUBMIT query=", &req).code(),
            StatusCode::kInvalidArgument);
}

TEST(TcpProtocolTest, FormatResponseLineShapes) {
  ServiceResponse ok;
  ok.status = Status::OK();
  ok.request_id = 3;
  ok.algorithm = "SpillBound";
  ok.completed = true;
  ok.cost_used = 10.0;
  ok.opt_cost = 5.0;
  ok.suboptimality = 2.0;
  const std::string ok_line = FormatResponseLine(ok);
  EXPECT_EQ(ok_line.rfind("OK id=3 algo=SpillBound completed=1", 0), 0u)
      << ok_line;

  ServiceResponse err;
  err.status = Status::ResourceExhausted("queue full");
  const std::string err_line = FormatResponseLine(err);
  EXPECT_EQ(err_line.rfind("ERR code=9 status=ResourceExhausted", 0), 0u)
      << err_line;
}

namespace {

/// Minimal blocking line client for the round-trip test.
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  std::string RoundTrip(const std::string& line) {
    const std::string out = line + "\n";
    if (::send(fd_, out.data(), out.size(), 0) < 0) return "";
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    const size_t nl = buffer_.find('\n');
    std::string reply = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return reply;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

}  // namespace

TEST(TcpServerTest, ServesSubmitsOverALiveSocket) {
  QueryService service;
  TcpServer server(&service, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.RoundTrip("PING"), "PONG");

  const std::string ok =
      client.RoundTrip("SUBMIT query=2D_Q91 mode=sb points=8 threads=1");
  EXPECT_EQ(ok.rfind("OK ", 0), 0u) << ok;

  const std::string err = client.RoundTrip("SUBMIT query=2D_NOPE mode=sb");
  EXPECT_EQ(err.rfind("ERR code=3 status=NotFound", 0), 0u) << err;

  // Both submits above are terminal by the time their replies arrived, so
  // the counters and the shard/queue extensions are fully deterministic.
  const std::string stats = client.RoundTrip("STATS");
  EXPECT_EQ(stats.rfind("STATS hits=", 0), 0u) << stats;
  EXPECT_NE(stats.find(" submitted=2 completed=2 rejected=0 queue_depth=0"),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find(" shard_chunks_scanned=0 shard_chunks_pruned=0"
                       " shard_straggler_retries=0 shard_lost_chunks=0"),
            std::string::npos)
      << stats;

  // A sharded engine run scatters its scans; STATS must account the
  // chunks it committed.
  const std::string sharded = client.RoundTrip(
      "SUBMIT query=2D_Q91 mode=native use_engine=1 shards=2 points=8 "
      "threads=1");
  EXPECT_EQ(sharded.rfind("OK ", 0), 0u) << sharded;
  const std::string stats2 = client.RoundTrip("STATS");
  const size_t pos = stats2.find(" shard_chunks_scanned=");
  ASSERT_NE(pos, std::string::npos) << stats2;
  EXPECT_GT(std::atoll(stats2.c_str() + pos + 22), 0) << stats2;

  server.Stop();
}

}  // namespace
}  // namespace robustqp
