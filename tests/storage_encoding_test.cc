// Round-trip and differential tests for the compressed columnar storage
// layer (storage/encoding.h): bit-packing / vbyte / dictionary primitives,
// EncodedColumn streaming round trips over adversarial value ranges
// (INT64_MIN/MAX, NaN payloads, ±inf, -0.0), dictionary abandonment,
// policy parsing and cache keys, the fused predicate mapping
// (MapPredicateToCodes) against a naive reference, fused-vs-decoded
// FilterRange equivalence, and metadata-driven ColumnMinMax.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "catalog/schema.h"
#include "common/rng.h"
#include "exec/kernels.h"
#include "storage/encoding.h"
#include "storage/table.h"

namespace robustqp {
namespace {

constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();
const double kNaN = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(BitpackTest, WidthFor) {
  EXPECT_EQ(bitpack::WidthFor(0), 0);
  EXPECT_EQ(bitpack::WidthFor(1), 1);
  EXPECT_EQ(bitpack::WidthFor(2), 2);
  EXPECT_EQ(bitpack::WidthFor(3), 2);
  EXPECT_EQ(bitpack::WidthFor(4), 3);
  EXPECT_EQ(bitpack::WidthFor((uint64_t{1} << 32) - 1), 32);
  EXPECT_EQ(bitpack::WidthFor(uint64_t{1} << 32), 33);
  EXPECT_EQ(bitpack::WidthFor(~uint64_t{0}), 64);
}

TEST(BitpackTest, PackExtractUnpackAllWidths) {
  Rng rng(11);
  for (int width = 0; width <= 64; ++width) {
    const uint64_t mask =
        width == 64 ? ~uint64_t{0}
                    : ((uint64_t{1} << width) - 1);
    for (int64_t n : {int64_t{1}, int64_t{63}, int64_t{64}, int64_t{65},
                      int64_t{300}}) {
      std::vector<uint64_t> codes(static_cast<size_t>(n));
      for (auto& c : codes) {
        c = static_cast<uint64_t>(rng.engine()()) & mask;
      }
      std::vector<uint64_t> words;
      bitpack::Pack(codes.data(), n, width, &words);
      const size_t want_words = static_cast<size_t>(
          (n * width + 63) / 64);
      EXPECT_EQ(words.size(), want_words);
      // Extract must agree element-wise; Unpack must agree over every
      // (start, len) slice boundary case we care about.
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(bitpack::Extract(words.data(), i, width), codes[static_cast<size_t>(i)])
            << "width=" << width << " i=" << i;
      }
      std::vector<uint64_t> out(static_cast<size_t>(n));
      bitpack::Unpack(words.data(), 0, n, width, out.data());
      EXPECT_EQ(out, codes) << "width=" << width << " n=" << n;
      if (n > 2) {
        std::vector<uint64_t> mid(static_cast<size_t>(n - 2));
        bitpack::Unpack(words.data(), 1, n - 2, width, mid.data());
        for (int64_t i = 0; i < n - 2; ++i) {
          ASSERT_EQ(mid[static_cast<size_t>(i)],
                    codes[static_cast<size_t>(i + 1)]);
        }
      }
    }
  }
}

TEST(VbyteTest, RoundTripBoundaries) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  ~uint64_t{0} >> 1, ~uint64_t{0}};
  std::vector<uint8_t> bytes;
  std::vector<size_t> offsets;
  for (uint64_t v : values) {
    offsets.push_back(bytes.size());
    vbyte::Encode(v, &bytes);
    EXPECT_EQ(bytes.size() - offsets.back(),
              static_cast<size_t>(vbyte::EncodedSize(v)));
  }
  const uint8_t* p = bytes.data();
  for (uint64_t v : values) {
    uint64_t got;
    p = vbyte::Decode(p, &got);
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, bytes.data() + bytes.size());
}

TEST(EncodingPolicyTest, ParseAndNames) {
  Encoding e = Encoding::kRaw;
  EXPECT_TRUE(ParseEncoding("auto", &e));
  EXPECT_EQ(e, Encoding::kAuto);
  EXPECT_TRUE(ParseEncoding("on", &e) && e == Encoding::kAuto);
  EXPECT_TRUE(ParseEncoding("1", &e) && e == Encoding::kAuto);
  EXPECT_TRUE(ParseEncoding("raw", &e) && e == Encoding::kRaw);
  EXPECT_TRUE(ParseEncoding("off", &e) && e == Encoding::kRaw);
  EXPECT_TRUE(ParseEncoding("0", &e) && e == Encoding::kRaw);
  EXPECT_TRUE(ParseEncoding("none", &e) && e == Encoding::kRaw);
  EXPECT_TRUE(ParseEncoding("packed", &e) && e == Encoding::kPacked);
  EXPECT_TRUE(ParseEncoding("vbyte", &e) && e == Encoding::kVbyte);
  EXPECT_TRUE(ParseEncoding("dict", &e) && e == Encoding::kDict);
  EXPECT_TRUE(ParseEncoding("dictionary", &e) && e == Encoding::kDict);
  e = Encoding::kVbyte;
  EXPECT_FALSE(ParseEncoding("zstd", &e));
  EXPECT_EQ(e, Encoding::kVbyte);  // untouched on failure
  for (Encoding k : {Encoding::kAuto, Encoding::kRaw, Encoding::kPacked,
                     Encoding::kVbyte, Encoding::kDict}) {
    Encoding back = Encoding::kAuto;
    EXPECT_TRUE(ParseEncoding(EncodingName(k), &back));
    EXPECT_EQ(back, k);
  }
}

TEST(EncodingPolicyTest, CacheKeyIsDeterministicAndDistinguishing) {
  EncodingPolicy a = EncodingPolicy::Auto();
  EncodingPolicy b = EncodingPolicy::Raw();
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  EXPECT_EQ(a.CacheKey(), EncodingPolicy::Auto().CacheKey());
  EncodingPolicy c = EncodingPolicy::Auto();
  c.dict_max_card = 17;
  EXPECT_NE(a.CacheKey(), c.CacheKey());
  EncodingPolicy d = EncodingPolicy::Auto();
  d.per_column["x"] = Encoding::kVbyte;
  EXPECT_NE(a.CacheKey(), d.CacheKey());
  EXPECT_EQ(d.For("x"), Encoding::kVbyte);
  EXPECT_EQ(d.For("y"), Encoding::kAuto);
}

// ---------------------------------------------------------------------------
// EncodedColumn round trips
// ---------------------------------------------------------------------------

std::vector<int64_t> RandomInts(Rng* rng, int64_t n) {
  // Mix of regimes: narrow range, wide range, serial, full-domain chaos.
  std::vector<int64_t> out(static_cast<size_t>(n));
  const int regime = static_cast<int>(rng->UniformInt(0, 4));
  for (int64_t i = 0; i < n; ++i) {
    int64_t v = 0;
    switch (regime) {
      case 0:
        v = rng->UniformInt(-5, 5);
        break;
      case 1:
        v = rng->UniformInt(-1000000, 1000000);
        break;
      case 2:
        v = i * 1000 + rng->UniformInt(0, 9);  // mostly-sorted deltas
        break;
      case 3:
        v = static_cast<int64_t>(rng->engine()());  // full domain
        break;
      default:
        v = 42;  // constant
        break;
    }
    out[static_cast<size_t>(i)] = v;
  }
  // Salt extremes in so every regime occasionally sees the domain edges.
  if (n > 4) {
    out[static_cast<size_t>(rng->UniformInt(0, n - 1))] = kI64Min;
    out[static_cast<size_t>(rng->UniformInt(0, n - 1))] = kI64Max;
  }
  return out;
}

void CheckIntRoundTrip(const std::vector<int64_t>& ref, Encoding enc,
                       int64_t dict_cap) {
  EncodedColumn col(DataType::kInt64, enc, dict_cap);
  for (int64_t v : ref) col.AppendInt(v);
  col.Finish();
  const int64_t n = static_cast<int64_t>(ref.size());
  ASSERT_EQ(col.size(), n);

  // Point access.
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(col.GetInt(i), ref[static_cast<size_t>(i)])
        << EncodingName(enc) << " row " << i;
  }

  // Block decode covers every row exactly once.
  int64_t covered = 0;
  std::vector<int64_t> buf(static_cast<size_t>(EncodedColumn::kBlockRows));
  for (int64_t b = 0; b < col.num_blocks(); ++b) {
    const int64_t rows = col.block_rows(b);
    ASSERT_GT(rows, 0);
    ASSERT_LE(rows, EncodedColumn::kBlockRows);
    col.DecodeInto(b, buf.data());
    for (int64_t i = 0; i < rows; ++i) {
      ASSERT_EQ(buf[static_cast<size_t>(i)],
                ref[static_cast<size_t>(covered + i)]);
    }
    covered += rows;
  }
  EXPECT_EQ(covered, n);

  // Range decode across block boundaries (int and double flavors).
  if (n > 0) {
    Rng rng(static_cast<uint64_t>(n) * 31 + static_cast<uint64_t>(enc));
    for (int trial = 0; trial < 8; ++trial) {
      const int64_t r0 = rng.UniformInt(0, n - 1);
      const int64_t r1 = rng.UniformInt(r0, n);
      std::vector<int64_t> ri(static_cast<size_t>(r1 - r0));
      std::vector<double> rd(static_cast<size_t>(r1 - r0));
      col.DecodeRange(r0, r1, ri.data());
      col.DecodeRange(r0, r1, rd.data());
      for (int64_t i = 0; i < r1 - r0; ++i) {
        ASSERT_EQ(ri[static_cast<size_t>(i)],
                  ref[static_cast<size_t>(r0 + i)]);
        ASSERT_EQ(rd[static_cast<size_t>(i)],
                  static_cast<double>(ref[static_cast<size_t>(r0 + i)]));
      }
    }
  }
}

TEST(EncodedColumnTest, IntRoundTripFuzz) {
  const std::vector<int64_t> sizes = {0,    1,    2,    4095, 4096,
                                      4097, 8192, 12288, 5000};
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    for (int64_t n : sizes) {
      const std::vector<int64_t> ref = RandomInts(&rng, n);
      for (Encoding enc : {Encoding::kAuto, Encoding::kPacked,
                           Encoding::kVbyte, Encoding::kDict}) {
        CheckIntRoundTrip(ref, enc, /*dict_cap=*/4096);
      }
      // Tiny dictionary cap forces mid-stream abandonment.
      CheckIntRoundTrip(ref, Encoding::kAuto, /*dict_cap=*/7);
    }
  }
}

TEST(EncodedColumnTest, FullDomainBlockPacksAtWidth64) {
  // A block spanning INT64_MIN..INT64_MAX must survive the wraparound
  // range computation and pack at width 64.
  EncodedColumn col(DataType::kInt64, Encoding::kPacked, 4096);
  col.AppendInt(kI64Min);
  col.AppendInt(kI64Max);
  col.AppendInt(0);
  col.AppendInt(-1);
  col.Finish();
  ASSERT_EQ(col.num_blocks(), 1);
  const auto view = col.packed_view(0);
  EXPECT_EQ(view.width, 64);
  EXPECT_EQ(view.ref, kI64Min);
  EXPECT_EQ(view.range, ~uint64_t{0});
  EXPECT_EQ(col.GetInt(0), kI64Min);
  EXPECT_EQ(col.GetInt(1), kI64Max);
  EXPECT_EQ(col.GetInt(3), -1);
}

TEST(EncodedColumnTest, ConstantColumnPacksAtWidthZero) {
  EncodedColumn col(DataType::kInt64, Encoding::kPacked, 4096);
  for (int64_t i = 0; i < 2 * EncodedColumn::kBlockRows + 5; ++i) {
    col.AppendInt(-77);
  }
  col.Finish();
  EXPECT_EQ(col.num_blocks(), 3);
  for (int64_t b = 0; b < col.num_blocks(); ++b) {
    EXPECT_EQ(col.packed_view(b).width, 0);
  }
  EXPECT_EQ(col.GetInt(2 * EncodedColumn::kBlockRows + 4), -77);
  // width-0 blocks store no payload words at all.
  EXPECT_LT(col.MemoryBytes(),
            static_cast<size_t>(col.size()) * sizeof(int64_t) / 100);
}

TEST(EncodedColumnTest, DoubleDictRoundTripIsBitExact) {
  // NaN payloads, -0.0 and infinities must round-trip bit-for-bit.
  std::vector<double> special = {0.0,
                                 -0.0,
                                 1.5,
                                 -1.5,
                                 kInf,
                                 -kInf,
                                 kNaN,
                                 std::numeric_limits<double>::denorm_min(),
                                 std::numeric_limits<double>::max()};
  // A NaN with a distinctive payload.
  uint64_t weird_bits = 0x7ff80000deadbeefULL;
  double weird_nan;
  std::memcpy(&weird_nan, &weird_bits, sizeof(weird_nan));
  special.push_back(weird_nan);

  Rng rng(5);
  std::vector<double> ref;
  for (int64_t i = 0; i < 9000; ++i) {
    ref.push_back(special[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(special.size()) - 1))]);
  }
  EncodedColumn col(DataType::kDouble, Encoding::kDict, 4096);
  for (double v : ref) col.AppendDouble(v);
  col.Finish();
  ASSERT_EQ(col.mode(), Encoding::kDict);
  EXPECT_LE(col.dict_size(), static_cast<int64_t>(special.size()));
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(Bits(col.GetDouble(static_cast<int64_t>(i))), Bits(ref[i]))
        << "row " << i;
  }
  std::vector<double> buf(static_cast<size_t>(EncodedColumn::kBlockRows));
  int64_t covered = 0;
  for (int64_t b = 0; b < col.num_blocks(); ++b) {
    col.DecodeInto(b, buf.data());
    for (int64_t i = 0; i < col.block_rows(b); ++i) {
      ASSERT_EQ(Bits(buf[static_cast<size_t>(i)]),
                Bits(ref[static_cast<size_t>(covered + i)]));
    }
    covered += col.block_rows(b);
  }
  EXPECT_EQ(covered, static_cast<int64_t>(ref.size()));
}

TEST(EncodedColumnTest, DoubleDictOverflowFallsBackToRaw) {
  EncodedColumn col(DataType::kDouble, Encoding::kAuto, 64);
  std::vector<double> ref;
  Rng rng(9);
  for (int64_t i = 0; i < 5000; ++i) {
    ref.push_back(rng.UniformDouble(-1e9, 1e9));  // ~all distinct
    col.AppendDouble(ref.back());
  }
  col.Finish();
  EXPECT_EQ(col.mode(), Encoding::kRaw);
  std::vector<double> raw = col.TakeRawDoubles();
  ASSERT_EQ(raw.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(Bits(raw[i]), Bits(ref[i]));
  }
}

TEST(EncodedColumnTest, DictAbandonmentPreservesIntValues) {
  // Feed >cap distinct ints so kAuto abandons the dictionary mid-stream
  // and re-encodes flushed blocks; every value must survive.
  EncodedColumn col(DataType::kInt64, Encoding::kAuto, 128);
  std::vector<int64_t> ref;
  Rng rng(13);
  for (int64_t i = 0; i < 3 * EncodedColumn::kBlockRows; ++i) {
    // Low-cardinality prefix, then explosion.
    const int64_t v = i < EncodedColumn::kBlockRows
                          ? rng.UniformInt(0, 100)
                          : rng.UniformInt(0, 1 << 30);
    ref.push_back(v);
    col.AppendInt(v);
  }
  col.Finish();
  EXPECT_NE(col.mode(), Encoding::kDict);
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(col.GetInt(static_cast<int64_t>(i)), ref[i]);
  }
}

TEST(EncodedColumnTest, DictionaryEntriesAllOccur) {
  EncodedColumn col(DataType::kInt64, Encoding::kDict, 4096);
  std::vector<int64_t> ref;
  Rng rng(21);
  for (int64_t i = 0; i < 6000; ++i) {
    ref.push_back(rng.UniformInt(-40, 40) * 1000);
    col.AppendInt(ref.back());
  }
  col.Finish();
  ASSERT_EQ(col.mode(), Encoding::kDict);
  // First-appearance interning: entry order matches first occurrence, and
  // every entry is reachable from the data.
  std::vector<int64_t> firsts;
  for (int64_t v : ref) {
    bool seen = false;
    for (int64_t f : firsts) seen = seen || f == v;
    if (!seen) firsts.push_back(v);
  }
  ASSERT_EQ(col.dict_size(), static_cast<int64_t>(firsts.size()));
  for (int64_t c = 0; c < col.dict_size(); ++c) {
    EXPECT_EQ(col.DictInt(c), firsts[static_cast<size_t>(c)]);
    EXPECT_EQ(col.DictNumeric(c),
              static_cast<double>(firsts[static_cast<size_t>(c)]));
  }
}

TEST(EncodedColumnTest, EmptyColumn) {
  for (Encoding enc : {Encoding::kAuto, Encoding::kPacked, Encoding::kVbyte,
                       Encoding::kDict}) {
    EncodedColumn col(DataType::kInt64, enc, 4096);
    col.Finish();
    EXPECT_EQ(col.size(), 0);
    EXPECT_EQ(col.num_blocks(), 0);
    EXPECT_GE(col.MemoryBytes(), size_t{0});
  }
}

TEST(EncodedColumnTest, CompressionActuallyCompresses) {
  // Low-cardinality and narrow-range data must beat raw storage by a wide
  // margin; this is the property the ISSUE's footprint criterion rests on.
  Rng rng(3);
  EncodedColumn dict(DataType::kInt64, Encoding::kDict, 4096);
  EncodedColumn packed(DataType::kInt64, Encoding::kPacked, 4096);
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t v = rng.UniformInt(0, 50);
    dict.AppendInt(v);
    packed.AppendInt(v);
  }
  dict.Finish();
  packed.Finish();
  // Domain 0..50 needs 6 bits and stores at the 8-bit lane width
  // (bitpack::LaneWidthFor), so the packed layout lands at exactly 1/8th
  // of raw plus block headers; assert a 4x margin with room for them.
  const size_t raw_bytes = static_cast<size_t>(n) * sizeof(int64_t);
  EXPECT_LT(dict.MemoryBytes(), raw_bytes / 4);
  EXPECT_LT(packed.MemoryBytes(), raw_bytes / 4);
}

// ---------------------------------------------------------------------------
// Streaming table vs encode-at-finalize equivalence
// ---------------------------------------------------------------------------

TEST(TableEncodingTest, StreamingMatchesFinalizeEncoding) {
  TableSchema schema("t", {{"k", DataType::kInt64},
                           {"g", DataType::kInt64},
                           {"v", DataType::kDouble}});
  EncodingPolicy policy = EncodingPolicy::Auto();

  Table streamed(schema, policy);
  Table raw_then(schema);
  Rng rng(71);
  const int64_t n = 3 * kZoneBlockRows + 123;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t k = i;
    const int64_t g = rng.UniformInt(0, 30);
    const double v = rng.Bernoulli(0.01) ? kNaN : rng.UniformDouble(-10, 10);
    streamed.column(0).AppendInt(k);
    streamed.column(1).AppendInt(g);
    streamed.column(2).AppendDouble(v);
    raw_then.column(0).AppendInt(k);
    raw_then.column(1).AppendInt(g);
    raw_then.column(2).AppendDouble(v);
  }
  ASSERT_TRUE(streamed.Finalize().ok());
  ASSERT_TRUE(raw_then.Finalize(policy).ok());
  ASSERT_EQ(streamed.num_rows(), raw_then.num_rows());
  for (int c = 0; c < schema.num_columns(); ++c) {
    const ColumnData& a = streamed.column(c);
    const ColumnData& b = raw_then.column(c);
    for (int64_t r = 0; r < n; ++r) {
      if (a.type() == DataType::kInt64) {
        ASSERT_EQ(a.GetInt(r), b.GetInt(r)) << "col " << c << " row " << r;
      } else {
        ASSERT_EQ(Bits(a.GetDouble(r)), Bits(b.GetDouble(r)))
            << "col " << c << " row " << r;
      }
    }
    // Zone maps built over encoded blocks must agree too.
    ASSERT_EQ(a.zones().num_blocks(), b.zones().num_blocks());
    for (int64_t z = 0; z < a.zones().num_blocks(); ++z) {
      EXPECT_EQ(Bits(a.zones().min[static_cast<size_t>(z)]),
                Bits(b.zones().min[static_cast<size_t>(z)]));
      EXPECT_EQ(Bits(a.zones().max[static_cast<size_t>(z)]),
                Bits(b.zones().max[static_cast<size_t>(z)]));
    }
  }
  // And both must be far smaller than the raw equivalent for these columns.
  Table raw(schema);
  for (int64_t i = 0; i < n; ++i) {
    raw.column(0).AppendInt(streamed.column(0).GetInt(i));
    raw.column(1).AppendInt(streamed.column(1).GetInt(i));
    raw.column(2).AppendDouble(streamed.column(2).GetDouble(i));
  }
  ASSERT_TRUE(raw.Finalize().ok());
  EXPECT_LT(streamed.MemoryBytes(), raw.MemoryBytes());
}

// ---------------------------------------------------------------------------
// Fused predicate mapping vs naive reference
// ---------------------------------------------------------------------------

bool NaiveSatisfies(double x, CompareOp op, double c) {
  switch (op) {
    case CompareOp::kLt:
      return x < c;
    case CompareOp::kLe:
      return x <= c;
    case CompareOp::kGt:
      return x > c;
    case CompareOp::kGe:
      return x >= c;
    case CompareOp::kEq:
      return x == c;
  }
  return false;
}

bool CodeSatisfies(uint64_t code, const kernels::CodePred& p) {
  using Kind = kernels::CodePred::Kind;
  switch (p.kind) {
    case Kind::kNone:
      return false;
    case Kind::kAll:
      return true;
    case Kind::kLt:
      return code < p.u;
    case Kind::kGe:
      return code >= p.u;
    case Kind::kEq:
      return code == p.u;
  }
  return false;
}

TEST(MapPredicateTest, MatchesNaiveOverCodeSpace) {
  // For every mapped predicate, iterating the block's code space must
  // reproduce the naive double comparison exactly.
  const std::vector<int64_t> refs = {-100, 0, 57, -3};
  const std::vector<uint64_t> ranges = {0, 1, 9, 255};
  const std::vector<double> constants = {
      -101.0, -100.0, -99.5, -50.0, 0.0,  -0.0, 0.5,  1.0,  56.9,
      57.0,   57.5,   58.0,  156.0, 157.0, 158.0, 300.0, kNaN, -kInf,
      kInf,   2.5,    -2.5};
  for (int64_t ref : refs) {
    for (uint64_t range : ranges) {
      for (CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                           CompareOp::kGe, CompareOp::kEq}) {
        for (double c : constants) {
          kernels::CodePred pred;
          if (!kernels::MapPredicateToCodes(op, c, ref, range, &pred)) {
            continue;  // declined: decode path; nothing to check
          }
          for (uint64_t code = 0; code <= range; ++code) {
            const double x = static_cast<double>(
                ref + static_cast<int64_t>(code));
            ASSERT_EQ(CodeSatisfies(code, pred), NaiveSatisfies(x, op, c))
                << "ref=" << ref << " range=" << range << " op="
                << static_cast<int>(op) << " c=" << c << " code=" << code;
          }
        }
      }
    }
  }
}

TEST(MapPredicateTest, DeclinesOutsideExactDomain) {
  kernels::CodePred pred;
  const double big = 9.3e18;  // beyond 2^53: double compare is lossy
  // Block values beyond ±2^53: decline.
  EXPECT_FALSE(kernels::MapPredicateToCodes(CompareOp::kLt, 10.0, kI64Min,
                                            ~uint64_t{0}, &pred));
  // Constant beyond ±2^53: decline.
  EXPECT_FALSE(
      kernels::MapPredicateToCodes(CompareOp::kLt, big, 0, 100, &pred));
  // Small block, small constant: accept.
  EXPECT_TRUE(
      kernels::MapPredicateToCodes(CompareOp::kLt, 10.0, 0, 100, &pred));
  // NaN constant: kNone.
  ASSERT_TRUE(
      kernels::MapPredicateToCodes(CompareOp::kGe, kNaN, 0, 100, &pred));
  EXPECT_EQ(pred.kind, kernels::CodePred::Kind::kNone);
  // Non-integral equality constant: kNone.
  ASSERT_TRUE(
      kernels::MapPredicateToCodes(CompareOp::kEq, 2.5, 0, 100, &pred));
  EXPECT_EQ(pred.kind, kernels::CodePred::Kind::kNone);
}

// ---------------------------------------------------------------------------
// FilterRange: fused vs decode-then-filter vs raw
// ---------------------------------------------------------------------------

TEST(FusedFilterTest, MatchesRawForEveryEncodingAndOp) {
  Rng rng(29);
  const int64_t n = 2 * kZoneBlockRows + 777;
  TableSchema schema("t", {{"a", DataType::kInt64}});
  std::vector<int64_t> vals;
  for (int64_t i = 0; i < n; ++i) {
    vals.push_back(rng.Bernoulli(0.5) ? rng.UniformInt(-50, 50)
                                      : rng.UniformInt(-4, 4) * 1000000007);
  }
  Table raw(schema);
  for (int64_t v : vals) raw.column(0).AppendInt(v);
  ASSERT_TRUE(raw.Finalize().ok());

  for (Encoding enc : {Encoding::kAuto, Encoding::kPacked, Encoding::kVbyte,
                       Encoding::kDict}) {
    EncodingPolicy policy;
    policy.kind = enc;
    Table table(schema);
    for (int64_t v : vals) table.column(0).AppendInt(v);
    ASSERT_TRUE(table.Finalize(policy).ok());
    ASSERT_TRUE(table.column(0).encoded());

    kernels::FilterScratch s_raw, s_fused, s_decode;
    std::vector<int64_t> sel_raw, sel_fused, sel_decode;
    const std::vector<double> consts = {-2e9, -40.5, -4.0, 0.0, 3.0,
                                        41.0, 2e9,  kNaN};
    for (CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                         CompareOp::kGe, CompareOp::kEq}) {
      for (double c : consts) {
        for (double est : {0.01, 0.5, 0.99}) {
          // Unaligned range straddling a block boundary.
          const int64_t r0 = kZoneBlockRows - 3;
          const int64_t r1 = kZoneBlockRows + 900;
          kernels::FilterRange(raw.column(0), op, c, r0, r1, est, &sel_raw,
                               &s_raw);
          kernels::FilterRange(table.column(0), op, c, r0, r1, est,
                               &sel_fused, &s_fused, /*fused=*/true);
          kernels::FilterRange(table.column(0), op, c, r0, r1, est,
                               &sel_decode, &s_decode, /*fused=*/false);
          ASSERT_EQ(sel_fused, sel_raw)
              << EncodingName(enc) << " op=" << static_cast<int>(op)
              << " c=" << c << " est=" << est;
          ASSERT_EQ(sel_decode, sel_raw)
              << EncodingName(enc) << " op=" << static_cast<int>(op)
              << " c=" << c << " est=" << est;
          // Full-column pass too.
          kernels::FilterRange(raw.column(0), op, c, 0, n, est, &sel_raw,
                               &s_raw);
          kernels::FilterRange(table.column(0), op, c, 0, n, est, &sel_fused,
                               &s_fused, /*fused=*/true);
          ASSERT_EQ(sel_fused, sel_raw);
        }
      }
    }
  }
}

TEST(FusedFilterTest, DoubleDictWithNaNMatchesRaw) {
  Rng rng(31);
  const int64_t n = kZoneBlockRows + 333;
  TableSchema schema("t", {{"d", DataType::kDouble}});
  std::vector<double> vals;
  const std::vector<double> pool = {-3.5, -0.0, 0.0, 1.25, 7.5, kNaN, kInf,
                                    -kInf};
  for (int64_t i = 0; i < n; ++i) {
    vals.push_back(pool[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))]);
  }
  Table raw(schema);
  Table dict(schema);
  for (double v : vals) {
    raw.column(0).AppendDouble(v);
    dict.column(0).AppendDouble(v);
  }
  EncodingPolicy policy;
  policy.kind = Encoding::kDict;
  ASSERT_TRUE(raw.Finalize().ok());
  ASSERT_TRUE(dict.Finalize(policy).ok());
  ASSERT_TRUE(dict.column(0).encoded());

  kernels::FilterScratch s_raw, s_enc;
  std::vector<int64_t> sel_raw, sel_enc;
  for (CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                       CompareOp::kGe, CompareOp::kEq}) {
    for (double c : {-1.0, 0.0, -0.0, 1.25, kNaN, kInf}) {
      kernels::FilterRange(raw.column(0), op, c, 0, n, 0.5, &sel_raw, &s_raw);
      kernels::FilterRange(dict.column(0), op, c, 0, n, 0.5, &sel_enc,
                           &s_enc, /*fused=*/true);
      ASSERT_EQ(sel_enc, sel_raw)
          << "op=" << static_cast<int>(op) << " c=" << c;
    }
  }
}

// ---------------------------------------------------------------------------
// ColumnMinMax vs naive
// ---------------------------------------------------------------------------

kernels::MinMaxStats NaiveMinMax(const ColumnData& col, int64_t n) {
  kernels::MinMaxStats s;
  s.rows = n;
  s.min = kInf;
  s.max = -kInf;
  for (int64_t i = 0; i < n; ++i) {
    const double v = col.GetNumeric(i);
    if (std::isnan(v)) {
      s.has_nan = true;
      continue;
    }
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  // Empty / all-NaN keeps min (+inf) > max (-inf), matching the kernels.
  return s;
}

TEST(ColumnMinMaxTest, AgreesWithNaiveAcrossEncodings) {
  Rng rng(37);
  const int64_t n = 2 * kZoneBlockRows + 55;
  TableSchema schema("t", {{"a", DataType::kInt64}, {"d", DataType::kDouble}});
  for (Encoding enc : {Encoding::kRaw, Encoding::kAuto, Encoding::kPacked,
                       Encoding::kDict}) {
    Table table(schema);
    for (int64_t i = 0; i < n; ++i) {
      table.column(0).AppendInt(rng.UniformInt(-30, 30));
      table.column(1).AppendDouble(rng.Bernoulli(0.02)
                                       ? kNaN
                                       : rng.UniformDouble(-100, 100));
    }
    EncodingPolicy policy;
    policy.kind = enc;
    ASSERT_TRUE(table.Finalize(policy).ok());
    for (int c = 0; c < 2; ++c) {
      const kernels::MinMaxStats got = kernels::ColumnMinMax(table.column(c));
      const kernels::MinMaxStats want = NaiveMinMax(table.column(c), n);
      EXPECT_EQ(got.rows, n) << EncodingName(enc) << " col " << c;
      EXPECT_EQ(got.has_nan, want.has_nan);
      if (want.min <= want.max) {
        EXPECT_EQ(got.min, want.min) << EncodingName(enc) << " col " << c;
        EXPECT_EQ(got.max, want.max) << EncodingName(enc) << " col " << c;
      } else {
        EXPECT_GT(got.min, got.max);
      }
    }
  }
}

TEST(ColumnMinMaxTest, EmptyAndAllNaN) {
  ColumnData empty(DataType::kInt64);
  kernels::MinMaxStats s = kernels::ColumnMinMax(empty);
  EXPECT_EQ(s.rows, 0);
  EXPECT_GT(s.min, s.max);

  TableSchema schema("t", {{"d", DataType::kDouble}});
  Table table(schema);
  for (int i = 0; i < 10; ++i) table.column(0).AppendDouble(kNaN);
  ASSERT_TRUE(table.Finalize().ok());
  s = kernels::ColumnMinMax(table.column(0));
  EXPECT_EQ(s.rows, 10);
  EXPECT_TRUE(s.has_nan);
  EXPECT_GT(s.min, s.max);
}

}  // namespace
}  // namespace robustqp
