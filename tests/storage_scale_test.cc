// Out-of-core scale smoke: the streaming catalog build must write a
// multi-million-row store_sales with O(row-group) peak memory, and the
// resulting column files must open mapped and answer suite queries. The
// default 1e6 store_sales rows keeps tier-1 fast; the CI out-of-core job
// raises it to 1e7 via RQP_SCALE_ROWS.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "workloads/queries.h"
#include "workloads/tpcds_scale.h"

namespace robustqp {
namespace {

TEST(StorageScaleTest, StreamingBuildBoundedMemoryAndMappedQuery) {
  int64_t rows = 1000000;
  if (const char* env = std::getenv("RQP_SCALE_ROWS")) {
    rows = std::atoll(env);
    ASSERT_GT(rows, 0);
  }
  char tmpl[] = "/tmp/rqp_scale_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);

  ScaleBuildStats stats;
  ASSERT_TRUE(BuildTpcdsScaleFiles(dir, 42, rows, &stats).ok());
  EXPECT_EQ(stats.store_sales_rows, rows);
  EXPECT_GT(stats.total_rows, rows);  // fact + dimension tables
  EXPECT_GT(stats.file_bytes, 0u);

  // The streaming invariant: the writer's peak transient memory is
  // row-count independent — a staging block plus the capped stats
  // accumulators (kExactDistinctCap / kSampleCap / kKmvSize) per column,
  // ~8 MB worst case per numeric column. 200 MB bounds the widest table
  // (store_sales, 23 columns) at ANY row count; a non-streaming build
  // would hold the raw vectors (8 B/value) and blow through it around
  // 1e6 rows.
  EXPECT_LT(stats.peak_stream_bytes, size_t{200} << 20)
      << "peak " << stats.peak_stream_bytes << " is not row-independent";
  // At CI scale (RQP_SCALE_ROWS=1e7) the accumulators amortize against
  // the output: the acceptance bound is peak < 25% of the encoded store.
  if (rows >= 5000000) {
    EXPECT_LT(stats.peak_stream_bytes, stats.file_bytes / 4)
        << "peak " << stats.peak_stream_bytes << " vs file bytes "
        << stats.file_bytes;
  }

  Result<std::shared_ptr<Catalog>> catalog = OpenTpcdsScaleCatalog(dir);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_EQ((*catalog)->RowCount("store_sales"), rows);
  EXPECT_TRUE(
      (*catalog)->FindTable("store_sales")->table->IsMapped());

  // A real suite query end-to-end on the mapped store, both engines
  // agreeing bit-for-bit.
  const Query q = MakeSuiteQuery("3D_Q96");
  Optimizer opt(catalog->get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.05, 0.05, 0.05});

  Executor::Options bopts;
  bopts.engine = Executor::Engine::kBatch;
  bopts.num_threads = 2;
  Executor batch(catalog->get(), CostModel::PostgresFlavour(), bopts);
  const Result<ExecutionResult> br = batch.Execute(*plan, -1.0);
  ASSERT_TRUE(br.ok() && br->completed);
  EXPECT_GT(br->cost_used, 0.0);

  Executor::Options topts;
  topts.engine = Executor::Engine::kTuple;
  Executor tuple(catalog->get(), CostModel::PostgresFlavour(), topts);
  const Result<ExecutionResult> tr = tuple.Execute(*plan, -1.0);
  ASSERT_TRUE(tr.ok() && tr->completed);
  EXPECT_EQ(br->output_rows, tr->output_rows);
  EXPECT_EQ(br->cost_used, tr->cost_used);  // bitwise

  for (const std::string& name : (*catalog)->TableNames()) {
    std::remove((std::string(dir) + "/" + name + ".rqp").c_str());
  }
  rmdir(dir);
}

}  // namespace
}  // namespace robustqp
