// Robustness / failure-injection tests: invariant violations abort loudly
// (RQP_CHECK), malformed inputs are rejected with Status rather than
// undefined behaviour, and degenerate shapes (empty filters results,
// single-row tables, all-equal columns) flow through the stack safely.

#include <gtest/gtest.h>

#include <memory>

#include "common/log_grid.h"
#include "common/status.h"
#include "exec/executor.h"
#include "ess/ess.h"
#include "optimizer/optimizer.h"
#include "storage/stats_builder.h"
#include "storage/table.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

TEST(CheckDeathTest, RqpCheckAborts) {
  EXPECT_DEATH(RQP_CHECK(1 == 2), "RQP_CHECK failed");
}

TEST(LogAxisDeathTest, RejectsDegenerateArguments) {
  EXPECT_DEATH(LogAxis(0.0, 10), "RQP_CHECK failed");
  EXPECT_DEATH(LogAxis(1.5, 10), "RQP_CHECK failed");
  EXPECT_DEATH(LogAxis(0.1, 1), "RQP_CHECK failed");
}

TEST(EssDeathTest, RejectsBadContourRatio) {
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(2);
  Ess::Config config;
  config.points_per_dim = 6;
  config.contour_cost_ratio = 1.0;  // must be > 1
  EXPECT_DEATH(Ess::Build(*catalog, q, config), "RQP_CHECK failed");
}

TEST(RobustnessTest, FilterEliminatingEverything) {
  // A filter that keeps zero dimension rows: joins produce zero output,
  // yet execution, costing and discovery must stay well-defined.
  auto catalog = MakeTinyCatalog();
  Query q("empty", {"f", "d1"}, {{"f", "f_fk1", "d1", "d1_k", ""}},
          {{"d1", "d1_a", CompareOp::kGt, 1e9}}, std::vector<int>{0});
  ASSERT_TRUE(q.Validate(*catalog).ok());
  Optimizer opt(catalog.get(), &q);
  const auto plan = opt.Optimize({0.01});
  EXPECT_GT(opt.PlanCost(*plan, {0.01}), 0.0);
  Executor exec(catalog.get(), CostModel::PostgresFlavour());
  const auto res = exec.Execute(*plan, -1.0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->completed);
  EXPECT_EQ(res->output_rows, 0);
}

TEST(RobustnessTest, SingleRowTables) {
  Catalog catalog;
  for (const char* name : {"a", "b"}) {
    TableSchema schema(name, {{"k", DataType::kInt64}});
    auto t = std::make_shared<Table>(schema);
    t->column(0).AppendInt(1);
    ASSERT_TRUE(t->Finalize().ok());
    ASSERT_TRUE(catalog.AddTable(t, ComputeTableStats(*t)).ok());
  }
  Query q("tiny", {"a", "b"}, {{"a", "k", "b", "k", ""}}, {}, std::vector<int>{0});
  ASSERT_TRUE(q.Validate(catalog).ok());
  Ess::Config config;
  config.points_per_dim = 4;
  auto ess = Ess::Build(catalog, q, config);
  EXPECT_GE(ess->num_contours(), 1);
  Executor exec(&catalog, CostModel::PostgresFlavour());
  const auto plan = ess->optimizer().Optimize({1.0});
  const auto res = exec.Execute(*plan, -1.0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->completed);
  EXPECT_EQ(res->output_rows, 1);
}

TEST(RobustnessTest, AllEqualJoinColumn) {
  // Every row of both sides carries the same key: the join degenerates to
  // a full cross product; hash, merge and nested-loop variants must agree
  // and budget enforcement must still bite.
  Catalog catalog;
  for (const char* name : {"a", "b"}) {
    TableSchema schema(name, {{"k", DataType::kInt64}});
    auto t = std::make_shared<Table>(schema);
    for (int i = 0; i < 50; ++i) t->column(0).AppendInt(7);
    ASSERT_TRUE(t->Finalize().ok());
    ASSERT_TRUE(catalog.AddTable(t, ComputeTableStats(*t)).ok());
  }
  Query q("cross", {"a", "b"}, {{"a", "k", "b", "k", ""}}, {}, std::vector<int>{0});
  ASSERT_TRUE(q.Validate(catalog).ok());
  Executor exec(&catalog, CostModel::PostgresFlavour());

  int64_t counts[3];
  int i = 0;
  for (PlanOp op :
       {PlanOp::kHashJoin, PlanOp::kNLJoin, PlanOp::kSortMergeJoin}) {
    auto sa = std::make_unique<PlanNode>();
    sa->op = PlanOp::kSeqScan;
    sa->table_idx = 0;
    auto sb = std::make_unique<PlanNode>();
    sb->op = PlanOp::kSeqScan;
    sb->table_idx = 1;
    auto join = std::make_unique<PlanNode>();
    join->op = op;
    join->join_indices = {0};
    join->left = std::move(sa);
    join->right = std::move(sb);
    Plan plan(&q, std::move(join));
    const auto res = exec.Execute(plan, -1.0);
    ASSERT_TRUE(res.ok() && res->completed);
    counts[i++] = res->output_rows;

    const auto aborted = exec.Execute(plan, 75.0);
    ASSERT_TRUE(aborted.ok());
    EXPECT_FALSE(aborted->completed);
  }
  EXPECT_EQ(counts[0], 2500);
  EXPECT_EQ(counts[1], 2500);
  EXPECT_EQ(counts[2], 2500);
}

TEST(RobustnessTest, ZeroBudgetExecutionAbortsImmediately) {
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(1);
  Optimizer opt(catalog.get(), &q);
  const auto plan = opt.Optimize({0.01});
  Executor exec(catalog.get(), CostModel::PostgresFlavour());
  const auto res = exec.Execute(*plan, 0.0);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->completed);
  EXPECT_EQ(res->output_rows, 0);
}

TEST(RobustnessTest, ParallelEssBuildMatchesSerial) {
  // Determinism under the parallel grid sweep: forcing multiple worker
  // threads must produce exactly the serial surface.
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(2);
  Ess::Config serial;
  serial.points_per_dim = 14;
  serial.num_threads = 1;
  Ess::Config parallel = serial;
  parallel.num_threads = 4;
  auto a = Ess::Build(*catalog, q, serial);
  auto b = Ess::Build(*catalog, q, parallel);
  ASSERT_EQ(a->num_locations(), b->num_locations());
  for (int64_t lin = 0; lin < a->num_locations(); ++lin) {
    EXPECT_DOUBLE_EQ(a->OptimalCost(lin), b->OptimalCost(lin));
    EXPECT_EQ(a->OptimalPlan(lin)->signature(),
              b->OptimalPlan(lin)->signature());
  }
  EXPECT_EQ(a->pool().size(), b->pool().size());
}

TEST(RobustnessTest, EstimatorClampsExtremeFilters) {
  auto catalog = MakeTinyCatalog();
  Query q("clamp", {"f", "d1"}, {{"f", "f_fk1", "d1", "d1_k", ""}},
          {{"d1", "d1_a", CompareOp::kLt, -100.0},
           {"d1", "d1_a", CompareOp::kGe, -100.0}},
          std::vector<int>{0});
  ASSERT_TRUE(q.Validate(*catalog).ok());
  CardinalityEstimator est(catalog.get(), &q);
  EXPECT_GT(est.FilterSelectivity(0), 0.0);  // clamped away from zero
  EXPECT_LE(est.FilterSelectivity(0), 1.0);
  EXPECT_DOUBLE_EQ(est.FilterSelectivity(1), 1.0);
  EXPECT_GE(est.FilteredRows(1, {0, 1}, {}), 1.0);
}

}  // namespace
}  // namespace robustqp
