// Tests for the deterministic fault-injection framework: spec parsing,
// hash-stream determinism at any thread count, zero-behaviour-change when
// disarmed (or armed but never firing), retry/degradation accounting in
// the executor and the retry loop, chaos sweeps through the evaluation
// harness, and the runtime invariant monitors (PCM violations,
// non-monotone contour budgets).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/recovery.h"
#include "core/spillbound.h"
#include "exec/executor.h"
#include "harness/evaluator.h"
#include "optimizer/optimizer.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

/// RAII disarm so a failing assertion cannot leak an armed injector into
/// later tests.
struct ArmedScope {
  explicit ArmedScope(const std::string& spec, uint64_t seed = 42) {
    const Status st = FaultInjector::Global().Configure(spec, seed);
    RQP_CHECK(st.ok());
  }
  ~ArmedScope() { FaultInjector::Disarm(); }
};

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"nosuch.site:p=0.1", "exec.scan.read", "exec.scan.read:p=1.5",
        "exec.scan.read:p=-0.1", "exec.scan.read:after=-2",
        "exec.scan.read:kind=bogus", "exec.scan.read:mult=0.5",
        "exec.scan.read:frob=1", ":p=0.1"}) {
    const Status st = FaultInjector::Global().Configure(bad, 1);
    EXPECT_FALSE(st.ok()) << "spec accepted: " << bad;
    EXPECT_FALSE(FaultInjector::Armed()) << bad;
  }
}

TEST(FaultSpecTest, EmptySpecDisarms) {
  ASSERT_TRUE(FaultInjector::Global().Configure("exec.*:p=0.5", 1).ok());
  EXPECT_TRUE(FaultInjector::Armed());
  ASSERT_TRUE(FaultInjector::Global().Configure("", 1).ok());
  EXPECT_FALSE(FaultInjector::Armed());
}

TEST(FaultSpecTest, WildcardAndOverride) {
  ArmedScope armed("exec.*:p=1,kind=spike;exec.scan.read:p=1,kind=permanent");
  FaultStreamScope scope(0);
  EXPECT_EQ(FaultInjector::Global().Evaluate(fault_site::kExecScanRead).kind,
            FaultKind::kPermanent);
  EXPECT_EQ(
      FaultInjector::Global().Evaluate(fault_site::kExecHashJoinBuild).kind,
      FaultKind::kCostSpike);
  // Non-exec sites are untouched by the exec.* clause.
  EXPECT_EQ(FaultInjector::Global().Evaluate(fault_site::kOptimizerDp).kind,
            FaultKind::kNone);
}

std::vector<FaultKind> DrawSequence(uint64_t stream, int site, int n) {
  FaultStreamScope scope(stream);
  std::vector<FaultKind> seq;
  for (int i = 0; i < n; ++i) {
    seq.push_back(FaultInjector::Global().Evaluate(site).kind);
  }
  return seq;
}

TEST(FaultDeterminismTest, StreamsAreSelfContainedAndThreadIndependent) {
  ArmedScope armed("*:p=0.2", 7);
  constexpr int kStreams = 16;
  constexpr int kDraws = 32;
  std::vector<std::vector<FaultKind>> expected(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    expected[static_cast<size_t>(s)] =
        DrawSequence(static_cast<uint64_t>(s), fault_site::kExecScanRead,
                     kDraws);
  }
  // Re-drawing the same stream reproduces the sequence exactly (counters
  // are zeroed per scope), and drawing from pool workers — any partition
  // of streams onto threads — reproduces it too.
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<std::vector<FaultKind>> got(kStreams);
    const Status st = ParallelFor(
        &pool, kStreams, [&](int /*worker*/, int64_t begin, int64_t end) {
          for (int64_t s = begin; s < end; ++s) {
            got[static_cast<size_t>(s)] =
                DrawSequence(static_cast<uint64_t>(s),
                             fault_site::kExecScanRead, kDraws);
          }
        });
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
  // Distinct streams see distinct sequences (overwhelmingly likely at
  // p=0.2 over 32 draws; this is a fixed-seed regression, not a flake).
  EXPECT_NE(expected[0], expected[1]);
}

TEST(FaultDeterminismTest, AfterFiresExactlyOnce) {
  ArmedScope armed("exec.scan.read:after=3,kind=permanent", 9);
  FaultStreamScope scope(5);
  for (int i = 0; i < 12; ++i) {
    const FaultAction act =
        FaultInjector::Global().Evaluate(fault_site::kExecScanRead);
    if (i == 3) {
      EXPECT_EQ(act.kind, FaultKind::kPermanent);
    } else {
      EXPECT_EQ(act.kind, FaultKind::kNone);
    }
  }
}

TEST(FaultRetryLoopTest, BudgetedTransientStormChargesAtMostBudget) {
  ArmedScope armed("exec.scan.read:p=1", 3);
  FaultStreamScope scope(1);
  int attempts = 0;
  const FaultedRunOutcome outcome = RunWithFaultRetries(
      FaultInjector::Global(), {fault_site::kExecScanRead}, 100.0,
      [&](double eff_budget, const FaultRunState&) {
        ++attempts;
        FaultAttempt a;
        a.completed = true;
        a.cost = std::min(eff_budget, 40.0);
        return a;
      });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_FALSE(outcome.completed);
  EXPECT_FALSE(outcome.final_attempt_valid);
  EXPECT_LE(outcome.cost_used, 100.0 + 1e-9);
  EXPECT_GT(outcome.report.transient_retries, 0);
  EXPECT_GT(outcome.report.retried_cost, 0.0);
  EXPECT_LE(attempts, kMaxFaultAttempts);
}

TEST(FaultRetryLoopTest, UnbudgetedTransientStormSurfacesUnavailable) {
  ArmedScope armed("exec.scan.read:p=1", 3);
  FaultStreamScope scope(1);
  const FaultedRunOutcome outcome = RunWithFaultRetries(
      FaultInjector::Global(), {fault_site::kExecScanRead}, -1.0,
      [&](double, const FaultRunState&) {
        FaultAttempt a;
        a.completed = true;
        a.cost = 40.0;
        return a;
      });
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_TRUE(outcome.status.IsTransient());
  EXPECT_EQ(outcome.report.retries_exhausted, 1);
}

TEST(FaultRetryLoopTest, TransientThenSuccessChargesLostWork) {
  ArmedScope armed("exec.scan.read:after=0", 3);  // first attempt faults
  FaultStreamScope scope(2);
  const FaultedRunOutcome outcome = RunWithFaultRetries(
      FaultInjector::Global(), {fault_site::kExecScanRead}, 1000.0,
      [&](double eff_budget, const FaultRunState&) {
        FaultAttempt a;
        a.completed = true;
        a.cost = std::min(eff_budget, 40.0);
        return a;
      });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.final_attempt_valid);
  EXPECT_EQ(outcome.report.transient_retries, 1);
  // Charged = clean attempt + work lost to the faulted first attempt.
  EXPECT_GE(outcome.cost_used, 40.0);
  EXPECT_DOUBLE_EQ(outcome.cost_used, 40.0 + outcome.report.retried_cost);
}

class FaultedExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeTinyCatalog();
    query_ = std::make_unique<Query>(MakeStarQuery(2));
    optimizer_ = std::make_unique<Optimizer>(catalog_.get(), query_.get());
    plan_ = optimizer_->Optimize({0.01, 0.02});
  }

  ExecutionResult MustRun(const Executor& exec, double budget) {
    Result<ExecutionResult> r = exec.Execute(*plan_, budget);
    RQP_CHECK(r.ok());
    return r.MoveValue();
  }

  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Query> query_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<Plan> plan_;
};

TEST_F(FaultedExecutorTest, ArmedNeverFiringMatchesDisarmedBitForBit) {
  for (const auto engine :
       {Executor::Engine::kTuple, Executor::Engine::kBatch}) {
    Executor::Options opts;
    opts.engine = engine;
    Executor exec(catalog_.get(), CostModel::PostgresFlavour(), opts);
    const ExecutionResult clean = MustRun(exec, -1.0);
    ExecutionResult armed_result;
    {
      ArmedScope armed("exec.scan.read:after=1000000000", 11);
      FaultStreamScope scope(0);
      armed_result = MustRun(exec, -1.0);
    }
    EXPECT_EQ(armed_result.completed, clean.completed);
    EXPECT_EQ(armed_result.output_rows, clean.output_rows);
    EXPECT_EQ(armed_result.cost_used, clean.cost_used);  // bitwise
    ASSERT_EQ(armed_result.node_stats.size(), clean.node_stats.size());
    for (size_t i = 0; i < clean.node_stats.size(); ++i) {
      EXPECT_EQ(armed_result.node_stats[i].left_in,
                clean.node_stats[i].left_in);
      EXPECT_EQ(armed_result.node_stats[i].right_in,
                clean.node_stats[i].right_in);
      EXPECT_EQ(armed_result.node_stats[i].out, clean.node_stats[i].out);
    }
    EXPECT_FALSE(armed_result.robustness.Any());
  }
}

TEST_F(FaultedExecutorTest, EngineDegradationFallsBackToTupleResults) {
  Executor::Options batch_opts;
  batch_opts.engine = Executor::Engine::kBatch;
  Executor batch_exec(catalog_.get(), CostModel::PostgresFlavour(),
                      batch_opts);
  Executor::Options tuple_opts;
  tuple_opts.engine = Executor::Engine::kTuple;
  Executor tuple_exec(catalog_.get(), CostModel::PostgresFlavour(),
                      tuple_opts);
  const ExecutionResult clean_tuple = MustRun(tuple_exec, -1.0);

  ArmedScope armed("exec.batch.pipeline:p=1", 13);
  FaultStreamScope scope(0);
  const ExecutionResult degraded = MustRun(batch_exec, -1.0);
  EXPECT_GE(degraded.robustness.engine_degradations, 1);
  EXPECT_TRUE(degraded.completed);
  EXPECT_EQ(degraded.output_rows, clean_tuple.output_rows);
  EXPECT_EQ(degraded.cost_used, clean_tuple.cost_used);
}

TEST_F(FaultedExecutorTest, MorselDegradationCompletesSerially) {
  Executor::Options opts;
  opts.engine = Executor::Engine::kBatch;
  opts.num_threads = 4;
  Executor exec(catalog_.get(), CostModel::PostgresFlavour(), opts);
  const ExecutionResult clean = MustRun(exec, -1.0);

  ArmedScope armed("exec.morsel.scan:p=1", 17);
  FaultStreamScope scope(0);
  const ExecutionResult degraded = MustRun(exec, -1.0);
  EXPECT_GE(degraded.robustness.serial_degradations, 1);
  EXPECT_TRUE(degraded.completed);
  EXPECT_EQ(degraded.output_rows, clean.output_rows);
  EXPECT_EQ(degraded.cost_used, clean.cost_used);
}

TEST_F(FaultedExecutorTest, PermanentFaultSurfacesAsError) {
  Executor exec(catalog_.get(), CostModel::PostgresFlavour());
  ArmedScope armed("exec.scan.read:p=1,kind=permanent", 19);
  FaultStreamScope scope(0);
  const Result<ExecutionResult> r = exec.Execute(*plan_, -1.0);
  EXPECT_FALSE(r.ok());
}

TEST_F(FaultedExecutorTest, FaultSequenceIdenticalAcrossEnginesAndThreads) {
  // Fault draws happen before each attempt, never inside engine
  // internals, so the per-run draw sequence and RobustnessReport are the
  // same whichever engine executes and at any morsel thread count.
  std::vector<RobustnessReport> reports;
  for (const int threads : {1, 2, 4}) {
    for (const auto engine :
         {Executor::Engine::kTuple, Executor::Engine::kBatch}) {
      Executor::Options opts;
      opts.engine = engine;
      opts.num_threads = threads;
      Executor exec(catalog_.get(), CostModel::PostgresFlavour(), opts);
      ArmedScope armed("exec.*:p=0.3", 23);
      FaultStreamScope scope(99);
      const Result<ExecutionResult> r = exec.Execute(*plan_, 1e9);
      ASSERT_TRUE(r.ok());
      reports.push_back(r->robustness);
    }
  }
  for (size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].transient_retries, reports[0].transient_retries);
    EXPECT_EQ(reports[i].cost_spikes, reports[0].cost_spikes);
    EXPECT_DOUBLE_EQ(reports[i].retried_cost, reports[0].retried_cost);
  }
}

class ChaosSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeTinyCatalog().release();
    query_ = new Query(MakeStarQuery(2));
    Ess::Config config;
    config.points_per_dim = 12;
    config.min_sel = 1e-4;
    ess_ = Ess::Build(*catalog_, *query_, config).release();
  }
  static Catalog* catalog_;
  static Query* query_;
  static Ess* ess_;
};
Catalog* ChaosSweepTest::catalog_ = nullptr;
Query* ChaosSweepTest::query_ = nullptr;
Ess* ChaosSweepTest::ess_ = nullptr;

TEST_F(ChaosSweepTest, ArmedNeverFiringMatchesDisarmedSweep) {
  const SpillBound sb(ess_);
  const SuboptimalityStats clean = Evaluate(sb, *ess_, EvalOptions{});
  EvalOptions opts;
  opts.fault_spec = "exec.scan.read:after=1000000000";
  const SuboptimalityStats armed = Evaluate(sb, *ess_, opts);
  EXPECT_EQ(armed.subopt, clean.subopt);  // bitwise
  EXPECT_FALSE(armed.robustness.Any());
  EXPECT_FALSE(FaultInjector::Armed());  // Evaluate disarms afterwards
}

TEST_F(ChaosSweepTest, ChaosSweepIsDeterministicAtAnyThreadCount) {
  const SpillBound sb(ess_);
  EvalOptions base;
  base.fault_spec = "*:p=0.01";
  base.fault_seed = 42;
  base.num_threads = 1;
  const SuboptimalityStats ref = Evaluate(sb, *ess_, base);
  // Every location completed (Evaluate aborts otherwise) and faults
  // actually fired at this probability on this grid.
  EXPECT_TRUE(ref.robustness.Any());
  EXPECT_GT(ref.robustness.transient_retries, 0);
  EXPECT_GE(ref.robustness.mso_delta, 0.0);
  for (const int threads : {2, 4}) {
    EvalOptions opts = base;
    opts.num_threads = threads;
    const SuboptimalityStats got = Evaluate(sb, *ess_, opts);
    EXPECT_EQ(got.subopt, ref.subopt) << "threads=" << threads;
    EXPECT_EQ(got.robustness.transient_retries,
              ref.robustness.transient_retries);
    EXPECT_EQ(got.robustness.cost_spikes, ref.robustness.cost_spikes);
    EXPECT_EQ(got.robustness.escalations, ref.robustness.escalations);
    EXPECT_DOUBLE_EQ(got.robustness.retried_cost,
                     ref.robustness.retried_cost);
    EXPECT_DOUBLE_EQ(got.robustness.mso_delta, ref.robustness.mso_delta);
  }
}

TEST_F(ChaosSweepTest, AllAlgorithmsSurviveChaos) {
  EvalOptions opts;
  opts.fault_spec = "exec.*:p=0.02;optimizer.*:p=0.01";
  opts.fault_seed = 42;
  const PlanBouquet pb(ess_);
  const SpillBound sb(ess_);
  // Evaluate RQP_CHECKs completion at every grid location; surviving the
  // sweep is the assertion.
  const SuboptimalityStats pb_stats = Evaluate(pb, *ess_, opts);
  const SuboptimalityStats sb_stats = Evaluate(sb, *ess_, opts);
  EXPECT_GE(pb_stats.mso, 1.0);
  EXPECT_GE(sb_stats.mso, 1.0);
}

TEST_F(ChaosSweepTest, PcmMonitorFiresOnCorruptedCostModel) {
  // Per-evaluation cost corruption makes the simulated spill cost model
  // genuinely non-monotone along the spill axis; the isotonic-scan
  // monitor must detect and clamp it while the sweep still completes.
  const SpillBound sb(ess_);
  EvalOptions opts;
  opts.fault_spec = "oracle.cost_model:p=0.8,kind=corrupt,scale=8";
  opts.fault_seed = 42;
  const SuboptimalityStats stats = Evaluate(sb, *ess_, opts);
  EXPECT_GT(stats.robustness.pcm_violations, 0);
  EXPECT_GT(stats.robustness.corruptions, 0);
}

TEST(ContourBudgetMonitorTest, ClampsNonMonotoneBudgets) {
  ContourBudgetMonitor monitor;
  RobustnessReport report;
  EXPECT_DOUBLE_EQ(monitor.Clamp(10.0, &report), 10.0);
  EXPECT_DOUBLE_EQ(monitor.Clamp(20.0, &report), 20.0);
  EXPECT_DOUBLE_EQ(monitor.Clamp(15.0, &report), 20.0);  // clamped up
  EXPECT_DOUBLE_EQ(monitor.Clamp(25.0, &report), 25.0);
  EXPECT_EQ(report.contour_clamps, 1);
}

TEST_F(ChaosSweepTest, EssLoadFaultSurfacesTransient) {
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  {
    ArmedScope armed("io.ess_load:p=1", 29);
    Result<std::unique_ptr<Ess>> loaded =
        Ess::Load(buffer, *catalog_, *query_);
    EXPECT_FALSE(loaded.ok());
    EXPECT_TRUE(loaded.status().IsTransient());
  }
  buffer.clear();
  buffer.seekg(0);
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(buffer, *catalog_, *query_);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(ChaosSweepTest, EssBuildDegradesToSweepOnCornerFault) {
  Ess::Config config;
  config.points_per_dim = 12;
  config.min_sel = 1e-4;
  config.build_mode = EssBuildMode::kExact;
  config.num_threads = 1;
  const auto clean = Ess::Build(*catalog_, *query_, config);
  ASSERT_FALSE(clean->build_stats().fell_back);

  ArmedScope armed("ess.corner_opt:p=0.05", 31);
  Result<std::unique_ptr<Ess>> chaotic =
      Ess::TryBuild(*catalog_, *query_, config);
  ASSERT_TRUE(chaotic.ok()) << chaotic.status().ToString();
  // The degradation reuses the exhaustive-fallback path, so the surface
  // is the exhaustive sweep's — identical to the clean build.
  EXPECT_TRUE((*chaotic)->build_stats().fell_back);
  ASSERT_EQ((*chaotic)->num_locations(), clean->num_locations());
  for (int64_t lin = 0; lin < clean->num_locations(); ++lin) {
    ASSERT_DOUBLE_EQ((*chaotic)->OptimalCost(lin), clean->OptimalCost(lin));
  }
}

TEST_F(ChaosSweepTest, EssBuildSurvivesOptimizerTransients) {
  Ess::Config config;
  config.points_per_dim = 12;
  config.min_sel = 1e-4;
  config.num_threads = 2;
  const auto clean = Ess::Build(*catalog_, *query_, config);
  ArmedScope armed("optimizer.dp:p=0.05", 37);
  Result<std::unique_ptr<Ess>> chaotic =
      Ess::TryBuild(*catalog_, *query_, config);
  ASSERT_TRUE(chaotic.ok()) << chaotic.status().ToString();
  for (int64_t lin = 0; lin < clean->num_locations(); lin += 3) {
    ASSERT_DOUBLE_EQ((*chaotic)->OptimalCost(lin), clean->OptimalCost(lin));
  }
}

}  // namespace
}  // namespace robustqp
