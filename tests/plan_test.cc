// Unit tests for physical plans: signatures, node indexing, the epp
// execution total-order of Section 3.1.3, and spill-node identification.

#include <gtest/gtest.h>

#include <memory>

#include "plan/plan.h"
#include "plan/plan_pool.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;

std::unique_ptr<PlanNode> Scan(int table_idx) {
  auto n = std::make_unique<PlanNode>();
  n->op = PlanOp::kSeqScan;
  n->table_idx = table_idx;
  return n;
}

std::unique_ptr<PlanNode> Join(PlanOp op, int join_idx,
                               std::unique_ptr<PlanNode> left,
                               std::unique_ptr<PlanNode> right) {
  auto n = std::make_unique<PlanNode>();
  n->op = op;
  n->join_indices = {join_idx};
  n->left = std::move(left);
  n->right = std::move(right);
  return n;
}

// A left-deep plan for the star query:
//   HJ(j2, HJ(j1, HJ(j0, d1, f), d2), d3)
// with the scans' children ordered (build, probe).
std::unique_ptr<PlanNode> LeftDeepStar() {
  auto j0 = Join(PlanOp::kHashJoin, 0, Scan(1), Scan(0));
  auto j1 = Join(PlanOp::kHashJoin, 1, Scan(2), std::move(j0));
  return Join(PlanOp::kHashJoin, 2, Scan(3), std::move(j1));
}

TEST(PlanTest, PreOrderIds) {
  const Query q = MakeStarQuery(3);
  Plan plan(&q, LeftDeepStar());
  EXPECT_EQ(plan.num_nodes(), 7);
  EXPECT_EQ(plan.root().id, 0);
  // Pre-order: root, left(d3 scan), right(HJ j1), its left (d2), ...
  EXPECT_EQ(plan.node(0).op, PlanOp::kHashJoin);
  EXPECT_EQ(plan.node(1).op, PlanOp::kSeqScan);
  EXPECT_EQ(plan.node(1).table_idx, 3);
  EXPECT_EQ(plan.node(2).op, PlanOp::kHashJoin);
}

TEST(PlanTest, SignatureDistinguishesStructure) {
  const Query q = MakeStarQuery(3);
  Plan a(&q, LeftDeepStar());
  Plan b(&q, LeftDeepStar());
  EXPECT_EQ(a.signature(), b.signature());

  // Swapping build/probe of the innermost join changes the signature.
  auto j0 = Join(PlanOp::kHashJoin, 0, Scan(0), Scan(1));
  auto j1 = Join(PlanOp::kHashJoin, 1, Scan(2), std::move(j0));
  Plan c(&q, Join(PlanOp::kHashJoin, 2, Scan(3), std::move(j1)));
  EXPECT_NE(a.signature(), c.signature());

  // Changing an operator changes the signature.
  auto j0b = Join(PlanOp::kNLJoin, 0, Scan(1), Scan(0));
  auto j1b = Join(PlanOp::kHashJoin, 1, Scan(2), std::move(j0b));
  Plan d(&q, Join(PlanOp::kHashJoin, 2, Scan(3), std::move(j1b)));
  EXPECT_NE(a.signature(), d.signature());
}

TEST(PlanTest, CloneIsDeepAndEquivalent) {
  const Query q = MakeStarQuery(3);
  Plan a(&q, LeftDeepStar());
  Plan b(&q, a.root().Clone());
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_NE(&a.root(), &b.root());
}

TEST(PlanTest, EppExecutionOrderHashJoins) {
  const Query q = MakeStarQuery(3);
  Plan plan(&q, LeftDeepStar());
  // Every join's build side is a plain scan, so the order is bottom-up
  // along the probe chain: j0 (innermost) first, then j1, then j2.
  ASSERT_EQ(plan.epp_execution_order().size(), 3u);
  EXPECT_EQ(plan.epp_execution_order()[0], 0);
  EXPECT_EQ(plan.epp_execution_order()[1], 1);
  EXPECT_EQ(plan.epp_execution_order()[2], 2);
}

TEST(PlanTest, EppExecutionOrderBlockingChildFirst) {
  const Query q = MakeStarQuery(3);
  // Bushy: HJ(j1, build = HJ(j0, d1, f), probe = HJ? not possible with one
  // fact table; instead nest on the build side:
  //   HJ(j2, build = HJ(j1, d2, HJ(j0, d1, f)), probe = d3)   -- builds first
  auto inner = Join(PlanOp::kHashJoin, 0, Scan(1), Scan(0));
  auto mid = Join(PlanOp::kHashJoin, 1, Scan(2), std::move(inner));
  Plan plan(&q, Join(PlanOp::kHashJoin, 2, std::move(mid), Scan(3)));
  // The build (blocking) subtree contains j0 then j1; the root j2 is last.
  ASSERT_EQ(plan.epp_execution_order().size(), 3u);
  EXPECT_EQ(plan.epp_execution_order()[0], 0);
  EXPECT_EQ(plan.epp_execution_order()[1], 1);
  EXPECT_EQ(plan.epp_execution_order()[2], 2);
}

TEST(PlanTest, EppExecutionOrderNLJoinInnerFirst) {
  const Query q = MakeStarQuery(3);
  // NLJ at the root: outer = HJ(j0..j1 chain), inner = scan d3. The inner
  // (blocking) side has no epps, so order is j0, j1, then root j2.
  auto j0 = Join(PlanOp::kHashJoin, 0, Scan(1), Scan(0));
  auto j1 = Join(PlanOp::kHashJoin, 1, Scan(2), std::move(j0));
  Plan plan(&q, Join(PlanOp::kNLJoin, 2, std::move(j1), Scan(3)));
  ASSERT_EQ(plan.epp_execution_order().size(), 3u);
  EXPECT_EQ(plan.epp_execution_order()[2], 2);
}

TEST(PlanTest, SpillDimensionIsFirstUnlearned) {
  const Query q = MakeStarQuery(3);
  Plan plan(&q, LeftDeepStar());
  EXPECT_EQ(plan.SpillDimension({true, true, true}), 0);
  EXPECT_EQ(plan.SpillDimension({false, true, true}), 1);
  EXPECT_EQ(plan.SpillDimension({false, false, true}), 2);
  EXPECT_EQ(plan.SpillDimension({false, false, false}), -1);
  EXPECT_EQ(plan.SpillDimension({false, true, false}), 1);
}

TEST(PlanTest, EppNodeId) {
  const Query q = MakeStarQuery(3);
  Plan plan(&q, LeftDeepStar());
  // Root evaluates j2 -> dim 2 at node 0.
  EXPECT_EQ(plan.EppNodeId(2), 0);
  EXPECT_EQ(plan.EppNodeId(1), 2);
  EXPECT_EQ(plan.EppNodeId(0), 4);
}

TEST(PlanTest, OnlyEppJoinsInOrder) {
  const Query q = MakeStarQuery(1);  // only j0 is an epp
  Plan plan(&q, LeftDeepStar());
  ASSERT_EQ(plan.epp_execution_order().size(), 1u);
  EXPECT_EQ(plan.epp_execution_order()[0], 0);
}

TEST(PlanTest, ToStringMentionsOperatorsAndEpps) {
  const Query q = MakeStarQuery(3);
  Plan plan(&q, LeftDeepStar());
  plan.set_display_name("P1");
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("HashJoin"), std::string::npos);
  EXPECT_NE(s.find("SeqScan f"), std::string::npos);
  EXPECT_NE(s.find("epp e1"), std::string::npos);
}

TEST(PlanPoolTest, InternDedups) {
  const Query q = MakeStarQuery(3);
  PlanPool pool;
  const Plan* a = pool.Intern(std::make_unique<Plan>(&q, LeftDeepStar()));
  const Plan* b = pool.Intern(std::make_unique<Plan>(&q, LeftDeepStar()));
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(a->display_name(), "P1");

  auto j0 = Join(PlanOp::kNLJoin, 0, Scan(1), Scan(0));
  auto j1 = Join(PlanOp::kHashJoin, 1, Scan(2), std::move(j0));
  const Plan* c = pool.Intern(std::make_unique<Plan>(
      &q, Join(PlanOp::kHashJoin, 2, Scan(3), std::move(j1))));
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.size(), 2);
  EXPECT_EQ(c->display_name(), "P2");
  EXPECT_EQ(pool.Find(a->signature()), a);
  EXPECT_EQ(pool.Find("nope"), nullptr);
}

}  // namespace
}  // namespace robustqp
