// Tests for the sort-merge join operator: result equivalence with hash
// join (including duplicate-key cross products), cost-model behaviour,
// budget abort during sort and merge phases, and epp ordering.

#include <gtest/gtest.h>

#include <memory>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "storage/stats_builder.h"
#include "storage/table.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

std::unique_ptr<Plan> TwoTablePlan(const Query& q, PlanOp op) {
  auto scan_f = std::make_unique<PlanNode>();
  scan_f->op = PlanOp::kSeqScan;
  scan_f->table_idx = 0;
  auto scan_d = std::make_unique<PlanNode>();
  scan_d->op = PlanOp::kSeqScan;
  scan_d->table_idx = 1;
  scan_d->filter_indices = {0};
  auto join = std::make_unique<PlanNode>();
  join->op = op;
  join->join_indices = {0};
  join->left = std::move(scan_f);
  join->right = std::move(scan_d);
  return std::make_unique<Plan>(&q, std::move(join));
}

class SortMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeTinyCatalog();
    executor_ = std::make_unique<Executor>(catalog_.get(),
                                           CostModel::PostgresFlavour());
  }
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(SortMergeTest, MatchesHashJoinResult) {
  const Query q = MakeStarQuery(1);
  const auto smj = TwoTablePlan(q, PlanOp::kSortMergeJoin);
  const auto hj = TwoTablePlan(q, PlanOp::kHashJoin);
  const auto r1 = executor_->Execute(*smj, -1.0);
  const auto r2 = executor_->Execute(*hj, -1.0);
  ASSERT_TRUE(r1.ok() && r1->completed);
  ASSERT_TRUE(r2.ok() && r2->completed);
  EXPECT_EQ(r1->output_rows, r2->output_rows);
  EXPECT_GT(r1->output_rows, 0);
}

TEST_F(SortMergeTest, DuplicateKeysProduceCrossProduct) {
  // Two tiny tables with duplicate keys on both sides: |{2,2,3}| joined
  // with |{2,2,2,5}| on equality = 2*3 = 6 matches for key 2.
  Catalog catalog;
  {
    TableSchema schema("l", {{"k", DataType::kInt64}});
    auto t = std::make_shared<Table>(schema);
    for (int64_t v : {2, 2, 3}) t->column(0).AppendInt(v);
    ASSERT_TRUE(t->Finalize().ok());
    ASSERT_TRUE(catalog.AddTable(t, ComputeTableStats(*t)).ok());
  }
  {
    TableSchema schema("r", {{"k", DataType::kInt64}});
    auto t = std::make_shared<Table>(schema);
    for (int64_t v : {2, 2, 2, 5}) t->column(0).AppendInt(v);
    ASSERT_TRUE(t->Finalize().ok());
    ASSERT_TRUE(catalog.AddTable(t, ComputeTableStats(*t)).ok());
  }
  Query q("dup", {"l", "r"}, {{"l", "k", "r", "k", ""}}, {}, std::vector<int>{0});
  ASSERT_TRUE(q.Validate(catalog).ok());

  auto scan_l = std::make_unique<PlanNode>();
  scan_l->op = PlanOp::kSeqScan;
  scan_l->table_idx = 0;
  auto scan_r = std::make_unique<PlanNode>();
  scan_r->op = PlanOp::kSeqScan;
  scan_r->table_idx = 1;
  auto join = std::make_unique<PlanNode>();
  join->op = PlanOp::kSortMergeJoin;
  join->join_indices = {0};
  join->left = std::move(scan_l);
  join->right = std::move(scan_r);
  Plan plan(&q, std::move(join));

  Executor exec(&catalog, CostModel::PostgresFlavour());
  const auto res = exec.Execute(plan, -1.0);
  ASSERT_TRUE(res.ok() && res->completed);
  EXPECT_EQ(res->output_rows, 6);
  EXPECT_NEAR(res->ObservedJoinSelectivity(0), 6.0 / (3 * 4), 1e-12);
}

TEST_F(SortMergeTest, BudgetAbortDuringSort) {
  const Query q = MakeStarQuery(1);
  const auto smj = TwoTablePlan(q, PlanOp::kSortMergeJoin);
  const auto res = executor_->Execute(*smj, 100.0);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->completed);
  EXPECT_LE(res->cost_used, 100.0 + 1e-9);
}

TEST_F(SortMergeTest, EngineChargeTracksCostModel) {
  const Query q = MakeStarQuery(1);
  const auto smj = TwoTablePlan(q, PlanOp::kSortMergeJoin);
  Optimizer opt(catalog_.get(), &q);
  const auto res = executor_->Execute(*smj, -1.0);
  ASSERT_TRUE(res.ok() && res->completed);
  const double est = opt.PlanCost(*smj, {0.01});
  EXPECT_GT(res->cost_used, est * 0.3);
  EXPECT_LT(res->cost_used, est * 3.0);
}

TEST_F(SortMergeTest, SortTermProperties) {
  EXPECT_DOUBLE_EQ(CostModel::SortTerm(0.0), 0.0);
  EXPECT_DOUBLE_EQ(CostModel::SortTerm(1.0), 1.0);
  EXPECT_DOUBLE_EQ(CostModel::SortTerm(2.0), 2.0);
  EXPECT_DOUBLE_EQ(CostModel::SortTerm(8.0), 24.0);
  // Strictly increasing.
  double prev = 0.0;
  for (double n = 0.5; n < 100.0; n += 0.5) {
    const double v = CostModel::SortTerm(n);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST_F(SortMergeTest, EppOrderLeftFirst) {
  const Query q = MakeStarQuery(3);
  // SMJ at the root over (HJ chain, scan d3).
  auto j0 = std::make_unique<PlanNode>();
  j0->op = PlanOp::kHashJoin;
  j0->join_indices = {0};
  auto s1 = std::make_unique<PlanNode>();
  s1->op = PlanOp::kSeqScan;
  s1->table_idx = 1;
  auto sf = std::make_unique<PlanNode>();
  sf->op = PlanOp::kSeqScan;
  sf->table_idx = 0;
  j0->left = std::move(s1);
  j0->right = std::move(sf);
  auto j1 = std::make_unique<PlanNode>();
  j1->op = PlanOp::kHashJoin;
  j1->join_indices = {1};
  auto s2 = std::make_unique<PlanNode>();
  s2->op = PlanOp::kSeqScan;
  s2->table_idx = 2;
  j1->left = std::move(s2);
  j1->right = std::move(j0);
  auto smj = std::make_unique<PlanNode>();
  smj->op = PlanOp::kSortMergeJoin;
  smj->join_indices = {2};
  auto s3 = std::make_unique<PlanNode>();
  s3->op = PlanOp::kSeqScan;
  s3->table_idx = 3;
  smj->left = std::move(j1);
  smj->right = std::move(s3);
  Plan plan(&q, std::move(smj));
  ASSERT_EQ(plan.epp_execution_order().size(), 3u);
  EXPECT_EQ(plan.epp_execution_order()[0], 0);
  EXPECT_EQ(plan.epp_execution_order()[1], 1);
  EXPECT_EQ(plan.epp_execution_order()[2], 2);
}

TEST_F(SortMergeTest, OptimizerConsidersSmj) {
  // Under the commercial flavour (cheap sort, pricey hash build) at a
  // moderate selectivity, SMJ should win somewhere in the ESS for at
  // least one location — verify the DP emits it at all by checking a
  // sweep of injection points.
  const Query q = MakeStarQuery(2);
  Optimizer opt(catalog_.get(), &q, CostModel::CommercialFlavour());
  bool saw_smj = false;
  for (double s1v : {1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0}) {
    for (double s2v : {1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0}) {
      const auto plan = opt.Optimize({s1v, s2v});
      if (plan->signature().find("SMJ") != std::string::npos) saw_smj = true;
    }
  }
  // SMJ may legitimately never win if hashing dominates everywhere under
  // this parameterization; in that case at least verify the cost model
  // orders it sensibly.
  if (!saw_smj) {
    CostModel cm = CostModel::CommercialFlavour();
    EXPECT_GT(cm.SortMergeJoinCost(1000, 1000, 100),
              cm.HashJoinCost(1000, 1000, 100) * 0.1);
  }
}

}  // namespace
}  // namespace robustqp
