// End-to-end tests for error-prone *filter* predicates: the general
// formulation where the ESS mixes join and filter dimensions (the
// paper's Fig. 1 example query EQ with its retail-price filter).

#include <gtest/gtest.h>

#include <memory>

#include "core/alignedbound.h"
#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "exec/executor.h"
#include "harness/evaluator.h"
#include "harness/true_selectivity.h"
#include "workloads/tpch_mini.h"

namespace robustqp {
namespace {

class FilterEppTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = BuildTpchMiniCatalog(4242, 0.25).release();
    query_ = new Query(MakeExampleQueryEq(/*filter_epp=*/true));
    ASSERT_TRUE(query_->Validate(*catalog_).ok());
    Ess::Config config;
    config.points_per_dim = 8;
    config.min_sel = 1e-4;
    ess_ = Ess::Build(*catalog_, *query_, config).release();
  }
  static Catalog* catalog_;
  static Query* query_;
  static Ess* ess_;
};
Catalog* FilterEppTest::catalog_ = nullptr;
Query* FilterEppTest::query_ = nullptr;
Ess* FilterEppTest::ess_ = nullptr;

TEST_F(FilterEppTest, QueryStructure) {
  EXPECT_EQ(query_->num_epps(), 3);
  EXPECT_EQ(query_->JoinOfEppDimension(0), 0);
  EXPECT_EQ(query_->JoinOfEppDimension(2), -1);
  EXPECT_EQ(query_->FilterOfEppDimension(2), 0);
  EXPECT_EQ(query_->EppDimensionOfFilter(0), 2);
  EXPECT_EQ(query_->EppLabel(2), "s(part.p_retailprice)");
}

TEST_F(FilterEppTest, InjectionDrivesFilterSelectivity) {
  const CardinalityEstimator& est = ess_->optimizer().estimator();
  const EssPoint q = {0.01, 0.01, 0.37};
  EXPECT_DOUBLE_EQ(est.FilterSelectivityAt(0, q), 0.37);
  // The part scan's estimated output tracks the injection.
  const double part_rows = est.FilteredRows(query_->TableIndex("part"), {0}, q);
  EXPECT_NEAR(part_rows, 5000 * 0.37, 1.0);
}

TEST_F(FilterEppTest, OcsMonotoneInFilterDimension) {
  for (int64_t lin = 0; lin < ess_->num_locations(); lin += 3) {
    const GridLoc loc = ess_->FromLinear(lin);
    if (loc[2] + 1 >= ess_->points()) continue;
    GridLoc up = loc;
    ++up[2];
    EXPECT_GT(ess_->OptimalCost(up), ess_->OptimalCost(loc));
  }
}

TEST_F(FilterEppTest, PlansOrderFilterEppUpstream) {
  // The filter epp resolves at a scan — the most upstream spot of its
  // pipeline — so in every POSP plan where it appears it precedes any
  // join epp of the same pipeline chain. Weak but structural check: the
  // filter dim appears in every plan's epp order.
  const std::vector<bool> unlearned = {true, true, true};
  for (const Plan* p : ess_->pool().plans()) {
    const auto& order = p->epp_execution_order();
    EXPECT_EQ(order.size(), 3u) << p->signature();
    EXPECT_NE(std::find(order.begin(), order.end(), 2), order.end());
    EXPECT_GE(p->SpillDimension(unlearned), 0);
    // Spilling on the filter dim targets the part scan node.
    const int node_id = p->EppNodeId(2);
    ASSERT_GE(node_id, 0);
    EXPECT_EQ(p->node(node_id).op, PlanOp::kSeqScan);
  }
}

TEST_F(FilterEppTest, SpillBoundWithinGuaranteeExhaustive) {
  SpillBound sb(ess_);
  const SuboptimalityStats stats = Evaluate(sb, *ess_);
  EXPECT_LE(stats.mso, SpillBound::MsoGuarantee(3) * (1 + 1e-6));
  EXPECT_GE(stats.mso, 1.0);
}

TEST_F(FilterEppTest, PlanBouquetWithinGuaranteeExhaustive) {
  PlanBouquet pb(ess_);
  const SuboptimalityStats stats = Evaluate(pb, *ess_);
  EXPECT_LE(stats.mso, pb.MsoGuarantee() * (1 + 1e-6));
}

TEST_F(FilterEppTest, AlignedBoundWithinGuaranteeExhaustive) {
  AlignedBound ab(ess_);
  const SuboptimalityStats stats = Evaluate(ab, *ess_);
  EXPECT_LE(stats.mso, SpillBound::MsoGuarantee(3) * (1 + 1e-6));
}

TEST_F(FilterEppTest, SimulatedSpillLearnsFilterDim) {
  const GridLoc qa = {4, 3, 5};
  SpillBound sb(ess_);
  SimulatedOracle oracle(ess_, qa);
  const DiscoveryResult r = sb.Run(&oracle);
  ASSERT_TRUE(r.completed);
  for (const auto& s : r.steps) {
    if (s.spill_dim == 2 && s.completed) {
      EXPECT_DOUBLE_EQ(s.learned_sel, ess_->axis().value(qa[2]));
    }
  }
}

TEST_F(FilterEppTest, EngineLearnsTrueFilterSelectivity) {
  // The data's true filter selectivity: p_retailprice uniform in
  // [1, 2000), filter < 1000 -> ~0.5.
  const EssPoint truth = ComputeTrueSelectivities(*catalog_, *query_);
  EXPECT_NEAR(truth[2], 0.5, 0.05);

  Executor executor(catalog_, ess_->config().cost_model);
  SpillBound sb(ess_);
  EngineOracle oracle(&executor);
  const DiscoveryResult r = sb.Run(&oracle);
  ASSERT_TRUE(r.completed);
  for (const auto& s : r.steps) {
    if (s.spill_dim == 2 && s.completed) {
      EXPECT_NEAR(s.learned_sel, truth[2], 0.02)
          << "engine-observed filter selectivity should match the data";
    }
  }
}

TEST_F(FilterEppTest, TwoDVariantStillJoinOnly) {
  const Query q2 = MakeExampleQueryEq(/*filter_epp=*/false);
  EXPECT_EQ(q2.num_epps(), 2);
  EXPECT_TRUE(q2.Validate(*catalog_).ok());
  EXPECT_EQ(q2.FilterOfEppDimension(0), -1);
  EXPECT_EQ(q2.FilterOfEppDimension(1), -1);
}

}  // namespace
}  // namespace robustqp
