// Tests for the optimizer substrate: cardinality estimation with
// selectivity injection, DP optimality against brute-force plan
// enumeration, the constrained spill-dimension search, and the Plan Cost
// Monotonicity property (Eq. (5)) that underpins every MSO guarantee.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeBranchQuery;
using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTinyCatalog(); }
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(OptimizerTest, EstimatorNativeJoinSelectivity) {
  const Query q = MakeStarQuery(3);
  CardinalityEstimator est(catalog_.get(), &q);
  // f_fk1 has up to 100 distinct values, d1_k exactly 100 -> sel ~ 1/100.
  EXPECT_NEAR(est.NativeJoinSelectivity(0), 0.01, 0.0005);
  // d2_k has 400 distinct -> sel ~ 1/400.
  EXPECT_NEAR(est.NativeJoinSelectivity(1), 1.0 / 400, 0.0005);
}

TEST_F(OptimizerTest, EstimatorFilterSelectivity) {
  const Query q = MakeStarQuery(3);
  CardinalityEstimator est(catalog_.get(), &q);
  // d1_a uniform in [1,10], filter d1_a <= 3 -> ~0.3.
  EXPECT_NEAR(est.FilterSelectivity(0), 0.3, 0.1);
  // d2_a uniform in [1,20], filter <= 10 -> ~0.5.
  EXPECT_NEAR(est.FilterSelectivity(1), 0.5, 0.1);
}

TEST_F(OptimizerTest, EstimatorFilteredRowsAtLeastOne) {
  const Query q = MakeStarQuery(3);
  CardinalityEstimator est(catalog_.get(), &q);
  EXPECT_GE(est.FilteredRows(1, {0}, {}), 1.0);
  EXPECT_DOUBLE_EQ(est.RawRows(0), 4000.0);
}

TEST_F(OptimizerTest, EstimatorInjectionOverridesEppsOnly) {
  const Query q = MakeStarQuery(2);  // joins 0,1 epp; join 2 native
  CardinalityEstimator est(catalog_.get(), &q);
  const EssPoint inj = {0.5, 0.25};
  EXPECT_DOUBLE_EQ(est.JoinSelectivity(0, inj), 0.5);
  EXPECT_DOUBLE_EQ(est.JoinSelectivity(1, inj), 0.25);
  EXPECT_DOUBLE_EQ(est.JoinSelectivity(2, inj), est.NativeJoinSelectivity(2));
}

TEST_F(OptimizerTest, NativeEstimatePointMatchesEstimator) {
  const Query q = MakeStarQuery(2);
  CardinalityEstimator est(catalog_.get(), &q);
  const EssPoint qe = est.NativeEstimatePoint();
  ASSERT_EQ(qe.size(), 2u);
  EXPECT_DOUBLE_EQ(qe[0], est.NativeJoinSelectivity(0));
  EXPECT_DOUBLE_EQ(qe[1], est.NativeJoinSelectivity(1));
}

// --- Brute-force plan enumeration for DP verification -------------------

/// Enumerates every physical plan of `query` (bushy trees over connected
/// subsets, HJ/NLJ both operand orders, plus index nested-loops where an
/// index exists) and calls `fn` on each root.
void EnumeratePlans(const Query& query, const Catalog& catalog,
                    const std::function<void(std::unique_ptr<PlanNode>)>& fn) {
  const int n = query.num_tables();
  std::vector<std::vector<int>> table_filters(static_cast<size_t>(n));
  for (int f = 0; f < static_cast<int>(query.filters().size()); ++f) {
    table_filters[static_cast<size_t>(
        query.TableIndex(query.filters()[static_cast<size_t>(f)].table))]
        .push_back(f);
  }

  // Recursively produce every plan for a table mask.
  std::function<std::vector<std::unique_ptr<PlanNode>>(uint64_t)> gen =
      [&](uint64_t mask) {
        std::vector<std::unique_ptr<PlanNode>> out;
        if ((mask & (mask - 1)) == 0) {
          int t = 0;
          while (!(mask & (uint64_t{1} << t))) ++t;
          auto scan = std::make_unique<PlanNode>();
          scan->op = PlanOp::kSeqScan;
          scan->table_idx = t;
          scan->filter_indices = table_filters[static_cast<size_t>(t)];
          out.push_back(std::move(scan));
          return out;
        }
        for (uint64_t s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
          const uint64_t s2 = mask ^ s1;
          if (s1 > s2) continue;
          std::vector<int> cross;
          for (int j = 0; j < query.num_joins(); ++j) {
            const uint64_t jm = query.JoinTableMask(j);
            if ((jm & mask) != jm) continue;
            if ((jm & s1) && (jm & s2)) cross.push_back(j);
          }
          if (cross.empty()) continue;
          // Index nested-loop applicability per side: single table,
          // exactly one crossing edge, index on its column of that edge.
          auto inlj_ok = [&](uint64_t side) {
            if (cross.size() != 1 || (side & (side - 1)) != 0) return false;
            const JoinPredicate& jp =
                query.joins()[static_cast<size_t>(cross[0])];
            int t = 0;
            while (!(side & (uint64_t{1} << t))) ++t;
            const std::string& tname = query.tables()[static_cast<size_t>(t)];
            if (jp.left_table == tname) {
              return catalog.FindIndex(tname, jp.left_column) != nullptr;
            }
            if (jp.right_table == tname) {
              return catalog.FindIndex(tname, jp.right_column) != nullptr;
            }
            return false;
          };
          auto lefts = gen(s1);
          auto rights = gen(s2);
          for (const auto& l : lefts) {
            for (const auto& r : rights) {
              for (PlanOp op : {PlanOp::kHashJoin, PlanOp::kNLJoin,
                                PlanOp::kSortMergeJoin}) {
                for (int order = 0; order < 2; ++order) {
                  auto node = std::make_unique<PlanNode>();
                  node->op = op;
                  node->join_indices = cross;
                  node->left = order == 0 ? l->Clone() : r->Clone();
                  node->right = order == 0 ? r->Clone() : l->Clone();
                  out.push_back(std::move(node));
                }
              }
              for (int order = 0; order < 2; ++order) {
                const uint64_t inner = order == 0 ? s2 : s1;
                if (!inlj_ok(inner)) continue;
                auto node = std::make_unique<PlanNode>();
                node->op = PlanOp::kIndexNLJoin;
                node->join_indices = cross;
                node->left = order == 0 ? l->Clone() : r->Clone();
                node->right = order == 0 ? r->Clone() : l->Clone();
                out.push_back(std::move(node));
              }
            }
          }
        }
        return out;
      };

  const uint64_t full = (uint64_t{1} << n) - 1;
  for (auto& plan : gen(full)) fn(std::move(plan));
}

TEST_F(OptimizerTest, DpMatchesBruteForceStar) {
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog_.get(), &q);
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    EssPoint inj(3);
    for (double& v : inj) v = std::pow(10.0, rng.UniformDouble(-4.0, 0.0));
    const std::unique_ptr<Plan> dp_plan = opt.Optimize(inj);
    const double dp_cost = opt.PlanCost(*dp_plan, inj);
    double best = std::numeric_limits<double>::infinity();
    EnumeratePlans(q, *catalog_, [&](std::unique_ptr<PlanNode> root) {
      Plan plan(&q, std::move(root));
      best = std::min(best, opt.PlanCost(plan, inj));
    });
    EXPECT_NEAR(dp_cost, best, best * 1e-9) << "trial " << trial;
  }
}

TEST_F(OptimizerTest, DpMatchesBruteForceBranch) {
  const Query q = MakeBranchQuery(3);
  Optimizer opt(catalog_.get(), &q);
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    EssPoint inj(3);
    for (double& v : inj) v = std::pow(10.0, rng.UniformDouble(-4.0, 0.0));
    const std::unique_ptr<Plan> dp_plan = opt.Optimize(inj);
    const double dp_cost = opt.PlanCost(*dp_plan, inj);
    double best = std::numeric_limits<double>::infinity();
    EnumeratePlans(q, *catalog_, [&](std::unique_ptr<PlanNode> root) {
      Plan plan(&q, std::move(root));
      best = std::min(best, opt.PlanCost(plan, inj));
    });
    EXPECT_NEAR(dp_cost, best, best * 1e-9) << "trial " << trial;
  }
}

TEST_F(OptimizerTest, ConstrainedSpillMatchesBruteForce) {
  const Query q = MakeBranchQuery(3);
  Optimizer opt(catalog_.get(), &q);
  const std::vector<bool> unlearned = {true, true, true};
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    EssPoint inj(3);
    for (double& v : inj) v = std::pow(10.0, rng.UniformDouble(-3.0, 0.0));
    for (int dim = 0; dim < 3; ++dim) {
      const std::unique_ptr<Plan> got =
          opt.OptimizeConstrainedSpill(inj, dim, unlearned);
      double best = std::numeric_limits<double>::infinity();
      EnumeratePlans(q, *catalog_, [&](std::unique_ptr<PlanNode> root) {
        Plan plan(&q, std::move(root));
        if (plan.SpillDimension(unlearned) == dim) {
          best = std::min(best, opt.PlanCost(plan, inj));
        }
      });
      if (got == nullptr) {
        EXPECT_TRUE(std::isinf(best));
        continue;
      }
      EXPECT_EQ(got->SpillDimension(unlearned), dim);
      EXPECT_NEAR(opt.PlanCost(*got, inj), best, best * 1e-9)
          << "dim " << dim << " trial " << trial;
    }
  }
}

TEST_F(OptimizerTest, ConstrainedSpillRespectsLearnedDims) {
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog_.get(), &q);
  const EssPoint inj = {0.01, 0.01, 0.01};
  // With dim 0 learnt, a returned plan must spill on the requested dim.
  const std::vector<bool> unlearned = {false, true, true};
  for (int dim = 1; dim <= 2; ++dim) {
    const auto plan = opt.OptimizeConstrainedSpill(inj, dim, unlearned);
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->SpillDimension(unlearned), dim);
  }
}

TEST_F(OptimizerTest, CostPlanConsistentWithDp) {
  // The plan returned by Optimize must cost exactly what the DP claims,
  // i.e. re-costing the reconstruction gives the same optimum for a
  // different location ordering of the same plan.
  const Query q = MakeStarQuery(2);
  Optimizer opt(catalog_.get(), &q);
  const EssPoint a = {1e-3, 1e-2};
  const std::unique_ptr<Plan> plan = opt.Optimize(a);
  const PlanCosting costing = opt.CostPlan(*plan, a);
  EXPECT_GT(costing.total_cost(), 0.0);
  EXPECT_EQ(costing.rows.size(), static_cast<size_t>(plan->num_nodes()));
  // Root cumulative cost equals the total.
  EXPECT_DOUBLE_EQ(costing.cost[0], costing.total_cost());
  // Subtree costs are no larger than the total.
  for (double c : costing.cost) EXPECT_LE(c, costing.total_cost() * (1 + 1e-12));
}

TEST_F(OptimizerTest, TopKTopEntryMatchesOptimizeAndCostsAscend) {
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog_.get(), &q);
  for (const EssPoint& inj :
       {EssPoint{1e-3, 1e-2, 0.1}, EssPoint{0.5, 1e-4, 1e-2}}) {
    const std::unique_ptr<Plan> best = opt.Optimize(inj);
    const std::vector<std::unique_ptr<Plan>> top = opt.OptimizeTopK(inj, 4);
    ASSERT_FALSE(top.empty());
    EXPECT_EQ(top[0]->signature(), best->signature());
    // Costs nondecreasing, plans structurally distinct.
    double prev = -1.0;
    for (size_t i = 0; i < top.size(); ++i) {
      const double c = opt.PlanCost(*top[i], inj);
      EXPECT_GE(c, prev);
      prev = c;
      for (size_t j = i + 1; j < top.size(); ++j) {
        EXPECT_NE(top[i]->signature(), top[j]->signature());
      }
    }
  }
}

TEST_F(OptimizerTest, DpMatchesBruteForceMixedEpps) {
  // Join + filter epps together: exercises the scan-leaf states of the
  // constrained DP and the injected filter selectivities.
  const Query q = testing_util::MakeMixedEppQuery();
  Optimizer opt(catalog_.get(), &q);
  Rng rng(321);
  for (int trial = 0; trial < 8; ++trial) {
    EssPoint inj(3);
    for (double& v : inj) v = std::pow(10.0, rng.UniformDouble(-3.0, 0.0));
    const std::unique_ptr<Plan> dp_plan = opt.Optimize(inj);
    const double dp_cost = opt.PlanCost(*dp_plan, inj);
    double best = std::numeric_limits<double>::infinity();
    EnumeratePlans(q, *catalog_, [&](std::unique_ptr<PlanNode> root) {
      Plan plan(&q, std::move(root));
      best = std::min(best, opt.PlanCost(plan, inj));
    });
    EXPECT_NEAR(dp_cost, best, best * 1e-9) << "trial " << trial;
  }
}

TEST_F(OptimizerTest, ConstrainedSpillOnFilterDim) {
  const Query q = testing_util::MakeMixedEppQuery();
  Optimizer opt(catalog_.get(), &q);
  const EssPoint inj = {0.01, 0.01, 0.3};
  const std::vector<bool> unlearned = {true, true, true};
  // Dimension 2 is the d1 filter: a plan spilling on it must have the d1
  // scan as the first unlearned epp in execution order — brute-force the
  // cheapest such plan and compare.
  const auto got = opt.OptimizeConstrainedSpill(inj, 2, unlearned);
  double best = std::numeric_limits<double>::infinity();
  EnumeratePlans(q, *catalog_, [&](std::unique_ptr<PlanNode> root) {
    Plan plan(&q, std::move(root));
    if (plan.SpillDimension(unlearned) == 2) {
      best = std::min(best, opt.PlanCost(plan, inj));
    }
  });
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->SpillDimension(unlearned), 2);
  EXPECT_NEAR(opt.PlanCost(*got, inj), best, best * 1e-9);
}

// --- PCM property (parameterized sweep) ---------------------------------

struct PcmCase {
  int num_epps;
  uint64_t seed;
};

class PcmPropertyTest : public ::testing::TestWithParam<PcmCase> {};

TEST_P(PcmPropertyTest, CostMonotoneInSelectivities) {
  auto catalog = MakeTinyCatalog();
  const Query q = MakeStarQuery(GetParam().num_epps);
  Optimizer opt(catalog.get(), &q);
  Rng rng(GetParam().seed);
  const int D = q.num_epps();
  for (int trial = 0; trial < 40; ++trial) {
    // Random location and a random dominated location.
    EssPoint hi(static_cast<size_t>(D)), lo(static_cast<size_t>(D));
    for (int d = 0; d < D; ++d) {
      hi[static_cast<size_t>(d)] = std::pow(10.0, rng.UniformDouble(-3.0, 0.0));
      lo[static_cast<size_t>(d)] =
          hi[static_cast<size_t>(d)] * rng.UniformDouble(0.05, 0.8);
    }
    // A plan optimal somewhere in between exercises realistic shapes.
    const std::unique_ptr<Plan> plan = opt.Optimize(lo);
    EXPECT_GT(opt.PlanCost(*plan, hi), opt.PlanCost(*plan, lo))
        << "PCM violated at trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PcmPropertyTest,
                         ::testing::Values(PcmCase{1, 1}, PcmCase{2, 2},
                                           PcmCase{2, 77}, PcmCase{3, 3},
                                           PcmCase{3, 1234}),
                         [](const ::testing::TestParamInfo<PcmCase>& info) {
                           return "D" + std::to_string(info.param.num_epps) +
                                  "_s" + std::to_string(info.param.seed);
                         });

TEST_F(OptimizerTest, CommercialFlavourDiffers) {
  const Query q = MakeStarQuery(2);
  Optimizer pg(catalog_.get(), &q, CostModel::PostgresFlavour());
  Optimizer com(catalog_.get(), &q, CostModel::CommercialFlavour());
  const EssPoint inj = {0.01, 0.01};
  const auto p1 = pg.Optimize(inj);
  // Costs must differ across flavours even if the plan shape coincides.
  EXPECT_NE(pg.PlanCost(*p1, inj), com.PlanCost(*p1, inj));
}

}  // namespace
}  // namespace robustqp
