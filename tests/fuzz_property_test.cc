// Randomized (fuzz-style) property tests: arbitrary schemas, random tree
// join graphs, random error-prone subsets (joins and filters), random
// data skew — for every generated instance, the structural invariants
// and the MSO guarantees must hold. Each seed is an independent database
// + query; failures print the seed for reproduction.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/alignedbound.h"
#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "harness/evaluator.h"
#include "storage/stats_builder.h"
#include "storage/table.h"

namespace robustqp {
namespace {

struct FuzzInstance {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Query> query;
  std::unique_ptr<Ess> ess;
};

/// Generates a random database (3-5 tables, random sizes and skews), a
/// random tree join query over it, random filters, and a random epp set
/// of size 2-3 (possibly including a filter epp).
FuzzInstance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  FuzzInstance inst;
  inst.catalog = std::make_unique<Catalog>();

  const int num_tables = static_cast<int>(rng.UniformInt(3, 5));
  std::vector<std::string> names;
  std::vector<int64_t> sizes;
  for (int t = 0; t < num_tables; ++t) {
    names.push_back("t" + std::to_string(t));
    // One biggish "fact" table, smaller dimensions.
    sizes.push_back(t == 0 ? rng.UniformInt(2000, 6000)
                           : rng.UniformInt(20, 400));
  }

  // Tree join graph: table t (t >= 1) attaches to a random earlier table
  // via key column "k<t>" (serial on the smaller side, skewed FK on the
  // attaching side).
  std::vector<JoinPredicate> joins;
  std::vector<std::vector<std::pair<std::string, std::function<double(Rng&, int64_t)>>>>
      columns(static_cast<size_t>(num_tables));
  for (int t = 0; t < num_tables; ++t) {
    // Every table gets a serial key and a small attribute.
    columns[static_cast<size_t>(t)].push_back(
        {"k" + std::to_string(t),
         [](Rng&, int64_t row) { return static_cast<double>(row + 1); }});
    const int64_t attr_domain = rng.UniformInt(4, 40);
    columns[static_cast<size_t>(t)].push_back(
        {"a" + std::to_string(t), [attr_domain](Rng& r, int64_t) {
           return static_cast<double>(r.UniformInt(1, attr_domain));
         }});
  }
  for (int t = 1; t < num_tables; ++t) {
    const int parent = static_cast<int>(rng.UniformInt(0, t - 1));
    const double theta = rng.UniformDouble(0.2, 1.2);
    auto sampler = std::make_shared<ZipfSampler>(sizes[static_cast<size_t>(parent)], theta);
    const std::string fk = "fk" + std::to_string(t);
    // The larger side holds the FK into the smaller side's key.
    const int big = sizes[static_cast<size_t>(t)] >= sizes[static_cast<size_t>(parent)] ? t : parent;
    const int small = big == t ? parent : t;
    columns[static_cast<size_t>(big)].push_back(
        {fk, [sampler](Rng& r, int64_t) {
           return static_cast<double>(sampler->Sample(&r));
         }});
    joins.push_back({names[static_cast<size_t>(big)], fk,
                     names[static_cast<size_t>(small)],
                     "k" + std::to_string(small), ""});
  }

  for (int t = 0; t < num_tables; ++t) {
    std::vector<ColumnDef> defs;
    for (const auto& [cname, gen] : columns[static_cast<size_t>(t)]) {
      defs.push_back({cname, DataType::kInt64});
    }
    auto table = std::make_shared<Table>(TableSchema(names[static_cast<size_t>(t)], defs));
    for (int64_t r = 0; r < sizes[static_cast<size_t>(t)]; ++r) {
      for (size_t c = 0; c < columns[static_cast<size_t>(t)].size(); ++c) {
        table->column(static_cast<int>(c))
            .AppendInt(static_cast<int64_t>(columns[static_cast<size_t>(t)][c].second(rng, r)));
      }
    }
    RQP_CHECK(table->Finalize().ok());
    auto stats = ComputeTableStats(*table);
    RQP_CHECK(inst.catalog->AddTable(std::move(table), std::move(stats)).ok());
  }
  // Index some keys so the index-join path participates.
  for (int t = 1; t < num_tables; ++t) {
    if (rng.Bernoulli(0.7)) {
      RQP_CHECK(inst.catalog->BuildIndex(names[static_cast<size_t>(t)],
                                         "k" + std::to_string(t)).ok() ||
                true);
    }
  }

  // Random filters on up to two non-fact tables.
  std::vector<FilterPredicate> filters;
  for (int t = 1; t < num_tables && filters.size() < 2; ++t) {
    if (rng.Bernoulli(0.6)) {
      filters.push_back({names[static_cast<size_t>(t)], "a" + std::to_string(t),
                         CompareOp::kLe,
                         static_cast<double>(rng.UniformInt(2, 20))});
    }
  }

  // Random epp set: 2-3 dims, mostly joins, sometimes a filter.
  std::vector<EppRef> epps;
  const int want = static_cast<int>(rng.UniformInt(2, 3));
  std::vector<int> join_order;
  for (int j = 0; j < static_cast<int>(joins.size()); ++j) join_order.push_back(j);
  for (int j = static_cast<int>(join_order.size()) - 1; j > 0; --j) {
    std::swap(join_order[static_cast<size_t>(j)],
              join_order[static_cast<size_t>(rng.UniformInt(0, j))]);
  }
  for (int j : join_order) {
    if (static_cast<int>(epps.size()) >= want) break;
    epps.push_back(EppRef::Join(j));
  }
  if (!filters.empty() && static_cast<int>(epps.size()) < want + 1 &&
      rng.Bernoulli(0.5)) {
    epps.push_back(EppRef::Filter(0));
  }

  inst.query = std::make_unique<Query>("fuzz" + std::to_string(seed), names,
                                       joins, filters, epps);
  RQP_CHECK(inst.query->Validate(*inst.catalog).ok());

  Ess::Config config;
  config.points_per_dim = inst.query->num_epps() <= 2 ? 10 : 6;
  config.min_sel = 1e-4;
  inst.ess = Ess::Build(*inst.catalog, *inst.query, config);
  return inst;
}

class FuzzPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPropertyTest, GuaranteesHoldOnRandomInstance) {
  FuzzInstance inst = MakeInstance(GetParam());
  const Ess& ess = *inst.ess;
  const int D = ess.dims();

  // Structural: OCS monotonicity. Non-strict here: random instances can
  // have expected cardinality deltas below double-precision granularity
  // (tiny tables x tiny selectivities), where the strict inequality
  // underflows. The curated suite tests assert strictness.
  for (int64_t lin = 0; lin < ess.num_locations(); lin += 3) {
    const GridLoc loc = ess.FromLinear(lin);
    for (int d = 0; d < D; ++d) {
      if (loc[static_cast<size_t>(d)] + 1 >= ess.points()) continue;
      GridLoc up = loc;
      ++up[static_cast<size_t>(d)];
      ASSERT_GE(ess.OptimalCost(up), ess.OptimalCost(loc))
          << "seed " << GetParam();
    }
  }

  // Algorithms: exhaustive over the (small) grid.
  SpillBound sb(&ess);
  const SuboptimalityStats s_sb = Evaluate(sb, ess);
  EXPECT_LE(s_sb.mso, SpillBound::MsoGuarantee(D) * (1 + 1e-6))
      << "seed " << GetParam();

  PlanBouquet pb(&ess);
  const SuboptimalityStats s_pb = Evaluate(pb, ess);
  EXPECT_LE(s_pb.mso, pb.MsoGuarantee() * (1 + 1e-6)) << "seed " << GetParam();

  AlignedBound ab(&ess);
  const SuboptimalityStats s_ab = Evaluate(ab, ess);
  EXPECT_LE(s_ab.mso, SpillBound::MsoGuarantee(D) * (1 + 1e-6))
      << "seed " << GetParam();
}

TEST_P(FuzzPropertyTest, RefinedBuildMatchesExhaustiveOnRandomInstance) {
  FuzzInstance inst = MakeInstance(GetParam());
  const Ess& exhaustive = *inst.ess;

  Ess::Config config = exhaustive.config();
  config.build_mode = EssBuildMode::kExact;
  const std::unique_ptr<Ess> refined =
      Ess::Build(*inst.catalog, *inst.query, config);

  ASSERT_EQ(exhaustive.num_locations(), refined->num_locations());
  for (int64_t lin = 0; lin < exhaustive.num_locations(); ++lin) {
    ASSERT_EQ(exhaustive.OptimalCost(lin), refined->OptimalCost(lin))
        << "seed " << GetParam() << " lin " << lin;
    ASSERT_EQ(exhaustive.OptimalPlan(lin)->signature(),
              refined->OptimalPlan(lin)->signature())
        << "seed " << GetParam() << " lin " << lin;
  }
  EXPECT_LE(refined->build_stats().optimizer_calls,
            exhaustive.build_stats().optimizer_calls)
      << "seed " << GetParam();
}

TEST_P(FuzzPropertyTest, EngineDiscoveryCompletesOnRandomInstance) {
  FuzzInstance inst = MakeInstance(GetParam() + 1000);
  Executor executor(inst.catalog.get(), inst.ess->config().cost_model);
  SpillBound sb(inst.ess.get());
  EngineOracle oracle(&executor);
  const DiscoveryResult r = sb.Run(&oracle);
  EXPECT_TRUE(r.completed) << "seed " << GetParam();
  EXPECT_GT(r.total_cost, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010, 1111, 1212, 1313,
                                           1414, 1515, 1616, 1717, 1818, 1919,
                                           2020),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace robustqp
