// Tests for the grid-refinement ESS builder: the kExact mode must
// reproduce the exhaustive sweep's cost and plan surfaces bit-for-bit
// while spending far fewer optimizer calls, and the kRecost mode's
// reported deviation bound must soundly cover the true deviation.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ess/ess.h"
#include "server/context_cache.h"
#include "test_util.h"
#include "workloads/queries.h"

namespace robustqp {
namespace {

using testing_util::MakeMixedEppQuery;
using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

Ess::Config BaseConfig(int points) {
  Ess::Config config;
  config.points_per_dim = points;
  config.min_sel = 1e-4;
  config.num_threads = 1;
  // The goldens below measure pure refinement; disable the exhaustive
  // fallback (some suite surfaces legitimately cross the default 0.5
  // call fraction — the fallback has its own tests).
  config.refine_fallback_fraction = 1.0;
  return config;
}

/// Asserts the two surfaces agree bit-for-bit: identical optimal costs
/// and structurally identical optimal plans at every grid location.
void ExpectIdenticalSurfaces(const Ess& exhaustive, const Ess& refined) {
  ASSERT_EQ(exhaustive.num_locations(), refined.num_locations());
  for (int64_t lin = 0; lin < exhaustive.num_locations(); ++lin) {
    ASSERT_EQ(exhaustive.OptimalCost(lin), refined.OptimalCost(lin))
        << "cost mismatch at lin=" << lin;
    ASSERT_EQ(exhaustive.OptimalPlan(lin)->signature(),
              refined.OptimalPlan(lin)->signature())
        << "plan mismatch at lin=" << lin;
  }
  ASSERT_EQ(exhaustive.num_contours(), refined.num_contours());
  for (int i = 0; i < exhaustive.num_contours(); ++i) {
    EXPECT_EQ(exhaustive.ContourCost(i), refined.ContourCost(i));
    EXPECT_EQ(exhaustive.FrontierLocations(i), refined.FrontierLocations(i));
  }
}

void RunGolden(const Catalog& catalog, const Query& query, int points) {
  Ess::Config config = BaseConfig(points);
  auto exhaustive = Ess::Build(catalog, query, config);
  config.build_mode = EssBuildMode::kExact;
  auto refined = Ess::Build(catalog, query, config);

  ExpectIdenticalSurfaces(*exhaustive, *refined);
  EXPECT_LT(refined->build_stats().optimizer_calls,
            exhaustive->build_stats().optimizer_calls);
  // Every location is either optimized directly or recosted, exactly once.
  EXPECT_EQ(refined->build_stats().exact_points +
                refined->build_stats().recosted_points,
            refined->num_locations());
  EXPECT_GE(refined->build_stats().optimizer_calls,
            refined->build_stats().exact_points);
  EXPECT_FALSE(refined->build_stats().fell_back);
}

TEST(EssBuilderTest, ExactMatchesExhaustiveOnTinyStar2D) {
  auto catalog = MakeTinyCatalog();
  const Query query = MakeStarQuery(2);
  RunGolden(*catalog, query, 24);
}

TEST(EssBuilderTest, ExactMatchesExhaustiveOnTinyStar3D) {
  auto catalog = MakeTinyCatalog();
  const Query query = MakeStarQuery(3);
  RunGolden(*catalog, query, 10);
}

TEST(EssBuilderTest, ExactMatchesExhaustiveOnMixedEpps) {
  auto catalog = MakeTinyCatalog();
  const Query query = MakeMixedEppQuery();
  RunGolden(*catalog, query, 10);
}

TEST(EssBuilderTest, ExactMatchesExhaustiveOnSuiteQueries) {
  const std::shared_ptr<Catalog> catalog = ContextCache::TpcdsCatalog();
  for (const char* id : {"2D_Q91", "3D_Q96", "3D_Q15"}) {
    SCOPED_TRACE(id);
    const Query query = MakeSuiteQuery(id);
    RunGolden(*catalog, query, query.num_epps() == 2 ? 20 : 10);
  }
}

TEST(EssBuilderTest, ExactCutsOptimizerCallsAtLeast5xOn2D40) {
  const std::shared_ptr<Catalog> catalog = ContextCache::TpcdsCatalog();
  const Query query = MakeSuiteQuery("2D_Q91");
  Ess::Config config = BaseConfig(40);
  config.build_mode = EssBuildMode::kExact;
  auto refined = Ess::Build(*catalog, query, config);
  EXPECT_LE(refined->build_stats().optimizer_calls * 5,
            refined->num_locations());

  config.build_mode = EssBuildMode::kExhaustive;
  auto exhaustive = Ess::Build(*catalog, query, config);
  ExpectIdenticalSurfaces(*exhaustive, *refined);
}

TEST(EssBuilderTest, LevelParallelRefinementIsDeterministic) {
  // The corner batches of each refinement level are optimized in
  // parallel; the merge (ascending linear order) must make the surface,
  // the plan-pool interning order, and the build stats independent of
  // the thread count.
  const std::shared_ptr<Catalog> catalog = ContextCache::TpcdsCatalog();
  const Query query = MakeSuiteQuery("2D_Q91");
  Ess::Config config = BaseConfig(20);
  config.build_mode = EssBuildMode::kExact;
  auto serial = Ess::Build(*catalog, query, config);
  config.num_threads = 4;
  auto parallel = Ess::Build(*catalog, query, config);

  ExpectIdenticalSurfaces(*serial, *parallel);
  EXPECT_EQ(serial->build_stats().optimizer_calls,
            parallel->build_stats().optimizer_calls);
  EXPECT_EQ(serial->build_stats().exact_points,
            parallel->build_stats().exact_points);
  EXPECT_EQ(serial->build_stats().recosted_points,
            parallel->build_stats().recosted_points);
  EXPECT_EQ(serial->build_stats().cells_certified,
            parallel->build_stats().cells_certified);
  EXPECT_EQ(serial->build_stats().cells_refined,
            parallel->build_stats().cells_refined);
  EXPECT_EQ(serial->build_stats().fell_back, parallel->build_stats().fell_back);
}

TEST(EssBuilderTest, FallbackToExhaustiveSweepOnLowFraction) {
  // With a near-zero call budget the refinement abandons itself after
  // the first corner batch and sweeps the rest of the grid; the result
  // must still be the exact surface, now with every point optimized.
  auto catalog = MakeTinyCatalog();
  const Query query = MakeStarQuery(2);
  Ess::Config config = BaseConfig(16);
  auto exhaustive = Ess::Build(*catalog, query, config);

  config.build_mode = EssBuildMode::kExact;
  config.refine_fallback_fraction = 0.01;
  auto fallen = Ess::Build(*catalog, query, config);

  EXPECT_TRUE(fallen->build_stats().fell_back);
  EXPECT_EQ(fallen->build_stats().exact_points, fallen->num_locations());
  ExpectIdenticalSurfaces(*exhaustive, *fallen);
}

TEST(EssBuilderTest, RecostBoundCoversTrueDeviation) {
  const std::shared_ptr<Catalog> catalog = ContextCache::TpcdsCatalog();
  const Query query = MakeSuiteQuery("2D_Q91");
  Ess::Config config = BaseConfig(20);
  auto exhaustive = Ess::Build(*catalog, query, config);

  for (double lambda : {1.2, 2.0, 4.0}) {
    SCOPED_TRACE(lambda);
    config.build_mode = EssBuildMode::kRecost;
    config.recost_lambda = lambda;
    auto approx = Ess::Build(*catalog, query, config);

    double true_dev = 1.0;
    for (int64_t lin = 0; lin < exhaustive->num_locations(); ++lin) {
      // The approximate surface can only over-estimate the optimum.
      ASSERT_GE(approx->OptimalCost(lin),
                exhaustive->OptimalCost(lin) * (1.0 - 1e-12));
      true_dev = std::max(
          true_dev, approx->OptimalCost(lin) / exhaustive->OptimalCost(lin));
    }
    const Ess::BuildStats& stats = approx->build_stats();
    EXPECT_GE(stats.max_deviation_bound, true_dev * (1.0 - 1e-12));
    EXPECT_GE(stats.max_deviation_bound, 1.0);
    EXPECT_LE(stats.optimizer_calls, exhaustive->build_stats().optimizer_calls);
  }
}

TEST(EssBuilderTest, RecostLambdaTradesCallsForDeviation) {
  const std::shared_ptr<Catalog> catalog = ContextCache::TpcdsCatalog();
  const Query query = MakeSuiteQuery("2D_Q91");
  Ess::Config config = BaseConfig(20);
  config.build_mode = EssBuildMode::kRecost;
  config.recost_lambda = 1.05;
  auto tight = Ess::Build(*catalog, query, config);
  config.recost_lambda = 8.0;
  auto loose = Ess::Build(*catalog, query, config);
  EXPECT_LE(loose->build_stats().optimizer_calls,
            tight->build_stats().optimizer_calls);
}

}  // namespace
}  // namespace robustqp
