// Property tests for the discovery algorithms: the paper's theorems and
// lemmas checked exhaustively over small ESS instances.
//
//  * Oracle semantics = Lemma 3.1 (learn exactly, or certify a half-space)
//  * PlanBouquet: completion everywhere, MSO <= 4 (1+lambda) rho
//  * SpillBound: completion everywhere, MSO <= D^2 + 3D (Theorem 4.5),
//    2D bound of 10 (Theorem 4.2), <= 2 plans per contour + one contour
//    with 3 in 2D (Lemma 4.1), repeat-execution bound (Lemma 4.4)
//  * AlignedBound: completion everywhere, MSO <= D^2 + 3D and empirically
//    <= SpillBound's, at most |parts| <= D executions per contour visit

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "core/alignedbound.h"
#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "harness/evaluator.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeBranchQuery;
using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

struct EssBundle {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Query> query;
  std::unique_ptr<Ess> ess;
};

EssBundle MakeEss(int num_epps, bool branch, int points) {
  EssBundle b;
  b.catalog = MakeTinyCatalog();
  b.query = std::make_unique<Query>(branch ? MakeBranchQuery(num_epps)
                                           : MakeStarQuery(num_epps));
  Ess::Config config;
  config.points_per_dim = points;
  config.min_sel = 1e-4;
  b.ess = Ess::Build(*b.catalog, *b.query, config);
  return b;
}

// --- Oracle semantics ----------------------------------------------------

TEST(SimulatedOracleTest, FullExecutionSemantics) {
  EssBundle b = MakeEss(2, false, 12);
  const GridLoc qa = {6, 6};
  SimulatedOracle oracle(b.ess.get(), qa);
  const Plan* plan = b.ess->OptimalPlan(qa);
  const double cost = b.ess->OptimalCost(qa);

  const ExecOutcome done = oracle.ExecuteFull(*plan, cost * 1.01);
  EXPECT_TRUE(done.completed);
  EXPECT_NEAR(done.cost_charged, cost, cost * 1e-9);

  const ExecOutcome aborted = oracle.ExecuteFull(*plan, cost * 0.5);
  EXPECT_FALSE(aborted.completed);
  EXPECT_DOUBLE_EQ(aborted.cost_charged, cost * 0.5);
}

TEST(SimulatedOracleTest, SpillLemma31Semantics) {
  // Lemma 3.1: spilling plan P with budget Cost(P, q) either learns the
  // exact selectivity of the spilled epp or certifies q_a.j > q.j.
  EssBundle b = MakeEss(2, false, 12);
  const std::vector<double> no_learned = {-1.0, -1.0};
  const std::vector<bool> unlearned = {true, true};
  for (int qa0 = 0; qa0 < 12; qa0 += 3) {
    for (int qa1 = 0; qa1 < 12; qa1 += 3) {
      const GridLoc qa = {qa0, qa1};
      SimulatedOracle oracle(b.ess.get(), qa);
      for (int q0 = 0; q0 < 12; q0 += 4) {
        for (int q1 = 0; q1 < 12; q1 += 4) {
          const GridLoc loc = {q0, q1};
          const Plan* plan = b.ess->OptimalPlan(loc);
          const int dim = plan->SpillDimension(unlearned);
          ASSERT_GE(dim, 0);
          const double budget = b.ess->OptimalCost(loc);
          const ExecOutcome out =
              oracle.ExecuteSpill(*plan, dim, budget, no_learned);
          if (qa[static_cast<size_t>(dim)] <= loc[static_cast<size_t>(dim)]) {
            EXPECT_TRUE(out.completed)
                << "must learn exactly when qa.j <= q.j";
            EXPECT_DOUBLE_EQ(
                out.learned_sel,
                b.ess->axis().value(qa[static_cast<size_t>(dim)]));
          } else if (!out.completed) {
            // Certified half-space must be sound and cover loc's coord.
            EXPECT_GE(out.learned_floor, loc[static_cast<size_t>(dim)]);
            EXPECT_LT(out.learned_floor, qa[static_cast<size_t>(dim)]);
            EXPECT_DOUBLE_EQ(out.cost_charged, budget);
          }
        }
      }
    }
  }
}

TEST(SimulatedOracleTest, SpillChargesAtMostBudget) {
  EssBundle b = MakeEss(2, false, 12);
  SimulatedOracle oracle(b.ess.get(), {11, 11});
  const std::vector<double> no_learned = {-1.0, -1.0};
  const Plan* plan = b.ess->OptimalPlan(GridLoc{3, 3});
  const double budget = b.ess->OptimalCost(GridLoc{3, 3});
  const ExecOutcome out = oracle.ExecuteSpill(
      *plan, plan->SpillDimension({true, true}), budget, no_learned);
  EXPECT_LE(out.cost_charged, budget * (1 + 1e-9));
}

// --- PlanBouquet ---------------------------------------------------------

class PlanBouquetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new EssBundle(MakeEss(2, false, 16));
  }
  static EssBundle* bundle_;
};
EssBundle* PlanBouquetTest::bundle_ = nullptr;

TEST_F(PlanBouquetTest, CompletesEverywhereWithinGuarantee) {
  PlanBouquet pb(bundle_->ess.get(), {0.2, true});
  const SuboptimalityStats stats = Evaluate(pb, *bundle_->ess);
  EXPECT_LE(stats.mso, pb.MsoGuarantee() * (1 + 1e-6));
  EXPECT_GE(stats.mso, 1.0);
  EXPECT_GE(stats.aso, 1.0);
  EXPECT_LE(stats.aso, stats.mso);
}

TEST_F(PlanBouquetTest, AnorexicReductionShrinksRho) {
  PlanBouquet full(bundle_->ess.get(), {0.0, false});
  PlanBouquet reduced(bundle_->ess.get(), {0.2, true});
  EXPECT_LE(reduced.rho(), full.rho());
  EXPECT_EQ(full.rho(), full.rho_original());
  EXPECT_GE(reduced.rho(), 1);
}

TEST_F(PlanBouquetTest, UnreducedAlsoCompletesEverywhere) {
  PlanBouquet pb(bundle_->ess.get(), {0.0, false});
  const SuboptimalityStats stats = Evaluate(pb, *bundle_->ess);
  EXPECT_LE(stats.mso, pb.MsoGuarantee() * (1 + 1e-6));
}

TEST_F(PlanBouquetTest, BouquetSizeSane) {
  PlanBouquet pb(bundle_->ess.get(), {0.2, true});
  EXPECT_GE(pb.BouquetSize(), 1);
  EXPECT_LE(pb.BouquetSize(), bundle_->ess->pool().size());
}

TEST_F(PlanBouquetTest, StepsAreContourOrdered) {
  PlanBouquet pb(bundle_->ess.get(), {0.2, true});
  SimulatedOracle oracle(bundle_->ess.get(), {12, 9});
  const DiscoveryResult r = pb.Run(&oracle);
  ASSERT_TRUE(r.completed);
  for (size_t i = 1; i < r.steps.size(); ++i) {
    EXPECT_GE(r.steps[i].contour, r.steps[i - 1].contour);
  }
  EXPECT_TRUE(r.steps.back().completed);
}

// --- SpillBound ----------------------------------------------------------

struct SbCase {
  int num_epps;
  bool branch;
  int points;
};

class SpillBoundPropertyTest : public ::testing::TestWithParam<SbCase> {};

TEST_P(SpillBoundPropertyTest, CompletesEverywhereWithinGuarantee) {
  EssBundle b = MakeEss(GetParam().num_epps, GetParam().branch,
                        GetParam().points);
  SpillBound sb(b.ess.get());
  const SuboptimalityStats stats = Evaluate(sb, *b.ess);
  EXPECT_LE(stats.mso,
            SpillBound::MsoGuarantee(GetParam().num_epps) * (1 + 1e-6))
      << "worst at " << stats.worst_location;
  EXPECT_GE(stats.mso, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpillBoundPropertyTest,
    ::testing::Values(SbCase{1, false, 24}, SbCase{2, false, 16},
                      SbCase{2, true, 16}, SbCase{3, false, 8},
                      SbCase{3, true, 8}),
    [](const ::testing::TestParamInfo<SbCase>& info) {
      return std::string(info.param.branch ? "branch" : "star") +
             std::to_string(info.param.num_epps) + "_p" +
             std::to_string(info.param.points);
    });

class SpillBoundTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new EssBundle(MakeEss(2, false, 16));
  }
  static EssBundle* bundle_;
};
EssBundle* SpillBoundTest::bundle_ = nullptr;

TEST_F(SpillBoundTest, TwoDimensionalBoundOfTen) {
  SpillBound sb(bundle_->ess.get());
  const SuboptimalityStats stats = Evaluate(sb, *bundle_->ess);
  EXPECT_LE(stats.mso, 10.0 * (1 + 1e-6));  // Theorem 4.2
}

TEST_F(SpillBoundTest, Lemma41ExecutionsPerContour2D) {
  // 2D: at most two plans per contour, except at most one contour with
  // three (Lemma 4.1).
  SpillBound sb(bundle_->ess.get());
  for (int64_t lin = 0; lin < bundle_->ess->num_locations(); lin += 3) {
    SimulatedOracle oracle(bundle_->ess.get(), bundle_->ess->FromLinear(lin));
    const DiscoveryResult r = sb.Run(&oracle);
    ASSERT_TRUE(r.completed);
    std::map<int, int> per_contour;
    for (const auto& s : r.steps) ++per_contour[s.contour];
    int three_count = 0;
    for (const auto& [contour, n] : per_contour) {
      EXPECT_LE(n, 3);
      if (n == 3) ++three_count;
    }
    EXPECT_LE(three_count, 1) << "at qa=" << lin;
  }
}

TEST_F(SpillBoundTest, LearnedSelectivitiesAreExact) {
  SpillBound sb(bundle_->ess.get());
  const GridLoc qa = {10, 5};
  SimulatedOracle oracle(bundle_->ess.get(), qa);
  const DiscoveryResult r = sb.Run(&oracle);
  ASSERT_TRUE(r.completed);
  for (const auto& s : r.steps) {
    if (s.spill_dim >= 0 && s.completed) {
      EXPECT_DOUBLE_EQ(
          s.learned_sel,
          bundle_->ess->axis().value(qa[static_cast<size_t>(s.spill_dim)]));
    }
  }
}

TEST_F(SpillBoundTest, ContoursAreVisitedInOrder) {
  SpillBound sb(bundle_->ess.get());
  SimulatedOracle oracle(bundle_->ess.get(), {14, 14});
  const DiscoveryResult r = sb.Run(&oracle);
  ASSERT_TRUE(r.completed);
  for (size_t i = 1; i < r.steps.size(); ++i) {
    EXPECT_GE(r.steps[i].contour, r.steps[i - 1].contour);
  }
}

TEST_F(SpillBoundTest, RepeatExecutionBound) {
  // Lemma 4.4: fresh executions per contour <= D; repeats across the whole
  // run <= D (D - 1) / 2.
  EssBundle b = MakeEss(3, false, 8);
  SpillBound sb(b.ess.get());
  const int D = 3;
  for (int64_t lin = 0; lin < b.ess->num_locations(); lin += 5) {
    SimulatedOracle oracle(b.ess.get(), b.ess->FromLinear(lin));
    const DiscoveryResult r = sb.Run(&oracle);
    ASSERT_TRUE(r.completed);
    std::map<std::pair<int, int>, int> spill_execs;  // (contour, dim) -> n
    std::map<int, std::set<int>> fresh;              // contour -> dims
    for (const auto& s : r.steps) {
      if (s.spill_dim < 0) continue;
      ++spill_execs[{s.contour, s.spill_dim}];
      fresh[s.contour].insert(s.spill_dim);
    }
    int repeats = 0;
    for (const auto& [key, n] : spill_execs) repeats += n - 1;
    EXPECT_LE(repeats, D * (D - 1) / 2) << "qa=" << lin;
    for (const auto& [contour, dims] : fresh) {
      EXPECT_LE(static_cast<int>(dims.size()), D);
    }
  }
}

TEST_F(SpillBoundTest, OneDimensionalQueryIsPlanBouquet) {
  EssBundle b = MakeEss(1, false, 24);
  SpillBound sb(b.ess.get());
  const SuboptimalityStats stats = Evaluate(sb, *b.ess);
  // 1D PlanBouquet guarantee: 4.
  EXPECT_LE(stats.mso, 4.0 * (1 + 1e-6));
  // And no spill executions at all.
  SimulatedOracle oracle(b.ess.get(), {20});
  const DiscoveryResult r = sb.Run(&oracle);
  for (const auto& s : r.steps) EXPECT_EQ(s.spill_dim, -1);
}

// --- AlignedBound --------------------------------------------------------

class AlignedBoundPropertyTest : public ::testing::TestWithParam<SbCase> {};

TEST_P(AlignedBoundPropertyTest, CompletesEverywhereWithinQuadraticBound) {
  EssBundle b = MakeEss(GetParam().num_epps, GetParam().branch,
                        GetParam().points);
  AlignedBound ab(b.ess.get());
  const SuboptimalityStats stats = Evaluate(ab, *b.ess);
  const auto [lower, upper] = AlignedBound::MsoGuaranteeRange(GetParam().num_epps);
  EXPECT_LE(stats.mso, upper * (1 + 1e-6));
  EXPECT_GE(stats.mso, 1.0);
  (void)lower;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlignedBoundPropertyTest,
    ::testing::Values(SbCase{2, false, 16}, SbCase{2, true, 16},
                      SbCase{3, false, 8}, SbCase{3, true, 8}),
    [](const ::testing::TestParamInfo<SbCase>& info) {
      return std::string(info.param.branch ? "branch" : "star") +
             std::to_string(info.param.num_epps) + "_p" +
             std::to_string(info.param.points);
    });

TEST(AlignedBoundTest, AtMostDExecutionsPerContourVisit) {
  EssBundle b = MakeEss(3, false, 8);
  AlignedBound ab(b.ess.get());
  double max_penalty = 0.0;
  for (int64_t lin = 0; lin < b.ess->num_locations(); lin += 7) {
    SimulatedOracle oracle(b.ess.get(), b.ess->FromLinear(lin));
    const DiscoveryResult r = ab.Run(&oracle);
    ASSERT_TRUE(r.completed);
    max_penalty = std::max(max_penalty, r.max_replacement_penalty);
  }
  EXPECT_GE(max_penalty, 1.0);
}

TEST(AlignedBoundTest, NoWorseThanSpillBoundOnAverage) {
  EssBundle b = MakeEss(2, false, 16);
  SpillBound sb(b.ess.get());
  AlignedBound ab(b.ess.get());
  const SuboptimalityStats s_sb = Evaluate(sb, *b.ess);
  const SuboptimalityStats s_ab = Evaluate(ab, *b.ess);
  // AB exploits alignment where it helps; across the ESS it should not be
  // materially worse than SB (allow 10% slack for discrete effects).
  EXPECT_LE(s_ab.aso, s_sb.aso * 1.10);
  EXPECT_LE(s_ab.mso, s_sb.mso * 1.25);
}

// --- Native baseline -----------------------------------------------------

TEST(NativeBaselineTest, WorstCaseDominatesEstimatePointCase) {
  EssBundle b = MakeEss(2, false, 16);
  const SuboptimalityStats worst = EvaluateNativeWorstCase(*b.ess);
  const SuboptimalityStats at_est = EvaluateNativeAtEstimate(*b.ess);
  EXPECT_GE(worst.mso, at_est.mso * (1 - 1e-9));
  EXPECT_GE(worst.mso, 1.0);
}

TEST(NativeBaselineTest, RobustAlgorithmsBeatNativeWorstCase) {
  EssBundle b = MakeEss(2, false, 16);
  SpillBound sb(b.ess.get());
  const SuboptimalityStats s_sb = Evaluate(sb, *b.ess);
  const SuboptimalityStats worst = EvaluateNativeWorstCase(*b.ess);
  // The whole point of the paper: bounded discovery beats worst-case
  // native optimization (which is unbounded as the ESS grows).
  EXPECT_LT(s_sb.mso, worst.mso);
}

// --- Evaluator utilities -------------------------------------------------

TEST(EvaluatorTest, HistogramBucketsCountAll) {
  SuboptimalityStats stats;
  stats.subopt = {1.0, 2.5, 5.0, 5.1, 22.0, 97.0, 1000.0};
  const std::vector<int64_t> h = SuboptHistogram(stats, 5.0, 4);
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 3);  // 1.0, 2.5, 5.0
  EXPECT_EQ(h[1], 1);  // 5.1
  EXPECT_EQ(h[2], 0);
  EXPECT_EQ(h[3], 3);  // 22, 97, 1000 clamp into the last bucket
  EXPECT_EQ(h[0] + h[1] + h[2] + h[3], 7);
}

TEST(EvaluatorTest, FractionWithin) {
  SuboptimalityStats stats;
  stats.subopt = {1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(stats.FractionWithin(5.0), 0.75);
  EXPECT_DOUBLE_EQ(stats.FractionWithin(0.5), 0.0);
  EXPECT_DOUBLE_EQ(stats.FractionWithin(100.0), 1.0);
}

}  // namespace
}  // namespace robustqp
