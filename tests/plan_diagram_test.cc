// Tests for the plan-diagram module: native diagram statistics, the
// global anorexic reduction (correctness of the (1+lambda) threshold,
// monotone shrinkage in lambda), and the diagram-level contour densities
// behind PlanBouquet's rho_RED.

#include <gtest/gtest.h>

#include <memory>

#include "core/plan_diagram.h"
#include "core/planbouquet.h"
#include "harness/evaluator.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

class PlanDiagramTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeTinyCatalog().release();
    query_ = new Query(MakeStarQuery(2));
    Ess::Config config;
    config.points_per_dim = 16;
    config.min_sel = 1e-4;
    ess_ = Ess::Build(*catalog_, *query_, config).release();
  }
  static Catalog* catalog_;
  static Query* query_;
  static Ess* ess_;
};
Catalog* PlanDiagramTest::catalog_ = nullptr;
Query* PlanDiagramTest::query_ = nullptr;
Ess* PlanDiagramTest::ess_ = nullptr;

TEST_F(PlanDiagramTest, NativeDiagramMatchesEss) {
  PlanDiagram diagram(ess_);
  for (int64_t lin = 0; lin < ess_->num_locations(); lin += 7) {
    EXPECT_EQ(diagram.PlanAt(lin), ess_->OptimalPlan(lin));
    EXPECT_DOUBLE_EQ(diagram.CostAt(lin), ess_->OptimalCost(lin));
  }
  EXPECT_EQ(static_cast<int>(diagram.DistinctPlans().size()),
            ess_->pool().size());
}

TEST_F(PlanDiagramTest, StatsAreSane) {
  PlanDiagram diagram(ess_);
  const PlanDiagramStats stats = diagram.Stats();
  EXPECT_EQ(stats.num_plans, ess_->pool().size());
  EXPECT_GT(stats.largest_region_fraction, 0.0);
  EXPECT_LE(stats.largest_region_fraction, 1.0);
  EXPECT_GE(stats.area_gini, 0.0);
  EXPECT_LE(stats.area_gini, 1.0);
}

TEST_F(PlanDiagramTest, ReductionRespectsCostThreshold) {
  PlanDiagram diagram(ess_);
  const double lambda = 0.2;
  diagram.Reduce(lambda);
  for (int64_t lin = 0; lin < ess_->num_locations(); ++lin) {
    EXPECT_LE(diagram.CostAt(lin),
              ess_->OptimalCost(lin) * (1 + lambda) * (1 + 1e-9));
    // The recorded cost really is the assigned plan's cost there.
    const EssPoint q = ess_->SelAt(ess_->FromLinear(lin));
    EXPECT_NEAR(diagram.CostAt(lin),
                ess_->optimizer().PlanCost(*diagram.PlanAt(lin), q),
                diagram.CostAt(lin) * 1e-9);
  }
}

TEST_F(PlanDiagramTest, ReductionShrinksWithLambda) {
  int prev = ess_->pool().size() + 1;
  for (double lambda : {0.0, 0.1, 0.2, 0.5, 1.0}) {
    PlanDiagram diagram(ess_);
    diagram.Reduce(lambda);
    const int n = static_cast<int>(diagram.DistinctPlans().size());
    EXPECT_LE(n, prev) << "lambda " << lambda;
    prev = n;
  }
  // The paper's anorexic observation: a small lambda already collapses
  // the diagram dramatically.
  PlanDiagram diagram(ess_);
  diagram.Reduce(0.2);
  EXPECT_LT(static_cast<int>(diagram.DistinctPlans().size()),
            ess_->pool().size());
}

TEST_F(PlanDiagramTest, ZeroLambdaKeepsOptimalCosts) {
  PlanDiagram diagram(ess_);
  diagram.Reduce(0.0);
  for (int64_t lin = 0; lin < ess_->num_locations(); lin += 11) {
    EXPECT_NEAR(diagram.CostAt(lin), ess_->OptimalCost(lin),
                ess_->OptimalCost(lin) * 1e-9);
  }
}

TEST_F(PlanDiagramTest, ContourDensityDropsAfterReduction) {
  PlanDiagram native(ess_);
  const int rho_native = native.MaxContourDensity();
  PlanDiagram reduced(ess_);
  reduced.Reduce(0.2);
  const int rho_reduced = reduced.MaxContourDensity();
  EXPECT_LE(rho_reduced, rho_native);
  EXPECT_GE(rho_reduced, 1);
}

TEST_F(PlanDiagramTest, ContourPlansComeFromFrontier) {
  PlanDiagram diagram(ess_);
  diagram.Reduce(0.2);
  for (int i = 0; i < ess_->num_contours(); i += 4) {
    for (const Plan* p : diagram.ContourPlans(i)) {
      bool found = false;
      for (int64_t lin : ess_->FrontierLocations(i)) {
        if (diagram.PlanAt(lin) == p) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}


TEST_F(PlanDiagramTest, DiagramBackedPlanBouquetCompletesEverywhere) {
  PlanDiagram diagram(ess_);
  diagram.Reduce(0.2);
  PlanBouquet pb(ess_, diagram, {0.2, true, 1.0});
  EXPECT_LE(pb.rho(), ess_->pool().size());
  const SuboptimalityStats stats = Evaluate(pb, *ess_);
  EXPECT_LE(stats.mso, pb.MsoGuarantee() * (1 + 1e-6));
}

TEST_F(PlanDiagramTest, DiagramBackedRhoComparableToPerContour) {
  PlanDiagram diagram(ess_);
  diagram.Reduce(0.2);
  PlanBouquet diagram_pb(ess_, diagram, {0.2, true, 1.0});
  PlanBouquet contour_pb(ess_, {0.2, true, 1.0});
  // Both reductions target the same threshold; densities should be within
  // a small factor of each other (per-contour cover can be tighter, the
  // diagram-level one is what the paper's setup measures).
  EXPECT_LE(diagram_pb.rho(), contour_pb.rho() * 4);
  EXPECT_GE(diagram_pb.rho(), 1);
}

}  // namespace
}  // namespace robustqp
