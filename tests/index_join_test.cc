// Tests for the hash-index access path and index nested-loop joins:
// index lookup correctness, INLJ result equivalence with other join
// operators, cost-model behaviour (wins at tiny selectivity, loses at
// large), budget abort, epp ordering without a blocking child, and
// selectivity monitoring via the uncharged filtered-inner count.

#include <gtest/gtest.h>

#include <memory>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "storage/hash_index.h"
#include "storage/table.h"
#include "test_util.h"
#include "workloads/stale_stats.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

class IndexJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeTinyCatalog();
    executor_ = std::make_unique<Executor>(catalog_.get(),
                                           CostModel::PostgresFlavour());
  }
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(IndexJoinTest, HashIndexLookup) {
  const HashIndex* idx = catalog_->FindIndex("d1", "d1_k");
  ASSERT_NE(idx, nullptr);
  // d1_k is a serial key 1..100: every key has exactly one row.
  EXPECT_EQ(idx->distinct_keys(), 100);
  const RowIdSpan rows = idx->Lookup(42);
  ASSERT_FALSE(rows.empty());
  ASSERT_EQ(rows.size(), 1);
  EXPECT_EQ(rows[0], 41);  // row ids are 0-based
  EXPECT_TRUE(idx->Lookup(101).empty());
}

TEST_F(IndexJoinTest, IndexOnlyOnBuiltColumns) {
  EXPECT_NE(catalog_->FindIndex("d2", "d2_k"), nullptr);
  EXPECT_EQ(catalog_->FindIndex("d2", "d2_a"), nullptr);
  EXPECT_EQ(catalog_->FindIndex("nope", "x"), nullptr);
}

TEST_F(IndexJoinTest, BuildIndexValidation) {
  EXPECT_FALSE(catalog_->BuildIndex("nope", "x").ok());
  EXPECT_FALSE(catalog_->BuildIndex("d1", "nope").ok());
  // f_v is a DOUBLE column: unsupported.
  EXPECT_FALSE(catalog_->BuildIndex("f", "f_v").ok());
  EXPECT_TRUE(catalog_->BuildIndex("f", "f_fk1").ok());
}

std::unique_ptr<Plan> MakeInljPlan(const Query& q) {
  // INLJ(f -> d1) on join 0, with d1's filter applied post-fetch.
  auto scan_f = std::make_unique<PlanNode>();
  scan_f->op = PlanOp::kSeqScan;
  scan_f->table_idx = 0;
  auto scan_d = std::make_unique<PlanNode>();
  scan_d->op = PlanOp::kSeqScan;
  scan_d->table_idx = 1;
  scan_d->filter_indices = {0};  // d1_a <= 3
  auto join = std::make_unique<PlanNode>();
  join->op = PlanOp::kIndexNLJoin;
  join->join_indices = {0};
  join->left = std::move(scan_f);
  join->right = std::move(scan_d);
  return std::make_unique<Plan>(&q, std::move(join));
}

TEST_F(IndexJoinTest, InljMatchesHashJoinResult) {
  const Query q = MakeStarQuery(1);
  const std::unique_ptr<Plan> inlj = MakeInljPlan(q);

  auto scan_f = std::make_unique<PlanNode>();
  scan_f->op = PlanOp::kSeqScan;
  scan_f->table_idx = 0;
  auto scan_d = std::make_unique<PlanNode>();
  scan_d->op = PlanOp::kSeqScan;
  scan_d->table_idx = 1;
  scan_d->filter_indices = {0};
  auto hj = std::make_unique<PlanNode>();
  hj->op = PlanOp::kHashJoin;
  hj->join_indices = {0};
  hj->left = std::move(scan_d);
  hj->right = std::move(scan_f);
  Plan hash_plan(&q, std::move(hj));

  const auto r1 = executor_->Execute(*inlj, -1.0);
  const auto r2 = executor_->Execute(hash_plan, -1.0);
  ASSERT_TRUE(r1.ok() && r1->completed);
  ASSERT_TRUE(r2.ok() && r2->completed);
  EXPECT_EQ(r1->output_rows, r2->output_rows);
  EXPECT_GT(r1->output_rows, 0);
}

TEST_F(IndexJoinTest, InljObservedSelectivityUsesFilteredInner) {
  const Query q = MakeStarQuery(1);
  const std::unique_ptr<Plan> inlj = MakeInljPlan(q);
  const auto res = executor_->Execute(*inlj, -1.0);
  ASSERT_TRUE(res.ok() && res->completed);
  const NodeStats& st = res->node_stats[0];
  EXPECT_EQ(st.left_in, 4000);  // all fact rows probe
  // right_in is the uncharged filtered-inner count, not the fetch count.
  EXPECT_GT(st.right_in, 0);
  EXPECT_LT(st.right_in, 100);
  // Observed selectivity = out / (probes x filtered inner): for an FK
  // join this approximates 1/|d1| (zipf-vs-filter interplay allowed).
  EXPECT_NEAR(res->ObservedJoinSelectivity(0), 0.01, 0.006);
}

TEST_F(IndexJoinTest, InljCheaperThanScanJoinsAtTinySelectivity) {
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog_.get(), &q);
  // At minuscule selectivities the optimizer should pick index probes
  // somewhere in the plan (no full scans of the dimension tables).
  const std::unique_ptr<Plan> plan = opt.Optimize({1e-6, 1e-6, 1e-6});
  EXPECT_NE(plan->signature().find("INLJ"), std::string::npos)
      << plan->signature();
  // At selectivity 1 the cross products make probing every pair absurd:
  // no INLJ should survive.
  const std::unique_ptr<Plan> big = opt.Optimize({1.0, 1.0, 1.0});
  EXPECT_EQ(big->signature().find("INLJ"), std::string::npos)
      << big->signature();
}

TEST_F(IndexJoinTest, InljBudgetAbort) {
  const Query q = MakeStarQuery(1);
  const std::unique_ptr<Plan> inlj = MakeInljPlan(q);
  const auto res = executor_->Execute(*inlj, 25.0);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->completed);
  EXPECT_LE(res->cost_used, 25.0 + 1e-9);
}

TEST_F(IndexJoinTest, InljEppOrderHasNoBlockingChild) {
  const Query q = MakeStarQuery(3);
  // INLJ(HJ(d2-build, HJ(d3-build, f)), d1): the INLJ's right side holds
  // no epps; order is inner HJs bottom-up then the INLJ last.
  auto scan_f = std::make_unique<PlanNode>();
  scan_f->op = PlanOp::kSeqScan;
  scan_f->table_idx = 0;
  auto scan_d2 = std::make_unique<PlanNode>();
  scan_d2->op = PlanOp::kSeqScan;
  scan_d2->table_idx = 2;
  auto scan_d3 = std::make_unique<PlanNode>();
  scan_d3->op = PlanOp::kSeqScan;
  scan_d3->table_idx = 3;
  auto scan_d1 = std::make_unique<PlanNode>();
  scan_d1->op = PlanOp::kSeqScan;
  scan_d1->table_idx = 1;

  auto hj3 = std::make_unique<PlanNode>();
  hj3->op = PlanOp::kHashJoin;
  hj3->join_indices = {2};
  hj3->left = std::move(scan_d3);
  hj3->right = std::move(scan_f);
  auto hj2 = std::make_unique<PlanNode>();
  hj2->op = PlanOp::kHashJoin;
  hj2->join_indices = {1};
  hj2->left = std::move(scan_d2);
  hj2->right = std::move(hj3);
  auto inlj = std::make_unique<PlanNode>();
  inlj->op = PlanOp::kIndexNLJoin;
  inlj->join_indices = {0};
  inlj->left = std::move(hj2);
  inlj->right = std::move(scan_d1);

  Plan plan(&q, std::move(inlj));
  ASSERT_EQ(plan.epp_execution_order().size(), 3u);
  EXPECT_EQ(plan.epp_execution_order()[0], 2);
  EXPECT_EQ(plan.epp_execution_order()[1], 1);
  EXPECT_EQ(plan.epp_execution_order()[2], 0);
}

TEST_F(IndexJoinTest, InljCostExcludesInnerScan) {
  const Query q = MakeStarQuery(1);
  Optimizer opt(catalog_.get(), &q);
  const std::unique_ptr<Plan> inlj = MakeInljPlan(q);
  const PlanCosting costing = opt.CostPlan(*inlj, {1e-5});
  // The probed table keeps its standalone subtree cost (what a spill
  // execution of that scan would pay), but contributes nothing to the
  // parent: root cost == outer cost + local INLJ cost exactly.
  double scan_cost = 0.0, outer_cost = 0.0, outer_rows = 0.0;
  for (int i = 0; i < inlj->num_nodes(); ++i) {
    if (inlj->node(i).op != PlanOp::kSeqScan) continue;
    if (inlj->node(i).table_idx == 1) {
      scan_cost = costing.cost[static_cast<size_t>(i)];
    } else {
      outer_cost = costing.cost[static_cast<size_t>(i)];
      outer_rows = costing.rows[static_cast<size_t>(i)];
    }
  }
  EXPECT_GT(scan_cost, 0.0) << "probed scan keeps its standalone cost";
  const double fetched = outer_rows * 100.0 * 1e-5;  // raw |d1| = 100
  const double local = opt.cost_model().IndexNLJoinCost(
      outer_rows, fetched, costing.rows[0]);
  EXPECT_NEAR(costing.total_cost(), outer_cost + local,
              costing.total_cost() * 1e-9);
  // Engine charge roughly tracks the modelled cost at the data's truth.
  const auto res = executor_->Execute(*inlj, -1.0);
  ASSERT_TRUE(res.ok() && res->completed);
  const PlanCosting at_truth = opt.CostPlan(*inlj, {0.01});
  EXPECT_GT(res->cost_used, at_truth.total_cost() * 0.3);
  EXPECT_LT(res->cost_used, at_truth.total_cost() * 3.0);
}

TEST(StaleStatsTest, InflatesDistinctCounts) {
  auto fresh = MakeTinyCatalog();
  auto stale = WithStaleStatistics(*fresh, 50.0);
  const ColumnStats* fresh_cs = fresh->FindColumnStats("d1", "d1_k");
  const ColumnStats* stale_cs = stale->FindColumnStats("d1", "d1_k");
  EXPECT_EQ(stale_cs->distinct_count, fresh_cs->distinct_count * 50);
  // Data is shared, not copied.
  EXPECT_EQ(fresh->FindTable("d1")->table.get(),
            stale->FindTable("d1")->table.get());
  // Indexes carried over.
  EXPECT_NE(stale->FindIndex("d1", "d1_k"), nullptr);
}

TEST(StaleStatsTest, ShiftsNativeEstimatesNotTruth) {
  auto fresh = MakeTinyCatalog();
  auto stale = WithStaleStatistics(*fresh, 50.0);
  const Query q = MakeStarQuery(2);
  CardinalityEstimator fresh_est(fresh.get(), &q);
  CardinalityEstimator stale_est(stale.get(), &q);
  EXPECT_NEAR(stale_est.NativeJoinSelectivity(0),
              fresh_est.NativeJoinSelectivity(0) / 50.0, 1e-9);
}

}  // namespace
}  // namespace robustqp
