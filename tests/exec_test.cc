// Tests for the Volcano executor: join correctness against a naive
// reference evaluator, budget-limited abort, spill-mode subtree execution,
// and run-time selectivity monitoring.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "storage/table.h"
#include "test_util.h"

namespace robustqp {
namespace {

using testing_util::MakeStarQuery;
using testing_util::MakeBranchQuery;
using testing_util::MakeTinyCatalog;

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeTinyCatalog();
    executor_ = std::make_unique<Executor>(catalog_.get(),
                                           CostModel::PostgresFlavour());
  }

  /// Reference row count computed by naive nested evaluation of the query
  /// semantics (filters then all join predicates over the cross product,
  /// computed pairwise to stay tractable).
  int64_t NaiveJoinCount(const Query& q) {
    // Materialize filtered tables as vectors of rows (as doubles).
    struct Mat {
      std::vector<std::vector<double>> rows;
      const TableSchema* schema;
    };
    std::map<std::string, Mat> mats;
    for (const auto& name : q.tables()) {
      const CatalogEntry* entry = catalog_->FindTable(name);
      Mat mat;
      mat.schema = &entry->table->schema();
      for (int64_t r = 0; r < entry->table->num_rows(); ++r) {
        bool pass = true;
        for (const auto& f : q.filters()) {
          if (f.table != name) continue;
          const int c = mat.schema->FindColumn(f.column);
          const double v = entry->table->column(c).GetNumeric(r);
          switch (f.op) {
            case CompareOp::kLt: pass = v < f.value; break;
            case CompareOp::kLe: pass = v <= f.value; break;
            case CompareOp::kGt: pass = v > f.value; break;
            case CompareOp::kGe: pass = v >= f.value; break;
            case CompareOp::kEq: pass = v == f.value; break;
          }
          if (!pass) break;
        }
        if (!pass) continue;
        std::vector<double> row;
        for (int c = 0; c < mat.schema->num_columns(); ++c) {
          row.push_back(entry->table->column(c).GetNumeric(r));
        }
        mat.rows.push_back(std::move(row));
      }
      mats[name] = std::move(mat);
    }
    // Join left-to-right along q.joins() order (the tiny queries are
    // trees whose edges are listed in a joinable order).
    std::map<std::string, std::map<std::string, int>> col_of;
    std::vector<std::vector<double>> acc;
    std::vector<std::pair<std::string, int>> layout;  // (table, first col)
    auto offset_of = [&](const std::string& t) {
      for (auto& [name, off] : layout) {
        if (name == t) return off;
      }
      return -1;
    };
    // Start from the first join's left table.
    const std::string first = q.joins()[0].left_table;
    acc = mats[first].rows;
    layout.push_back({first, 0});
    int width = mats[first].schema->num_columns();
    std::vector<bool> joined(q.joins().size(), false);
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t j = 0; j < q.joins().size(); ++j) {
        if (joined[j]) continue;
        const JoinPredicate& jp = q.joins()[j];
        const int loff = offset_of(jp.left_table);
        const int roff = offset_of(jp.right_table);
        if (loff < 0 && roff < 0) continue;
        if (loff >= 0 && roff >= 0) {
          // Both sides present: filter accumulated rows.
          const int lc = loff + mats[jp.left_table].schema->FindColumn(jp.left_column);
          const int rc = roff + mats[jp.right_table].schema->FindColumn(jp.right_column);
          std::vector<std::vector<double>> next;
          for (auto& row : acc) {
            if (row[static_cast<size_t>(lc)] == row[static_cast<size_t>(rc)]) {
              next.push_back(row);
            }
          }
          acc = std::move(next);
        } else {
          const bool left_new = loff < 0;
          const std::string& newt = left_new ? jp.left_table : jp.right_table;
          const std::string& newc = left_new ? jp.left_column : jp.right_column;
          const std::string& oldt = left_new ? jp.right_table : jp.left_table;
          const std::string& oldc = left_new ? jp.right_column : jp.left_column;
          const int oc = offset_of(oldt) + mats[oldt].schema->FindColumn(oldc);
          const int nc = mats[newt].schema->FindColumn(newc);
          std::vector<std::vector<double>> next;
          for (auto& row : acc) {
            for (auto& nrow : mats[newt].rows) {
              if (row[static_cast<size_t>(oc)] == nrow[static_cast<size_t>(nc)]) {
                auto combined = row;
                combined.insert(combined.end(), nrow.begin(), nrow.end());
                next.push_back(std::move(combined));
              }
            }
          }
          layout.push_back({newt, width});
          width += mats[newt].schema->num_columns();
          acc = std::move(next);
        }
        joined[j] = true;
        progress = true;
      }
    }
    return static_cast<int64_t>(acc.size());
  }

  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecTest, StarJoinMatchesNaive) {
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog_.get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.01, 0.0025, 0.02});
  const Result<ExecutionResult> res = executor_->Execute(*plan, -1.0);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->completed);
  EXPECT_EQ(res->output_rows, NaiveJoinCount(q));
}

TEST_F(ExecTest, BranchJoinMatchesNaive) {
  const Query q = MakeBranchQuery(3);
  Optimizer opt(catalog_.get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.01, 0.0025, 0.02});
  const Result<ExecutionResult> res = executor_->Execute(*plan, -1.0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->completed);
  EXPECT_EQ(res->output_rows, NaiveJoinCount(q));
}

TEST_F(ExecTest, AllPlanShapesAgree) {
  // Different injected selectivities produce different plans (join
  // orders, operators, build sides); all must return identical counts.
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog_.get(), &q);
  const int64_t expected = NaiveJoinCount(q);
  const std::vector<EssPoint> points = {
      {1e-4, 1e-4, 1e-4}, {1.0, 1.0, 1.0}, {1e-4, 1.0, 1e-2},
      {1.0, 1e-4, 1e-4},  {0.03, 0.5, 1e-3}};
  std::set<std::string> shapes;
  for (const EssPoint& p : points) {
    const std::unique_ptr<Plan> plan = opt.Optimize(p);
    shapes.insert(plan->signature());
    const Result<ExecutionResult> res = executor_->Execute(*plan, -1.0);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->completed);
    EXPECT_EQ(res->output_rows, expected) << plan->ToString();
  }
  EXPECT_GE(shapes.size(), 2u) << "test should exercise several plan shapes";
}

TEST_F(ExecTest, BudgetAbortsExecution) {
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog_.get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.01, 0.0025, 0.02});
  const Result<ExecutionResult> res = executor_->Execute(*plan, 50.0);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->completed);
  EXPECT_LE(res->cost_used, 50.0 + 1e-9);
}

TEST_F(ExecTest, CostUsedTracksCostModelMagnitude) {
  // The executor charges the same constants the optimizer uses, so actual
  // charge should be within a small factor of the plan's estimated cost
  // at the *true* selectivities.
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog_.get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.01, 0.0025, 0.02});
  const Result<ExecutionResult> res = executor_->Execute(*plan, -1.0);
  ASSERT_TRUE(res.ok());
  // True selectivities of FK joins are ~1/ndv; inject them for a fair
  // comparison (the optimizer estimate equals the truth here since the
  // tiny catalog's joins are key/FK).
  CardinalityEstimator est(catalog_.get(), &q);
  const EssPoint truth = est.NativeEstimatePoint();
  const double est_cost = opt.PlanCost(*plan, truth);
  EXPECT_GT(res->cost_used, est_cost * 0.3);
  EXPECT_LT(res->cost_used, est_cost * 3.0);
}

TEST_F(ExecTest, SpillExecutesOnlySubtree) {
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog_.get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.01, 0.0025, 0.02});
  // Spill on the plan's first epp in execution order: the full root never
  // produces output, and nodes outside the subtree have zero stats.
  const int dim = plan->epp_execution_order().front();
  const int node_id = plan->EppNodeId(dim);
  const Result<ExecutionResult> res =
      executor_->ExecuteSpill(*plan, node_id, -1.0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->completed);
  if (node_id != 0) {
    EXPECT_EQ(res->node_stats[0].out, 0) << "root must not run in spill mode";
  }
  EXPECT_GT(res->node_stats[static_cast<size_t>(node_id)].out, 0);
}

TEST_F(ExecTest, ObservedSelectivityMatchesData) {
  // A single join f ~ d1 on a key/FK: observed selectivity must be
  // exactly 1/|d1| (every fact row matches exactly one dim row).
  Query q("single", {"f", "d1"}, {{"f", "f_fk1", "d1", "d1_k", ""}}, {}, std::vector<int>{0});
  ASSERT_TRUE(q.Validate(*catalog_).ok());
  Optimizer opt(catalog_.get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.01});
  const Result<ExecutionResult> res = executor_->Execute(*plan, -1.0);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res->completed);
  const int node_id = plan->EppNodeId(0);
  EXPECT_NEAR(res->ObservedJoinSelectivity(node_id), 1.0 / 100, 1e-12);
}

TEST_F(ExecTest, SpillBudgetAbortIsClean) {
  const Query q = MakeStarQuery(3);
  Optimizer opt(catalog_.get(), &q);
  const std::unique_ptr<Plan> plan = opt.Optimize({0.01, 0.0025, 0.02});
  const int dim = plan->epp_execution_order().front();
  const int node_id = plan->EppNodeId(dim);
  const Result<ExecutionResult> res = executor_->ExecuteSpill(*plan, node_id, 10.0);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->completed);
  EXPECT_LE(res->cost_used, 10.0 + 1e-9);
}

TEST_F(ExecTest, NLJoinProducesSameResultAsHashJoin) {
  Query q("single", {"f", "d1"}, {{"f", "f_fk1", "d1", "d1_k", ""}}, {}, std::vector<int>{0});
  ASSERT_TRUE(q.Validate(*catalog_).ok());
  // Hand-build both operators for the same join.
  auto make_plan = [&](PlanOp op, bool fact_left) {
    auto scan_f = std::make_unique<PlanNode>();
    scan_f->op = PlanOp::kSeqScan;
    scan_f->table_idx = 0;
    auto scan_d = std::make_unique<PlanNode>();
    scan_d->op = PlanOp::kSeqScan;
    scan_d->table_idx = 1;
    auto join = std::make_unique<PlanNode>();
    join->op = op;
    join->join_indices = {0};
    join->left = fact_left ? std::move(scan_f) : std::move(scan_d);
    join->right = fact_left ? std::move(scan_d) : std::move(scan_f);
    return std::make_unique<Plan>(&q, std::move(join));
  };
  int64_t counts[4];
  int i = 0;
  for (PlanOp op : {PlanOp::kHashJoin, PlanOp::kNLJoin}) {
    for (bool fact_left : {true, false}) {
      const auto plan = make_plan(op, fact_left);
      const Result<ExecutionResult> res = executor_->Execute(*plan, -1.0);
      ASSERT_TRUE(res.ok());
      ASSERT_TRUE(res->completed);
      counts[i++] = res->output_rows;
    }
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);
  EXPECT_EQ(counts[0], counts[3]);
  EXPECT_EQ(counts[0], 4000);  // every fact row matches exactly one d1 row
}

}  // namespace
}  // namespace robustqp
