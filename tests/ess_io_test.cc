// Tests for ESS persistence (Section 7 offline contour construction):
// exact round-trip of the surface, contour/frontier re-derivation,
// algorithm-result equivalence on the loaded surface, and rejection of
// corrupt or mismatched streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/oracle.h"
#include "core/spillbound.h"
#include "ess/ess.h"
#include "test_util.h"
#include "workloads/tpch_mini.h"

namespace robustqp {
namespace {

using testing_util::MakeBranchQuery;
using testing_util::MakeStarQuery;
using testing_util::MakeTinyCatalog;

class EssIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeTinyCatalog().release();
    query_ = new Query(MakeStarQuery(2));
    Ess::Config config;
    config.points_per_dim = 14;
    config.min_sel = 1e-4;
    ess_ = Ess::Build(*catalog_, *query_, config).release();
  }
  static Catalog* catalog_;
  static Query* query_;
  static Ess* ess_;
};
Catalog* EssIoTest::catalog_ = nullptr;
Query* EssIoTest::query_ = nullptr;
Ess* EssIoTest::ess_ = nullptr;

TEST_F(EssIoTest, RoundTripPreservesSurface) {
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(buffer, *catalog_, *query_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Ess& l = **loaded;

  EXPECT_EQ(l.dims(), ess_->dims());
  EXPECT_EQ(l.points(), ess_->points());
  EXPECT_EQ(l.num_locations(), ess_->num_locations());
  EXPECT_EQ(l.pool().size(), ess_->pool().size());
  EXPECT_EQ(l.num_contours(), ess_->num_contours());
  EXPECT_DOUBLE_EQ(l.cmin(), ess_->cmin());
  EXPECT_DOUBLE_EQ(l.cmax(), ess_->cmax());

  for (int64_t lin = 0; lin < ess_->num_locations(); ++lin) {
    EXPECT_DOUBLE_EQ(l.OptimalCost(lin), ess_->OptimalCost(lin));
    EXPECT_EQ(l.OptimalPlan(lin)->signature(),
              ess_->OptimalPlan(lin)->signature());
  }
  for (int i = 0; i < ess_->num_contours(); ++i) {
    EXPECT_DOUBLE_EQ(l.ContourCost(i), ess_->ContourCost(i));
    EXPECT_EQ(l.FrontierLocations(i), ess_->FrontierLocations(i));
  }
}

TEST_F(EssIoTest, AlgorithmsBehaveIdenticallyOnLoadedSurface) {
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(buffer, *catalog_, *query_);
  ASSERT_TRUE(loaded.ok());

  SpillBound sb_orig(ess_);
  SpillBound sb_loaded(loaded->get());
  for (int64_t lin = 0; lin < ess_->num_locations(); lin += 5) {
    SimulatedOracle o1(ess_, ess_->FromLinear(lin));
    SimulatedOracle o2(loaded->get(), (*loaded)->FromLinear(lin));
    const DiscoveryResult r1 = sb_orig.Run(&o1);
    const DiscoveryResult r2 = sb_loaded.Run(&o2);
    ASSERT_TRUE(r1.completed && r2.completed);
    EXPECT_DOUBLE_EQ(r1.total_cost, r2.total_cost) << "qa=" << lin;
    EXPECT_EQ(r1.steps.size(), r2.steps.size());
  }
}

TEST_F(EssIoTest, RejectsWrongQuery) {
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  const Query other = MakeBranchQuery(2);
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(buffer, *catalog_, other);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EssIoTest, RejectsWrongDimensionality) {
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  // Same name trick: a 3-epp star query renamed to match.
  Query three = MakeStarQuery(3);
  Query renamed(query_->name(), three.tables(), three.joins(), three.filters(),
                three.epps());
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(buffer, *catalog_, renamed);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(EssIoTest, RejectsGarbage) {
  std::stringstream buffer("this is not an ess stream");
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(buffer, *catalog_, *query_);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(EssIoTest, RejectsTruncatedStream) {
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  Result<std::unique_ptr<Ess>> loaded =
      Ess::Load(truncated, *catalog_, *query_);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(EssIoTest, RejectsUnsupportedVersion) {
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  std::string text = buffer.str();
  text.replace(text.find(" 4\n"), 3, " 9\n");
  std::stringstream patched(text);
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(patched, *catalog_, *query_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnsupported);
}

TEST_F(EssIoTest, RoundTripPreservesBuildStats) {
  Ess::Config config = ess_->config();
  config.build_mode = EssBuildMode::kExact;
  auto refined = Ess::Build(*catalog_, *query_, config);
  std::stringstream buffer;
  ASSERT_TRUE(refined->Save(buffer).ok());
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(buffer, *catalog_, *query_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->config().build_mode, EssBuildMode::kExact);
  const Ess::BuildStats& saved = refined->build_stats();
  const Ess::BuildStats& got = (*loaded)->build_stats();
  EXPECT_EQ(got.optimizer_calls, saved.optimizer_calls);
  EXPECT_EQ(got.exact_points, saved.exact_points);
  EXPECT_EQ(got.recosted_points, saved.recosted_points);
  EXPECT_EQ(got.cells_certified, saved.cells_certified);
  EXPECT_EQ(got.cells_refined, saved.cells_refined);
  EXPECT_DOUBLE_EQ(got.max_deviation_bound, saved.max_deviation_bound);
  EXPECT_EQ(got.fell_back, saved.fell_back);
}

TEST_F(EssIoTest, RoundTripPreservesFallbackFlag) {
  Ess::Config config = ess_->config();
  config.build_mode = EssBuildMode::kExact;
  config.refine_fallback_fraction = 0.01;
  auto fallen = Ess::Build(*catalog_, *query_, config);
  ASSERT_TRUE(fallen->build_stats().fell_back);
  std::stringstream buffer;
  ASSERT_TRUE(fallen->Save(buffer).ok());
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(buffer, *catalog_, *query_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->build_stats().fell_back);
}

TEST_F(EssIoTest, LoadsVersion1StreamWithDefaultStats) {
  // A v1 stream is a v2 stream minus the build-mode and stats lines
  // (lines 5 and 6); loading one must succeed with default-initialized
  // stats so pre-existing saved surfaces keep working.
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  std::string text = buffer.str();
  text.replace(text.find(" 4\n"), 3, " 1\n");
  size_t pos = 0;
  for (int line = 0; line < 4; ++line) pos = text.find('\n', pos) + 1;
  const size_t stats_end = text.find('\n', text.find('\n', pos) + 1) + 1;
  text.erase(pos, stats_end - pos);

  std::stringstream patched(text);
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(patched, *catalog_, *query_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->build_stats().optimizer_calls, 0);
  EXPECT_EQ((*loaded)->num_locations(), ess_->num_locations());
  for (int64_t lin = 0; lin < ess_->num_locations(); lin += 7) {
    EXPECT_DOUBLE_EQ((*loaded)->OptimalCost(lin), ess_->OptimalCost(lin));
  }
}

TEST_F(EssIoTest, FuzzTruncationAlwaysRejected) {
  // The v4 checksum trailer covers every payload byte, so any prefix of
  // a saved stream (short of the full file) must be rejected cleanly.
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  const std::string full = buffer.str();
  for (size_t len = 0; len + 2 < full.size(); len += 37) {
    std::stringstream truncated(full.substr(0, len));
    Result<std::unique_ptr<Ess>> loaded =
        Ess::Load(truncated, *catalog_, *query_);
    EXPECT_FALSE(loaded.ok()) << "prefix length " << len;
  }
}

TEST_F(EssIoTest, FuzzBitFlipsAlwaysRejected) {
  // Single-bit corruption anywhere in a v4 stream — header, plan bodies,
  // grid data, or the trailer itself — must be rejected cleanly.
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  const std::string full = buffer.str();
  const size_t stride = std::max<size_t>(1, full.size() / 128);
  for (size_t pos = 0; pos < full.size(); pos += stride) {
    for (const int bit : {0, 3, 6}) {
      std::string flipped = full;
      flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << bit));
      std::stringstream corrupted(flipped);
      Result<std::unique_ptr<Ess>> loaded =
          Ess::Load(corrupted, *catalog_, *query_);
      EXPECT_FALSE(loaded.ok()) << "pos " << pos << " bit " << bit;
    }
  }
}

TEST_F(EssIoTest, FuzzLegacyStreamDamageNeverCrashes) {
  // Pre-checksum (v3) streams cannot detect every corruption — a flipped
  // or truncated cost digit still parses — but damage must never crash
  // the loader or produce a partially-populated surface.
  std::stringstream buffer;
  ASSERT_TRUE(ess_->Save(buffer).ok());
  std::string text = buffer.str();
  text.replace(text.find(" 4\n"), 3, " 3\n");
  text.resize(text.rfind("CKSUM "));  // v3 streams carry no trailer
  const auto check = [&](const std::string& damaged) {
    std::stringstream t(damaged);
    Result<std::unique_ptr<Ess>> loaded = Ess::Load(t, *catalog_, *query_);
    if (loaded.ok()) {
      EXPECT_EQ((*loaded)->num_locations(), ess_->num_locations());
      EXPECT_GT((*loaded)->num_contours(), 0);
    }
  };
  for (size_t len = 0; len < text.size(); len += 53) {
    check(text.substr(0, len));
  }
  const size_t stride = std::max<size_t>(1, text.size() / 96);
  for (size_t pos = 0; pos < text.size(); pos += stride) {
    std::string flipped = text;
    flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << 2));
    check(flipped);
  }
}

TEST(EssIoMixedEppTest, RoundTripWithFilterEpp) {
  // The general formulation: plans of a mixed join/filter-epp query
  // serialize and reload with identical surfaces and discovery behaviour.
  auto catalog = BuildTpchMiniCatalog(4242, 0.1);
  const Query query = MakeExampleQueryEq(/*filter_epp=*/true);
  ASSERT_TRUE(query.Validate(*catalog).ok());
  Ess::Config config;
  config.points_per_dim = 6;
  config.min_sel = 1e-3;
  auto ess = Ess::Build(*catalog, query, config);

  std::stringstream buffer;
  ASSERT_TRUE(ess->Save(buffer).ok());
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(buffer, *catalog, query);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int64_t lin = 0; lin < ess->num_locations(); ++lin) {
    ASSERT_DOUBLE_EQ((*loaded)->OptimalCost(lin), ess->OptimalCost(lin));
    ASSERT_EQ((*loaded)->OptimalPlan(lin)->signature(),
              ess->OptimalPlan(lin)->signature());
  }
  SpillBound sb1(ess.get());
  SpillBound sb2(loaded->get());
  for (int64_t lin = 0; lin < ess->num_locations(); lin += 17) {
    SimulatedOracle o1(ess.get(), ess->FromLinear(lin));
    SimulatedOracle o2(loaded->get(), (*loaded)->FromLinear(lin));
    EXPECT_DOUBLE_EQ(sb1.Run(&o1).total_cost, sb2.Run(&o2).total_cost);
  }
}

}  // namespace
}  // namespace robustqp
