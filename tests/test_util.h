// Shared test fixtures: tiny deterministic catalogs and queries that keep
// optimizer/ESS tests fast while still exhibiting realistic plan diversity.

#ifndef ROBUSTQP_TESTS_TEST_UTIL_H_
#define ROBUSTQP_TESTS_TEST_UTIL_H_

#include <memory>

#include "catalog/catalog.h"
#include "query/query.h"

namespace robustqp {
namespace testing_util {

/// A four-table catalog: fact table "f" (4000 rows) with zipf FKs into
/// dimensions "d1" (100), "d2" (400), and "d3" (50); d2 chains to d3 via
/// its own FK column.
std::unique_ptr<Catalog> MakeTinyCatalog(uint64_t seed = 11);

/// Star query: f joins d1, d2, d3 directly; `num_epps` of the three joins
/// (in order) are error-prone.
Query MakeStarQuery(int num_epps);

/// Chain query: f - d1 - d2 - d3? Not a natural chain on the tiny schema;
/// instead: f ~ d2 ~ d3 plus f ~ d1, i.e. a branch. `num_epps` of the
/// three joins are error-prone.
Query MakeBranchQuery(int num_epps);

/// Mixed-epp star query: joins 0 and 1 plus the d1 filter are error-prone
/// (dimensions 0, 1, 2 respectively).
Query MakeMixedEppQuery();

}  // namespace testing_util
}  // namespace robustqp

#endif  // ROBUSTQP_TESTS_TEST_UTIL_H_
