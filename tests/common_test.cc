// Unit tests for src/common: Status/Result, Rng/Zipf, LogAxis, TablePrinter.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/log_grid.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace robustqp {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, BudgetExhaustedIsDistinctCode) {
  Status s = Status::BudgetExhausted("scan");
  EXPECT_EQ(s.code(), StatusCode::kBudgetExhausted);
  EXPECT_NE(s.code(), StatusCode::kInternal);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kUnsupported,
        StatusCode::kInternal, StatusCode::kBudgetExhausted}) {
    EXPECT_STRNE(StatusCodeToString(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "hello");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformDoubleRespectsRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(ZipfTest, RanksWithinDomain) {
  Rng rng(3);
  ZipfSampler z(100, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const int64_t r = z.Sample(&rng);
    EXPECT_GE(r, 1);
    EXPECT_LE(r, 100);
  }
}

TEST(ZipfTest, SkewFavoursLowRanks) {
  Rng rng(4);
  ZipfSampler z(1000, 1.2);
  std::map<int64_t, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(&rng)];
  // Rank 1 should dominate rank 100 heavily under theta=1.2.
  EXPECT_GT(counts[1], counts[100] * 5);
}

TEST(ZipfTest, ThetaNearZeroIsNearlyUniform) {
  Rng rng(5);
  ZipfSampler z(10, 0.01);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[z.Sample(&rng)];
  for (int64_t r = 1; r <= 10; ++r) {
    EXPECT_GT(counts[r], 3000);
    EXPECT_LT(counts[r], 7000);
  }
}

TEST(LogAxisTest, EndpointsExact) {
  LogAxis axis(1e-5, 20);
  EXPECT_DOUBLE_EQ(axis.value(0), 1e-5);
  EXPECT_DOUBLE_EQ(axis.value(19), 1.0);
  EXPECT_EQ(axis.points(), 20);
}

TEST(LogAxisTest, StrictlyIncreasing) {
  LogAxis axis(1e-6, 50);
  for (int i = 1; i < axis.points(); ++i) {
    EXPECT_GT(axis.value(i), axis.value(i - 1));
  }
}

TEST(LogAxisTest, GeometricSpacing) {
  LogAxis axis(1e-4, 5);
  // Ratio between consecutive points should be constant (=10 here).
  for (int i = 1; i < 5; ++i) {
    EXPECT_NEAR(axis.value(i) / axis.value(i - 1), 10.0, 1e-9);
  }
}

TEST(LogAxisTest, FloorIndex) {
  LogAxis axis(1e-4, 5);  // 1e-4, 1e-3, 1e-2, 1e-1, 1
  EXPECT_EQ(axis.FloorIndex(5e-3), 1);
  EXPECT_EQ(axis.FloorIndex(1e-3), 1);
  EXPECT_EQ(axis.FloorIndex(1.0), 4);
  EXPECT_EQ(axis.FloorIndex(1e-5), -1);
}

TEST(LogAxisTest, CeilIndex) {
  LogAxis axis(1e-4, 5);
  EXPECT_EQ(axis.CeilIndex(5e-3), 2);
  EXPECT_EQ(axis.CeilIndex(1e-2), 2);
  EXPECT_EQ(axis.CeilIndex(2.0), 5);
}

TEST(LogAxisTest, NearestIndexClampsAndRounds) {
  LogAxis axis(1e-4, 5);
  EXPECT_EQ(axis.NearestIndex(1e-9), 0);
  EXPECT_EQ(axis.NearestIndex(5.0), 4);
  EXPECT_EQ(axis.NearestIndex(9e-3), 2);   // log-nearer to 1e-2
  EXPECT_EQ(axis.NearestIndex(2e-3), 1);   // log-nearer to 1e-3
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xxxxx", "1"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a     | long_header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxxx | 1           |"), std::string::npos);
}

TEST(TablePrinterTest, NumTrimsTrailingZeros) {
  EXPECT_EQ(TablePrinter::Num(12.50), "12.5");
  EXPECT_EQ(TablePrinter::Num(130.0), "130");
  EXPECT_EQ(TablePrinter::Num(0.04), "0.04");
  EXPECT_EQ(TablePrinter::Num(3.14159, 3), "3.142");
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
  // The pool stays usable after a Wait.
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  ParallelFor(&pool, 1000, [&](int worker, int64_t begin, int64_t end) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 3);
    for (int64_t i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsANoop) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(&pool, 0, [&](int, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Fewer indices than workers: blocks are skipped, never empty.
  std::atomic<int> covered{0};
  ParallelFor(&pool, 2, [&](int, int64_t begin, int64_t end) {
    EXPECT_LT(begin, end);
    covered += static_cast<int>(end - begin);
  });
  EXPECT_EQ(covered.load(), 2);
}

TEST(ThreadPoolTest, ParallelForConvertsExceptionToStatus) {
  ThreadPool pool(4);
  const Status st = ParallelFor(&pool, 100, [&](int, int64_t begin, int64_t) {
    if (begin == 0) throw std::runtime_error("boom");
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("boom"), std::string::npos);
  // The pool survives a throwing batch.
  std::atomic<int> count{0};
  const Status ok = ParallelFor(&pool, 8, [&](int, int64_t begin, int64_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, WaitSurfacesExceptionEscapingARawTask) {
  // Regression: an exception escaping a Submit()ed task used to escape the
  // worker loop and terminate the process via std::terminate.
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("worker blew up"); });
  const Status st = pool.Wait();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("worker blew up"), std::string::npos);
  // The error is cleared by Wait and the pool stays usable.
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, MapReduceHandlesMoreChunksThanThreads) {
  ThreadPool pool(2);
  // 1000 indices in chunks of 7 -> 143 chunks over 2 workers.
  const int64_t sum = ParallelMapReduce<int64_t>(
                          &pool, 1000, 7, 0,
                          [](int64_t begin, int64_t end) {
                            int64_t s = 0;
                            for (int64_t i = begin; i < end; ++i) s += i;
                            return s;
                          },
                          [](int64_t acc, int64_t part) { return acc + part; })
                          .value();
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST(ThreadPoolTest, MapReduceReducesInChunkOrder) {
  // The reduction must follow chunk order regardless of completion order:
  // concatenating chunk-begin indices yields the sorted sequence.
  ThreadPool pool(4);
  const std::vector<int64_t> order =
      ParallelMapReduce<std::vector<int64_t>>(
          &pool, 64, 4, {},
          [](int64_t begin, int64_t) { return std::vector<int64_t>{begin}; },
          [](std::vector<int64_t> acc, std::vector<int64_t> part) {
            acc.insert(acc.end(), part.begin(), part.end());
            return acc;
          })
          .value();
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int64_t>(i) * 4);
  }
}

TEST(ThreadPoolTest, MapReduceEmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const int v = ParallelMapReduce<int>(
                    &pool, 0, 16, 42, [](int64_t, int64_t) { return 7; },
                    [](int acc, int part) { return acc + part; })
                    .value();
  EXPECT_EQ(v, 42);
}

TEST(ThreadPoolTest, MapReducePropagatesFirstChunkException) {
  ThreadPool pool(4);
  const Result<int> r = ParallelMapReduce<int>(
      &pool, 100, 10, 0,
      [](int64_t begin, int64_t) -> int {
        if (begin == 30) throw std::runtime_error("chunk-3");
        if (begin == 70) throw std::runtime_error("chunk-7");
        return 0;
      },
      [](int acc, int) { return acc; });
  ASSERT_FALSE(r.ok());
  // Lowest chunk index wins, independent of completion order.
  EXPECT_NE(r.status().message().find("chunk-3"), std::string::npos);
}

}  // namespace
}  // namespace robustqp
