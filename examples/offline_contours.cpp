// Offline contour construction for canned queries (paper Section 7): the
// ESS sweep — the only expensive preprocessing step — is run once and
// persisted; later sessions load the surface in milliseconds and run
// discovery immediately. This example builds, saves, reloads, and
// verifies that discovery on the reloaded surface is identical.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/oracle.h"
#include "core/spillbound.h"
#include "server/context_cache.h"
#include "workloads/queries.h"

using namespace robustqp;

int main() {
  using Clock = std::chrono::steady_clock;
  const auto secs = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  std::cout << "=== Offline contour construction (Section 7) ===\n\n";

  // One-time preprocessing: full optimizer sweep.
  std::shared_ptr<Catalog> catalog = ContextCache::TpcdsCatalog();
  Query query = MakeSuiteQuery("3D_Q15");
  const auto t0 = Clock::now();
  Ess::Config config;
  std::unique_ptr<Ess> built = Ess::Build(*catalog, query, config);
  const auto t1 = Clock::now();
  std::cout << "online build:  " << secs(t0, t1) << " s  ("
            << built->num_locations() << " optimizer calls, "
            << built->pool().size() << " POSP plans)\n";

  // Persist.
  std::stringstream storage;
  if (!built->Save(storage).ok()) {
    std::cerr << "save failed\n";
    return 1;
  }
  std::cout << "serialized:    " << storage.str().size() / 1024 << " KiB\n";

  // A later session: load instead of rebuilding.
  const auto t2 = Clock::now();
  Result<std::unique_ptr<Ess>> loaded = Ess::Load(storage, *catalog, query);
  const auto t3 = Clock::now();
  if (!loaded.ok()) {
    std::cerr << "load failed: " << loaded.status().ToString() << "\n";
    return 1;
  }
  std::cout << "offline load:  " << secs(t2, t3) << " s  (speedup "
            << secs(t0, t1) / secs(t2, t3) << "x)\n\n";

  // Discovery behaves identically on both surfaces.
  GridLoc qa = {10, 8, 12};
  SpillBound sb_a(built.get());
  SpillBound sb_b(loaded->get());
  SimulatedOracle oa(built.get(), qa);
  SimulatedOracle ob(loaded->get(), qa);
  const DiscoveryResult ra = sb_a.Run(&oa);
  const DiscoveryResult rb = sb_b.Run(&ob);
  std::cout << "SpillBound on built surface:  cost " << ra.total_cost << ", "
            << ra.num_executions() << " executions\n";
  std::cout << "SpillBound on loaded surface: cost " << rb.total_cost << ", "
            << rb.num_executions() << " executions\n";
  std::cout << (ra.total_cost == rb.total_cost ? "identical — offline mode is safe\n"
                                               : "MISMATCH\n");
  return ra.total_cost == rb.total_cost ? 0 : 1;
}
