// Join Order Benchmark demo on the real execution engine: run JOB Q1a
// over the IMDB-shaped catalog, where zipf-skewed foreign keys make the
// native NDV-based estimates unreliable (the paper's Section 6.5
// scenario). SpillBound discovers the true selectivities by budgeted
// spill executions on the Volcano engine and completes the query with a
// bounded overhead, while the native optimizer has no such guarantee.

#include <chrono>
#include <iostream>

#include "core/oracle.h"
#include "core/spillbound.h"
#include "exec/executor.h"
#include "harness/trace_printer.h"
#include "harness/true_selectivity.h"
#include "server/context_cache.h"

using namespace robustqp;

int main() {
  std::cout << "=== JOB Q1a on the execution engine ===\n\n";
  const auto wb = *ContextCache::Default().Get("4D_JOB_Q1a", Ess::Config{});
  const Ess& ess = *wb->ess;
  Executor executor(wb->catalog.get(), ess.config().cost_model);

  // What the statistics claim vs what the data holds.
  const EssPoint qe = ess.optimizer().estimator().NativeEstimatePoint();
  const EssPoint truth = ComputeTrueSelectivities(*wb->catalog, *wb->query);
  std::cout << "epp        estimate      truth         error factor\n";
  for (int d = 0; d < ess.dims(); ++d) {
    const double est = qe[static_cast<size_t>(d)];
    const double tru = truth[static_cast<size_t>(d)];
    std::cout << wb->query->EppLabel(d) << "      " << est << "      " << tru
              << "      " << (tru > est ? tru / est : est / tru) << "x\n";
  }

  // Oracle-optimal execution for reference.
  const std::unique_ptr<Plan> opt_plan = ess.optimizer().Optimize(truth);
  const Result<ExecutionResult> opt_run = executor.Execute(*opt_plan, -1.0);
  if (!opt_run.ok() || !opt_run->completed) {
    std::cerr << "optimal execution failed\n";
    return 1;
  }
  std::cout << "\noptimal plan cost on engine: " << opt_run->cost_used << "\n";

  // Native optimizer's plan executed on the engine.
  const std::unique_ptr<Plan> native_plan = ess.optimizer().Optimize(qe);
  const Result<ExecutionResult> native_run = executor.Execute(*native_plan, -1.0);
  if (native_run.ok() && native_run->completed) {
    std::cout << "native plan cost on engine:  " << native_run->cost_used
              << "  (subopt " << native_run->cost_used / opt_run->cost_used
              << ")\n";
  }

  // SpillBound discovery against the live engine.
  SpillBound sb(&ess);
  EngineOracle oracle(&executor);
  const auto t0 = std::chrono::steady_clock::now();
  const DiscoveryResult r = sb.Run(&oracle);
  const auto t1 = std::chrono::steady_clock::now();
  if (!r.completed) {
    std::cerr << "SpillBound did not complete\n";
    return 1;
  }
  std::cout << "SpillBound total cost:       " << r.total_cost << "  (subopt "
            << r.total_cost / opt_run->cost_used << ", guarantee "
            << SpillBound::MsoGuarantee(ess.dims()) << ")\n";
  std::cout << "wall time: "
            << std::chrono::duration<double>(t1 - t0).count() << " s, "
            << r.num_executions() << " budgeted executions\n\n";

  std::cout << "discovery trace:\n";
  PrintExecutionTrace(ess, r, std::cout);
  return 0;
}
