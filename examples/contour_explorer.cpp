// Visual explorer for the 2D error-prone selectivity space: renders the
// plan diagram (which POSP plan is optimal where), the doubling iso-cost
// contours, and per-contour alignment diagnostics — ASCII renditions of
// the paper's Figs. 2, 3, 5 and 6.

#include <iostream>
#include <algorithm>
#include <map>

#include "core/alignment.h"
#include "core/oracle.h"
#include "core/spillbound.h"
#include "server/context_cache.h"

using namespace robustqp;

namespace {

char PlanGlyph(int plan_ordinal) {
  static const char* glyphs =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  return glyphs[plan_ordinal % 62];
}

}  // namespace

int main() {
  const auto wb = *ContextCache::Default().Get("2D_Q91", Ess::Config{});
  const Ess& ess = *wb->ess;
  const int n = ess.points();

  std::cout << "=== ESS explorer: 2D_Q91 ===\n";
  std::cout << "X axis: " << wb->query->EppLabel(0)
            << " selectivity (log-spaced " << ess.config().min_sel
            << " .. 1)\nY axis: " << wb->query->EppLabel(1) << "\n";
  std::cout << "POSP: " << ess.pool().size() << " plans; contours: "
            << ess.num_contours() << " (cost " << ess.cmin() << " .. "
            << ess.cmax() << ")\n\n";

  // Plan diagram: one glyph per location; '#' marks contour frontiers.
  std::map<const Plan*, int> ordinal;
  for (const Plan* p : ess.pool().plans()) {
    const int k = static_cast<int>(ordinal.size());
    ordinal[p] = k;
  }
  std::vector<std::vector<bool>> on_frontier(
      static_cast<size_t>(n), std::vector<bool>(static_cast<size_t>(n), false));
  for (int i = 0; i < ess.num_contours(); ++i) {
    for (int64_t lin : ess.FrontierLocations(i)) {
      const GridLoc loc = ess.FromLinear(lin);
      on_frontier[static_cast<size_t>(loc[0])][static_cast<size_t>(loc[1])] =
          true;
    }
  }

  std::cout << "plan diagram (letters = distinct optimal plans; '.' over a "
               "glyph marks an iso-cost contour frontier):\n\n";
  for (int y = n - 1; y >= 0; --y) {
    std::cout << (y == n - 1 ? "sel=1 " : "      ");
    for (int x = 0; x < n; ++x) {
      const GridLoc loc = {x, y};
      const char g = PlanGlyph(ordinal[ess.OptimalPlan(loc)]);
      std::cout << (on_frontier[static_cast<size_t>(x)][static_cast<size_t>(y)]
                        ? '.'
                        : g);
    }
    std::cout << "\n";
  }
  std::cout << "      ";
  for (int x = 0; x < n; ++x) std::cout << '-';
  std::cout << "\n      sel=" << ess.config().min_sel << "  ->  sel=1 (X)\n\n";

  // Fig. 7 flavour: overlay SpillBound's Manhattan profile for a hostile
  // true location ('*' = running-location corner after a step, '@' = q_a).
  GridLoc qa = {ess.axis().NearestIndex(0.04), ess.axis().NearestIndex(0.1)};
  SpillBound sb(&ess);
  SimulatedOracle oracle(&ess, qa);
  const DiscoveryResult run = sb.Run(&oracle);
  std::vector<std::vector<char>> overlay(
      static_cast<size_t>(n), std::vector<char>(static_cast<size_t>(n), ' '));
  for (const ExecutionStep& step : run.steps) {
    if (step.qrun.size() != 2) continue;
    const int x = ess.axis().NearestIndex(std::max(step.qrun[0], ess.config().min_sel));
    const int y = ess.axis().NearestIndex(std::max(step.qrun[1], ess.config().min_sel));
    overlay[static_cast<size_t>(x)][static_cast<size_t>(y)] = '*';
  }
  overlay[static_cast<size_t>(qa[0])][static_cast<size_t>(qa[1])] = '@';

  std::cout << "SpillBound Manhattan profile toward q_a = ("
            << ess.axis().value(qa[0]) << ", " << ess.axis().value(qa[1])
            << ")  ['*' = q_run after a step, '@' = q_a; "
            << run.num_executions() << " executions, subopt "
            << run.total_cost / ess.OptimalCost(qa) << "]:\n\n";
  for (int y = n - 1; y >= 0; --y) {
    std::cout << "      ";
    for (int x = 0; x < n; ++x) {
      const char o = overlay[static_cast<size_t>(x)][static_cast<size_t>(y)];
      if (o != ' ') {
        std::cout << o;
      } else {
        const GridLoc loc = {x, y};
        std::cout << (on_frontier[static_cast<size_t>(x)][static_cast<size_t>(y)]
                          ? '.'
                          : ' ');
      }
    }
    std::cout << "\n";
  }
  std::cout << "\n";

  // Per-contour summary with alignment info (Fig. 6 flavour).
  ConstrainedPlanCache cache(&ess);
  const std::vector<ContourAlignmentInfo> infos =
      AnalyzeContourAlignment(ess, &cache);
  std::cout << "contour  cost          #plans  frontier  aligned  induce-penalty\n";
  for (int i = 0; i < ess.num_contours(); ++i) {
    std::cout << "IC" << i + 1 << (i + 1 < 10 ? "      " : "     ")
              << ess.ContourCost(i) << "\t" << ess.ContourPlans(i).size()
              << "\t" << ess.FrontierLocations(i).size() << "\t"
              << (infos[static_cast<size_t>(i)].natively_aligned ? "yes" : "no")
              << "\t"
              << infos[static_cast<size_t>(i)].min_induce_penalty << "\n";
  }
  return 0;
}
