// Robust processing of a 4-epp TPC-DS query (Q91), end to end: pick a
// true location the optimizer's statistics could never predict, then
// compare what each approach pays to answer the query —
//
//   * the native optimizer (plan frozen at its statistics-based estimate),
//   * PlanBouquet   (budgeted full executions, behavioural bound),
//   * SpillBound    (budgeted spill executions, structural bound D^2+3D),
//   * AlignedBound  (predicate-set alignment, bound in [2D+2, D^2+3D]),
//
// mirroring the deployment guidance of the paper's Section 7: the robust
// algorithms complement the native optimizer and take over when large
// estimation errors are anticipated.

#include <iostream>

#include "core/alignedbound.h"
#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "harness/trace_printer.h"
#include "server/context_cache.h"

using namespace robustqp;

int main() {
  std::cout << "=== TPC-DS 4D_Q91: robustness to selectivity misestimation ===\n\n";
  const auto wb = *ContextCache::Default().Get("4D_Q91", Ess::Config{});
  const Ess& ess = *wb->ess;

  std::cout << "query: " << wb->query->name() << " over "
            << wb->query->num_tables() << " tables, "
            << wb->query->num_joins() << " joins, D=" << ess.dims()
            << " error-prone predicates:\n";
  for (int d = 0; d < ess.dims(); ++d) {
    std::cout << "  e" << d + 1 << ": " << wb->query->EppLabel(d) << "\n";
  }

  // Where the optimizer THINKS the query lives.
  const EssPoint qe = ess.optimizer().estimator().NativeEstimatePoint();
  std::cout << "\nnative estimate q_e = (";
  for (size_t d = 0; d < qe.size(); ++d) {
    std::cout << (d ? ", " : "") << qe[d];
  }
  std::cout << ")\n";

  // Where it ACTUALLY lives (a hostile instance, orders of magnitude off).
  GridLoc qa(static_cast<size_t>(ess.dims()));
  for (int d = 0; d < ess.dims(); ++d) {
    qa[static_cast<size_t>(d)] = ess.points() * (d % 2 == 0 ? 3 : 2) / 4;
  }
  const EssPoint qa_sel = ess.SelAt(qa);
  std::cout << "true location  q_a = (";
  for (size_t d = 0; d < qa_sel.size(); ++d) {
    std::cout << (d ? ", " : "") << qa_sel[d];
  }
  const double opt_cost = ess.OptimalCost(qa);
  std::cout << ")\noptimal cost at q_a: " << opt_cost << "\n\n";

  // Native optimizer: executes the q_e plan at q_a, no safety net.
  const std::unique_ptr<Plan> native_plan = ess.optimizer().Optimize(qe);
  const double native_cost = ess.optimizer().PlanCost(*native_plan, qa_sel);
  std::cout << "native optimizer:  cost " << native_cost << "  (subopt "
            << native_cost / opt_cost << ")\n";

  // PlanBouquet.
  PlanBouquet pb(&ess);
  SimulatedOracle o1(&ess, qa);
  const DiscoveryResult r_pb = pb.Run(&o1);
  std::cout << "PlanBouquet:       cost " << r_pb.total_cost << "  (subopt "
            << r_pb.total_cost / opt_cost << ", guarantee " << pb.MsoGuarantee()
            << ", " << r_pb.num_executions() << " executions)\n";

  // SpillBound.
  SpillBound sb(&ess);
  SimulatedOracle o2(&ess, qa);
  const DiscoveryResult r_sb = sb.Run(&o2);
  std::cout << "SpillBound:        cost " << r_sb.total_cost << "  (subopt "
            << r_sb.total_cost / opt_cost << ", guarantee "
            << SpillBound::MsoGuarantee(ess.dims()) << ", "
            << r_sb.num_executions() << " executions)\n";

  // AlignedBound.
  AlignedBound ab(&ess);
  SimulatedOracle o3(&ess, qa);
  const DiscoveryResult r_ab = ab.Run(&o3);
  const auto range = AlignedBound::MsoGuaranteeRange(ess.dims());
  std::cout << "AlignedBound:      cost " << r_ab.total_cost << "  (subopt "
            << r_ab.total_cost / opt_cost << ", guarantee ["
            << range.first << ", " << range.second << "], "
            << r_ab.num_executions() << " executions)\n";

  std::cout << "\nSpillBound discovery drill-down (selectivity knowledge in %):\n";
  PrintContourDrilldown(ess, r_sb, std::cout);

  std::cout << "\nAlignedBound discovery drill-down:\n";
  PrintContourDrilldown(ess, r_ab, std::cout);
  return 0;
}
