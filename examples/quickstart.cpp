// Quickstart: build the synthetic TPC-DS catalog, construct the ESS for a
// 2-epp query (TPC-DS Q91), and run SpillBound from a hypothetical true
// location — printing the contours, the plan bouquet, the execution trace
// (the paper's Fig. 7 scenario), and the resulting sub-optimality.

#include <iostream>

#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "harness/trace_printer.h"
#include "server/context_cache.h"

using namespace robustqp;

int main() {
  std::cout << "=== Robust query processing quickstart (2D TPC-DS Q91) ===\n\n";

  // 1. Catalog + query + ESS (optimal plan & cost at every grid location).
  const auto wb = *ContextCache::Default().Get("2D_Q91", Ess::Config{});
  const Ess& ess = *wb->ess;
  std::cout << "ESS grid: " << ess.dims() << " dims x " << ess.points()
            << " points, " << ess.num_locations() << " locations\n";
  std::cout << "POSP size: " << ess.pool().size() << " distinct optimal plans\n";
  std::cout << "cost range: Cmin=" << ess.cmin() << "  Cmax=" << ess.cmax()
            << "  -> " << ess.num_contours() << " doubling contours\n\n";

  std::cout << "contour plan sets (the plan bouquet):\n";
  for (int i = 0; i < ess.num_contours(); ++i) {
    std::cout << "  IC" << i + 1 << " @ cost " << ess.ContourCost(i) << ": ";
    for (const Plan* p : ess.ContourPlans(i)) std::cout << p->display_name() << " ";
    std::cout << "\n";
  }

  // 2. Pick a hypothetical true location q_a (selectivities the optimizer
  //    could never have estimated) and let SpillBound discover it.
  GridLoc qa(2);
  qa[0] = ess.points() * 3 / 4;  // CS~DD join far above any estimate
  qa[1] = ess.points() / 2;      // C~CA join moderately above
  const EssPoint qa_sel = ess.SelAt(qa);
  std::cout << "\ntrue location q_a = (" << qa_sel[0] << ", " << qa_sel[1]
            << "), optimal cost " << ess.OptimalCost(qa) << "\n\n";

  SpillBound sb(&ess);
  SimulatedOracle oracle(&ess, qa);
  const DiscoveryResult result = sb.Run(&oracle);

  std::cout << "SpillBound execution trace:\n";
  PrintExecutionTrace(ess, result, std::cout);

  const double subopt = result.total_cost / ess.OptimalCost(qa);
  std::cout << "\nSpillBound sub-optimality at q_a: " << subopt
            << "  (guarantee: " << SpillBound::MsoGuarantee(ess.dims()) << ")\n";

  // 3. Compare with PlanBouquet on the same instance.
  PlanBouquet pb(&ess);
  SimulatedOracle oracle2(&ess, qa);
  const DiscoveryResult pb_result = pb.Run(&oracle2);
  std::cout << "PlanBouquet sub-optimality at q_a: "
            << pb_result.total_cost / ess.OptimalCost(qa)
            << "  (guarantee: " << pb.MsoGuarantee()
            << ", rho=" << pb.rho() << ")\n";
  return 0;
}
