// The paper's introductory example (Fig. 1): query EQ enumerates orders
// for cheap parts (p_retailprice < 1000) by joining part, lineitem and
// orders. The two join predicates are error-prone; this example runs the
// general 3D formulation where the price filter is a third error-prone
// dimension, and walks the paper's Section 1 narrative: iso-cost
// contours, the plan bouquet, and SpillBound's calibrated discovery.

#include <iostream>

#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "harness/trace_printer.h"
#include "harness/true_selectivity.h"
#include "workloads/tpch_mini.h"

using namespace robustqp;

int main() {
  std::cout << "=== Example query EQ (paper Fig. 1) ===\n\n"
            << "SELECT * FROM lineitem, orders, part\n"
            << "WHERE  p_partkey = l_partkey AND o_orderkey = l_orderkey\n"
            << "AND    p_retailprice < 1000\n\n";

  const std::unique_ptr<Catalog> catalog = BuildTpchMiniCatalog();
  const Query query = MakeExampleQueryEq(/*filter_epp=*/true);
  if (!query.Validate(*catalog).ok()) {
    std::cerr << "query validation failed\n";
    return 1;
  }

  Ess::Config config;
  config.points_per_dim = 12;
  config.min_sel = 1e-4;
  const std::unique_ptr<Ess> ess = Ess::Build(*catalog, query, config);

  std::cout << "error-prone predicates (D = " << ess->dims() << "):\n";
  for (int d = 0; d < ess->dims(); ++d) {
    std::cout << "  e" << d + 1 << ": " << query.EppLabel(d) << "\n";
  }
  std::cout << "\niso-cost contours: " << ess->num_contours()
            << " (doubling from " << ess->cmin() << " to " << ess->cmax()
            << ")\n";
  PlanBouquet pb(ess.get());
  std::cout << "plan bouquet: " << pb.BouquetSize()
            << " plans, max contour density rho = " << pb.rho() << "\n\n";

  // The data's actual selectivities — unknown to any estimator upfront.
  const EssPoint truth = ComputeTrueSelectivities(*catalog, query);
  GridLoc qa(3);
  for (int d = 0; d < 3; ++d) {
    qa[static_cast<size_t>(d)] = ess->axis().NearestIndex(truth[static_cast<size_t>(d)]);
  }
  std::cout << "true selectivities (measured on the data): ("
            << truth[0] << ", " << truth[1] << ", " << truth[2] << ")\n";
  std::cout << "optimal cost at the truth: " << ess->OptimalCost(qa) << "\n\n";

  SpillBound sb(ess.get());
  SimulatedOracle oracle(ess.get(), qa);
  const DiscoveryResult r = sb.Run(&oracle);
  std::cout << "SpillBound discovery of the true location:\n";
  PrintExecutionTrace(*ess, r, std::cout);
  std::cout << "\nsub-optimality " << r.total_cost / ess->OptimalCost(qa)
            << " vs guarantee " << SpillBound::MsoGuarantee(3)
            << " (D^2+3D, D=3)\n";
  return 0;
}
