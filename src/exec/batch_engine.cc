// Vectorized batch execution engine.
//
// The plan tree is compiled into push-based *pipelines* in the exact
// order the tuple engine's Open() recursion visits blocking phases:
// a hash join emits its build subtree's pipelines and a build-drain
// pipeline before the probe side compiles; a nested-loop join
// materializes its inner first; a sort-merge join drains and sorts both
// inputs and then becomes a merge *source*. Each pipeline is
//
//   pre-ops  →  source (table scan | SMJ merge)  →  streaming stages
//            (hash probe / index-NL probe / NLJ pair loop)  →  sink
//            (root counter / hash build / NLJ materialize / sort buffer)
//
// and is driven in fixed-width morsels of kBatchRows source rows.
// Filters run as tight column loops producing selection vectors; batches
// are column-major and carry only the columns later stages actually
// consume (join keys and sink payloads — the root pipeline usually
// carries zero columns and reduces to counting).
//
// Budget accounting (bit-identical to the tuple engine): both engines
// count cost events into the shared CostLedger and reduce it through the
// canonical fixed-order CostLedger::Total, which is independent of the
// order events were counted in and monotone event-by-event. A budgeted
// run therefore processes each morsel optimistically under a snapshot
// (ledger + touched NodeStats + merge cursors), bulk-counting whole
// batches; if the batch's end-of-morsel total exceeds the budget, the
// snapshot is rolled back and the morsel is *replayed* tuple-at-a-time
// in the tuple engine's exact event order to stop at the same tuple —
// carry-in is the committed prefix, carry-out is the replayed tail.
// Sink data effects (hash inserts, sort/materialize appends, output
// rows) are deferred until the morsel's budget check passes, so rollback
// never has to undo a data structure.
//
// Morsel parallelism: full runs (budget < 0, not spill) fan scan
// pipelines out on a ThreadPool. Each worker counts into its own ledger
// and NodeStats and buffers its sink rows; partials are merged in worker
// order (blocks are contiguous and ascending), so the global row order —
// and with it every count, every hash-chain order, and the final result —
// is bit-identical at any thread count. Budgeted and spill executions
// stay single-threaded: an abort must land on one well-defined tuple,
// and the paper's learning primitive depends on that.

#include "exec/batch_engine.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "exec/cost_ledger.h"
#include "exec/kernels.h"
#include "shard/chunking.h"
#include "storage/hash_index.h"
#include "storage/table.h"

namespace robustqp {
namespace {

constexpr int64_t kBatchRows = 1024;
/// Scan pipelines over at least this many rows go morsel-parallel.
constexpr int64_t kMinParallelRows = 4 * kBatchRows;

// ---------------------------------------------------------------------------
// Column references and resolved predicates
// ---------------------------------------------------------------------------

/// A column of one query table: (table index within the query, column
/// index within that table's schema).
struct ColRef {
  int table = -1;
  int col = -1;
  friend bool operator<(const ColRef& a, const ColRef& b) {
    return a.table != b.table ? a.table < b.table : a.col < b.col;
  }
  friend bool operator==(const ColRef& a, const ColRef& b) {
    return a.table == b.table && a.col == b.col;
  }
};

struct Filter {
  const ColumnData* col = nullptr;
  CompareOp op = CompareOp::kEq;
  double value = 0.0;
};

/// Same semantics as the tuple engine: compare GetNumeric(row) to the
/// literal.
bool EvalFilter(const Filter& f, int64_t row) {
  const double v = f.col->GetNumeric(row);
  switch (f.op) {
    case CompareOp::kLt: return v < f.value;
    case CompareOp::kLe: return v <= f.value;
    case CompareOp::kGt: return v > f.value;
    case CompareOp::kGe: return v >= f.value;
    case CompareOp::kEq: return v == f.value;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

/// Column-major batch; `cols` holds only the live columns of the current
/// pipeline point.
struct Batch {
  int64_t n = 0;
  std::vector<std::vector<double>> cols;

  void Reset(size_t width) {
    n = 0;
    cols.resize(width);
    for (auto& c : cols) c.clear();
  }
};

// ---------------------------------------------------------------------------
// Join hash table: the kernels-layer flat open-addressing table (unique
// keys own insertion-ordered entry chains, matching the tuple engine's
// unordered_map<key, vector<Row>> emission order; payloads column-major).
// ---------------------------------------------------------------------------

using JoinHashTable = kernels::FlatJoinTable;

/// Materialized inner side of a block nested-loop join, in drain order.
struct NljBuffer {
  int64_t n = 0;
  std::vector<std::vector<double>> keys;  // one col per join key
  std::vector<std::vector<double>> pay;
};

/// Shared state of one sort-merge join: both sorted inputs plus the merge
/// cursors (a transcription of the tuple engine's SortMergeJoinOp).
struct SmjState {
  int node_id = -1;
  std::vector<std::vector<double>> lkeys, rkeys;  // key cols, sorted
  std::vector<std::vector<double>> lpay, rpay;    // payload cols, sorted
  size_t lsize = 0, rsize = 0;
  // Merge cursors.
  size_t li = 0, ri = 0;
  size_t group_li = 0, group_le = 0, group_re = 0, emit_ri = 0;
  bool in_group = false;
  bool eof = false;

  int Compare(size_t l, size_t r) const {
    for (size_t k = 0; k < lkeys.size(); ++k) {
      const double a = lkeys[k][l];
      const double b = rkeys[k][r];
      if (a < b) return -1;
      if (a > b) return 1;
    }
    return 0;
  }

  struct Cursor {
    size_t li, ri, group_li, group_le, group_re, emit_ri;
    bool in_group;
  };
  Cursor SaveCursor() const {
    return {li, ri, group_li, group_le, group_re, emit_ri, in_group};
  }
  void RestoreCursor(const Cursor& c) {
    li = c.li;
    ri = c.ri;
    group_li = c.group_li;
    group_le = c.group_le;
    group_re = c.group_re;
    emit_ri = c.emit_ri;
    in_group = c.in_group;
  }
};

// ---------------------------------------------------------------------------
// Compiled pipeline pieces
// ---------------------------------------------------------------------------

/// One output column of a streaming stage: either replicated from the
/// incoming batch or gathered from the stage's own (build/inner) side.
struct OutCol {
  bool from_input;
  int idx;  // batch col position, payload col position, or table col idx
};

struct Stage {
  enum class Kind { kHashProbe, kIndexProbe, kNlj };
  Kind kind;
  int node_id = -1;
  std::vector<int> in_keys;  // key col positions in the incoming batch
  std::vector<OutCol> out_cols;
  JoinHashTable* ht = nullptr;           // kHashProbe
  NljBuffer* nlj = nullptr;              // kNlj
  const HashIndex* index = nullptr;      // kIndexProbe
  const Table* inner_table = nullptr;    // kIndexProbe
  std::vector<Filter> inner_filters;     // kIndexProbe (uncharged, unmonitored)
};

struct Sink {
  enum class Kind { kRoot, kHashBuild, kNljMaterialize, kSort };
  Kind kind = Kind::kRoot;
  int node_id = -1;
  std::vector<int> key_cols;      // positions in the incoming batch
  std::vector<int> payload_cols;  // positions in the incoming batch
  JoinHashTable* ht = nullptr;
  NljBuffer* nlj = nullptr;
  SmjState* smj = nullptr;
  bool smj_left = false;
};

/// Uncharged work the tuple engine performs inside Open(), at the same
/// position relative to the pipeline's charges.
struct PreOp {
  enum class Kind { kScanFilterStats, kIndexMeta };
  Kind kind;
  int stat_node = -1;  // scan node whose filter vectors get assigned
  size_t num_filters = 0;
  // kIndexMeta only: the metadata-only inner pass of an index-NL join.
  int join_node = -1;
  const Table* table = nullptr;
  std::vector<Filter> filters;
};

struct ScanSource {
  int node_id = -1;
  const Table* table = nullptr;
  std::vector<Filter> filters;
  std::vector<const ColumnData*> out_cols;  // per live output column
};

/// Merge-source output column: (from left side, payload col position).
struct MergeOut {
  bool from_left;
  int idx;
};

struct Pipeline {
  std::vector<PreOp> pre_ops;
  bool is_scan = true;
  ScanSource scan;
  SmjState* merge = nullptr;
  std::vector<MergeOut> merge_out;
  std::vector<Stage> stages;
  Sink sink;
  /// Node ids whose NodeStats this pipeline mutates per batch (snapshot
  /// set for budgeted rollback).
  std::vector<int> touched;
};

// ---------------------------------------------------------------------------
// Plan compilation
// ---------------------------------------------------------------------------

class Compiler {
 public:
  Compiler(const Catalog& catalog, const Query& query, const PlanNode& root,
           int num_nodes)
      : catalog_(catalog), query_(query), root_(root) {
    meta_.resize(static_cast<size_t>(num_nodes));
    tables_.resize(query.tables().size());
    for (size_t t = 0; t < query.tables().size(); ++t) {
      tables_[t] = catalog.FindTable(query.tables()[t])->table.get();
    }
  }

  void Compile() {
    ComputeMask(root_);
    ComputeRefs(root_, {});
    Sink root_sink;
    root_sink.kind = Sink::Kind::kRoot;
    CompileInto(root_, root_sink);
    for (Pipeline& p : pipelines) FinishPipeline(&p);
  }

  std::vector<Pipeline> pipelines;
  // Deques: stable addresses for pointers held by stages/sinks.
  std::deque<JoinHashTable> hash_tables;
  std::deque<NljBuffer> nlj_buffers;
  std::deque<SmjState> smj_states;

 private:
  struct NodeMeta {
    uint64_t mask = 0;
    std::vector<ColRef> out_refs;
    std::vector<ColRef> left_keys, right_keys;  // join nodes only
  };

  NodeMeta& Meta(const PlanNode& n) {
    return meta_[static_cast<size_t>(n.id)];
  }

  uint64_t ComputeMask(const PlanNode& n) {
    NodeMeta& m = Meta(n);
    if (n.op == PlanOp::kSeqScan) {
      m.mask = 1ull << n.table_idx;
    } else if (n.op == PlanOp::kIndexNLJoin) {
      m.mask = ComputeMask(*n.left) | (1ull << n.right->table_idx);
    } else {
      m.mask = ComputeMask(*n.left) | ComputeMask(*n.right);
    }
    return m.mask;
  }

  ColRef Ref(const std::string& table, const std::string& column) const {
    const int t = query_.TableIndex(table);
    const int c = tables_[static_cast<size_t>(t)]->schema().FindColumn(column);
    RQP_CHECK(t >= 0 && c >= 0);
    return {t, c};
  }

  /// Resolves the ends of each join predicate to this node's child sides.
  void ResolveJoinKeys(const PlanNode& n, uint64_t left_mask) {
    NodeMeta& m = Meta(n);
    for (int j : n.join_indices) {
      const JoinPredicate& jp = query_.joins()[static_cast<size_t>(j)];
      const ColRef l = Ref(jp.left_table, jp.left_column);
      const ColRef r = Ref(jp.right_table, jp.right_column);
      const bool left_has_left = (left_mask >> l.table) & 1;
      m.left_keys.push_back(left_has_left ? l : r);
      m.right_keys.push_back(left_has_left ? r : l);
    }
  }

  void ComputeRefs(const PlanNode& n, std::vector<ColRef> needed) {
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
    NodeMeta& m = Meta(n);
    m.out_refs = needed;
    if (n.op == PlanOp::kSeqScan) return;
    if (n.op == PlanOp::kIndexNLJoin) {
      const int t = n.right->table_idx;
      ResolveJoinKeys(n, Meta(*n.left).mask);
      std::vector<ColRef> left_needed;
      for (const ColRef& r : m.out_refs) {
        if (r.table != t) left_needed.push_back(r);
      }
      // The outer end of the single join predicate.
      left_needed.push_back((Meta(*n.left).mask >> m.left_keys[0].table) & 1
                                ? m.left_keys[0]
                                : m.right_keys[0]);
      ComputeRefs(*n.left, std::move(left_needed));
      return;
    }
    const uint64_t lm = Meta(*n.left).mask;
    ResolveJoinKeys(n, lm);
    std::vector<ColRef> left_needed, right_needed;
    for (const ColRef& r : m.out_refs) {
      ((lm >> r.table) & 1 ? left_needed : right_needed).push_back(r);
    }
    for (const ColRef& r : m.left_keys) left_needed.push_back(r);
    for (const ColRef& r : m.right_keys) right_needed.push_back(r);
    ComputeRefs(*n.left, std::move(left_needed));
    ComputeRefs(*n.right, std::move(right_needed));
  }

  int PosOf(const PlanNode& n, const ColRef& r) const {
    const std::vector<ColRef>& refs =
        meta_[static_cast<size_t>(n.id)].out_refs;
    const auto it = std::lower_bound(refs.begin(), refs.end(), r);
    RQP_CHECK(it != refs.end() && *it == r);
    return static_cast<int>(it - refs.begin());
  }

  std::vector<Filter> ResolveFilters(const std::vector<int>& filter_indices,
                                     const Table* table) const {
    std::vector<Filter> out;
    for (int f : filter_indices) {
      const FilterPredicate& fp = query_.filters()[static_cast<size_t>(f)];
      const ColumnData* col =
          &table->column(table->schema().FindColumn(fp.column));
      CompareOp op = fp.op;
      double value = fp.value;
      if (fp.is_string) {
        kernels::MapStringPredicate(col->enc(), fp.op, fp.value_str, &op,
                                    &value);
      }
      out.push_back({col, op, value});
    }
    return out;
  }

  /// Splits this node's out_refs into streaming-side vs other-side,
  /// returning the other-side refs (payload list, in out_refs order) and
  /// filling `out_cols` with the stage emission mapping.
  std::vector<ColRef> SplitOutputs(const PlanNode& n,
                                   const PlanNode& stream_child,
                                   std::vector<OutCol>* out_cols) {
    const NodeMeta& m = Meta(n);
    const uint64_t sm = Meta(stream_child).mask;
    std::vector<ColRef> payload_refs;
    for (const ColRef& r : m.out_refs) {
      if ((sm >> r.table) & 1) {
        out_cols->push_back({true, PosOf(stream_child, r)});
      } else {
        out_cols->push_back({false, static_cast<int>(payload_refs.size())});
        payload_refs.push_back(r);
      }
    }
    return payload_refs;
  }

  void CompileInto(const PlanNode& n, Sink sink) {
    Pipeline p;
    p.sink = sink;
    SourceInfo src = Descend(n, &p.stages, &p.pre_ops);
    p.is_scan = src.is_scan;
    p.scan = std::move(src.scan);
    p.merge = src.merge;
    p.merge_out = std::move(src.merge_out);
    pipelines.push_back(std::move(p));
  }

  struct SourceInfo {
    bool is_scan = true;
    ScanSource scan;
    SmjState* merge = nullptr;
    std::vector<MergeOut> merge_out;
  };

  SourceInfo Descend(const PlanNode& n, std::vector<Stage>* stages,
                     std::vector<PreOp>* pre) {
    const NodeMeta& m = Meta(n);
    switch (n.op) {
      case PlanOp::kSeqScan: {
        const Table* table = tables_[static_cast<size_t>(n.table_idx)];
        PreOp po;
        po.kind = PreOp::Kind::kScanFilterStats;
        po.stat_node = n.id;
        po.num_filters = n.filter_indices.size();
        pre->push_back(std::move(po));
        SourceInfo src;
        src.is_scan = true;
        src.scan.node_id = n.id;
        src.scan.table = table;
        src.scan.filters = ResolveFilters(n.filter_indices, table);
        for (const ColRef& r : m.out_refs) {
          RQP_CHECK(r.table == n.table_idx);
          src.scan.out_cols.push_back(&table->column(r.col));
        }
        return src;
      }
      case PlanOp::kHashJoin: {
        // Build side first (its blocking pipelines, then the drain).
        Stage st;
        st.kind = Stage::Kind::kHashProbe;
        st.node_id = n.id;
        const std::vector<ColRef> payload_refs =
            SplitOutputs(n, *n.right, &st.out_cols);
        hash_tables.emplace_back();
        JoinHashTable* ht = &hash_tables.back();
        ht->Init(static_cast<int>(m.left_keys.size()),
                 static_cast<int>(payload_refs.size()));
        st.ht = ht;
        Sink bs;
        bs.kind = Sink::Kind::kHashBuild;
        bs.node_id = n.id;
        bs.ht = ht;
        for (const ColRef& r : m.left_keys) {
          bs.key_cols.push_back(PosOf(*n.left, r));
        }
        for (const ColRef& r : payload_refs) {
          bs.payload_cols.push_back(PosOf(*n.left, r));
        }
        CompileInto(*n.left, std::move(bs));
        // Probe side streams through this pipeline.
        SourceInfo src = Descend(*n.right, stages, pre);
        for (const ColRef& r : m.right_keys) {
          st.in_keys.push_back(PosOf(*n.right, r));
        }
        stages->push_back(std::move(st));
        return src;
      }
      case PlanOp::kNLJoin: {
        // Inner (right) side is materialized first.
        Stage st;
        st.kind = Stage::Kind::kNlj;
        st.node_id = n.id;
        const std::vector<ColRef> payload_refs =
            SplitOutputs(n, *n.left, &st.out_cols);
        nlj_buffers.emplace_back();
        NljBuffer* buf = &nlj_buffers.back();
        buf->keys.assign(m.right_keys.size(), {});
        buf->pay.assign(payload_refs.size(), {});
        st.nlj = buf;
        Sink ms;
        ms.kind = Sink::Kind::kNljMaterialize;
        ms.node_id = n.id;
        ms.nlj = buf;
        for (const ColRef& r : m.right_keys) {
          ms.key_cols.push_back(PosOf(*n.right, r));
        }
        for (const ColRef& r : payload_refs) {
          ms.payload_cols.push_back(PosOf(*n.right, r));
        }
        CompileInto(*n.right, std::move(ms));
        // Outer (left) side streams.
        SourceInfo src = Descend(*n.left, stages, pre);
        for (const ColRef& r : m.left_keys) {
          st.in_keys.push_back(PosOf(*n.left, r));
        }
        stages->push_back(std::move(st));
        return src;
      }
      case PlanOp::kSortMergeJoin: {
        smj_states.emplace_back();
        SmjState* smj = &smj_states.back();
        smj->node_id = n.id;
        smj->lkeys.assign(m.left_keys.size(), {});
        smj->rkeys.assign(m.right_keys.size(), {});
        // Payload split: out_refs on the left side vs the right side.
        SourceInfo src;
        src.is_scan = false;
        src.merge = smj;
        const uint64_t lm = Meta(*n.left).mask;
        std::vector<ColRef> lrefs, rrefs;
        for (const ColRef& r : m.out_refs) {
          if ((lm >> r.table) & 1) {
            src.merge_out.push_back({true, static_cast<int>(lrefs.size())});
            lrefs.push_back(r);
          } else {
            src.merge_out.push_back({false, static_cast<int>(rrefs.size())});
            rrefs.push_back(r);
          }
        }
        smj->lpay.assign(lrefs.size(), {});
        smj->rpay.assign(rrefs.size(), {});
        Sink ls;
        ls.kind = Sink::Kind::kSort;
        ls.node_id = n.id;
        ls.smj = smj;
        ls.smj_left = true;
        for (const ColRef& r : m.left_keys) {
          ls.key_cols.push_back(PosOf(*n.left, r));
        }
        for (const ColRef& r : lrefs) {
          ls.payload_cols.push_back(PosOf(*n.left, r));
        }
        CompileInto(*n.left, std::move(ls));
        Sink rs;
        rs.kind = Sink::Kind::kSort;
        rs.node_id = n.id;
        rs.smj = smj;
        rs.smj_left = false;
        for (const ColRef& r : m.right_keys) {
          rs.key_cols.push_back(PosOf(*n.right, r));
        }
        for (const ColRef& r : rrefs) {
          rs.payload_cols.push_back(PosOf(*n.right, r));
        }
        CompileInto(*n.right, std::move(rs));
        return src;
      }
      case PlanOp::kIndexNLJoin: {
        SourceInfo src = Descend(*n.left, stages, pre);
        const int t = n.right->table_idx;
        const Table* inner = tables_[static_cast<size_t>(t)];
        // The tuple engine runs the metadata-only inner pass inside this
        // node's Open(), i.e. after the outer child's Open() — hence
        // after the outer's pre-ops, before any streaming.
        PreOp po;
        po.kind = PreOp::Kind::kIndexMeta;
        po.stat_node = n.right->id;
        po.join_node = n.id;
        po.table = inner;
        po.filters = ResolveFilters(n.right->filter_indices, inner);
        pre->push_back(std::move(po));

        Stage st;
        st.kind = Stage::Kind::kIndexProbe;
        st.node_id = n.id;
        st.inner_table = inner;
        st.inner_filters = ResolveFilters(n.right->filter_indices, inner);
        const JoinPredicate& jp =
            query_.joins()[static_cast<size_t>(n.join_indices[0])];
        const bool inner_is_left = query_.TableIndex(jp.left_table) == t;
        const std::string& inner_col =
            inner_is_left ? jp.left_column : jp.right_column;
        st.index = catalog_.FindIndex(
            query_.tables()[static_cast<size_t>(t)], inner_col);
        RQP_CHECK(st.index != nullptr);
        const ColRef outer_key = (Meta(*n.left).mask >>
                                  Meta(n).left_keys[0].table) &
                                         1
                                     ? Meta(n).left_keys[0]
                                     : Meta(n).right_keys[0];
        st.in_keys.push_back(PosOf(*n.left, outer_key));
        for (const ColRef& r : Meta(n).out_refs) {
          if (r.table == t) {
            st.out_cols.push_back({false, r.col});  // gather from the table
          } else {
            st.out_cols.push_back({true, PosOf(*n.left, r)});
          }
        }
        stages->push_back(std::move(st));
        return src;
      }
    }
    RQP_CHECK(false);
    return {};
  }

  /// Collects the NodeStats ids a pipeline's batches mutate.
  static void FinishPipeline(Pipeline* p) {
    std::vector<int>& t = p->touched;
    t.push_back(p->is_scan ? p->scan.node_id : p->merge->node_id);
    for (const Stage& s : p->stages) t.push_back(s.node_id);
    if (p->sink.node_id >= 0) t.push_back(p->sink.node_id);
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
  }

  const Catalog& catalog_;
  const Query& query_;
  const PlanNode& root_;
  std::vector<NodeMeta> meta_;
  std::vector<const Table*> tables_;
};

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// Counting context a bulk step writes into — the main execution state,
/// or a morsel-parallel worker's private partial.
struct WorkCtx {
  CostLedger* ledger = nullptr;
  std::vector<NodeStats>* stats = nullptr;
  int64_t* output_rows = nullptr;
  bool budgeted = false;
  double budget = -1.0;
  const CostParams* params = nullptr;
  /// Physical-only scan pruning switch (Executor::Options::use_zone_maps);
  /// never affects results or counts, only which rows get *evaluated*.
  bool use_zone_maps = true;
  /// Fused filter-on-compressed switch (Executor::Options::use_compression);
  /// like zone maps, purely physical: encoded scans decode-then-filter
  /// when off, with identical survivors and counts.
  bool use_compression = true;
  /// Per-block storage.page_fault degradation bitmap for the current
  /// pipeline's scan table (null when disarmed or not mapped): a faulted
  /// block declines the fused kernels and scans via the resident decode
  /// path — survivors and counts are identical, so this is charged to the
  /// robustness report, never to cost_used. Drawn coordinator-side in
  /// RunBatchEngine and shared read-only by every worker.
  const std::vector<uint8_t>* pf_blocks = nullptr;

  NodeStats& St(int node_id) {
    return (*stats)[static_cast<size_t>(node_id)];
  }
  /// True once the ledger's canonical total exceeds the budget.
  bool Hazard() const {
    return budgeted && ledger->Total(*params) > budget;
  }
  /// Tuple-order charge used by the replay interpreter.
  bool Charge(EventCount CostLedger::*counter) {
    ++((*ledger).*counter);
    return !budgeted || ledger->Total(*params) <= budget;
  }
};

/// Per-pipeline-run scratch (one per worker in parallel mode).
struct Scratch {
  std::vector<int64_t> sel;
  Batch a, b;
  std::vector<double> key;
  std::vector<double> pay;
  kernels::FilterScratch fsc;
  std::vector<int64_t> probe_u;   // vectorized probe: resolved ordinals
  std::vector<uint64_t> hashes;   // vectorized probe: hash pass output
  std::vector<int64_t> match_i;   // vectorized probe: matched probe rows
  std::vector<int64_t> match_e;   // vectorized probe: matched entries
  /// Replay row values, one vector per pipeline level.
  std::vector<std::vector<double>> rows;
};

/// Snapshot for budgeted rollback: everything a bulk morsel mutates
/// besides deferred sink data.
struct MorselSnapshot {
  CostLedger ledger;
  std::vector<NodeStats> stats;  // parallel to Pipeline::touched
  SmjState::Cursor cursor{};
  bool merge_eof = false;
};

MorselSnapshot TakeSnapshot(const Pipeline& p, const WorkCtx& ctx) {
  MorselSnapshot s;
  s.ledger = *ctx.ledger;
  for (int id : p.touched) {
    s.stats.push_back((*ctx.stats)[static_cast<size_t>(id)]);
  }
  if (!p.is_scan) {
    s.cursor = p.merge->SaveCursor();
    s.merge_eof = p.merge->eof;
  }
  return s;
}

void RestoreSnapshot(const Pipeline& p, const MorselSnapshot& s, WorkCtx* ctx) {
  *ctx->ledger = s.ledger;
  for (size_t i = 0; i < p.touched.size(); ++i) {
    (*ctx->stats)[static_cast<size_t>(p.touched[i])] = s.stats[i];
  }
  if (!p.is_scan) {
    p.merge->RestoreCursor(s.cursor);
    p.merge->eof = s.merge_eof;
  }
}

// ---------------------------------------------------------------------------
// Pre-ops (uncharged Open()-time work)
// ---------------------------------------------------------------------------

int64_t FilterCascade(const std::vector<Filter>& filters, int64_t r0,
                      int64_t r1, bool use_zones, bool use_fused,
                      NodeStats* st, std::vector<int64_t>* sel,
                      kernels::FilterScratch* fsc, bool* dense);

void RunPreOps(const Pipeline& p, WorkCtx* ctx) {
  for (const PreOp& po : p.pre_ops) {
    NodeStats& st = ctx->St(po.stat_node);
    st.filter_in.assign(po.num_filters ? po.num_filters : po.filters.size(),
                        0);
    st.filter_pass.assign(st.filter_in.size(), 0);
    if (po.kind == PreOp::Kind::kScanFilterStats) continue;
    // kIndexMeta: count the filtered inner cardinality so a completed
    // spill learns the same denominator a hash join would (uncharged).
    // Runs the shared kernel cascade per zone block so clustered inner
    // filters prune without touching the counts.
    NodeStats& jst = ctx->St(po.join_node);
    jst.right_in = 0;
    const int64_t n = po.table->num_rows();
    std::vector<int64_t> sel;
    kernels::FilterScratch fsc;
    for (int64_t r0 = 0; r0 < n; r0 += kZoneBlockRows) {
      const int64_t r1 = std::min<int64_t>(n, r0 + kZoneBlockRows);
      bool dense = false;
      jst.right_in += FilterCascade(po.filters, r0, r1, ctx->use_zone_maps,
                                    ctx->use_compression, &st, &sel, &fsc,
                                    &dense);
    }
  }
}

// ---------------------------------------------------------------------------
// Bulk source: scan morsel -> filter cascade -> gathered batch
// ---------------------------------------------------------------------------

/// Runs the filter cascade over rows [r0, r1) with zone-map block
/// classification and branch-free kernels, accumulating filter_in /
/// filter_pass into `st` exactly as the per-row early-exit loop would
/// (filter k sees the survivors of filters 0..k-1). On return `*dense`
/// means the whole range survived (no selection vector was materialized);
/// otherwise survivors are in `*sel`. Returns the survivor count.
///
/// Pruning never changes the accumulated counts: a kNone block bumps
/// filter_in by the incoming count and filter_pass by zero, a kAll block
/// bumps both by the incoming count — the same totals row-at-a-time
/// evaluation produces, just without touching the rows.
int64_t FilterCascade(const std::vector<Filter>& filters, int64_t r0,
                      int64_t r1, bool use_zones, bool use_fused,
                      NodeStats* st, std::vector<int64_t>* sel,
                      kernels::FilterScratch* fsc, bool* dense) {
  *dense = true;
  int64_t cur = r1 - r0;
  sel->clear();
  for (size_t k = 0; k < filters.size(); ++k) {
    const Filter& f = filters[k];
    // Observed pass rate so far picks the dense vs sparse kernel; it only
    // affects speed, never which rows survive.
    const double est =
        st->filter_in[k] > 0
            ? static_cast<double>(st->filter_pass[k]) /
                  static_cast<double>(st->filter_in[k])
            : 0.5;
    st->filter_in[k] += cur;
    kernels::ZoneMatch zm = kernels::ZoneMatch::kSome;
    if (use_zones && cur > 0) {
      zm = kernels::ClassifyZones(*f.col, f.op, f.value, r0, r1);
    }
    if (zm == kernels::ZoneMatch::kNone) {
      cur = 0;
      *dense = false;
      sel->clear();
    } else if (zm == kernels::ZoneMatch::kAll) {
      // Every row in [r0, r1) passes; the current selection is a subset.
    } else if (*dense) {
      cur = kernels::FilterRange(*f.col, f.op, f.value, r0, r1, est, sel, fsc,
                                 use_fused);
      *dense = false;
    } else {
      cur = kernels::FilterRefine(*f.col, f.op, f.value, sel);
    }
    st->filter_pass[k] += cur;
    if (cur == 0 && !*dense) break;  // later filters see zero inputs
  }
  return *dense ? (r1 - r0) : cur;
}

/// Scans rows [r0, r1), applying filters as kernel cascades; leaves the
/// surviving batch in `out`. Counts scan events and filter stats.
void ScanBulk(const ScanSource& s, int64_t r0, int64_t r1, WorkCtx* ctx,
              Scratch* sc, Batch* out) {
  const int64_t n = r1 - r0;
  NodeStats& st = ctx->St(s.node_id);
  st.left_in += n;
  ctx->ledger->scan_tuple += n;
  out->Reset(s.out_cols.size());
  bool dense = true;
  int64_t cur = n;
  if (!s.filters.empty()) {
    bool fused = ctx->use_compression;
    if (fused && ctx->pf_blocks != nullptr) {
      for (int64_t b = r0 / kZoneBlockRows; b <= (r1 - 1) / kZoneBlockRows;
           ++b) {
        if ((*ctx->pf_blocks)[static_cast<size_t>(b)] != 0) {
          fused = false;
          break;
        }
      }
    }
    cur = FilterCascade(s.filters, r0, r1, ctx->use_zone_maps, fused, &st,
                        &sc->sel, &sc->fsc, &dense);
  }
  st.out += cur;
  out->n = cur;
  for (size_t c = 0; c < s.out_cols.size(); ++c) {
    if (dense) {
      kernels::GatherRange(*s.out_cols[c], r0, r1, &out->cols[c]);
    } else {
      kernels::Gather(*s.out_cols[c], sc->sel.data(), cur, &out->cols[c]);
    }
  }
}

// ---------------------------------------------------------------------------
// Bulk source: SMJ merge stepping
// ---------------------------------------------------------------------------

/// One step of the merge state machine — an exact transcription of the
/// tuple engine's SortMergeJoinOp::Next. `charge` counts one event and
/// returns false on budget exhaustion (always true in bulk mode).
/// Returns 0 with an emitted (li, ri) pair, 1 on eof, 2 on budget abort.
template <typename Charger>
int StepMerge(SmjState* m, NodeStats* st, Charger&& charge, size_t* out_li,
              size_t* out_ri) {
  while (true) {
    if (m->in_group) {
      if (m->emit_ri < m->group_re) {
        if (!charge(&CostLedger::join_output_tuple)) return 2;
        *out_li = m->group_li;
        *out_ri = m->emit_ri++;
        ++st->out;
        return 0;
      }
      ++m->group_li;
      if (m->group_li < m->group_le) {
        m->emit_ri = m->ri;
        continue;
      }
      m->in_group = false;
      m->li = m->group_le;
      m->ri = m->group_re;
    }
    while (m->li < m->lsize && m->ri < m->rsize) {
      const int cmp = m->Compare(m->li, m->ri);
      if (cmp < 0) {
        if (!charge(&CostLedger::merge_tuple)) return 2;
        ++m->li;
      } else if (cmp > 0) {
        if (!charge(&CostLedger::merge_tuple)) return 2;
        ++m->ri;
      } else {
        m->group_le = m->li;
        while (m->group_le < m->lsize && m->Compare(m->group_le, m->ri) == 0) {
          if (!charge(&CostLedger::merge_tuple)) return 2;
          ++m->group_le;
        }
        m->group_re = m->ri;
        while (m->group_re < m->rsize && m->Compare(m->li, m->group_re) == 0) {
          if (!charge(&CostLedger::merge_tuple)) return 2;
          ++m->group_re;
        }
        m->group_li = m->li;
        m->emit_ri = m->ri;
        m->in_group = true;
        break;
      }
    }
    if (!m->in_group) return 1;
  }
}

/// Bulk-generates up to kBatchRows merge output rows. Returns false when
/// a hazard check tripped (budgeted mode only; caller rolls back).
bool MergeBulk(SmjState* m, const std::vector<MergeOut>& merge_out,
               WorkCtx* ctx, Batch* out) {
  NodeStats& st = ctx->St(m->node_id);
  out->Reset(merge_out.size());
  auto count = [&](EventCount CostLedger::*counter) {
    ++((*ctx->ledger).*counter);
    return true;
  };
  size_t li = 0, ri = 0;
  while (out->n < kBatchRows) {
    const int rc = StepMerge(m, &st, count, &li, &ri);
    if (rc == 1) {
      m->eof = true;
      break;
    }
    for (size_t c = 0; c < merge_out.size(); ++c) {
      out->cols[c].push_back(merge_out[c].from_left
                                 ? m->lpay[static_cast<size_t>(
                                       merge_out[c].idx)][li]
                                 : m->rpay[static_cast<size_t>(
                                       merge_out[c].idx)][ri]);
    }
    ++out->n;
    if (ctx->budgeted && (out->n & 255) == 0 && ctx->Hazard()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Bulk streaming stages
// ---------------------------------------------------------------------------

/// Runs one stage over a batch. Returns false when a periodic hazard
/// check tripped (budgeted mode only).
bool StageBulk(const Stage& s, const Batch& in, WorkCtx* ctx, Scratch* sc,
               Batch* out) {
  NodeStats& st = ctx->St(s.node_id);
  out->Reset(s.out_cols.size());
  const size_t w = s.out_cols.size();
  int64_t matches = 0;
  int64_t flushed = 0;
  auto flush_outputs = [&]() {
    ctx->ledger->join_output_tuple += matches - flushed;
    flushed = matches;
  };

  switch (s.kind) {
    case Stage::Kind::kHashProbe: {
      st.right_in += in.n;
      ctx->ledger->hash_probe_tuple += in.n;
      const JoinHashTable* ht = s.ht;
      const int kw = ht->key_width();
      const bool vectorized = !ctx->budgeted && kw == 1 && in.n > 0;
      if (vectorized) {
        // Two-pass probe: hash + slot resolution for the whole batch up
        // front, then a column-major emit — match pairs first, then each
        // output column filled in its own tight gather loop.
        sc->probe_u.resize(static_cast<size_t>(in.n));
        ht->FindBatch(in.cols[static_cast<size_t>(s.in_keys[0])].data(), in.n,
                      sc->probe_u.data(), &sc->hashes);
        sc->match_i.clear();
        sc->match_e.clear();
        for (int64_t i = 0; i < in.n; ++i) {
          const int64_t u = sc->probe_u[static_cast<size_t>(i)];
          if (u < 0) continue;
          if (w == 0) {
            matches += ht->ChainLen(u);
            continue;
          }
          for (int64_t e = ht->ChainHead(u); e >= 0; e = ht->ChainNext(e)) {
            sc->match_i.push_back(i);
            sc->match_e.push_back(e);
          }
        }
        if (w > 0) {
          matches = static_cast<int64_t>(sc->match_i.size());
          for (size_t c = 0; c < w; ++c) {
            const OutCol& oc = s.out_cols[c];
            std::vector<double>& dst = out->cols[c];
            dst.resize(static_cast<size_t>(matches));
            if (oc.from_input) {
              const double* src =
                  in.cols[static_cast<size_t>(oc.idx)].data();
              for (int64_t j = 0; j < matches; ++j) {
                dst[static_cast<size_t>(j)] =
                    src[sc->match_i[static_cast<size_t>(j)]];
              }
            } else {
              for (int64_t j = 0; j < matches; ++j) {
                dst[static_cast<size_t>(j)] =
                    ht->Payload(static_cast<size_t>(oc.idx),
                                sc->match_e[static_cast<size_t>(j)]);
              }
            }
          }
        }
        break;
      }
      for (int64_t i = 0; i < in.n; ++i) {
        int64_t u;
        if (kw == 1) {
          const double k = in.cols[static_cast<size_t>(s.in_keys[0])]
                                  [static_cast<size_t>(i)];
          u = ht->Find(&k);
        } else {
          sc->key.clear();
          for (int kp : s.in_keys) {
            sc->key.push_back(
                in.cols[static_cast<size_t>(kp)][static_cast<size_t>(i)]);
          }
          u = ht->Find(sc->key.data());
        }
        if (u >= 0) {
          if (w == 0) {
            matches += ht->ChainLen(u);
          } else {
            for (int64_t e = ht->ChainHead(u); e >= 0; e = ht->ChainNext(e)) {
              ++matches;
              for (size_t c = 0; c < w; ++c) {
                const OutCol& oc = s.out_cols[c];
                out->cols[c].push_back(
                    oc.from_input
                        ? in.cols[static_cast<size_t>(oc.idx)]
                                 [static_cast<size_t>(i)]
                        : ht->Payload(static_cast<size_t>(oc.idx), e));
              }
            }
          }
        }
        if (ctx->budgeted && (i & 255) == 255) {
          flush_outputs();
          if (ctx->Hazard()) return false;
        }
      }
      break;
    }
    case Stage::Kind::kIndexProbe: {
      st.left_in += in.n;
      ctx->ledger->index_probe += in.n;
      const double* keys =
          in.cols[static_cast<size_t>(s.in_keys[0])].data();
      const bool no_filters = s.inner_filters.empty();
      for (int64_t i = 0; i < in.n; ++i) {
        const RowIdSpan m = s.index->Lookup(static_cast<int64_t>(keys[i]));
        if (!m.empty()) {
          ctx->ledger->index_fetch += m.size();
          if (no_filters && w == 0) {
            matches += m.size();
          } else {
            for (int64_t r : m) {
              bool pass = true;
              for (const Filter& f : s.inner_filters) {
                if (!EvalFilter(f, r)) {
                  pass = false;
                  break;
                }
              }
              if (!pass) continue;
              ++matches;
              for (size_t c = 0; c < w; ++c) {
                const OutCol& oc = s.out_cols[c];
                out->cols[c].push_back(
                    oc.from_input
                        ? in.cols[static_cast<size_t>(oc.idx)]
                                 [static_cast<size_t>(i)]
                        : s.inner_table->column(oc.idx).GetNumeric(r));
              }
            }
          }
        }
        if (ctx->budgeted && (i & 63) == 63) {
          flush_outputs();
          if (ctx->Hazard()) return false;
        }
      }
      break;
    }
    case Stage::Kind::kNlj: {
      st.left_in += in.n;  // uncharged, as in the tuple engine
      const NljBuffer* buf = s.nlj;
      const size_t kw = buf->keys.size();
      for (int64_t i = 0; i < in.n; ++i) {
        ctx->ledger->nlj_pair += buf->n;
        for (int64_t r = 0; r < buf->n; ++r) {
          bool match = true;
          for (size_t k = 0; k < kw; ++k) {
            if (in.cols[static_cast<size_t>(s.in_keys[k])]
                       [static_cast<size_t>(i)] !=
                buf->keys[k][static_cast<size_t>(r)]) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          ++matches;
          for (size_t c = 0; c < w; ++c) {
            const OutCol& oc = s.out_cols[c];
            out->cols[c].push_back(
                oc.from_input ? in.cols[static_cast<size_t>(oc.idx)]
                                       [static_cast<size_t>(i)]
                              : buf->pay[static_cast<size_t>(oc.idx)]
                                        [static_cast<size_t>(r)]);
          }
        }
        if (ctx->budgeted && (i & 15) == 15) {
          flush_outputs();
          if (ctx->Hazard()) return false;
        }
      }
      break;
    }
  }
  flush_outputs();
  st.out += matches;
  out->n = matches;
  return true;
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Bulk event counts for `n` rows arriving at the sink.
void SinkCounts(const Sink& s, int64_t n, WorkCtx* ctx) {
  switch (s.kind) {
    case Sink::Kind::kRoot:
      break;  // uncharged; output_rows is a data effect
    case Sink::Kind::kHashBuild:
      ctx->St(s.node_id).left_in += n;
      ctx->ledger->hash_build_tuple += n;
      break;
    case Sink::Kind::kNljMaterialize:
      ctx->St(s.node_id).right_in += n;
      ctx->ledger->nlj_materialize_tuple += n;
      break;
    case Sink::Kind::kSort: {
      NodeStats& st = ctx->St(s.node_id);
      (s.smj_left ? st.left_in : st.right_in) += n;
      ctx->ledger->sort_tuple += n;
      break;
    }
  }
}

/// Applies the sink's data effects for a committed batch.
void SinkApply(const Sink& s, const Batch& b, WorkCtx* ctx, Scratch* sc) {
  switch (s.kind) {
    case Sink::Kind::kRoot:
      *ctx->output_rows += b.n;
      break;
    case Sink::Kind::kHashBuild: {
      sc->key.resize(s.key_cols.size());
      std::vector<double>& pay = sc->pay;
      pay.resize(s.payload_cols.size());
      for (int64_t i = 0; i < b.n; ++i) {
        for (size_t k = 0; k < s.key_cols.size(); ++k) {
          sc->key[k] = b.cols[static_cast<size_t>(s.key_cols[k])]
                             [static_cast<size_t>(i)];
        }
        for (size_t c = 0; c < s.payload_cols.size(); ++c) {
          pay[c] = b.cols[static_cast<size_t>(s.payload_cols[c])]
                         [static_cast<size_t>(i)];
        }
        s.ht->Insert(sc->key.data(), pay.data());
      }
      break;
    }
    case Sink::Kind::kNljMaterialize: {
      for (size_t k = 0; k < s.key_cols.size(); ++k) {
        const auto& src = b.cols[static_cast<size_t>(s.key_cols[k])];
        s.nlj->keys[k].insert(s.nlj->keys[k].end(), src.begin(), src.end());
      }
      for (size_t c = 0; c < s.payload_cols.size(); ++c) {
        const auto& src = b.cols[static_cast<size_t>(s.payload_cols[c])];
        s.nlj->pay[c].insert(s.nlj->pay[c].end(), src.begin(), src.end());
      }
      s.nlj->n += b.n;
      break;
    }
    case Sink::Kind::kSort: {
      auto& keys = s.smj_left ? s.smj->lkeys : s.smj->rkeys;
      auto& pay = s.smj_left ? s.smj->lpay : s.smj->rpay;
      for (size_t k = 0; k < s.key_cols.size(); ++k) {
        const auto& src = b.cols[static_cast<size_t>(s.key_cols[k])];
        keys[k].insert(keys[k].end(), src.begin(), src.end());
      }
      for (size_t c = 0; c < s.payload_cols.size(); ++c) {
        const auto& src = b.cols[static_cast<size_t>(s.payload_cols[c])];
        pay[c].insert(pay[c].end(), src.begin(), src.end());
      }
      (s.smj_left ? s.smj->lsize : s.smj->rsize) +=
          static_cast<size_t>(b.n);
      break;
    }
  }
}

/// End-of-pipeline work: the sort sink charges its super-linear
/// remainder (one `extra` event, exactly as the tuple engine's
/// DrainAndSort) and stable-argsorts its buffer.
Status FinishSink(const Sink& s, const CostModel& cm, WorkCtx* ctx) {
  if (s.kind != Sink::Kind::kSort) return Status::OK();
  auto& keys = s.smj_left ? s.smj->lkeys : s.smj->rkeys;
  auto& pay = s.smj_left ? s.smj->lpay : s.smj->rpay;
  const size_t n = s.smj_left ? s.smj->lsize : s.smj->rsize;
  const double remainder =
      CostModel::SortTerm(static_cast<double>(n)) - static_cast<double>(n);
  if (remainder > 0.0) {
    ctx->ledger->extra += cm.params().sort_tuple * remainder;
    if (ctx->budgeted && ctx->ledger->Total(*ctx->params) > ctx->budget) {
      return Status::BudgetExhausted("sort");
    }
  }
  // Stable argsort on keys only — the same comparator and stability as
  // the tuple engine's stable_sort, so equal-key permutations match.
  std::vector<int64_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
    for (const auto& kc : keys) {
      if (kc[static_cast<size_t>(a)] != kc[static_cast<size_t>(b)]) {
        return kc[static_cast<size_t>(a)] < kc[static_cast<size_t>(b)];
      }
    }
    return false;
  });
  auto apply = [&](std::vector<double>* col) {
    std::vector<double> tmp(n);
    for (size_t i = 0; i < n; ++i) {
      tmp[i] = (*col)[static_cast<size_t>(idx[i])];
    }
    *col = std::move(tmp);
  };
  for (auto& kc : keys) apply(&kc);
  for (auto& pc : pay) apply(&pc);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Tuple-order replay: when a bulk morsel crosses the budget, the morsel
// is rolled back and re-run row-by-row in the tuple engine's exact
// depth-first event order (source event → stages per emitted row → sink
// event, stat bump before charge), stopping at the first failing event.
// Replay never applies sink data — execution is aborting.
// ---------------------------------------------------------------------------

/// Pushes one row into stage `si` (or the sink). Returns false on budget
/// exhaustion.
bool ReplayPush(const Pipeline& p, size_t si, WorkCtx* ctx, Scratch* sc) {
  if (si == p.stages.size()) {
    switch (p.sink.kind) {
      case Sink::Kind::kRoot:
        ++*ctx->output_rows;
        return true;
      case Sink::Kind::kHashBuild:
        ++ctx->St(p.sink.node_id).left_in;
        return ctx->Charge(&CostLedger::hash_build_tuple);
      case Sink::Kind::kNljMaterialize:
        ++ctx->St(p.sink.node_id).right_in;
        return ctx->Charge(&CostLedger::nlj_materialize_tuple);
      case Sink::Kind::kSort: {
        NodeStats& st = ctx->St(p.sink.node_id);
        ++(p.sink.smj_left ? st.left_in : st.right_in);
        return ctx->Charge(&CostLedger::sort_tuple);
      }
    }
    return true;
  }
  const Stage& s = p.stages[si];
  const std::vector<double>& row = sc->rows[si];
  std::vector<double>& out_row = sc->rows[si + 1];
  out_row.resize(s.out_cols.size());
  NodeStats& st = ctx->St(s.node_id);
  switch (s.kind) {
    case Stage::Kind::kHashProbe: {
      ++st.right_in;
      if (!ctx->Charge(&CostLedger::hash_probe_tuple)) return false;
      sc->key.clear();
      for (int kp : s.in_keys) sc->key.push_back(row[static_cast<size_t>(kp)]);
      const int64_t u = s.ht->Find(sc->key.data());
      if (u < 0) return true;
      for (int64_t e = s.ht->ChainHead(u); e >= 0; e = s.ht->ChainNext(e)) {
        if (!ctx->Charge(&CostLedger::join_output_tuple)) return false;
        for (size_t c = 0; c < s.out_cols.size(); ++c) {
          const OutCol& oc = s.out_cols[c];
          out_row[c] = oc.from_input
                           ? row[static_cast<size_t>(oc.idx)]
                           : s.ht->Payload(static_cast<size_t>(oc.idx), e);
        }
        ++st.out;
        if (!ReplayPush(p, si + 1, ctx, sc)) return false;
      }
      return true;
    }
    case Stage::Kind::kIndexProbe: {
      ++st.left_in;
      if (!ctx->Charge(&CostLedger::index_probe)) return false;
      const double key = row[static_cast<size_t>(s.in_keys[0])];
      const RowIdSpan m = s.index->Lookup(static_cast<int64_t>(key));
      if (m.empty()) return true;
      for (int64_t r : m) {
        if (!ctx->Charge(&CostLedger::index_fetch)) return false;
        bool pass = true;
        for (const Filter& f : s.inner_filters) {
          if (!EvalFilter(f, r)) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        if (!ctx->Charge(&CostLedger::join_output_tuple)) return false;
        for (size_t c = 0; c < s.out_cols.size(); ++c) {
          const OutCol& oc = s.out_cols[c];
          out_row[c] = oc.from_input
                           ? row[static_cast<size_t>(oc.idx)]
                           : s.inner_table->column(oc.idx).GetNumeric(r);
        }
        ++st.out;
        if (!ReplayPush(p, si + 1, ctx, sc)) return false;
      }
      return true;
    }
    case Stage::Kind::kNlj: {
      ++st.left_in;  // uncharged
      const NljBuffer* buf = s.nlj;
      for (int64_t r = 0; r < buf->n; ++r) {
        if (!ctx->Charge(&CostLedger::nlj_pair)) return false;
        bool match = true;
        for (size_t k = 0; k < buf->keys.size(); ++k) {
          if (row[static_cast<size_t>(s.in_keys[k])] !=
              buf->keys[k][static_cast<size_t>(r)]) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        if (!ctx->Charge(&CostLedger::join_output_tuple)) return false;
        for (size_t c = 0; c < s.out_cols.size(); ++c) {
          const OutCol& oc = s.out_cols[c];
          out_row[c] = oc.from_input
                           ? row[static_cast<size_t>(oc.idx)]
                           : buf->pay[static_cast<size_t>(oc.idx)]
                                     [static_cast<size_t>(r)];
        }
        ++st.out;
        if (!ReplayPush(p, si + 1, ctx, sc)) return false;
      }
      return true;
    }
  }
  return true;
}

void PrepareReplayRows(const Pipeline& p, Scratch* sc) {
  sc->rows.assign(p.stages.size() + 1, {});
  sc->rows[0].resize(p.is_scan ? p.scan.out_cols.size()
                               : p.merge_out.size());
}

/// Replays scan rows [r0, r1); must abort (the bulk total exceeded the
/// budget, and replay counts the identical event multiset).
Status ReplayScanMorsel(const Pipeline& p, int64_t r0, int64_t r1,
                        WorkCtx* ctx, Scratch* sc) {
  PrepareReplayRows(p, sc);
  const ScanSource& s = p.scan;
  NodeStats& st = ctx->St(s.node_id);
  // Block-exact pruned replay: when the zone maps prove filters 0..j-1
  // pass every row of [r0, r1) and filter j rejects every row, each
  // replayed row produces the identical event pattern — one scan_tuple
  // charge, filters 0..j reached, filters 0..j-1 passed, nothing beyond —
  // so the abort row is the smallest m whose cumulative scan charge
  // pushes the canonical total past the budget, found by binary search
  // without evaluating a single row. Aligned morsels sit inside one
  // 4096-row block, so this is the common shape for pruned scans; any
  // undecided (kSome) filter falls through to the row-at-a-time loop.
  if (ctx->use_zone_maps && !s.filters.empty()) {
    size_t j = 0;
    kernels::ZoneMatch zm = kernels::ZoneMatch::kAll;
    while (j < s.filters.size()) {
      const Filter& f = s.filters[j];
      zm = kernels::ClassifyZones(*f.col, f.op, f.value, r0, r1);
      if (zm != kernels::ZoneMatch::kAll) break;
      ++j;
    }
    if (j < s.filters.size() && zm == kernels::ZoneMatch::kNone) {
      const int64_t n = r1 - r0;
      const auto exceeds = [&](int64_t m) {
        CostLedger probe = *ctx->ledger;
        probe.scan_tuple += m;
        return probe.Total(*ctx->params) > ctx->budget;
      };
      // The bulk pass for this morsel charged exactly n scan_tuple events
      // (the cascade emptied the batch, so no stage or sink event fired)
      // and tripped the hazard, so the abort row exists within [1, n].
      RQP_CHECK(exceeds(n));
      int64_t lo = 1, hi = n;
      while (lo < hi) {
        const int64_t mid = lo + (hi - lo) / 2;
        if (exceeds(mid)) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      // Row-at-a-time bookkeeping for m rows: the aborting row charges
      // its scan event but never reaches the filter cascade.
      ctx->ledger->scan_tuple += lo;
      st.left_in += lo;
      for (size_t k = 0; k <= j; ++k) st.filter_in[k] += lo - 1;
      for (size_t k = 0; k < j; ++k) st.filter_pass[k] += lo - 1;
      return Status::BudgetExhausted("scan");
    }
  }
  for (int64_t r = r0; r < r1; ++r) {
    ++st.left_in;
    if (!ctx->Charge(&CostLedger::scan_tuple)) {
      return Status::BudgetExhausted("scan");
    }
    bool pass = true;
    for (size_t k = 0; k < s.filters.size(); ++k) {
      ++st.filter_in[k];
      if (!EvalFilter(s.filters[k], r)) {
        pass = false;
        break;
      }
      ++st.filter_pass[k];
    }
    if (!pass) continue;
    ++st.out;
    for (size_t c = 0; c < s.out_cols.size(); ++c) {
      sc->rows[0][c] = s.out_cols[c]->GetNumeric(r);
    }
    if (!ReplayPush(p, 0, ctx, sc)) {
      return Status::BudgetExhausted("batch replay");
    }
  }
  RQP_CHECK(false);  // unreachable: the morsel's total exceeds the budget
  return Status::OK();
}

/// Replays merge output rows from the restored cursor; must abort.
Status ReplayMergeBatch(const Pipeline& p, WorkCtx* ctx, Scratch* sc) {
  PrepareReplayRows(p, sc);
  SmjState* m = p.merge;
  NodeStats& st = ctx->St(m->node_id);
  auto charge = [&](EventCount CostLedger::*counter) {
    return ctx->Charge(counter);
  };
  while (true) {
    size_t li = 0, ri = 0;
    const int rc = StepMerge(m, &st, charge, &li, &ri);
    if (rc == 2) return Status::BudgetExhausted("merge");
    RQP_CHECK(rc == 0);  // eof unreachable: total exceeds budget
    for (size_t c = 0; c < p.merge_out.size(); ++c) {
      sc->rows[0][c] =
          p.merge_out[c].from_left
              ? m->lpay[static_cast<size_t>(p.merge_out[c].idx)][li]
              : m->rpay[static_cast<size_t>(p.merge_out[c].idx)][ri];
    }
    if (!ReplayPush(p, 0, ctx, sc)) {
      return Status::BudgetExhausted("batch replay");
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline drivers
// ---------------------------------------------------------------------------

/// Runs one already-generated source batch through the stages and counts
/// the sink arrivals. Returns false on a hazard bail (budgeted only).
/// On success `**sink_batch` points at the sink-level batch.
bool StagesBulk(const Pipeline& p, Batch* src, WorkCtx* ctx, Scratch* sc,
                Batch** sink_batch) {
  Batch* cur = src;
  Batch* spare = (src == &sc->a) ? &sc->b : &sc->a;
  for (const Stage& s : p.stages) {
    if (!StageBulk(s, *cur, ctx, sc, spare)) return false;
    std::swap(cur, spare);
  }
  SinkCounts(p.sink, cur->n, ctx);
  *sink_batch = cur;
  return true;
}

/// Sequential driver handling both budgeted (snapshot/rollback/replay)
/// and unbudgeted modes.
Status RunPipelineSequential(const Pipeline& p, const CostModel& cm,
                             WorkCtx* ctx, Scratch* sc) {
  RunPreOps(p, ctx);
  if (p.is_scan) {
    const int64_t n = p.scan.table->num_rows();
    for (int64_t r0 = 0; r0 < n; r0 += kBatchRows) {
      const int64_t r1 = std::min<int64_t>(n, r0 + kBatchRows);
      if (!ctx->budgeted) {
        ScanBulk(p.scan, r0, r1, ctx, sc, &sc->a);
        Batch* out = nullptr;
        StagesBulk(p, &sc->a, ctx, sc, &out);
        SinkApply(p.sink, *out, ctx, sc);
        continue;
      }
      const MorselSnapshot snap = TakeSnapshot(p, *ctx);
      ScanBulk(p.scan, r0, r1, ctx, sc, &sc->a);
      Batch* out = nullptr;
      const bool ok = StagesBulk(p, &sc->a, ctx, sc, &out);
      if (ok && !ctx->Hazard()) {
        SinkApply(p.sink, *out, ctx, sc);
        continue;
      }
      RestoreSnapshot(p, snap, ctx);
      return ReplayScanMorsel(p, r0, r1, ctx, sc);
    }
  } else {
    while (!p.merge->eof) {
      if (!ctx->budgeted) {
        MergeBulk(p.merge, p.merge_out, ctx, &sc->a);
        if (sc->a.n == 0 && p.merge->eof) break;
        Batch* out = nullptr;
        StagesBulk(p, &sc->a, ctx, sc, &out);
        SinkApply(p.sink, *out, ctx, sc);
        continue;
      }
      const MorselSnapshot snap = TakeSnapshot(p, *ctx);
      bool ok = MergeBulk(p.merge, p.merge_out, ctx, &sc->a);
      Batch* out = nullptr;
      if (ok) ok = StagesBulk(p, &sc->a, ctx, sc, &out);
      if (ok && !ctx->Hazard()) {
        if (out != nullptr) SinkApply(p.sink, *out, ctx, sc);
        continue;
      }
      RestoreSnapshot(p, snap, ctx);
      return ReplayMergeBatch(p, ctx, sc);
    }
  }
  return FinishSink(p.sink, cm, ctx);
}

/// Morsel-parallel driver for full (unbudgeted) scan pipelines: workers
/// count into private ledgers/stats and buffer sink rows; partials merge
/// in worker order, preserving the global row order bit-for-bit.
Status RunPipelineParallel(const Pipeline& p, const CostModel& cm,
                           WorkCtx* ctx, Scratch* sc, ThreadPool* pool,
                           int num_nodes) {
  RunPreOps(p, ctx);
  const int64_t n = p.scan.table->num_rows();

  struct WorkerOut {
    CostLedger ledger;
    std::vector<NodeStats> stats;
    int64_t output_rows = 0;
    Batch sink;
    bool used = false;
  };
  std::vector<WorkerOut> workers(static_cast<size_t>(pool->num_threads()));

  ParallelFor(pool, n, [&](int w, int64_t begin, int64_t end) {
    WorkerOut& wo = workers[static_cast<size_t>(w)];
    wo.used = true;
    wo.stats.assign(static_cast<size_t>(num_nodes), NodeStats{});
    // Scan filter stat vectors must exist before bulk bumps.
    NodeStats& sst = wo.stats[static_cast<size_t>(p.scan.node_id)];
    sst.filter_in.assign(p.scan.filters.size(), 0);
    sst.filter_pass.assign(p.scan.filters.size(), 0);
    WorkCtx wctx;
    wctx.ledger = &wo.ledger;
    wctx.stats = &wo.stats;
    wctx.output_rows = &wo.output_rows;
    wctx.use_zone_maps = ctx->use_zone_maps;
    wctx.use_compression = ctx->use_compression;
    wctx.pf_blocks = ctx->pf_blocks;
    Scratch wsc;
    size_t width = 0;
    for (int64_t r0 = begin; r0 < end; r0 += kBatchRows) {
      const int64_t r1 = std::min<int64_t>(end, r0 + kBatchRows);
      ScanBulk(p.scan, r0, r1, &wctx, &wsc, &wsc.a);
      Batch* out = nullptr;
      StagesBulk(p, &wsc.a, &wctx, &wsc, &out);
      if (p.sink.kind == Sink::Kind::kRoot) {
        wo.output_rows += out->n;
        continue;
      }
      width = out->cols.size();
      if (wo.sink.cols.empty()) wo.sink.Reset(width);
      for (size_t c = 0; c < width; ++c) {
        wo.sink.cols[c].insert(wo.sink.cols[c].end(), out->cols[c].begin(),
                               out->cols[c].end());
      }
      wo.sink.n += out->n;
    }
  });

  // Merge in worker order: blocks are contiguous and ascending, so this
  // reproduces the sequential row order exactly.
  for (WorkerOut& wo : workers) {
    if (!wo.used) continue;
    ctx->ledger->Merge(wo.ledger);
    *ctx->output_rows += wo.output_rows;
    for (int id : p.touched) {
      NodeStats& dst = ctx->St(id);
      const NodeStats& src = wo.stats[static_cast<size_t>(id)];
      dst.left_in += src.left_in;
      dst.right_in += src.right_in;
      dst.out += src.out;
      for (size_t k = 0; k < src.filter_in.size(); ++k) {
        dst.filter_in[k] += src.filter_in[k];
        dst.filter_pass[k] += src.filter_pass[k];
      }
    }
    if (p.sink.kind != Sink::Kind::kRoot && wo.sink.n > 0) {
      SinkApply(p.sink, wo.sink, ctx, sc);
    }
  }
  return FinishSink(p.sink, cm, ctx);
}

}  // namespace

// ---------------------------------------------------------------------------
// Sharded scatter-gather driver (full scan pipelines only).
//
// The table's chunks (kShardChunkRows rows, block-aligned) scatter
// round-robin across `num_shards` simulated workers; each worker runs
// the compiled pipeline over its chunks into private per-chunk partials
// (ledger, NodeStats, buffered sink rows). The gather merges partials in
// ascending chunk order — the PR-3 worker-order merge discipline at
// chunk granularity — so the global row order, every integer count, and
// therefore cost_used are bit-identical to the unsharded run at any
// (shard count x thread count).
//
// Whole-chunk pruning: before scattering, the coordinator classifies
// each chunk against the scan's filter cascade using the chunk zone
// summaries. A chunk is pruned only when filters 0..j-1 classify kAll
// and filter j classifies kNone over the entire chunk; the gather then
// charges exactly what per-batch evaluation charges for that shape (one
// scan_tuple per row, filters 0..j reached, 0..j-1 passed, nothing
// downstream), so pruning stays cost-invisible while skipping all ~32
// per-batch classifications and the batch machinery.
//
// Shard faults: when the injector is armed, the coordinator draws
// shard.straggler once per shard and shard.lost_chunk once per chunk, in
// fixed index order *before* the scatter — never inside workers — so the
// draw sequence is schedule-independent. Recovery always succeeds and is
// charged into cost_used, keeping MSO accounting valid: a lost chunk's
// doomed primary is physically executed and discarded, the chunk
// re-executed on a "replica" (fraction u of the primary's cost charged
// for transients, all of it for permanents); a straggling shard is
// speculatively re-dispatched, charging the duplicate fraction of the
// shard's cost. Cost-spike draws surcharge without re-execution;
// corrupt draws are no-ops (these sites produce no statistics).
// ---------------------------------------------------------------------------

namespace {

Status RunPipelineSharded(const Pipeline& p, const CostModel& cm, WorkCtx* ctx,
                          Scratch* sc, ThreadPool* pool, int num_shards,
                          int num_nodes, shard::ShardReport* srep,
                          RobustnessReport* rob) {
  RunPreOps(p, ctx);
  const int64_t n = p.scan.table->num_rows();
  const int64_t chunks = shard::ChunkCount(n);
  const CostParams& params = *ctx->params;

  // Coordinator-side whole-chunk classification: prune_j[c] is the first
  // filter the chunk summary proves rejects every row, with all earlier
  // filters proven to pass every row; -1 means scan the chunk.
  std::vector<int> prune_j(static_cast<size_t>(chunks), -1);
  if (ctx->use_zone_maps) {
    for (int64_t c = 0; c < chunks; ++c) {
      for (size_t k = 0; k < p.scan.filters.size(); ++k) {
        const Filter& f = p.scan.filters[k];
        const shard::ChunkMatch m =
            shard::ClassifyChunk(*f.col, f.op, f.value, c);
        if (m == shard::ChunkMatch::kNone) {
          prune_j[static_cast<size_t>(c)] = static_cast<int>(k);
          break;
        }
        if (m != shard::ChunkMatch::kAll) break;
      }
    }
  }

  // Fault draws in fixed (site, index) order on the coordinator thread.
  // Drawn for every chunk — pruned or not — so the sequence is invariant
  // across zone-map settings; a fired draw charges off the chunk's
  // ledger total, which pruning does not change (cost invisibility).
  std::vector<FaultAction> straggle(static_cast<size_t>(num_shards));
  std::vector<FaultAction> lost(static_cast<size_t>(chunks));
  if (FaultInjector::Armed()) {
    FaultInjector& inj = FaultInjector::Global();
    for (int s = 0; s < num_shards; ++s) {
      straggle[static_cast<size_t>(s)] =
          inj.Evaluate(fault_site::kShardStraggler);
    }
    for (int64_t c = 0; c < chunks; ++c) {
      lost[static_cast<size_t>(c)] = inj.Evaluate(fault_site::kShardLostChunk);
    }
  }

  struct ChunkOut {
    CostLedger ledger;
    std::vector<NodeStats> stats;
    int64_t output_rows = 0;
    Batch sink;
    double fault_cost = 0.0;  // charged for lost / spiked work
    bool lost = false;
    bool spiked = false;
  };
  std::vector<ChunkOut> outs(static_cast<size_t>(chunks));

  auto run_chunk_into = [&](int64_t c, ChunkOut* co, Scratch* wsc) {
    co->ledger = CostLedger{};
    co->output_rows = 0;
    co->sink = Batch{};
    co->stats.assign(static_cast<size_t>(num_nodes), NodeStats{});
    NodeStats& sst = co->stats[static_cast<size_t>(p.scan.node_id)];
    sst.filter_in.assign(p.scan.filters.size(), 0);
    sst.filter_pass.assign(p.scan.filters.size(), 0);
    WorkCtx cctx;
    cctx.ledger = &co->ledger;
    cctx.stats = &co->stats;
    cctx.output_rows = &co->output_rows;
    cctx.params = ctx->params;
    cctx.use_zone_maps = ctx->use_zone_maps;
    cctx.use_compression = ctx->use_compression;
    cctx.pf_blocks = ctx->pf_blocks;
    const int64_t e = shard::ChunkEnd(c, n);
    for (int64_t r0 = shard::ChunkBegin(c); r0 < e; r0 += kBatchRows) {
      const int64_t r1 = std::min<int64_t>(e, r0 + kBatchRows);
      ScanBulk(p.scan, r0, r1, &cctx, wsc, &wsc->a);
      Batch* out = nullptr;
      StagesBulk(p, &wsc->a, &cctx, wsc, &out);
      if (p.sink.kind == Sink::Kind::kRoot) {
        co->output_rows += out->n;
        continue;
      }
      if (co->sink.cols.empty()) co->sink.Reset(out->cols.size());
      for (size_t cc = 0; cc < out->cols.size(); ++cc) {
        co->sink.cols[cc].insert(co->sink.cols[cc].end(),
                                 out->cols[cc].begin(), out->cols[cc].end());
      }
      co->sink.n += out->n;
    }
  };

  auto run_shard = [&](int s, Scratch* wsc) {
    for (int64_t c = s; c < chunks; c += num_shards) {
      if (prune_j[static_cast<size_t>(c)] >= 0) continue;
      ChunkOut& co = outs[static_cast<size_t>(c)];
      const FaultAction la = lost[static_cast<size_t>(c)];
      if (la.kind == FaultKind::kTransient ||
          la.kind == FaultKind::kPermanent) {
        // Doomed primary: execute, charge the lost fraction, discard.
        // The committed partial below is the replica's re-execution.
        run_chunk_into(c, &co, wsc);
        const double chunk_cost = co.ledger.Total(params);
        co.fault_cost =
            (la.kind == FaultKind::kTransient ? la.u : 1.0) * chunk_cost;
        co.lost = true;
      }
      run_chunk_into(c, &co, wsc);
      if (la.kind == FaultKind::kCostSpike) {
        co.fault_cost = (la.magnitude - 1.0) * co.ledger.Total(params);
        co.spiked = true;
      }
    }
  };

  if (pool != nullptr && pool->num_threads() > 1) {
    // One contiguous shard range per pool worker; chunk partials are
    // private, so no synchronization beyond the ParallelFor barrier.
    ParallelFor(pool, num_shards, [&](int w, int64_t s0, int64_t s1) {
      (void)w;
      Scratch wsc;
      for (int64_t s = s0; s < s1; ++s) run_shard(static_cast<int>(s), &wsc);
    });
  } else {
    Scratch wsc;
    for (int s = 0; s < num_shards; ++s) run_shard(s, &wsc);
  }

  // Gather: merge partials in ascending chunk order (== row order).
  srep->chunks_total += chunks;
  if (srep->shard_cost.size() < static_cast<size_t>(num_shards)) {
    srep->shard_cost.resize(static_cast<size_t>(num_shards), 0.0);
  }
  std::vector<double> pipe_shard_cost(static_cast<size_t>(num_shards), 0.0);
  for (int64_t c = 0; c < chunks; ++c) {
    const int s = shard::ShardOfChunk(c, num_shards);
    if (prune_j[static_cast<size_t>(c)] >= 0) {
      // Whole-chunk prune: per-batch evaluation of this chunk would see
      // filters 0..j-1 classify kAll and filter j kNone for every batch,
      // charging one scan_tuple per row, filters 0..j reached, 0..j-1
      // passed, and nothing downstream. Charge exactly that.
      const int64_t rows = shard::ChunkEnd(c, n) - shard::ChunkBegin(c);
      const size_t j = static_cast<size_t>(prune_j[static_cast<size_t>(c)]);
      NodeStats& st = ctx->St(p.scan.node_id);
      st.left_in += rows;
      ctx->ledger->scan_tuple += rows;
      for (size_t k = 0; k <= j; ++k) st.filter_in[k] += rows;
      for (size_t k = 0; k < j; ++k) st.filter_pass[k] += rows;
      ++srep->chunks_pruned;
      CostLedger probe;
      probe.scan_tuple += rows;
      pipe_shard_cost[static_cast<size_t>(s)] += probe.Total(params);
      continue;
    }
    ChunkOut& co = outs[static_cast<size_t>(c)];
    ctx->ledger->Merge(co.ledger);
    *ctx->output_rows += co.output_rows;
    for (int id : p.touched) {
      NodeStats& dst = ctx->St(id);
      const NodeStats& src = co.stats[static_cast<size_t>(id)];
      dst.left_in += src.left_in;
      dst.right_in += src.right_in;
      dst.out += src.out;
      for (size_t k = 0; k < src.filter_in.size(); ++k) {
        dst.filter_in[k] += src.filter_in[k];
        dst.filter_pass[k] += src.filter_pass[k];
      }
    }
    if (p.sink.kind != Sink::Kind::kRoot && co.sink.n > 0) {
      SinkApply(p.sink, co.sink, ctx, sc);
    }
    ++srep->chunks_scanned;
    pipe_shard_cost[static_cast<size_t>(s)] += co.ledger.Total(params);
    if (co.lost) {
      ++srep->lost_chunks;
      ++rob->shard_lost_chunks;
      srep->retried_cost += co.fault_cost;
      rob->retried_cost += co.fault_cost;
    } else if (co.spiked) {
      ++rob->cost_spikes;
      rob->spike_cost += co.fault_cost;
    }
  }

  // Straggler recovery: a straggling shard's work is speculatively
  // re-dispatched; the duplicate fraction of its (clean) cost is charged.
  for (int s = 0; s < num_shards; ++s) {
    const FaultAction sa = straggle[static_cast<size_t>(s)];
    const double scost = pipe_shard_cost[static_cast<size_t>(s)];
    if (sa.kind == FaultKind::kTransient || sa.kind == FaultKind::kPermanent) {
      const double dup =
          (sa.kind == FaultKind::kTransient ? sa.u : 1.0) * scost;
      ++srep->straggler_retries;
      ++rob->shard_stragglers;
      srep->retried_cost += dup;
      rob->retried_cost += dup;
    } else if (sa.kind == FaultKind::kCostSpike) {
      ++rob->cost_spikes;
      rob->spike_cost += (sa.magnitude - 1.0) * scost;
    }
    srep->shard_cost[static_cast<size_t>(s)] += scost;
  }
  return FinishSink(p.sink, cm, ctx);
}

}  // namespace

Result<ExecutionResult> RunBatchEngine(const Catalog& catalog,
                                       const Plan& plan, const PlanNode& root,
                                       const CostModel& cost_model,
                                       double budget, ThreadPool* pool,
                                       bool use_zone_maps,
                                       bool use_compression, int num_shards) {
  ExecutionResult result;
  result.node_stats.assign(static_cast<size_t>(plan.num_nodes()), NodeStats{});
  num_shards = std::max(1, num_shards);
  result.shard.num_shards = num_shards;

  Compiler compiler(catalog, plan.query(), root, plan.num_nodes());
  compiler.Compile();

  CostLedger ledger;
  int64_t output_rows = 0;
  WorkCtx ctx;
  ctx.ledger = &ledger;
  ctx.stats = &result.node_stats;
  ctx.output_rows = &output_rows;
  ctx.budgeted = budget >= 0.0;
  ctx.budget = budget;
  ctx.params = &cost_model.params();
  ctx.use_zone_maps = use_zone_maps;
  ctx.use_compression = use_compression;

  // storage.page_fault draws: coordinator-side, in fixed (pipeline, block)
  // ascending order — independent of engine knobs, thread count and shard
  // layout — for every scan pipeline whose table is mapped. A fired draw
  // degrades that block from the fused kernels to the resident decode path
  // (count- and cost-identical) and is charged to the robustness report.
  std::vector<std::vector<uint8_t>> pf(compiler.pipelines.size());
  if (FaultInjector::Armed()) {
    FaultInjector& inj = FaultInjector::Global();
    for (size_t pi = 0; pi < compiler.pipelines.size(); ++pi) {
      const Pipeline& p = compiler.pipelines[pi];
      if (!p.is_scan || p.scan.table == nullptr ||
          !p.scan.table->IsMapped()) {
        continue;
      }
      const int64_t blocks =
          (p.scan.table->num_rows() + kZoneBlockRows - 1) / kZoneBlockRows;
      pf[pi].assign(static_cast<size_t>(blocks), 0);
      for (int64_t b = 0; b < blocks; ++b) {
        if (inj.Evaluate(fault_site::kStoragePageFault)) {
          pf[pi][static_cast<size_t>(b)] = 1;
          ++result.robustness.page_fault_degradations;
        }
      }
    }
  }

  Scratch sc;
  Status st = Status::OK();
  for (size_t pi = 0; pi < compiler.pipelines.size(); ++pi) {
    const Pipeline& p = compiler.pipelines[pi];
    ctx.pf_blocks = pf[pi].empty() ? nullptr : &pf[pi];
    // Scan pipelines of a full run scatter over the shards (with or
    // without a pool — a serial shard loop gathers identically, which is
    // what makes sharded results thread-count-invariant); merge-side
    // pipelines run on the coordinator as before.
    const bool sharded = !ctx.budgeted && num_shards > 1 && p.is_scan &&
                         p.scan.table->num_rows() > 0;
    if (sharded) {
      st = RunPipelineSharded(p, cost_model, &ctx, &sc, pool, num_shards,
                              plan.num_nodes(), &result.shard,
                              &result.robustness);
    } else {
      const bool parallel = !ctx.budgeted && pool != nullptr &&
                            pool->num_threads() > 1 && p.is_scan &&
                            p.scan.table->num_rows() >= kMinParallelRows;
      st = parallel ? RunPipelineParallel(p, cost_model, &ctx, &sc, pool,
                                          plan.num_nodes())
                    : RunPipelineSequential(p, cost_model, &ctx, &sc);
    }
    if (!st.ok()) break;
  }

  // Shard-fault surcharges (lost work, straggler duplicates, spikes) live
  // outside the integer ledger so the clean ledger total stays
  // bit-identical to unsharded; they are added to cost_used here, which is
  // what keeps recovered runs inside the composed MSO accounting.
  const double fault_extra =
      result.shard.retried_cost + result.robustness.spike_cost;
  const double cost_used = ledger.Total(cost_model.params()) + fault_extra;
  result.cost_used =
      std::min(cost_used, budget < 0.0 ? cost_used : budget);
  result.output_rows = output_rows;
  if (st.ok()) {
    result.completed = true;
  } else if (st.code() == StatusCode::kBudgetExhausted) {
    result.completed = false;
  } else {
    return st;
  }
  return result;
}

}  // namespace robustqp

