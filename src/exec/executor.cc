#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "common/thread_pool.h"
#include "exec/batch_engine.h"
#include "exec/cost_ledger.h"
#include "exec/kernels.h"
#include "storage/hash_index.h"
#include "storage/table.h"

namespace robustqp {

double ExecutionResult::ObservedJoinSelectivity(int node_id) const {
  const NodeStats& s = node_stats[static_cast<size_t>(node_id)];
  const double denom = static_cast<double>(s.left_in) * static_cast<double>(s.right_in);
  // No evidence: an empty input side (denom == 0), or inputs so large the
  // product is no longer finite. `!(denom > 0)` also rejects NaN.
  if (!(denom > 0.0) || !std::isfinite(denom)) return 0.0;
  const double sel = static_cast<double>(s.out) / denom;
  // A selectivity is a fraction; guard against out > left_in * right_in
  // ever producing a value callers would feed into log-space grids.
  return std::clamp(sel, 0.0, 1.0);
}

double ExecutionResult::ObservedFilterSelectivity(int node_id, int k) const {
  const NodeStats& s = node_stats[static_cast<size_t>(node_id)];
  if (k < 0 || k >= static_cast<int>(s.filter_in.size())) return 0.0;
  const double reached = static_cast<double>(s.filter_in[static_cast<size_t>(k)]);
  if (reached <= 0.0) return 0.0;
  return static_cast<double>(s.filter_pass[static_cast<size_t>(k)]) / reached;
}

namespace {

/// A tuple in flight: one double per slot (integers are exactly
/// representable for the generators' value ranges).
using Row = std::vector<double>;

/// Maps each query table to its slot range within a row.
struct RowLayout {
  std::vector<int> table_offset;  // -1 when the table is absent
  int width = 0;

  int Slot(const Query& query, const std::string& table,
           const std::string& column, const Catalog& catalog) const {
    const int t = query.TableIndex(table);
    RQP_CHECK(t >= 0 && table_offset[static_cast<size_t>(t)] >= 0);
    const CatalogEntry* entry = catalog.FindTable(table);
    const int c = entry->table->schema().FindColumn(column);
    RQP_CHECK(c >= 0);
    return table_offset[static_cast<size_t>(t)] + c;
  }
};

/// Shared per-execution state: budget accounting and node counters.
/// Cost is tracked as integer event counts in a CostLedger and reduced
/// through the canonical CostLedger::Total so the batch engine (which
/// counts whole morsels at once) lands on bit-identical cost_used.
struct ExecContext {
  double budget = -1.0;  // < 0: unlimited
  const CostParams* params = nullptr;
  CostLedger ledger;
  std::vector<NodeStats>* stats = nullptr;

  /// Counts one event of the given ledger kind; returns false once the
  /// budget is exhausted.
  bool Charge(EventCount CostLedger::*counter) {
    ++(ledger.*counter);
    return budget < 0.0 || ledger.Total(*params) <= budget;
  }

  /// Accumulates a non-unit charge (the sort remainder).
  bool ChargeExtra(double units) {
    ledger.extra += units;
    return budget < 0.0 || ledger.Total(*params) <= budget;
  }
};

class OperatorBase {
 public:
  virtual ~OperatorBase() = default;
  virtual Status Open(ExecContext* ctx) = 0;
  /// Produces the next row; sets *eof instead when exhausted.
  virtual Status Next(ExecContext* ctx, Row* out, bool* eof) = 0;
  const RowLayout& layout() const { return layout_; }

 protected:
  RowLayout layout_;
};

class SeqScanOp : public OperatorBase {
 public:
  SeqScanOp(const Catalog& catalog, const Query& query, const CostModel& cm,
            const PlanNode& node)
      : catalog_(catalog), query_(query), cm_(cm), node_(node) {
    const std::string& tname = query.tables()[static_cast<size_t>(node.table_idx)];
    table_ = catalog.FindTable(tname)->table.get();
    layout_.table_offset.assign(query.tables().size(), -1);
    layout_.table_offset[static_cast<size_t>(node.table_idx)] = 0;
    layout_.width = table_->schema().num_columns();
    for (int f : node.filter_indices) {
      const FilterPredicate& fp = query.filters()[static_cast<size_t>(f)];
      const int col = table_->schema().FindColumn(fp.column);
      CompareOp op = fp.op;
      double value = fp.value;
      if (fp.is_string) {
        kernels::MapStringPredicate(table_->column(col).enc(), fp.op,
                                    fp.value_str, &op, &value);
      }
      filters_.push_back({col, op, value});
    }
  }

  Status Open(ExecContext* ctx) override {
    row_ = 0;
    NodeStats& st = (*ctx->stats)[static_cast<size_t>(node_.id)];
    st.filter_in.assign(filters_.size(), 0);
    st.filter_pass.assign(filters_.size(), 0);
    return Status::OK();
  }

  Status Next(ExecContext* ctx, Row* out, bool* eof) override {
    NodeStats& st = (*ctx->stats)[static_cast<size_t>(node_.id)];
    while (row_ < table_->num_rows()) {
      const int64_t r = row_++;
      ++st.left_in;
      if (!ctx->Charge(&CostLedger::scan_tuple)) {
        return Status::BudgetExhausted("scan");
      }
      bool pass = true;
      for (size_t k = 0; k < filters_.size(); ++k) {
        const auto& f = filters_[k];
        ++st.filter_in[k];
        const double v = table_->column(f.col).GetNumeric(r);
        switch (f.op) {
          case CompareOp::kLt: pass = v < f.value; break;
          case CompareOp::kLe: pass = v <= f.value; break;
          case CompareOp::kGt: pass = v > f.value; break;
          case CompareOp::kGe: pass = v >= f.value; break;
          case CompareOp::kEq: pass = v == f.value; break;
        }
        if (!pass) break;
        ++st.filter_pass[k];
      }
      if (!pass) continue;
      out->resize(static_cast<size_t>(layout_.width));
      for (int c = 0; c < layout_.width; ++c) {
        (*out)[static_cast<size_t>(c)] = table_->column(c).GetNumeric(r);
      }
      ++st.out;
      *eof = false;
      return Status::OK();
    }
    *eof = true;
    return Status::OK();
  }

 private:
  struct Filter {
    int col;
    CompareOp op;
    double value;
  };
  const Catalog& catalog_;
  const Query& query_;
  const CostModel& cm_;
  const PlanNode& node_;
  const Table* table_ = nullptr;
  std::vector<Filter> filters_;
  int64_t row_ = 0;
};

/// Merges two child layouts side by side.
RowLayout ConcatLayouts(const RowLayout& a, const RowLayout& b) {
  RowLayout out;
  out.table_offset.assign(a.table_offset.size(), -1);
  for (size_t t = 0; t < a.table_offset.size(); ++t) {
    if (a.table_offset[t] >= 0) out.table_offset[t] = a.table_offset[t];
    if (b.table_offset[t] >= 0) {
      RQP_CHECK(out.table_offset[t] < 0);
      out.table_offset[t] = a.width + b.table_offset[t];
    }
  }
  out.width = a.width + b.width;
  return out;
}

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// Resolved join keys: slots on each side, in predicate order.
struct JoinKeys {
  std::vector<int> left_slots;
  std::vector<int> right_slots;
};

JoinKeys ResolveKeys(const Query& query, const Catalog& catalog,
                     const std::vector<int>& join_indices,
                     const RowLayout& left, const RowLayout& right) {
  JoinKeys keys;
  for (int j : join_indices) {
    const JoinPredicate& jp = query.joins()[static_cast<size_t>(j)];
    // Either end of the predicate may live on either side of this node.
    const int lt = query.TableIndex(jp.left_table);
    const bool left_has_left = left.table_offset[static_cast<size_t>(lt)] >= 0;
    const std::string& ltab = left_has_left ? jp.left_table : jp.right_table;
    const std::string& lcol = left_has_left ? jp.left_column : jp.right_column;
    const std::string& rtab = left_has_left ? jp.right_table : jp.left_table;
    const std::string& rcol = left_has_left ? jp.right_column : jp.left_column;
    keys.left_slots.push_back(left.Slot(query, ltab, lcol, catalog));
    keys.right_slots.push_back(right.Slot(query, rtab, rcol, catalog));
  }
  return keys;
}

struct KeyHash {
  size_t operator()(const std::vector<double>& k) const {
    size_t h = 1469598103934665603ull;
    for (double v : k) {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      h ^= bits;
      h *= 1099511628211ull;
    }
    return h;
  }
};

class HashJoinOp : public OperatorBase {
 public:
  HashJoinOp(const Catalog& catalog, const Query& query, const CostModel& cm,
             const PlanNode& node, std::unique_ptr<OperatorBase> build,
             std::unique_ptr<OperatorBase> probe)
      : cm_(cm),
        node_(node),
        build_(std::move(build)),
        probe_(std::move(probe)) {
    layout_ = ConcatLayouts(build_->layout(), probe_->layout());
    keys_ = ResolveKeys(query, catalog, node.join_indices, build_->layout(),
                        probe_->layout());
  }

  Status Open(ExecContext* ctx) override {
    RQP_RETURN_NOT_OK(build_->Open(ctx));
    NodeStats& st = (*ctx->stats)[static_cast<size_t>(node_.id)];
    table_.clear();
    Row row;
    bool eof = false;
    while (true) {
      RQP_RETURN_NOT_OK(build_->Next(ctx, &row, &eof));
      if (eof) break;
      ++st.left_in;
      if (!ctx->Charge(&CostLedger::hash_build_tuple)) {
        return Status::BudgetExhausted("hash build");
      }
      std::vector<double> key;
      key.reserve(keys_.left_slots.size());
      for (int s : keys_.left_slots) key.push_back(row[static_cast<size_t>(s)]);
      table_[key].push_back(row);
    }
    RQP_RETURN_NOT_OK(probe_->Open(ctx));
    matches_ = nullptr;
    match_idx_ = 0;
    return Status::OK();
  }

  Status Next(ExecContext* ctx, Row* out, bool* eof) override {
    NodeStats& st = (*ctx->stats)[static_cast<size_t>(node_.id)];
    while (true) {
      if (matches_ != nullptr && match_idx_ < matches_->size()) {
        if (!ctx->Charge(&CostLedger::join_output_tuple)) {
          return Status::BudgetExhausted("hash join output");
        }
        *out = ConcatRows((*matches_)[match_idx_++], probe_row_);
        ++st.out;
        *eof = false;
        return Status::OK();
      }
      bool probe_eof = false;
      RQP_RETURN_NOT_OK(probe_->Next(ctx, &probe_row_, &probe_eof));
      if (probe_eof) {
        *eof = true;
        return Status::OK();
      }
      ++st.right_in;
      if (!ctx->Charge(&CostLedger::hash_probe_tuple)) {
        return Status::BudgetExhausted("hash probe");
      }
      std::vector<double> key;
      key.reserve(keys_.right_slots.size());
      for (int s : keys_.right_slots) {
        key.push_back(probe_row_[static_cast<size_t>(s)]);
      }
      auto it = table_.find(key);
      matches_ = it == table_.end() ? nullptr : &it->second;
      match_idx_ = 0;
    }
  }

 private:
  const CostModel& cm_;
  const PlanNode& node_;
  std::unique_ptr<OperatorBase> build_;
  std::unique_ptr<OperatorBase> probe_;
  JoinKeys keys_;
  std::unordered_map<std::vector<double>, std::vector<Row>, KeyHash> table_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_idx_ = 0;
  Row probe_row_;
};

class NLJoinOp : public OperatorBase {
 public:
  NLJoinOp(const Catalog& catalog, const Query& query, const CostModel& cm,
           const PlanNode& node, std::unique_ptr<OperatorBase> outer,
           std::unique_ptr<OperatorBase> inner)
      : cm_(cm),
        node_(node),
        outer_(std::move(outer)),
        inner_(std::move(inner)) {
    layout_ = ConcatLayouts(outer_->layout(), inner_->layout());
    keys_ = ResolveKeys(query, catalog, node.join_indices, outer_->layout(),
                        inner_->layout());
  }

  Status Open(ExecContext* ctx) override {
    // Materialize the inner side once (the blocking child).
    RQP_RETURN_NOT_OK(inner_->Open(ctx));
    NodeStats& st = (*ctx->stats)[static_cast<size_t>(node_.id)];
    inner_rows_.clear();
    Row row;
    bool eof = false;
    while (true) {
      RQP_RETURN_NOT_OK(inner_->Next(ctx, &row, &eof));
      if (eof) break;
      ++st.right_in;
      if (!ctx->Charge(&CostLedger::nlj_materialize_tuple)) {
        return Status::BudgetExhausted("nlj materialize");
      }
      inner_rows_.push_back(row);
    }
    RQP_RETURN_NOT_OK(outer_->Open(ctx));
    have_outer_ = false;
    inner_idx_ = 0;
    return Status::OK();
  }

  Status Next(ExecContext* ctx, Row* out, bool* eof) override {
    NodeStats& st = (*ctx->stats)[static_cast<size_t>(node_.id)];
    while (true) {
      if (!have_outer_) {
        bool outer_eof = false;
        RQP_RETURN_NOT_OK(outer_->Next(ctx, &outer_row_, &outer_eof));
        if (outer_eof) {
          *eof = true;
          return Status::OK();
        }
        ++st.left_in;
        have_outer_ = true;
        inner_idx_ = 0;
      }
      while (inner_idx_ < inner_rows_.size()) {
        const Row& inner = inner_rows_[inner_idx_++];
        if (!ctx->Charge(&CostLedger::nlj_pair)) {
          return Status::BudgetExhausted("nlj pair");
        }
        bool match = true;
        for (size_t k = 0; k < keys_.left_slots.size(); ++k) {
          if (outer_row_[static_cast<size_t>(keys_.left_slots[k])] !=
              inner[static_cast<size_t>(keys_.right_slots[k])]) {
            match = false;
            break;
          }
        }
        if (match) {
          if (!ctx->Charge(&CostLedger::join_output_tuple)) {
            return Status::BudgetExhausted("nlj output");
          }
          *out = ConcatRows(outer_row_, inner);
          ++st.out;
          *eof = false;
          return Status::OK();
        }
      }
      have_outer_ = false;
    }
  }

 private:
  const CostModel& cm_;
  const PlanNode& node_;
  std::unique_ptr<OperatorBase> outer_;
  std::unique_ptr<OperatorBase> inner_;
  JoinKeys keys_;
  std::vector<Row> inner_rows_;
  Row outer_row_;
  bool have_outer_ = false;
  size_t inner_idx_ = 0;
};

class SortMergeJoinOp : public OperatorBase {
 public:
  SortMergeJoinOp(const Catalog& catalog, const Query& query,
                  const CostModel& cm, const PlanNode& node,
                  std::unique_ptr<OperatorBase> left,
                  std::unique_ptr<OperatorBase> right)
      : cm_(cm), node_(node), left_(std::move(left)), right_(std::move(right)) {
    layout_ = ConcatLayouts(left_->layout(), right_->layout());
    keys_ = ResolveKeys(query, catalog, node.join_indices, left_->layout(),
                        right_->layout());
  }

  Status Open(ExecContext* ctx) override {
    NodeStats& st = (*ctx->stats)[static_cast<size_t>(node_.id)];
    RQP_RETURN_NOT_OK(DrainAndSort(ctx, left_.get(), keys_.left_slots,
                                   &left_rows_, &st.left_in));
    RQP_RETURN_NOT_OK(DrainAndSort(ctx, right_.get(), keys_.right_slots,
                                   &right_rows_, &st.right_in));
    li_ = 0;
    ri_ = 0;
    group_li_ = 0;
    group_le_ = 0;
    group_re_ = 0;
    emit_ri_ = 0;
    in_group_ = false;
    return Status::OK();
  }

  Status Next(ExecContext* ctx, Row* out, bool* eof) override {
    NodeStats& st = (*ctx->stats)[static_cast<size_t>(node_.id)];
    while (true) {
      if (in_group_) {
        // Emit the cross product of the current equal-key groups.
        if (emit_ri_ < group_re_) {
          if (!ctx->Charge(&CostLedger::join_output_tuple)) {
            return Status::BudgetExhausted("merge join output");
          }
          *out = ConcatRows(left_rows_[group_li_], right_rows_[emit_ri_++]);
          ++st.out;
          *eof = false;
          return Status::OK();
        }
        ++group_li_;
        if (group_li_ < group_le_) {
          emit_ri_ = ri_;
          continue;
        }
        in_group_ = false;
        li_ = group_le_;
        ri_ = group_re_;
      }
      // Advance cursors to the next matching key.
      while (li_ < left_rows_.size() && ri_ < right_rows_.size()) {
        const int cmp = CompareKeys(left_rows_[li_], right_rows_[ri_]);
        if (cmp < 0) {
          if (!ctx->Charge(&CostLedger::merge_tuple)) {
            return Status::BudgetExhausted("merge advance");
          }
          ++li_;
        } else if (cmp > 0) {
          if (!ctx->Charge(&CostLedger::merge_tuple)) {
            return Status::BudgetExhausted("merge advance");
          }
          ++ri_;
        } else {
          // Found an equal-key run on both sides.
          group_le_ = li_;
          while (group_le_ < left_rows_.size() &&
                 CompareKeys(left_rows_[group_le_], right_rows_[ri_]) == 0) {
            if (!ctx->Charge(&CostLedger::merge_tuple)) {
              return Status::BudgetExhausted("merge advance");
            }
            ++group_le_;
          }
          group_re_ = ri_;
          while (group_re_ < right_rows_.size() &&
                 CompareKeys(left_rows_[li_], right_rows_[group_re_]) == 0) {
            if (!ctx->Charge(&CostLedger::merge_tuple)) {
              return Status::BudgetExhausted("merge advance");
            }
            ++group_re_;
          }
          group_li_ = li_;
          emit_ri_ = ri_;
          in_group_ = true;
          break;
        }
      }
      if (!in_group_) {
        *eof = true;
        return Status::OK();
      }
    }
  }

 private:
  int CompareKeys(const Row& l, const Row& r) const {
    for (size_t k = 0; k < keys_.left_slots.size(); ++k) {
      const double a = l[static_cast<size_t>(keys_.left_slots[k])];
      const double b = r[static_cast<size_t>(keys_.right_slots[k])];
      if (a < b) return -1;
      if (a > b) return 1;
    }
    return 0;
  }

  Status DrainAndSort(ExecContext* ctx, OperatorBase* child,
                      const std::vector<int>& slots, std::vector<Row>* rows,
                      int64_t* counter) {
    RQP_RETURN_NOT_OK(child->Open(ctx));
    rows->clear();
    Row row;
    bool eof = false;
    while (true) {
      RQP_RETURN_NOT_OK(child->Next(ctx, &row, &eof));
      if (eof) break;
      ++*counter;
      if (!ctx->Charge(&CostLedger::sort_tuple)) {
        return Status::BudgetExhausted("sort materialize");
      }
      rows->push_back(row);
    }
    // Remaining n (log2 n - 1) units so the total matches the cost
    // model's n log2 n sort term.
    const double n = static_cast<double>(rows->size());
    const double remainder = CostModel::SortTerm(n) - n;
    if (remainder > 0.0 &&
        !ctx->ChargeExtra(cm_.params().sort_tuple * remainder)) {
      return Status::BudgetExhausted("sort");
    }
    // Stable so equal-key run order is the scan order — the batch engine
    // sorts the same way, keeping downstream event order (and therefore
    // mid-run budget abort boundaries) identical between engines.
    std::stable_sort(rows->begin(), rows->end(), [&](const Row& a, const Row& b) {
      for (int s : slots) {
        if (a[static_cast<size_t>(s)] != b[static_cast<size_t>(s)]) {
          return a[static_cast<size_t>(s)] < b[static_cast<size_t>(s)];
        }
      }
      return false;
    });
    return Status::OK();
  }

  const CostModel& cm_;
  const PlanNode& node_;
  std::unique_ptr<OperatorBase> left_;
  std::unique_ptr<OperatorBase> right_;
  JoinKeys keys_;
  std::vector<Row> left_rows_;
  std::vector<Row> right_rows_;
  size_t li_ = 0, ri_ = 0;
  size_t group_li_ = 0, group_le_ = 0, group_re_ = 0, emit_ri_ = 0;
  bool in_group_ = false;
};

class IndexNLJoinOp : public OperatorBase {
 public:
  IndexNLJoinOp(const Catalog& catalog, const Query& query, const CostModel& cm,
                const PlanNode& node, std::unique_ptr<OperatorBase> outer)
      : catalog_(catalog), query_(query), cm_(cm), node_(node),
        outer_(std::move(outer)) {
    RQP_CHECK(node.join_indices.size() == 1);
    RQP_CHECK(node.right != nullptr && node.right->op == PlanOp::kSeqScan);
    const int t = node.right->table_idx;
    const std::string& tname = query.tables()[static_cast<size_t>(t)];
    inner_table_ = catalog.FindTable(tname)->table.get();

    // Layout: outer columns followed by all inner-table columns.
    RowLayout inner_layout;
    inner_layout.table_offset.assign(query.tables().size(), -1);
    inner_layout.table_offset[static_cast<size_t>(t)] = 0;
    inner_layout.width = inner_table_->schema().num_columns();
    layout_ = ConcatLayouts(outer_->layout(), inner_layout);

    // The join predicate: resolve the outer-side slot and the indexed
    // inner column.
    const JoinPredicate& jp =
        query.joins()[static_cast<size_t>(node.join_indices[0])];
    const bool inner_is_left = query.TableIndex(jp.left_table) == t;
    const std::string& inner_col = inner_is_left ? jp.left_column : jp.right_column;
    const std::string& outer_tab = inner_is_left ? jp.right_table : jp.left_table;
    const std::string& outer_col = inner_is_left ? jp.right_column : jp.left_column;
    outer_key_slot_ = outer_->layout().Slot(query, outer_tab, outer_col, catalog);
    index_ = catalog.FindIndex(tname, inner_col);
    RQP_CHECK(index_ != nullptr);

    for (int f : node.right->filter_indices) {
      const FilterPredicate& fp = query.filters()[static_cast<size_t>(f)];
      const int col = inner_table_->schema().FindColumn(fp.column);
      CompareOp op = fp.op;
      double value = fp.value;
      if (fp.is_string) {
        kernels::MapStringPredicate(inner_table_->column(col).enc(), fp.op,
                                    fp.value_str, &op, &value);
      }
      filters_.push_back({col, op, value});
    }
  }

  Status Open(ExecContext* ctx) override {
    RQP_RETURN_NOT_OK(outer_->Open(ctx));
    // Selectivity monitoring: the denominator of the observed join
    // selectivity is the *filtered* inner cardinality, which the probe
    // path never sees; count it in a metadata-only (uncharged) pass so a
    // completed spill on this node learns the same quantity a hash or
    // block-nested join would.
    NodeStats& st = (*ctx->stats)[static_cast<size_t>(node_.id)];
    NodeStats& scan_st = (*ctx->stats)[static_cast<size_t>(node_.right->id)];
    scan_st.filter_in.assign(filters_.size(), 0);
    scan_st.filter_pass.assign(filters_.size(), 0);
    st.right_in = 0;
    for (int64_t r = 0; r < inner_table_->num_rows(); ++r) {
      bool pass = true;
      for (size_t k = 0; k < filters_.size(); ++k) {
        ++scan_st.filter_in[k];
        if (!EvalFilter(filters_[k], r)) {
          pass = false;
          break;
        }
        ++scan_st.filter_pass[k];
      }
      if (pass) ++st.right_in;
    }
    matches_ = {};
    match_idx_ = 0;
    return Status::OK();
  }

  Status Next(ExecContext* ctx, Row* out, bool* eof) override {
    NodeStats& st = (*ctx->stats)[static_cast<size_t>(node_.id)];
    while (true) {
      if (!matches_.empty()) {
        while (match_idx_ < matches_.size()) {
          const int64_t r = matches_[match_idx_++];
          if (!ctx->Charge(&CostLedger::index_fetch)) {
            return Status::BudgetExhausted("index fetch");
          }
          if (!PassesFilters(r)) continue;
          if (!ctx->Charge(&CostLedger::join_output_tuple)) {
            return Status::BudgetExhausted("index join output");
          }
          out->resize(outer_row_.size() +
                      static_cast<size_t>(inner_table_->schema().num_columns()));
          std::copy(outer_row_.begin(), outer_row_.end(), out->begin());
          for (int c = 0; c < inner_table_->schema().num_columns(); ++c) {
            (*out)[outer_row_.size() + static_cast<size_t>(c)] =
                inner_table_->column(c).GetNumeric(r);
          }
          ++st.out;
          *eof = false;
          return Status::OK();
        }
        matches_ = {};
      }
      bool outer_eof = false;
      RQP_RETURN_NOT_OK(outer_->Next(ctx, &outer_row_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return Status::OK();
      }
      ++st.left_in;
      if (!ctx->Charge(&CostLedger::index_probe)) {
        return Status::BudgetExhausted("index probe");
      }
      const double key = outer_row_[static_cast<size_t>(outer_key_slot_)];
      matches_ = index_->Lookup(static_cast<int64_t>(key));
      match_idx_ = 0;
    }
  }

 private:
  struct Filter {
    int col;
    CompareOp op;
    double value;
  };

  bool EvalFilter(const Filter& f, int64_t row) const {
    const double v = inner_table_->column(f.col).GetNumeric(row);
    switch (f.op) {
      case CompareOp::kLt: return v < f.value;
      case CompareOp::kLe: return v <= f.value;
      case CompareOp::kGt: return v > f.value;
      case CompareOp::kGe: return v >= f.value;
      case CompareOp::kEq: return v == f.value;
    }
    return false;
  }

  bool PassesFilters(int64_t row) const {
    for (const auto& f : filters_) {
      if (!EvalFilter(f, row)) return false;
    }
    return true;
  }

  const Catalog& catalog_;
  const Query& query_;
  const CostModel& cm_;
  const PlanNode& node_;
  std::unique_ptr<OperatorBase> outer_;
  const Table* inner_table_ = nullptr;
  const HashIndex* index_ = nullptr;
  int outer_key_slot_ = -1;
  std::vector<Filter> filters_;
  Row outer_row_;
  RowIdSpan matches_;
  int64_t match_idx_ = 0;
};

std::unique_ptr<OperatorBase> BuildOperator(const Catalog& catalog,
                                            const Query& query,
                                            const CostModel& cm,
                                            const PlanNode& node) {
  if (node.op == PlanOp::kSeqScan) {
    return std::make_unique<SeqScanOp>(catalog, query, cm, node);
  }
  if (node.op == PlanOp::kIndexNLJoin) {
    auto outer = BuildOperator(catalog, query, cm, *node.left);
    return std::make_unique<IndexNLJoinOp>(catalog, query, cm, node,
                                           std::move(outer));
  }
  auto left = BuildOperator(catalog, query, cm, *node.left);
  auto right = BuildOperator(catalog, query, cm, *node.right);
  if (node.op == PlanOp::kHashJoin) {
    return std::make_unique<HashJoinOp>(catalog, query, cm, node,
                                        std::move(left), std::move(right));
  }
  if (node.op == PlanOp::kSortMergeJoin) {
    return std::make_unique<SortMergeJoinOp>(catalog, query, cm, node,
                                             std::move(left), std::move(right));
  }
  return std::make_unique<NLJoinOp>(catalog, query, cm, node, std::move(left),
                                    std::move(right));
}

}  // namespace

Executor::Executor(const Catalog* catalog, CostModel cost_model)
    : Executor(catalog, cost_model, Options{}) {}

Executor::Executor(const Catalog* catalog, CostModel cost_model,
                   Options options)
    : catalog_(catalog), cost_model_(cost_model), options_(options) {
  if (options_.num_threads == 0) {
    options_.num_threads = ThreadPool::DefaultThreads();
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Executor::~Executor() = default;

bool Executor::ParseEngine(const std::string& name, Engine* out) {
  if (name == "tuple") {
    *out = Engine::kTuple;
    return true;
  }
  if (name == "batch") {
    *out = Engine::kBatch;
    return true;
  }
  return false;
}

Result<ExecutionResult> Executor::Run(const Plan& plan, const PlanNode& root,
                                      double budget, bool spill) const {
  if (FaultInjector::Armed()) return RunFaulted(plan, root, budget, spill);
  return RunOnce(plan, root, budget, spill, options_.engine,
                 /*allow_parallel=*/true);
}

Result<ExecutionResult> Executor::RunOnce(const Plan& plan,
                                          const PlanNode& root, double budget,
                                          bool spill, Engine engine,
                                          bool allow_parallel) const {
  if (engine == Engine::kBatch) {
    // Morsel parallelism only for full runs: a budgeted abort must land on
    // one well-defined tuple, and a spill's whole point is to time-limit
    // learning, so both stay single-threaded.
    const bool full = budget < 0.0 && !spill && allow_parallel;
    ThreadPool* pool = full ? pool_.get() : nullptr;
    // Sharding obeys the same full-run-only rule, and the serial
    // degradation rung (allow_parallel=false) collapses it too.
    const int shards = full ? options_.num_shards : 1;
    return RunBatchEngine(*catalog_, plan, root, cost_model_, budget, pool,
                          options_.use_zone_maps, options_.use_compression,
                          shards);
  }

  ExecutionResult result;
  result.node_stats.assign(static_cast<size_t>(plan.num_nodes()), NodeStats{});

  ExecContext ctx;
  ctx.budget = budget;
  ctx.params = &cost_model_.params();
  ctx.stats = &result.node_stats;

  auto op = BuildOperator(*catalog_, plan.query(), cost_model_, root);
  Status st = op->Open(&ctx);
  if (st.ok()) {
    Row row;
    bool eof = false;
    while (true) {
      st = op->Next(&ctx, &row, &eof);
      if (!st.ok() || eof) break;
      ++result.output_rows;
    }
  }
  const double cost_used = ctx.ledger.Total(*ctx.params);
  result.cost_used = std::min(cost_used, budget < 0.0 ? cost_used : budget);
  if (st.ok()) {
    result.completed = true;
  } else if (st.code() == StatusCode::kBudgetExhausted) {
    result.completed = false;
  } else {
    return st;
  }
  return result;
}

Result<ExecutionResult> Executor::RunFaulted(const Plan& plan,
                                             const PlanNode& root,
                                             double budget, bool spill) const {
  // All fault draws happen here, once per operator per attempt, *before*
  // the attempt runs — never inside engine internals or morsel workers —
  // so the sequence is identical for both engines at any thread count.
  std::vector<int> sites;
  CollectFaultSites(root, &sites);
  if (spill) sites.push_back(fault_site::kExecSpillRun);
  const bool batch = options_.engine == Engine::kBatch;
  if (batch) {
    sites.push_back(fault_site::kExecBatchPipeline);
    if (pool_ != nullptr && budget < 0.0 && !spill) {
      sites.push_back(fault_site::kExecMorselScan);
    }
  }

  ExecutionResult last;
  bool have_last = false;
  FaultedRunOutcome outcome = RunWithFaultRetries(
      FaultInjector::Global(), sites, budget,
      [&](double eff_budget, const FaultRunState& state) -> FaultAttempt {
        const Engine engine =
            state.degrade_engine ? Engine::kTuple : options_.engine;
        Result<ExecutionResult> r = RunOnce(plan, root, eff_budget, spill,
                                            engine, !state.degrade_serial);
        FaultAttempt a;
        if (!r.ok()) {
          a.status = r.status();
          return a;
        }
        last = r.MoveValue();
        have_last = true;
        a.completed = last.completed;
        a.cost = last.cost_used;
        return a;
      });
  if (!outcome.status.ok()) return outcome.status;

  ExecutionResult result;
  if (outcome.final_attempt_valid && have_last) {
    result = std::move(last);
  } else {
    // Retries exhausted the budget before any attempt survived: the run
    // charges the budget with nothing learned — exactly the shape of a
    // clean budget-exhausted execution.
    result.node_stats.assign(static_cast<size_t>(plan.num_nodes()),
                             NodeStats{});
  }
  result.completed = outcome.completed;
  result.cost_used = outcome.cost_used;
  // The surviving attempt may carry its own fault accounting (shard
  // straggler / lost-chunk recoveries fire inside RunOnce); merge rather
  // than overwrite so neither side's counters are dropped.
  RobustnessReport rep = outcome.report;
  rep.Merge(result.robustness);
  result.robustness = rep;
  return result;
}

Result<ExecutionResult> Executor::Execute(const Plan& plan,
                                          double budget) const {
  return Run(plan, plan.root(), budget, /*spill=*/false);
}

Result<ExecutionResult> Executor::ExecuteSpill(const Plan& plan,
                                               int spill_node_id,
                                               double budget) const {
  RQP_CHECK(spill_node_id >= 0 && spill_node_id < plan.num_nodes());
  return Run(plan, plan.node(spill_node_id), budget, /*spill=*/true);
}

Result<Executor::MinMaxResult> Executor::ExecuteMinMax(
    const std::string& table, const std::string& column, double budget) const {
  const CatalogEntry* entry = catalog_->FindTable(table);
  if (entry == nullptr) {
    return Status::NotFound("min/max: unknown table '" + table + "'");
  }
  const Table* t = entry->table.get();
  const int c = t->schema().FindColumn(column);
  if (c < 0) {
    return Status::NotFound("min/max: table '" + table + "' has no column '" +
                            column + "'");
  }
  const int64_t n = t->num_rows();
  const CostParams& params = cost_model_.params();
  // What a tuple-at-a-time scan charges after m rows.
  auto total_at = [&params](int64_t m) {
    CostLedger probe;
    probe.scan_tuple += m;
    return probe.Total(params);
  };

  MinMaxResult out;
  if (budget >= 0.0 && n > 0 && total_at(n) > budget) {
    // The naive loop charges row r's scan event and then aborts when the
    // running total first exceeds the budget; find that row exactly.
    // Total is non-decreasing in the event count, so binary search.
    int64_t lo = 1, hi = n;
    while (lo < hi) {
      const int64_t mid = lo + (hi - lo) / 2;
      if (total_at(mid) > budget) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    out.rows = lo;
    out.cost_used = budget;  // min(total, budget), as in Execute
    out.completed = false;
    return out;
  }

  out.rows = n;
  out.cost_used = total_at(n);
  out.completed = true;
  const kernels::MinMaxStats s = kernels::ColumnMinMax(t->column(c));
  out.min = s.min;
  out.max = s.max;
  out.has_nan = s.has_nan;
  return out;
}

}  // namespace robustqp
