#include "exec/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace robustqp {
namespace kernels {
namespace {

/// Per-block decision for one predicate against one zone summary.
/// `lo > hi` means the block holds no comparable value (empty tail or
/// all-NaN), which satisfies nothing.
ZoneMatch ClassifyBlock(double lo, double hi, bool nan, CompareOp op,
                        double value) {
  if (lo > hi) return ZoneMatch::kNone;
  switch (op) {
    case CompareOp::kLt:
      if (lo >= value) return ZoneMatch::kNone;
      if (hi < value && !nan) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case CompareOp::kLe:
      if (lo > value) return ZoneMatch::kNone;
      if (hi <= value && !nan) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case CompareOp::kGt:
      if (hi <= value) return ZoneMatch::kNone;
      if (lo > value && !nan) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case CompareOp::kGe:
      if (hi < value) return ZoneMatch::kNone;
      if (lo >= value && !nan) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case CompareOp::kEq:
      if (value < lo || value > hi) return ZoneMatch::kNone;
      if (lo == value && hi == value && !nan) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
  }
  return ZoneMatch::kSome;
}

/// Scalar predicate with the executor's double-compare semantics.
bool CompareVal(double x, CompareOp op, double value) {
  switch (op) {
    case CompareOp::kLt:
      return x < value;
    case CompareOp::kLe:
      return x <= value;
    case CompareOp::kGt:
      return x > value;
    case CompareOp::kGe:
      return x >= value;
    case CompareOp::kEq:
      return x == value;
  }
  return false;
}

/// Dispatches op once and hands `emit` a 0-indexed bool lambda over a
/// plain value array (int values compared after the double cast, exactly
/// like the tuple engine).
template <typename T, typename Fn>
void WithArrayPred(const T* v, CompareOp op, double value, Fn&& emit) {
  switch (op) {
    case CompareOp::kLt:
      emit([=](int64_t i) { return static_cast<double>(v[i]) < value; });
      return;
    case CompareOp::kLe:
      emit([=](int64_t i) { return static_cast<double>(v[i]) <= value; });
      return;
    case CompareOp::kGt:
      emit([=](int64_t i) { return static_cast<double>(v[i]) > value; });
      return;
    case CompareOp::kGe:
      emit([=](int64_t i) { return static_cast<double>(v[i]) >= value; });
      return;
    case CompareOp::kEq:
      emit([=](int64_t i) { return static_cast<double>(v[i]) == value; });
      return;
  }
}

/// Branch-free predicate application over a contiguous range, dispatched
/// on type+op once so the inner loops compare raw values. `emit` is
/// called as emit(pred) with a row-indexed bool lambda.
template <typename Fn>
void WithRawPred(const ColumnData& col, CompareOp op, double value, Fn&& emit) {
  if (col.type() == DataType::kInt64) {
    const int64_t* v = col.ints().data();
    switch (op) {
      case CompareOp::kLt:
        emit([=](int64_t r) { return static_cast<double>(v[r]) < value; });
        return;
      case CompareOp::kLe:
        emit([=](int64_t r) { return static_cast<double>(v[r]) <= value; });
        return;
      case CompareOp::kGt:
        emit([=](int64_t r) { return static_cast<double>(v[r]) > value; });
        return;
      case CompareOp::kGe:
        emit([=](int64_t r) { return static_cast<double>(v[r]) >= value; });
        return;
      case CompareOp::kEq:
        emit([=](int64_t r) { return static_cast<double>(v[r]) == value; });
        return;
    }
  } else {
    const double* v = col.doubles().data();
    switch (op) {
      case CompareOp::kLt:
        emit([=](int64_t r) { return v[r] < value; });
        return;
      case CompareOp::kLe:
        emit([=](int64_t r) { return v[r] <= value; });
        return;
      case CompareOp::kGt:
        emit([=](int64_t r) { return v[r] > value; });
        return;
      case CompareOp::kGe:
        emit([=](int64_t r) { return v[r] >= value; });
        return;
      case CompareOp::kEq:
        emit([=](int64_t r) { return v[r] == value; });
        return;
    }
  }
}

/// Sparse/dense survivor emission for a 0-indexed predicate over [0, n);
/// row ids written to out are base + i. Returns the survivor count.
template <typename Pred>
int64_t EmitPred(int64_t n, int64_t base, double est_selectivity, int64_t* out,
                 FilterScratch* scratch, Pred&& pred) {
  int64_t w = 0;
  if (est_selectivity >= kDensePathSelectivity) {
    scratch->mask.resize(static_cast<size_t>(n));
    uint8_t* m = scratch->mask.data();
    for (int64_t i = 0; i < n; ++i) m[i] = pred(i) ? 1 : 0;
    for (int64_t i = 0; i < n; ++i) {
      out[w] = base + i;
      w += m[i];
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      out[w] = base + i;
      w += pred(i) ? 1 : 0;
    }
  }
  return w;
}

/// Survivor emission from a 0/1 byte mask with zero-word skipping: eight
/// mask bytes are scanned as one uint64 load, so stretches with no
/// survivors cost one test per eight rows and all-pass stretches emit
/// without per-row tests — the low- and high-selectivity regimes a
/// filtered scan actually spends its time in. Row ids written are
/// base + i; returns the survivor count.
int64_t EmitFromMask(const uint8_t* mask, int64_t n, int64_t base,
                     int64_t* out) {
  constexpr uint64_t kAllPass = 0x0101010101010101ull;
  int64_t w = 0;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, mask + i, sizeof(word));
    if (word == 0) continue;
    if (word == kAllPass) {
      for (int j = 0; j < 8; ++j) out[w + j] = base + i + j;
      w += 8;
      continue;
    }
    // Mask bytes are 0 or 1, so set bits sit at positions 8*j; peel them
    // lowest-first.
    while (word != 0) {
      const int j = __builtin_ctzll(word) >> 3;
      out[w++] = base + i + j;
      word &= word - 1;
    }
  }
  for (; i < n; ++i) {
    out[w] = base + i;
    w += mask[i];
  }
  return w;
}

/// Byte mask of pred(code[i]) over a native little-endian lane array
/// (see bitpack::LaneWidthFor) — the typed compare loop has no
/// loop-carried dependency and auto-vectorizes at lane granularity (32
/// uint8 compares per AVX2 op against 4 for int64 values) — then
/// survivor emission via EmitFromMask.
template <typename T, typename Pred>
int64_t EmitLanePred(const uint8_t* lanes, int64_t m, int64_t base,
                     FilterScratch* scratch, int64_t* out, Pred&& pred) {
  scratch->mask.resize(static_cast<size_t>(m));
  // __restrict: lanes and mask are both byte pointers, and char-typed
  // stores alias everything — without the annotation the compiler must
  // assume the mask stores feed back into the lane loads and keeps the
  // loop scalar.
  const uint8_t* __restrict src = lanes;
  uint8_t* __restrict mask = scratch->mask.data();
  for (int64_t i = 0; i < m; ++i) {
    T x;
    std::memcpy(&x, src + i * static_cast<int64_t>(sizeof(T)), sizeof(T));
    mask[i] = pred(x) ? 1 : 0;
  }
  return EmitFromMask(scratch->mask.data(), m, base, out);
}

/// Invokes fn(type_tag, lane_bytes) for the block's codes [i0, i0+m).
/// Lane widths 8/16/32/64 point straight into the packed words (blocks
/// are word-aligned and lane widths divide 64, so lane i0 starts at byte
/// i0*width/8); 1/2/4-bit codes are widened into scratch->lanes bytes
/// first. Width 0 is the caller's job (every code is 0).
template <typename Fn>
int64_t WithLaneArray(const EncodedColumn::PackedView& view, int64_t i0,
                      int64_t m, FilterScratch* scratch, Fn&& fn) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(view.words);
  switch (view.width) {
    case 8:
      return fn(uint8_t{}, bytes + i0);
    case 16:
      return fn(uint16_t{}, bytes + i0 * 2);
    case 32:
      return fn(uint32_t{}, bytes + i0 * 4);
    case 64:
      return fn(uint64_t{}, bytes + i0 * 8);
    default: {  // lane widths 1/2/4: whole codes inside one byte
      scratch->lanes.resize(static_cast<size_t>(m));
      const int width = view.width;
      const int per = 8 / width;
      const uint8_t vmask = static_cast<uint8_t>((1u << width) - 1);
      uint8_t* out8 = scratch->lanes.data();
      for (int64_t i = 0; i < m; ++i) {
        const int64_t lane = i0 + i;
        out8[i] = static_cast<uint8_t>(
            (bytes[lane / per] >> ((lane % per) * width)) & vmask);
      }
      return fn(uint8_t{}, out8);
    }
  }
}

/// Dictionary-predicate rewrite: the predicate evaluated once per
/// dictionary entry, cached in the scratch (a row filter then costs one
/// table lookup per code). Small MRU cache — a scan cascade alternates
/// between its filters per morsel, so one entry per live (column, op,
/// constant) triple is what's needed.
const std::vector<uint8_t>& DictPass(FilterScratch* scratch,
                                     const EncodedColumn& enc, CompareOp op,
                                     double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (auto& e : scratch->dict_pass) {
    if (e.column == &enc && e.op == op && e.value_bits == bits) return e.pass;
  }
  if (scratch->dict_pass.size() >= 8) scratch->dict_pass.erase(
      scratch->dict_pass.begin());
  scratch->dict_pass.emplace_back();
  DictPassEntry& e = scratch->dict_pass.back();
  e.column = &enc;
  e.op = op;
  e.value_bits = bits;
  const int64_t card = enc.dict_size();
  e.pass.resize(static_cast<size_t>(card));
  for (int64_t c = 0; c < card; ++c) {
    e.pass[static_cast<size_t>(c)] =
        CompareVal(enc.DictNumeric(c), op, value) ? 1 : 0;
  }
  return e.pass;
}

/// Decode-then-filter over one block sub-range (the exact fallback).
int64_t FilterDecoded(const ColumnData& col, CompareOp op, double value,
                      int64_t s0, int64_t s1, double est_selectivity,
                      int64_t* out, FilterScratch* scratch) {
  const int64_t m = s1 - s0;
  int64_t w = 0;
  if (col.type() == DataType::kInt64) {
    scratch->decoded_i.resize(static_cast<size_t>(m));
    col.enc().DecodeRange(s0, s1, scratch->decoded_i.data());
    const int64_t* v = scratch->decoded_i.data();
    WithArrayPred(v, op, value, [&](auto pred) {
      w = EmitPred(m, s0, est_selectivity, out, scratch, pred);
    });
  } else {
    scratch->decoded_d.resize(static_cast<size_t>(m));
    col.enc().DecodeRange(s0, s1, scratch->decoded_d.data());
    const double* v = scratch->decoded_d.data();
    WithArrayPred(v, op, value, [&](auto pred) {
      w = EmitPred(m, s0, est_selectivity, out, scratch, pred);
    });
  }
  return w;
}

}  // namespace

ZoneMatch ClassifyZones(const ColumnData& col, CompareOp op, double value,
                        int64_t r0, int64_t r1) {
  if (r0 >= r1) return ZoneMatch::kNone;
  if (std::isnan(value)) return ZoneMatch::kNone;
  const ZoneMap& z = col.zones();
  const int64_t b0 = r0 / kZoneBlockRows;
  const int64_t b1 = (r1 - 1) / kZoneBlockRows;
  if (b1 >= z.num_blocks()) return ZoneMatch::kSome;  // no/partial zone map
  bool any_some = false, any_none = false, any_all = false;
  for (int64_t b = b0; b <= b1; ++b) {
    const size_t i = static_cast<size_t>(b);
    const bool nan = !z.has_nan.empty() && z.has_nan[i] != 0;
    switch (ClassifyBlock(z.min[i], z.max[i], nan, op, value)) {
      case ZoneMatch::kNone: any_none = true; break;
      case ZoneMatch::kAll: any_all = true; break;
      case ZoneMatch::kSome: any_some = true; break;
    }
    if (any_some || (any_none && any_all)) return ZoneMatch::kSome;
  }
  return any_none ? ZoneMatch::kNone : ZoneMatch::kAll;
}

int64_t FilterRange(const ColumnData& col, CompareOp op, double value,
                    int64_t r0, int64_t r1, double est_selectivity,
                    std::vector<int64_t>* sel, FilterScratch* scratch,
                    bool fused) {
  const int64_t n = r1 - r0;
  sel->resize(static_cast<size_t>(n > 0 ? n : 0));
  if (n <= 0) return 0;
  int64_t* out = sel->data();
  int64_t w = 0;
  if (col.encoded()) {
    // Encoded path: per block within [r0, r1), fused filtering when
    // allowed and exact, decode-then-filter otherwise. Identical
    // survivors either way.
    FilterScratch local;
    if (scratch == nullptr) scratch = &local;
    const EncodedColumn& enc = col.enc();
    const bool dict = enc.mode() == Encoding::kDict;
    for (int64_t s0 = r0; s0 < r1;) {
      const int64_t b = s0 / EncodedColumn::kBlockRows;
      const int64_t base = b * EncodedColumn::kBlockRows;
      const int64_t s1 = std::min<int64_t>(r1, base + enc.block_rows(b));
      int64_t got = -1;
      if (fused && dict) {
        const std::vector<uint8_t>& pass = DictPass(scratch, enc, op, value);
        const EncodedColumn::PackedView view = enc.packed_view(b);
        const int64_t m = s1 - s0;
        const uint8_t* p = pass.data();
        if (view.width == 0) {
          // Single-code block: the one dictionary entry decides all rows.
          got = 0;
          if (p[0] != 0) {
            for (int64_t i = 0; i < m; ++i) out[w + i] = s0 + i;
            got = m;
          }
        } else {
          got = WithLaneArray(view, s0 - base, m, scratch,
                              [&](auto tag, const uint8_t* lanes) {
                                using T = decltype(tag);
                                return EmitLanePred<T>(
                                    lanes, m, s0, scratch, out + w,
                                    [p](T x) { return p[x] != 0; });
                              });
        }
      } else if (fused && enc.block_kind(b) == Encoding::kPacked) {
        got = FilterPackedInt64(enc.packed_view(b), base, s0 - base, s1 - base,
                                op, value, est_selectivity, out + w, scratch);
      }
      if (got < 0) {
        got = FilterDecoded(col, op, value, s0, s1, est_selectivity, out + w,
                            scratch);
      }
      w += got;
      s0 = s1;
    }
    sel->resize(static_cast<size_t>(w));
    return w;
  }
  if (scratch != nullptr && est_selectivity >= kDensePathSelectivity) {
    // Dense path: predicate into a byte mask (no loop-carried dependency,
    // auto-vectorizes), then branch-free compaction of the mask.
    scratch->mask.resize(static_cast<size_t>(n));
    uint8_t* m = scratch->mask.data();
    WithRawPred(col, op, value, [&](auto pred) {
      for (int64_t i = 0; i < n; ++i) {
        m[i] = pred(r0 + i) ? 1 : 0;
      }
    });
    for (int64_t i = 0; i < n; ++i) {
      out[w] = r0 + i;
      w += m[i];
    }
  } else {
    // Sparse path: direct branch-free survivor store.
    WithRawPred(col, op, value, [&](auto pred) {
      for (int64_t r = r0; r < r1; ++r) {
        out[w] = r;
        w += pred(r) ? 1 : 0;
      }
    });
  }
  sel->resize(static_cast<size_t>(w));
  return w;
}

int64_t FilterRefine(const ColumnData& col, CompareOp op, double value,
                     std::vector<int64_t>* sel) {
  const int64_t n = static_cast<int64_t>(sel->size());
  int64_t* s = sel->data();
  int64_t w = 0;
  if (col.encoded()) {
    // Survivor lists are sparse by construction here; point access is
    // O(1) for packed and dictionary blocks.
    for (int64_t i = 0; i < n; ++i) {
      const int64_t r = s[i];
      s[w] = r;
      w += CompareVal(col.GetNumeric(r), op, value) ? 1 : 0;
    }
    sel->resize(static_cast<size_t>(w));
    return w;
  }
  WithRawPred(col, op, value, [&](auto pred) {
    for (int64_t i = 0; i < n; ++i) {
      const int64_t r = s[i];
      s[w] = r;
      w += pred(r) ? 1 : 0;
    }
  });
  sel->resize(static_cast<size_t>(w));
  return w;
}

int64_t FilterPackedInt64(const EncodedColumn::PackedView& view,
                          int64_t base_row, int64_t i0, int64_t i1,
                          CompareOp op, double value, double est_selectivity,
                          int64_t* out, FilterScratch* scratch) {
  CodePred cp;
  if (!MapPredicateToCodes(op, value, view.ref, view.range, &cp)) return -1;
  const int64_t m = i1 - i0;
  if (m <= 0 || cp.kind == CodePred::Kind::kNone) return 0;
  if (cp.kind == CodePred::Kind::kAll) {
    for (int64_t i = 0; i < m; ++i) out[i] = base_row + i0 + i;
    return m;
  }
  if (view.width == 0) {
    // All codes are 0; the only predicate kind surviving the collapse
    // above is kEq with u == 0, which every row satisfies.
    for (int64_t i = 0; i < m; ++i) out[i] = base_row + i0 + i;
    return m;
  }
  (void)est_selectivity;  // the masked lane path wins at every selectivity
  const uint64_t u = cp.u;
  const int64_t base = base_row + i0;
  // After the collapse, u <= range <= max code of the lane type, so the
  // narrowing cast below is value-preserving and the compare stays exact.
  switch (cp.kind) {
    case CodePred::Kind::kLt:
      return WithLaneArray(view, i0, m, scratch,
                           [&](auto tag, const uint8_t* lanes) {
                             using T = decltype(tag);
                             const T tu = static_cast<T>(u);
                             return EmitLanePred<T>(
                                 lanes, m, base, scratch, out,
                                 [tu](T x) { return x < tu; });
                           });
    case CodePred::Kind::kGe:
      return WithLaneArray(view, i0, m, scratch,
                           [&](auto tag, const uint8_t* lanes) {
                             using T = decltype(tag);
                             const T tu = static_cast<T>(u);
                             return EmitLanePred<T>(
                                 lanes, m, base, scratch, out,
                                 [tu](T x) { return x >= tu; });
                           });
    default:
      return WithLaneArray(view, i0, m, scratch,
                           [&](auto tag, const uint8_t* lanes) {
                             using T = decltype(tag);
                             const T tu = static_cast<T>(u);
                             return EmitLanePred<T>(
                                 lanes, m, base, scratch, out,
                                 [tu](T x) { return x == tu; });
                           });
  }
}

void MapStringPredicate(const EncodedColumn& enc, CompareOp op,
                        const std::string& literal, CompareOp* out_op,
                        double* out_value) {
  // Ranks are the integers 0..dict_size-1, so half-open rank bounds
  // express every comparison exactly: lo = first rank >= literal,
  // up = first rank > literal.
  const int64_t lo = enc.StringLowerBoundRank(literal);
  const int64_t up = enc.StringUpperBoundRank(literal);
  switch (op) {
    case CompareOp::kLt:  // values <  literal  <=>  rank < lo
      *out_op = CompareOp::kLt;
      *out_value = static_cast<double>(lo);
      return;
    case CompareOp::kLe:  // values <= literal  <=>  rank < up
      *out_op = CompareOp::kLt;
      *out_value = static_cast<double>(up);
      return;
    case CompareOp::kGt:  // values >  literal  <=>  rank >= up
      *out_op = CompareOp::kGe;
      *out_value = static_cast<double>(up);
      return;
    case CompareOp::kGe:  // values >= literal  <=>  rank >= lo
      *out_op = CompareOp::kGe;
      *out_value = static_cast<double>(lo);
      return;
    case CompareOp::kEq:
      if (lo < up) {  // literal present: exactly rank lo
        *out_op = CompareOp::kEq;
        *out_value = static_cast<double>(lo);
      } else {  // absent: no rank satisfies rank < 0
        *out_op = CompareOp::kLt;
        *out_value = 0.0;
      }
      return;
  }
}

bool MapPredicateToCodes(CompareOp op, double value, int64_t ref,
                         uint64_t range, CodePred* out) {
  if (std::isnan(value)) {
    out->kind = CodePred::Kind::kNone;
    return true;
  }
  // Exactness domain: the int64 -> double cast is the identity on
  // [-2^53, 2^53], so integer threshold arithmetic reproduces the double
  // comparison bit-for-bit. Outside it, decline.
  constexpr int64_t kExactI = int64_t{1} << 53;
  constexpr double kExactD = 9007199254740992.0;  // 2^53
  if (ref < -kExactI || range > static_cast<uint64_t>(kExactI - ref)) {
    return false;
  }
  if (!(value >= -kExactD && value <= kExactD)) return false;
  // Normalize to x < t (kLt), x >= t (kGe) or x == t (kEq) over int64 x.
  int64_t t = 0;
  CodePred::Kind kind;
  switch (op) {
    case CompareOp::kLt:  // x < c  <=>  x < ceil(c)
      t = static_cast<int64_t>(std::ceil(value));
      kind = CodePred::Kind::kLt;
      break;
    case CompareOp::kLe:  // x <= c  <=>  x < floor(c) + 1
      t = static_cast<int64_t>(std::floor(value)) + 1;
      kind = CodePred::Kind::kLt;
      break;
    case CompareOp::kGt:  // x > c  <=>  x >= floor(c) + 1
      t = static_cast<int64_t>(std::floor(value)) + 1;
      kind = CodePred::Kind::kGe;
      break;
    case CompareOp::kGe:  // x >= c  <=>  x >= ceil(c)
      t = static_cast<int64_t>(std::ceil(value));
      kind = CodePred::Kind::kGe;
      break;
    default:  // kEq: only an integral constant can match an int column
      if (value != std::floor(value)) {
        out->kind = CodePred::Kind::kNone;
        return true;
      }
      t = static_cast<int64_t>(value);
      kind = CodePred::Kind::kEq;
      break;
  }
  // Code space: x = ref + code with code in [0, range], so compare codes
  // against u = t - ref (fits: ref >= -2^53 and |t| <= 2^53 + 1).
  const int64_t u = t - ref;
  switch (kind) {
    case CodePred::Kind::kLt:
      if (u <= 0) {
        out->kind = CodePred::Kind::kNone;
      } else if (static_cast<uint64_t>(u) > range) {
        out->kind = CodePred::Kind::kAll;
      } else {
        out->kind = CodePred::Kind::kLt;
        out->u = static_cast<uint64_t>(u);
      }
      return true;
    case CodePred::Kind::kGe:
      if (u <= 0) {
        out->kind = CodePred::Kind::kAll;
      } else if (static_cast<uint64_t>(u) > range) {
        out->kind = CodePred::Kind::kNone;
      } else {
        out->kind = CodePred::Kind::kGe;
        out->u = static_cast<uint64_t>(u);
      }
      return true;
    default:
      if (u < 0 || static_cast<uint64_t>(u) > range) {
        out->kind = CodePred::Kind::kNone;
      } else {
        out->kind = CodePred::Kind::kEq;
        out->u = static_cast<uint64_t>(u);
      }
      return true;
  }
}

MinMaxStats ColumnMinMax(const ColumnData& col) {
  MinMaxStats s;
  s.rows = col.size();
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  if (s.rows == 0) return s;
  if (col.encoded() && col.enc().mode() == Encoding::kDict) {
    // Dictionary extremes: first-appearance interning guarantees every
    // entry occurs in the column, so the dictionary *is* the value set.
    const EncodedColumn& enc = col.enc();
    const int64_t card = enc.dict_size();
    for (int64_t c = 0; c < card; ++c) {
      const double x = enc.DictNumeric(c);
      s.has_nan |= std::isnan(x);
      s.min = x < s.min ? x : s.min;
      s.max = x > s.max ? x : s.max;
    }
    return s;
  }
  const ZoneMap& z = col.zones();
  if (z.num_blocks() * kZoneBlockRows >= s.rows && z.num_blocks() > 0) {
    for (int64_t b = 0; b < z.num_blocks(); ++b) {
      const size_t i = static_cast<size_t>(b);
      s.min = z.min[i] < s.min ? z.min[i] : s.min;
      s.max = z.max[i] > s.max ? z.max[i] : s.max;
      s.has_nan |= !z.has_nan.empty() && z.has_nan[i] != 0;
    }
    return s;
  }
  for (int64_t r = 0; r < s.rows; ++r) {
    const double x = col.GetNumeric(r);
    s.has_nan |= std::isnan(x);
    s.min = x < s.min ? x : s.min;
    s.max = x > s.max ? x : s.max;
  }
  return s;
}

void Gather(const ColumnData& col, const int64_t* sel, int64_t n,
            std::vector<double>* out) {
  out->resize(static_cast<size_t>(n > 0 ? n : 0));
  if (n <= 0) return;
  double* o = out->data();
  if (col.encoded()) {
    const EncodedColumn& enc = col.enc();
    if (col.type() == DataType::kInt64) {
      for (int64_t i = 0; i < n; ++i) {
        o[i] = static_cast<double>(enc.GetInt(sel[i]));
      }
    } else {
      for (int64_t i = 0; i < n; ++i) o[i] = enc.GetDouble(sel[i]);
    }
    return;
  }
  if (col.type() == DataType::kInt64) {
    const int64_t* v = col.ints().data();
    for (int64_t i = 0; i < n; ++i) o[i] = static_cast<double>(v[sel[i]]);
  } else {
    const double* v = col.doubles().data();
    for (int64_t i = 0; i < n; ++i) o[i] = v[sel[i]];
  }
}

void GatherRange(const ColumnData& col, int64_t r0, int64_t r1,
                 std::vector<double>* out) {
  const int64_t n = r1 - r0;
  out->resize(static_cast<size_t>(n > 0 ? n : 0));
  if (n <= 0) return;
  double* o = out->data();
  if (col.encoded()) {
    col.enc().DecodeRange(r0, r1, o);
    return;
  }
  if (col.type() == DataType::kInt64) {
    const int64_t* v = col.ints().data();
    for (int64_t i = 0; i < n; ++i) o[i] = static_cast<double>(v[r0 + i]);
  } else {
    std::memcpy(o, col.doubles().data() + r0,
                static_cast<size_t>(n) * sizeof(double));
  }
}

uint64_t HashKeyValue(double v) {
  const double x = v == 0.0 ? 0.0 : v;  // normalize -0.0
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  b *= 0xbf58476d1ce4e5b9ull;
  b ^= b >> 31;
  uint64_t h = (0x9e3779b97f4a7c15ull ^ b) * 0x94d049bb133111ebull;
  h ^= h >> 29;
  return h;
}

void FlatJoinTable::Init(int key_width, int payload_width) {
  kw_ = key_width;
  pay_.assign(static_cast<size_t>(payload_width), {});
  slots_.assign(64, -1);
}

void FlatJoinTable::Insert(const double* key, const double* payload) {
  const int64_t u = FindOrAddKey(key);
  const int64_t e = static_cast<int64_t>(next_.size());
  next_.push_back(-1);
  if (tail_[static_cast<size_t>(u)] >= 0) {
    next_[static_cast<size_t>(tail_[static_cast<size_t>(u)])] = e;
  } else {
    head_[static_cast<size_t>(u)] = e;
  }
  tail_[static_cast<size_t>(u)] = e;
  ++chain_len_[static_cast<size_t>(u)];
  for (size_t c = 0; c < pay_.size(); ++c) pay_[c].push_back(payload[c]);
}

int64_t FlatJoinTable::Find(const double* key) const {
  if (num_keys_ == 0) return -1;
  const uint64_t mask = slots_.size() - 1;
  for (uint64_t s = Hash(key) & mask;; s = (s + 1) & mask) {
    const int64_t u = slots_[s];
    if (u < 0) return -1;
    if (KeyEquals(u, key)) return u;
  }
}

void FlatJoinTable::FindBatch(const double* keys, int64_t n, int64_t* out,
                              std::vector<uint64_t>* hash_scratch) const {
  if (num_keys_ == 0) {
    std::fill(out, out + n, int64_t{-1});
    return;
  }
  // Pass 1: hash every key (straight-line, auto-vectorizable).
  hash_scratch->resize(static_cast<size_t>(n));
  uint64_t* h = hash_scratch->data();
  for (int64_t i = 0; i < n; ++i) h[i] = HashKeyValue(keys[i]);
  // Pass 2: resolve slots. Linear probing with the precomputed hashes;
  // NaN keys miss naturally (stored != key for every comparison).
  const uint64_t mask = slots_.size() - 1;
  const int64_t* slots = slots_.data();
  const double* ukeys = ukeys_.data();
  for (int64_t i = 0; i < n; ++i) {
    const double k = keys[i];
    int64_t found = -1;
    for (uint64_t s = h[i] & mask;; s = (s + 1) & mask) {
      const int64_t u = slots[s];
      if (u < 0) break;
      if (ukeys[u] == k) {
        found = u;
        break;
      }
    }
    out[i] = found;
  }
}

uint64_t FlatJoinTable::Hash(const double* key) const {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < kw_; ++i) {
    const double v = key[i] == 0.0 ? 0.0 : key[i];  // normalize -0.0
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    b *= 0xbf58476d1ce4e5b9ull;
    b ^= b >> 31;
    h = (h ^ b) * 0x94d049bb133111ebull;
  }
  h ^= h >> 29;
  return h;
}

bool FlatJoinTable::KeyEquals(int64_t u, const double* key) const {
  const double* stored = &ukeys_[static_cast<size_t>(u) * kw_];
  for (int i = 0; i < kw_; ++i) {
    if (stored[i] != key[i]) return false;
  }
  return true;
}

int64_t FlatJoinTable::FindOrAddKey(const double* key) {
  // Grow at 1/8 load. Sparse slots keep linear-probe walks at ~1 step, which
  // makes the probe-loop exit branch predictable; measured on the bench
  // machine, probing a dimension-sized table at 1/8 load is ~3.4x faster
  // than at the textbook 7/8, and the 8 extra bytes per slot are cheap for
  // build sides that are dimension-sized by plan construction.
  if ((num_keys_ + 1) * 8 > static_cast<int64_t>(slots_.size())) Grow();
  const uint64_t mask = slots_.size() - 1;
  for (uint64_t s = Hash(key) & mask;; s = (s + 1) & mask) {
    const int64_t u = slots_[s];
    if (u < 0) {
      const int64_t nu = num_keys_++;
      slots_[s] = nu;
      ukeys_.insert(ukeys_.end(), key, key + kw_);
      head_.push_back(-1);
      tail_.push_back(-1);
      chain_len_.push_back(0);
      return nu;
    }
    if (KeyEquals(u, key)) return u;
  }
}

void FlatJoinTable::Grow() {
  std::vector<int64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, -1);
  const uint64_t mask = slots_.size() - 1;
  for (int64_t u = 0; u < num_keys_; ++u) {
    uint64_t s = Hash(&ukeys_[static_cast<size_t>(u) * kw_]) & mask;
    while (slots_[s] >= 0) s = (s + 1) & mask;
    slots_[s] = u;
  }
}

}  // namespace kernels
}  // namespace robustqp
