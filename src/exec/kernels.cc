#include "exec/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace robustqp {
namespace kernels {
namespace {

/// Per-block decision for one predicate against one zone summary.
/// `lo > hi` means the block holds no comparable value (empty tail or
/// all-NaN), which satisfies nothing.
ZoneMatch ClassifyBlock(double lo, double hi, bool nan, CompareOp op,
                        double value) {
  if (lo > hi) return ZoneMatch::kNone;
  switch (op) {
    case CompareOp::kLt:
      if (lo >= value) return ZoneMatch::kNone;
      if (hi < value && !nan) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case CompareOp::kLe:
      if (lo > value) return ZoneMatch::kNone;
      if (hi <= value && !nan) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case CompareOp::kGt:
      if (hi <= value) return ZoneMatch::kNone;
      if (lo > value && !nan) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case CompareOp::kGe:
      if (hi < value) return ZoneMatch::kNone;
      if (lo >= value && !nan) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
    case CompareOp::kEq:
      if (value < lo || value > hi) return ZoneMatch::kNone;
      if (lo == value && hi == value && !nan) return ZoneMatch::kAll;
      return ZoneMatch::kSome;
  }
  return ZoneMatch::kSome;
}

/// Branch-free predicate application over a contiguous range, dispatched
/// on type+op once so the inner loops compare raw values. `emit` is
/// called as emit(pred) with a row-indexed bool lambda.
template <typename Fn>
void WithRawPred(const ColumnData& col, CompareOp op, double value, Fn&& emit) {
  if (col.type() == DataType::kInt64) {
    const int64_t* v = col.ints().data();
    switch (op) {
      case CompareOp::kLt:
        emit([=](int64_t r) { return static_cast<double>(v[r]) < value; });
        return;
      case CompareOp::kLe:
        emit([=](int64_t r) { return static_cast<double>(v[r]) <= value; });
        return;
      case CompareOp::kGt:
        emit([=](int64_t r) { return static_cast<double>(v[r]) > value; });
        return;
      case CompareOp::kGe:
        emit([=](int64_t r) { return static_cast<double>(v[r]) >= value; });
        return;
      case CompareOp::kEq:
        emit([=](int64_t r) { return static_cast<double>(v[r]) == value; });
        return;
    }
  } else {
    const double* v = col.doubles().data();
    switch (op) {
      case CompareOp::kLt:
        emit([=](int64_t r) { return v[r] < value; });
        return;
      case CompareOp::kLe:
        emit([=](int64_t r) { return v[r] <= value; });
        return;
      case CompareOp::kGt:
        emit([=](int64_t r) { return v[r] > value; });
        return;
      case CompareOp::kGe:
        emit([=](int64_t r) { return v[r] >= value; });
        return;
      case CompareOp::kEq:
        emit([=](int64_t r) { return v[r] == value; });
        return;
    }
  }
}

}  // namespace

ZoneMatch ClassifyZones(const ColumnData& col, CompareOp op, double value,
                        int64_t r0, int64_t r1) {
  if (r0 >= r1) return ZoneMatch::kNone;
  if (std::isnan(value)) return ZoneMatch::kNone;
  const ZoneMap& z = col.zones();
  const int64_t b0 = r0 / kZoneBlockRows;
  const int64_t b1 = (r1 - 1) / kZoneBlockRows;
  if (b1 >= z.num_blocks()) return ZoneMatch::kSome;  // no/partial zone map
  bool any_some = false, any_none = false, any_all = false;
  for (int64_t b = b0; b <= b1; ++b) {
    const size_t i = static_cast<size_t>(b);
    const bool nan = !z.has_nan.empty() && z.has_nan[i] != 0;
    switch (ClassifyBlock(z.min[i], z.max[i], nan, op, value)) {
      case ZoneMatch::kNone: any_none = true; break;
      case ZoneMatch::kAll: any_all = true; break;
      case ZoneMatch::kSome: any_some = true; break;
    }
    if (any_some || (any_none && any_all)) return ZoneMatch::kSome;
  }
  return any_none ? ZoneMatch::kNone : ZoneMatch::kAll;
}

int64_t FilterRange(const ColumnData& col, CompareOp op, double value,
                    int64_t r0, int64_t r1, double est_selectivity,
                    std::vector<int64_t>* sel, FilterScratch* scratch) {
  const int64_t n = r1 - r0;
  sel->resize(static_cast<size_t>(n > 0 ? n : 0));
  if (n <= 0) return 0;
  int64_t* out = sel->data();
  int64_t w = 0;
  if (scratch != nullptr && est_selectivity >= kDensePathSelectivity) {
    // Dense path: predicate into a byte mask (no loop-carried dependency,
    // auto-vectorizes), then branch-free compaction of the mask.
    scratch->mask.resize(static_cast<size_t>(n));
    uint8_t* m = scratch->mask.data();
    WithRawPred(col, op, value, [&](auto pred) {
      for (int64_t i = 0; i < n; ++i) {
        m[i] = pred(r0 + i) ? 1 : 0;
      }
    });
    for (int64_t i = 0; i < n; ++i) {
      out[w] = r0 + i;
      w += m[i];
    }
  } else {
    // Sparse path: direct branch-free survivor store.
    WithRawPred(col, op, value, [&](auto pred) {
      for (int64_t r = r0; r < r1; ++r) {
        out[w] = r;
        w += pred(r) ? 1 : 0;
      }
    });
  }
  sel->resize(static_cast<size_t>(w));
  return w;
}

int64_t FilterRefine(const ColumnData& col, CompareOp op, double value,
                     std::vector<int64_t>* sel) {
  const int64_t n = static_cast<int64_t>(sel->size());
  int64_t* s = sel->data();
  int64_t w = 0;
  WithRawPred(col, op, value, [&](auto pred) {
    for (int64_t i = 0; i < n; ++i) {
      const int64_t r = s[i];
      s[w] = r;
      w += pred(r) ? 1 : 0;
    }
  });
  sel->resize(static_cast<size_t>(w));
  return w;
}

void Gather(const ColumnData& col, const int64_t* sel, int64_t n,
            std::vector<double>* out) {
  out->resize(static_cast<size_t>(n > 0 ? n : 0));
  if (n <= 0) return;
  double* o = out->data();
  if (col.type() == DataType::kInt64) {
    const int64_t* v = col.ints().data();
    for (int64_t i = 0; i < n; ++i) o[i] = static_cast<double>(v[sel[i]]);
  } else {
    const double* v = col.doubles().data();
    for (int64_t i = 0; i < n; ++i) o[i] = v[sel[i]];
  }
}

void GatherRange(const ColumnData& col, int64_t r0, int64_t r1,
                 std::vector<double>* out) {
  const int64_t n = r1 - r0;
  out->resize(static_cast<size_t>(n > 0 ? n : 0));
  if (n <= 0) return;
  double* o = out->data();
  if (col.type() == DataType::kInt64) {
    const int64_t* v = col.ints().data();
    for (int64_t i = 0; i < n; ++i) o[i] = static_cast<double>(v[r0 + i]);
  } else {
    std::memcpy(o, col.doubles().data() + r0,
                static_cast<size_t>(n) * sizeof(double));
  }
}

uint64_t HashKeyValue(double v) {
  const double x = v == 0.0 ? 0.0 : v;  // normalize -0.0
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  b *= 0xbf58476d1ce4e5b9ull;
  b ^= b >> 31;
  uint64_t h = (0x9e3779b97f4a7c15ull ^ b) * 0x94d049bb133111ebull;
  h ^= h >> 29;
  return h;
}

void FlatJoinTable::Init(int key_width, int payload_width) {
  kw_ = key_width;
  pay_.assign(static_cast<size_t>(payload_width), {});
  slots_.assign(64, -1);
}

void FlatJoinTable::Insert(const double* key, const double* payload) {
  const int64_t u = FindOrAddKey(key);
  const int64_t e = static_cast<int64_t>(next_.size());
  next_.push_back(-1);
  if (tail_[static_cast<size_t>(u)] >= 0) {
    next_[static_cast<size_t>(tail_[static_cast<size_t>(u)])] = e;
  } else {
    head_[static_cast<size_t>(u)] = e;
  }
  tail_[static_cast<size_t>(u)] = e;
  ++chain_len_[static_cast<size_t>(u)];
  for (size_t c = 0; c < pay_.size(); ++c) pay_[c].push_back(payload[c]);
}

int64_t FlatJoinTable::Find(const double* key) const {
  if (num_keys_ == 0) return -1;
  const uint64_t mask = slots_.size() - 1;
  for (uint64_t s = Hash(key) & mask;; s = (s + 1) & mask) {
    const int64_t u = slots_[s];
    if (u < 0) return -1;
    if (KeyEquals(u, key)) return u;
  }
}

void FlatJoinTable::FindBatch(const double* keys, int64_t n, int64_t* out,
                              std::vector<uint64_t>* hash_scratch) const {
  if (num_keys_ == 0) {
    std::fill(out, out + n, int64_t{-1});
    return;
  }
  // Pass 1: hash every key (straight-line, auto-vectorizable).
  hash_scratch->resize(static_cast<size_t>(n));
  uint64_t* h = hash_scratch->data();
  for (int64_t i = 0; i < n; ++i) h[i] = HashKeyValue(keys[i]);
  // Pass 2: resolve slots. Linear probing with the precomputed hashes;
  // NaN keys miss naturally (stored != key for every comparison).
  const uint64_t mask = slots_.size() - 1;
  const int64_t* slots = slots_.data();
  const double* ukeys = ukeys_.data();
  for (int64_t i = 0; i < n; ++i) {
    const double k = keys[i];
    int64_t found = -1;
    for (uint64_t s = h[i] & mask;; s = (s + 1) & mask) {
      const int64_t u = slots[s];
      if (u < 0) break;
      if (ukeys[u] == k) {
        found = u;
        break;
      }
    }
    out[i] = found;
  }
}

uint64_t FlatJoinTable::Hash(const double* key) const {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < kw_; ++i) {
    const double v = key[i] == 0.0 ? 0.0 : key[i];  // normalize -0.0
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    b *= 0xbf58476d1ce4e5b9ull;
    b ^= b >> 31;
    h = (h ^ b) * 0x94d049bb133111ebull;
  }
  h ^= h >> 29;
  return h;
}

bool FlatJoinTable::KeyEquals(int64_t u, const double* key) const {
  const double* stored = &ukeys_[static_cast<size_t>(u) * kw_];
  for (int i = 0; i < kw_; ++i) {
    if (stored[i] != key[i]) return false;
  }
  return true;
}

int64_t FlatJoinTable::FindOrAddKey(const double* key) {
  // Grow at 1/8 load. Sparse slots keep linear-probe walks at ~1 step, which
  // makes the probe-loop exit branch predictable; measured on the bench
  // machine, probing a dimension-sized table at 1/8 load is ~3.4x faster
  // than at the textbook 7/8, and the 8 extra bytes per slot are cheap for
  // build sides that are dimension-sized by plan construction.
  if ((num_keys_ + 1) * 8 > static_cast<int64_t>(slots_.size())) Grow();
  const uint64_t mask = slots_.size() - 1;
  for (uint64_t s = Hash(key) & mask;; s = (s + 1) & mask) {
    const int64_t u = slots_[s];
    if (u < 0) {
      const int64_t nu = num_keys_++;
      slots_[s] = nu;
      ukeys_.insert(ukeys_.end(), key, key + kw_);
      head_.push_back(-1);
      tail_.push_back(-1);
      chain_len_.push_back(0);
      return nu;
    }
    if (KeyEquals(u, key)) return u;
  }
}

void FlatJoinTable::Grow() {
  std::vector<int64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, -1);
  const uint64_t mask = slots_.size() - 1;
  for (int64_t u = 0; u < num_keys_; ++u) {
    uint64_t s = Hash(&ukeys_[static_cast<size_t>(u) * kw_]) & mask;
    while (slots_[s] >= 0) s = (s + 1) & mask;
    slots_[s] = u;
  }
}

}  // namespace kernels
}  // namespace robustqp
