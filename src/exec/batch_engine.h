// Internal entry point of the vectorized batch execution engine; see
// executor.h for the engine contract and batch_engine.cc for the design.

#ifndef ROBUSTQP_EXEC_BATCH_ENGINE_H_
#define ROBUSTQP_EXEC_BATCH_ENGINE_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/executor.h"
#include "optimizer/cost_model.h"
#include "plan/plan.h"

namespace robustqp {

class ThreadPool;

/// Executes the subtree rooted at `root` with the batch engine.
/// `pool` (may be null) enables morsel-parallel scans; the caller only
/// passes it for full runs (budget < 0, not spill). `use_zone_maps`
/// enables physical-only scan-block pruning — including block-exact
/// pruned replay of budgeted aborts — and `use_compression` enables the
/// fused filter-on-compressed kernels on encoded columns (results and
/// every count are identical either way; the flags exist for
/// differential testing). `num_shards` > 1 scatters scan pipelines over
/// that many simulated workers at chunk granularity (the caller only
/// passes it for full runs, same contract as `pool`); the gather merges
/// per-chunk partials in chunk order, so results and counts stay
/// bit-identical, and ExecutionResult::shard carries the accounting.
Result<ExecutionResult> RunBatchEngine(const Catalog& catalog,
                                       const Plan& plan, const PlanNode& root,
                                       const CostModel& cost_model,
                                       double budget, ThreadPool* pool,
                                       bool use_zone_maps = true,
                                       bool use_compression = true,
                                       int num_shards = 1);

}  // namespace robustqp

#endif  // ROBUSTQP_EXEC_BATCH_ENGINE_H_
