// Execution engine with the two engine extensions the paper adds to
// PostgreSQL (Section 6.1):
//
//  * cost-budgeted execution — the engine charges cost units per tuple
//    using the same constants as the optimizer's cost model and aborts the
//    moment the assigned budget is exhausted (the "time-limited execution"
//    primitive);
//  * spill-mode execution — only the subtree rooted at a chosen node is
//    executed and its output discarded, devoting the whole budget to
//    learning that node's selectivity (Section 3.1.2);
//
// plus run-time selectivity monitoring: every join operator counts its
// input and output tuples, so a completed (sub)tree yields the exact
// observed selectivity of its predicates.
//
// Two engines implement these semantics:
//
//  * the tuple engine — a Volcano-style demand-driven iterator, one
//    virtual Next() per row, one budget check per cost event; and
//  * the batch engine (default) — push-based pipelines over fixed-width
//    batches of ~1024 row ids, with filters as tight column loops,
//    hash-join probe split from output emission, per-batch amortized
//    budget accounting, and (for full, non-budgeted, non-spill runs)
//    morsel-parallel table scans on a thread pool.
//
// Both engines count cost events into the same integer ledger
// (exec/cost_ledger.h) and reduce it through one canonical fixed-order
// sum, so `cost_used`, every NodeStats counter, and the exact tuple at
// which a budget aborts are bit-identical between them — the batch
// engine is pure speed, with no change to the paper's learning
// semantics. Differential fuzz tests (tests/exec_batch_test.cc) enforce
// this.

#ifndef ROBUSTQP_EXEC_EXECUTOR_H_
#define ROBUSTQP_EXEC_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/fault.h"
#include "common/status.h"
#include "optimizer/cost_model.h"
#include "plan/plan.h"
#include "shard/chunking.h"

namespace robustqp {

class ThreadPool;

/// Per-plan-node execution counters (indexed by PlanNode::id).
struct NodeStats {
  int64_t left_in = 0;   // tuples consumed from the left child (or scanned)
  int64_t right_in = 0;  // tuples consumed from the right child
  int64_t out = 0;       // tuples produced
  /// Scan nodes only: per filter (in filter_indices order), tuples that
  /// reached the filter and tuples that passed it — the run-time
  /// monitoring that lets a spill learn an error-prone *filter*'s
  /// selectivity.
  std::vector<int64_t> filter_in;
  std::vector<int64_t> filter_pass;
};

/// Outcome of one (possibly budget-limited, possibly spilled) execution.
struct ExecutionResult {
  /// True iff the (sub)tree ran to completion within budget.
  bool completed = false;
  /// Cost units charged (<= budget when budgeted).
  double cost_used = 0.0;
  /// Rows produced by the executed root (discarded in spill mode).
  int64_t output_rows = 0;
  /// Counters per plan-node id (zeros for nodes outside a spilled subtree).
  std::vector<NodeStats> node_stats;
  /// Fault accounting for this run: all zeros unless the process-wide
  /// FaultInjector is armed and a fault actually fired.
  RobustnessReport robustness;
  /// Sharded scatter-gather accounting (shard/chunking.h): chunk counts,
  /// whole-chunk prunes, shard-fault recoveries, and the per-shard cost
  /// decomposition. Default-constructed (num_shards == 1, no chunks)
  /// unless the run scattered.
  shard::ShardReport shard;

  /// Observed selectivity of the join at `node_id`:
  /// out / (left_in * right_in). Only exact once the subtree completed.
  ///
  /// Convention: returns 0.0 when there is no evidence — either input
  /// side empty (denominator <= 0) or the product overflowing to
  /// non-finite — and clamps the ratio to [0, 1], since a selectivity
  /// cannot exceed 1 and callers feed the value into log-space grids.
  ///
  /// Committed-attempt guarantee: under transient-fault retries the
  /// node_stats these ratios read are the surviving attempt's alone —
  /// RunFaulted overwrites per-attempt counters and zeroes them when no
  /// attempt survived — so retried work never inflates an observation
  /// (the feedback store depends on this; regression-tested in
  /// feedback_test.cc).
  double ObservedJoinSelectivity(int node_id) const;

  /// Observed selectivity of the `k`-th filter (position within the scan
  /// node's filter_indices) at scan `node_id`: pass / reached.
  double ObservedFilterSelectivity(int node_id, int k) const;
};

/// Execution engine bound to a catalog and cost-model flavour.
class Executor {
 public:
  enum class Engine {
    kTuple,  // Volcano iterator, per-tuple budget checks
    kBatch,  // vectorized batches, per-batch amortized accounting
  };

  struct Options {
    Engine engine = Engine::kBatch;
    /// Worker threads for morsel-parallel scans. Only full executions
    /// (budget < 0, not spilled) under the batch engine parallelize;
    /// budgeted and spill executions always run single-threaded so the
    /// learning primitive's abort semantics are untouched. 0 means
    /// ThreadPool::DefaultThreads(); 1 disables parallelism.
    int num_threads = 1;
    /// Batch engine only: let scans skip zone-map-pruned blocks — in full,
    /// budgeted, and replayed runs alike. Purely physical — results,
    /// cost_used, and every NodeStats counter are bit-identical either way
    /// (differential tests run both settings).
    bool use_zone_maps = true;
    /// Batch engine only: let scans over encoded columns
    /// (storage/encoding.h) filter on compressed data — unsigned compares
    /// on frame-of-reference codes, per-dictionary-entry predicate rewrite
    /// — instead of decoding blocks first. Purely physical, same contract
    /// as use_zone_maps.
    bool use_compression = true;
    /// Simulated scatter-gather workers (shard/shard_executor.h). Like
    /// morsel parallelism, only full batch-engine executions (budget < 0,
    /// not spilled) scatter; results, cost_used, and every NodeStats
    /// counter are bit-identical to the unsharded run at any shard count
    /// x thread count. <= 1 disables sharding.
    int num_shards = 1;
  };

  Executor(const Catalog* catalog, CostModel cost_model);
  Executor(const Catalog* catalog, CostModel cost_model, Options options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs the full plan. `budget` < 0 means unlimited. Returns a result
  /// with completed=false when the budget ran out (not an error).
  Result<ExecutionResult> Execute(const Plan& plan, double budget) const;

  /// Runs only the subtree rooted at `spill_node_id`, discarding output.
  Result<ExecutionResult> ExecuteSpill(const Plan& plan, int spill_node_id,
                                       double budget) const;

  /// Outcome of a min/max aggregate execution (see ExecuteMinMax).
  struct MinMaxResult {
    bool completed = false;
    double cost_used = 0.0;
    /// Rows whose scan event was charged (== table rows when completed).
    int64_t rows = 0;
    /// Extremes in GetNumeric double semantics; only valid once
    /// completed. NaNs are excluded (reported via has_nan); an empty or
    /// all-NaN column keeps min > max (+inf / -inf).
    double min = 0.0;
    double max = 0.0;
    bool has_nan = false;
  };

  /// MIN/MAX aggregate over one column. The *answer* comes from the
  /// cheapest sound physical source — dictionary extremes for
  /// dictionary-coded columns, zone-map block folds for finalized tables,
  /// a full scan otherwise — but the *cost* is always what a naive
  /// tuple-at-a-time scan would charge: one scan_tuple event per row,
  /// aborting at exactly the row whose charge first exceeds `budget`
  /// (< 0 means unlimited). cost_used is therefore bit-identical to
  /// running the scan for real, keeping the aggregate fast path invisible
  /// to the paper's cost-budgeted learning primitive.
  Result<MinMaxResult> ExecuteMinMax(const std::string& table,
                                     const std::string& column,
                                     double budget = -1.0) const;

  const CostModel& cost_model() const { return cost_model_; }
  const Options& options() const { return options_; }

  /// Parses "tuple" / "batch"; returns false on anything else.
  static bool ParseEngine(const std::string& name, Engine* out);

 private:
  Result<ExecutionResult> Run(const Plan& plan, const PlanNode& root,
                              double budget, bool spill) const;
  /// One clean attempt with an explicit engine / parallelism choice (the
  /// fault path degrades these across retries).
  Result<ExecutionResult> RunOnce(const Plan& plan, const PlanNode& root,
                                  double budget, bool spill, Engine engine,
                                  bool allow_parallel) const;
  /// Armed-injector path: per-operator fault draws, transient retries with
  /// lost work charged, batch->tuple and parallel->serial degradations.
  Result<ExecutionResult> RunFaulted(const Plan& plan, const PlanNode& root,
                                     double budget, bool spill) const;

  const Catalog* catalog_;
  CostModel cost_model_;
  Options options_;
  /// Owned pool for morsel-parallel scans (null when num_threads <= 1).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_EXEC_EXECUTOR_H_
