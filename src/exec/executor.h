// Volcano-style (demand-driven iterator) execution engine with the two
// engine extensions the paper adds to PostgreSQL (Section 6.1):
//
//  * cost-budgeted execution — the engine charges cost units per tuple
//    using the same constants as the optimizer's cost model and aborts the
//    moment the assigned budget is exhausted (the "time-limited execution"
//    primitive);
//  * spill-mode execution — only the subtree rooted at a chosen node is
//    executed and its output discarded, devoting the whole budget to
//    learning that node's selectivity (Section 3.1.2);
//
// plus run-time selectivity monitoring: every join operator counts its
// input and output tuples, so a completed (sub)tree yields the exact
// observed selectivity of its predicates.

#ifndef ROBUSTQP_EXEC_EXECUTOR_H_
#define ROBUSTQP_EXEC_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/cost_model.h"
#include "plan/plan.h"

namespace robustqp {

/// Per-plan-node execution counters (indexed by PlanNode::id).
struct NodeStats {
  int64_t left_in = 0;   // tuples consumed from the left child (or scanned)
  int64_t right_in = 0;  // tuples consumed from the right child
  int64_t out = 0;       // tuples produced
  /// Scan nodes only: per filter (in filter_indices order), tuples that
  /// reached the filter and tuples that passed it — the run-time
  /// monitoring that lets a spill learn an error-prone *filter*'s
  /// selectivity.
  std::vector<int64_t> filter_in;
  std::vector<int64_t> filter_pass;
};

/// Outcome of one (possibly budget-limited, possibly spilled) execution.
struct ExecutionResult {
  /// True iff the (sub)tree ran to completion within budget.
  bool completed = false;
  /// Cost units charged (<= budget when budgeted).
  double cost_used = 0.0;
  /// Rows produced by the executed root (discarded in spill mode).
  int64_t output_rows = 0;
  /// Counters per plan-node id (zeros for nodes outside a spilled subtree).
  std::vector<NodeStats> node_stats;

  /// Observed selectivity of the join at `node_id`:
  /// out / (left_in * right_in). Only exact once the subtree completed.
  double ObservedJoinSelectivity(int node_id) const;

  /// Observed selectivity of the `k`-th filter (position within the scan
  /// node's filter_indices) at scan `node_id`: pass / reached.
  double ObservedFilterSelectivity(int node_id, int k) const;
};

/// Execution engine bound to a catalog and cost-model flavour.
class Executor {
 public:
  Executor(const Catalog* catalog, CostModel cost_model)
      : catalog_(catalog), cost_model_(cost_model) {}

  /// Runs the full plan. `budget` < 0 means unlimited. Returns a result
  /// with completed=false when the budget ran out (not an error).
  Result<ExecutionResult> Execute(const Plan& plan, double budget) const;

  /// Runs only the subtree rooted at `spill_node_id`, discarding output.
  Result<ExecutionResult> ExecuteSpill(const Plan& plan, int spill_node_id,
                                       double budget) const;

  const CostModel& cost_model() const { return cost_model_; }

 private:
  Result<ExecutionResult> Run(const Plan& plan, const PlanNode& root,
                              double budget) const;

  const Catalog* catalog_;
  CostModel cost_model_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_EXEC_EXECUTOR_H_
