// Data-parallel scan/join kernels shared by the execution engines.
//
// Everything here is physical-layer machinery: branch-free filter kernels
// producing selection vectors, zone-map block classification, bulk
// gathers, and a cache-friendly flat open-addressing join hash table.
// None of it changes what gets counted — callers charge the cost ledger
// and NodeStats exactly as if every row had been touched, so `cost_used`
// and all MSO accounting stay bit-identical to the tuple engine (the
// paper's PCM argument constrains logical cost, not physical speed).
//
// Filter kernels come in two shapes, chosen by estimated selectivity:
//
//  * the *sparse* path writes surviving row ids with the classic
//    branch-free `sel[w] = r; w += pred(r)` store, which wins when few
//    rows pass (the store traffic is proportional to survivors);
//  * the *dense* path evaluates the predicate into a byte mask with a
//    tight auto-vectorizable loop and compacts the mask afterwards,
//    which wins when most rows pass (the predicate loop has no
//    loop-carried dependency, so the compiler can SIMD it).
//
// Encoded columns (storage/encoding.h) add a third axis — how much to
// decode before filtering:
//
//  * *filter-on-compressed* for frame-of-reference packed blocks: when
//    the predicate constant maps exactly into unsigned code space
//    (MapPredicateToCodes — sound only while block values and constant
//    are within ±2^53, where the int64->double cast is exact), compare
//    the stored code lanes directly and never materialize values. Blocks
//    pack at lane widths (bitpack::LaneWidthFor), so 8/16/32/64-bit
//    codes are native arrays the compare loop SIMDs over at lane
//    granularity, and survivors are emitted from the byte mask with
//    zero-word skipping (eight rows per test when nothing passes);
//  * *dictionary-predicate rewrite*: evaluate the predicate once per
//    dictionary entry into a pass bitmap (cached in FilterScratch), then
//    filter rows by code-lane lookup — O(cardinality) predicate work per
//    (column, predicate) instead of O(rows);
//  * *decode-then-filter* fallback for vbyte blocks and unmappable
//    constants: block-decode into scratch, then the raw kernels above.
//
// All three produce bit-identical selection vectors to the raw kernels
// by construction; exec_batch_test differential fuzz enforces it.
//
// The flat join table stores unique keys in open-addressed slots (linear
// probing, power-of-two capacity, build-once so no tombstones) with
// insertion-ordered entry chains per key, matching the tuple engine's
// unordered_map<key, vector<Row>> emission order. The probe is split into
// a vectorized hash+bucket-lookup pass over a whole batch and a scalar
// verify/emit pass.

#ifndef ROBUSTQP_EXEC_KERNELS_H_
#define ROBUSTQP_EXEC_KERNELS_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "storage/table.h"

namespace robustqp {
namespace kernels {

// ---------------------------------------------------------------------------
// Zone-map classification
// ---------------------------------------------------------------------------

/// What a zone map can prove about `col OP value` over a row range.
enum class ZoneMatch {
  kNone,  // no row in the range can satisfy the predicate
  kAll,   // every row in the range satisfies the predicate
  kSome,  // undecided: evaluate the rows
};

/// Classifies rows [r0, r1) of `col` against the predicate using the
/// column's zone map. Conservative: only returns kNone/kAll when the
/// block summaries prove it (NaN data rows veto kAll; a NaN literal
/// satisfies nothing and classifies kNone). Returns kSome when the
/// column has no zone map (table not finalized).
ZoneMatch ClassifyZones(const ColumnData& col, CompareOp op, double value,
                        int64_t r0, int64_t r1);

// ---------------------------------------------------------------------------
// Filter kernels
// ---------------------------------------------------------------------------

/// One cached dictionary-rewrite result: the predicate evaluated over
/// every dictionary entry of one encoded column.
struct DictPassEntry {
  const void* column = nullptr;  // identity of the EncodedColumn
  CompareOp op = CompareOp::kLt;
  uint64_t value_bits = 0;       // exact constant identity (NaN-safe)
  std::vector<uint8_t> pass;     // per dictionary code: 1 iff it passes
};

/// Scratch buffers reused across kernel calls (one per execution thread).
struct FilterScratch {
  std::vector<uint8_t> mask;
  std::vector<uint8_t> lanes;        // 1/2/4-bit codes widened to bytes
  std::vector<int64_t> decoded_i;    // decode-then-filter staging
  std::vector<double> decoded_d;
  std::vector<DictPassEntry> dict_pass;  // small MRU cache
};

/// Selectivity above which FilterRange takes the dense (byte-mask) path.
/// Below it, the sparse branch-free store does proportionally less work.
inline constexpr double kDensePathSelectivity = 0.20;

/// Writes the ids of rows in [r0, r1) satisfying `col OP value` into
/// `*sel` (overwritten, resized to the survivor count). `est_selectivity`
/// picks the dense vs sparse variant; pass a running observed pass rate,
/// or 0.5 when unknown. Returns the survivor count.
///
/// Encoded columns take the fused filter-on-compressed / dictionary
/// rewrite paths when `fused` is true and the exactness conditions hold,
/// and decode-then-filter otherwise; the selection vector is identical
/// either way (`fused` exists for differential testing and as the
/// Executor::Options::use_compression toggle).
int64_t FilterRange(const ColumnData& col, CompareOp op, double value,
                    int64_t r0, int64_t r1, double est_selectivity,
                    std::vector<int64_t>* sel, FilterScratch* scratch,
                    bool fused = true);

/// Compacts `*sel` in place to the ids satisfying `col OP value`
/// (branch-free). Returns the new count.
int64_t FilterRefine(const ColumnData& col, CompareOp op, double value,
                     std::vector<int64_t>* sel);

// ---------------------------------------------------------------------------
// Fused filters over encoded blocks
// ---------------------------------------------------------------------------

/// `x OP value` translated into frame-of-reference code space: the block
/// stores codes with x = ref + code, so the comparison becomes a pure
/// unsigned compare against `u`.
struct CodePred {
  enum class Kind { kNone, kAll, kLt, kGe, kEq };
  Kind kind = Kind::kNone;
  uint64_t u = 0;
};

/// Maps `(double)x OP value` into code space for a block with the given
/// frame of reference and range. Returns false when the mapping cannot be
/// proven exact — block values or constant outside ±2^53 (where the
/// int64 -> double cast starts rounding) — in which case the caller must
/// decode-then-filter. A NaN constant maps to kNone, and constants
/// outside the block's value range collapse to kNone / kAll.
bool MapPredicateToCodes(CompareOp op, double value, int64_t ref,
                         uint64_t range, CodePred* out);

/// Rank-space translation of a string predicate (see storage/encoding.h):
/// rewrites `col OP literal` into the equivalent numeric comparison over
/// the column's lexicographic ranks, done once at filter resolution. The
/// rewrite is exact — ranks are small integers, every boundary is a
/// representable double — so the ordinary numeric kernels (including the
/// fused dictionary/packed paths) evaluate string filters with no special
/// casing. A predicate no rank satisfies comes back as `rank < 0`.
void MapStringPredicate(const EncodedColumn& enc, CompareOp op,
                        const std::string& literal, CompareOp* out_op,
                        double* out_value);

/// Fused filter over one packed (or dictionary-code) block: compares
/// bit-unpacked codes against the mapped constant without materializing
/// values. Writes surviving absolute row ids (base_row + in-block index,
/// for in-block indices [i0, i1)) to out[0..count); returns the count, or
/// -1 when MapPredicateToCodes declines (caller falls back to decode).
int64_t FilterPackedInt64(const EncodedColumn::PackedView& view,
                          int64_t base_row, int64_t i0, int64_t i1,
                          CompareOp op, double value, double est_selectivity,
                          int64_t* out, FilterScratch* scratch);

// ---------------------------------------------------------------------------
// Min/max from block metadata
// ---------------------------------------------------------------------------

/// Column extremes in GetNumeric double semantics (NaN excluded from
/// min/max, reported via has_nan; an all-NaN or empty column keeps
/// min > max).
struct MinMaxStats {
  double min = 0.0;
  double max = 0.0;
  bool has_nan = false;
  int64_t rows = 0;
};

/// Computes column extremes from the cheapest sound source: dictionary
/// extremes for dictionary-coded columns (every entry occurs at least
/// once), zone-map folds otherwise, full scan when the table was never
/// finalized. Purely physical — callers charge full scan events
/// regardless (see Executor::ExecuteMinMax).
MinMaxStats ColumnMinMax(const ColumnData& col);

// ---------------------------------------------------------------------------
// Gather kernels
// ---------------------------------------------------------------------------

/// Appends nothing; overwrites `*out` with col[sel[0..n)] as doubles.
void Gather(const ColumnData& col, const int64_t* sel, int64_t n,
            std::vector<double>* out);

/// Overwrites `*out` with col[r0..r1) as doubles.
void GatherRange(const ColumnData& col, int64_t r0, int64_t r1,
                 std::vector<double>* out);

// ---------------------------------------------------------------------------
// Flat open-addressing join hash table
// ---------------------------------------------------------------------------

/// Mixes the bit pattern of one key value (SplitMix64 finalizer). -0.0 is
/// normalized to +0.0 so it hashes with 0.0, matching double equality.
uint64_t HashKeyValue(double v);

/// Build-once hash table for join build sides: open-addressed unique-key
/// slots, per-key insertion-ordered entry chains, column-major payloads.
/// Double equality matches the tuple engine's vector<double> comparison:
/// NaN never matches (not even itself), ±0.0 are equal.
class FlatJoinTable {
 public:
  void Init(int key_width, int payload_width);

  int key_width() const { return kw_; }
  int64_t num_keys() const { return num_keys_; }

  void Insert(const double* key, const double* payload);

  /// Unique-key ordinal, or -1 when the key is absent.
  int64_t Find(const double* key) const;

  /// Vectorized single-key probe: for each of `keys[0..n)` writes the
  /// unique-key ordinal (or -1) into `out[0..n)`. Split into a hash pass
  /// and a bucket-resolve pass so the hash loop auto-vectorizes and the
  /// probe loop runs without re-deriving hashes. Requires key_width == 1.
  void FindBatch(const double* keys, int64_t n, int64_t* out,
                 std::vector<uint64_t>* hash_scratch) const;

  int64_t ChainHead(int64_t u) const { return head_[static_cast<size_t>(u)]; }
  int64_t ChainNext(int64_t e) const { return next_[static_cast<size_t>(e)]; }
  int64_t ChainLen(int64_t u) const {
    return chain_len_[static_cast<size_t>(u)];
  }
  double Payload(size_t col, int64_t e) const {
    return pay_[col][static_cast<size_t>(e)];
  }

 private:
  uint64_t Hash(const double* key) const;
  bool KeyEquals(int64_t u, const double* key) const;
  int64_t FindOrAddKey(const double* key);
  void Grow();

  int kw_ = 1;
  std::vector<double> ukeys_;                     // kw_ values per unique key
  std::vector<int64_t> head_, tail_, chain_len_;  // per unique key
  std::vector<int64_t> next_;                     // per entry
  std::vector<std::vector<double>> pay_;          // per payload col, per entry
  std::vector<int64_t> slots_;
  int64_t num_keys_ = 0;
};

}  // namespace kernels
}  // namespace robustqp

#endif  // ROBUSTQP_EXEC_KERNELS_H_
