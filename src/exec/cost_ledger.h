// Integer cost-event ledger shared by the tuple and batch execution
// engines.
//
// The tuple engine charges one floating-point amount per event
// (scan tuple, probe, output, ...). A batch engine cannot reproduce that
// running double sum bit-for-bit if it adds the same amounts in a
// different order, so both engines instead *count events* per cost-model
// constant and derive the spent budget through one canonical reduction,
// `CostLedger::Total`: a fixed-order dot product of the event counts with
// the `CostParams` constants (in struct declaration order) plus a single
// `extra` accumulator for the only non-unit charge in the engine (the
// super-linear remainder of the sort term, accumulated in blocking-phase
// order, which is identical in both engines).
//
// Because `Total` depends only on the final counts (not on the order
// events were counted in), a batch engine may count a whole morsel at
// once and still land on exactly the same double as the tuple engine.
// Every event count is non-negative and every `CostParams` constant is
// non-negative, so `Total` is non-decreasing event by event; "budget
// exhausted" is therefore well-defined as the first event (in tuple
// order) whose inclusion makes `Total` exceed the budget, and both
// engines agree on that boundary bit-for-bit.
//
// Counts are `EventCount`s: int64 counters that saturate at INT64_MAX
// instead of wrapping (with a debug assert), so a runaway chaos sweep can
// never silently overflow into a negative count and make `Total` — and
// with it every budget decision — go backwards.

#ifndef ROBUSTQP_EXEC_COST_LEDGER_H_
#define ROBUSTQP_EXEC_COST_LEDGER_H_

#include <cassert>
#include <cstdint>
#include <limits>

#include "optimizer/cost_model.h"

namespace robustqp {

/// A non-negative saturating event counter. Behaves like an int64_t for
/// reading and bulk adds, but clamps at INT64_MAX instead of wrapping
/// (asserting in debug builds, where an overflow is always a bug).
class EventCount {
 public:
  constexpr EventCount() = default;
  constexpr EventCount(int64_t v) : v_(v) {}  // NOLINT(runtime/explicit)

  constexpr operator int64_t() const { return v_; }  // NOLINT

  EventCount& operator+=(int64_t delta) {
    assert(delta >= 0 && "event counts only grow");
    assert(v_ <= std::numeric_limits<int64_t>::max() - delta &&
           "event count overflow");
    if (delta > std::numeric_limits<int64_t>::max() - v_) {
      v_ = std::numeric_limits<int64_t>::max();
    } else {
      v_ += delta;
    }
    return *this;
  }

  EventCount& operator++() { return *this += 1; }

 private:
  int64_t v_ = 0;
};

/// One counter per per-tuple cost constant, in `CostParams` declaration
/// order (the order `Total` reduces them in).
struct CostLedger {
  EventCount scan_tuple;
  EventCount hash_build_tuple;
  EventCount hash_probe_tuple;
  EventCount nlj_materialize_tuple;
  EventCount nlj_pair;
  EventCount join_output_tuple;
  EventCount index_probe;
  EventCount index_fetch;
  EventCount sort_tuple;
  EventCount merge_tuple;
  /// Non-unit charges: the sort remainder `sort_tuple * (SortTerm(n) - n)`
  /// charged once per sorted input, accumulated in pipeline order.
  double extra = 0.0;

  /// Canonical reduction; the ONLY way either engine turns the ledger
  /// into spent cost units. Fixed evaluation order — do not reorder.
  double Total(const CostParams& p) const {
    double s = static_cast<double>(scan_tuple) * p.scan_tuple;
    s += static_cast<double>(hash_build_tuple) * p.hash_build_tuple;
    s += static_cast<double>(hash_probe_tuple) * p.hash_probe_tuple;
    s += static_cast<double>(nlj_materialize_tuple) * p.nlj_materialize_tuple;
    s += static_cast<double>(nlj_pair) * p.nlj_pair;
    s += static_cast<double>(join_output_tuple) * p.join_output_tuple;
    s += static_cast<double>(index_probe) * p.index_probe;
    s += static_cast<double>(index_fetch) * p.index_fetch;
    s += static_cast<double>(sort_tuple) * p.sort_tuple;
    s += static_cast<double>(merge_tuple) * p.merge_tuple;
    s += extra;
    return s;
  }

  /// Merges another ledger's counts into this one (morsel-parallel
  /// workers count locally and are merged in worker order).
  void Merge(const CostLedger& o) {
    scan_tuple += o.scan_tuple;
    hash_build_tuple += o.hash_build_tuple;
    hash_probe_tuple += o.hash_probe_tuple;
    nlj_materialize_tuple += o.nlj_materialize_tuple;
    nlj_pair += o.nlj_pair;
    join_output_tuple += o.join_output_tuple;
    index_probe += o.index_probe;
    index_fetch += o.index_fetch;
    sort_tuple += o.sort_tuple;
    merge_tuple += o.merge_tuple;
    extra += o.extra;
  }
};

}  // namespace robustqp

#endif  // ROBUSTQP_EXEC_COST_LEDGER_H_
