#include "harness/evaluator.h"

#include <algorithm>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/oracle.h"
#include "feedback/warm_start.h"

namespace robustqp {

namespace {

int ResolveThreads(const EvalOptions& opts) {
  return opts.num_threads > 0 ? opts.num_threads : ThreadPool::DefaultThreads();
}

/// Fills stats.mso / worst_location / aso from the completed subopt
/// vector. Serial left-to-right scan: the same association order
/// regardless of how the vector was filled, so the aggregate is
/// bit-identical at any thread count (first-location tie-break for MSO).
void ReduceStats(SuboptimalityStats* stats) {
  double sum = 0.0;
  for (size_t lin = 0; lin < stats->subopt.size(); ++lin) {
    const double s = stats->subopt[lin];
    sum += s;
    if (s > stats->mso) {
      stats->mso = s;
      stats->worst_location = static_cast<int64_t>(lin);
    }
  }
  stats->aso = sum / static_cast<double>(stats->subopt.size());
}

}  // namespace

EvalOptions MakeEvalOptions(const RequestOptions& request) {
  EvalOptions opts;
  opts.num_threads = request.ess_threads;
  opts.fault_spec = request.fault_spec;
  opts.fault_seed = request.fault_seed;
  opts.num_shards = request.num_shards;
  return opts;
}

double SuboptimalityStats::FractionWithin(double bound) const {
  if (subopt.empty()) return 0.0;
  int64_t n = 0;
  for (double s : subopt) {
    if (s <= bound) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(subopt.size());
}

double SuboptimalityStats::Percentile(double p) const {
  RQP_CHECK(p > 0.0 && p <= 100.0);
  if (subopt.empty()) return 0.0;
  std::vector<double> sample = subopt;
  const size_t idx = static_cast<size_t>(
      std::min<double>(static_cast<double>(sample.size()) - 1.0,
                       p / 100.0 * static_cast<double>(sample.size())));
  // nth_element: O(n) selection instead of a full sort.
  std::nth_element(sample.begin(),
                   sample.begin() + static_cast<std::ptrdiff_t>(idx),
                   sample.end());
  return sample[idx];
}

SuboptimalityStats Evaluate(const DiscoveryAlgorithm& algo, const Ess& ess,
                            const EvalOptions& opts) {
  SuboptimalityStats stats;
  const int64_t total = ess.num_locations();
  stats.subopt.resize(static_cast<size_t>(total));

  if (!opts.fault_spec.empty()) {
    const Status st =
        FaultInjector::Global().Configure(opts.fault_spec, opts.fault_seed);
    RQP_CHECK(st.ok());
  }
  const bool armed = FaultInjector::Armed();

  const int threads = ResolveThreads(opts);
  ThreadPool pool(threads);
  std::vector<double> worker_penalty(static_cast<size_t>(threads), 1.0);
  std::vector<RobustnessReport> worker_report(static_cast<size_t>(threads));
  std::vector<double> worker_clean(static_cast<size_t>(threads), 1.0);
  // One contiguous block of locations per worker; each worker clones the
  // algorithm once (cold memo caches that warm over its block) and builds
  // its own oracle per q_a. Per-location results are independent of the
  // partitioning — fault draws included, being keyed to the location —
  // so any thread count produces the same subopt vector.
  const Status run_status =
      ParallelFor(&pool, total, [&](int worker, int64_t begin, int64_t end) {
        const std::unique_ptr<DiscoveryAlgorithm> local = algo.Clone();
        double max_penalty = 1.0;
        RobustnessReport report;
        double max_clean = 1.0;
        for (int64_t lin = begin; lin < end; ++lin) {
          SimulatedOracle oracle(&ess, ess.FromLinear(lin));
          oracle.set_num_shards(opts.num_shards);
          DiscoveryResult result;
          if (armed) {
            FaultStreamScope scope(static_cast<uint64_t>(lin));
            result = local->Run(&oracle);
          } else {
            result = local->Run(&oracle);
          }
          RQP_CHECK(result.completed);
          double subopt = result.total_cost / ess.OptimalCost(lin);
          if (armed) {
            // Runtime invariant: sub-optimality below 1 means some cost
            // account went non-monotone (an injected corruption slipped
            // through) — clamp and report rather than poison the MSO.
            if (subopt < 1.0) {
              subopt = 1.0;
              ++report.pcm_violations;
            }
            const double clean =
                std::max(1.0, (result.total_cost -
                               result.robustness.retried_cost) /
                                  ess.OptimalCost(lin));
            max_clean = std::max(max_clean, clean);
            report.Merge(result.robustness);
          }
          stats.subopt[static_cast<size_t>(lin)] = subopt;
          max_penalty = std::max(max_penalty, result.max_replacement_penalty);
        }
        worker_penalty[static_cast<size_t>(worker)] = max_penalty;
        worker_report[static_cast<size_t>(worker)] = report;
        worker_clean[static_cast<size_t>(worker)] = max_clean;
      });
  RQP_CHECK(run_status.ok());
  // max() over doubles is exact, so the merge order cannot matter; the
  // report counters are integral, so their merge order cannot either.
  for (double p : worker_penalty) stats.max_penalty = std::max(stats.max_penalty, p);
  ReduceStats(&stats);
  if (armed) {
    double max_clean = 1.0;
    for (size_t w = 0; w < worker_report.size(); ++w) {
      stats.robustness.Merge(worker_report[w]);
      max_clean = std::max(max_clean, worker_clean[w]);
    }
    stats.robustness.mso_delta = std::max(0.0, stats.mso - max_clean);
    if (!opts.fault_spec.empty()) FaultInjector::Global().Disarm();
  }
  stats.composed_mso = shard::ComposeMsoBound(algo.MsoGuarantee(),
                                              opts.num_shards);
  return stats;
}

namespace {

/// Shared shape of the two native baselines: fill subopt[lin] via
/// `subopt_at`, fanned out in fixed-size chunks, then reduce serially.
SuboptimalityStats EvaluateNative(
    const Ess& ess, const EvalOptions& opts,
    const std::function<double(int64_t)>& subopt_at) {
  SuboptimalityStats stats;
  const int64_t total = ess.num_locations();
  stats.subopt.resize(static_cast<size_t>(total));
  ThreadPool pool(ResolveThreads(opts));
  constexpr int64_t kChunk = 256;
  ParallelMapReduce<int>(
      &pool, total, kChunk, 0,
      [&](int64_t begin, int64_t end) {
        for (int64_t lin = begin; lin < end; ++lin) {
          stats.subopt[static_cast<size_t>(lin)] = subopt_at(lin);
        }
        return 0;
      },
      [](int acc, int) { return acc; });
  ReduceStats(&stats);
  return stats;
}

}  // namespace

SuboptimalityStats EvaluateNativeWorstCase(const Ess& ess,
                                           const EvalOptions& opts) {
  const std::vector<const Plan*>& posp = ess.pool().plans();
  return EvaluateNative(ess, opts, [&](int64_t lin) {
    const EssPoint q = ess.SelAt(ess.FromLinear(lin));
    // Hoist the optimal cost out of the POSP loop: take the max raw plan
    // cost first, one division per location.
    double worst_cost = 0.0;
    for (const Plan* p : posp) {
      worst_cost = std::max(worst_cost, ess.optimizer().PlanCost(*p, q));
    }
    return std::max(1.0, worst_cost / ess.OptimalCost(lin));
  });
}

SuboptimalityStats EvaluateNativeAtEstimate(const Ess& ess,
                                            const EvalOptions& opts) {
  const EssPoint qe = ess.optimizer().estimator().NativeEstimatePoint();
  const std::unique_ptr<Plan> plan = ess.optimizer().Optimize(qe);
  return EvaluateNative(ess, opts, [&](int64_t lin) {
    const EssPoint q = ess.SelAt(ess.FromLinear(lin));
    return ess.optimizer().PlanCost(*plan, q) / ess.OptimalCost(lin);
  });
}

std::vector<RepeatedRunStats> EvaluateRepeated(
    const DiscoveryAlgorithm& algo, const Ess& ess, const GridLoc& qa,
    const std::string& query_id, feedback::FeedbackStore* store, int repeats,
    const EvalOptions& opts) {
  std::vector<RepeatedRunStats> runs;
  if (repeats <= 0) return runs;
  runs.reserve(static_cast<size_t>(repeats));

  if (!opts.fault_spec.empty()) {
    const Status st =
        FaultInjector::Global().Configure(opts.fault_spec, opts.fault_seed);
    RQP_CHECK(st.ok());
  }
  const bool armed = FaultInjector::Armed();
  const std::string key = feedback::FeedbackStore::Key(query_id, ess.dims());
  const double opt_cost = ess.OptimalCost(qa);

  for (int i = 0; i < repeats; ++i) {
    RepeatedRunStats run;
    WarmStartHint hint;
    if (store != nullptr) {
      const feedback::FeedbackStore::Calibration cal = store->Get(key);
      run.feedback_hit = cal.valid;
      hint = feedback::MakeWarmStartHint(ess, cal);
    }

    SimulatedOracle oracle(&ess, qa);
    oracle.set_num_shards(opts.num_shards);
    DiscoveryResult result;
    if (armed) {
      FaultStreamScope scope(opts.fault_seed + static_cast<uint64_t>(i));
      result = algo.Run(&oracle, hint.valid ? &hint : nullptr);
    } else {
      result = algo.Run(&oracle, hint.valid ? &hint : nullptr);
    }

    run.completed = result.completed;
    run.total_cost = result.total_cost;
    run.suboptimality = opt_cost > 0.0 ? result.total_cost / opt_cost : 0.0;
    run.num_executions = result.num_executions();
    run.warm_started = result.warm_started;
    run.warm_completed = result.warm_completed;
    run.warm_fell_back = result.warm_fell_back;
    if (store != nullptr && result.completed) {
      run.drifted = store->Observe(key, oracle.ObservedSelectivities(),
                                   result.total_cost, result.final_contour)
                        .drifted;
    }
    runs.push_back(run);
  }

  if (!opts.fault_spec.empty()) FaultInjector::Global().Disarm();
  return runs;
}

std::vector<int64_t> SuboptHistogram(const SuboptimalityStats& stats,
                                     double width, int max_buckets) {
  std::vector<int64_t> buckets(static_cast<size_t>(max_buckets), 0);
  for (double s : stats.subopt) {
    int b = static_cast<int>((s - 1e-12) / width);
    b = std::clamp(b, 0, max_buckets - 1);
    ++buckets[static_cast<size_t>(b)];
  }
  return buckets;
}

}  // namespace robustqp
