#include "harness/evaluator.h"

#include <algorithm>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/oracle.h"

namespace robustqp {

namespace {

int ResolveThreads(const EvalOptions& opts) {
  return opts.num_threads > 0 ? opts.num_threads : ThreadPool::DefaultThreads();
}

/// Fills stats.mso / worst_location / aso from the completed subopt
/// vector. Serial left-to-right scan: the same association order
/// regardless of how the vector was filled, so the aggregate is
/// bit-identical at any thread count (first-location tie-break for MSO).
void ReduceStats(SuboptimalityStats* stats) {
  double sum = 0.0;
  for (size_t lin = 0; lin < stats->subopt.size(); ++lin) {
    const double s = stats->subopt[lin];
    sum += s;
    if (s > stats->mso) {
      stats->mso = s;
      stats->worst_location = static_cast<int64_t>(lin);
    }
  }
  stats->aso = sum / static_cast<double>(stats->subopt.size());
}

}  // namespace

double SuboptimalityStats::FractionWithin(double bound) const {
  if (subopt.empty()) return 0.0;
  int64_t n = 0;
  for (double s : subopt) {
    if (s <= bound) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(subopt.size());
}

double SuboptimalityStats::Percentile(double p) const {
  RQP_CHECK(p > 0.0 && p <= 100.0);
  if (subopt.empty()) return 0.0;
  std::vector<double> sample = subopt;
  const size_t idx = static_cast<size_t>(
      std::min<double>(static_cast<double>(sample.size()) - 1.0,
                       p / 100.0 * static_cast<double>(sample.size())));
  // nth_element: O(n) selection instead of a full sort.
  std::nth_element(sample.begin(),
                   sample.begin() + static_cast<std::ptrdiff_t>(idx),
                   sample.end());
  return sample[idx];
}

SuboptimalityStats Evaluate(const DiscoveryAlgorithm& algo, const Ess& ess,
                            const EvalOptions& opts) {
  SuboptimalityStats stats;
  const int64_t total = ess.num_locations();
  stats.subopt.resize(static_cast<size_t>(total));

  const int threads = ResolveThreads(opts);
  ThreadPool pool(threads);
  std::vector<double> worker_penalty(static_cast<size_t>(threads), 1.0);
  // One contiguous block of locations per worker; each worker clones the
  // algorithm once (cold memo caches that warm over its block) and builds
  // its own oracle per q_a. Per-location results are independent of the
  // partitioning, so any thread count produces the same subopt vector.
  ParallelFor(&pool, total, [&](int worker, int64_t begin, int64_t end) {
    const std::unique_ptr<DiscoveryAlgorithm> local = algo.Clone();
    double max_penalty = 1.0;
    for (int64_t lin = begin; lin < end; ++lin) {
      SimulatedOracle oracle(&ess, ess.FromLinear(lin));
      const DiscoveryResult result = local->Run(&oracle);
      RQP_CHECK(result.completed);
      stats.subopt[static_cast<size_t>(lin)] =
          result.total_cost / ess.OptimalCost(lin);
      max_penalty = std::max(max_penalty, result.max_replacement_penalty);
    }
    worker_penalty[static_cast<size_t>(worker)] = max_penalty;
  });
  // max() over doubles is exact, so the merge order cannot matter.
  for (double p : worker_penalty) stats.max_penalty = std::max(stats.max_penalty, p);
  ReduceStats(&stats);
  return stats;
}

namespace {

/// Shared shape of the two native baselines: fill subopt[lin] via
/// `subopt_at`, fanned out in fixed-size chunks, then reduce serially.
SuboptimalityStats EvaluateNative(
    const Ess& ess, const EvalOptions& opts,
    const std::function<double(int64_t)>& subopt_at) {
  SuboptimalityStats stats;
  const int64_t total = ess.num_locations();
  stats.subopt.resize(static_cast<size_t>(total));
  ThreadPool pool(ResolveThreads(opts));
  constexpr int64_t kChunk = 256;
  ParallelMapReduce<int>(
      &pool, total, kChunk, 0,
      [&](int64_t begin, int64_t end) {
        for (int64_t lin = begin; lin < end; ++lin) {
          stats.subopt[static_cast<size_t>(lin)] = subopt_at(lin);
        }
        return 0;
      },
      [](int acc, int) { return acc; });
  ReduceStats(&stats);
  return stats;
}

}  // namespace

SuboptimalityStats EvaluateNativeWorstCase(const Ess& ess,
                                           const EvalOptions& opts) {
  const std::vector<const Plan*>& posp = ess.pool().plans();
  return EvaluateNative(ess, opts, [&](int64_t lin) {
    const EssPoint q = ess.SelAt(ess.FromLinear(lin));
    // Hoist the optimal cost out of the POSP loop: take the max raw plan
    // cost first, one division per location.
    double worst_cost = 0.0;
    for (const Plan* p : posp) {
      worst_cost = std::max(worst_cost, ess.optimizer().PlanCost(*p, q));
    }
    return std::max(1.0, worst_cost / ess.OptimalCost(lin));
  });
}

SuboptimalityStats EvaluateNativeAtEstimate(const Ess& ess,
                                            const EvalOptions& opts) {
  const EssPoint qe = ess.optimizer().estimator().NativeEstimatePoint();
  const std::unique_ptr<Plan> plan = ess.optimizer().Optimize(qe);
  return EvaluateNative(ess, opts, [&](int64_t lin) {
    const EssPoint q = ess.SelAt(ess.FromLinear(lin));
    return ess.optimizer().PlanCost(*plan, q) / ess.OptimalCost(lin);
  });
}

std::vector<int64_t> SuboptHistogram(const SuboptimalityStats& stats,
                                     double width, int max_buckets) {
  std::vector<int64_t> buckets(static_cast<size_t>(max_buckets), 0);
  for (double s : stats.subopt) {
    int b = static_cast<int>((s - 1e-12) / width);
    b = std::clamp(b, 0, max_buckets - 1);
    ++buckets[static_cast<size_t>(b)];
  }
  return buckets;
}

}  // namespace robustqp
