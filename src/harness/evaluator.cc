#include "harness/evaluator.h"

#include <algorithm>

#include "common/status.h"
#include "core/oracle.h"

namespace robustqp {

double SuboptimalityStats::FractionWithin(double bound) const {
  if (subopt.empty()) return 0.0;
  int64_t n = 0;
  for (double s : subopt) {
    if (s <= bound) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(subopt.size());
}

double SuboptimalityStats::Percentile(double p) const {
  RQP_CHECK(p > 0.0 && p <= 100.0);
  if (subopt.empty()) return 0.0;
  std::vector<double> sorted = subopt;
  std::sort(sorted.begin(), sorted.end());
  const size_t idx = static_cast<size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[idx];
}

SuboptimalityStats EvaluateOverEss(
    const Ess& ess, const std::function<DiscoveryResult(int64_t)>& runner) {
  SuboptimalityStats stats;
  const int64_t total = ess.num_locations();
  stats.subopt.resize(static_cast<size_t>(total));
  double sum = 0.0;
  for (int64_t lin = 0; lin < total; ++lin) {
    const DiscoveryResult result = runner(lin);
    RQP_CHECK(result.completed);
    const double subopt = result.total_cost / ess.OptimalCost(lin);
    stats.subopt[static_cast<size_t>(lin)] = subopt;
    sum += subopt;
    if (subopt > stats.mso) {
      stats.mso = subopt;
      stats.worst_location = lin;
    }
  }
  stats.aso = sum / static_cast<double>(total);
  return stats;
}

SuboptimalityStats EvaluateSpillBound(SpillBound* sb) {
  const Ess& ess = sb->ess();
  return EvaluateOverEss(ess, [&](int64_t lin) {
    SimulatedOracle oracle(&ess, ess.FromLinear(lin));
    return sb->Run(&oracle);
  });
}

SuboptimalityStats EvaluatePlanBouquet(const PlanBouquet& pb, const Ess& ess) {
  return EvaluateOverEss(ess, [&](int64_t lin) {
    SimulatedOracle oracle(&ess, ess.FromLinear(lin));
    return pb.Run(&oracle);
  });
}

SuboptimalityStats EvaluateAlignedBound(AlignedBound* ab, const Ess& ess) {
  return EvaluateOverEss(ess, [&](int64_t lin) {
    SimulatedOracle oracle(&ess, ess.FromLinear(lin));
    return ab->Run(&oracle);
  });
}

SuboptimalityStats EvaluateNativeWorstCase(const Ess& ess) {
  SuboptimalityStats stats;
  const int64_t total = ess.num_locations();
  stats.subopt.resize(static_cast<size_t>(total));
  const std::vector<const Plan*>& posp = ess.pool().plans();
  double sum = 0.0;
  for (int64_t lin = 0; lin < total; ++lin) {
    const EssPoint q = ess.SelAt(ess.FromLinear(lin));
    const double opt = ess.OptimalCost(lin);
    double worst = 1.0;
    for (const Plan* p : posp) {
      worst = std::max(worst, ess.optimizer().PlanCost(*p, q) / opt);
    }
    stats.subopt[static_cast<size_t>(lin)] = worst;
    sum += worst;
    if (worst > stats.mso) {
      stats.mso = worst;
      stats.worst_location = lin;
    }
  }
  stats.aso = sum / static_cast<double>(total);
  return stats;
}

SuboptimalityStats EvaluateNativeAtEstimate(const Ess& ess) {
  SuboptimalityStats stats;
  const EssPoint qe = ess.optimizer().estimator().NativeEstimatePoint();
  const std::unique_ptr<Plan> plan = ess.optimizer().Optimize(qe);
  const int64_t total = ess.num_locations();
  stats.subopt.resize(static_cast<size_t>(total));
  double sum = 0.0;
  for (int64_t lin = 0; lin < total; ++lin) {
    const EssPoint q = ess.SelAt(ess.FromLinear(lin));
    const double subopt = ess.optimizer().PlanCost(*plan, q) / ess.OptimalCost(lin);
    stats.subopt[static_cast<size_t>(lin)] = subopt;
    sum += subopt;
    if (subopt > stats.mso) {
      stats.mso = subopt;
      stats.worst_location = lin;
    }
  }
  stats.aso = sum / static_cast<double>(total);
  return stats;
}

std::vector<int64_t> SuboptHistogram(const SuboptimalityStats& stats,
                                     double width, int max_buckets) {
  std::vector<int64_t> buckets(static_cast<size_t>(max_buckets), 0);
  for (double s : stats.subopt) {
    int b = static_cast<int>((s - 1e-12) / width);
    b = std::clamp(b, 0, max_buckets - 1);
    ++buckets[static_cast<size_t>(b)];
  }
  return buckets;
}

}  // namespace robustqp
