// DEPRECATED shim over the instance-scoped ContextCache.
//
// Workbench used to be the process-global registry of built experiment
// contexts. The service layer replaced it with server/context_cache.h —
// an instance-scoped LRU cache with capacity and hit/miss accounting that
// a QueryService (or a test) owns rather than shares process-wide. This
// header remains only so out-of-tree callers keep compiling: Get()
// delegates to ContextCache::Default(), an unbounded instance whose
// entries live for the process, preserving the old reference-lifetime
// contract.
//
// New code should hold a ContextCache (or a QueryService) instead:
//
//   ContextCache cache(ContextCache::Options{/*capacity=*/8});
//   auto ctx = cache.Get("2D_Q91", config);   // Result<shared_ptr<Entry>>

#ifndef ROBUSTQP_HARNESS_WORKBENCH_H_
#define ROBUSTQP_HARNESS_WORKBENCH_H_

#include <memory>
#include <string>

#include "server/context_cache.h"

namespace robustqp {

/// Deprecated: use ContextCache. See the header comment.
class Workbench {
 public:
  using Entry = ContextCache::Entry;

  /// Deprecated: ContextCache::Default().Get(id, config). The returned
  /// reference stays valid for process lifetime (the default cache never
  /// evicts).
  static const Entry& Get(const std::string& id,
                          const Ess::Config& config = Ess::Config{});

  /// Deprecated: ContextCache::TpcdsCatalog() / JobCatalog().
  static std::shared_ptr<Catalog> TpcdsCatalog();
  static std::shared_ptr<Catalog> JobCatalog();
};

}  // namespace robustqp

#endif  // ROBUSTQP_HARNESS_WORKBENCH_H_
