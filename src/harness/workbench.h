// One-stop experiment setup: catalog + query + built ESS for a suite
// query id, cached process-wide so tests, benches and examples share the
// (optimizer-call-heavy) ESS construction.

#ifndef ROBUSTQP_HARNESS_WORKBENCH_H_
#define ROBUSTQP_HARNESS_WORKBENCH_H_

#include <memory>
#include <string>

#include "ess/ess.h"
#include "query/query.h"

namespace robustqp {

/// Process-wide registry of built experiment contexts.
class Workbench {
 public:
  struct Entry {
    std::shared_ptr<Catalog> catalog;
    std::unique_ptr<Query> query;
    std::unique_ptr<Ess> ess;
  };

  /// Returns the cached context for `id` under `config`, building it on
  /// first use. The returned reference stays valid for process lifetime.
  static const Entry& Get(const std::string& id,
                          const Ess::Config& config = Ess::Config{});

  /// The shared synthetic catalogs (built once).
  static std::shared_ptr<Catalog> TpcdsCatalog();
  static std::shared_ptr<Catalog> JobCatalog();
};

}  // namespace robustqp

#endif  // ROBUSTQP_HARNESS_WORKBENCH_H_
