#include "harness/true_selectivity.h"

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "exec/kernels.h"
#include "storage/table.h"

namespace robustqp {

namespace {

/// Resolved (op, value) of a filter against its column: string predicates
/// translate into rank space exactly as the execution engines do, so true
/// selectivities match what a scan observes.
void ResolveFilter(const ColumnData& col, const FilterPredicate& fp,
                   CompareOp* op, double* value) {
  *op = fp.op;
  *value = fp.value;
  if (fp.is_string) {
    kernels::MapStringPredicate(col.enc(), fp.op, fp.value_str, op, value);
  }
}

/// Values of `column` for rows of `table` passing the query's filters on
/// that table.
std::vector<double> FilteredColumn(const Catalog& catalog, const Query& query,
                                   const std::string& table,
                                   const std::string& column) {
  const CatalogEntry* entry = catalog.FindTable(table);
  RQP_CHECK(entry != nullptr);
  const Table& t = *entry->table;
  const int col = t.schema().FindColumn(column);
  RQP_CHECK(col >= 0);

  struct Filter {
    int col;
    CompareOp op;
    double value;
  };
  std::vector<Filter> filters;
  for (const auto& f : query.filters()) {
    if (f.table != table) continue;
    const int fcol = t.schema().FindColumn(f.column);
    CompareOp op;
    double value;
    ResolveFilter(t.column(fcol), f, &op, &value);
    filters.push_back({fcol, op, value});
  }

  std::vector<double> out;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    bool pass = true;
    for (const auto& f : filters) {
      const double v = t.column(f.col).GetNumeric(r);
      switch (f.op) {
        case CompareOp::kLt: pass = v < f.value; break;
        case CompareOp::kLe: pass = v <= f.value; break;
        case CompareOp::kGt: pass = v > f.value; break;
        case CompareOp::kGe: pass = v >= f.value; break;
        case CompareOp::kEq: pass = v == f.value; break;
      }
      if (!pass) break;
    }
    if (pass) out.push_back(t.column(col).GetNumeric(r));
  }
  return out;
}

}  // namespace

EssPoint ComputeTrueSelectivities(const Catalog& catalog, const Query& query) {
  EssPoint truth(static_cast<size_t>(query.num_epps()));
  for (int d = 0; d < query.num_epps(); ++d) {
    const int filter_idx = query.FilterOfEppDimension(d);
    if (filter_idx >= 0) {
      // Marginal selectivity of the error-prone filter over its table.
      const FilterPredicate& fp =
          query.filters()[static_cast<size_t>(filter_idx)];
      const CatalogEntry* entry = catalog.FindTable(fp.table);
      RQP_CHECK(entry != nullptr);
      const Table& t = *entry->table;
      const int col = t.schema().FindColumn(fp.column);
      RQP_CHECK(col >= 0);
      CompareOp op;
      double value;
      ResolveFilter(t.column(col), fp, &op, &value);
      int64_t pass = 0;
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        const double v = t.column(col).GetNumeric(r);
        bool p = true;
        switch (op) {
          case CompareOp::kLt: p = v < value; break;
          case CompareOp::kLe: p = v <= value; break;
          case CompareOp::kGt: p = v > value; break;
          case CompareOp::kGe: p = v >= value; break;
          case CompareOp::kEq: p = v == value; break;
        }
        if (p) ++pass;
      }
      truth[static_cast<size_t>(d)] =
          t.num_rows() > 0
              ? static_cast<double>(pass) / static_cast<double>(t.num_rows())
              : 0.0;
      continue;
    }
    const JoinPredicate& jp =
        query.joins()[static_cast<size_t>(query.JoinOfEppDimension(d))];
    const std::vector<double> left =
        FilteredColumn(catalog, query, jp.left_table, jp.left_column);
    const std::vector<double> right =
        FilteredColumn(catalog, query, jp.right_table, jp.right_column);
    std::unordered_map<double, int64_t> counts;
    for (double v : right) ++counts[v];
    int64_t matches = 0;
    for (double v : left) {
      auto it = counts.find(v);
      if (it != counts.end()) matches += it->second;
    }
    const double denom =
        static_cast<double>(left.size()) * static_cast<double>(right.size());
    truth[static_cast<size_t>(d)] =
        denom > 0.0 ? static_cast<double>(matches) / denom : 0.0;
  }
  return truth;
}

}  // namespace robustqp
