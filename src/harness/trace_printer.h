// Human-readable rendering of discovery traces: the step listing behind
// Fig. 7's Manhattan profile and the per-contour drill-down of Table 3.

#ifndef ROBUSTQP_HARNESS_TRACE_PRINTER_H_
#define ROBUSTQP_HARNESS_TRACE_PRINTER_H_

#include <ostream>

#include "core/discovery.h"
#include "ess/ess.h"

namespace robustqp {

/// Prints one line per budgeted execution: contour, plan (spills in
/// lower-case, e.g. "p7[e2]"), budget, charge, and the running location.
void PrintExecutionTrace(const Ess& ess, const DiscoveryResult& result,
                         std::ostream& os);

/// Prints a Table 3-style drill-down: one row per execution with the
/// per-epp selectivity knowledge (in %) and cumulative cost; when
/// `seconds_per_unit` > 0 a cumulative wall-clock column is included.
void PrintContourDrilldown(const Ess& ess, const DiscoveryResult& result,
                           std::ostream& os, double seconds_per_unit = 0.0);

}  // namespace robustqp

#endif  // ROBUSTQP_HARNESS_TRACE_PRINTER_H_
