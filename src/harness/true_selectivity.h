// Ground-truth selectivities of a query's epp join predicates, computed
// directly from the stored data: sel(j) = |L' x R' matches| / (|L'| |R'|)
// over the filtered base tables — the quantity the paper's run-time
// monitoring observes and that the ESS axes parameterize.

#ifndef ROBUSTQP_HARNESS_TRUE_SELECTIVITY_H_
#define ROBUSTQP_HARNESS_TRUE_SELECTIVITY_H_

#include "catalog/catalog.h"
#include "optimizer/estimator.h"
#include "query/query.h"

namespace robustqp {

/// True selectivity of each epp dimension, measured on the data.
EssPoint ComputeTrueSelectivities(const Catalog& catalog, const Query& query);

}  // namespace robustqp

#endif  // ROBUSTQP_HARNESS_TRUE_SELECTIVITY_H_
