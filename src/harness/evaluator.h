// Exhaustive ESS evaluation harness (the methodology of Sections 6.2 and
// 6.4): every grid location is taken as the true location q_a; the
// discovery algorithm runs against a simulated oracle there, and its
// sub-optimality Eq. (3) is recorded. MSO is the maximum, ASO the mean
// (Eq. (8)); the per-location vector feeds the Fig. 12 histograms. Also
// provides the traditional-optimizer baselines of Eq. (1).

#ifndef ROBUSTQP_HARNESS_EVALUATOR_H_
#define ROBUSTQP_HARNESS_EVALUATOR_H_

#include <functional>
#include <vector>

#include "core/alignedbound.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "ess/ess.h"

namespace robustqp {

/// Sub-optimality profile of one algorithm over the whole ESS.
struct SuboptimalityStats {
  double mso = 0.0;
  double aso = 0.0;
  int64_t worst_location = -1;
  /// SubOpt per linear grid location.
  std::vector<double> subopt;

  /// Fraction of locations with sub-optimality <= bound.
  double FractionWithin(double bound) const;

  /// Sub-optimality at percentile p (0 < p <= 100), e.g. Percentile(95).
  double Percentile(double p) const;
};

/// Runs `runner` for every q_a in the grid and aggregates.
SuboptimalityStats EvaluateOverEss(
    const Ess& ess, const std::function<DiscoveryResult(int64_t)>& runner);

/// Exhaustive evaluation of the three discovery algorithms. The algorithm
/// objects are mutated (their memo caches warm up across locations).
SuboptimalityStats EvaluateSpillBound(SpillBound* sb);
SuboptimalityStats EvaluatePlanBouquet(const PlanBouquet& pb, const Ess& ess);
SuboptimalityStats EvaluateAlignedBound(AlignedBound* ab, const Ess& ess);

/// Traditional optimizer, worst case over estimate locations: for each
/// q_a, the worst Cost(P_qe, q_a)/Cost(P_qa, q_a) over all POSP plans
/// (every q_e in the ESS yields some POSP plan, so this is the exact
/// worst case of Eq. (2)).
SuboptimalityStats EvaluateNativeWorstCase(const Ess& ess);

/// Traditional optimizer at its actual statistics-based estimate: the
/// plan is chosen once at the estimator's native q_e and executed at
/// every q_a.
SuboptimalityStats EvaluateNativeAtEstimate(const Ess& ess);

/// Histogram of sub-optimalities in buckets of `width` (Fig. 12): entry k
/// counts locations with subopt in (k*width, (k+1)*width], entry 0
/// includes [1, width].
std::vector<int64_t> SuboptHistogram(const SuboptimalityStats& stats,
                                     double width, int max_buckets = 20);

}  // namespace robustqp

#endif  // ROBUSTQP_HARNESS_EVALUATOR_H_
