// Exhaustive ESS evaluation harness (the methodology of Sections 6.2 and
// 6.4): every grid location is taken as the true location q_a; the
// discovery algorithm runs against a simulated oracle there, and its
// sub-optimality Eq. (3) is recorded. MSO is the maximum, ASO the mean
// (Eq. (8)); the per-location vector feeds the Fig. 12 histograms. Also
// provides the traditional-optimizer baselines of Eq. (1).
//
// The per-q_a runs are independent, so the sweep fans out across a
// ThreadPool: each worker owns a Clone() of the algorithm and its own
// SimulatedOracle per location, and the reduction to SuboptimalityStats
// is deterministic — results are bit-identical at any thread count.

#ifndef ROBUSTQP_HARNESS_EVALUATOR_H_
#define ROBUSTQP_HARNESS_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/discovery.h"
#include "ess/ess.h"
#include "feedback/feedback_store.h"
#include "server/request_options.h"

namespace robustqp {

/// Knobs for the exhaustive sweep.
struct EvalOptions {
  /// Worker threads for the per-q_a fan-out; 0 = hardware concurrency,
  /// 1 = serial. Any value yields bit-identical SuboptimalityStats.
  int num_threads = 0;
  /// Chaos-sweep mode: when non-empty, the global FaultInjector is
  /// configured with this spec (see FaultInjector::Configure for the
  /// grammar, e.g. "exec.*:p=0.01;optimizer.dp:after=100") for the
  /// duration of the sweep and disarmed afterwards. Fault draws are keyed
  /// to the grid location, so the sweep stays bit-identical at any thread
  /// count.
  std::string fault_spec;
  /// Seed for the deterministic fault draws of a chaos sweep.
  uint64_t fault_seed = 42;
  /// Sharded chaos mode: simulate every full execution as scattered over
  /// this many workers (SimulatedOracle::set_num_shards) and compose the
  /// algorithm's MSO guarantee across them into
  /// SuboptimalityStats::composed_mso. <= 1 means unsharded; clean
  /// (fault-free) sweeps are bit-identical at any value.
  int num_shards = 1;
};

/// The sweep view of the unified per-request knob struct: threads come
/// from ess_threads (the sweep is surface-shaped work, not per-query
/// morsel work), chaos fields map through unchanged.
EvalOptions MakeEvalOptions(const RequestOptions& request);

/// Sub-optimality profile of one algorithm over the whole ESS.
struct SuboptimalityStats {
  double mso = 0.0;
  double aso = 0.0;
  int64_t worst_location = -1;
  /// Largest replacement penalty any run reported (AlignedBound's
  /// Table 4 statistic; 1.0 for penalty-free algorithms).
  double max_penalty = 1.0;
  /// Aggregated fault/retry/degradation counters over every run of the
  /// sweep (all-zero outside chaos mode). mso_delta is the sweep-level
  /// MSO inflation attributable to injected faults: mso minus the maximum
  /// fault-free ("clean") sub-optimality, where each run's clean cost
  /// excludes the work lost to retries.
  RobustnessReport robustness;
  /// The algorithm's guarantee composed across EvalOptions::num_shards
  /// (shard/mso.h); num_shards == 1 outside sharded mode.
  shard::ComposedMso composed_mso;
  /// SubOpt per linear grid location.
  std::vector<double> subopt;

  /// Fraction of locations with sub-optimality <= bound.
  double FractionWithin(double bound) const;

  /// Sub-optimality at percentile p (0 < p <= 100), e.g. Percentile(95).
  double Percentile(double p) const;
};

/// Exhaustive evaluation of a discovery algorithm: every grid location is
/// the true location once. This is the single entry point for
/// PlanBouquet, SpillBound and AlignedBound alike.
SuboptimalityStats Evaluate(const DiscoveryAlgorithm& algo, const Ess& ess,
                            const EvalOptions& opts = EvalOptions{});

/// Traditional optimizer, worst case over estimate locations: for each
/// q_a, the worst Cost(P_qe, q_a)/Cost(P_qa, q_a) over all POSP plans
/// (every q_e in the ESS yields some POSP plan, so this is the exact
/// worst case of Eq. (2)).
SuboptimalityStats EvaluateNativeWorstCase(
    const Ess& ess, const EvalOptions& opts = EvalOptions{});

/// Traditional optimizer at its actual statistics-based estimate: the
/// plan is chosen once at the estimator's native q_e and executed at
/// every q_a.
SuboptimalityStats EvaluateNativeAtEstimate(
    const Ess& ess, const EvalOptions& opts = EvalOptions{});

/// Histogram of sub-optimalities in buckets of `width` (Fig. 12): entry k
/// counts locations with subopt in (k*width, (k+1)*width], entry 0
/// includes [1, width].
std::vector<int64_t> SuboptHistogram(const SuboptimalityStats& stats,
                                     double width, int max_buckets = 20);

/// One run of a repeated-query (closed-loop) evaluation.
struct RepeatedRunStats {
  bool completed = false;
  double total_cost = 0.0;
  /// total_cost / OptimalCost(q_a) — must stay within the cold MSO
  /// guarantee on every run, warm-started or not.
  double suboptimality = 0.0;
  /// Oracle executions (budgeted probes + spills + the completing run).
  int num_executions = 0;
  /// The store held a valid calibration going into this run.
  bool feedback_hit = false;
  /// Discovery opened with warm-start probes / completed inside them /
  /// exhausted them and restarted the full cold schedule.
  bool warm_started = false;
  bool warm_completed = false;
  bool warm_fell_back = false;
  /// This run's observation tripped the drift monitor.
  bool drifted = false;
};

/// Repeated-query evaluation — the closed loop the one-shot sweeps cannot
/// see: the same true location q_a is queried `repeats` times against one
/// FeedbackStore; each completed run feeds its observed selectivities
/// back, so run 0 pays the cold discovery cost and later runs warm-start
/// from the accumulated calibration. Serial by design (run i+1 depends on
/// run i's observations). Chaos fields of `opts` apply, with fault draws
/// keyed to (fault_seed + run index) so each run's draw sequence is
/// deterministic. The store key is FeedbackStore::Key(query_id,
/// ess.dims()); pass a fresh store to start cold, or a null store to
/// disable feedback entirely — every run then repeats the cold discovery
/// (the baseline the warm runs are measured against), through the exact
/// same code path.
std::vector<RepeatedRunStats> EvaluateRepeated(
    const DiscoveryAlgorithm& algo, const Ess& ess, const GridLoc& qa,
    const std::string& query_id, feedback::FeedbackStore* store, int repeats,
    const EvalOptions& opts = EvalOptions{});

}  // namespace robustqp

#endif  // ROBUSTQP_HARNESS_EVALUATOR_H_
