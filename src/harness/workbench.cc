#include "harness/workbench.h"

#include <map>
#include <mutex>
#include <sstream>

#include "common/status.h"
#include "workloads/job.h"
#include "workloads/queries.h"
#include "workloads/tpcds.h"

namespace robustqp {

namespace {

std::string ConfigKey(const std::string& id, const Ess::Config& c) {
  std::ostringstream os;
  os << id << "|" << c.min_sel << "|" << c.points_per_dim << "|"
     << c.contour_cost_ratio << "|" << c.cost_model.params().scan_tuple << ","
     << c.cost_model.params().hash_build_tuple << ","
     << c.cost_model.params().hash_probe_tuple << ","
     << c.cost_model.params().nlj_materialize_tuple << ","
     << c.cost_model.params().nlj_pair << ","
     << c.cost_model.params().join_output_tuple << "|"
     << static_cast<int>(c.build_mode) << "|" << c.recost_lambda << "|"
     << c.refine_fallback_fraction;
  return os.str();
}

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

std::shared_ptr<Catalog> Workbench::TpcdsCatalog() {
  static std::shared_ptr<Catalog> catalog = BuildTpcdsCatalog();
  return catalog;
}

std::shared_ptr<Catalog> Workbench::JobCatalog() {
  static std::shared_ptr<Catalog> catalog = BuildJobCatalog();
  return catalog;
}

const Workbench::Entry& Workbench::Get(const std::string& id,
                                       const Ess::Config& config) {
  static std::map<std::string, std::unique_ptr<Entry>>* registry =
      new std::map<std::string, std::unique_ptr<Entry>>();
  std::lock_guard<std::mutex> lock(RegistryMutex());
  const std::string key = ConfigKey(id, config);
  auto it = registry->find(key);
  if (it != registry->end()) return *it->second;

  auto entry = std::make_unique<Entry>();
  entry->catalog = IsJobQuery(id) ? JobCatalog() : TpcdsCatalog();
  entry->query = std::make_unique<Query>(MakeSuiteQuery(id));
  RQP_CHECK(entry->query->Validate(*entry->catalog).ok());
  entry->ess = Ess::Build(*entry->catalog, *entry->query, config);
  return *registry->emplace(key, std::move(entry)).first->second;
}

}  // namespace robustqp
