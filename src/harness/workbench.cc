#include "harness/workbench.h"

#include "common/status.h"

namespace robustqp {

std::shared_ptr<Catalog> Workbench::TpcdsCatalog() {
  return ContextCache::TpcdsCatalog();
}

std::shared_ptr<Catalog> Workbench::JobCatalog() {
  return ContextCache::JobCatalog();
}

const Workbench::Entry& Workbench::Get(const std::string& id,
                                       const Ess::Config& config) {
  Result<std::shared_ptr<const Entry>> entry =
      ContextCache::Default().Get(id, config);
  // The old contract aborted on any failure (unknown id, failed build);
  // keep it — fallible callers use ContextCache directly.
  RQP_CHECK(entry.ok());
  // Default() never evicts, so the shared_ptr it retains keeps *entry
  // alive for the process: handing out a reference is sound.
  return **entry;
}

}  // namespace robustqp
