#include "harness/trace_printer.h"

#include <algorithm>
#include <cctype>

#include "common/table_printer.h"

namespace robustqp {

namespace {

std::string StepPlanLabel(const ExecutionStep& step) {
  std::string name = step.plan_name;
  if (step.spill_dim >= 0 && !name.empty()) {
    // Spill-mode executions are conventionally lower-cased (p7 vs P7).
    name[0] = static_cast<char>(std::tolower(static_cast<unsigned char>(name[0])));
    name += "[e" + std::to_string(step.spill_dim + 1) + "]";
  }
  return name;
}

}  // namespace

void PrintExecutionTrace(const Ess&, const DiscoveryResult& result,
                         std::ostream& os) {
  TablePrinter table({"step", "contour", "plan", "budget", "charged", "done",
                      "q_run"});
  int n = 0;
  for (const ExecutionStep& step : result.steps) {
    std::string qrun = "(";
    for (size_t d = 0; d < step.qrun.size(); ++d) {
      if (d > 0) qrun += ", ";
      qrun += TablePrinter::Num(step.qrun[d] * 100.0, 3) + "%";
    }
    qrun += ")";
    table.AddRow({std::to_string(++n), "IC" + std::to_string(step.contour + 1),
                  StepPlanLabel(step), TablePrinter::Num(step.budget, 0),
                  TablePrinter::Num(step.cost_charged, 0),
                  step.completed ? "yes" : "no", qrun});
  }
  table.Print(os);
  os << "total cost: " << TablePrinter::Num(result.total_cost, 0)
     << (result.completed ? "  (query completed at contour IC" +
                                std::to_string(result.final_contour + 1) + ")"
                          : "  (DID NOT COMPLETE)")
     << "\n";
}

void PrintContourDrilldown(const Ess& ess, const DiscoveryResult& result,
                           std::ostream& os, double seconds_per_unit) {
  std::vector<std::string> header;
  header.push_back("contour");
  for (int d = 0; d < ess.dims(); ++d) {
    header.push_back("e" + std::to_string(d + 1) + " (" +
                     ess.query().EppLabel(d) + ")");
  }
  header.push_back(seconds_per_unit > 0.0 ? "time (s)" : "cum. cost");
  TablePrinter table(header);

  double cum = 0.0;
  for (const ExecutionStep& step : result.steps) {
    cum += step.cost_charged;
    std::vector<std::string> row;
    row.push_back(std::to_string(step.contour + 1));
    for (int d = 0; d < ess.dims(); ++d) {
      std::string cell =
          step.qrun.empty()
              ? "-"
              : TablePrinter::Num(step.qrun[static_cast<size_t>(d)] * 100.0, 3);
      if (d == step.spill_dim || (step.spill_dim < 0 && d == 0)) {
        cell += " (" + StepPlanLabel(step) + ")";
      }
      row.push_back(std::move(cell));
    }
    row.push_back(TablePrinter::Num(
        seconds_per_unit > 0.0 ? cum * seconds_per_unit : cum,
        seconds_per_unit > 0.0 ? 4 : 1));
    table.AddRow(std::move(row));
  }
  table.Print(os);
}

}  // namespace robustqp
