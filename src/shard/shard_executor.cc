#include "shard/shard_executor.h"

#include <algorithm>

namespace robustqp {
namespace shard {

ShardLayout MakeShardLayout(int64_t num_rows, int num_shards) {
  ShardLayout out;
  out.num_shards = std::max(1, num_shards);
  out.num_chunks = ChunkCount(num_rows);
  out.worker_chunks.assign(static_cast<size_t>(out.num_shards), {});
  for (int64_t c = 0; c < out.num_chunks; ++c) {
    out.worker_chunks[static_cast<size_t>(ShardOfChunk(c, out.num_shards))]
        .push_back(c);
  }
  return out;
}

namespace {
Executor::Options ClampShards(Executor::Options options) {
  options.num_shards = std::max(1, options.num_shards);
  return options;
}
}  // namespace

ShardExecutor::ShardExecutor(const Catalog* catalog, CostModel cost_model,
                             Executor::Options options)
    : executor_(catalog, cost_model, ClampShards(options)) {}

Result<ExecutionResult> ShardExecutor::Execute(const Plan& plan,
                                               double budget) const {
  return executor_.Execute(plan, budget);
}

Result<ExecutionResult> ShardExecutor::ExecuteSpill(const Plan& plan,
                                                    int spill_node_id,
                                                    double budget) const {
  return executor_.ExecuteSpill(plan, spill_node_id, budget);
}

ComposedMso ShardExecutor::ComposeBound(double per_shard_guarantee) const {
  return ComposeMsoBound(per_shard_guarantee, num_shards());
}

}  // namespace shard
}  // namespace robustqp
