#include "shard/chunking.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace robustqp {
namespace shard {

int64_t ChunkCount(int64_t num_rows) {
  return (num_rows + kShardChunkRows - 1) / kShardChunkRows;
}

int64_t ChunkBegin(int64_t chunk) { return chunk * kShardChunkRows; }

int64_t ChunkEnd(int64_t chunk, int64_t num_rows) {
  return std::min<int64_t>(num_rows, (chunk + 1) * kShardChunkRows);
}

int ShardOfChunk(int64_t chunk, int num_shards) {
  RQP_CHECK(num_shards >= 1);
  return static_cast<int>(chunk % num_shards);
}

ChunkMatch ClassifyChunk(const ColumnData& col, CompareOp op, double value,
                         int64_t chunk) {
  if (std::isnan(value)) return ChunkMatch::kNone;
  const ZoneMap& z = col.chunk_zones();
  if (chunk < 0 || chunk >= z.num_blocks()) return ChunkMatch::kSome;
  const size_t i = static_cast<size_t>(chunk);
  const double lo = z.min[i];
  const double hi = z.max[i];
  const bool nan = !z.has_nan.empty() && z.has_nan[i] != 0;
  // Same verdict table as the per-block classifier (kernels.cc
  // ClassifyBlock): lo > hi means no comparable value in the chunk.
  if (lo > hi) return ChunkMatch::kNone;
  switch (op) {
    case CompareOp::kLt:
      if (lo >= value) return ChunkMatch::kNone;
      if (hi < value && !nan) return ChunkMatch::kAll;
      return ChunkMatch::kSome;
    case CompareOp::kLe:
      if (lo > value) return ChunkMatch::kNone;
      if (hi <= value && !nan) return ChunkMatch::kAll;
      return ChunkMatch::kSome;
    case CompareOp::kGt:
      if (hi <= value) return ChunkMatch::kNone;
      if (lo > value && !nan) return ChunkMatch::kAll;
      return ChunkMatch::kSome;
    case CompareOp::kGe:
      if (hi < value) return ChunkMatch::kNone;
      if (lo >= value && !nan) return ChunkMatch::kAll;
      return ChunkMatch::kSome;
    case CompareOp::kEq:
      if (value < lo || value > hi) return ChunkMatch::kNone;
      if (lo == value && hi == value && !nan) return ChunkMatch::kAll;
      return ChunkMatch::kSome;
  }
  return ChunkMatch::kSome;
}

void ShardReport::Merge(const ShardReport& o) {
  num_shards = std::max(num_shards, o.num_shards);
  chunks_total += o.chunks_total;
  chunks_scanned += o.chunks_scanned;
  chunks_pruned += o.chunks_pruned;
  straggler_retries += o.straggler_retries;
  lost_chunks += o.lost_chunks;
  retried_cost += o.retried_cost;
  if (shard_cost.size() < o.shard_cost.size()) {
    shard_cost.resize(o.shard_cost.size(), 0.0);
  }
  for (size_t s = 0; s < o.shard_cost.size(); ++s) {
    shard_cost[s] += o.shard_cost[s];
  }
}

}  // namespace shard
}  // namespace robustqp
