// Chunked table partitioning for sharded scatter-gather execution.
//
// A fact table is partitioned into fixed row-range *chunks* of
// kShardChunkRows rows (storage/table.h), a whole multiple of the
// 4096-row zone-map block so chunk boundaries never split a block:
// per-chunk zone summaries are exact folds of the block zone maps, and
// chunk-local scans reuse the batch engine's block-aligned morsel grid
// unchanged. Chunks are assigned to the N simulated workers ("shards")
// round-robin by chunk index, so the assignment is a pure function of
// (chunk, num_shards) — no scheduler state, no races, and the gather
// phase can merge per-chunk partials in ascending chunk order to
// reproduce the unsharded sequential row order bit-for-bit (the PR-3
// worker-order merge discipline at chunk granularity).
//
// ClassifyChunk answers what a chunk's zone summary proves about
// `col OP value` over the *whole* chunk, with the same conservative
// semantics as the per-block classifier (exec/kernels.h): kNone / kAll
// only when provable, kSome otherwise, NaN data rows veto kAll, a NaN
// literal satisfies nothing. Because the chunk summary is a fold, its
// verdicts are equal-or-weaker than per-block classification — a chunk
// kAll implies every block kAll, a chunk kNone implies every block
// kNone — which is exactly what whole-chunk pruning needs to charge
// counts identical to per-batch evaluation without touching a row.

#ifndef ROBUSTQP_SHARD_CHUNKING_H_
#define ROBUSTQP_SHARD_CHUNKING_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "storage/table.h"

namespace robustqp {
namespace shard {

/// Number of chunks covering `num_rows` rows (0 for an empty table).
int64_t ChunkCount(int64_t num_rows);

/// First row of `chunk`.
int64_t ChunkBegin(int64_t chunk);

/// One past the last row of `chunk` (clamped to `num_rows`).
int64_t ChunkEnd(int64_t chunk, int64_t num_rows);

/// The shard (simulated worker) that owns `chunk`: round-robin by chunk
/// index, so the map is schedule-independent and every shard's chunk set
/// is an ascending arithmetic sequence.
int ShardOfChunk(int64_t chunk, int num_shards);

/// What a chunk zone summary proves about `col OP value` over the chunk.
enum class ChunkMatch {
  kNone,  // no row in the chunk can satisfy the predicate
  kAll,   // every row in the chunk satisfies the predicate
  kSome,  // undecided: scan the chunk
};

/// Classifies the whole chunk against the predicate using the column's
/// chunk-granularity zone summary (ColumnData::chunk_zones). Returns
/// kSome when the summary is absent (table not finalized) or the chunk
/// index is out of its range.
ChunkMatch ClassifyChunk(const ColumnData& col, CompareOp op, double value,
                         int64_t chunk);

/// Per-run sharded-execution accounting, carried in ExecutionResult.
/// `num_shards == 1` (the default) means the run never scattered.
/// Counters are additive across the scan pipelines of one run.
///
/// Exactness note: the *binding* cost aggregation across shards is the
/// integer event-count merge of the per-chunk cost ledgers — the merged
/// ledger reduces through the canonical CostLedger::Total to a cost_used
/// bit-identical to the unsharded run. `shard_cost` is the per-shard
/// decomposition of that total (each shard's chunk ledgers reduced
/// separately), reported for the per-shard MSO statement (shard/mso.h);
/// its floating-point sum may differ from cost_used in the last ulp.
struct ShardReport {
  int num_shards = 1;
  /// Chunks across all scan pipelines of the run.
  int64_t chunks_total = 0;
  /// Chunks whose rows were actually evaluated.
  int64_t chunks_scanned = 0;
  /// Chunks skipped whole by the chunk zone summary (counts still
  /// charged exactly as if scanned — pruning is physical-only).
  int64_t chunks_pruned = 0;
  /// shard.straggler faults: shards speculatively re-dispatched.
  int64_t straggler_retries = 0;
  /// shard.lost_chunk faults: chunks re-executed on a replica.
  int64_t lost_chunks = 0;
  /// Cost units charged into cost_used for work lost to shard faults
  /// (doomed primary attempts and speculative duplicates).
  double retried_cost = 0.0;
  /// Per-shard cost decomposition (diagnostic; see exactness note).
  std::vector<double> shard_cost;

  void Merge(const ShardReport& o);
  /// True iff the run scattered at least one pipeline.
  bool Any() const { return chunks_total > 0; }
};

}  // namespace shard
}  // namespace robustqp

#endif  // ROBUSTQP_SHARD_CHUNKING_H_
