#include "shard/mso.h"

#include <algorithm>

namespace robustqp {
namespace shard {

ComposedMso ComposeMsoBound(double per_shard_guarantee, int num_shards) {
  ComposedMso out;
  out.num_shards = std::max(1, num_shards);
  out.per_shard_guarantee = per_shard_guarantee;
  // Additive cost over the chunk partition: the global bound is the max
  // of the per-shard guarantees (see the header's derivation), which for
  // homogeneous shards is the single-platform guarantee itself.
  out.composed = per_shard_guarantee;
  return out;
}

double ComposeShardGuarantees(const std::vector<double>& guarantees) {
  double composed = 0.0;
  for (double g : guarantees) composed = std::max(composed, g);
  return composed;
}

}  // namespace shard
}  // namespace robustqp
