// Exact per-shard MSO composition.
//
// The paper's guarantees (SpillBound's D^2 + 3D, PlanBouquet's 4|contours|)
// bound the *suboptimality* cost_used / opt of one execution platform.
// Sharded scatter-gather extends the statement to N workers:
//
//   * Chunk ownership is a pure function of (chunk, num_shards), so each
//     shard s executes a fixed sub-relation R_s of every fact table, and
//     the discovery protocol run against the sharded executor is the same
//     protocol run against the union — budgets, contours, and spill
//     decisions are driven by the globally merged cost ledger, which
//     aggregates the per-chunk integer event counts exactly (no
//     floating-point reassociation; see shard/chunking.h).
//
//   * Cost is additive across shards: cost_used = sum_s cost_s and
//     opt = sum_s opt_s, where opt_s is the oracle-optimal cost of the
//     work shard s owns (the optimal plan executes the same chunks, so
//     its cost decomposes over the same partition).
//
//   * Hence if every shard's suboptimality is bounded by its guarantee
//     G_s, then
//
//       cost_used = sum_s cost_s <= sum_s G_s * opt_s
//                 <= (max_s G_s) * sum_s opt_s = (max_s G_s) * opt,
//
//     so the composed global bound is the *maximum* of the per-shard
//     guarantees — with homogeneous shards (the in-process simulation),
//     exactly the single-platform guarantee. Sharding is guarantee-
//     preserving, not guarantee-degrading: the D^2 + 3D bound survives
//     scale-out unchanged, which is the platform-independence claim
//     extended to distributed execution.
//
// Shard faults keep the accounting valid the same way transient retries
// do (PR 4): lost work (doomed chunk primaries, speculative straggler
// duplicates) is *charged into cost_used*, so the realized suboptimality
// visibly includes recovery overhead rather than silently exceeding the
// stated bound.

#ifndef ROBUSTQP_SHARD_MSO_H_
#define ROBUSTQP_SHARD_MSO_H_

#include <vector>

namespace robustqp {
namespace shard {

/// The composed bound for a sharded run.
struct ComposedMso {
  int num_shards = 1;
  /// The guarantee each simulated worker runs under (the discovery
  /// algorithm's single-platform MSO bound).
  double per_shard_guarantee = 0.0;
  /// Global bound: max over shards (== per_shard_guarantee for the
  /// homogeneous in-process simulation).
  double composed = 0.0;
};

/// Composes a homogeneous per-shard guarantee over `num_shards` workers.
/// `num_shards` < 1 is clamped to 1; a guarantee of 0 (algorithm without
/// a bound, e.g. the native baseline) composes to 0.
ComposedMso ComposeMsoBound(double per_shard_guarantee, int num_shards);

/// Heterogeneous composition: the max of the per-shard guarantees
/// (0 for an empty vector).
double ComposeShardGuarantees(const std::vector<double>& guarantees);

}  // namespace shard
}  // namespace robustqp

#endif  // ROBUSTQP_SHARD_MSO_H_
