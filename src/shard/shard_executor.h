// Scatter-gather execution facade: N simulated workers over one Executor.
//
// A worker ("shard") is a chunk set plus a slice of the executor's
// ThreadPool. The simulation is in-process: ShardExecutor wraps an
// Executor whose Options::num_shards drives the batch engine's sharded
// driver (exec/batch_engine.cc) — chunks scatter round-robin across
// shards, each shard runs the existing batch pipelines over its chunks
// with a private cost ledger and NodeStats, and the gather merges the
// per-chunk partials in ascending chunk order. Results, cost_used, and
// every NodeStats counter are bit-identical to the unsharded run at any
// (shard count x thread count); the per-run ShardReport
// (ExecutionResult::shard) carries chunk/prune/fault accounting and the
// per-shard cost decomposition for the composed MSO statement
// (shard/mso.h).

#ifndef ROBUSTQP_SHARD_SHARD_EXECUTOR_H_
#define ROBUSTQP_SHARD_SHARD_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "exec/executor.h"
#include "shard/chunking.h"
#include "shard/mso.h"

namespace robustqp {
namespace shard {

/// Static chunk-to-worker assignment for one table: worker w owns the
/// ascending chunk sequence {c : c mod num_shards == w}.
struct ShardLayout {
  int num_shards = 1;
  int64_t num_chunks = 0;
  std::vector<std::vector<int64_t>> worker_chunks;  // per worker, ascending
};

/// Computes the layout for a table of `num_rows` rows.
ShardLayout MakeShardLayout(int64_t num_rows, int num_shards);

/// The sharded execution front. Thin by design: all scatter-gather
/// mechanics live in the batch engine so the sharded and unsharded paths
/// share one compiled pipeline; this class owns the worker simulation's
/// configuration and the composed-bound statement.
class ShardExecutor {
 public:
  /// `options.num_shards` is the worker count (clamped to >= 1);
  /// `options.num_threads` is the pool the workers share.
  ShardExecutor(const Catalog* catalog, CostModel cost_model,
                Executor::Options options);

  /// Runs the full plan (budget < 0 = unlimited). Only full, non-spill
  /// runs scatter — budgeted and spill executions keep the sequential
  /// single-platform semantics the learning primitive depends on — but
  /// the result is bit-identical either way.
  Result<ExecutionResult> Execute(const Plan& plan, double budget = -1.0) const;

  /// Spill-mode execution (never scatters; see Execute).
  Result<ExecutionResult> ExecuteSpill(const Plan& plan, int spill_node_id,
                                       double budget) const;

  /// The composed global MSO bound when every worker runs a discovery
  /// algorithm with the given single-platform guarantee.
  ComposedMso ComposeBound(double per_shard_guarantee) const;

  int num_shards() const { return executor_.options().num_shards; }
  const Executor& executor() const { return executor_; }

 private:
  Executor executor_;
};

}  // namespace shard
}  // namespace robustqp

#endif  // ROBUSTQP_SHARD_SHARD_EXECUTOR_H_
