#include "common/log_grid.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace robustqp {

LogAxis::LogAxis(double min_sel, int points) {
  RQP_CHECK(points >= 2);
  RQP_CHECK(min_sel > 0.0 && min_sel < 1.0);
  values_.resize(static_cast<size_t>(points));
  const double lmin = std::log(min_sel);
  for (int i = 0; i < points; ++i) {
    const double frac = static_cast<double>(i) / (points - 1);
    values_[static_cast<size_t>(i)] = std::exp(lmin * (1.0 - frac));
  }
  values_.front() = min_sel;
  values_.back() = 1.0;
}

int LogAxis::FloorIndex(double sel) const {
  // Relative tolerance so that values equal to an axis point up to
  // rounding are treated as that point.
  auto it = std::upper_bound(values_.begin(), values_.end(), sel * (1.0 + 1e-9));
  return static_cast<int>(it - values_.begin()) - 1;
}

int LogAxis::CeilIndex(double sel) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), sel * (1.0 - 1e-9));
  return static_cast<int>(it - values_.begin());
}

int LogAxis::NearestIndex(double sel) const {
  if (sel <= values_.front()) return 0;
  if (sel >= values_.back()) return points() - 1;
  int lo = FloorIndex(sel);
  int hi = lo + 1;
  const double dlo = std::fabs(std::log(sel) - std::log(values_[lo]));
  const double dhi = std::fabs(std::log(values_[hi]) - std::log(sel));
  return dlo <= dhi ? lo : hi;
}

}  // namespace robustqp
