#include "common/fault.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace robustqp {

namespace {

constexpr const char* kSiteNames[fault_site::kNumSites] = {
    "exec.scan.read",      // kExecScanRead
    "exec.hashjoin.build", // kExecHashJoinBuild
    "exec.nljoin.pair",    // kExecNlJoinPair
    "exec.sort.merge",     // kExecSortMerge
    "storage.index.probe", // kStorageIndexProbe
    "exec.batch.pipeline", // kExecBatchPipeline
    "exec.morsel.scan",    // kExecMorselScan
    "exec.spill.run",      // kExecSpillRun
    "optimizer.dp",        // kOptimizerDp
    "ess.corner_opt",      // kEssCornerOpt
    "io.ess_load",         // kIoEssLoad
    "oracle.cost_model",   // kOracleCostModel
    "shard.straggler",     // kShardStraggler
    "shard.lost_chunk",    // kShardLostChunk
    "feedback.store_load", // kFeedbackStoreLoad
    "storage.page_fault",  // kStoragePageFault
};

uint64_t SplitMix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Thread-local draw stream: a stream id plus one counter per site.
struct StreamState {
  uint64_t stream = 0;
  uint64_t counters[fault_site::kNumSites] = {};
};

thread_local StreamState t_stream;

bool MatchSite(const std::string& pattern, const char* name) {
  if (!pattern.empty() && pattern.back() == '*') {
    return std::strncmp(name, pattern.c_str(), pattern.size() - 1) == 0;
  }
  return pattern == name;
}

}  // namespace

const char* FaultSiteName(int site) {
  RQP_CHECK(site >= 0 && site < fault_site::kNumSites);
  return kSiteNames[site];
}

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  FaultInjector& inj = Global();
  if (spec.empty()) {
    Disarm();
    return Status::OK();
  }
  Clause resolved[fault_site::kNumSites];

  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause_str = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause_str.empty()) continue;

    const size_t colon = clause_str.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("fault clause '" + clause_str +
                                     "' is not 'pattern:params'");
    }
    const std::string pattern = clause_str.substr(0, colon);
    // A non-wildcard pattern must name a registered site (catch typos).
    if (pattern.find('*') == std::string::npos) {
      bool known = false;
      for (int s = 0; s < fault_site::kNumSites; ++s) {
        if (pattern == kSiteNames[s]) known = true;
      }
      if (!known) {
        return Status::InvalidArgument("unknown fault site '" + pattern + "'");
      }
    }

    Clause clause;
    clause.active = true;
    size_t p = colon + 1;
    while (p < clause_str.size()) {
      size_t pend = clause_str.find(',', p);
      if (pend == std::string::npos) pend = clause_str.size();
      const std::string param = clause_str.substr(p, pend - p);
      p = pend + 1;
      if (param.empty()) continue;
      const size_t eq = param.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault param '" + param +
                                       "' is not 'key=value'");
      }
      const std::string key = param.substr(0, eq);
      const std::string value = param.substr(eq + 1);
      try {
        if (key == "p") {
          clause.p = std::stod(value);
          if (!(clause.p >= 0.0 && clause.p <= 1.0)) {
            return Status::InvalidArgument("fault probability out of [0,1]: " +
                                           value);
          }
        } else if (key == "after") {
          clause.after = std::stoll(value);
          if (clause.after < 0) {
            return Status::InvalidArgument("fault 'after' must be >= 0");
          }
        } else if (key == "kind") {
          if (value == "transient") {
            clause.kind = FaultKind::kTransient;
          } else if (value == "permanent") {
            clause.kind = FaultKind::kPermanent;
          } else if (value == "spike") {
            clause.kind = FaultKind::kCostSpike;
          } else if (value == "corrupt") {
            clause.kind = FaultKind::kCorrupt;
          } else {
            return Status::InvalidArgument("unknown fault kind '" + value +
                                           "'");
          }
        } else if (key == "mult") {
          clause.mult = std::stod(value);
          if (!(clause.mult >= 1.0)) {
            return Status::InvalidArgument("fault 'mult' must be >= 1");
          }
        } else if (key == "scale") {
          clause.scale = std::stod(value);
          if (!(clause.scale >= 1.0)) {
            return Status::InvalidArgument("fault 'scale' must be >= 1");
          }
        } else {
          return Status::InvalidArgument("unknown fault param '" + key + "'");
        }
      } catch (const std::exception&) {
        return Status::InvalidArgument("unparsable fault value '" + value +
                                       "'");
      }
    }

    // Later clauses override earlier ones on the sites they match.
    for (int s = 0; s < fault_site::kNumSites; ++s) {
      if (MatchSite(pattern, kSiteNames[s])) resolved[s] = clause;
    }
  }

  for (int s = 0; s < fault_site::kNumSites; ++s) {
    inj.clauses_[s] = resolved[s];
    inj.counters_[s].evaluations.store(0, std::memory_order_relaxed);
    inj.counters_[s].transients.store(0, std::memory_order_relaxed);
    inj.counters_[s].permanents.store(0, std::memory_order_relaxed);
    inj.counters_[s].spikes.store(0, std::memory_order_relaxed);
    inj.counters_[s].corruptions.store(0, std::memory_order_relaxed);
  }
  inj.seed_ = seed;
  inj.spec_ = spec;
  armed_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Disarm() { armed_.store(false, std::memory_order_relaxed); }

FaultAction FaultInjector::Evaluate(int site) {
  RQP_CHECK(site >= 0 && site < fault_site::kNumSites);
  FaultAction action;
  const Clause& clause = clauses_[site];
  StreamState& st = t_stream;
  const uint64_t counter = st.counters[site]++;
  counters_[site].evaluations.fetch_add(1, std::memory_order_relaxed);
  if (!clause.active) return action;

  bool fire;
  uint64_t h = seed_;
  h = SplitMix64(h ^ (0x9E3779B97F4A7C15ull * (st.stream + 1)));
  h = SplitMix64(h ^ (0xBF58476D1CE4E5B9ull * (static_cast<uint64_t>(site) + 1)));
  h = SplitMix64(h + counter);
  if (clause.after >= 0) {
    fire = counter == static_cast<uint64_t>(clause.after);
  } else {
    fire = ToUnit(h) < clause.p;
  }
  if (!fire) return action;

  const uint64_t h2 = SplitMix64(h ^ 0x94D049BB133111EBull);
  action.kind = clause.kind;
  action.u = ToUnit(h2);
  switch (clause.kind) {
    case FaultKind::kTransient:
      counters_[site].transients.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kPermanent:
      counters_[site].permanents.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kCostSpike:
      action.magnitude = clause.mult;
      counters_[site].spikes.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kCorrupt:
      // Log-uniform factor in [1/scale, scale].
      action.magnitude = std::pow(clause.scale, 2.0 * action.u - 1.0);
      counters_[site].corruptions.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::kNone:
      break;
  }
  return action;
}

std::vector<FaultSiteStats> FaultInjector::Snapshot() const {
  std::vector<FaultSiteStats> out(fault_site::kNumSites);
  for (int s = 0; s < fault_site::kNumSites; ++s) {
    out[static_cast<size_t>(s)].evaluations =
        counters_[s].evaluations.load(std::memory_order_relaxed);
    out[static_cast<size_t>(s)].transients =
        counters_[s].transients.load(std::memory_order_relaxed);
    out[static_cast<size_t>(s)].permanents =
        counters_[s].permanents.load(std::memory_order_relaxed);
    out[static_cast<size_t>(s)].spikes =
        counters_[s].spikes.load(std::memory_order_relaxed);
    out[static_cast<size_t>(s)].corruptions =
        counters_[s].corruptions.load(std::memory_order_relaxed);
  }
  return out;
}

std::string FaultInjector::StatsSummary() const {
  const std::vector<FaultSiteStats> snap = Snapshot();
  std::string out;
  char line[160];
  for (int s = 0; s < fault_site::kNumSites; ++s) {
    const FaultSiteStats& st = snap[static_cast<size_t>(s)];
    if (st.evaluations == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  %-20s %10lld evals  %lld transient  %lld permanent  "
                  "%lld spike  %lld corrupt\n",
                  kSiteNames[s], static_cast<long long>(st.evaluations),
                  static_cast<long long>(st.transients),
                  static_cast<long long>(st.permanents),
                  static_cast<long long>(st.spikes),
                  static_cast<long long>(st.corruptions));
    out += line;
  }
  return out;
}

FaultStreamScope::FaultStreamScope(uint64_t stream) {
  StreamState& st = t_stream;
  saved_stream_ = st.stream;
  for (int s = 0; s < fault_site::kNumSites; ++s) {
    saved_counters_[s] = st.counters[s];
    st.counters[s] = 0;
  }
  st.stream = stream;
}

FaultStreamScope::~FaultStreamScope() {
  StreamState& st = t_stream;
  st.stream = saved_stream_;
  for (int s = 0; s < fault_site::kNumSites; ++s) {
    st.counters[s] = saved_counters_[s];
  }
}

void RobustnessReport::Merge(const RobustnessReport& o) {
  transient_retries += o.transient_retries;
  permanent_faults += o.permanent_faults;
  cost_spikes += o.cost_spikes;
  corruptions += o.corruptions;
  engine_degradations += o.engine_degradations;
  serial_degradations += o.serial_degradations;
  sweep_degradations += o.sweep_degradations;
  escalations += o.escalations;
  pcm_violations += o.pcm_violations;
  contour_clamps += o.contour_clamps;
  retries_exhausted += o.retries_exhausted;
  shard_stragglers += o.shard_stragglers;
  shard_lost_chunks += o.shard_lost_chunks;
  feedback_degradations += o.feedback_degradations;
  page_fault_degradations += o.page_fault_degradations;
  retried_cost += o.retried_cost;
  spike_cost += o.spike_cost;
  // mso_delta is a harness-level derived quantity, not additive.
}

bool RobustnessReport::Any() const {
  return transient_retries || permanent_faults || cost_spikes || corruptions ||
         engine_degradations || serial_degradations || sweep_degradations ||
         escalations || pcm_violations || contour_clamps || retries_exhausted ||
         shard_stragglers || shard_lost_chunks || feedback_degradations ||
         page_fault_degradations || retried_cost != 0.0 || spike_cost != 0.0;
}

std::string RobustnessReport::Summary() const {
  if (!Any()) return "";
  std::string out;
  char buf[64];
  const auto add = [&](const char* name, int64_t v) {
    if (v == 0) return;
    std::snprintf(buf, sizeof(buf), "%s%s=%lld", out.empty() ? "" : " ", name,
                  static_cast<long long>(v));
    out += buf;
  };
  add("retries", transient_retries);
  add("permanent", permanent_faults);
  add("spikes", cost_spikes);
  add("corruptions", corruptions);
  add("degrade_engine", engine_degradations);
  add("degrade_serial", serial_degradations);
  add("degrade_sweep", sweep_degradations);
  add("escalations", escalations);
  add("pcm_violations", pcm_violations);
  add("contour_clamps", contour_clamps);
  add("retries_exhausted", retries_exhausted);
  add("shard_stragglers", shard_stragglers);
  add("shard_lost_chunks", shard_lost_chunks);
  add("feedback_degraded", feedback_degradations);
  add("page_fault_degraded", page_fault_degradations);
  if (retried_cost != 0.0) {
    std::snprintf(buf, sizeof(buf), " retried_cost=%.3g", retried_cost);
    out += buf;
  }
  if (spike_cost != 0.0) {
    std::snprintf(buf, sizeof(buf), " spike_cost=%.3g", spike_cost);
    out += buf;
  }
  if (mso_delta != 0.0) {
    std::snprintf(buf, sizeof(buf), " mso_delta=%.3g", mso_delta);
    out += buf;
  }
  return out;
}

FaultedRunOutcome RunWithFaultRetries(
    FaultInjector& inj, const std::vector<int>& sites, double budget,
    const std::function<FaultAttempt(double eff_budget,
                                     const FaultRunState& state)>& attempt) {
  FaultedRunOutcome out;
  FaultRunState state;
  double remaining = budget;  // < 0: unlimited
  double wasted = 0.0;

  for (int a = 0; a < kMaxFaultAttempts; ++a) {
    state.attempt = a;
    bool transient = false;
    double transient_u = 0.0;
    int permanent_site = -1;
    double spike = 1.0;
    for (int site : sites) {
      const FaultAction act = inj.Evaluate(site);
      if (!act) continue;
      // Degradation sites reroute execution instead of failing it; any
      // fault kind on them triggers the downgrade.
      if (site == fault_site::kExecBatchPipeline) {
        if (!state.degrade_engine) {
          state.degrade_engine = true;
          ++out.report.engine_degradations;
        }
        continue;
      }
      if (site == fault_site::kExecMorselScan) {
        if (!state.degrade_serial) {
          state.degrade_serial = true;
          ++out.report.serial_degradations;
        }
        continue;
      }
      switch (act.kind) {
        case FaultKind::kTransient:
          transient = true;
          transient_u = std::max(transient_u, act.u);
          break;
        case FaultKind::kPermanent:
          permanent_site = site;
          break;
        case FaultKind::kCostSpike:
          spike *= act.magnitude;
          ++out.report.cost_spikes;
          break;
        case FaultKind::kCorrupt:
          // Only statistic-producing sites interpret corruption; on an
          // execution site the draw is counted but has no effect.
          break;
        case FaultKind::kNone:
          break;
      }
    }

    if (permanent_site >= 0) {
      ++out.report.permanent_faults;
      out.status = Status::Internal(std::string("injected permanent fault at ") +
                                    FaultSiteName(permanent_site));
      out.cost_used = wasted;
      return out;
    }

    const double eff = remaining < 0.0 ? -1.0 : remaining / spike;
    const FaultAttempt res = attempt(eff, state);
    if (!res.status.ok()) {
      out.status = res.status;
      out.cost_used = wasted;
      return out;
    }
    const double attempt_cost = res.cost * spike;

    if (transient) {
      // The fault struck after fraction u of the attempt: that work is
      // lost, charged, and the attempt retried.
      const double lost = transient_u * attempt_cost;
      wasted += lost;
      ++out.report.transient_retries;
      out.report.retried_cost += lost;
      if (remaining >= 0.0) {
        remaining -= lost;
        if (remaining <= 0.0) {
          // Retries ate the whole budget: report the same non-completion a
          // failed contour execution has, with cost_used == budget.
          out.completed = false;
          out.cost_used = budget;
          return out;
        }
      }
      continue;
    }

    out.completed = res.completed;
    out.final_attempt_valid = true;
    if (res.completed) {
      out.cost_used = attempt_cost + wasted;
      if (spike > 1.0) out.report.spike_cost += (spike - 1.0) * res.cost;
      if (budget >= 0.0 && out.cost_used > budget) out.cost_used = budget;
    } else {
      // The attempt itself exhausted its effective budget; together with
      // the wasted work that is exactly the full budget.
      out.cost_used = budget >= 0.0 ? budget : attempt_cost + wasted;
    }
    return out;
  }

  ++out.report.retries_exhausted;
  if (budget >= 0.0) {
    out.completed = false;
    out.cost_used = std::min(budget, wasted);
    return out;
  }
  out.status = Status::Unavailable("transient-fault retries exhausted");
  return out;
}

}  // namespace robustqp
