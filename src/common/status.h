// Lightweight Status / Result error-handling primitives in the style of
// Apache Arrow and RocksDB: no exceptions cross library boundaries; fallible
// operations return Status (or Result<T> when they produce a value).

#ifndef ROBUSTQP_COMMON_STATUS_H_
#define ROBUSTQP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace robustqp {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnsupported,
  kInternal,
  /// A budgeted execution was terminated because it exhausted its budget.
  /// This is an expected outcome for the discovery algorithms, not a bug.
  kBudgetExhausted,
  /// A transient failure: the operation did not complete but retrying it
  /// may succeed (injected transient faults use this code).
  kUnavailable,
  /// The service's admission queue is full: the request was rejected
  /// before any work was done. Resubmitting once load drains may succeed.
  kResourceExhausted,
  /// The request's deadline elapsed (in the queue or mid-run) before a
  /// result was produced.
  kDeadlineExceeded,
};

/// Returns a human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// Stable client-visible error number for a StatusCode, shared by every
/// front-end: process exit codes (CLI, server binary) and the numeric field
/// of the TCP protocol's ERR lines. The mapping is part of the service API —
/// codes never change meaning, new codes only append. kOk maps to 0.
int ExitCodeFor(StatusCode code);

/// Outcome of a fallible operation that produces no value.
///
/// The OK state carries no allocation; error states carry a code and a
/// message. Copyable and cheaply movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True for failures worth retrying (kUnavailable).
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Outcome of a fallible operation that produces a T on success.
///
/// Holds either a value or a non-OK Status. Accessors assert on misuse in
/// debug builds; call ok() first.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status from `expr` out of the enclosing function.
#define RQP_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::robustqp::Status _st = (expr);       \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Asserts an invariant in all build modes; logs and aborts on violation.
#define RQP_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::robustqp::internal::CheckFailed(#cond, __FILE__, __LINE__);      \
    }                                                                    \
  } while (0)

namespace internal {
[[noreturn]] void CheckFailed(const char* cond, const char* file, int line);
}  // namespace internal

}  // namespace robustqp

#endif  // ROBUSTQP_COMMON_STATUS_H_
