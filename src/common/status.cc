#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace robustqp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kOutOfRange:
      return 4;
    case StatusCode::kUnsupported:
      return 5;
    case StatusCode::kInternal:
      return 6;
    case StatusCode::kBudgetExhausted:
      return 7;
    case StatusCode::kUnavailable:
      return 8;
    case StatusCode::kResourceExhausted:
      return 9;
    case StatusCode::kDeadlineExceeded:
      return 10;
  }
  return 6;  // unknown codes surface as Internal
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "RQP_CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace internal
}  // namespace robustqp
