#include "common/thread_pool.h"

#include <algorithm>

namespace robustqp {

Status StatusFromException(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return Status::Internal(std::string("task failed: ") + ex.what());
  } catch (...) {
    return Status::Internal("task failed with a non-std exception");
  }
}

int ThreadPool::DefaultThreads() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, std::min(hw, 16));
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads > 0 ? num_threads : DefaultThreads();
  workers_.reserve(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    RQP_CHECK(!stop_);
    tasks_.push(std::move(task));
    ++outstanding_;
  }
  task_ready_.notify_one();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return outstanding_ == 0; });
  if (first_error_ == nullptr) return Status::OK();
  std::exception_ptr e;
  std::swap(e, first_error_);
  return StatusFromException(e);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // An exception escaping a raw task must not terminate the process:
    // capture the first one for the next Wait() to surface.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error != nullptr && first_error_ == nullptr) first_error_ = error;
      if (--outstanding_ == 0) idle_.notify_all();
    }
  }
}

Status ParallelFor(ThreadPool* pool, int64_t total,
                   const std::function<void(int worker, int64_t begin,
                                            int64_t end)>& body) {
  if (total <= 0) return Status::OK();
  const int workers = pool->num_threads();
  const int64_t block = (total + workers - 1) / workers;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    const int64_t begin = static_cast<int64_t>(t) * block;
    const int64_t end = std::min<int64_t>(total, begin + block);
    if (begin >= end) break;
    pool->Submit([&body, &errors, t, begin, end] {
      try {
        body(t, begin, end);
      } catch (...) {
        errors[static_cast<size_t>(t)] = std::current_exception();
      }
    });
  }
  (void)pool->Wait();  // per-block capture above supersedes loop-level errors
  for (const std::exception_ptr& e : errors) {
    if (e) return StatusFromException(e);
  }
  return Status::OK();
}

}  // namespace robustqp
