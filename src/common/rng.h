// Deterministic random number utilities used by the synthetic data
// generators. All randomness in the repository flows through Rng with an
// explicit seed so that every experiment is exactly reproducible.

#ifndef ROBUSTQP_COMMON_RNG_H_
#define ROBUSTQP_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace robustqp {

/// Seeded pseudo-random generator with the distributions the data
/// generators need (uniform, zipfian, bounded normal).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Zipf-distributed rank in [1, n] with exponent theta (> 0). Implemented
  /// via inverse-CDF over a precomputable harmonic table for small n, or
  /// rejection-free approximation for large n.
  int64_t Zipf(int64_t n, double theta);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// A reusable Zipf sampler that precomputes the CDF once for a fixed
/// (n, theta); much faster than Rng::Zipf in generation loops.
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double theta);

  /// Draws a rank in [1, n].
  int64_t Sample(Rng* rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_COMMON_RNG_H_
