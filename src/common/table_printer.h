// Plain-text table rendering used by the benchmark harness to print the
// paper's tables and figure data series in a readable, diffable format.

#ifndef ROBUSTQP_COMMON_TABLE_PRINTER_H_
#define ROBUSTQP_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace robustqp {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders the header, a separator, and all rows to `os`.
  void Print(std::ostream& os) const;

  /// Formats a double with `digits` significant decimal places, trimming
  /// trailing zeros ("12.5", "0.04", "130").
  static std::string Num(double v, int digits = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_COMMON_TABLE_PRINTER_H_
