// Deterministic fault-injection framework.
//
// A process-wide FaultInjector exposes named fault *sites* (registered at
// compile time below) that hot paths evaluate with a single relaxed atomic
// load when injection is disabled — the disarmed branch is the entire
// overhead. When armed via a spec string such as
//
//   --faults "exec.*:p=0.01;optimizer.dp:after=100,kind=permanent"
//
// each evaluation of a matching site can yield a transient error, a
// permanent error, a cost/latency spike, or a stat corruption.
//
// Determinism model. Every draw is a pure hash of
// (seed, site, stream, per-stream-site counter): no global RNG state, no
// dependence on thread schedule. The *stream* is a thread-local id set via
// FaultStreamScope — parallel harnesses scope each unit of work (e.g. one
// evaluator grid location) to its own stream, so the fault sequence any
// unit observes is identical at any thread count and per-site totals are
// schedule-independent sums. Entering a scope also zeroes the per-site
// counters, making each unit's draw sequence self-contained.
//
// Degradation ladder (implemented by the consumers, reported here):
// batch engine -> tuple engine, morsel-parallel -> single-thread, ESS
// refinement -> exhaustive sweep, spill binary search -> clamped linear
// scan. Transient faults are retried with the faulted attempt's lost work
// charged to cost_used, keeping the doubling-sequence MSO accounting of
// the discovery algorithms valid; the charges are surfaced per run in a
// RobustnessReport.

#ifndef ROBUSTQP_COMMON_FAULT_H_
#define ROBUSTQP_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace robustqp {

/// What one fault-site evaluation resolved to.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// The operation fails partway through; retrying may succeed. The lost
  /// work (fraction `u` of the attempt) is charged to the caller.
  kTransient,
  /// The operation cannot succeed on this execution; no retry.
  kPermanent,
  /// The operation costs `magnitude` times its clean cost (latency/cost
  /// spike) — budgeted executions cover proportionally less work.
  kCostSpike,
  /// A statistic (cost-model output) is multiplied by `magnitude`; only
  /// sites that produce statistics interpret this kind.
  kCorrupt,
};

/// Outcome of evaluating a fault site once.
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  /// Severity draw in [0, 1): for transients, the fraction of the attempt
  /// completed (and therefore wasted) before the fault struck.
  double u = 0.0;
  /// Spike multiplier (>= 1) or corruption factor (log-uniform around 1).
  double magnitude = 1.0;

  explicit operator bool() const { return kind != FaultKind::kNone; }
};

/// Compile-time registry of fault sites. Names mirror the subsystem paths
/// they instrument; specs address them exactly or by '*' suffix wildcard.
namespace fault_site {
enum Site : int {
  kExecScanRead = 0,    // exec.scan.read
  kExecHashJoinBuild,   // exec.hashjoin.build
  kExecNlJoinPair,      // exec.nljoin.pair
  kExecSortMerge,       // exec.sort.merge
  kStorageIndexProbe,   // storage.index.probe (index-NL join probes)
  kExecBatchPipeline,   // exec.batch.pipeline (fault => degrade to tuple)
  kExecMorselScan,      // exec.morsel.scan (fault => degrade to serial)
  kExecSpillRun,        // exec.spill.run (spill-mode executions)
  kOptimizerDp,         // optimizer.dp
  kEssCornerOpt,        // ess.corner_opt (fault => degrade to sweep)
  kIoEssLoad,           // io.ess_load
  kOracleCostModel,     // oracle.cost_model (kCorrupt perturbs costs)
  kShardStraggler,      // shard.straggler (speculative re-dispatch of a shard)
  kShardLostChunk,      // shard.lost_chunk (chunk re-executed on a replica)
  kFeedbackStoreLoad,   // feedback.store_load (fault => cold-start degradation)
  kStoragePageFault,    // storage.page_fault (mmap block read fault =>
                        // block degrades to the resident decode path)
  kNumSites,
};
}  // namespace fault_site

/// Registry name of a site ("exec.scan.read").
const char* FaultSiteName(int site);

/// Cumulative per-site observation counters (order-independent sums, so
/// they are deterministic at any thread count).
struct FaultSiteStats {
  int64_t evaluations = 0;
  int64_t transients = 0;
  int64_t permanents = 0;
  int64_t spikes = 0;
  int64_t corruptions = 0;
};

/// Per-run robustness accounting surfaced by executors, oracles, discovery
/// algorithms and the evaluation harness. All counters are additive.
struct RobustnessReport {
  /// Attempts lost to transient faults and retried.
  int64_t transient_retries = 0;
  /// Executions killed by a permanent fault.
  int64_t permanent_faults = 0;
  /// Cost/latency spikes applied to attempts.
  int64_t cost_spikes = 0;
  /// Cost-model corruptions applied.
  int64_t corruptions = 0;
  /// Batch-engine pipelines degraded to the tuple engine.
  int64_t engine_degradations = 0;
  /// Morsel-parallel scans degraded to single-thread.
  int64_t serial_degradations = 0;
  /// ESS refinement builds degraded to the exhaustive sweep.
  int64_t sweep_degradations = 0;
  /// Budget doublings past the last contour needed to reach completion.
  int64_t escalations = 0;
  /// PCM violations detected (non-monotone spill costs) and clamped.
  int64_t pcm_violations = 0;
  /// Non-monotone contour budgets detected and clamped.
  int64_t contour_clamps = 0;
  /// Executions that hit the transient-retry cap.
  int64_t retries_exhausted = 0;
  /// Sharded runs: straggling shards speculatively re-dispatched.
  int64_t shard_stragglers = 0;
  /// Sharded runs: chunks lost mid-scan and re-executed on a replica.
  int64_t shard_lost_chunks = 0;
  /// Feedback-store loads that failed (feedback.store_load fault) and
  /// degraded the request to a cold start.
  int64_t feedback_degradations = 0;
  /// Mapped-storage blocks whose page read faulted (storage.page_fault)
  /// and were scanned via the resident decode path instead of the fused
  /// kernels. Purely physical: counts and cost_used are unchanged.
  int64_t page_fault_degradations = 0;
  /// Cost units charged for work lost to faulted attempts.
  double retried_cost = 0.0;
  /// Extra cost units charged by spikes on surviving attempts.
  double spike_cost = 0.0;
  /// Evaluator only: MSO minus the MSO recomputed without the per-run
  /// retried_cost — the suboptimality attributable to charged retries.
  double mso_delta = 0.0;

  void Merge(const RobustnessReport& o);
  /// True iff any counter is non-zero.
  bool Any() const;
  /// One-line human summary of the non-zero fields ("" when !Any()).
  std::string Summary() const;
};

/// The process-wide injector. Evaluate() is safe from any thread; arming
/// and disarming are not concurrent with evaluation (configure before
/// launching workers).
class FaultInjector {
 public:
  /// One relaxed load; the only cost injection adds to disarmed paths.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  static FaultInjector& Global();

  /// Parses `spec` ("clause;clause;..." with clause
  /// "pattern:param,param,..."; params p=<prob>, after=<n>,
  /// kind=transient|permanent|spike|corrupt, mult=<spike factor>,
  /// scale=<corruption spread>; pattern is a site name or a '*'-suffixed
  /// prefix; later clauses override earlier ones per site), installs it
  /// with `seed`, resets all stats, and arms the injector. An empty spec
  /// disarms. Returns InvalidArgument on malformed input (state is then
  /// unchanged).
  static Status Configure(const std::string& spec, uint64_t seed);

  /// Disables injection; Armed() becomes false.
  static void Disarm();

  /// Draws the action for one evaluation of `site` in the calling
  /// thread's stream, advancing that stream's per-site counter.
  FaultAction Evaluate(int site);

  /// Per-site cumulative stats since the last Configure.
  std::vector<FaultSiteStats> Snapshot() const;
  /// Multi-line "site: evaluations/fired-by-kind" rendering of Snapshot
  /// (sites with zero evaluations omitted).
  std::string StatsSummary() const;

  uint64_t seed() const { return seed_; }
  const std::string& spec() const { return spec_; }

 private:
  struct Clause {
    bool active = false;
    double p = 0.0;
    int64_t after = -1;  // >= 0: fire exactly on the after-th evaluation
    FaultKind kind = FaultKind::kTransient;
    double mult = 4.0;   // spike multiplier
    double scale = 4.0;  // corruption spread: factor in [1/scale, scale]
  };
  struct SiteCounters {
    std::atomic<int64_t> evaluations{0};
    std::atomic<int64_t> transients{0};
    std::atomic<int64_t> permanents{0};
    std::atomic<int64_t> spikes{0};
    std::atomic<int64_t> corruptions{0};
  };

  FaultInjector() = default;

  static std::atomic<bool> armed_;

  uint64_t seed_ = 0;
  std::string spec_;
  Clause clauses_[fault_site::kNumSites];
  SiteCounters counters_[fault_site::kNumSites];

  friend class FaultStreamScope;
};

/// RAII scope pinning the calling thread's fault stream to `stream` and
/// zeroing its per-site counters, so the draw sequence inside the scope
/// depends only on (seed, spec, stream) — never on the thread or on what
/// ran before. Restores the previous stream state on destruction.
class FaultStreamScope {
 public:
  explicit FaultStreamScope(uint64_t stream);
  ~FaultStreamScope();

  FaultStreamScope(const FaultStreamScope&) = delete;
  FaultStreamScope& operator=(const FaultStreamScope&) = delete;

 private:
  uint64_t saved_stream_;
  uint64_t saved_counters_[fault_site::kNumSites];
};

/// One attempt of a faulted execution (see RunWithFaultRetries).
struct FaultAttempt {
  /// Non-OK aborts the whole faulted run with this status.
  Status status;
  bool completed = false;
  /// Cost the attempt charged under its effective budget (pre-spike).
  double cost = 0.0;
};

/// Degradations accumulated across the attempts of one faulted run; the
/// attempt callback routes execution accordingly.
struct FaultRunState {
  bool degrade_engine = false;  // batch -> tuple
  bool degrade_serial = false;  // morsel-parallel -> single-thread
  int attempt = 0;
};

/// Outcome of a faulted run.
struct FaultedRunOutcome {
  /// Non-OK: a permanent fault, a hard attempt error, or retry exhaustion
  /// on an unbudgeted run.
  Status status;
  bool completed = false;
  /// Total cost charged: the surviving attempt (spike-scaled) plus all
  /// work lost to retried attempts. Exactly `budget` when a budgeted run
  /// failed to complete.
  double cost_used = 0.0;
  /// True iff the last attempt ran clean and its payload (stats, learned
  /// values) stands.
  bool final_attempt_valid = false;
  RobustnessReport report;
};

/// Shared retry/degradation loop for budgeted executions under faults.
///
/// Per attempt, every site in `sites` is evaluated once *before* the
/// attempt runs — so the draw sequence is independent of the execution
/// engine, the thread count, and the attempt's internals. Semantics:
///  * degradation sites (exec.batch.pipeline, exec.morsel.scan) flip the
///    corresponding FaultRunState flag instead of failing the attempt;
///  * spikes multiply into a factor s: the attempt runs with effective
///    budget remaining/s and its cost is charged as s * cost;
///  * a transient fault wastes fraction u of the attempt's (spiked) cost,
///    which is charged against the remaining budget, and retries — capped
///    exponential backoff with the budget itself as the cap: once retries
///    exhaust the budget the run reports non-completion with cost_used ==
///    budget, which is exactly the accounting a failed contour execution
///    has anyway, so MSO bounds are preserved;
///  * a permanent fault aborts with only the already-wasted work charged.
/// `budget` < 0 means unlimited (retry exhaustion is then an error).
FaultedRunOutcome RunWithFaultRetries(
    FaultInjector& inj, const std::vector<int>& sites, double budget,
    const std::function<FaultAttempt(double eff_budget,
                                     const FaultRunState& state)>& attempt);

/// Retry cap of RunWithFaultRetries (and of callers that hand-roll
/// retries, e.g. the ESS sweep around optimizer.dp).
constexpr int kMaxFaultAttempts = 8;

}  // namespace robustqp

#endif  // ROBUSTQP_COMMON_FAULT_H_
