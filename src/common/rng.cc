#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace robustqp {

int64_t Rng::Zipf(int64_t n, double theta) {
  ZipfSampler sampler(n, theta);
  return sampler.Sample(this);
}

ZipfSampler::ZipfSampler(int64_t n, double theta) {
  RQP_CHECK(n >= 1);
  RQP_CHECK(theta > 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    cdf_[static_cast<size_t>(i - 1)] = sum;
  }
  for (double& v : cdf_) v /= sum;
}

int64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

}  // namespace robustqp
