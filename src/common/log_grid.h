// Log-spaced axis used to discretize each dimension of the error-prone
// selectivity space (ESS). The paper works on "an appropriately discretized
// grid version of [0,1]^D" (Section 2.1); selectivities span several orders
// of magnitude, so a geometric spacing is the natural discretization (cf.
// the log-scaled axes of the paper's Fig. 7).

#ifndef ROBUSTQP_COMMON_LOG_GRID_H_
#define ROBUSTQP_COMMON_LOG_GRID_H_

#include <cstddef>
#include <vector>

namespace robustqp {

/// A strictly increasing sequence of selectivity values in (0, 1], spaced
/// geometrically from `min_sel` to 1.0 with `points` entries.
class LogAxis {
 public:
  /// Builds an axis of `points` values; value(0) == min_sel and
  /// value(points-1) == 1.0 exactly.
  LogAxis(double min_sel, int points);

  int points() const { return static_cast<int>(values_.size()); }
  double value(int idx) const { return values_[static_cast<size_t>(idx)]; }
  const std::vector<double>& values() const { return values_; }

  /// Largest index whose value is <= sel; returns -1 if sel < value(0).
  int FloorIndex(double sel) const;

  /// Smallest index whose value is >= sel; returns points() if sel > 1.0.
  int CeilIndex(double sel) const;

  /// Index of the axis value closest (in log space) to sel, clamped.
  int NearestIndex(double sel) const;

 private:
  std::vector<double> values_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_COMMON_LOG_GRID_H_
