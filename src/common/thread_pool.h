// Reusable parallel-execution layer: a fixed-size ThreadPool plus
// ParallelFor / ParallelMapReduce helpers with deterministic semantics.
//
// Determinism contract. ParallelFor partitions the index range into one
// contiguous block per worker; ParallelMapReduce partitions it into
// fixed-size chunks whose boundaries depend only on (total, chunk_size) —
// never on the worker count — and reduces the per-chunk partials strictly
// in chunk order after every chunk has completed. A caller whose per-index
// work is independent of the partitioning therefore gets bit-identical
// results at any thread count, including floating-point accumulations
// (the association order is fixed by the chunk grid, not the schedule).
//
// Failure contract. Exceptions thrown inside a block/chunk are captured
// and converted to a non-OK Status returned to the caller once all work
// has drained; when several blocks throw, the one with the lowest index
// wins, again independent of the schedule. An exception escaping a raw
// Submit() task is caught by the worker loop (instead of terminating the
// process) and surfaced by the next Wait().

#ifndef ROBUSTQP_COMMON_THREAD_POOL_H_
#define ROBUSTQP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/status.h"

namespace robustqp {

/// Converts a captured exception to a descriptive Status.
Status StatusFromException(const std::exception_ptr& e);

/// A fixed-size pool of worker threads consuming a FIFO task queue.
/// Tasks may be submitted from any thread; Wait() blocks until the queue
/// drains. Not reentrant: tasks must not themselves call Submit/Wait on
/// the same pool.
class ThreadPool {
 public:
  /// `num_threads` <= 0 picks DefaultThreads().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running. Returns the
  /// first failure among tasks whose exception escaped into the worker
  /// loop since the previous Wait (OK otherwise), clearing it.
  Status Wait();

  /// Hardware concurrency clamped to [1, 16] — the same policy the ESS
  /// builder has always used for its optimizer sweep.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  int64_t outstanding_ = 0;  // queued + currently running
  bool stop_ = false;
  /// First exception to escape a task since the last Wait().
  std::exception_ptr first_error_;
};

/// Splits [0, total) into one contiguous block per pool worker and runs
/// `body(worker, begin, end)` for each non-empty block. `worker` is the
/// block index in [0, pool->num_threads()) — stable across runs, so
/// callers can give each block its own scratch state (algorithm clone,
/// RNG, oracle). Blocks are disjoint, so `body` may write to shared
/// per-index storage without synchronization. Returns the lowest-index
/// block's exception as a Status after all blocks finish (OK when none
/// threw).
Status ParallelFor(ThreadPool* pool, int64_t total,
                   const std::function<void(int worker, int64_t begin,
                                            int64_t end)>& body);

/// Maps fixed-size chunks of [0, total) on the pool and reduces the
/// partials in chunk order: acc = reduce(acc, map(chunk_i)) for i = 0, 1,
/// ... — the deterministic reduction described in the header comment.
/// Returns `init` unchanged when `total` <= 0, and the lowest-index
/// chunk's exception as a non-OK Result when any chunk threw.
template <typename T>
Result<T> ParallelMapReduce(
    ThreadPool* pool, int64_t total, int64_t chunk_size, T init,
    const std::function<T(int64_t begin, int64_t end)>& map,
    const std::function<T(T acc, T partial)>& reduce) {
  if (total <= 0) return init;
  if (chunk_size <= 0) chunk_size = 1;
  const int64_t num_chunks = (total + chunk_size - 1) / chunk_size;
  std::vector<T> partials(static_cast<size_t>(num_chunks));
  std::vector<std::exception_ptr> errors(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t begin = c * chunk_size;
    const int64_t end = std::min<int64_t>(total, begin + chunk_size);
    pool->Submit([&, c, begin, end] {
      try {
        partials[static_cast<size_t>(c)] = map(begin, end);
      } catch (...) {
        errors[static_cast<size_t>(c)] = std::current_exception();
      }
    });
  }
  (void)pool->Wait();  // per-chunk capture above supersedes loop-level errors
  for (const std::exception_ptr& e : errors) {
    if (e) return StatusFromException(e);
  }
  T acc = std::move(init);
  for (int64_t c = 0; c < num_chunks; ++c) {
    acc = reduce(std::move(acc), std::move(partials[static_cast<size_t>(c)]));
  }
  return acc;
}

}  // namespace robustqp

#endif  // ROBUSTQP_COMMON_THREAD_POOL_H_
