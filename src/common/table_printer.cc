#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/status.h"

namespace robustqp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  RQP_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << (c + 1 == header_.size() ? "|" : "+");
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace robustqp
