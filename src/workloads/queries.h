// The paper's query suite: SPJ skeletons of the TPC-DS queries used in
// Section 6 (nomenclature xD_Qz — x error-prone join predicates, TPC-DS
// query z) plus JOB Q1a for Section 6.5. Join-graph geometries (chain,
// star, branch) and epp counts match the paper's description.

#ifndef ROBUSTQP_WORKLOADS_QUERIES_H_
#define ROBUSTQP_WORKLOADS_QUERIES_H_

#include <string>
#include <vector>

#include "query/query.h"

namespace robustqp {

/// Builds a suite query by id, e.g. "4D_Q91" or "4D_JOB_Q1a". Aborts on an
/// unknown id (programming error); see SuiteQueryIds() for the valid set.
Query MakeSuiteQuery(const std::string& id);

/// The eleven TPC-DS queries evaluated in Figs. 8, 10, 11 and 13.
std::vector<std::string> PaperQuerySuite();

/// The Q91 dimensionality family of Fig. 9 (2D..6D).
std::vector<std::string> Q91Family();

/// The queries of Table 2 / Table 4 (alignment-cost analysis).
std::vector<std::string> AlignmentQuerySuite();

/// All valid suite ids (TPC-DS + JOB).
std::vector<std::string> SuiteQueryIds();

/// True if the id's catalog is the JOB (IMDB-shaped) database rather than
/// the TPC-DS-shaped one.
bool IsJobQuery(const std::string& id);

}  // namespace robustqp

#endif  // ROBUSTQP_WORKLOADS_QUERIES_H_
