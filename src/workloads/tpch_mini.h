// Synthetic TPC-H-shaped trio (part, orders, lineitem) backing the
// paper's introductory example query EQ (Fig. 1): orders for cheap parts,
// with the two join predicates — and optionally the retail-price filter —
// treated as error-prone.

#ifndef ROBUSTQP_WORKLOADS_TPCH_MINI_H_
#define ROBUSTQP_WORKLOADS_TPCH_MINI_H_

#include <cstdint>
#include <memory>

#include "catalog/catalog.h"
#include "query/query.h"
#include "storage/encoding.h"

namespace robustqp {

/// Builds the part/orders/lineitem catalog. `scale` multiplies the
/// lineitem row count. Deterministic for a given seed; data, statistics,
/// and plans are identical for every `policy` (physical layout only).
std::unique_ptr<Catalog> BuildTpchMiniCatalog(
    uint64_t seed = 4242, double scale = 1.0,
    const EncodingPolicy& policy = EncodingPolicy::Auto());

/// The paper's example query EQ: part |x| lineitem |x| orders with the
/// filter p_retailprice < 1000. With `filter_epp` true the filter joins
/// the two join predicates as a third error-prone dimension (the general
/// formulation); otherwise only the joins are error-prone, exactly as in
/// the paper's Fig. 1 walkthrough.
Query MakeExampleQueryEq(bool filter_epp);

}  // namespace robustqp

#endif  // ROBUSTQP_WORKLOADS_TPCH_MINI_H_
