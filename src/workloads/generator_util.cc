#include "workloads/generator_util.h"

#include "storage/column_file.h"
#include "storage/stats_builder.h"

namespace robustqp {

void BuildAndRegister(Catalog* catalog, const std::string& name, int64_t rows,
                      const std::vector<ColumnSpec>& columns, Rng* rng,
                      const EncodingPolicy& policy) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (const auto& c : columns) defs.push_back({c.name, c.type});
  auto table =
      std::make_shared<Table>(TableSchema(name, std::move(defs)), policy);

  for (int64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      ColumnData& col = table->column(static_cast<int>(c));
      if (columns[c].type == DataType::kString) {
        col.AppendString(columns[c].str_gen(*rng, r));
      } else if (columns[c].type == DataType::kInt64) {
        col.AppendInt(static_cast<int64_t>(columns[c].gen(*rng, r)));
      } else {
        col.AppendDouble(columns[c].gen(*rng, r));
      }
    }
  }
  RQP_CHECK(table->Finalize().ok());
  std::vector<ColumnStats> stats = ComputeTableStats(*table);
  RQP_CHECK(catalog->AddTable(std::move(table), std::move(stats)).ok());
}

Status BuildTableFile(const std::string& path, const std::string& name,
                      int64_t rows, const std::vector<ColumnSpec>& columns,
                      Rng* rng, size_t* peak_bytes) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (const auto& c : columns) defs.push_back({c.name, c.type});
  TableFileStreamWriter writer(TableSchema(name, std::move(defs)),
                               EncodingPolicy::Auto());
  RQP_RETURN_NOT_OK(writer.Open(path));
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      const int ci = static_cast<int>(c);
      if (columns[c].type == DataType::kString) {
        writer.AppendString(ci, columns[c].str_gen(*rng, r));
      } else if (columns[c].type == DataType::kInt64) {
        writer.AppendInt(ci, static_cast<int64_t>(columns[c].gen(*rng, r)));
      } else {
        writer.AppendDouble(ci, columns[c].gen(*rng, r));
      }
    }
  }
  RQP_RETURN_NOT_OK(writer.Finish());
  if (peak_bytes != nullptr) *peak_bytes = writer.PeakMemoryBytes();
  return Status::OK();
}

}  // namespace robustqp
