#include "workloads/generator_util.h"

#include "storage/stats_builder.h"

namespace robustqp {

void BuildAndRegister(Catalog* catalog, const std::string& name, int64_t rows,
                      const std::vector<ColumnSpec>& columns, Rng* rng,
                      const EncodingPolicy& policy) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (const auto& c : columns) defs.push_back({c.name, c.type});
  auto table =
      std::make_shared<Table>(TableSchema(name, std::move(defs)), policy);

  for (int64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      const double v = columns[c].gen(*rng, r);
      if (columns[c].type == DataType::kInt64) {
        table->column(static_cast<int>(c)).AppendInt(static_cast<int64_t>(v));
      } else {
        table->column(static_cast<int>(c)).AppendDouble(v);
      }
    }
  }
  RQP_CHECK(table->Finalize().ok());
  std::vector<ColumnStats> stats = ComputeTableStats(*table);
  RQP_CHECK(catalog->AddTable(std::move(table), std::move(stats)).ok());
}

}  // namespace robustqp
