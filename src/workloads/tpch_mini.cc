#include "workloads/tpch_mini.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "workloads/generator_util.h"

namespace robustqp {

std::unique_ptr<Catalog> BuildTpchMiniCatalog(uint64_t seed, double scale,
                                              const EncodingPolicy& policy) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(seed);

  const int64_t n_part = 5000;
  const int64_t n_orders = 20000;
  const int64_t n_lineitem =
      static_cast<int64_t>(std::llround(80000 * scale));

  BuildAndRegister(
      catalog.get(), "part", n_part,
      {{"p_partkey", DataType::kInt64,
        [](Rng&, int64_t row) { return static_cast<double>(row + 1); }},
       {"p_retailprice", DataType::kDouble,
        [](Rng& r, int64_t) { return r.UniformDouble(1.0, 2000.0); }},
       {"p_brand_id", DataType::kInt64,
        [](Rng& r, int64_t) { return static_cast<double>(r.UniformInt(1, 25)); }}},
      &rng, policy);

  BuildAndRegister(
      catalog.get(), "orders", n_orders,
      {{"o_orderkey", DataType::kInt64,
        [](Rng&, int64_t row) { return static_cast<double>(row + 1); }},
       {"o_custkey", DataType::kInt64,
        [n_orders](Rng& r, int64_t) {
          return static_cast<double>(r.UniformInt(1, n_orders / 10));
        }},
       {"o_orderpriority", DataType::kInt64,
        [](Rng& r, int64_t) { return static_cast<double>(r.UniformInt(1, 5)); }}},
      &rng, policy);

  {
    // Hot parts and hot orders: the skew that defeats NDV estimation.
    auto part_zipf = std::make_shared<ZipfSampler>(n_part, 1.0);
    auto order_zipf = std::make_shared<ZipfSampler>(n_orders, 0.6);
    BuildAndRegister(
        catalog.get(), "lineitem", n_lineitem,
        {{"l_orderkey", DataType::kInt64,
          [order_zipf](Rng& r, int64_t) {
            return static_cast<double>(order_zipf->Sample(&r));
          }},
         {"l_partkey", DataType::kInt64,
          [part_zipf](Rng& r, int64_t) {
            return static_cast<double>(part_zipf->Sample(&r));
          }},
         {"l_quantity", DataType::kInt64,
          [](Rng& r, int64_t) { return static_cast<double>(r.UniformInt(1, 50)); }},
         {"l_extendedprice", DataType::kDouble,
          [](Rng& r, int64_t) { return r.UniformDouble(10.0, 5000.0); }}},
        &rng, policy);
  }

  RQP_CHECK(catalog->BuildIndex("part", "p_partkey").ok());
  RQP_CHECK(catalog->BuildIndex("orders", "o_orderkey").ok());
  return catalog;
}

Query MakeExampleQueryEq(bool filter_epp) {
  std::vector<EppRef> epps = {EppRef::Join(0), EppRef::Join(1)};
  if (filter_epp) epps.push_back(EppRef::Filter(0));
  return Query(
      filter_epp ? "EQ_3D" : "EQ_2D", {"lineitem", "part", "orders"},
      {JoinPredicate{"part", "p_partkey", "lineitem", "l_partkey", "P~L"},
       JoinPredicate{"orders", "o_orderkey", "lineitem", "l_orderkey", "O~L"}},
      {FilterPredicate{"part", "p_retailprice", CompareOp::kLt, 1000.0}},
      epps);
}

}  // namespace robustqp
