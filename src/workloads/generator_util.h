// Helpers shared by the synthetic workload generators.

#ifndef ROBUSTQP_WORKLOADS_GENERATOR_UTIL_H_
#define ROBUSTQP_WORKLOADS_GENERATOR_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "storage/encoding.h"
#include "storage/table.h"

namespace robustqp {

/// Declarative column spec: name, type, and a per-row value generator.
struct ColumnSpec {
  std::string name;
  DataType type = DataType::kInt64;
  /// Called once per row (row index passed) to produce the value
  /// (numeric columns).
  std::function<double(Rng&, int64_t)> gen;
  /// String columns use this instead (`gen` is unused). A generator that
  /// never draws from the Rng can be appended to an existing table spec
  /// without perturbing the other columns' data — the determinism the
  /// golden tests depend on.
  std::function<std::string(Rng&, int64_t)> str_gen;
};

/// Materializes a table of `rows` rows from column specs and registers it
/// (with freshly computed statistics) in `catalog`. Rows stream straight
/// into columns encoded per `policy` (one 4096-row staging block per
/// column), so generator memory stays near the *encoded* footprint and
/// fact tables can scale to 1e7-1e8 rows. The generated values, stats,
/// and plans are identical for every policy — encoding is physical only.
void BuildAndRegister(Catalog* catalog, const std::string& name, int64_t rows,
                      const std::vector<ColumnSpec>& columns, Rng* rng,
                      const EncodingPolicy& policy = EncodingPolicy::Auto());

/// Streams a generated table straight into column file `path` through
/// TableFileStreamWriter: encoder staging blocks spill to disk as they
/// seal, so peak memory is O(row group), independent of `rows` — this is
/// what lets 1e7+-row fact tables build on a bounded heap (the resident
/// generator above holds the whole encoded table). Draw order is
/// row-major like BuildAndRegister, so for the same Rng state the file
/// holds bit-identical data to the resident build. When `peak_bytes` is
/// non-null it receives the writer's transient high-water mark, which the
/// scale tests assert stays bounded.
Status BuildTableFile(const std::string& path, const std::string& name,
                      int64_t rows, const std::vector<ColumnSpec>& columns,
                      Rng* rng, size_t* peak_bytes = nullptr);

}  // namespace robustqp

#endif  // ROBUSTQP_WORKLOADS_GENERATOR_UTIL_H_
