// Helpers shared by the synthetic workload generators.

#ifndef ROBUSTQP_WORKLOADS_GENERATOR_UTIL_H_
#define ROBUSTQP_WORKLOADS_GENERATOR_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "storage/encoding.h"
#include "storage/table.h"

namespace robustqp {

/// Declarative column spec: name, type, and a per-row value generator.
struct ColumnSpec {
  std::string name;
  DataType type = DataType::kInt64;
  /// Called once per row (row index passed) to produce the value.
  std::function<double(Rng&, int64_t)> gen;
};

/// Materializes a table of `rows` rows from column specs and registers it
/// (with freshly computed statistics) in `catalog`. Rows stream straight
/// into columns encoded per `policy` (one 4096-row staging block per
/// column), so generator memory stays near the *encoded* footprint and
/// fact tables can scale to 1e7-1e8 rows. The generated values, stats,
/// and plans are identical for every policy — encoding is physical only.
void BuildAndRegister(Catalog* catalog, const std::string& name, int64_t rows,
                      const std::vector<ColumnSpec>& columns, Rng* rng,
                      const EncodingPolicy& policy = EncodingPolicy::Auto());

}  // namespace robustqp

#endif  // ROBUSTQP_WORKLOADS_GENERATOR_UTIL_H_
