// Synthetic IMDB-shaped database for the Join Order Benchmark experiments
// of Section 6.5 (JOB Q1a). Heavy zipfian skew on the movie foreign keys —
// the property that makes JOB catastrophic for NDV-based native
// estimation — is reproduced here.

#ifndef ROBUSTQP_WORKLOADS_JOB_H_
#define ROBUSTQP_WORKLOADS_JOB_H_

#include <cstdint>
#include <memory>

#include "catalog/catalog.h"
#include "storage/encoding.h"

namespace robustqp {

/// Builds the IMDB-shaped catalog. `scale` multiplies the large tables'
/// row counts. Deterministic for a given seed; data, statistics, and
/// plans are identical for every `policy` (physical layout only).
std::unique_ptr<Catalog> BuildJobCatalog(
    uint64_t seed = 7, double scale = 1.0,
    const EncodingPolicy& policy = EncodingPolicy::Auto());

}  // namespace robustqp

#endif  // ROBUSTQP_WORKLOADS_JOB_H_
