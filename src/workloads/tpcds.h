// Synthetic TPC-DS-shaped database: the fact/dimension tables (with FK
// structure, realistic relative sizes, and zipfian skew on fact foreign
// keys) that the paper's query suite touches. Stands in for the 100 GB
// TPC-DS instance of Section 6.1 at laptop scale — see DESIGN.md for why
// the substitution preserves the experiments' shape.

#ifndef ROBUSTQP_WORKLOADS_TPCDS_H_
#define ROBUSTQP_WORKLOADS_TPCDS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "storage/encoding.h"
#include "workloads/generator_util.h"

namespace robustqp {

/// One table of the synthetic TPC-DS set: name, row count at the given
/// scale, and the per-row column generators. Shared by the resident
/// catalog build and the streaming column-file scale build so both
/// produce bit-identical data for a given seed (the generators are
/// consumed in the same table order, row-major).
struct TpcdsTableSpec {
  std::string name;
  int64_t rows = 0;
  std::vector<ColumnSpec> columns;
};

/// The full table set at `scale` (1.0 ~ 60k store_sales; dimensions are
/// fixed-size). Generator closures are freshly constructed per call, so a
/// spec list must be consumed with one Rng from the first table onward to
/// reproduce the canonical data.
std::vector<TpcdsTableSpec> TpcdsTableSpecs(double scale);

/// The (table, column) pairs BuildTpcdsCatalog installs hash indexes on —
/// the dimension keys (and the customer key) that give the optimizer
/// index nested-loop access paths. Shared with the scale-catalog open
/// path so mapped catalogs expose the same access paths.
const std::vector<std::pair<std::string, std::string>>& TpcdsIndexColumns();

/// Builds the TPC-DS-shaped catalog. `scale` multiplies fact-table row
/// counts (1.0 ~ 60k store_sales). Deterministic for a given seed; the
/// data, statistics, and plans are identical for every `policy` (rows
/// stream into columns stored per the policy — physical layout only).
std::unique_ptr<Catalog> BuildTpcdsCatalog(
    uint64_t seed = 42, double scale = 1.0,
    const EncodingPolicy& policy = EncodingPolicy::Auto());

}  // namespace robustqp

#endif  // ROBUSTQP_WORKLOADS_TPCDS_H_
