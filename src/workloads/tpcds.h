// Synthetic TPC-DS-shaped database: the fact/dimension tables (with FK
// structure, realistic relative sizes, and zipfian skew on fact foreign
// keys) that the paper's query suite touches. Stands in for the 100 GB
// TPC-DS instance of Section 6.1 at laptop scale — see DESIGN.md for why
// the substitution preserves the experiments' shape.

#ifndef ROBUSTQP_WORKLOADS_TPCDS_H_
#define ROBUSTQP_WORKLOADS_TPCDS_H_

#include <cstdint>
#include <memory>

#include "catalog/catalog.h"
#include "storage/encoding.h"

namespace robustqp {

/// Builds the TPC-DS-shaped catalog. `scale` multiplies fact-table row
/// counts (1.0 ~ 60k store_sales). Deterministic for a given seed; the
/// data, statistics, and plans are identical for every `policy` (rows
/// stream into columns stored per the policy — physical layout only).
std::unique_ptr<Catalog> BuildTpcdsCatalog(
    uint64_t seed = 42, double scale = 1.0,
    const EncodingPolicy& policy = EncodingPolicy::Auto());

}  // namespace robustqp

#endif  // ROBUSTQP_WORKLOADS_TPCDS_H_
