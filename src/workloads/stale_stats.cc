#include "workloads/stale_stats.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "storage/table.h"

namespace robustqp {

std::unique_ptr<Catalog> WithStaleStatistics(const Catalog& fresh,
                                             double ndv_inflation) {
  RQP_CHECK(ndv_inflation > 0.0);
  auto stale = std::make_unique<Catalog>();
  for (const std::string& name : fresh.TableNames()) {
    const CatalogEntry* entry = fresh.FindTable(name);
    std::vector<ColumnStats> stats = entry->stats;
    for (ColumnStats& cs : stats) {
      // Deliberately not clamped to the current row count: stale NDVs were
      // computed against a different (since-shrunk or since-grown) table.
      cs.distinct_count = std::max<int64_t>(
          1, std::llround(static_cast<double>(cs.distinct_count) * ndv_inflation));
    }
    RQP_CHECK(stale->AddTable(entry->table, std::move(stats)).ok());
    // Indexes track the physical data, not the statistics; carry them over.
    for (const auto& [column, _] : entry->indexes) {
      RQP_CHECK(stale->BuildIndex(name, column).ok());
    }
  }
  return stale;
}

}  // namespace robustqp
