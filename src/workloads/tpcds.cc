#include "workloads/tpcds.h"

#include <algorithm>
#include <cmath>

#include "workloads/generator_util.h"

namespace robustqp {
namespace {

/// Serial surrogate key 1..N. Being monotone in row order, these columns
/// are perfectly clustered: every 4096-row zone-map block covers a
/// disjoint key range, so range predicates on them (e.g. store_sales'
/// ss_ticket_number) are the workload's block-prunable access paths.
/// Generators are deterministic per seed and must not change — golden
/// tests and the committed bench baselines depend on the exact data.
ColumnSpec SerialKey(const std::string& name) {
  return {name, DataType::kInt64,
          [](Rng&, int64_t row) { return static_cast<double>(row + 1); }};
}

/// Uniform FK into [1, parent_rows].
ColumnSpec UniformFk(const std::string& name, int64_t parent_rows) {
  return {name, DataType::kInt64, [parent_rows](Rng& rng, int64_t) {
            return static_cast<double>(rng.UniformInt(1, parent_rows));
          }};
}

/// Zipf-skewed FK into [1, parent_rows] — the skew that makes native
/// NDV-based join estimates unreliable, which is the error source the
/// paper's algorithms are designed to survive.
ColumnSpec ZipfFk(const std::string& name, int64_t parent_rows, double theta) {
  auto sampler = std::make_shared<ZipfSampler>(parent_rows, theta);
  return {name, DataType::kInt64, [sampler](Rng& rng, int64_t) {
            return static_cast<double>(sampler->Sample(&rng));
          }};
}

/// Uniform integer attribute in [lo, hi].
ColumnSpec UniformAttr(const std::string& name, int64_t lo, int64_t hi) {
  return {name, DataType::kInt64, [lo, hi](Rng& rng, int64_t) {
            return static_cast<double>(rng.UniformInt(lo, hi));
          }};
}

/// Uniform double attribute in [lo, hi).
ColumnSpec UniformPrice(const std::string& name, double lo, double hi) {
  return {name, DataType::kDouble,
          [lo, hi](Rng& rng, int64_t) { return rng.UniformDouble(lo, hi); }};
}

/// Dictionary-encoded string attribute cycling a fixed label set,
/// deterministic from the row index alone. Drawing nothing from the Rng
/// means it can ride at the end of an existing table's spec without
/// shifting any other column's data — the catalogs that predate string
/// columns keep their exact values (and their goldens).
ColumnSpec LabelAttr(const std::string& name, const std::string& prefix,
                     int64_t cardinality) {
  return {name, DataType::kString, nullptr,
          [prefix, cardinality](Rng&, int64_t row) {
            // Knuth-scatter so adjacent rows land on distant labels (keeps
            // dictionary codes unclustered, like real brand churn).
            const int64_t v = (row * 2654435761LL) % cardinality;
            std::string label = std::to_string(v);
            while (label.size() < 2) label.insert(label.begin(), '0');
            return prefix + label;
          }};
}

}  // namespace

std::vector<TpcdsTableSpec> TpcdsTableSpecs(double scale) {
  // Dimension row counts (fixed) and fact row counts (scaled).
  const int64_t n_date = 1826;    // five years of days
  const int64_t n_time = 2400;
  const int64_t n_item = 2000;
  const int64_t n_customer = 10000;
  const int64_t n_address = 5000;
  const int64_t n_cdemo = 1920;
  const int64_t n_hdemo = 720;
  const int64_t n_income = 20;
  const int64_t n_store = 60;
  const int64_t n_callcenter = 30;
  const int64_t n_promo = 300;
  const auto fact = [scale](int64_t base) {
    return static_cast<int64_t>(std::llround(base * scale));
  };
  const int64_t n_ss = fact(60000);
  const int64_t n_cs = fact(40000);
  const int64_t n_sr = fact(12000);

  std::vector<TpcdsTableSpec> tables;

  tables.push_back({"date_dim", n_date,
                    {SerialKey("d_date_sk"),
                     {"d_year", DataType::kInt64,
                      [](Rng&, int64_t row) {
                        return static_cast<double>(2020 + row / 365);
                      }},
                     {"d_moy", DataType::kInt64,
                      [](Rng&, int64_t row) {
                        return static_cast<double>((row / 30) % 12 + 1);
                      }},
                     UniformAttr("d_dow", 1, 7)}});

  tables.push_back({"time_dim", n_time,
                    {SerialKey("t_time_sk"),
                     {"t_hour", DataType::kInt64,
                      [n_time](Rng&, int64_t row) {
                        return static_cast<double>(row * 24 / n_time);
                      }},
                     UniformAttr("t_minute", 0, 59)}});

  // i_brand rides last and draws nothing from the Rng: the numeric item
  // data (and everything generated after it) is unchanged from the
  // pre-string-column catalog.
  tables.push_back({"item", n_item,
                    {SerialKey("i_item_sk"), UniformAttr("i_category_id", 1, 10),
                     UniformAttr("i_manufact_id", 1, 100),
                     UniformPrice("i_current_price", 0.5, 100.0),
                     LabelAttr("i_brand", "brand_", 40)}});

  tables.push_back({"customer_address", n_address,
                    {SerialKey("ca_address_sk"),
                     UniformAttr("ca_state_id", 1, 50),
                     UniformAttr("ca_city_id", 1, 400),
                     UniformAttr("ca_gmt_offset", -10, -5)}});

  tables.push_back({"customer_demographics", n_cdemo,
                    {SerialKey("cd_demo_sk"), UniformAttr("cd_gender", 0, 1),
                     UniformAttr("cd_marital_status", 1, 5),
                     UniformAttr("cd_education_id", 1, 7),
                     UniformAttr("cd_dep_count", 0, 6)}});

  tables.push_back({"household_demographics", n_hdemo,
                    {SerialKey("hd_demo_sk"),
                     UniformFk("hd_income_band_sk", n_income),
                     UniformAttr("hd_dep_count", 0, 9),
                     UniformAttr("hd_vehicle_count", 0, 4)}});

  tables.push_back(
      {"income_band", n_income,
       {SerialKey("ib_income_band_sk"),
        {"ib_lower_bound", DataType::kInt64,
         [](Rng&, int64_t row) { return static_cast<double>(row * 10000); }},
        {"ib_upper_bound", DataType::kInt64, [](Rng&, int64_t row) {
           return static_cast<double>((row + 1) * 10000 - 1);
         }}}});

  tables.push_back({"store", n_store,
                    {SerialKey("s_store_sk"), UniformAttr("s_city_id", 1, 30),
                     UniformAttr("s_number_employees", 50, 300)}});

  tables.push_back({"call_center", n_callcenter,
                    {SerialKey("cc_call_center_sk"),
                     UniformAttr("cc_class_id", 1, 3),
                     UniformAttr("cc_employees", 10, 200)}});

  tables.push_back({"promotion", n_promo,
                    {SerialKey("p_promo_sk"), UniformAttr("p_channel_id", 1, 5),
                     UniformPrice("p_cost", 100.0, 5000.0)}});

  tables.push_back({"customer", n_customer,
                    {SerialKey("c_customer_sk"),
                     ZipfFk("c_current_addr_sk", n_address, 0.8),
                     UniformFk("c_current_cdemo_sk", n_cdemo),
                     ZipfFk("c_current_hdemo_sk", n_hdemo, 0.6),
                     UniformAttr("c_birth_year", 1930, 2005)}});

  tables.push_back(
      {"store_sales", n_ss,
       {ZipfFk("ss_sold_date_sk", n_date, 0.5),
        UniformFk("ss_sold_time_sk", n_time), ZipfFk("ss_item_sk", n_item, 0.9),
        ZipfFk("ss_customer_sk", n_customer, 0.7),
        UniformFk("ss_cdemo_sk", n_cdemo), UniformFk("ss_hdemo_sk", n_hdemo),
        ZipfFk("ss_addr_sk", n_address, 0.8), UniformFk("ss_store_sk", n_store),
        ZipfFk("ss_promo_sk", n_promo, 1.1), UniformAttr("ss_quantity", 1, 100),
        UniformPrice("ss_sales_price", 1.0, 300.0),
        SerialKey("ss_ticket_number")}});

  tables.push_back(
      {"catalog_sales", n_cs,
       {ZipfFk("cs_sold_date_sk", n_date, 0.6), ZipfFk("cs_item_sk", n_item, 0.8),
        ZipfFk("cs_bill_customer_sk", n_customer, 0.9),
        UniformFk("cs_bill_cdemo_sk", n_cdemo),
        UniformFk("cs_bill_hdemo_sk", n_hdemo),
        ZipfFk("cs_bill_addr_sk", n_address, 0.7),
        ZipfFk("cs_call_center_sk", n_callcenter, 0.9),
        ZipfFk("cs_promo_sk", n_promo, 1.0), UniformAttr("cs_quantity", 1, 100),
        UniformPrice("cs_sales_price", 1.0, 300.0),
        SerialKey("cs_order_number")}});

  tables.push_back(
      {"store_returns", n_sr,
       {ZipfFk("sr_returned_date_sk", n_date, 0.5),
        ZipfFk("sr_item_sk", n_item, 0.9),
        ZipfFk("sr_customer_sk", n_customer, 0.8),
        // Return tickets reference a subset of store_sales tickets.
        {"sr_ticket_number", DataType::kInt64,
         [n_ss](Rng& rng2, int64_t) {
           return static_cast<double>(
               rng2.UniformInt(1, std::max<int64_t>(1, n_ss)));
         }},
        UniformAttr("sr_return_quantity", 1, 40)}});

  return tables;
}

const std::vector<std::pair<std::string, std::string>>& TpcdsIndexColumns() {
  // Hash indexes on the dimension keys (and the customer key), giving the
  // optimizer index nested-loop access paths.
  static const auto* specs =
      new std::vector<std::pair<std::string, std::string>>{
          {"date_dim", "d_date_sk"},
          {"time_dim", "t_time_sk"},
          {"item", "i_item_sk"},
          {"customer", "c_customer_sk"},
          {"customer_address", "ca_address_sk"},
          {"customer_demographics", "cd_demo_sk"},
          {"household_demographics", "hd_demo_sk"},
          {"income_band", "ib_income_band_sk"},
          {"store", "s_store_sk"},
          {"call_center", "cc_call_center_sk"},
          {"promotion", "p_promo_sk"}};
  return *specs;
}

std::unique_ptr<Catalog> BuildTpcdsCatalog(uint64_t seed, double scale,
                                           const EncodingPolicy& policy) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(seed);
  for (const TpcdsTableSpec& t : TpcdsTableSpecs(scale)) {
    BuildAndRegister(catalog.get(), t.name, t.rows, t.columns, &rng, policy);
  }
  for (const auto& [table, column] : TpcdsIndexColumns()) {
    RQP_CHECK(catalog->BuildIndex(table, column).ok());
  }
  return catalog;
}

}  // namespace robustqp
