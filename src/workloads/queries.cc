#include "workloads/queries.h"

#include "common/status.h"

namespace robustqp {
namespace {

JoinPredicate J(const std::string& lt, const std::string& lc,
                const std::string& rt, const std::string& rc,
                const std::string& label) {
  return JoinPredicate{lt, lc, rt, rc, label};
}

FilterPredicate F(const std::string& t, const std::string& c, CompareOp op,
                  double v) {
  return FilterPredicate{t, c, op, v};
}

FilterPredicate SF(const std::string& t, const std::string& c, CompareOp op,
                   const std::string& v) {
  return FilterPredicate{t, c, op, /*value=*/0.0, /*is_string=*/true, v};
}

/// TPC-DS Q91 skeleton: catalog_sales star joined to a customer chain.
/// The epp progression matches the paper's Fig. 9 dimensionality sweep,
/// with the 2D pair (CS~DD, C~CA) matching Fig. 7.
Query MakeQ91(int dims) {
  std::vector<int> epps;
  for (int d = 0; d < dims; ++d) epps.push_back(d);
  return Query(
      std::to_string(dims) + "D_Q91",
      {"catalog_sales", "date_dim", "customer", "customer_address",
       "customer_demographics", "household_demographics", "call_center"},
      {J("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk", "CS~DD"),
       J("customer", "c_current_addr_sk", "customer_address", "ca_address_sk",
         "C~CA"),
       J("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk",
         "CS~C"),
       J("customer", "c_current_cdemo_sk", "customer_demographics",
         "cd_demo_sk", "C~CD"),
       J("customer", "c_current_hdemo_sk", "household_demographics",
         "hd_demo_sk", "C~HD"),
       J("catalog_sales", "cs_call_center_sk", "call_center",
         "cc_call_center_sk", "CS~CC")},
      {F("date_dim", "d_year", CompareOp::kEq, 2021),
       F("call_center", "cc_class_id", CompareOp::kEq, 2),
       F("customer", "c_birth_year", CompareOp::kLt, 1970)},
      epps);
}

Query MakeQ15() {
  return Query("3D_Q15",
               {"catalog_sales", "customer", "customer_address", "date_dim"},
               {J("catalog_sales", "cs_bill_customer_sk", "customer",
                  "c_customer_sk", "CS~C"),
                J("customer", "c_current_addr_sk", "customer_address",
                  "ca_address_sk", "C~CA"),
                J("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk",
                  "CS~DD")},
               {F("date_dim", "d_moy", CompareOp::kEq, 4),
                F("customer_address", "ca_state_id", CompareOp::kLe, 10)},
               {0, 1, 2});
}

Query MakeQ96() {
  return Query("3D_Q96",
               {"store_sales", "time_dim", "household_demographics", "store"},
               {J("store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk",
                  "SS~TD"),
                J("store_sales", "ss_hdemo_sk", "household_demographics",
                  "hd_demo_sk", "SS~HD"),
                J("store_sales", "ss_store_sk", "store", "s_store_sk", "SS~S")},
               {F("time_dim", "t_hour", CompareOp::kEq, 20),
                F("household_demographics", "hd_dep_count", CompareOp::kEq, 7)},
               {0, 1, 2});
}

Query MakeQ7() {
  return Query(
      "4D_Q7",
      {"store_sales", "date_dim", "item", "customer_demographics", "promotion"},
      {J("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk", "SS~DD"),
       J("store_sales", "ss_item_sk", "item", "i_item_sk", "SS~I"),
       J("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk",
         "SS~CD"),
       J("store_sales", "ss_promo_sk", "promotion", "p_promo_sk", "SS~P")},
      {F("date_dim", "d_year", CompareOp::kEq, 2022),
       F("customer_demographics", "cd_gender", CompareOp::kEq, 1),
       F("promotion", "p_channel_id", CompareOp::kEq, 3)},
      {0, 1, 2, 3});
}

Query MakeQ26() {
  return Query(
      "4D_Q26",
      {"catalog_sales", "date_dim", "item", "customer_demographics",
       "promotion"},
      {J("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk", "CS~DD"),
       J("catalog_sales", "cs_item_sk", "item", "i_item_sk", "CS~I"),
       J("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics",
         "cd_demo_sk", "CS~CD"),
       J("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk", "CS~P")},
      {F("date_dim", "d_year", CompareOp::kEq, 2020),
       F("customer_demographics", "cd_marital_status", CompareOp::kEq, 2),
       F("item", "i_category_id", CompareOp::kLe, 4)},
      {0, 1, 2, 3});
}

Query MakeQ27() {
  return Query(
      "4D_Q27",
      {"store_sales", "date_dim", "item", "customer_demographics", "store"},
      {J("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk", "SS~DD"),
       J("store_sales", "ss_item_sk", "item", "i_item_sk", "SS~I"),
       J("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk",
         "SS~CD"),
       J("store_sales", "ss_store_sk", "store", "s_store_sk", "SS~S")},
      {F("date_dim", "d_year", CompareOp::kEq, 2023),
       F("customer_demographics", "cd_education_id", CompareOp::kEq, 5),
       F("store", "s_city_id", CompareOp::kLe, 10)},
      {0, 1, 2, 3});
}

Query MakeQ19() {
  return Query(
      "5D_Q19",
      {"store_sales", "date_dim", "item", "customer", "customer_address",
       "store"},
      {J("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk", "SS~DD"),
       J("store_sales", "ss_item_sk", "item", "i_item_sk", "SS~I"),
       J("store_sales", "ss_customer_sk", "customer", "c_customer_sk", "SS~C"),
       J("customer", "c_current_addr_sk", "customer_address", "ca_address_sk",
         "C~CA"),
       J("store_sales", "ss_store_sk", "store", "s_store_sk", "SS~S")},
      {F("date_dim", "d_moy", CompareOp::kEq, 11),
       F("item", "i_manufact_id", CompareOp::kLe, 20)},
      {0, 1, 2, 3, 4});
}

Query MakeQ29() {
  return Query(
      "5D_Q29",
      {"store_sales", "store_returns", "catalog_sales", "date_dim", "item",
       "store"},
      {J("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk", "SS~DD"),
       J("store_sales", "ss_item_sk", "item", "i_item_sk", "SS~I"),
       J("store_sales", "ss_ticket_number", "store_returns",
         "sr_ticket_number", "SS~SR"),
       J("store_returns", "sr_customer_sk", "catalog_sales",
         "cs_bill_customer_sk", "SR~CS"),
       J("store_sales", "ss_store_sk", "store", "s_store_sk", "SS~S")},
      {F("date_dim", "d_moy", CompareOp::kEq, 9),
       F("item", "i_category_id", CompareOp::kEq, 3)},
      {0, 1, 2, 3, 4});
}

Query MakeQ84() {
  return Query(
      "5D_Q84",
      {"customer", "customer_address", "customer_demographics",
       "household_demographics", "income_band", "store_returns"},
      {J("customer", "c_current_addr_sk", "customer_address", "ca_address_sk",
         "C~CA"),
       J("customer", "c_current_cdemo_sk", "customer_demographics",
         "cd_demo_sk", "C~CD"),
       J("customer", "c_current_hdemo_sk", "household_demographics",
         "hd_demo_sk", "C~HD"),
       J("household_demographics", "hd_income_band_sk", "income_band",
         "ib_income_band_sk", "HD~IB"),
       J("store_returns", "sr_customer_sk", "customer", "c_customer_sk",
         "SR~C")},
      {F("customer_address", "ca_city_id", CompareOp::kLe, 60),
       F("income_band", "ib_lower_bound", CompareOp::kGe, 60000)},
      {0, 1, 2, 3, 4});
}

Query MakeQ18() {
  return Query(
      "6D_Q18",
      {"catalog_sales", "date_dim", "item", "customer_demographics",
       "customer", "customer_address", "household_demographics"},
      {J("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk", "CS~DD"),
       J("catalog_sales", "cs_item_sk", "item", "i_item_sk", "CS~I"),
       J("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics",
         "cd_demo_sk", "CS~CD"),
       J("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk",
         "CS~C"),
       J("customer", "c_current_addr_sk", "customer_address", "ca_address_sk",
         "C~CA"),
       J("customer", "c_current_hdemo_sk", "household_demographics",
         "hd_demo_sk", "C~HD")},
      {F("date_dim", "d_year", CompareOp::kEq, 2024),
       F("customer_demographics", "cd_dep_count", CompareOp::kEq, 2),
       F("item", "i_category_id", CompareOp::kLe, 5)},
      {0, 1, 2, 3, 4, 5});
}

/// Brand-restricted store sales: the suite's string-predicate query. The
/// i_brand filter resolves into dictionary rank space (storage/encoding.h)
/// before reaching the scan kernels, so discovery, estimation and
/// execution treat it exactly like a numeric range — which is the
/// end-to-end property the string-vs-numeric differential tests pin.
Query MakeQBrand() {
  return Query(
      "2D_QBRAND", {"store_sales", "item", "date_dim"},
      {J("store_sales", "ss_item_sk", "item", "i_item_sk", "SS~I"),
       J("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk", "SS~DD")},
      {SF("item", "i_brand", CompareOp::kLe, "brand_19"),
       F("date_dim", "d_moy", CompareOp::kEq, 6)},
      {0, 1});
}

/// JOB Q1a skeleton over the IMDB-shaped catalog (acyclic: the paper shuts
/// off implicit cyclic predicates for this experiment).
Query MakeJobQ1a() {
  return Query(
      "4D_JOB_Q1a",
      {"company_type", "info_type", "title", "movie_companies",
       "movie_info_idx"},
      {J("company_type", "ct_id", "movie_companies", "mc_company_type_id",
         "CT~MC"),
       J("title", "t_id", "movie_companies", "mc_movie_id", "T~MC"),
       J("title", "t_id", "movie_info_idx", "mi_movie_id", "T~MI"),
       J("info_type", "it_id", "movie_info_idx", "mi_info_type_id", "IT~MI")},
      {F("company_type", "ct_kind_id", CompareOp::kEq, 2),
       F("info_type", "it_info_id", CompareOp::kEq, 112),
       F("movie_companies", "mc_note_id", CompareOp::kLe, 10),
       F("title", "t_production_year", CompareOp::kGt, 2000)},
      {0, 1, 2, 3});
}

}  // namespace

Query MakeSuiteQuery(const std::string& id) {
  if (id == "2D_Q91") return MakeQ91(2);
  if (id == "3D_Q91") return MakeQ91(3);
  if (id == "4D_Q91") return MakeQ91(4);
  if (id == "5D_Q91") return MakeQ91(5);
  if (id == "6D_Q91") return MakeQ91(6);
  if (id == "3D_Q15") return MakeQ15();
  if (id == "3D_Q96") return MakeQ96();
  if (id == "4D_Q7") return MakeQ7();
  if (id == "4D_Q26") return MakeQ26();
  if (id == "4D_Q27") return MakeQ27();
  if (id == "5D_Q19") return MakeQ19();
  if (id == "5D_Q29") return MakeQ29();
  if (id == "5D_Q84") return MakeQ84();
  if (id == "6D_Q18") return MakeQ18();
  if (id == "2D_QBRAND") return MakeQBrand();
  if (id == "4D_JOB_Q1a") return MakeJobQ1a();
  RQP_CHECK(false && "unknown suite query id");
  return Query();
}

std::vector<std::string> PaperQuerySuite() {
  return {"3D_Q15", "3D_Q96", "4D_Q7",  "4D_Q26", "4D_Q27", "4D_Q91",
          "5D_Q19", "5D_Q29", "5D_Q84", "6D_Q18", "6D_Q91"};
}

std::vector<std::string> Q91Family() {
  return {"2D_Q91", "3D_Q91", "4D_Q91", "5D_Q91", "6D_Q91"};
}

std::vector<std::string> AlignmentQuerySuite() {
  return {"3D_Q96", "4D_Q7", "4D_Q26", "4D_Q91", "5D_Q29", "5D_Q84"};
}

std::vector<std::string> SuiteQueryIds() {
  std::vector<std::string> ids = Q91Family();
  for (const auto& q : PaperQuerySuite()) {
    if (q != "4D_Q91" && q != "6D_Q91") ids.push_back(q);
  }
  ids.push_back("2D_QBRAND");
  ids.push_back("4D_JOB_Q1a");
  return ids;
}

bool IsJobQuery(const std::string& id) {
  return id.find("JOB") != std::string::npos;
}

}  // namespace robustqp
