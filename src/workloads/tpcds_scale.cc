#include "workloads/tpcds_scale.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <vector>

#include "storage/column_file.h"
#include "workloads/tpcds.h"

namespace robustqp {

Status BuildTpcdsScaleFiles(const std::string& dir, uint64_t seed,
                            int64_t store_sales_rows, ScaleBuildStats* out) {
  if (store_sales_rows <= 0) {
    return Status::InvalidArgument("store_sales_rows must be positive");
  }
  // The spec's canonical scale=1.0 store_sales size is 60000 rows; the
  // other fact tables keep their canonical ratios.
  const double scale = static_cast<double>(store_sales_rows) / 60000.0;
  ScaleBuildStats stats;
  Rng rng(seed);
  for (const TpcdsTableSpec& t : TpcdsTableSpecs(scale)) {
    const std::string path = dir + "/" + t.name + ".rqp";
    size_t peak = 0;
    RQP_RETURN_NOT_OK(
        BuildTableFile(path, t.name, t.rows, t.columns, &rng, &peak));
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::Internal("stat failed after build: " + path);
    }
    stats.total_rows += t.rows;
    if (t.name == "store_sales") stats.store_sales_rows = t.rows;
    stats.peak_stream_bytes = std::max(stats.peak_stream_bytes, peak);
    stats.file_bytes += static_cast<size_t>(st.st_size);
  }
  if (out != nullptr) *out = stats;
  return Status::OK();
}

Result<std::shared_ptr<Catalog>> OpenTpcdsScaleCatalog(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound("cannot open scale dir: " + dir);
  }
  std::vector<std::string> names;
  while (dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    const std::string suffix = ".rqp";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      names.push_back(name);
    }
  }
  closedir(d);
  if (names.empty()) {
    return Status::NotFound("no .rqp column files in " + dir);
  }
  // Deterministic open order (readdir order is filesystem-dependent).
  std::sort(names.begin(), names.end());
  auto catalog = std::make_shared<Catalog>();
  for (const std::string& name : names) {
    MappedTable mt;
    RQP_RETURN_NOT_OK(OpenMappedTable(dir + "/" + name, &mt));
    RQP_RETURN_NOT_OK(catalog->AddTable(mt.table, std::move(mt.stats)));
  }
  for (const auto& [table, column] : TpcdsIndexColumns()) {
    if (catalog->FindTable(table) == nullptr) continue;
    RQP_RETURN_NOT_OK(catalog->BuildIndex(table, column));
  }
  return catalog;
}

}  // namespace robustqp
