// Stale-statistics emulation. The paper's list of estimation-error
// sources starts with "outdated statistics": the data has drifted since
// ANALYZE ran, so NDV-based join estimates are off by large factors.
// This helper derives a catalog that shares the (current) stored tables
// but carries drifted statistics, so the optimizer's native estimates are
// wrong while executions see the true data — the Section 6.3 wall-clock
// scenario where the native plan pays and the discovery algorithms keep
// their guarantees.

#ifndef ROBUSTQP_WORKLOADS_STALE_STATS_H_
#define ROBUSTQP_WORKLOADS_STALE_STATS_H_

#include <memory>

#include "catalog/catalog.h"

namespace robustqp {

/// Returns a catalog with the same tables as `fresh` but with every
/// integer column's distinct count multiplied by `ndv_inflation`
/// (clamped to the row count). Inflation > 1 makes the optimizer
/// *underestimate* join selectivities — the classic NLJ-explosion
/// failure mode.
std::unique_ptr<Catalog> WithStaleStatistics(const Catalog& fresh,
                                             double ndv_inflation);

}  // namespace robustqp

#endif  // ROBUSTQP_WORKLOADS_STALE_STATS_H_
