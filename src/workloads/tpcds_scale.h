// Out-of-core TPC-DS: the same synthetic table set as workloads/tpcds.h,
// built as on-disk column files (storage/column_file.h) instead of a
// resident catalog, so store_sales can scale to 1e7-1e8 rows on a bounded
// heap. The build streams every table through TableFileStreamWriter —
// peak memory is O(encoder staging + dictionaries), independent of row
// count — and the open path maps the files without decoding anything.
//
// For a given seed, data is bit-identical to BuildTpcdsCatalog at the
// same scale: both consume TpcdsTableSpecs row-major with one Rng.

#ifndef ROBUSTQP_WORKLOADS_TPCDS_SCALE_H_
#define ROBUSTQP_WORKLOADS_TPCDS_SCALE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"

namespace robustqp {

/// What the streaming build did, for the bounded-RSS assertions and the
/// bench/BENCH_scale.json throughput numbers.
struct ScaleBuildStats {
  /// Rows actually generated for store_sales (the requested count after
  /// the spec's scale rounding).
  int64_t store_sales_rows = 0;
  /// Total rows across all tables.
  int64_t total_rows = 0;
  /// Largest transient high-water mark any single table's stream writer
  /// reached. The scale tests assert this stays a small fraction of the
  /// encoded output — the whole point of the streaming build.
  size_t peak_stream_bytes = 0;
  /// Total bytes of the produced column files (the encoded catalog size
  /// the mmap-scan RSS budget is measured against).
  size_t file_bytes = 0;
};

/// Builds the full TPC-DS table set as column files `<dir>/<table>.rqp`,
/// with store_sales scaled to (approximately, after rounding)
/// `store_sales_rows`. `dir` must already exist.
Status BuildTpcdsScaleFiles(const std::string& dir, uint64_t seed,
                            int64_t store_sales_rows,
                            ScaleBuildStats* out = nullptr);

/// Opens every `*.rqp` column file in `dir` into a mapped catalog and
/// rebuilds the standard TPC-DS hash indexes (TpcdsIndexColumns) on the
/// tables that are present. Nothing is decoded or paged in beyond the
/// footers, so opening a 1e8-row store costs milliseconds.
Result<std::shared_ptr<Catalog>> OpenTpcdsScaleCatalog(const std::string& dir);

}  // namespace robustqp

#endif  // ROBUSTQP_WORKLOADS_TPCDS_SCALE_H_
