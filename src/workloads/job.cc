#include "workloads/job.h"

#include <algorithm>
#include <cmath>

#include "workloads/generator_util.h"

namespace robustqp {

std::unique_ptr<Catalog> BuildJobCatalog(uint64_t seed, double scale,
                                         const EncodingPolicy& policy) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(seed);

  const auto scaled = [scale](int64_t base) {
    return static_cast<int64_t>(std::llround(base * scale));
  };
  const int64_t n_title = scaled(30000);
  const int64_t n_mc = scaled(60000);
  const int64_t n_miidx = scaled(45000);
  const int64_t n_company = scaled(8000);
  const int64_t n_ct = 4;
  const int64_t n_it = 113;

  BuildAndRegister(catalog.get(), "company_type", n_ct,
                   {{"ct_id", DataType::kInt64,
                     [](Rng&, int64_t row) { return static_cast<double>(row + 1); }},
                    {"ct_kind_id", DataType::kInt64,
                     [](Rng&, int64_t row) { return static_cast<double>(row + 1); }}},
                   &rng, policy);

  BuildAndRegister(catalog.get(), "info_type", n_it,
                   {{"it_id", DataType::kInt64,
                     [](Rng&, int64_t row) { return static_cast<double>(row + 1); }},
                    {"it_info_id", DataType::kInt64,
                     [](Rng&, int64_t row) { return static_cast<double>(row + 1); }}},
                   &rng, policy);

  BuildAndRegister(catalog.get(), "title", n_title,
                   {{"t_id", DataType::kInt64,
                     [](Rng&, int64_t row) { return static_cast<double>(row + 1); }},
                    {"t_kind_id", DataType::kInt64,
                     [](Rng& r, int64_t) { return static_cast<double>(r.UniformInt(1, 7)); }},
                    {"t_production_year", DataType::kInt64,
                     [](Rng& r, int64_t) {
                       return static_cast<double>(r.UniformInt(1950, 2025));
                     }}},
                   &rng, policy);

  {
    auto movie_zipf = std::make_shared<ZipfSampler>(n_title, 1.1);
    auto company_zipf = std::make_shared<ZipfSampler>(n_company, 1.0);
    BuildAndRegister(
        catalog.get(), "movie_companies", n_mc,
        {{"mc_movie_id", DataType::kInt64,
          [movie_zipf](Rng& r, int64_t) {
            return static_cast<double>(movie_zipf->Sample(&r));
          }},
         {"mc_company_id", DataType::kInt64,
          [company_zipf](Rng& r, int64_t) {
            return static_cast<double>(company_zipf->Sample(&r));
          }},
         {"mc_company_type_id", DataType::kInt64,
          [](Rng& r, int64_t) { return static_cast<double>(r.UniformInt(1, 4)); }},
         {"mc_note_id", DataType::kInt64,
          [](Rng& r, int64_t) { return static_cast<double>(r.UniformInt(1, 50)); }}},
        &rng, policy);
  }

  {
    auto movie_zipf = std::make_shared<ZipfSampler>(n_title, 0.9);
    auto it_zipf = std::make_shared<ZipfSampler>(n_it, 1.4);
    BuildAndRegister(
        catalog.get(), "movie_info_idx", n_miidx,
        {{"mi_movie_id", DataType::kInt64,
          [movie_zipf](Rng& r, int64_t) {
            return static_cast<double>(movie_zipf->Sample(&r));
          }},
         {"mi_info_type_id", DataType::kInt64,
          [it_zipf](Rng& r, int64_t) {
            return static_cast<double>(it_zipf->Sample(&r));
          }},
         {"mi_info_rank", DataType::kInt64,
          [](Rng& r, int64_t) { return static_cast<double>(r.UniformInt(1, 250)); }}},
        &rng, policy);
  }

  for (const auto& [table, column] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"company_type", "ct_id"}, {"info_type", "it_id"},
           {"title", "t_id"}}) {
    RQP_CHECK(catalog->BuildIndex(table, column).ok());
  }
  return catalog;
}

}  // namespace robustqp
