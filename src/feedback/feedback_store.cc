#include "feedback/feedback_store.h"

#include <algorithm>
#include <cmath>

namespace robustqp {
namespace feedback {

namespace {
/// Selectivities live in (0, 1]; log10 values below this are treated as
/// the floor so a zero-ish observation cannot produce -inf.
constexpr double kMinLogSel = -12.0;

double Log10Clamped(double sel) {
  const double l = std::log10(sel);
  return std::max(l, kMinLogSel);
}
}  // namespace

void FeedbackStore::DimRing::Add(int capacity, double v) {
  if (count() < capacity) {
    log_obs.push_back(v);
  } else {
    log_obs[static_cast<size_t>(next)] = v;
    next = (next + 1) % capacity;
  }
  ++total;
}

void FeedbackStore::DimRing::Reset() {
  log_obs.clear();
  next = 0;
}

double FeedbackStore::DimRing::Mean() const {
  double s = 0.0;
  for (double v : log_obs) s += v;
  return count() > 0 ? s / static_cast<double>(count()) : 0.0;
}

double FeedbackStore::DimRing::Sigma() const {
  const int n = count();
  if (n < 2) return 0.0;
  const double m = Mean();
  double ss = 0.0;
  for (double v : log_obs) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(n - 1));
}

FeedbackStore::FeedbackStore(Options options) : options_(options) {}

std::string FeedbackStore::Key(const std::string& query_id, int dims,
                               const std::string& storage) {
  return query_id + "|d" + std::to_string(dims) + "|" + storage;
}

FeedbackStore::Entry* FeedbackStore::Touch(const std::string& key, int dims) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    lru_.push_front(key);
    Entry e;
    e.rings.resize(static_cast<size_t>(dims));
    e.lru_it = lru_.begin();
    it = entries_.emplace(key, std::move(e)).first;
    if (options_.capacity > 0 && entries_.size() > options_.capacity) {
      const std::string victim = lru_.back();
      lru_.pop_back();
      entries_.erase(victim);
      ++stats_.evictions;
      // The victim cannot be the key just inserted: capacity >= 1 and the
      // new key sits at the front.
      it = entries_.find(key);
    }
  } else {
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
  }
  return &it->second;
}

void FeedbackStore::Condense(const Entry& e, Calibration* out) const {
  out->valid = !e.rings.empty();
  out->sel.clear();
  out->lo.clear();
  out->hi.clear();
  for (const DimRing& r : e.rings) {
    if (r.count() < options_.min_observations) {
      out->valid = false;
      break;
    }
    const double mean = r.Mean();
    const double sigma = std::max(r.Sigma(), options_.sigma_floor);
    const double half = options_.confidence_z * sigma;
    out->sel.push_back(std::min(std::pow(10.0, mean), 1.0));
    out->lo.push_back(std::pow(10.0, std::max(mean - half, kMinLogSel)));
    out->hi.push_back(std::min(std::pow(10.0, mean + half), 1.0));
  }
  if (!out->valid) {
    out->sel.clear();
    out->lo.clear();
    out->hi.clear();
  }
  out->confirmed_cost = e.confirmed_cost;
  out->confirmed_contour = e.confirmed_contour;
  out->version = e.version;
}

FeedbackStore::DriftSignal FeedbackStore::Observe(
    const std::string& key, const std::vector<double>& observed,
    double total_cost, int final_contour) {
  DriftSignal signal;
  if (observed.empty()) return signal;
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = Touch(key, static_cast<int>(observed.size()));
  if (e->rings.size() != observed.size()) {
    // Dimensionality changed under the same key (shouldn't happen with
    // Key() discipline); start over rather than mix regimes.
    e->rings.assign(observed.size(), DimRing{});
    e->cusum = 0.0;
  }

  // Drift check BEFORE admitting the observation: residuals are measured
  // against the calibration the previous regime established.
  Calibration cal;
  Condense(*e, &cal);
  if (cal.valid) {
    double worst = 0.0;
    int worst_dim = -1;
    for (size_t d = 0; d < observed.size(); ++d) {
      if (!(observed[d] > 0.0)) continue;
      const DimRing& r = e->rings[d];
      const double sigma = std::max(r.Sigma(), options_.sigma_floor);
      const double resid = std::abs(Log10Clamped(observed[d]) - r.Mean()) / sigma;
      if (resid > worst) {
        worst = resid;
        worst_dim = static_cast<int>(d);
      }
    }
    e->cusum = std::max(0.0, e->cusum + worst - options_.drift_slack);
    if (e->cusum >= options_.drift_threshold) {
      // New regime: drop the history, seed it with this observation, and
      // tell the caller to evict dependent cached state.
      for (DimRing& r : e->rings) r.Reset();
      signal.drifted = true;
      signal.dim = worst_dim;
      signal.score = e->cusum;
      e->cusum = 0.0;
      e->confirmed_cost = -1.0;
      e->confirmed_contour = -1;
      ++e->version;
      ++stats_.drift_events;
    }
  }

  bool recorded = false;
  for (size_t d = 0; d < observed.size(); ++d) {
    if (!(observed[d] > 0.0)) continue;  // unknown dims don't pollute rings
    e->rings[d].Add(options_.ring_capacity, Log10Clamped(observed[d]));
    recorded = true;
  }
  if (recorded) {
    ++stats_.observations;
    e->confirmed_cost = total_cost;
    e->confirmed_contour = final_contour;
  }
  return signal;
}

FeedbackStore::Calibration FeedbackStore::Get(const std::string& key,
                                              RobustnessReport* report) {
  Calibration out;
  // Fault surface: a corrupt/unavailable store degrades the lookup to a
  // cold start. Evaluated before touching state so the draw sequence is
  // position-independent.
  if (FaultInjector::Armed()) {
    const FaultAction act =
        FaultInjector::Global().Evaluate(fault_site::kFeedbackStoreLoad);
    if (act) {
      out.degraded = true;
      if (report != nullptr) ++report->feedback_degradations;
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.load_degradations;
      ++stats_.misses;
      return out;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    Condense(it->second, &out);
  }
  if (out.valid) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return out;
}

void FeedbackStore::Invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void FeedbackStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
}

FeedbackStore::Stats FeedbackStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.size = entries_.size();
  return out;
}

}  // namespace feedback
}  // namespace robustqp
