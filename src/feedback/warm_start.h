// Turns a FeedbackStore calibration into the WarmStartHint that
// DiscoveryAlgorithm::Run executes before its cold doubling sequence.
//
// Construction (all on the built ESS, no new optimizer calls):
//  * the confidence region [lo, hi] is snapped conservatively to the
//    grid — lo floored, hi ceiled — so the snapped region contains the
//    continuous one;
//  * k_hi = ContourOf(OptimalCost(hi corner)) is the contour whose cold
//    budget provably covers every in-region location: by plan cost
//    monotonicity (PCM), the hi-corner optimal plan P_hi costs at most
//    OptimalCost(hi) <= ContourCost(k_hi) at any q_a <= hi
//    coordinate-wise;
//  * k_w = max(ContourOf(OptimalCost(lo corner)), k_hi - max_probes + 1)
//    is where probing starts — the last confirmed contour the region's
//    cheap corner admits, width-capped so the in-region warm
//    sub-optimality stays bounded (see below);
//  * the hint's probes execute P_hi in full (non-spill) mode with the
//    UNCHANGED cold contour budgets ContourCost(k_w) .. ContourCost(k_hi).
//
// Guarantee. For a true location inside the region the final probe
// completes (PCM argument above), and the geometric budget schedule
// bounds the warm spend by sum_{t<=k_hi} ContourCost(t) <= 2*ContourCost(k_hi)
// at ratio 2 — so warm sub-optimality is at most 2*r^max_probes (the
// region spans < max_probes contours and the optimal cost exceeds
// ContourCost(k_w - 1)). For a true location OUTSIDE the region all
// probes fail, Run falls back to the complete cold doubling sequence
// from contour 0 — the cold MSO analysis applies verbatim to that phase,
// and the abandoned warm spend is an additive tax of at most
// 2*ContourCost(k_hi). The guarantee is therefore never weakened, only
// the constant improved; with drift detection feeding the store the tax
// is paid at most once per regime change.

#ifndef ROBUSTQP_FEEDBACK_WARM_START_H_
#define ROBUSTQP_FEEDBACK_WARM_START_H_

#include "core/discovery.h"
#include "ess/ess.h"
#include "feedback/feedback_store.h"

namespace robustqp {
namespace feedback {

/// Builds the warm-start hint for `cal` over `ess`. Returns an invalid
/// hint (Run treats it as absent, bit-identically to a cold start) when
/// the calibration is invalid/degraded or its dimensionality does not
/// match the surface. `max_probes` caps the probe count (and thereby the
/// in-region sub-optimality at 2*r^max_probes).
WarmStartHint MakeWarmStartHint(const Ess& ess,
                                const FeedbackStore::Calibration& cal,
                                int max_probes = 2);

}  // namespace feedback
}  // namespace robustqp

#endif  // ROBUSTQP_FEEDBACK_WARM_START_H_
