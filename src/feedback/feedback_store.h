// FeedbackStore — the selectivity memory that closes the robustness loop.
//
// Every execution already *measures* true selectivities (the engine's
// observed per-node counts, the simulated oracle's q_a); this store is
// where those measurements accumulate so that repeated queries stop
// paying the full discovery cost. It is keyed like the ContextCache — one
// entry per (query shape, ESS dimensionality) — and holds, per entry, a
// bounded ring of recent observations for each ESS dimension in log10
// space (selectivities are log-uniform by construction of the grid).
//
// Three consumers:
//  * calibration — Get() condenses the rings into a per-dim point
//    estimate plus a confidence region; the service layer rewrites the
//    optimizer's native seed estimate toward it (kNative mode) and the
//    warm-start builder shrinks the ESS search box to it;
//  * warm-started discovery — feedback/warm_start.h turns a calibration
//    into a WarmStartHint (probe plan + cold-schedule budgets) that
//    DiscoveryAlgorithm::Run executes before falling back to the full
//    doubling sequence, so the MSO guarantee is never weakened;
//  * drift detection — Observe() runs a CUSUM monitor per key over the
//    standardized residual of each new observation against the current
//    calibration. When the statistic crosses its threshold the entry's
//    history is invalidated (the new regime's observation seeds a fresh
//    ring) and the caller is told to evict dependent cached state
//    (ContextCache entries, cached plans).
//
// Fault surface: Get() evaluates the feedback.store_load site. An armed
// fault there models a corrupt or unavailable store — the lookup degrades
// to a cold start (invalid calibration), the degradation is counted in
// the store's stats and charged to the caller's RobustnessReport, and
// correctness is untouched because an invalid calibration produces
// exactly the disabled-store execution path.
//
// Thread safety: all methods are safe from any thread (one internal
// mutex; the store is bounded, so no operation blocks on I/O or builds).

#ifndef ROBUSTQP_FEEDBACK_FEEDBACK_STORE_H_
#define ROBUSTQP_FEEDBACK_FEEDBACK_STORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/fault.h"

namespace robustqp {
namespace feedback {

class FeedbackStore {
 public:
  struct Options {
    /// Maximum keys resident; least-recently-used beyond this are
    /// evicted. 0 means unbounded.
    size_t capacity = 64;
    /// Observations retained per (key, dimension) ring.
    int ring_capacity = 32;
    /// Observations required per dimension before a calibration is
    /// considered valid.
    int min_observations = 2;
    /// Half-width of the confidence region in (floored) standard
    /// deviations of the log10 observations.
    double confidence_z = 2.0;
    /// Floor on the per-dim log10 standard deviation, so a run of
    /// identical observations still yields a non-degenerate region and
    /// the drift residual stays finite.
    double sigma_floor = 0.05;
    /// CUSUM drift threshold: the one-sided statistic
    ///   S <- max(0, S + |residual| - drift_slack)
    /// crossing this value invalidates the calibration. With the default
    /// slack, one 5-sigma observation trips it immediately while
    /// sub-slack residuals decay S back toward zero.
    double drift_threshold = 3.0;
    /// Residual slack absorbed per observation before CUSUM accumulates.
    double drift_slack = 1.0;
  };

  /// Condensed view of one key's observation history.
  struct Calibration {
    /// False until min_observations have accumulated on every dimension
    /// (and immediately after a drift invalidation). Invalid calibrations
    /// must produce exactly the store-disabled execution path.
    bool valid = false;
    /// True when feedback.store_load degraded this lookup; valid is false.
    bool degraded = false;
    /// Per-dim geometric mean of the observed selectivities.
    std::vector<double> sel;
    /// Confidence region corners: lo <= sel <= hi, clamped to (0, 1].
    std::vector<double> lo;
    std::vector<double> hi;
    /// Cost and contour of the most recent confirmed (completed) run;
    /// -1 until one is recorded.
    double confirmed_cost = -1.0;
    int confirmed_contour = -1;
    /// Bumped on every drift invalidation of this key.
    int64_t version = 0;
  };

  /// What Observe() concluded about the newest observation.
  struct DriftSignal {
    /// True iff the CUSUM monitor fired: the calibration was invalidated
    /// and dependent cached state (ContextCache entries, cached plans)
    /// should be evicted / re-costed by the caller.
    bool drifted = false;
    /// Dimension with the largest residual when drifted.
    int dim = -1;
    /// The CUSUM statistic that crossed the threshold.
    double score = 0.0;
  };

  /// Cumulative counters since construction.
  struct Stats {
    int64_t observations = 0;  // Observe() calls that recorded data
    int64_t hits = 0;          // Get() with a valid calibration
    int64_t misses = 0;        // Get() without one (incl. degraded)
    int64_t drift_events = 0;  // CUSUM invalidations
    int64_t evictions = 0;     // LRU evictions
    int64_t load_degradations = 0;  // feedback.store_load faults absorbed
    size_t size = 0;           // keys currently resident
  };

  FeedbackStore() : FeedbackStore(Options{}) {}
  explicit FeedbackStore(Options options);

  FeedbackStore(const FeedbackStore&) = delete;
  FeedbackStore& operator=(const FeedbackStore&) = delete;

  /// The store key for a suite query with a D-dimensional ESS. Encodings,
  /// engines and build modes deliberately do NOT key the store: the
  /// data's true selectivities are identical across all of them, so their
  /// observations pool. The *storage backend* ("resident" / "mmap") DOES
  /// key it: a mapped catalog can be an externally built store (e.g.
  /// robustqp_server --scale-dir) holding different data under the same
  /// query ids, so observations from distinct backends must never pool.
  static std::string Key(const std::string& query_id, int dims,
                         const std::string& storage = "resident");

  /// Records one completed run's observed per-dim selectivities (entries
  /// <= 0 are unknown and skipped). `total_cost` / `final_contour`
  /// describe the completed run and become the calibration's confirmed
  /// fields. Runs the CUSUM drift monitor first: when it fires, the key's
  /// history is dropped, `observed` seeds the new regime, and the
  /// returned signal tells the caller to invalidate dependent caches.
  DriftSignal Observe(const std::string& key,
                      const std::vector<double>& observed, double total_cost,
                      int final_contour);

  /// Current calibration for `key` (hit/miss counted). Evaluates the
  /// feedback.store_load fault site when the injector is armed: a fault
  /// degrades the lookup to a cold start — Calibration{valid=false,
  /// degraded=true} — counted in stats and, when `report` is non-null,
  /// charged as a feedback degradation.
  Calibration Get(const std::string& key, RobustnessReport* report = nullptr);

  /// Drops one key's history (calibration becomes invalid until
  /// min_observations accumulate again).
  void Invalidate(const std::string& key);

  /// Drops everything (counters are kept).
  void Clear();

  Stats stats() const;
  const Options& options() const { return options_; }

 private:
  /// Per-dimension observation ring in log10 space.
  struct DimRing {
    std::vector<double> log_obs;  // ring storage, size <= ring_capacity
    int next = 0;                 // overwrite position once full
    int64_t total = 0;            // observations ever recorded

    int count() const { return static_cast<int>(log_obs.size()); }
    void Add(int capacity, double v);
    void Reset();
    double Mean() const;
    /// Sample standard deviation (0 for < 2 observations).
    double Sigma() const;
  };

  struct Entry {
    std::vector<DimRing> rings;
    double cusum = 0.0;
    double confirmed_cost = -1.0;
    int confirmed_contour = -1;
    int64_t version = 0;
    std::list<std::string>::iterator lru_it;
  };

  /// Caller holds mu_. Returns the entry, creating + LRU-bumping it.
  Entry* Touch(const std::string& key, int dims);
  /// Caller holds mu_. Fills `out` from `e` (valid iff every dim has
  /// enough observations).
  void Condense(const Entry& e, Calibration* out) const;

  const Options options_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  // front = most recently used
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace feedback
}  // namespace robustqp

#endif  // ROBUSTQP_FEEDBACK_FEEDBACK_STORE_H_
