#include "feedback/warm_start.h"

#include <algorithm>

namespace robustqp {
namespace feedback {

WarmStartHint MakeWarmStartHint(const Ess& ess,
                                const FeedbackStore::Calibration& cal,
                                int max_probes) {
  WarmStartHint hint;
  const int dims = ess.dims();
  if (!cal.valid || cal.degraded ||
      static_cast<int>(cal.sel.size()) != dims || max_probes < 1) {
    return hint;
  }

  // Snap the confidence region to the grid conservatively: lo floored,
  // hi ceiled, so the snapped box contains the continuous region.
  const LogAxis& axis = ess.axis();
  GridLoc lo_loc(static_cast<size_t>(dims));
  GridLoc hi_loc(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    const size_t sd = static_cast<size_t>(d);
    lo_loc[sd] = std::max(axis.FloorIndex(cal.lo[sd]), 0);
    hi_loc[sd] = std::min(axis.CeilIndex(cal.hi[sd]), axis.points() - 1);
  }

  const int k_hi = ess.ContourOf(ess.OptimalCost(hi_loc));
  int k_w = ess.ContourOf(ess.OptimalCost(lo_loc));
  // Width cap: starting more than max_probes-1 contours below k_hi would
  // let the failed-probe spend outgrow the 2*r^max_probes bound.
  k_w = std::max(k_w, k_hi - (max_probes - 1));

  hint.valid = true;
  hint.probe_plan = ess.OptimalPlan(hi_loc);
  hint.first_contour = k_w;
  hint.last_contour = k_hi;
  for (int t = k_w; t <= k_hi; ++t) {
    hint.probe_budgets.push_back(ess.ContourCost(t));
  }
  return hint;
}

}  // namespace feedback
}  // namespace robustqp
