#include "core/alignedbound.h"

#include <algorithm>
#include <limits>

#include "common/status.h"
#include "core/recovery.h"

namespace robustqp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

AlignedBound::AlignedBound(const Ess* ess) : AlignedBound(ess, Options{}) {}

AlignedBound::AlignedBound(const Ess* ess, Options options)
    : ess_(ess),
      options_(options),
      fallback_(ess, SpillBound::Options{options.budget_inflation}),
      constrained_(ess) {}

const AlignedBound::ContourChoice& AlignedBound::GetChoice(
    int contour, const std::vector<int>& fixed) const {
  const auto key = std::make_pair(contour, fixed);
  auto it = choice_cache_.find(key);
  if (it != choice_cache_.end()) return it->second;

  const int dims = ess_->dims();
  std::vector<bool> unlearned(static_cast<size_t>(dims));
  std::vector<int> udims;
  for (int d = 0; d < dims; ++d) {
    const bool u = fixed[static_cast<size_t>(d)] < 0;
    unlearned[static_cast<size_t>(d)] = u;
    if (u) udims.push_back(d);
  }
  RQP_CHECK(udims.size() >= 2);

  ContourChoice choice;
  const std::vector<int64_t> frontier = ess_->SliceFrontier(contour, fixed);
  if (frontier.empty()) {
    return choice_cache_.emplace(key, std::move(choice)).first->second;
  }

  // Cache per-location data.
  const size_t n = frontier.size();
  std::vector<GridLoc> locs(n);
  std::vector<int> sdim(n);
  for (size_t l = 0; l < n; ++l) {
    locs[l] = ess_->FromLinear(frontier[l]);
    sdim[l] = ess_->OptimalPlan(frontier[l])->SpillDimension(unlearned);
  }

  // Best coordinate reached by a natively j-spilling location, per dim.
  std::vector<int> spill_max(static_cast<size_t>(dims), -1);
  std::vector<size_t> spill_argmax(static_cast<size_t>(dims), 0);
  for (size_t l = 0; l < n; ++l) {
    const int j = sdim[l];
    if (j < 0) continue;
    if (locs[l][static_cast<size_t>(j)] > spill_max[static_cast<size_t>(j)]) {
      spill_max[static_cast<size_t>(j)] = locs[l][static_cast<size_t>(j)];
      spill_argmax[static_cast<size_t>(j)] = l;
    }
  }

  // Evaluate every candidate part T (subset of unlearned dims) with its
  // best leader dimension.
  const int k = static_cast<int>(udims.size());
  const uint64_t limit = uint64_t{1} << k;
  std::vector<PartExec> part_best(static_cast<size_t>(limit));
  std::vector<double> part_cost(static_cast<size_t>(limit), kInf);
  part_cost[0] = 0.0;

  for (uint64_t sub = 1; sub < limit; ++sub) {
    uint64_t members = 0;  // bitmask over full dim ids
    for (int b = 0; b < k; ++b) {
      if (sub & (uint64_t{1} << b)) {
        members |= uint64_t{1} << udims[static_cast<size_t>(b)];
      }
    }
    // IC_i|T: locations whose optimal plan spills on a member dim.
    std::vector<size_t> ict;
    for (size_t l = 0; l < n; ++l) {
      if (sdim[l] >= 0 && (members & (uint64_t{1} << sdim[l]))) {
        ict.push_back(l);
      }
    }
    PartExec best;
    best.members = members;
    if (ict.empty()) {
      best.vacuous = true;
      best.penalty = 0.0;
      part_best[sub] = best;
      part_cost[sub] = 0.0;
      continue;
    }
    double best_pen = kInf;
    for (int b = 0; b < k; ++b) {
      if (!(sub & (uint64_t{1} << b))) continue;
      const int j = udims[static_cast<size_t>(b)];
      // Extreme coordinate of the group along the candidate leader.
      int qjt = -1;
      for (size_t l : ict) {
        qjt = std::max(qjt, locs[l][static_cast<size_t>(j)]);
      }
      if (spill_max[static_cast<size_t>(j)] >= qjt &&
          spill_max[static_cast<size_t>(j)] >= 0) {
        // Natively aligned for this group: execute the j-spilling plan
        // that reaches the group's extreme, with the contour budget.
        if (1.0 < best_pen) {
          best_pen = 1.0;
          best.leader = j;
          best.plan =
              ess_->OptimalPlan(frontier[spill_argmax[static_cast<size_t>(j)]]);
          best.budget = ess_->ContourCost(contour);
          best.penalty = 1.0;
          best.vacuous = false;
        }
        continue;
      }
      // Induce PSA: cheapest j-spilling replacement at a location on the
      // group's extreme slice S = {q in IC_i : q.j == qjt}.
      std::vector<size_t> slice;
      for (size_t l = 0; l < n; ++l) {
        if (locs[l][static_cast<size_t>(j)] == qjt) slice.push_back(l);
      }
      std::sort(slice.begin(), slice.end(), [&](size_t a, size_t b2) {
        return ess_->OptimalCost(frontier[a]) < ess_->OptimalCost(frontier[b2]);
      });
      if (static_cast<int>(slice.size()) > options_.max_induce_candidates) {
        slice.resize(static_cast<size_t>(options_.max_induce_candidates));
      }
      for (size_t l : slice) {
        const ConstrainedPlanCache::Entry& e =
            constrained_.Get(frontier[l], j, unlearned);
        if (e.plan == nullptr) continue;
        const double pen = e.cost / ess_->OptimalCost(frontier[l]);
        if (pen < best_pen) {
          best_pen = pen;
          best.leader = j;
          best.plan = e.plan;
          best.budget = e.cost;
          best.penalty = pen;
          best.vacuous = false;
        }
      }
    }
    part_best[sub] = best;
    part_cost[sub] = best_pen;
  }

  // Minimum-total-penalty partition of the unlearned dims (subset DP over
  // partition covers; Section 5.2.2 shows partitions suffice).
  std::vector<double> dp(static_cast<size_t>(limit), kInf);
  std::vector<uint64_t> pick(static_cast<size_t>(limit), 0);
  dp[0] = 0.0;
  for (uint64_t mask = 1; mask < limit; ++mask) {
    const uint64_t low = mask & (~mask + 1);
    for (uint64_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
      if (!(sub & low)) continue;  // canonical: part containing lowest bit
      if (part_cost[sub] == kInf || dp[mask ^ sub] == kInf) continue;
      const double total = part_cost[sub] + dp[mask ^ sub];
      if (total < dp[mask]) {
        dp[mask] = total;
        pick[mask] = sub;
      }
    }
  }
  const uint64_t full = limit - 1;
  // Singleton parts are always feasible (native by construction or
  // vacuous), so a finite partition exists.
  RQP_CHECK(dp[full] != kInf);
  choice.total_penalty = dp[full];
  for (uint64_t mask = full; mask != 0; mask ^= pick[mask]) {
    choice.parts.push_back(part_best[pick[mask]]);
  }
  return choice_cache_.emplace(key, std::move(choice)).first->second;
}

DiscoveryResult AlignedBound::RunImpl(ExecutionOracle* oracle) const {
  const int dims = ess_->dims();
  DiscoveryResult result;

  std::vector<int> fixed(static_cast<size_t>(dims), -1);
  std::vector<double> learned(static_cast<size_t>(dims), -1.0);
  std::vector<int> floor(static_cast<size_t>(dims), -1);

  // Part budgets come from the alignment machinery; the monitored (and
  // thus escalation-base) quantity is the underlying contour cost.
  ContourBudgetMonitor monitor;
  double contour_cost = 0.0;
  int i = 0;
  while (i < ess_->num_contours()) {
    std::vector<int> udims;
    for (int d = 0; d < dims; ++d) {
      if (fixed[static_cast<size_t>(d)] < 0) udims.push_back(d);
    }
    if (udims.size() <= 1) {
      if (udims.empty()) {
        result.completed = true;
        result.final_contour = i;
        return result;
      }
      fallback_.RunPlanBouquet1D(oracle, i, fixed, learned, &result);
      return result;
    }

    contour_cost = monitor.Clamp(ess_->ContourCost(i), &result.robustness);
    const ContourChoice& choice = GetChoice(i, fixed);
    bool exec_complete = false;
    for (const PartExec& part : choice.parts) {
      if (part.vacuous) continue;
      const ExecOutcome outcome = oracle->ExecuteSpill(
          *part.plan, part.leader, part.budget * options_.budget_inflation,
          learned);
      result.total_cost += outcome.cost_charged;
      result.max_replacement_penalty =
          std::max(result.max_replacement_penalty, part.penalty);

      ExecutionStep step;
      step.contour = i;
      step.plan_name = part.plan->display_name();
      step.spill_dim = part.leader;
      step.budget = part.budget;
      step.cost_charged = outcome.cost_charged;
      step.completed = outcome.completed;
      step.learned_sel = outcome.learned_sel;
      step.qrun = fallback_.QrunSnapshot(learned, floor);
      result.steps.push_back(std::move(step));

      if (outcome.completed) {
        learned[static_cast<size_t>(part.leader)] = outcome.learned_sel;
        fixed[static_cast<size_t>(part.leader)] =
            outcome.learned_floor >= 0
                ? outcome.learned_floor
                : ess_->axis().NearestIndex(outcome.learned_sel);
        exec_complete = true;
        break;
      }
      floor[static_cast<size_t>(part.leader)] =
          std::max(floor[static_cast<size_t>(part.leader)], outcome.learned_floor);
    }
    if (!exec_complete) ++i;
  }
  result.completed = false;
  result.final_contour = ess_->num_contours() - 1;
  if (FaultInjector::Armed()) {
    EscalateToCompletion(oracle, *ess_,
                         contour_cost * options_.budget_inflation, &result);
  }
  return result;
}

}  // namespace robustqp
