#include "core/recovery.h"

#include <algorithm>

namespace robustqp {

void EscalateToCompletion(ExecutionOracle* oracle, const Ess& ess,
                          double last_budget, DiscoveryResult* result) {
  // The terminus (all-selectivities-maximal) location's optimal plan: by
  // PCM its cost at any location is at most its cost at the terminus,
  // i.e. at most cmax.
  const Plan* terminus = ess.OptimalPlan(ess.num_locations() - 1);
  double budget = std::max(last_budget, ess.cmax());
  for (int attempt = 0; attempt < 64; ++attempt) {
    budget *= 2.0;
    const ExecOutcome outcome = oracle->ExecuteFull(*terminus, budget);
    result->total_cost += outcome.cost_charged;
    ++result->robustness.escalations;
    ExecutionStep step;
    step.contour = ess.num_contours() - 1;
    step.plan_name = terminus->display_name();
    step.spill_dim = -1;
    step.budget = budget;
    step.cost_charged = outcome.cost_charged;
    step.completed = outcome.completed;
    result->steps.push_back(std::move(step));
    if (outcome.completed) {
      result->completed = true;
      result->final_contour = ess.num_contours() - 1;
      return;
    }
  }
}

}  // namespace robustqp
