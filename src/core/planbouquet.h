// PlanBouquet (Dutt & Haritsa, reimplemented as the paper's comparison
// baseline): contour-wise sequenced cost-limited executions of the POSP
// plans on each iso-cost contour, with the anorexic-reduction transform
// (lambda-threshold plan-set set-cover) applied per contour. MSO
// guarantee: 4 * (1 + lambda) * rho_RED, a *behavioural* bound that
// depends on the optimizer's plan diagram.

#ifndef ROBUSTQP_CORE_PLANBOUQUET_H_
#define ROBUSTQP_CORE_PLANBOUQUET_H_

#include <vector>

#include "core/discovery.h"
#include "core/oracle.h"
#include "ess/ess.h"

namespace robustqp {

class PlanDiagram;

/// The PlanBouquet algorithm. Contour plan sets (optionally anorexically
/// reduced) are computed once at construction; Run is stateless, so a
/// built instance is fully thread-safe (Clone still hands out copies to
/// keep the DiscoveryAlgorithm contract uniform).
class PlanBouquet : public DiscoveryAlgorithm {
 public:
  struct Options {
    /// Anorexic-reduction cost-degradation threshold; the paper's default
    /// is 0.2. Set `anorexic` false to execute the full POSP contour sets.
    double lambda = 0.2;
    bool anorexic = true;
    /// Budget multiplier for delta-bounded cost-model error (Section 7);
    /// see SpillBound::Options::budget_inflation.
    double budget_inflation = 1.0;
  };

  PlanBouquet(const Ess* ess, Options options);
  explicit PlanBouquet(const Ess* ess);

  /// Draws the contour plan sets from an anorexically *reduced plan
  /// diagram* (the setup of the paper's Section 6.2: global reduction a
  /// la [10], then contour extraction). `diagram` must be over the same
  /// Ess and already reduced with the same lambda as `options.lambda`.
  PlanBouquet(const Ess* ess, const PlanDiagram& diagram, Options options);

  /// Runs discovery against `oracle` until the query completes.
  DiscoveryResult RunImpl(ExecutionOracle* oracle) const override;

  std::string name() const override { return "PlanBouquet"; }

  std::unique_ptr<DiscoveryAlgorithm> Clone() const override {
    return std::make_unique<PlanBouquet>(*this);
  }

  /// Maximum contour plan-set cardinality after reduction — the rho that
  /// enters the MSO guarantee.
  int rho() const { return rho_; }
  /// Maximum cardinality before reduction.
  int rho_original() const { return rho_original_; }

  /// The behavioural MSO guarantee 4 (1 + lambda) rho.
  double MsoGuarantee() const override {
    return 4.0 * (1.0 + effective_lambda()) * rho_;
  }

  double effective_lambda() const {
    return options_.anorexic ? options_.lambda : 0.0;
  }

  /// The (possibly reduced) plan set of contour i, in execution order.
  const std::vector<const Plan*>& ContourSet(int i) const {
    return contour_sets_[static_cast<size_t>(i)];
  }

  /// Total number of distinct plans across all contour sets — the size of
  /// the plan bouquet.
  int BouquetSize() const;

 private:
  const Ess* ess_;
  Options options_;
  std::vector<std::vector<const Plan*>> contour_sets_;
  int rho_ = 0;
  int rho_original_ = 0;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_PLANBOUQUET_H_
