// SpillBound (Section 4): contour-wise selectivity discovery with
// half-space pruning via spill-mode execution and contour-density-
// independent progress. MSO guarantee: D^2 + 3D, a function of the query
// alone (its number of error-prone predicates), independent of the
// optimizer and platform.

#ifndef ROBUSTQP_CORE_SPILLBOUND_H_
#define ROBUSTQP_CORE_SPILLBOUND_H_

#include <map>
#include <utility>
#include <vector>

#include "core/discovery.h"
#include "core/oracle.h"
#include "ess/ess.h"

namespace robustqp {

/// The SpillBound algorithm (Algorithm 1 of the paper), including the
/// 2D special case and the terminal 1D PlanBouquet phase. One instance
/// can be reused across many oracle runs; per-(contour, learnt-slice)
/// plan choices are memoized, which makes exhaustive MSO sweeps cheap.
/// The memo caches make Run logically-const-only — see the
/// DiscoveryAlgorithm concurrency contract (parallel sweeps Clone()).
class SpillBound : public DiscoveryAlgorithm {
 public:
  struct Options {
    /// Multiplies every execution budget. Deployments with a known
    /// delta-bounded cost model set this to (1 + delta) so that budgeted
    /// executions still complete despite cost-model error; the MSO
    /// guarantee then inflates to (D^2 + 3D)(1 + delta)^2 (Section 7).
    double budget_inflation = 1.0;
  };

  SpillBound(const Ess* ess, Options options)
      : ess_(ess), options_(options) {}
  explicit SpillBound(const Ess* ess) : SpillBound(ess, Options{}) {}

  /// Runs discovery against `oracle` until the query completes.
  DiscoveryResult RunImpl(ExecutionOracle* oracle) const override;

  std::string name() const override { return "SpillBound"; }

  /// The instance guarantee under the ESS's configured inter-contour
  /// cost ratio — D^2 + 3D for the paper's default doubling.
  double MsoGuarantee() const override {
    return MsoGuaranteeForRatio(ess_->dims(), ess_->config().contour_cost_ratio);
  }

  std::unique_ptr<DiscoveryAlgorithm> Clone() const override {
    return std::make_unique<SpillBound>(ess_, options_);
  }

  /// The platform-independent MSO guarantee (Theorem 4.5); D = 1 queries
  /// degenerate to 1D PlanBouquet whose guarantee is 4.
  static double MsoGuarantee(int num_epps) {
    if (num_epps <= 1) return 4.0;
    const double d = num_epps;
    return d * d + 3.0 * d;
  }

  /// The guarantee generalized to an inter-contour cost ratio r (the
  /// Section 4.2 remark: doubling is not ideal — e.g. r = 1.8 gives 9.9
  /// instead of 10 in 2D): r * (D * r / (r-1) + D (D-1) / 2), and the 1D
  /// PlanBouquet value r^2 / (r-1).
  static double MsoGuaranteeForRatio(int num_epps, double ratio) {
    const double r = ratio;
    if (num_epps <= 1) return r * r / (r - 1.0);
    const double d = num_epps;
    return r * (d * r / (r - 1.0) + d * (d - 1.0) / 2.0);
  }

  const Ess& ess() const { return *ess_; }

 private:
  friend class AlignedBound;

  /// Chosen (location, plan) for spilling on one dimension at a contour.
  struct SpillChoice {
    bool valid = false;
    int64_t loc = -1;
    int coord = -1;  // the location's grid index along the dimension
    const Plan* plan = nullptr;
  };

  /// Per-dimension P^j_max choices for (contour, learnt-slice); memoized.
  const std::vector<SpillChoice>& GetSpillChoices(
      int contour, const std::vector<int>& fixed) const;

  /// The single plan executed per contour in the terminal 1D phase: the
  /// optimal plan at the slice frontier's top location. Memoized.
  const SpillChoice& Get1DChoice(int contour,
                                 const std::vector<int>& fixed) const;

  /// Runs the terminal 1D PlanBouquet phase starting at `contour`;
  /// appends to `result` and returns when the query completes.
  void RunPlanBouquet1D(ExecutionOracle* oracle, int contour,
                        const std::vector<int>& fixed,
                        const std::vector<double>& learned,
                        DiscoveryResult* result) const;

  std::vector<double> QrunSnapshot(const std::vector<double>& learned,
                                   const std::vector<int>& floor) const;

  const Ess* ess_;
  Options options_;
  // Memo caches (logical constness; not synchronized — see the
  // DiscoveryAlgorithm concurrency contract).
  mutable std::map<std::pair<int, std::vector<int>>, std::vector<SpillChoice>> choice_cache_;
  mutable std::map<std::pair<int, std::vector<int>>, SpillChoice> choice1d_cache_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_SPILLBOUND_H_
