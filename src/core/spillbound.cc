#include "core/spillbound.h"

#include <algorithm>

#include "common/status.h"
#include "core/recovery.h"

namespace robustqp {

const std::vector<SpillBound::SpillChoice>& SpillBound::GetSpillChoices(
    int contour, const std::vector<int>& fixed) const {
  const auto key = std::make_pair(contour, fixed);
  auto it = choice_cache_.find(key);
  if (it != choice_cache_.end()) return it->second;

  const int dims = ess_->dims();
  std::vector<bool> unlearned(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    unlearned[static_cast<size_t>(d)] = fixed[static_cast<size_t>(d)] < 0;
  }

  std::vector<SpillChoice> choices(static_cast<size_t>(dims));
  for (int64_t lin : ess_->SliceFrontier(contour, fixed)) {
    const Plan* plan = ess_->OptimalPlan(lin);
    const int sdim = plan->SpillDimension(unlearned);
    if (sdim < 0) continue;
    const GridLoc loc = ess_->FromLinear(lin);
    SpillChoice& c = choices[static_cast<size_t>(sdim)];
    if (!c.valid || loc[static_cast<size_t>(sdim)] > c.coord) {
      c.valid = true;
      c.loc = lin;
      c.coord = loc[static_cast<size_t>(sdim)];
      c.plan = plan;
    }
  }
  return choice_cache_.emplace(key, std::move(choices)).first->second;
}

const SpillBound::SpillChoice& SpillBound::Get1DChoice(
    int contour, const std::vector<int>& fixed) const {
  const auto key = std::make_pair(contour, fixed);
  auto it = choice1d_cache_.find(key);
  if (it != choice1d_cache_.end()) return it->second;

  int free_dim = -1;
  for (int d = 0; d < ess_->dims(); ++d) {
    if (fixed[static_cast<size_t>(d)] < 0) {
      RQP_CHECK(free_dim < 0);
      free_dim = d;
    }
  }
  RQP_CHECK(free_dim >= 0);

  SpillChoice choice;
  for (int64_t lin : ess_->SliceFrontier(contour, fixed)) {
    const GridLoc loc = ess_->FromLinear(lin);
    const int coord = loc[static_cast<size_t>(free_dim)];
    if (!choice.valid || coord > choice.coord) {
      choice.valid = true;
      choice.loc = lin;
      choice.coord = coord;
      choice.plan = ess_->OptimalPlan(lin);
    }
  }
  return choice1d_cache_.emplace(key, choice).first->second;
}

std::vector<double> SpillBound::QrunSnapshot(const std::vector<double>& learned,
                                             const std::vector<int>& floor) const {
  std::vector<double> qrun(static_cast<size_t>(ess_->dims()));
  for (int d = 0; d < ess_->dims(); ++d) {
    if (learned[static_cast<size_t>(d)] >= 0.0) {
      qrun[static_cast<size_t>(d)] = learned[static_cast<size_t>(d)];
    } else {
      const int f = floor[static_cast<size_t>(d)];
      qrun[static_cast<size_t>(d)] = f >= 0 ? ess_->axis().value(f) : 0.0;
    }
  }
  return qrun;
}

void SpillBound::RunPlanBouquet1D(ExecutionOracle* oracle, int contour,
                                  const std::vector<int>& fixed,
                                  const std::vector<double>& learned,
                                  DiscoveryResult* result) const {
  // In the terminal 1D phase, each contour of the residual (line) ESS
  // carries a single plan which is executed in regular (non-spill) mode —
  // spilling in 1D would only weaken the bound (Section 4.1).
  ContourBudgetMonitor monitor;
  double budget = 0.0;
  for (int i = contour; i < ess_->num_contours(); ++i) {
    const SpillChoice& choice = Get1DChoice(i, fixed);
    if (!choice.valid) continue;
    budget = monitor.Clamp(ess_->ContourCost(i) * options_.budget_inflation,
                           &result->robustness);
    const ExecOutcome outcome = oracle->ExecuteFull(*choice.plan, budget);
    result->total_cost += outcome.cost_charged;
    ExecutionStep step;
    step.contour = i;
    step.plan_name = choice.plan->display_name();
    step.spill_dim = -1;
    step.budget = budget;
    step.cost_charged = outcome.cost_charged;
    step.completed = outcome.completed;
    step.qrun = learned;
    for (double& v : step.qrun) v = std::max(v, 0.0);
    result->steps.push_back(std::move(step));
    if (outcome.completed) {
      result->completed = true;
      result->final_contour = i;
      return;
    }
  }
  result->completed = false;
  result->final_contour = ess_->num_contours() - 1;
  if (FaultInjector::Armed()) {
    EscalateToCompletion(oracle, *ess_, budget, result);
  }
}

DiscoveryResult SpillBound::RunImpl(ExecutionOracle* oracle) const {
  const int dims = ess_->dims();
  DiscoveryResult result;

  std::vector<int> fixed(static_cast<size_t>(dims), -1);
  std::vector<double> learned(static_cast<size_t>(dims), -1.0);
  std::vector<int> floor(static_cast<size_t>(dims), -1);

  ContourBudgetMonitor monitor;
  double budget = 0.0;
  int i = 0;
  while (i < ess_->num_contours()) {
    std::vector<int> unlearned_dims;
    for (int d = 0; d < dims; ++d) {
      if (fixed[static_cast<size_t>(d)] < 0) unlearned_dims.push_back(d);
    }
    if (unlearned_dims.size() <= 1) {
      if (unlearned_dims.empty()) {
        // Every selectivity is exactly known; a single optimal execution
        // remains. (Unreachable via the normal flow, which switches to
        // the 1D phase at |EPP| == 1, but kept for safety.)
        result.completed = true;
        result.final_contour = i;
        return result;
      }
      RunPlanBouquet1D(oracle, i, fixed, learned, &result);
      return result;
    }

    const std::vector<SpillChoice>& choices = GetSpillChoices(i, fixed);
    budget = monitor.Clamp(ess_->ContourCost(i) * options_.budget_inflation,
                           &result.robustness);
    bool exec_complete = false;
    for (int d : unlearned_dims) {
      const SpillChoice& c = choices[static_cast<size_t>(d)];
      if (!c.valid) continue;  // no plan on this contour spills on d
      const ExecOutcome outcome = oracle->ExecuteSpill(*c.plan, d, budget, learned);
      result.total_cost += outcome.cost_charged;

      ExecutionStep step;
      step.contour = i;
      step.plan_name = c.plan->display_name();
      step.spill_dim = d;
      step.budget = budget;
      step.cost_charged = outcome.cost_charged;
      step.completed = outcome.completed;
      step.learned_sel = outcome.learned_sel;

      if (outcome.completed) {
        learned[static_cast<size_t>(d)] = outcome.learned_sel;
        fixed[static_cast<size_t>(d)] =
            outcome.learned_floor >= 0
                ? outcome.learned_floor
                : ess_->axis().NearestIndex(outcome.learned_sel);
        exec_complete = true;
        step.qrun = QrunSnapshot(learned, floor);
        result.steps.push_back(std::move(step));
        break;
      }
      // Half-space pruned: q_a.d exceeds what the budget covered.
      floor[static_cast<size_t>(d)] =
          std::max({floor[static_cast<size_t>(d)], outcome.learned_floor, c.coord});
      step.qrun = QrunSnapshot(learned, floor);
      result.steps.push_back(std::move(step));
    }
    if (!exec_complete) ++i;
  }
  result.completed = false;
  result.final_contour = ess_->num_contours() - 1;
  if (FaultInjector::Armed()) {
    EscalateToCompletion(oracle, *ess_, budget, &result);
  }
  return result;
}

}  // namespace robustqp
