#include "core/discovery.h"

#include "core/oracle.h"

namespace robustqp {

DiscoveryResult DiscoveryAlgorithm::Run(ExecutionOracle* oracle) const {
  oracle->ResetReport();
  DiscoveryResult result = RunImpl(oracle);
  result.robustness.Merge(oracle->report());
  return result;
}

}  // namespace robustqp
