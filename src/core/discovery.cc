#include "core/discovery.h"

#include "core/oracle.h"

namespace robustqp {

DiscoveryResult DiscoveryAlgorithm::Run(ExecutionOracle* oracle) const {
  oracle->ResetReport();
  DiscoveryResult result = RunImpl(oracle);
  result.robustness.Merge(oracle->report());
  result.composed_mso = shard::ComposeMsoBound(MsoGuarantee(),
                                               oracle->num_shards());
  return result;
}

}  // namespace robustqp
