#include "core/discovery.h"

#include <utility>

#include "core/oracle.h"
#include "plan/plan.h"

namespace robustqp {

DiscoveryResult DiscoveryAlgorithm::Run(ExecutionOracle* oracle) const {
  return Run(oracle, nullptr);
}

DiscoveryResult DiscoveryAlgorithm::Run(ExecutionOracle* oracle,
                                        const WarmStartHint* warm) const {
  oracle->ResetReport();
  DiscoveryResult result;

  // Warm phase: try the region's upper-corner plan under the unchanged
  // cold contour budgets. Any completion ends the run; exhausting the
  // probes proves the true location crossed the confidence region and
  // the full cold sequence below takes over from contour 0.
  if (warm != nullptr && warm->valid && warm->probe_plan != nullptr &&
      !warm->probe_budgets.empty()) {
    result.warm_started = true;
    for (size_t i = 0; i < warm->probe_budgets.size(); ++i) {
      const double budget = warm->probe_budgets[i];
      const ExecOutcome out = oracle->ExecuteFull(*warm->probe_plan, budget);
      ExecutionStep step;
      step.contour = warm->first_contour + static_cast<int>(i);
      step.plan_name = warm->probe_plan->display_name();
      step.spill_dim = -1;
      step.budget = budget;
      step.cost_charged = out.cost_charged;
      step.completed = out.completed;
      result.steps.push_back(std::move(step));
      result.total_cost += out.cost_charged;
      result.warm_cost += out.cost_charged;
      if (out.completed) {
        result.completed = true;
        result.warm_completed = true;
        result.final_contour = warm->first_contour + static_cast<int>(i);
        break;
      }
    }
    if (!result.completed) result.warm_fell_back = true;
  }

  if (!result.completed) {
    // Cold phase — the algorithm's own doubling sequence, in full. For a
    // fallback run the warm spend above is an additive surcharge on this
    // phase's cold-MSO-bounded cost (at most twice the largest probe
    // budget under a geometric contour schedule).
    DiscoveryResult cold = RunImpl(oracle);
    result.completed = cold.completed;
    result.final_contour = cold.final_contour;
    result.max_replacement_penalty = cold.max_replacement_penalty;
    result.total_cost += cold.total_cost;
    for (ExecutionStep& step : cold.steps) {
      result.steps.push_back(std::move(step));
    }
  }

  result.robustness.Merge(oracle->report());
  result.composed_mso = shard::ComposeMsoBound(MsoGuarantee(),
                                               oracle->num_shards());
  return result;
}

}  // namespace robustqp
