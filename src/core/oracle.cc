#include "core/oracle.h"

#include <algorithm>

#include "common/status.h"

namespace robustqp {

namespace {
/// Completion tolerance: treat cost <= budget * (1 + eps) as within budget
/// so that contour-boundary locations are not lost to rounding.
constexpr double kBudgetEps = 1e-9;
}  // namespace

SimulatedOracle::SimulatedOracle(const Ess* ess, GridLoc qa)
    : ess_(ess), qa_(std::move(qa)) {
  RQP_CHECK(static_cast<int>(qa_.size()) == ess_->dims());
  qa_sel_ = ess_->SelAt(qa_);
}

ExecOutcome SimulatedOracle::ExecuteFull(const Plan& plan, double budget) {
  if (FaultInjector::Armed()) return ExecuteFullFaulted(plan, budget);
  ExecOutcome out;
  const double cost = ess_->optimizer().PlanCost(plan, qa_sel_);
  if (cost <= budget * (1.0 + kBudgetEps)) {
    out.completed = true;
    out.cost_charged = cost;
  } else {
    out.completed = false;
    out.cost_charged = budget;
  }
  return out;
}

ExecOutcome SimulatedOracle::ExecuteSpill(const Plan& plan, int dim,
                                          double budget,
                                          const std::vector<double>& learned) {
  if (FaultInjector::Armed()) {
    return ExecuteSpillFaulted(plan, dim, budget, learned);
  }
  ExecOutcome out;
  const int node_id = plan.EppNodeId(dim);
  RQP_CHECK(node_id >= 0);

  // The spilled subtree contains, besides dim itself, only already-learnt
  // epps (Section 3.1.3's ordering rule), so its cost is a monotone
  // function of dim's selectivity alone. Evaluate it at a point that fixes
  // learnt dims to their exact values; remaining dims are irrelevant to
  // the subtree and pinned to q_a for definiteness.
  EssPoint base = qa_sel_;
  for (int d = 0; d < ess_->dims(); ++d) {
    if (learned[static_cast<size_t>(d)] >= 0.0) {
      base[static_cast<size_t>(d)] = learned[static_cast<size_t>(d)];
    }
  }
  auto spill_cost = [&](double sel) {
    EssPoint q = base;
    q[static_cast<size_t>(dim)] = sel;
    return ess_->optimizer().CostPlan(plan, q).cost[static_cast<size_t>(node_id)];
  };

  const double true_sel = qa_sel_[static_cast<size_t>(dim)];
  const double cost_at_truth = spill_cost(true_sel);
  if (cost_at_truth <= budget * (1.0 + kBudgetEps)) {
    out.completed = true;
    out.cost_charged = cost_at_truth;
    out.learned_sel = true_sel;
    out.learned_floor = qa_[static_cast<size_t>(dim)];
    return out;
  }

  out.completed = false;
  out.cost_charged = budget;
  // Largest axis index whose selectivity the budget covered: binary search
  // (spill cost is monotone in the selectivity).
  const LogAxis& axis = ess_->axis();
  int lo = -1;
  int hi = axis.points() - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (spill_cost(axis.value(mid)) <= budget * (1.0 + kBudgetEps)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  out.learned_floor = lo;
  out.learned_sel = lo >= 0 ? axis.value(lo) : 0.0;
  return out;
}

ExecOutcome SimulatedOracle::ExecuteFullFaulted(const Plan& plan,
                                                double budget) {
  FaultInjector& inj = FaultInjector::Global();
  std::vector<int> sites;
  CollectFaultSites(plan.root(), &sites);

  const FaultedRunOutcome outcome = RunWithFaultRetries(
      inj, sites, budget,
      [&](double eff, const FaultRunState&) -> FaultAttempt {
        FaultAttempt a;
        double cost = ess_->optimizer().PlanCost(plan, qa_sel_);
        const FaultAction act = inj.Evaluate(fault_site::kOracleCostModel);
        if (act.kind == FaultKind::kCorrupt) {
          cost *= act.magnitude;
          ++report_.corruptions;
        }
        if (num_shards_ > 1) {
          // Sharded chaos: each simulated worker carries cost/n of the
          // run; a straggler draw charges the duplicate work of its
          // speculative re-dispatch (u of the slice for transients, all
          // of it for permanents), a spike draw surcharges without
          // re-dispatch. Recovery always succeeds, so the only effect is
          // the surcharge — which can push a contour execution over its
          // budget, exactly the chaos the composed bound must absorb.
          const double per_shard = cost / static_cast<double>(num_shards_);
          for (int s = 0; s < num_shards_; ++s) {
            const FaultAction sa = inj.Evaluate(fault_site::kShardStraggler);
            if (sa.kind == FaultKind::kTransient ||
                sa.kind == FaultKind::kPermanent) {
              const double dup =
                  (sa.kind == FaultKind::kTransient ? sa.u : 1.0) * per_shard;
              cost += dup;
              ++report_.shard_stragglers;
              report_.retried_cost += dup;
            } else if (sa.kind == FaultKind::kCostSpike) {
              const double extra = (sa.magnitude - 1.0) * per_shard;
              cost += extra;
              ++report_.cost_spikes;
              report_.spike_cost += extra;
            }
          }
        }
        if (eff < 0.0 || cost <= eff * (1.0 + kBudgetEps)) {
          a.completed = true;
          a.cost = cost;
        } else {
          a.completed = false;
          a.cost = eff;
        }
        return a;
      });

  ExecOutcome out;
  out.completed = outcome.status.ok() && outcome.completed;
  // A permanent fault (or retry exhaustion) consumes the whole budget: the
  // same accounting a failed contour execution has, so MSO stays valid.
  out.cost_charged =
      outcome.status.ok() ? outcome.cost_used : (budget >= 0.0 ? budget : 0.0);
  report_.Merge(outcome.report);
  return out;
}

ExecOutcome SimulatedOracle::ExecuteSpillFaulted(
    const Plan& plan, int dim, double budget,
    const std::vector<double>& learned) {
  FaultInjector& inj = FaultInjector::Global();
  const int node_id = plan.EppNodeId(dim);
  RQP_CHECK(node_id >= 0);

  EssPoint base = qa_sel_;
  for (int d = 0; d < ess_->dims(); ++d) {
    if (learned[static_cast<size_t>(d)] >= 0.0) {
      base[static_cast<size_t>(d)] = learned[static_cast<size_t>(d)];
    }
  }
  // Each evaluation draws its own corruption, so a corrupted cost model is
  // genuinely non-monotone across the scan below — which is exactly what
  // the PCM monitor exists to catch.
  auto spill_cost = [&](double sel) {
    EssPoint q = base;
    q[static_cast<size_t>(dim)] = sel;
    double c =
        ess_->optimizer().CostPlan(plan, q).cost[static_cast<size_t>(node_id)];
    const FaultAction act = inj.Evaluate(fault_site::kOracleCostModel);
    if (act.kind == FaultKind::kCorrupt) {
      c *= act.magnitude;
      ++report_.corruptions;
    }
    return c;
  };

  std::vector<int> sites;
  CollectFaultSites(plan.node(node_id), &sites);
  sites.push_back(fault_site::kExecSpillRun);

  const double true_sel = qa_sel_[static_cast<size_t>(dim)];
  const LogAxis& axis = ess_->axis();
  int floor = -1;
  double floor_sel = 0.0;

  const FaultedRunOutcome outcome = RunWithFaultRetries(
      inj, sites, budget,
      [&](double eff, const FaultRunState&) -> FaultAttempt {
        FaultAttempt a;
        const double cost_at_truth = spill_cost(true_sel);
        if (eff < 0.0 || cost_at_truth <= eff * (1.0 + kBudgetEps)) {
          a.completed = true;
          a.cost = cost_at_truth;
          floor = qa_[static_cast<size_t>(dim)];
          floor_sel = true_sel;
          return a;
        }
        a.completed = false;
        a.cost = eff;
        // Unlike the disarmed path's binary search, scan the axis in order
        // (a fixed, schedule-independent evaluation sequence) and force the
        // costs isotone: a dip below the running max is a PCM violation —
        // counted and clamped so the learned floor stays sound.
        floor = -1;
        double running_max = 0.0;
        for (int i = 0; i < axis.points(); ++i) {
          double c = spill_cost(axis.value(i));
          if (c < running_max) {
            ++report_.pcm_violations;
            c = running_max;
          }
          running_max = c;
          if (c <= eff * (1.0 + kBudgetEps)) {
            floor = i;
          } else {
            break;
          }
        }
        floor_sel = floor >= 0 ? axis.value(floor) : 0.0;
        return a;
      });

  ExecOutcome out;
  out.completed = outcome.status.ok() && outcome.completed;
  out.cost_charged =
      outcome.status.ok() ? outcome.cost_used : (budget >= 0.0 ? budget : 0.0);
  if (outcome.final_attempt_valid && outcome.status.ok()) {
    out.learned_floor = floor;
    out.learned_sel = floor_sel;
  }
  report_.Merge(outcome.report);
  return out;
}

std::vector<double> ObservedEppSelectivities(const Plan& plan,
                                             const ExecutionResult& result) {
  const Query& query = plan.query();
  std::vector<double> obs(static_cast<size_t>(query.num_epps()), -1.0);
  for (int d = 0; d < query.num_epps(); ++d) {
    const int node_id = plan.EppNodeId(d);
    if (node_id < 0) continue;
    const int filter_idx = query.FilterOfEppDimension(d);
    if (filter_idx >= 0) {
      const auto& fi = plan.node(node_id).filter_indices;
      const auto it = std::find(fi.begin(), fi.end(), filter_idx);
      if (it == fi.end()) continue;
      obs[static_cast<size_t>(d)] = result.ObservedFilterSelectivity(
          node_id, static_cast<int>(it - fi.begin()));
    } else {
      obs[static_cast<size_t>(d)] = result.ObservedJoinSelectivity(node_id);
    }
  }
  return obs;
}

ExecOutcome EngineOracle::ExecuteFull(const Plan& plan, double budget) {
  ExecOutcome out;
  Result<ExecutionResult> res = executor_->Execute(plan, budget);
  if (!res.ok() && FaultInjector::Armed()) {
    // Injected permanent fault: the run is lost and the whole budget is
    // charged, preserving the failed-execution accounting of the bounds.
    ++report_.permanent_faults;
    out.completed = false;
    out.cost_charged = budget >= 0.0 ? budget : 0.0;
    return out;
  }
  RQP_CHECK(res.ok());
  out.completed = res->completed;
  out.cost_charged = res->completed ? res->cost_used : budget;
  report_.Merge(res->robustness);
  if (res->completed) {
    last_full_ = res.MoveValue();
    has_last_full_ = true;
    // Feedback observations come from the committed attempt's NodeStats
    // only: RunFaulted publishes the surviving attempt's counters and
    // zeroes them when no attempt survived, so retried transient work
    // can never inflate what the store learns.
    observed_ = ObservedEppSelectivities(plan, last_full_);
  }
  return out;
}

ExecOutcome EngineOracle::ExecuteSpill(const Plan& plan, int dim,
                                       double budget,
                                       const std::vector<double>&) {
  ExecOutcome out;
  const int node_id = plan.EppNodeId(dim);
  RQP_CHECK(node_id >= 0);
  Result<ExecutionResult> res = executor_->ExecuteSpill(plan, node_id, budget);
  if (!res.ok() && FaultInjector::Armed()) {
    ++report_.permanent_faults;
    out.completed = false;
    out.cost_charged = budget >= 0.0 ? budget : 0.0;
    out.learned_floor = -1;
    return out;
  }
  RQP_CHECK(res.ok());
  out.completed = res->completed;
  out.cost_charged = res->completed ? res->cost_used : budget;
  report_.Merge(res->robustness);
  if (res->completed) {
    const int filter_idx = plan.query().FilterOfEppDimension(dim);
    if (filter_idx >= 0) {
      // Position of the error-prone filter within the spill (scan) node's
      // predicate list.
      const auto& fi = plan.node(node_id).filter_indices;
      const auto it = std::find(fi.begin(), fi.end(), filter_idx);
      RQP_CHECK(it != fi.end());
      out.learned_sel = res->ObservedFilterSelectivity(
          node_id, static_cast<int>(it - fi.begin()));
    } else {
      out.learned_sel = res->ObservedJoinSelectivity(node_id);
    }
  }
  out.learned_floor = -1;  // partial counts are not inverted in engine mode
  return out;
}

}  // namespace robustqp
