// The MSO lower bound (Theorem 4.6): for any deterministic half-space
// discovery algorithm and D >= 2 there exists a D-dimensional ESS forcing
// MSO >= D. This module implements the adversary argument behind the
// theorem as an explicit game, so the bound can be demonstrated (and
// regression-tested) against arbitrary discovery strategies.
//
// Game model. There are D scenarios S_1..S_D; in scenario S_j the true
// location sits at the far end of axis j and at the origin of every other
// axis, and the scenario's dedicated plan finishes the query at cost C
// (the oracle-optimal cost, identical in every scenario — so MSO is
// total-cost / C). A discovery probe on dimension j (the spill-execution
// analogue) with budget >= C resolves that dimension; with budget < C it
// reveals nothing (the iso-cost geometry hides all scenarios below C).
// A completion attempt with plan k finishes only if the true scenario is
// S_k. The adversary answers adaptively, always keeping a consistent
// scenario alive, so any deterministic strategy must resolve D-1
// dimensions (>= C each) before its completion attempt (>= C) can be
// forced to succeed: total >= D * C.

#ifndef ROBUSTQP_CORE_LOWER_BOUND_GAME_H_
#define ROBUSTQP_CORE_LOWER_BOUND_GAME_H_

#include <vector>

namespace robustqp {

/// Adaptive adversary for the half-space discovery lower bound.
class LowerBoundGame {
 public:
  /// `dims` >= 2 scenarios; `unit_cost` is C, the oracle-optimal cost.
  explicit LowerBoundGame(int dims, double unit_cost = 1.0);

  struct ProbeResult {
    /// Probe resolved the dimension (budget >= C and the adversary had to
    /// commit).
    bool resolved = false;
    /// When resolved: true iff the true location lies at the far end of
    /// the probed axis — i.e. the probed dimension's scenario is the
    /// answer.
    bool coordinate_is_far = false;
  };

  /// Spill-execution analogue: probe dimension `dim` with `budget`.
  ProbeResult ProbeDimension(int dim, double budget);

  /// Full-execution analogue: attempt to finish with scenario `k`'s plan.
  /// Succeeds only if the adversary can no longer deny scenario k.
  bool AttemptCompletion(int k, double budget);

  bool finished() const { return finished_; }
  double total_cost() const { return total_cost_; }
  double optimal_cost() const { return unit_; }
  /// Scenarios still consistent with every answer given so far.
  int remaining_scenarios() const;
  int dims() const { return static_cast<int>(alive_.size()); }

 private:
  double unit_;
  std::vector<bool> alive_;
  bool finished_ = false;
  double total_cost_ = 0.0;
};

/// Plays a SpillBound-style strategy (round-robin dimension probes with
/// doubling budgets, then completion) against the adversary; returns the
/// incurred sub-optimality (total cost / C). Always >= D by Theorem 4.6.
double PlaySpillBoundStyleStrategy(int dims);

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_LOWER_BOUND_GAME_H_
