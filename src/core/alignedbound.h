// AlignedBound (Section 5): SpillBound's contour-wise discovery enhanced
// with predicate-set alignment. At each contour the remaining epps are
// partitioned into predicate sets, each with a leader dimension; PSA is
// exploited natively where it holds and induced (via minimum-penalty plan
// replacement, using the constrained-optimizer search) where it does not.
// A contour then needs only one execution per part — fewer than one per
// epp — driving the MSO into the platform-independent range
// [2D + 2, D^2 + 3D].

#ifndef ROBUSTQP_CORE_ALIGNEDBOUND_H_
#define ROBUSTQP_CORE_ALIGNEDBOUND_H_

#include <map>
#include <utility>
#include <vector>

#include "core/alignment.h"
#include "core/discovery.h"
#include "core/oracle.h"
#include "core/spillbound.h"
#include "ess/ess.h"

namespace robustqp {

/// The AlignedBound algorithm (Algorithm 2). Reusable across runs;
/// per-(contour, learnt-slice) partition choices and constrained-plan
/// searches are memoized, which makes Run logically-const-only — see the
/// DiscoveryAlgorithm concurrency contract (parallel sweeps Clone()).
class AlignedBound : public DiscoveryAlgorithm {
 public:
  struct Options {
    /// Cap on the number of slice locations probed when inducing PSA for
    /// one (part, leader) pair — a pragmatic bound on constrained-
    /// optimizer calls; the chosen pair stays sound regardless.
    int max_induce_candidates = 6;
    /// Budget multiplier for delta-bounded cost-model error (Section 7);
    /// see SpillBound::Options::budget_inflation.
    double budget_inflation = 1.0;
  };

  AlignedBound(const Ess* ess, Options options);
  explicit AlignedBound(const Ess* ess);

  /// Runs discovery against `oracle` until the query completes. The
  /// result's max_replacement_penalty carries the paper's Table 4
  /// statistic for the partitions this run executed.
  DiscoveryResult RunImpl(ExecutionOracle* oracle) const override;

  std::string name() const override { return "AlignedBound"; }

  /// The guaranteed (upper) end of the instance's MSO range: alignment
  /// only removes executions relative to SpillBound, so SpillBound's
  /// ratio-generalized bound applies (Theorem 4.5 via Theorem 5.1).
  double MsoGuarantee() const override {
    return SpillBound::MsoGuaranteeForRatio(ess_->dims(),
                                            ess_->config().contour_cost_ratio);
  }

  std::unique_ptr<DiscoveryAlgorithm> Clone() const override {
    return std::make_unique<AlignedBound>(ess_, options_);
  }

  /// The guarantee range [2D+2, D^2+3D] (Theorems 5.1 / 4.5).
  static std::pair<double, double> MsoGuaranteeRange(int num_epps) {
    const double d = num_epps;
    return {2.0 * d + 2.0, d * d + 3.0 * d};
  }

 private:
  /// One part of the chosen partition: spill `plan` on `leader` with
  /// `budget` (= Cost(plan, anchor location)).
  struct PartExec {
    int leader = -1;
    uint64_t members = 0;  // bitmask over ESS dims
    const Plan* plan = nullptr;
    double budget = 0.0;
    double penalty = 1.0;
    bool vacuous = false;  // no contour location spills on any member
  };

  struct ContourChoice {
    std::vector<PartExec> parts;
    double total_penalty = 0.0;
  };

  const ContourChoice& GetChoice(int contour,
                                 const std::vector<int>& fixed) const;

  const Ess* ess_;
  Options options_;
  SpillBound fallback_;  // supplies the terminal 1D phase
  // Memo caches (logical constness; not synchronized — see the
  // DiscoveryAlgorithm concurrency contract).
  mutable ConstrainedPlanCache constrained_;
  mutable std::map<std::pair<int, std::vector<int>>, ContourChoice> choice_cache_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_ALIGNEDBOUND_H_
