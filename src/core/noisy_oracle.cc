#include "core/noisy_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace robustqp {

namespace {
constexpr double kBudgetEps = 1e-9;

/// FNV-1a over a string, mixed with a seed.
uint64_t HashString(const std::string& s, uint64_t seed) {
  uint64_t h = 1469598103934665603ull ^ seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

NoisyOracle::NoisyOracle(const Ess* ess, GridLoc qa, double delta,
                         uint64_t seed)
    : ess_(ess), qa_(std::move(qa)), delta_(delta), seed_(seed) {
  RQP_CHECK(delta_ >= 0.0);
  qa_sel_ = ess_->SelAt(qa_);
}

double NoisyOracle::ErrorFactor(const Plan& plan) const {
  if (delta_ == 0.0) return 1.0;
  const uint64_t h = HashString(plan.signature(), seed_);
  // Uniform in [-1, 1] from the hash, then exponentiated into the
  // multiplicative band [1/(1+delta), (1+delta)].
  const double u =
      2.0 * (static_cast<double>(h % 1000003ull) / 1000002.0) - 1.0;
  return std::pow(1.0 + delta_, u);
}

ExecOutcome NoisyOracle::ExecuteFull(const Plan& plan, double budget) {
  ExecOutcome out;
  const double cost =
      ess_->optimizer().PlanCost(plan, qa_sel_) * ErrorFactor(plan);
  if (cost <= budget * (1.0 + kBudgetEps)) {
    out.completed = true;
    out.cost_charged = cost;
  } else {
    out.completed = false;
    out.cost_charged = budget;
  }
  return out;
}

ExecOutcome NoisyOracle::ExecuteSpill(const Plan& plan, int dim, double budget,
                                      const std::vector<double>& learned) {
  ExecOutcome out;
  const int node_id = plan.EppNodeId(dim);
  RQP_CHECK(node_id >= 0);
  const double factor = ErrorFactor(plan);

  EssPoint base = qa_sel_;
  for (int d = 0; d < ess_->dims(); ++d) {
    if (learned[static_cast<size_t>(d)] >= 0.0) {
      base[static_cast<size_t>(d)] = learned[static_cast<size_t>(d)];
    }
  }
  auto actual_spill_cost = [&](double sel) {
    EssPoint q = base;
    q[static_cast<size_t>(dim)] = sel;
    return ess_->optimizer().CostPlan(plan, q).cost[static_cast<size_t>(node_id)] *
           factor;
  };

  const double true_sel = qa_sel_[static_cast<size_t>(dim)];
  const double cost_at_truth = actual_spill_cost(true_sel);
  if (cost_at_truth <= budget * (1.0 + kBudgetEps)) {
    out.completed = true;
    out.cost_charged = cost_at_truth;
    out.learned_sel = true_sel;
    out.learned_floor = qa_[static_cast<size_t>(dim)];
    return out;
  }
  out.completed = false;
  out.cost_charged = budget;
  // Certified floor: the abort only proves the *modelled* spill cost
  // exceeded budget / (1 + delta), so the sound inversion divides the
  // budget by the worst-case optimistic error before searching.
  const LogAxis& axis = ess_->axis();
  const double sound_budget = budget / (1.0 + delta_) * factor;
  int lo = -1;
  int hi = axis.points() - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (actual_spill_cost(axis.value(mid)) <= sound_budget * (1.0 + kBudgetEps)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  out.learned_floor = lo;
  out.learned_sel = lo >= 0 ? axis.value(lo) : 0.0;
  return out;
}

double NoisyOracle::ActualOptimalCost() const {
  double best = std::numeric_limits<double>::infinity();
  for (const Plan* p : ess_->pool().plans()) {
    best = std::min(best,
                    ess_->optimizer().PlanCost(*p, qa_sel_) * ErrorFactor(*p));
  }
  return best;
}

}  // namespace robustqp
