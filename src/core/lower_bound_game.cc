#include "core/lower_bound_game.h"

#include <algorithm>

#include "common/status.h"

namespace robustqp {

LowerBoundGame::LowerBoundGame(int dims, double unit_cost) : unit_(unit_cost) {
  RQP_CHECK(dims >= 2);
  RQP_CHECK(unit_cost > 0.0);
  alive_.assign(static_cast<size_t>(dims), true);
}

int LowerBoundGame::remaining_scenarios() const {
  int n = 0;
  for (bool a : alive_) {
    if (a) ++n;
  }
  return n;
}

LowerBoundGame::ProbeResult LowerBoundGame::ProbeDimension(int dim,
                                                           double budget) {
  RQP_CHECK(!finished_);
  RQP_CHECK(dim >= 0 && dim < dims());
  ProbeResult result;
  if (budget < unit_) {
    // Below the first informative contour: the execution aborts without
    // distinguishing any scenario; the whole budget is burnt.
    total_cost_ += budget;
    return result;
  }
  // The probe would resolve the dimension, so the adversary must commit.
  // A resolving spill completes at actual cost C (<= budget).
  total_cost_ += unit_;
  result.resolved = true;
  if (alive_[static_cast<size_t>(dim)] && remaining_scenarios() > 1) {
    // The adversary can still deny this scenario: answer "origin".
    alive_[static_cast<size_t>(dim)] = false;
    result.coordinate_is_far = false;
  } else {
    // Either already denied, or it is the last consistent scenario.
    result.coordinate_is_far = alive_[static_cast<size_t>(dim)];
  }
  return result;
}

bool LowerBoundGame::AttemptCompletion(int k, double budget) {
  RQP_CHECK(!finished_);
  RQP_CHECK(k >= 0 && k < dims());
  if (budget < unit_) {
    // Even the right plan cannot finish below its optimal cost.
    total_cost_ += budget;
    return false;
  }
  if (alive_[static_cast<size_t>(k)] && remaining_scenarios() == 1) {
    // The adversary is pinned: the plan completes at its true cost.
    total_cost_ += unit_;
    finished_ = true;
    return true;
  }
  // The adversary denies scenario k (keeping some other scenario alive):
  // the plan does not terminate within any finite budget it is given.
  alive_[static_cast<size_t>(k)] = false;
  RQP_CHECK(remaining_scenarios() >= 1);
  total_cost_ += budget;
  return false;
}

double PlaySpillBoundStyleStrategy(int dims) {
  LowerBoundGame game(dims, 1.0);
  // Contour-wise: doubling budgets; on each "contour", probe every
  // still-unresolved dimension once (the CDI pattern), then attempt
  // completion with any pinned scenario.
  std::vector<bool> resolved(static_cast<size_t>(dims), false);
  double budget = 0.25;  // start below the informative contour
  int far_dim = -1;
  while (!game.finished()) {
    for (int d = 0; d < dims && far_dim < 0; ++d) {
      if (resolved[static_cast<size_t>(d)]) continue;
      const LowerBoundGame::ProbeResult r = game.ProbeDimension(d, budget);
      if (r.resolved) {
        resolved[static_cast<size_t>(d)] = true;
        if (r.coordinate_is_far) far_dim = d;
      }
    }
    if (far_dim >= 0) {
      RQP_CHECK(game.AttemptCompletion(far_dim, budget * 2.0));
      break;
    }
    if (game.remaining_scenarios() == 1) {
      for (int d = 0; d < dims; ++d) {
        if (!resolved[static_cast<size_t>(d)]) far_dim = d;
      }
      if (far_dim < 0) {
        // All probed dims answered "origin"; the survivor is the one the
        // adversary kept — find it by probing the remaining one.
        break;
      }
      RQP_CHECK(game.AttemptCompletion(far_dim, budget * 2.0));
      break;
    }
    budget *= 2.0;
  }
  RQP_CHECK(game.finished());
  return game.total_cost() / game.optimal_cost();
}

}  // namespace robustqp
