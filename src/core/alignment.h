// Contour-alignment machinery (Sections 3.3 and 5): a cache around the
// optimizer's constrained "least-cost plan that spills on epp j" search,
// and the contour-alignment analysis behind the paper's Table 2.

#ifndef ROBUSTQP_CORE_ALIGNMENT_H_
#define ROBUSTQP_CORE_ALIGNMENT_H_

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "ess/ess.h"
#include "plan/plan_pool.h"

namespace robustqp {

/// Memoizing wrapper over Optimizer::OptimizeConstrainedSpill, keyed by
/// (grid location, spill dimension, unlearned-set). Owns the replacement
/// plans it discovers.
class ConstrainedPlanCache {
 public:
  explicit ConstrainedPlanCache(const Ess* ess) : ess_(ess) {}

  struct Entry {
    /// Cost of the cheapest plan spilling on the dimension at the
    /// location; infinity if none exists.
    double cost = 0.0;
    const Plan* plan = nullptr;
  };

  /// Cheapest plan at grid location `lin` whose spill dimension (w.r.t.
  /// `unlearned`) is `dim`.
  const Entry& Get(int64_t lin, int dim, const std::vector<bool>& unlearned);

  int num_plans() const { return pool_.size(); }

 private:
  const Ess* ess_;
  PlanPool pool_;
  std::map<std::tuple<int64_t, int, uint64_t>, Entry> cache_;
};

/// Alignment diagnostics for one contour over the full (nothing-learnt)
/// ESS grid.
struct ContourAlignmentInfo {
  /// Contour is natively aligned along at least one dimension, i.e. some
  /// dimension's extreme location has an optimal plan spilling on it.
  bool natively_aligned = false;
  /// Minimum over dimensions of the replacement penalty needed to align
  /// the contour (1.0 when natively aligned).
  double min_induce_penalty = 1.0;
};

/// Per-contour alignment analysis (drives Table 2). `max_candidates`
/// caps how many extreme locations are probed per dimension.
std::vector<ContourAlignmentInfo> AnalyzeContourAlignment(
    const Ess& ess, ConstrainedPlanCache* cache, int max_candidates = 8);

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_ALIGNMENT_H_
