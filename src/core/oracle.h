// The execution oracle: the single interface through which the discovery
// algorithms (PlanBouquet / SpillBound / AlignedBound) interact with the
// "database engine". An oracle answers budgeted execution requests —
// full-plan or spill-mode — with whether the execution completed, what it
// cost, and (for spills) what was learnt about the spilled predicate's
// selectivity, i.e. exactly the semantics of Lemma 3.1.
//
// Two implementations:
//  * SimulatedOracle — answers from the cost model at a hypothetical true
//    location q_a. Used for the exhaustive MSO/ASO sweeps of Sections
//    6.1-6.2 (which the paper also runs on optimizer cost values).
//  * EngineOracle — actually runs the Volcano executor with budget
//    enforcement and tuple-count monitoring on stored data. Used for the
//    wall-clock experiments of Section 6.3 / Table 3.

#ifndef ROBUSTQP_CORE_ORACLE_H_
#define ROBUSTQP_CORE_ORACLE_H_

#include <vector>

#include "common/fault.h"
#include "ess/ess.h"
#include "exec/executor.h"

namespace robustqp {

/// Outcome of one budgeted execution request.
struct ExecOutcome {
  /// True iff the (sub)plan ran to completion within the budget.
  bool completed = false;
  /// Cost units actually charged (== budget for aborted executions; the
  /// true execution cost, <= budget, for completed ones).
  double cost_charged = 0.0;
  /// Spill executions only: the exact selectivity of the spilled epp when
  /// completed; unused otherwise.
  double learned_sel = 0.0;
  /// Spill executions only: greatest grid index i such that the execution
  /// certifies q_a's selectivity exceeds axis[i] coverage — i.e. on abort
  /// we know q_a.dim > axis.value(learned_floor). -1 when nothing was
  /// certified (e.g. engine mode, where partial counts are not inverted).
  int learned_floor = -1;
};

/// Interface the algorithms program against.
class ExecutionOracle {
 public:
  virtual ~ExecutionOracle() = default;

  /// Executes the full plan with `budget` cost units.
  virtual ExecOutcome ExecuteFull(const Plan& plan, double budget) = 0;

  /// Executes `plan` in spill mode on ESS dimension `dim` with `budget`.
  /// `learned` gives the already-learnt dimensions and their exact
  /// selectivities (entries are <0 when unlearnt) — the oracle needs them
  /// to cost the spilled subtree, mirroring the fact that all predicates
  /// upstream of the spill node have exactly-known selectivities.
  virtual ExecOutcome ExecuteSpill(const Plan& plan, int dim, double budget,
                                   const std::vector<double>& learned) = 0;

  /// Robustness accounting accumulated across Execute* calls since the
  /// last ResetReport. All zeros unless fault injection is armed.
  const RobustnessReport& report() const { return report_; }
  void ResetReport() { report_ = RobustnessReport{}; }

  /// Scatter-gather workers behind this oracle's executions. 1 for
  /// simulated oracles and unsharded engines; discovery composes its
  /// per-shard MSO guarantee across this many shards (shard/mso.h).
  virtual int num_shards() const { return 1; }

  /// Per-ESS-dimension selectivities observed by this oracle's
  /// executions, for the feedback store: the engine oracle measures them
  /// on its most recent *completed* full execution (committed attempt
  /// only — retried transient attempts never contribute counts), the
  /// simulated oracle reports its hypothetical truth. Entries <= 0 mean
  /// no evidence for that dimension; empty means nothing completed yet.
  virtual std::vector<double> ObservedSelectivities() const { return {}; }

 protected:
  RobustnessReport report_;
};

/// Cost-model-backed oracle for a hypothetical true location (a grid point
/// of the ESS).
class SimulatedOracle : public ExecutionOracle {
 public:
  SimulatedOracle(const Ess* ess, GridLoc qa);

  ExecOutcome ExecuteFull(const Plan& plan, double budget) override;
  ExecOutcome ExecuteSpill(const Plan& plan, int dim, double budget,
                           const std::vector<double>& learned) override;

  const GridLoc& qa() const { return qa_; }

  /// Sharded chaos mode: full executions are treated as scattered over
  /// `n` simulated workers, each carrying cost/n of the work, and armed
  /// shard.straggler draws surcharge the duplicate fraction — the
  /// cost-model mirror of the engine's speculative re-dispatch
  /// accounting. Clean (disarmed) costs are unchanged at any value.
  void set_num_shards(int n) { num_shards_ = n > 1 ? n : 1; }
  int num_shards() const override { return num_shards_; }

  /// The hypothetical truth — what a measuring engine would observe.
  std::vector<double> ObservedSelectivities() const override {
    return qa_sel_;
  }

 private:
  ExecOutcome ExecuteFullFaulted(const Plan& plan, double budget);
  ExecOutcome ExecuteSpillFaulted(const Plan& plan, int dim, double budget,
                                  const std::vector<double>& learned);

  const Ess* ess_;
  GridLoc qa_;
  EssPoint qa_sel_;
  int num_shards_ = 1;
};

/// Executor-backed oracle: real scans, joins, budget aborts, and observed
/// selectivities on the stored data. The true location is whatever the
/// data implies.
class EngineOracle : public ExecutionOracle {
 public:
  EngineOracle(const Executor* executor) : executor_(executor) {}

  ExecOutcome ExecuteFull(const Plan& plan, double budget) override;
  ExecOutcome ExecuteSpill(const Plan& plan, int dim, double budget,
                           const std::vector<double>& learned) override;

  /// The ExecutionResult (cost ledger, per-node tuple counters) of the most
  /// recent full-plan execution that ran to completion — the execution
  /// whose NodeStats describe the finished query. The service layer
  /// surfaces it per request. Null until some full execution completes.
  const ExecutionResult* last_completed_full() const {
    return has_last_full_ ? &last_full_ : nullptr;
  }

  int num_shards() const override { return executor_->options().num_shards; }

  /// Measured on the most recent completed full execution (committed
  /// attempt only under transient retries; see Executor::RunFaulted).
  std::vector<double> ObservedSelectivities() const override {
    return observed_;
  }

 private:
  const Executor* executor_;
  ExecutionResult last_full_;
  bool has_last_full_ = false;
  std::vector<double> observed_;
};

/// Per-ESS-dimension observed selectivities of one completed execution of
/// `plan`: the filter pass rate for filter epps, the join output ratio
/// for join epps — both from the committed attempt's NodeStats. Entries
/// are -1 for dimensions the plan gives no evidence on. Shared by
/// EngineOracle and the service layer's native-mode engine path.
std::vector<double> ObservedEppSelectivities(const Plan& plan,
                                             const ExecutionResult& result);

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_ORACLE_H_
