#include "core/alignment.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace robustqp {

namespace {
uint64_t MaskOf(const std::vector<bool>& unlearned) {
  uint64_t m = 0;
  for (size_t d = 0; d < unlearned.size(); ++d) {
    if (unlearned[d]) m |= uint64_t{1} << d;
  }
  return m;
}
}  // namespace

const ConstrainedPlanCache::Entry& ConstrainedPlanCache::Get(
    int64_t lin, int dim, const std::vector<bool>& unlearned) {
  const auto key = std::make_tuple(lin, dim, MaskOf(unlearned));
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  Entry entry;
  const EssPoint q = ess_->SelAt(ess_->FromLinear(lin));
  std::unique_ptr<Plan> plan =
      ess_->optimizer().OptimizeConstrainedSpill(q, dim, unlearned);
  if (plan == nullptr) {
    entry.cost = std::numeric_limits<double>::infinity();
    entry.plan = nullptr;
  } else {
    entry.cost = ess_->optimizer().PlanCost(*plan, q);
    entry.plan = pool_.Intern(std::move(plan));
  }
  return cache_.emplace(key, entry).first->second;
}

std::vector<ContourAlignmentInfo> AnalyzeContourAlignment(
    const Ess& ess, ConstrainedPlanCache* cache, int max_candidates) {
  const int dims = ess.dims();
  const std::vector<bool> unlearned(static_cast<size_t>(dims), true);
  std::vector<ContourAlignmentInfo> infos;

  for (int i = 0; i < ess.num_contours(); ++i) {
    const std::vector<int64_t>& frontier = ess.FrontierLocations(i);
    ContourAlignmentInfo info;
    if (frontier.empty()) {
      infos.push_back(info);
      continue;
    }

    double best_penalty = std::numeric_limits<double>::infinity();
    bool native = false;
    for (int j = 0; j < dims && !native; ++j) {
      // Extreme coordinate along j, and the best coordinate reached by a
      // j-spilling optimal plan.
      int ext = -1;
      int spill_max = -1;
      for (int64_t lin : frontier) {
        const GridLoc loc = ess.FromLinear(lin);
        const int c = loc[static_cast<size_t>(j)];
        ext = std::max(ext, c);
        if (ess.OptimalPlan(lin)->SpillDimension(unlearned) == j) {
          spill_max = std::max(spill_max, c);
        }
      }
      if (spill_max == ext) {
        native = true;
        best_penalty = 1.0;
        break;
      }
      // Cost of inducing alignment along j: cheapest replacement at an
      // extreme location, relative to that location's optimal cost.
      std::vector<int64_t> ext_locs;
      for (int64_t lin : frontier) {
        if (ess.FromLinear(lin)[static_cast<size_t>(j)] == ext) {
          ext_locs.push_back(lin);
        }
      }
      std::sort(ext_locs.begin(), ext_locs.end(),
                [&](int64_t a, int64_t b) {
                  return ess.OptimalCost(a) < ess.OptimalCost(b);
                });
      if (static_cast<int>(ext_locs.size()) > max_candidates) {
        ext_locs.resize(static_cast<size_t>(max_candidates));
      }
      for (int64_t lin : ext_locs) {
        const ConstrainedPlanCache::Entry& e = cache->Get(lin, j, unlearned);
        if (e.plan == nullptr) continue;
        best_penalty = std::min(best_penalty, e.cost / ess.OptimalCost(lin));
      }
    }
    info.natively_aligned = native;
    info.min_induce_penalty = best_penalty;
    infos.push_back(info);
  }
  return infos;
}

}  // namespace robustqp
