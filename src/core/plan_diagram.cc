#include "core/plan_diagram.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/status.h"

namespace robustqp {

PlanDiagram::PlanDiagram(const Ess* ess) : ess_(ess) {
  const int64_t total = ess->num_locations();
  assignment_.resize(static_cast<size_t>(total));
  cost_.resize(static_cast<size_t>(total));
  for (int64_t lin = 0; lin < total; ++lin) {
    assignment_[static_cast<size_t>(lin)] = ess->OptimalPlan(lin);
    cost_[static_cast<size_t>(lin)] = ess->OptimalCost(lin);
  }
}

std::vector<const Plan*> PlanDiagram::DistinctPlans() const {
  std::vector<const Plan*> plans;
  for (const Plan* p : assignment_) {
    if (std::find(plans.begin(), plans.end(), p) == plans.end()) {
      plans.push_back(p);
    }
  }
  return plans;
}

PlanDiagramStats PlanDiagram::Stats() const {
  PlanDiagramStats stats;
  std::map<const Plan*, int64_t> area;
  for (const Plan* p : assignment_) ++area[p];
  stats.num_plans = static_cast<int>(area.size());
  if (area.empty()) return stats;

  const double total = static_cast<double>(assignment_.size());
  std::vector<double> fractions;
  fractions.reserve(area.size());
  for (const auto& [plan, n] : area) {
    fractions.push_back(static_cast<double>(n) / total);
  }
  std::sort(fractions.begin(), fractions.end());
  stats.largest_region_fraction = fractions.back();

  // Gini over the sorted area fractions.
  const double n = static_cast<double>(fractions.size());
  double weighted = 0.0;
  for (size_t i = 0; i < fractions.size(); ++i) {
    weighted += (static_cast<double>(i) + 1.0) * fractions[i];
  }
  // Sum of fractions is 1 by construction.
  stats.area_gini = (2.0 * weighted - (n + 1.0)) / n;
  return stats;
}

int PlanDiagram::Reduce(double lambda) {
  RQP_CHECK(lambda >= 0.0);
  const int64_t total = ess_->num_locations();
  const std::vector<const Plan*> plans = DistinctPlans();
  const int before = static_cast<int>(plans.size());

  // coverage[p] = locations plan p can own within the threshold.
  std::vector<std::vector<int64_t>> covers(plans.size());
  std::vector<std::vector<double>> cover_costs(plans.size());
  for (size_t p = 0; p < plans.size(); ++p) {
    covers[p].reserve(static_cast<size_t>(total) / plans.size() + 1);
    for (int64_t lin = 0; lin < total; ++lin) {
      const EssPoint q = ess_->SelAt(ess_->FromLinear(lin));
      const double c = ess_->optimizer().PlanCost(*plans[p], q);
      if (c <= ess_->OptimalCost(lin) * (1.0 + lambda) * (1.0 + 1e-12)) {
        covers[p].push_back(lin);
        cover_costs[p].push_back(c);
      }
    }
  }

  // Lazy greedy set cover.
  std::vector<char> covered(static_cast<size_t>(total), 0);
  int64_t remaining = total;
  std::priority_queue<std::pair<int64_t, size_t>> pq;
  for (size_t p = 0; p < plans.size(); ++p) {
    pq.push({static_cast<int64_t>(covers[p].size()), p});
  }
  std::vector<char> chosen(plans.size(), 0);
  while (remaining > 0) {
    RQP_CHECK(!pq.empty());
    auto [stale, p] = pq.top();
    pq.pop();
    int64_t gain = 0;
    for (int64_t lin : covers[p]) {
      if (!covered[static_cast<size_t>(lin)]) ++gain;
    }
    if (!pq.empty() && gain < pq.top().first) {
      pq.push({gain, p});
      continue;
    }
    RQP_CHECK(gain > 0);
    chosen[p] = 1;
    for (int64_t lin : covers[p]) {
      if (!covered[static_cast<size_t>(lin)]) {
        covered[static_cast<size_t>(lin)] = 1;
        --remaining;
      }
    }
  }

  // Reassign every location to the cheapest chosen plan covering it.
  std::vector<double> best(static_cast<size_t>(total),
                           std::numeric_limits<double>::infinity());
  std::vector<const Plan*> owner(static_cast<size_t>(total), nullptr);
  for (size_t p = 0; p < plans.size(); ++p) {
    if (!chosen[p]) continue;
    for (size_t k = 0; k < covers[p].size(); ++k) {
      const int64_t lin = covers[p][k];
      if (cover_costs[p][k] < best[static_cast<size_t>(lin)]) {
        best[static_cast<size_t>(lin)] = cover_costs[p][k];
        owner[static_cast<size_t>(lin)] = plans[p];
      }
    }
  }
  for (int64_t lin = 0; lin < total; ++lin) {
    RQP_CHECK(owner[static_cast<size_t>(lin)] != nullptr);
    assignment_[static_cast<size_t>(lin)] = owner[static_cast<size_t>(lin)];
    cost_[static_cast<size_t>(lin)] = best[static_cast<size_t>(lin)];
  }
  return before - static_cast<int>(DistinctPlans().size());
}

std::vector<const Plan*> PlanDiagram::ContourPlans(int contour) const {
  std::vector<const Plan*> plans;
  for (int64_t lin : ess_->FrontierLocations(contour)) {
    const Plan* p = assignment_[static_cast<size_t>(lin)];
    if (std::find(plans.begin(), plans.end(), p) == plans.end()) {
      plans.push_back(p);
    }
  }
  return plans;
}

int PlanDiagram::MaxContourDensity() const {
  int rho = 0;
  for (int i = 0; i < ess_->num_contours(); ++i) {
    rho = std::max(rho, static_cast<int>(ContourPlans(i).size()));
  }
  return rho;
}

}  // namespace robustqp
