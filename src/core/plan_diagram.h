// Plan-diagram machinery from the anorexic-reduction lineage (Harish,
// Darera & Haritsa [10]) that PlanBouquet's rho_RED rests on: statistics
// of the POSP plan diagram (which plan is optimal where), and the global
// anorexic reduction transform — reassign each ESS location to a swallower
// plan whose cost there stays within (1 + lambda) of optimal, minimizing
// the number of surviving plans. PlanBouquet can then draw its contour
// plan sets from the reduced diagram, exactly as the paper's experimental
// setup does.

#ifndef ROBUSTQP_CORE_PLAN_DIAGRAM_H_
#define ROBUSTQP_CORE_PLAN_DIAGRAM_H_

#include <map>
#include <vector>

#include "ess/ess.h"

namespace robustqp {

/// Descriptive statistics of a plan diagram (assignment of one plan per
/// ESS grid location).
struct PlanDiagramStats {
  /// Number of distinct plans in the diagram.
  int num_plans = 0;
  /// Fraction of the ESS area covered by the largest plan region.
  double largest_region_fraction = 0.0;
  /// Gini coefficient of the per-plan area distribution (0 = perfectly
  /// even, -> 1 = a single plan dominates). The plan-diagram literature
  /// uses this to characterize diagram skew.
  double area_gini = 0.0;
};

/// A (possibly reduced) plan diagram over an Ess grid.
class PlanDiagram {
 public:
  /// The native POSP diagram of `ess`.
  explicit PlanDiagram(const Ess* ess);

  /// Plan assigned to linear location `lin`.
  const Plan* PlanAt(int64_t lin) const {
    return assignment_[static_cast<size_t>(lin)];
  }

  /// Cost of the assigned plan at its location (== optimal cost for the
  /// native diagram; within (1+lambda) of it after reduction).
  double CostAt(int64_t lin) const {
    return cost_[static_cast<size_t>(lin)];
  }

  /// Distinct plans in the diagram.
  std::vector<const Plan*> DistinctPlans() const;

  PlanDiagramStats Stats() const;

  /// Global anorexic reduction (greedy set cover): reassigns locations to
  /// swallower plans within the (1 + lambda) cost threshold so that the
  /// number of surviving plans is (approximately) minimized. Returns the
  /// number of plans swallowed.
  int Reduce(double lambda);

  /// Plans of the reduced diagram appearing on contour i's frontier —
  /// the PL_i a diagram-level-reduced PlanBouquet would execute.
  std::vector<const Plan*> ContourPlans(int contour) const;

  /// Max over contours of |ContourPlans| — the rho a diagram-reduced
  /// PlanBouquet would plug into 4 (1 + lambda) rho.
  int MaxContourDensity() const;

  const Ess& ess() const { return *ess_; }

 private:
  const Ess* ess_;
  std::vector<const Plan*> assignment_;
  std::vector<double> cost_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_PLAN_DIAGRAM_H_
