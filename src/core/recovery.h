// Recovery paths for discovery runs under fault injection.
//
// The discovery algorithms assume that the last contour's budget (cmax,
// possibly inflated) always suffices: without faults that is a theorem
// (PCM plus the contour construction). With an armed FaultInjector,
// retried work charged against contour budgets can exhaust every contour
// without completing — EscalateToCompletion then keeps doubling the
// budget past cmax on the terminus plan, which by PCM costs at most cmax
// anywhere in the ESS, until the query completes. Each doubling charges
// its full budget, so the run's cost accounting stays MSO-compatible
// (same shape as a failed contour execution).
//
// ContourBudgetMonitor is the matching runtime invariant check: the
// budgets a run hands to the oracle must be non-decreasing; a decrease
// (only possible under stat corruption) is clamped and counted.

#ifndef ROBUSTQP_CORE_RECOVERY_H_
#define ROBUSTQP_CORE_RECOVERY_H_

#include "common/fault.h"
#include "core/discovery.h"
#include "core/oracle.h"

namespace robustqp {

/// Runs the terminus plan with doubling budgets starting from
/// max(last_budget, cmax) until completion, appending the executions to
/// `result` and counting each doubling in robustness.escalations. Gives
/// up (leaving result->completed false) only after 64 doublings — which
/// under any finite fault rate is unreachable in practice.
void EscalateToCompletion(ExecutionOracle* oracle, const Ess& ess,
                          double last_budget, DiscoveryResult* result);

/// Clamps a discovery run's contour budget sequence to be non-decreasing,
/// counting every violation in report->contour_clamps.
class ContourBudgetMonitor {
 public:
  double Clamp(double budget, RobustnessReport* report) {
    if (budget < prev_) {
      ++report->contour_clamps;
      budget = prev_;
    }
    prev_ = budget;
    return budget;
  }

 private:
  double prev_ = 0.0;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_RECOVERY_H_
