// Bounded cost-model error (Section 7, first deployment aspect): if the
// cost model's predictions are off by at most a factor (1 + delta), every
// MSO guarantee carries through inflated by (1 + delta)^2. NoisyOracle
// simulates exactly that world: each plan's *actual* execution cost is
// its modelled cost times a deterministic per-plan factor drawn from
// [1/(1+delta), 1+delta]. Budget enforcement sees actual costs; the
// algorithms still budget using modelled contour costs.

#ifndef ROBUSTQP_CORE_NOISY_ORACLE_H_
#define ROBUSTQP_CORE_NOISY_ORACLE_H_

#include "core/oracle.h"

namespace robustqp {

/// SimulatedOracle with delta-bounded multiplicative cost-model error.
class NoisyOracle : public ExecutionOracle {
 public:
  /// `delta` >= 0 bounds the cost-model error factor; `seed` picks the
  /// deterministic per-plan error assignment.
  NoisyOracle(const Ess* ess, GridLoc qa, double delta, uint64_t seed);

  ExecOutcome ExecuteFull(const Plan& plan, double budget) override;
  ExecOutcome ExecuteSpill(const Plan& plan, int dim, double budget,
                           const std::vector<double>& learned) override;

  /// The error factor applied to `plan` (in [1/(1+delta), 1+delta]).
  double ErrorFactor(const Plan& plan) const;

  /// What an oracle that knows q_a would actually pay: the cheapest
  /// *actual* (error-inflated) cost among the POSP plans at q_a.
  double ActualOptimalCost() const;

 private:
  const Ess* ess_;
  GridLoc qa_;
  EssPoint qa_sel_;
  double delta_;
  uint64_t seed_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_NOISY_ORACLE_H_
