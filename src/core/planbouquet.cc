#include "core/planbouquet.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/plan_diagram.h"
#include "core/recovery.h"

namespace robustqp {

PlanBouquet::PlanBouquet(const Ess* ess) : PlanBouquet(ess, Options{}) {}

PlanBouquet::PlanBouquet(const Ess* ess, const PlanDiagram& diagram,
                         Options options)
    : ess_(ess), options_(options) {
  RQP_CHECK(&diagram.ess() == ess);
  contour_sets_.resize(static_cast<size_t>(ess->num_contours()));
  for (int i = 0; i < ess->num_contours(); ++i) {
    rho_original_ = std::max(
        rho_original_, static_cast<int>(ess->ContourPlans(i).size()));
    contour_sets_[static_cast<size_t>(i)] = diagram.ContourPlans(i);
    rho_ = std::max(
        rho_, static_cast<int>(contour_sets_[static_cast<size_t>(i)].size()));
  }
}

PlanBouquet::PlanBouquet(const Ess* ess, Options options)
    : ess_(ess), options_(options) {
  const double lambda = effective_lambda();
  contour_sets_.resize(static_cast<size_t>(ess->num_contours()));
  ThreadPool pool;  // shared by the per-contour coverage fills

  for (int i = 0; i < ess->num_contours(); ++i) {
    const std::vector<int64_t>& frontier = ess->FrontierLocations(i);
    std::vector<const Plan*> posp = ess->ContourPlans(i);
    rho_original_ = std::max(rho_original_, static_cast<int>(posp.size()));

    if (!options_.anorexic || posp.size() <= 1) {
      contour_sets_[static_cast<size_t>(i)] = std::move(posp);
    } else {
      // Anorexic reduction as per-contour greedy set cover: pick plans
      // until every frontier location is covered by a plan whose cost
      // there stays within (1 + lambda) of the contour budget.
      const double budget = ess->ContourCost(i) * (1.0 + lambda);
      // coverage[p][l] = plan p covers frontier location l. Pure costing
      // work, parallelized over plans.
      std::vector<EssPoint> points(frontier.size());
      for (size_t l = 0; l < frontier.size(); ++l) {
        points[l] = ess->SelAt(ess->FromLinear(frontier[l]));
      }
      std::vector<std::vector<char>> coverage(posp.size());
      const auto fill = [&](size_t begin, size_t end) {
        for (size_t p = begin; p < end; ++p) {
          coverage[p].resize(frontier.size());
          for (size_t l = 0; l < frontier.size(); ++l) {
            coverage[p][l] = ess->optimizer().PlanCost(*posp[p], points[l]) <=
                                     budget * (1.0 + 1e-12)
                                 ? 1
                                 : 0;
          }
        }
      };
      if (pool.num_threads() <= 1 || posp.size() * frontier.size() < 4096) {
        fill(0, posp.size());
      } else {
        ParallelFor(&pool, static_cast<int64_t>(posp.size()),
                    [&](int /*worker*/, int64_t begin, int64_t end) {
                      fill(static_cast<size_t>(begin), static_cast<size_t>(end));
                    });
      }
      // Sparse cover lists + lazy greedy (gains only shrink as locations
      // get covered, so a stale priority-queue entry is an upper bound).
      std::vector<std::vector<int>> covers(posp.size());
      for (size_t p = 0; p < posp.size(); ++p) {
        for (size_t l = 0; l < frontier.size(); ++l) {
          if (coverage[p][l]) covers[p].push_back(static_cast<int>(l));
        }
      }
      std::vector<char> covered(frontier.size(), 0);
      size_t remaining = frontier.size();
      std::priority_queue<std::pair<int, size_t>> pq;
      for (size_t p = 0; p < posp.size(); ++p) {
        pq.push({static_cast<int>(covers[p].size()), p});
      }
      std::vector<const Plan*> chosen;
      while (remaining > 0) {
        RQP_CHECK(!pq.empty());
        auto [stale_gain, p] = pq.top();
        pq.pop();
        int gain = 0;
        for (int l : covers[p]) {
          if (!covered[static_cast<size_t>(l)]) ++gain;
        }
        if (!pq.empty() && gain < pq.top().first) {
          pq.push({gain, p});
          continue;
        }
        // Every location is coverable by its own optimal plan, so the
        // greedy step always makes progress.
        RQP_CHECK(gain > 0);
        chosen.push_back(posp[p]);
        for (int l : covers[p]) {
          if (!covered[static_cast<size_t>(l)]) {
            covered[static_cast<size_t>(l)] = 1;
            --remaining;
          }
        }
      }
      contour_sets_[static_cast<size_t>(i)] = std::move(chosen);
    }
    rho_ = std::max(
        rho_, static_cast<int>(contour_sets_[static_cast<size_t>(i)].size()));
  }
}

int PlanBouquet::BouquetSize() const {
  std::set<const Plan*> distinct;
  for (const auto& set : contour_sets_) distinct.insert(set.begin(), set.end());
  return static_cast<int>(distinct.size());
}

DiscoveryResult PlanBouquet::RunImpl(ExecutionOracle* oracle) const {
  DiscoveryResult result;
  const double lambda = effective_lambda();
  ContourBudgetMonitor monitor;
  double budget = 0.0;
  for (int i = 0; i < ess_->num_contours(); ++i) {
    budget = monitor.Clamp(
        ess_->ContourCost(i) * (1.0 + lambda) * options_.budget_inflation,
        &result.robustness);
    for (const Plan* plan : contour_sets_[static_cast<size_t>(i)]) {
      const ExecOutcome outcome = oracle->ExecuteFull(*plan, budget);
      result.total_cost += outcome.cost_charged;
      ExecutionStep step;
      step.contour = i;
      step.plan_name = plan->display_name();
      step.spill_dim = -1;
      step.budget = budget;
      step.cost_charged = outcome.cost_charged;
      step.completed = outcome.completed;
      result.steps.push_back(std::move(step));
      if (outcome.completed) {
        result.completed = true;
        result.final_contour = i;
        return result;
      }
    }
  }
  result.completed = false;
  result.final_contour = ess_->num_contours() - 1;
  // Without faults the last contour always completes; under injection,
  // retries can burn every contour budget — escalate past cmax.
  if (FaultInjector::Armed()) {
    EscalateToCompletion(oracle, *ess_, budget, &result);
  }
  return result;
}

}  // namespace robustqp
