// Shared result/trace types for the discovery algorithms, and the
// DiscoveryAlgorithm interface they all implement.

#ifndef ROBUSTQP_CORE_DISCOVERY_H_
#define ROBUSTQP_CORE_DISCOVERY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "shard/mso.h"

namespace robustqp {

class ExecutionOracle;
class Plan;

/// A feedback-derived head start for one discovery run (built by
/// feedback/warm_start.h; core only consumes it). The hint names one
/// probe plan — the optimal plan at the upper corner of the observed
/// confidence region — and the UNCHANGED cold contour budgets to try it
/// under. Run executes the probes in full (non-spill) mode before the
/// algorithm's own doubling sequence:
///  * a completion inside the probes ends the run there (the common
///    repeated-query case: one execution near the optimal cost);
///  * if every probe fails, the true location crossed the region
///    boundary and Run falls back to the complete cold sequence from
///    contour 0 — the cold MSO analysis applies verbatim, the abandoned
///    probe spend is an additive tax bounded by twice the largest probe
///    budget (geometric schedule), and the guarantee is never weakened.
/// An invalid hint is treated exactly as an absent one, so
/// empty-store == store-disabled holds bitwise.
struct WarmStartHint {
  bool valid = false;
  /// Optimal plan at the (grid-snapped) upper corner of the confidence
  /// region; borrowed from the Ess's POSP pool, never owned.
  const Plan* probe_plan = nullptr;
  /// Cold-schedule budgets ContourCost(first_contour..last_contour).
  std::vector<double> probe_budgets;
  /// Contour indices the probes correspond to (display/accounting).
  int first_contour = 0;
  int last_contour = 0;
};

/// One budgeted execution performed during discovery (a row of the
/// paper's Table 3 drill-down, a segment of Fig. 7's Manhattan profile).
struct ExecutionStep {
  /// 0-based contour index the execution belongs to.
  int contour = 0;
  /// Display name of the executed plan ("P7"); spill-mode executions are
  /// conventionally lower-cased by the printers ("p7").
  std::string plan_name;
  /// ESS dimension spilled on, or -1 for a full (non-spill) execution.
  int spill_dim = -1;
  double budget = 0.0;
  double cost_charged = 0.0;
  bool completed = false;
  /// Exact selectivity learnt (spill completions), or the certified lower
  /// bound reached (aborted spills).
  double learned_sel = 0.0;
  /// Selectivity knowledge after the step: exact value for learnt dims,
  /// current lower bound for the rest (the running location q_run).
  std::vector<double> qrun;
};

/// Outcome of one full discovery run for one true location.
struct DiscoveryResult {
  bool completed = false;
  /// Sum of cost charged over all executions — the numerator of
  /// SubOpt(Seq, q_a) in Eq. (3).
  double total_cost = 0.0;
  /// Contour at which the query finally completed.
  int final_contour = -1;
  /// Largest plan-replacement penalty among the partitions this run
  /// actually executed (AlignedBound's Table 4 statistic; 1.0 for
  /// algorithms without induced alignment).
  double max_replacement_penalty = 1.0;
  std::vector<ExecutionStep> steps;
  /// Fault accounting aggregated over the run's executions (all zeros
  /// unless the process-wide FaultInjector is armed).
  RobustnessReport robustness;
  /// The algorithm's MSO guarantee composed across the oracle's shards
  /// (shard/mso.h). Because cost is additive over the chunk partition and
  /// every shard runs the same discovery-issued budgets, the composed
  /// global bound equals the per-shard guarantee — surfaced here so
  /// callers see the guarantee that actually covers total_cost.
  shard::ComposedMso composed_mso;
  /// Warm-start accounting (all false/zero for cold runs and invalid
  /// hints — those runs are bit-identical to hint-less ones).
  bool warm_started = false;    // a valid hint's probes were executed
  bool warm_completed = false;  // the run completed inside the probes
  bool warm_fell_back = false;  // probes exhausted; full cold restart ran
  double warm_cost = 0.0;       // cost charged to the probe phase

  int num_executions() const { return static_cast<int>(steps.size()); }
};

/// The common face of PlanBouquet, SpillBound and AlignedBound: one
/// discovery run against an execution oracle, plus the metadata the
/// harness and reproduction surface need.
///
/// Concurrency contract. Run is const but *logically* const only: the
/// contour-wise algorithms memoize per-(contour, learnt-slice) choices in
/// mutable caches, so one instance must not run on two threads at once.
/// Parallel harnesses give every worker its own instance via Clone(),
/// which is cheap — clones share the (immutable) Ess and start with cold
/// caches that warm up over the worker's share of locations.
class DiscoveryAlgorithm {
 public:
  virtual ~DiscoveryAlgorithm() = default;

  /// Runs discovery against `oracle` until the query completes. Resets
  /// the oracle's robustness report first and folds it into the result's,
  /// so each run's fault accounting is self-contained.
  DiscoveryResult Run(ExecutionOracle* oracle) const;

  /// As above, with an optional feedback warm start: a valid `warm` hint's
  /// probes run first; on boundary crossing the full cold sequence runs
  /// after them (see WarmStartHint). Null or invalid `warm` is
  /// bit-identical to the hint-less overload.
  DiscoveryResult Run(ExecutionOracle* oracle, const WarmStartHint* warm) const;

  /// Display name ("SpillBound").
  virtual std::string name() const = 0;

  /// The algorithm's MSO guarantee for its query/ESS instance: the
  /// platform-independent bound for SpillBound and AlignedBound, the
  /// behavioural 4(1+lambda)rho bound for PlanBouquet.
  virtual double MsoGuarantee() const = 0;

  /// Fresh instance over the same Ess with the same options and cold
  /// memo caches; used once per worker by parallel evaluation.
  virtual std::unique_ptr<DiscoveryAlgorithm> Clone() const = 0;

 protected:
  /// The algorithm body Run() wraps.
  virtual DiscoveryResult RunImpl(ExecutionOracle* oracle) const = 0;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_DISCOVERY_H_
