// Shared result/trace types for the discovery algorithms.

#ifndef ROBUSTQP_CORE_DISCOVERY_H_
#define ROBUSTQP_CORE_DISCOVERY_H_

#include <string>
#include <vector>

namespace robustqp {

/// One budgeted execution performed during discovery (a row of the
/// paper's Table 3 drill-down, a segment of Fig. 7's Manhattan profile).
struct ExecutionStep {
  /// 0-based contour index the execution belongs to.
  int contour = 0;
  /// Display name of the executed plan ("P7"); spill-mode executions are
  /// conventionally lower-cased by the printers ("p7").
  std::string plan_name;
  /// ESS dimension spilled on, or -1 for a full (non-spill) execution.
  int spill_dim = -1;
  double budget = 0.0;
  double cost_charged = 0.0;
  bool completed = false;
  /// Exact selectivity learnt (spill completions), or the certified lower
  /// bound reached (aborted spills).
  double learned_sel = 0.0;
  /// Selectivity knowledge after the step: exact value for learnt dims,
  /// current lower bound for the rest (the running location q_run).
  std::vector<double> qrun;
};

/// Outcome of one full discovery run for one true location.
struct DiscoveryResult {
  bool completed = false;
  /// Sum of cost charged over all executions — the numerator of
  /// SubOpt(Seq, q_a) in Eq. (3).
  double total_cost = 0.0;
  /// Contour at which the query finally completed.
  int final_contour = -1;
  std::vector<ExecutionStep> steps;

  int num_executions() const { return static_cast<int>(steps.size()); }
};

}  // namespace robustqp

#endif  // ROBUSTQP_CORE_DISCOVERY_H_
