// Table schemas: named, typed columns. 64-bit integers carry keys/codes,
// doubles carry measures, and strings are first-class dictionary-encoded
// columns: the storage layer interns each value once and scans operate on
// the lexicographic *rank* of the interned value, so every kernel and the
// zone maps see ordinary ordered integers.

#ifndef ROBUSTQP_CATALOG_SCHEMA_H_
#define ROBUSTQP_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

namespace robustqp {

/// Column value type.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeToString(DataType t);

/// A named, typed column.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
};

/// An ordered list of columns with a table name.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int idx) const {
    return columns_[static_cast<size_t>(idx)];
  }

  /// Returns the index of the named column, or -1 if absent.
  int FindColumn(const std::string& column_name) const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CATALOG_SCHEMA_H_
