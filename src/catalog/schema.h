// Table schemas: named, typed columns. The engine supports the two value
// types the reproduction needs (64-bit integers for keys/codes and doubles
// for measures); strings in the original benchmarks are dictionary-encoded
// to integers by the data generators.

#ifndef ROBUSTQP_CATALOG_SCHEMA_H_
#define ROBUSTQP_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

namespace robustqp {

/// Column value type.
enum class DataType {
  kInt64,
  kDouble,
};

const char* DataTypeToString(DataType t);

/// A named, typed column.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
};

/// An ordered list of columns with a table name.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int idx) const {
    return columns_[static_cast<size_t>(idx)];
  }

  /// Returns the index of the named column, or -1 if absent.
  int FindColumn(const std::string& column_name) const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CATALOG_SCHEMA_H_
