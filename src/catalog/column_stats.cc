#include "catalog/column_stats.h"

#include <algorithm>
#include <cmath>

namespace robustqp {

double EquiDepthHistogram::EstimateLessEq(double v) const {
  if (total_rows == 0 || bounds.empty()) return 0.0;
  if (std::isnan(v)) return 0.0;  // NaN compares false with everything
  if (v >= bounds.back()) return 1.0;
  // Find the first bucket whose upper edge is >= v.
  auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds.begin());
  const double lower = bucket == 0 ? bounds.front() - 1.0 : bounds[bucket - 1];
  const double upper = bounds[bucket];
  double frac_in_bucket = 0.0;
  if (upper > lower) {
    frac_in_bucket = (v - lower) / (upper - lower);
    // ±inf bucket edges (columns holding ±inf values) make the ratio
    // inf/inf = NaN; fall back to a half-full bucket so downstream cost
    // arithmetic stays finite.
    if (std::isnan(frac_in_bucket)) frac_in_bucket = 0.5;
    frac_in_bucket = std::clamp(frac_in_bucket, 0.0, 1.0);
  } else {
    frac_in_bucket = 1.0;
  }
  const double full = static_cast<double>(bucket) * rows_per_bucket;
  const double partial = frac_in_bucket * rows_per_bucket;
  return std::clamp((full + partial) / static_cast<double>(total_rows), 0.0, 1.0);
}

double StringHistogram::EstimateLessEq(const std::string& v) const {
  if (total_rows == 0 || bounds.empty()) return 0.0;
  if (v >= bounds.back()) return 1.0;
  // First bucket whose upper edge is >= v; v falls inside it, and without
  // an interpolation metric between strings the half-bucket position is
  // the unbiased default.
  auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds.begin());
  const double full = static_cast<double>(bucket) * rows_per_bucket;
  const double partial = 0.5 * static_cast<double>(rows_per_bucket);
  return std::clamp((full + partial) / static_cast<double>(total_rows), 0.0,
                    1.0);
}

}  // namespace robustqp
