#include "catalog/catalog.h"

#include "storage/hash_index.h"
#include "storage/table.h"

namespace robustqp {

Status Catalog::AddTable(std::shared_ptr<Table> table,
                         std::vector<ColumnStats> stats) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  const std::string& name = table->schema().name();
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table '" + name + "' already registered");
  }
  if (static_cast<int>(stats.size()) != table->schema().num_columns()) {
    return Status::InvalidArgument("stats arity mismatch for '" + name + "'");
  }
  tables_[name] = CatalogEntry{std::move(table), std::move(stats)};
  return Status::OK();
}

const CatalogEntry* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

int64_t Catalog::RowCount(const std::string& name) const {
  const CatalogEntry* entry = FindTable(name);
  return entry == nullptr ? 0 : entry->table->num_rows();
}

const ColumnStats* Catalog::FindColumnStats(
    const std::string& table_name, const std::string& column_name) const {
  const CatalogEntry* entry = FindTable(table_name);
  if (entry == nullptr) return nullptr;
  const int idx = entry->table->schema().FindColumn(column_name);
  if (idx < 0) return nullptr;
  return &entry->stats[static_cast<size_t>(idx)];
}

Status Catalog::BuildIndex(const std::string& table_name,
                           const std::string& column_name) {
  auto it = tables_.find(table_name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + table_name + "'");
  }
  const Table& table = *it->second.table;
  const int col = table.schema().FindColumn(column_name);
  if (col < 0) {
    return Status::NotFound("column '" + table_name + "." + column_name + "'");
  }
  if (table.schema().column(col).type != DataType::kInt64) {
    return Status::Unsupported("hash index requires an INT64 column");
  }
  it->second.indexes[column_name] = std::make_shared<HashIndex>(table, col);
  return Status::OK();
}

const HashIndex* Catalog::FindIndex(const std::string& table_name,
                                    const std::string& column_name) const {
  const CatalogEntry* entry = FindTable(table_name);
  if (entry == nullptr) return nullptr;
  auto it = entry->indexes.find(column_name);
  return it == entry->indexes.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace robustqp
