// Per-column statistics used by the optimizer's cardinality estimator:
// min/max, number of distinct values, and an equi-depth histogram. These
// are the engine's "native" statistics — the ones a traditional optimizer
// would consult, and the ones whose errors the paper's algorithms guard
// against.

#ifndef ROBUSTQP_CATALOG_COLUMN_STATS_H_
#define ROBUSTQP_CATALOG_COLUMN_STATS_H_

#include <cstdint>
#include <vector>

namespace robustqp {

/// Equi-depth histogram over a numeric column: `bounds` holds bucket upper
/// edges; each bucket covers an (approximately) equal number of rows.
struct EquiDepthHistogram {
  std::vector<double> bounds;  // ascending; bounds.back() == column max
  int64_t rows_per_bucket = 0;
  int64_t total_rows = 0;

  /// Estimated fraction of rows with value <= v, assuming uniformity
  /// inside buckets. Returns a value in [0, 1].
  double EstimateLessEq(double v) const;
};

/// Statistics for one column of one table.
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  int64_t distinct_count = 0;
  int64_t row_count = 0;
  EquiDepthHistogram histogram;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CATALOG_COLUMN_STATS_H_
