// Per-column statistics used by the optimizer's cardinality estimator:
// min/max, number of distinct values, and an equi-depth histogram. These
// are the engine's "native" statistics — the ones a traditional optimizer
// would consult, and the ones whose errors the paper's algorithms guard
// against.

#ifndef ROBUSTQP_CATALOG_COLUMN_STATS_H_
#define ROBUSTQP_CATALOG_COLUMN_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace robustqp {

/// Equi-depth histogram over a numeric column: `bounds` holds bucket upper
/// edges; each bucket covers an (approximately) equal number of rows.
struct EquiDepthHistogram {
  std::vector<double> bounds;  // ascending; bounds.back() == column max
  int64_t rows_per_bucket = 0;
  int64_t total_rows = 0;

  /// Estimated fraction of rows with value <= v, assuming uniformity
  /// inside buckets. Returns a value in [0, 1].
  double EstimateLessEq(double v) const;
};

/// Equi-depth histogram over a string column: `bounds` holds bucket upper
/// edges in lexicographic order. Buckets are equi-depth over *rows* (not
/// distinct values), mirroring EquiDepthHistogram; within the matched
/// bucket the estimate assumes the half-bucket position, since there is no
/// meaningful interpolation between two strings.
struct StringHistogram {
  std::vector<std::string> bounds;  // ascending; bounds.back() == column max
  int64_t rows_per_bucket = 0;
  int64_t total_rows = 0;

  /// Estimated fraction of rows with value <= v. Returns a value in [0, 1].
  double EstimateLessEq(const std::string& v) const;
};

/// Statistics for one column of one table. For string columns the numeric
/// fields describe the *rank space* (min = 0, max = distinct - 1): scans of
/// string columns operate on lexicographic ranks, so zone maps and generic
/// numeric consumers stay meaningful, while the estimator consults the
/// string histogram for the actual value distribution.
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  int64_t distinct_count = 0;
  int64_t row_count = 0;
  EquiDepthHistogram histogram;
  /// Populated for string columns only (bounds empty otherwise).
  StringHistogram str_histogram;
  std::string str_min;
  std::string str_max;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CATALOG_COLUMN_STATS_H_
