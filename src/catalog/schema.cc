#include "catalog/schema.h"

namespace robustqp {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int TableSchema::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace robustqp
