// The database catalog: owns every stored table together with its
// statistics, and resolves (table, column) names for the query layer and
// the optimizer.

#ifndef ROBUSTQP_CATALOG_CATALOG_H_
#define ROBUSTQP_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/column_stats.h"
#include "catalog/schema.h"
#include "common/status.h"

namespace robustqp {

class Table;      // storage/table.h
class HashIndex;  // storage/hash_index.h

/// A catalog entry: schema + data + statistics + indexes for one table.
struct CatalogEntry {
  std::shared_ptr<Table> table;
  std::vector<ColumnStats> stats;
  /// Hash indexes keyed by column name.
  std::map<std::string, std::shared_ptr<HashIndex>> indexes;
};

/// Name-keyed registry of tables. Tables are registered once (with
/// statistics computed by the caller) and are immutable afterwards.
class Catalog {
 public:
  /// Registers a table under its schema name. Fails if the name is taken.
  Status AddTable(std::shared_ptr<Table> table, std::vector<ColumnStats> stats);

  /// Looks up a table by name; nullptr if absent.
  const CatalogEntry* FindTable(const std::string& name) const;

  /// Row count of the named table; 0 if absent.
  int64_t RowCount(const std::string& name) const;

  /// Stats for table.column; nullptr if either is absent.
  const ColumnStats* FindColumnStats(const std::string& table_name,
                                     const std::string& column_name) const;

  /// Builds (or replaces) a hash index on an INT64 column. Fails if the
  /// table or column is absent.
  Status BuildIndex(const std::string& table_name,
                    const std::string& column_name);

  /// The hash index on table.column; nullptr if none exists.
  const HashIndex* FindIndex(const std::string& table_name,
                             const std::string& column_name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, CatalogEntry> tables_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_CATALOG_CATALOG_H_
