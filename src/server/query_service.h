// QueryService — robust query processing as a long-lived, concurrently
// shared service.
//
// The one-shot CLI/bench drivers rebuild their whole context per
// invocation; QueryService instead keeps a ContextCache of built ESS
// surfaces and serves a *stream* of requests from many concurrent clients
// through a session API:
//
//   QueryService service;
//   int64_t session = service.OpenSession().value();
//   ServiceRequest req;
//   req.query_id = "2D_Q91";
//   req.mode = RobustnessMode::kSpillBound;
//   int64_t id = service.Submit(session, req).value();
//   ServiceResponse resp = service.Wait(session, id).value();
//   service.CloseSession(session);
//
// Execution model. Submitted requests run on a shared ThreadPool.
// Admission control is a bounded queue: at most Options::queue_limit
// requests may be admitted (queued + running) at once; Submit rejects
// beyond that with kResourceExhausted, immediately and without side
// effects — the client decides whether to back off and resubmit. A
// request whose deadline elapses while queued is answered with
// kDeadlineExceeded instead of being run.
//
// Determinism contract. Each request's payload (cost_used, discovery
// steps, NodeStats, RobustnessReport) is bit-identical to running the
// same ServiceRequest serially via RunOneShot on a fresh process — no
// matter how many clients run concurrently or in which order the pool
// schedules them. Three mechanisms make this hold:
//  * contexts are immutable after build and built only while the fault
//    injector is disarmed (resolution happens before a request's chaos
//    spec is armed), so cache state cannot leak into results;
//  * discovery algorithms are instantiated per request (their memo caches
//    never cross requests);
//  * chaos requests (non-empty fault_spec) take an exclusive lock on the
//    process-wide FaultInjector, configure it, and run inside a
//    FaultStreamScope keyed by the request's fault_seed — clean requests
//    hold the lock shared, so they always observe a disarmed injector.
//    A chaos request's draw sequence therefore depends only on
//    (spec, seed), exactly as in a serial run.
// Timing fields (queue_ms, run_ms) are measurements and obviously not
// part of the contract.
//
// The service assumes it owns the process-wide FaultInjector: embedding
// programs must not arm it around service calls.

#ifndef ROBUSTQP_SERVER_QUERY_SERVICE_H_
#define ROBUSTQP_SERVER_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "exec/executor.h"
#include "feedback/feedback_store.h"
#include "server/context_cache.h"
#include "server/request_options.h"

namespace robustqp {

class ThreadPool;

/// One unit of client work: which suite query to answer, with which
/// robustness machinery, under which knobs.
struct ServiceRequest {
  std::string query_id = "2D_Q91";
  RobustnessMode mode = RobustnessMode::kSpillBound;
  /// Hypothetical true epp selectivities (simulated-oracle runs). Empty
  /// means the ESS grid midpoint. Ignored when use_engine is set — the
  /// stored data decides the truth there.
  std::vector<double> qa;
  /// Run against the real execution engine (EngineOracle / Executor) over
  /// the stored catalog data instead of the cost-model-backed simulation.
  bool use_engine = false;
  /// Service-level cost cap: when >= 0 and the request's cost_used ends
  /// above it, the response's terminal status is kBudgetExhausted (the
  /// payload is still attached). < 0 means uncapped.
  double budget = -1.0;
  /// Wall-clock deadline in milliseconds from Submit. A request still
  /// queued past its deadline is answered kDeadlineExceeded without
  /// running. < 0 means none.
  double deadline_ms = -1.0;
  /// Everything else: engine choice, threads, ESS build knobs, chaos spec.
  RequestOptions options;
};

/// Terminal answer for one request.
struct ServiceResponse {
  /// Terminal status; ExitCodeFor(status.code()) is the stable
  /// client-visible error number. OK covers completed discovery runs;
  /// budget/deadline/admission outcomes carry their dedicated codes.
  Status status;
  int64_t request_id = -1;
  std::string query_id;
  /// Display name of the algorithm that ran ("SpillBound"; "native" for
  /// the baseline mode).
  std::string algorithm;
  bool completed = false;
  /// Total cost units charged (discovery total_cost, or the engine run's
  /// cost_used in native mode).
  double cost_used = 0.0;
  /// Optimal cost at the (snapped) true location; 0 when unknown.
  double opt_cost = 0.0;
  /// cost_used / opt_cost (the paper's SubOpt); 0 when opt_cost is 0.
  double suboptimality = 0.0;
  /// The algorithm's MSO guarantee for this instance (0 for native).
  double guarantee = 0.0;
  /// Full discovery trace (empty in native mode).
  DiscoveryResult discovery;
  /// Engine-mode runs: the completing full execution's ledger — NodeStats
  /// per plan node, output rows, per-run robustness. Empty otherwise.
  ExecutionResult execution;
  /// Per-request fault/degradation accounting (all zeros without chaos).
  RobustnessReport robustness;
  /// True iff the context came out of the cache warm.
  bool cache_hit = false;
  /// Feedback loop (all false unless options.use_feedback):
  /// the store held a valid calibration for this query...
  bool feedback_hit = false;
  /// ...discovery opened with warm-start probes from it...
  bool warm_started = false;
  /// ...and one of those probes completed (no cold fallback needed).
  bool warm_completed = false;
  /// This run's observation tripped the drift monitor: the calibration
  /// was invalidated and the serving cache's contexts for this query
  /// evicted (rebuilt — with re-costed plans — on next use).
  bool feedback_drift = false;
  /// Wall-clock measurements; NOT part of the determinism contract.
  double queue_ms = 0.0;
  double run_ms = 0.0;
};

/// A long-lived, thread-safe query-serving object. All public methods may
/// be called from any thread.
class QueryService {
 public:
  struct Options {
    /// Width of the shared worker pool; 0 = ThreadPool::DefaultThreads().
    int num_threads = 0;
    /// Admission bound: maximum requests admitted (queued + running) at
    /// once. Submit beyond this returns kResourceExhausted.
    size_t queue_limit = 64;
    /// ContextCache capacity (entries); 0 = unbounded.
    size_t cache_capacity = 16;
    /// Test hook: runs on the worker at the start of every request, before
    /// any processing. Lets tests hold workers busy deterministically.
    std::function<void()> pre_run_hook;
  };

  struct ServiceStats {
    int64_t submitted = 0;  // admitted requests
    int64_t completed = 0;  // terminal responses produced (any status)
    int64_t rejected = 0;   // kResourceExhausted admissions
    int64_t deadline_expired = 0;
    /// Requests admitted but not yet terminal (queued + running) at the
    /// moment stats() was taken.
    int64_t queue_depth = 0;
    /// Sharded scatter-gather accounting, accumulated from the shard
    /// report of every terminal engine-mode response (zeros until some
    /// request ran with num_shards > 1).
    int64_t shard_chunks_scanned = 0;
    int64_t shard_chunks_pruned = 0;
    int64_t shard_straggler_retries = 0;
    int64_t shard_lost_chunks = 0;
    /// Feedback-loop accounting, accumulated from every terminal
    /// feedback-enabled response (zeros until some request ran with
    /// use_feedback).
    int64_t feedback_hits = 0;    // requests served with a valid calibration
    int64_t feedback_misses = 0;  // feedback requests without one
    int64_t warm_starts = 0;      // discoveries opened with warm probes
    int64_t warm_completions = 0; // ...that finished without cold fallback
    int64_t drift_events = 0;     // runs whose observation tripped drift
    int64_t feedback_degraded = 0;  // store_load faults absorbed
  };

  // (Two constructors rather than one defaulted argument: in-class default
  // arguments may not use Options{} before the enclosing class is complete.)
  QueryService() : QueryService(Options{}) {}
  explicit QueryService(Options options);
  /// Drains all in-flight requests, then shuts the pool down.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Opens a client session; the returned id scopes Submit/Wait/Close.
  Result<int64_t> OpenSession();

  /// Closes `session_id`: waits for its in-flight requests to reach a
  /// terminal state, then drops the session and its stored responses.
  /// Fails with kNotFound for unknown ids.
  Status CloseSession(int64_t session_id);

  /// Admits `request` into the bounded queue. Returns the request id to
  /// Poll/Wait on, kResourceExhausted when the queue is full, or
  /// kNotFound for an unknown session.
  Result<int64_t> Submit(int64_t session_id, ServiceRequest request);

  /// Non-blocking probe: empty optional while the request is still
  /// running, the response once terminal. kNotFound for unknown ids or a
  /// session mismatch.
  Result<std::optional<ServiceResponse>> Poll(int64_t session_id,
                                              int64_t request_id);

  /// Blocks until the request is terminal and returns its response.
  /// kNotFound for unknown ids or a session mismatch.
  Result<ServiceResponse> Wait(int64_t session_id, int64_t request_id);

  ContextCache::Stats cache_stats() const { return cache_.stats(); }
  feedback::FeedbackStore::Stats feedback_stats() const {
    return feedback_store_.stats();
  }
  ServiceStats stats() const;

  /// The serial one-shot reference: runs `request` to completion on the
  /// calling thread against `cache` (Default() when null) with exactly the
  /// semantics of the concurrent path — the payload a Submit/Wait of the
  /// same request must match bit-for-bit. Admission, deadline, and timing
  /// fields do not apply. `store` is the feedback store consulted when the
  /// request sets use_feedback (null = no store: behaves exactly like
  /// use_feedback off, matching a service whose store is empty). Note the
  /// feedback loop is deliberately stateful — a response depends on the
  /// store's accumulated history, so bit-equality with a concurrent run
  /// holds per store state, i.e. for the same sequence of prior
  /// feedback-enabled completions on the key.
  static ServiceResponse RunOneShot(const ServiceRequest& request,
                                    ContextCache* cache = nullptr,
                                    feedback::FeedbackStore* store = nullptr);

 private:
  struct RequestState {
    int64_t id = -1;
    int64_t session = -1;
    ServiceRequest request;
    std::chrono::steady_clock::time_point submit_time;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ServiceResponse response;
  };

  /// Worker-side: runs one admitted request to a terminal response.
  void RunRequest(const std::shared_ptr<RequestState>& state);

  /// The request body shared by the concurrent path and RunOneShot:
  /// resolves the context, applies the fault-exclusion discipline, runs,
  /// fills `resp` (everything except ids and timing), and — when the run
  /// trips the drift monitor — evicts the query's cached contexts.
  static void Execute(const ServiceRequest& request, ContextCache* cache,
                      feedback::FeedbackStore* store,
                      std::shared_mutex* fault_mu, ServiceResponse* resp);

  /// Runs against a resolved context (no locking, injector state already
  /// arranged by Execute). `store` may be null (feedback off).
  static Status RunResolved(const ServiceRequest& request,
                            const ContextCache::Entry& ctx,
                            feedback::FeedbackStore* store,
                            ServiceResponse* resp);

  const Options options_;
  ContextCache cache_;
  /// The serving instance's selectivity memory (see feedback_store.h):
  /// written by every completed feedback-enabled request, read to
  /// calibrate native estimates and warm-start discovery.
  feedback::FeedbackStore feedback_store_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mu_;
  int64_t next_session_id_ = 1;
  int64_t next_request_id_ = 1;
  size_t admitted_ = 0;  // queued + running
  std::map<int64_t, std::set<int64_t>> sessions_;  // session -> request ids
  std::map<int64_t, std::shared_ptr<RequestState>> requests_;
  ServiceStats stats_;

  /// Shared = injector guaranteed disarmed (clean requests, context
  /// builds); exclusive = this request owns the armed injector.
  std::shared_mutex fault_mu_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_SERVER_QUERY_SERVICE_H_
