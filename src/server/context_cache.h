// Instance-scoped cache of built experiment contexts — the service-layer
// replacement for the process-global Workbench singleton.
//
// A context is everything one suite query needs to serve requests: the
// shared catalog, the query, and the (optimizer-call-heavy) built ESS. The
// cache keys contexts by (query id, ESS config) — the same key the old
// Workbench used — holds at most `capacity` of them in LRU order, and
// counts hits / misses / evictions so a serving deployment can size it.
//
// Concurrency. Get() is safe from any thread. Distinct keys build
// concurrently; concurrent misses on the same key build once (the second
// caller blocks on the first's build). Entries are handed out as
// shared_ptr, so an entry evicted while a request is still using it stays
// alive until the last holder drops it — eviction never invalidates
// in-flight work.
//
// Builds always run with the FaultInjector disarmed from the service
// layer's perspective (QueryService resolves contexts before arming a
// request's chaos spec), so a cached surface is bit-identical no matter
// which request triggered the build. Failed builds (possible when an
// embedding program arms injection around Get()) are not cached.

#ifndef ROBUSTQP_SERVER_CONTEXT_CACHE_H_
#define ROBUSTQP_SERVER_CONTEXT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "ess/ess.h"
#include "query/query.h"
#include "storage/column_file.h"
#include "storage/encoding.h"

namespace robustqp {

class ContextCache {
 public:
  struct Options {
    /// Maximum cached contexts; least-recently-used beyond this are
    /// evicted. 0 means unbounded (the Workbench-compatible default
    /// instance uses this so its references live for the process).
    size_t capacity = 16;
  };

  /// One built context. Immutable once constructed.
  struct Entry {
    std::shared_ptr<Catalog> catalog;
    std::unique_ptr<Query> query;
    std::unique_ptr<Ess> ess;
    /// The cache key this entry was built under.
    std::string key;
  };

  /// Cumulative counters since construction.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    /// Entries dropped by InvalidateQuery (feedback drift evictions);
    /// counted separately from capacity evictions.
    int64_t invalidations = 0;
    /// Builds that returned a non-OK Status (not cached).
    int64_t failures = 0;
    /// Contexts currently resident.
    size_t size = 0;
  };

  // (Two constructors rather than one defaulted argument: in-class default
  // arguments may not use Options{} before the enclosing class is complete.)
  ContextCache() : ContextCache(Options{}) {}
  explicit ContextCache(Options options);

  ContextCache(const ContextCache&) = delete;
  ContextCache& operator=(const ContextCache&) = delete;

  /// Returns the context for suite query `id` under `config`, building it
  /// on first use. Fails with the build's Status when construction fails
  /// (e.g. an armed permanent optimizer fault), or NotFound for an unknown
  /// suite id. When `cache_hit` is non-null it is set to whether the
  /// context was already resident (false for misses and failed builds).
  /// `encoding` picks the catalog's storage layout (kAuto = the
  /// per-column auto policy) and `use_compression` is the request's fused
  /// execution toggle; both are part of the cache key so contexts built
  /// under different storage knobs never alias. The two-argument form is
  /// the historical default (kAuto, compression on).
  Result<std::shared_ptr<const Entry>> Get(const std::string& id,
                                           const Ess::Config& config,
                                           bool* cache_hit = nullptr);
  Result<std::shared_ptr<const Entry>> Get(const std::string& id,
                                           const Ess::Config& config,
                                           Encoding encoding,
                                           bool use_compression,
                                           bool* cache_hit = nullptr);
  /// Full-knob form: `backend` additionally picks resident vs mmap'd
  /// catalog payloads (kMmap contexts never alias kResident ones — the
  /// backend is part of the key — though their plans, stats, and surfaces
  /// are bit-identical).
  Result<std::shared_ptr<const Entry>> Get(const std::string& id,
                                           const Ess::Config& config,
                                           Encoding encoding,
                                           bool use_compression,
                                           StorageBackend backend,
                                           bool* cache_hit = nullptr);

  Stats stats() const;

  /// Evicts every cached context for suite query `id`, under any
  /// (config, encoding) — the feedback layer's drift invalidation: when
  /// observed selectivities leave a query's confidence region, its
  /// cached surfaces (and thereby their cached plans, re-costed on the
  /// rebuild) are stale. Entries still referenced by in-flight requests
  /// stay alive until the last holder drops them, as with LRU eviction.
  /// Returns the number of entries dropped.
  size_t InvalidateQuery(const std::string& id);

  /// The cache key for (id, config, storage knobs) — exposed for goldens
  /// and logging.
  static std::string Key(const std::string& id, const Ess::Config& config,
                         Encoding encoding = Encoding::kAuto,
                         bool use_compression = true,
                         StorageBackend backend = StorageBackend::kResident);

  /// Process-default instance (unbounded), for callers that want
  /// process-lifetime contexts without owning a cache.
  static ContextCache& Default();

  /// Default-instance convenience for infallible callers (benches, demos):
  /// builds on first use, aborts on any failure, and the returned
  /// reference lives for the process (Default() never evicts). Fallible
  /// callers use Get() on an owned instance.
  static const Entry& GetDefault(const std::string& id,
                                 const Ess::Config& config = Ess::Config{});

  /// The shared synthetic catalogs (built once per process *per storage
  /// encoding*; every cache instance reuses them — only the per-query ESS
  /// differs per entry). The data, statistics, and plans are identical
  /// for every encoding; only the physical column layout differs.
  /// The kMmap variants serialize the resident build to column files in a
  /// temp directory, reopen them mapped (the files are unlinked once
  /// mapped; the mappings keep them alive), and rebuild the same indexes —
  /// stats carried through the files bit-identically.
  static std::shared_ptr<Catalog> TpcdsCatalog(
      Encoding encoding = Encoding::kAuto,
      StorageBackend backend = StorageBackend::kResident);
  static std::shared_ptr<Catalog> JobCatalog(
      Encoding encoding = Encoding::kAuto,
      StorageBackend backend = StorageBackend::kResident);

  /// Installs an externally built catalog (e.g. a scale-dir store opened
  /// from column files by robustqp_server --scale-dir) as the process-wide
  /// TPC-DS catalog for `backend` under every encoding: subsequent
  /// context builds for TPC-DS suite queries at that backend use it
  /// instead of the synthetic build. Must be called before the first Get
  /// that would build the replaced variant; intended for process startup.
  static void RegisterExternalTpcds(std::shared_ptr<Catalog> catalog,
                                    StorageBackend backend);

 private:
  struct Node {
    std::mutex build_mu;          // serializes the one-time build
    bool built = false;           // set under build_mu
    Status build_status;          // the build's outcome
    std::shared_ptr<const Entry> entry;
  };

  /// Drops LRU nodes beyond capacity. Caller holds mu_.
  void EvictLocked();

  const Options options_;
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<std::string> lru_;
  struct Slot {
    std::shared_ptr<Node> node;
    std::list<std::string>::iterator lru_it;
  };
  std::map<std::string, Slot> slots_;
  Stats stats_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_SERVER_CONTEXT_CACHE_H_
