#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <sstream>

namespace robustqp {

namespace {

/// Splits "a,b,c" into doubles; returns false on any non-numeric token.
bool ParseDoubles(const std::string& csv, std::vector<double>* out) {
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') return false;
    out->push_back(v);
  }
  return !out->empty();
}

}  // namespace

Status ParseSubmitLine(const std::string& line, ServiceRequest* out) {
  std::stringstream ss(line);
  std::string verb;
  ss >> verb;
  if (verb != "SUBMIT") {
    return Status::InvalidArgument("expected SUBMIT, got \"" + verb + "\"");
  }
  ServiceRequest req;
  std::string token;
  while (ss >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed key=value token: " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (value.empty()) {
      return Status::InvalidArgument("empty value for key " + key);
    }
    if (key == "query") {
      req.query_id = value;
    } else if (key == "mode") {
      if (!ParseRobustnessMode(value, &req.mode)) {
        return Status::InvalidArgument(
            "unknown mode " + value + " (want native|pb|sb|ab)");
      }
    } else if (key == "qa") {
      req.qa.clear();
      if (!ParseDoubles(value, &req.qa)) {
        return Status::InvalidArgument("malformed qa list: " + value);
      }
    } else if (key == "budget") {
      req.budget = std::atof(value.c_str());
    } else if (key == "deadline_ms") {
      req.deadline_ms = std::atof(value.c_str());
    } else if (key == "use_engine") {
      req.use_engine = value != "0";
    } else if (key == "engine") {
      if (!Executor::ParseEngine(value, &req.options.engine)) {
        return Status::InvalidArgument(
            "unknown engine " + value + " (want tuple|batch)");
      }
    } else if (key == "threads") {
      req.options.num_threads = std::atoi(value.c_str());
    } else if (key == "shards") {
      // Scatter-gather workers for full engine executions; results are
      // bit-identical at any value, so this is a pure performance knob.
      req.options.num_shards = std::atoi(value.c_str());
    } else if (key == "points") {
      req.options.points_per_dim = std::atoi(value.c_str());
    } else if (key == "ratio") {
      req.options.contour_cost_ratio = std::atof(value.c_str());
    } else if (key == "build") {
      if (value == "exhaustive") {
        req.options.ess_build_mode = EssBuildMode::kExhaustive;
      } else if (value == "exact") {
        req.options.ess_build_mode = EssBuildMode::kExact;
      } else if (value.rfind("recost:", 0) == 0) {
        req.options.ess_build_mode = EssBuildMode::kRecost;
        req.options.recost_lambda = std::atof(value.c_str() + 7);
        if (req.options.recost_lambda <= 1.0) {
          return Status::InvalidArgument("recost lambda must be > 1");
        }
      } else {
        return Status::InvalidArgument(
            "unknown build mode " + value +
            " (want exhaustive|exact|recost:<lambda>)");
      }
    } else if (key == "compression") {
      // One knob for the storage layout: auto|on, raw|off, packed, vbyte,
      // dict. Raw storage has nothing to fuse, so it also clears the
      // fused-execution toggle (override with fused=).
      if (!ParseEncoding(value, &req.options.encoding)) {
        return Status::InvalidArgument(
            "unknown compression " + value +
            " (want auto|raw|packed|vbyte|dict|on|off)");
      }
      req.options.use_compression = req.options.encoding != Encoding::kRaw;
    } else if (key == "fused") {
      // Differential knob: decode-then-filter (fused=0) on encoded
      // columns; results and cost accounting are identical either way.
      req.options.use_compression = value != "0";
    } else if (key == "storage") {
      // Catalog residence: resident memory or demand-paged column files.
      // Physical only — responses are bit-identical across backends.
      if (!ParseStorageBackend(value, &req.options.storage)) {
        return Status::InvalidArgument("unknown storage " + value +
                                       " (want resident|mmap)");
      }
    } else if (key == "feedback") {
      // Closed-loop knob: consult/update the serving instance's
      // FeedbackStore (calibrated native seeds, warm-started discovery,
      // drift-driven cache invalidation). With an empty store the
      // response payload is bit-identical to feedback=0.
      req.options.use_feedback = value != "0";
    } else if (key == "faults") {
      req.options.fault_spec = value;
    } else if (key == "seed") {
      req.options.fault_seed =
          static_cast<uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else {
      return Status::InvalidArgument("unknown SUBMIT key: " + key);
    }
  }
  *out = std::move(req);
  return Status::OK();
}

std::string FormatResponseLine(const ServiceResponse& resp) {
  std::ostringstream os;
  if (!resp.status.ok()) {
    os << "ERR code=" << ExitCodeFor(resp.status.code())
       << " status=" << StatusCodeToString(resp.status.code())
       << " msg=" << resp.status.message();
    return os.str();
  }
  os << "OK id=" << resp.request_id << " algo=" << resp.algorithm
     << " completed=" << (resp.completed ? 1 : 0)
     << " cost=" << resp.cost_used << " opt=" << resp.opt_cost
     << " subopt=" << resp.suboptimality
     << " execs=" << resp.discovery.num_executions()
     << " contour=" << resp.discovery.final_contour
     << " cache_hit=" << (resp.cache_hit ? 1 : 0)
     << " retries=" << resp.robustness.transient_retries
     << " fb_hit=" << (resp.feedback_hit ? 1 : 0)
     << " warm=" << (resp.warm_started ? 1 : 0)
     << " warm_done=" << (resp.warm_completed ? 1 : 0)
     << " drift=" << (resp.feedback_drift ? 1 : 0)
     << " queue_ms=" << resp.queue_ms << " run_ms=" << resp.run_ms;
  return os.str();
}

TcpServer::TcpServer(QueryService* service, int port)
    : service_(service), port_(port) {}

TcpServer::~TcpServer() {
  Stop();
  std::thread helper;
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    helper = std::move(shutdown_thread_);
  }
  if (helper.joinable()) helper.join();
}

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind() failed for port " +
                               std::to_string(port_));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  Result<int64_t> session = service_->OpenSession();
  std::string buffer;
  char chunk[4096];
  bool open = session.ok();
  while (open && !stopping_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while (open && (nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      std::string reply;
      if (line == "PING") {
        reply = "PONG";
      } else if (line == "QUIT") {
        open = false;
        break;
      } else if (line == "SHUTDOWN") {
        const std::string bye = "BYE\n";
        (void)!::send(fd, bye.data(), bye.size(), MSG_NOSIGNAL);
        open = false;
        // Stop() joins this thread; hand the work to a helper thread the
        // destructor joins (never detached — it must not outlive *this).
        {
          std::lock_guard<std::mutex> lock(shutdown_mu_);
          if (!shutdown_thread_.joinable()) {
            shutdown_thread_ = std::thread([this] { Stop(); });
          }
        }
        break;
      } else if (line == "STATS") {
        const ContextCache::Stats cs = service_->cache_stats();
        const QueryService::ServiceStats ss = service_->stats();
        std::ostringstream os;
        os << "STATS hits=" << cs.hits << " misses=" << cs.misses
           << " evictions=" << cs.evictions << " cache_size=" << cs.size
           << " submitted=" << ss.submitted << " completed=" << ss.completed
           << " rejected=" << ss.rejected << " queue_depth=" << ss.queue_depth
           << " shard_chunks_scanned=" << ss.shard_chunks_scanned
           << " shard_chunks_pruned=" << ss.shard_chunks_pruned
           << " shard_straggler_retries=" << ss.shard_straggler_retries
           << " shard_lost_chunks=" << ss.shard_lost_chunks
           << " invalidations=" << cs.invalidations
           << " feedback_hits=" << ss.feedback_hits
           << " feedback_misses=" << ss.feedback_misses
           << " warm_starts=" << ss.warm_starts
           << " warm_completions=" << ss.warm_completions
           << " drift_events=" << ss.drift_events
           << " feedback_degraded=" << ss.feedback_degraded;
        reply = os.str();
      } else {
        ServiceRequest req;
        const Status parse = ParseSubmitLine(line, &req);
        ServiceResponse resp;
        if (!parse.ok()) {
          resp.status = parse;
        } else {
          Result<int64_t> id = service_->Submit(*session, std::move(req));
          if (!id.ok()) {
            resp.status = id.status();
          } else {
            Result<ServiceResponse> done = service_->Wait(*session, *id);
            resp = done.ok() ? done.MoveValue() : ServiceResponse{};
            if (!done.ok()) resp.status = done.status();
          }
        }
        reply = FormatResponseLine(resp);
      }
      reply.push_back('\n');
      if (::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL) < 0) {
        open = false;
      }
    }
  }
  if (session.ok()) (void)service_->CloseSession(*session);
  ::close(fd);
}

void TcpServer::Stop() {
  if (stopping_.exchange(true)) {
    // Already stopping/stopped; still wait for completion so callers can
    // rely on Stop() being a barrier.
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [&] { return shut_down_; });
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shut_down_ = true;
  }
  shutdown_cv_.notify_all();
}

void TcpServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [&] { return shut_down_; });
}

}  // namespace robustqp
