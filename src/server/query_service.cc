#include "server/query_service.h"

#include <algorithm>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/alignedbound.h"
#include "core/oracle.h"
#include "core/planbouquet.h"
#include "core/spillbound.h"
#include "feedback/warm_start.h"

namespace robustqp {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::unique_ptr<DiscoveryAlgorithm> MakeAlgorithm(RobustnessMode mode,
                                                  const Ess* ess) {
  switch (mode) {
    case RobustnessMode::kPlanBouquet:
      return std::make_unique<PlanBouquet>(ess);
    case RobustnessMode::kSpillBound:
      return std::make_unique<SpillBound>(ess);
    case RobustnessMode::kAlignedBound:
      return std::make_unique<AlignedBound>(ess);
    case RobustnessMode::kNative:
      break;
  }
  return nullptr;
}

}  // namespace

QueryService::QueryService(Options options)
    : options_(options),
      cache_(ContextCache::Options{options.cache_capacity}),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {}

QueryService::~QueryService() {
  // Drain: every admitted task must reach its terminal state before the
  // request map (which tasks write into) is destroyed.
  (void)pool_->Wait();
  pool_.reset();
}

Result<int64_t> QueryService::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t id = next_session_id_++;
  sessions_[id] = {};
  return id;
}

Status QueryService::CloseSession(int64_t session_id) {
  std::vector<std::shared_ptr<RequestState>> in_flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("unknown session " +
                              std::to_string(session_id));
    }
    for (int64_t rid : it->second) {
      auto rit = requests_.find(rid);
      if (rit != requests_.end()) in_flight.push_back(rit->second);
    }
  }
  // Wait for the session's requests outside the service lock, then drop
  // them and the session in one sweep.
  for (const auto& state : in_flight) {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done; });
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("session closed concurrently");
  }
  for (int64_t rid : it->second) requests_.erase(rid);
  sessions_.erase(it);
  return Status::OK();
}

Result<int64_t> QueryService::Submit(int64_t session_id,
                                     ServiceRequest request) {
  std::shared_ptr<RequestState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("unknown session " +
                              std::to_string(session_id));
    }
    if (admitted_ >= options_.queue_limit) {
      ++stats_.rejected;
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.queue_limit) +
          " in flight); resubmit after load drains");
    }
    ++admitted_;
    ++stats_.submitted;
    state = std::make_shared<RequestState>();
    state->id = next_request_id_++;
    state->session = session_id;
    state->request = std::move(request);
    state->submit_time = std::chrono::steady_clock::now();
    it->second.insert(state->id);
    requests_[state->id] = state;
  }
  pool_->Submit([this, state] { RunRequest(state); });
  return state->id;
}

void QueryService::RunRequest(const std::shared_ptr<RequestState>& state) {
  if (options_.pre_run_hook) options_.pre_run_hook();
  const auto start = std::chrono::steady_clock::now();

  ServiceResponse resp;
  resp.request_id = state->id;
  resp.query_id = state->request.query_id;
  resp.queue_ms = MsSince(state->submit_time, start);

  const double deadline = state->request.deadline_ms;
  if (deadline >= 0.0 && resp.queue_ms > deadline) {
    resp.status = Status::DeadlineExceeded(
        "deadline (" + std::to_string(deadline) + " ms) elapsed after " +
        std::to_string(resp.queue_ms) + " ms in the queue");
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deadline_expired;
  } else {
    Execute(state->request, &cache_, &feedback_store_, &fault_mu_, &resp);
    resp.request_id = state->id;
  }
  resp.run_ms = MsSince(start, std::chrono::steady_clock::now());

  // Service counters first, then publish: a client that has seen Wait()
  // return must also see the counters reflect its request.
  {
    std::lock_guard<std::mutex> lock(mu_);
    --admitted_;
    ++stats_.completed;
    const shard::ShardReport& srep = resp.execution.shard;
    stats_.shard_chunks_scanned += srep.chunks_scanned;
    stats_.shard_chunks_pruned += srep.chunks_pruned;
    stats_.shard_straggler_retries += srep.straggler_retries;
    stats_.shard_lost_chunks += srep.lost_chunks;
    if (state->request.options.use_feedback) {
      resp.feedback_hit ? ++stats_.feedback_hits : ++stats_.feedback_misses;
      stats_.warm_starts += resp.warm_started ? 1 : 0;
      stats_.warm_completions += resp.warm_completed ? 1 : 0;
      stats_.drift_events += resp.feedback_drift ? 1 : 0;
      stats_.feedback_degraded += resp.robustness.feedback_degradations;
    }
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->response = std::move(resp);
    state->done = true;
  }
  state->cv.notify_all();
}

Result<std::optional<ServiceResponse>> QueryService::Poll(
    int64_t session_id, int64_t request_id) {
  std::shared_ptr<RequestState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = requests_.find(request_id);
    if (it == requests_.end() || it->second->session != session_id) {
      return Status::NotFound("unknown request " +
                              std::to_string(request_id) + " in session " +
                              std::to_string(session_id));
    }
    state = it->second;
  }
  std::lock_guard<std::mutex> lock(state->mu);
  if (!state->done) return std::optional<ServiceResponse>{};
  return std::optional<ServiceResponse>{state->response};
}

Result<ServiceResponse> QueryService::Wait(int64_t session_id,
                                           int64_t request_id) {
  std::shared_ptr<RequestState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = requests_.find(request_id);
    if (it == requests_.end() || it->second->session != session_id) {
      return Status::NotFound("unknown request " +
                              std::to_string(request_id) + " in session " +
                              std::to_string(session_id));
    }
    state = it->second;
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done; });
  return state->response;
}

QueryService::ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = stats_;
  out.queue_depth = static_cast<int64_t>(admitted_);
  return out;
}

ServiceResponse QueryService::RunOneShot(const ServiceRequest& request,
                                         ContextCache* cache,
                                         feedback::FeedbackStore* store) {
  // One-shots share the concurrent path's body; the lock they pass is a
  // private one, merely satisfying the same discipline.
  static std::shared_mutex* one_shot_mu = new std::shared_mutex();
  ServiceResponse resp;
  resp.query_id = request.query_id;
  Execute(request, cache != nullptr ? cache : &ContextCache::Default(), store,
          one_shot_mu, &resp);
  return resp;
}

void QueryService::Execute(const ServiceRequest& request, ContextCache* cache,
                           feedback::FeedbackStore* store,
                           std::shared_mutex* fault_mu,
                           ServiceResponse* resp) {
  // Phase 1 — resolve the context under the shared lock: no chaos request
  // holds the injector armed, so cache builds are always clean and the
  // cached surface is independent of request interleaving.
  std::shared_ptr<const ContextCache::Entry> ctx;
  {
    std::shared_lock<std::shared_mutex> lock(*fault_mu);
    Result<std::shared_ptr<const ContextCache::Entry>> ctx_or =
        cache->Get(request.query_id, request.options.ToEssConfig(),
                   request.options.encoding, request.options.use_compression,
                   request.options.storage, &resp->cache_hit);
    if (!ctx_or.ok()) {
      resp->status = ctx_or.status();
      return;
    }
    ctx = ctx_or.MoveValue();
  }

  // Phase 2 — run. Clean requests share the lock; chaos requests own it
  // exclusively, arm the injector, and disarm before releasing.
  if (request.options.fault_spec.empty()) {
    std::shared_lock<std::shared_mutex> lock(*fault_mu);
    resp->status = RunResolved(request, *ctx, store, resp);
  } else {
    std::unique_lock<std::shared_mutex> lock(*fault_mu);
    const Status st = FaultInjector::Global().Configure(
        request.options.fault_spec, request.options.fault_seed);
    if (!st.ok()) {
      resp->status = st;
      return;
    }
    {
      // Stream keyed by the request's seed: the draw sequence depends only
      // on (spec, seed), never on scheduling or request order.
      FaultStreamScope scope(request.options.fault_seed);
      resp->status = RunResolved(request, *ctx, store, resp);
    }
    FaultInjector::Global().Disarm();
  }

  // Drift invalidation: the run's observation left the calibration's
  // confidence regime, so every cached context (and thereby cached plan)
  // for this query is stale — drop them; the next request rebuilds with
  // freshly costed plans. Done after releasing the fault lock (cache
  // mutation needs no injector discipline and must not extend a chaos
  // request's exclusive hold).
  if (resp->feedback_drift) cache->InvalidateQuery(request.query_id);
}

Status QueryService::RunResolved(const ServiceRequest& request,
                                 const ContextCache::Entry& ctx,
                                 feedback::FeedbackStore* store,
                                 ServiceResponse* resp) {
  const Ess& ess = *ctx.ess;
  const int dims = ess.dims();

  // Resolve the (snapped) true location. Engine runs take their truth
  // from the data; the simulated midpoint default keeps parameterless
  // requests deterministic.
  GridLoc qa(static_cast<size_t>(dims), ess.points() / 2);
  if (!request.qa.empty()) {
    if (static_cast<int>(request.qa.size()) != dims) {
      return Status::InvalidArgument(
          "qa needs exactly " + std::to_string(dims) + " selectivities, got " +
          std::to_string(request.qa.size()));
    }
    for (int d = 0; d < dims; ++d) {
      const double s = request.qa[static_cast<size_t>(d)];
      if (!(s > 0.0) || s > 1.0) {
        return Status::OutOfRange("qa selectivity out of (0, 1]: " +
                                  std::to_string(s));
      }
      qa[static_cast<size_t>(d)] = ess.axis().NearestIndex(s);
    }
  }
  const EssPoint qa_sel = ess.SelAt(qa);
  resp->opt_cost = ess.OptimalCost(qa);

  // Feedback read side: fetch the calibration (a no-op Calibration when
  // feedback is off or no store is attached — those paths are
  // bit-identical to an empty store by construction). A store_load fault
  // degrades to the same cold path, charged into fb_report.
  const bool use_fb = request.options.use_feedback && store != nullptr;
  feedback::FeedbackStore::Calibration cal;
  RobustnessReport fb_report;
  std::string fb_key;
  if (use_fb) {
    fb_key = feedback::FeedbackStore::Key(
        request.query_id, dims, StorageBackendName(request.options.storage));
    cal = store->Get(fb_key, &fb_report);
    resp->feedback_hit = cal.valid;
  }

  std::unique_ptr<Executor> executor;
  if (request.use_engine) {
    executor = std::make_unique<Executor>(ctx.catalog.get(),
                                          ess.config().cost_model,
                                          request.options.ToExecutorOptions());
  }

  // What this run observed, for the feedback write side: the simulated
  // oracle's q_a is exact; engine runs report per-epp observed counts
  // from the committed attempt (empty until a full execution completes).
  std::vector<double> observed;
  int observed_contour = -1;

  if (request.mode == RobustnessMode::kNative) {
    resp->algorithm = "native";
    EssPoint qe = ess.optimizer().estimator().NativeEstimatePoint();
    if (use_fb && cal.valid &&
        static_cast<int>(cal.sel.size()) == dims) {
      // Calibrated seed: optimize at the observed geometric mean instead
      // of the statistics estimate (the stale_stats closing move).
      for (int d = 0; d < dims; ++d) {
        qe[static_cast<size_t>(d)] = std::min(
            1.0, std::max(cal.sel[static_cast<size_t>(d)],
                          ess.axis().value(0)));
      }
    }
    const std::unique_ptr<Plan> plan = ess.optimizer().Optimize(qe);
    if (request.use_engine) {
      Result<ExecutionResult> res = executor->Execute(*plan, request.budget);
      if (!res.ok()) return res.status();
      resp->execution = res.MoveValue();
      resp->completed = resp->execution.completed;
      resp->cost_used = resp->execution.cost_used;
      resp->robustness = resp->execution.robustness;
      if (resp->completed) {
        observed = ObservedEppSelectivities(*plan, resp->execution);
      }
    } else {
      resp->completed = true;
      resp->cost_used = ess.optimizer().PlanCost(*plan, qa_sel);
      observed = qa_sel;
    }
  } else {
    const std::unique_ptr<DiscoveryAlgorithm> algo =
        MakeAlgorithm(request.mode, &ess);
    resp->algorithm = algo->name();
    resp->guarantee = algo->MsoGuarantee();
    std::unique_ptr<ExecutionOracle> oracle;
    EngineOracle* engine_oracle = nullptr;
    if (request.use_engine) {
      auto eo = std::make_unique<EngineOracle>(executor.get());
      engine_oracle = eo.get();
      oracle = std::move(eo);
    } else {
      auto so = std::make_unique<SimulatedOracle>(&ess, qa);
      so->set_num_shards(request.options.num_shards);
      oracle = std::move(so);
    }
    // Warm start: shrink the search to the calibration's confidence
    // region. MakeWarmStartHint rejects invalid/degraded calibrations,
    // and Run with a null/invalid hint is the cold path verbatim — the
    // MSO guarantee is never weakened, only the constant improved.
    WarmStartHint hint;
    if (use_fb) hint = feedback::MakeWarmStartHint(ess, cal);
    resp->discovery =
        algo->Run(oracle.get(), hint.valid ? &hint : nullptr);
    resp->completed = resp->discovery.completed;
    resp->cost_used = resp->discovery.total_cost;
    resp->robustness = resp->discovery.robustness;
    resp->warm_started = resp->discovery.warm_started;
    resp->warm_completed = resp->discovery.warm_completed;
    if (engine_oracle != nullptr &&
        engine_oracle->last_completed_full() != nullptr) {
      resp->execution = *engine_oracle->last_completed_full();
    }
    if (resp->completed) {
      observed = oracle->ObservedSelectivities();
      observed_contour = resp->discovery.final_contour;
    }
  }

  // Feedback accounting merges after the run's own robustness snapshot so
  // a store_load degradation is never overwritten.
  if (use_fb) {
    resp->robustness.Merge(fb_report);
    if (resp->completed && !observed.empty()) {
      const feedback::FeedbackStore::DriftSignal drift = store->Observe(
          fb_key, observed, resp->cost_used, observed_contour);
      resp->feedback_drift = drift.drifted;
    }
  }

  resp->suboptimality =
      resp->opt_cost > 0.0 ? resp->cost_used / resp->opt_cost : 0.0;
  if (!resp->completed) {
    return Status::BudgetExhausted("execution did not complete within " +
                                   std::to_string(request.budget) +
                                   " cost units");
  }
  if (request.budget >= 0.0 && resp->cost_used > request.budget) {
    return Status::BudgetExhausted(
        "cost_used " + std::to_string(resp->cost_used) +
        " exceeded the request budget " + std::to_string(request.budget));
  }
  return Status::OK();
}

}  // namespace robustqp
