#include "server/request_options.h"

namespace robustqp {

bool ParseRobustnessMode(const std::string& name, RobustnessMode* out) {
  if (name == "native") {
    *out = RobustnessMode::kNative;
  } else if (name == "pb") {
    *out = RobustnessMode::kPlanBouquet;
  } else if (name == "sb") {
    *out = RobustnessMode::kSpillBound;
  } else if (name == "ab") {
    *out = RobustnessMode::kAlignedBound;
  } else {
    return false;
  }
  return true;
}

const char* RobustnessModeName(RobustnessMode mode) {
  switch (mode) {
    case RobustnessMode::kNative:
      return "native";
    case RobustnessMode::kPlanBouquet:
      return "pb";
    case RobustnessMode::kSpillBound:
      return "sb";
    case RobustnessMode::kAlignedBound:
      return "ab";
  }
  return "?";
}

Executor::Options RequestOptions::ToExecutorOptions() const {
  Executor::Options opts;
  opts.engine = engine;
  opts.num_threads = num_threads;
  opts.use_zone_maps = use_zone_maps;
  opts.use_compression = use_compression;
  opts.num_shards = num_shards;
  return opts;
}

Ess::Config RequestOptions::ToEssConfig() const {
  Ess::Config config;
  config.points_per_dim = points_per_dim;
  config.contour_cost_ratio = contour_cost_ratio;
  config.cost_model = cost_model;
  config.num_threads = ess_threads;
  config.build_mode = ess_build_mode;
  config.recost_lambda = recost_lambda;
  return config;
}

}  // namespace robustqp
