// Thin line-protocol TCP front over QueryService, in the shape of
// RDF-TDAA's server: one text line per request, one text line per answer,
// so the bench driver (tools/service_smoke.py) and anything that can open
// a socket can talk to the service without linking it.
//
// Protocol (newline-terminated ASCII, one command per line):
//
//   SUBMIT query=2D_Q91 mode=sb qa=0.04,0.1 faults=exec.*:p=0.01 seed=7
//     -> OK id=3 algo=SpillBound completed=1 cost=412.1 opt=301.9
//        subopt=1.365 execs=6 contour=4 cache_hit=1 retries=0 fb_hit=0
//        warm=0 warm_done=0 drift=0 queue_ms=0.1 run_ms=3.2
//     -> ERR code=9 status=ResourceExhausted msg=admission queue full ...
//   PING      -> PONG
//   STATS     -> STATS hits=.. misses=.. evictions=.. cache_size=..
//                submitted=.. completed=.. rejected=.. queue_depth=..
//                shard_chunks_scanned=.. shard_chunks_pruned=..
//                shard_straggler_retries=.. shard_lost_chunks=..
//                invalidations=.. feedback_hits=.. feedback_misses=..
//                warm_starts=.. warm_completions=.. drift_events=..
//                feedback_degraded=..
//   QUIT      -> closes the connection
//   SHUTDOWN  -> stops the whole server
//
// SUBMIT keys mirror ServiceRequest / RequestOptions: query, mode
// (native|pb|sb|ab), qa (comma-separated selectivities), budget,
// deadline_ms, use_engine (0|1), engine (tuple|batch), threads, shards
// (scatter-gather workers for full engine runs — results bit-identical
// at any value), points,
// ratio, build (exhaustive|exact|recost:<l>), compression
// (auto|raw|packed|vbyte|dict|on|off — the catalog's storage encoding;
// raw also disables fused execution), fused (0|1 — decode-then-filter
// override on encoded columns), storage (resident|mmap — catalog
// residence: in-memory or demand-paged column files; physical only,
// responses are bit-identical across backends),
// feedback (0|1 — closed-loop calibration,
// warm-started discovery, and drift detection against the serving
// instance's FeedbackStore), faults (spec string, no spaces), seed.
// Unknown keys are an error; values never contain spaces.
// Each SUBMIT is served synchronously on its connection (Submit + Wait) —
// concurrency comes from concurrent connections, which is exactly how the
// throughput bench drives it. ERR `code` is the stable ExitCodeFor()
// number of the status.

#ifndef ROBUSTQP_SERVER_TCP_SERVER_H_
#define ROBUSTQP_SERVER_TCP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/query_service.h"

namespace robustqp {

/// Parses one SUBMIT line ("SUBMIT key=value ...") into a ServiceRequest.
/// Returns InvalidArgument on unknown keys or malformed values.
Status ParseSubmitLine(const std::string& line, ServiceRequest* out);

/// Renders the one-line wire answer for a response: "OK ..." when the
/// terminal status is kOk, "ERR code=<n> status=<name> msg=<text>"
/// otherwise.
std::string FormatResponseLine(const ServiceResponse& resp);

/// A minimal thread-per-connection TCP front. Owns no QueryService — the
/// embedding binary wires one in.
class TcpServer {
 public:
  /// `port` 0 picks an ephemeral port; port() reports the bound one.
  TcpServer(QueryService* service, int port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the accept loop. Fails with kUnavailable
  /// when the port cannot be bound.
  Status Start();

  /// Stops accepting, closes every connection, and joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// Blocks until Stop() is called (by a SHUTDOWN command or another
  /// thread).
  void WaitForShutdown();

  int port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  QueryService* const service_;
  int port_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shut_down_ = false;
  /// Set by the SHUTDOWN command (Stop() must run off-connection-thread);
  /// joined by the destructor.
  std::thread shutdown_thread_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_SERVER_TCP_SERVER_H_
