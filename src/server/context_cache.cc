#include "server/context_cache.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <utility>

#include "common/status.h"
#include "storage/table.h"
#include "workloads/job.h"
#include "workloads/queries.h"
#include "workloads/tpcds.h"

namespace robustqp {

ContextCache::ContextCache(Options options) : options_(options) {}

std::string ContextCache::Key(const std::string& id, const Ess::Config& c,
                              Encoding encoding, bool use_compression,
                              StorageBackend backend) {
  std::ostringstream os;
  os << id << "|" << c.min_sel << "|" << c.points_per_dim << "|"
     << c.contour_cost_ratio << "|" << c.cost_model.params().scan_tuple << ","
     << c.cost_model.params().hash_build_tuple << ","
     << c.cost_model.params().hash_probe_tuple << ","
     << c.cost_model.params().nlj_materialize_tuple << ","
     << c.cost_model.params().nlj_pair << ","
     << c.cost_model.params().join_output_tuple << "|"
     << static_cast<int>(c.build_mode) << "|" << c.recost_lambda << "|"
     << c.refine_fallback_fraction << "|" << EncodingName(encoding) << "|"
     << (use_compression ? "fused" : "decode") << "|"
     << StorageBackendName(backend);
  return os.str();
}

namespace {

/// The whole-catalog policy for one requested encoding: kAuto means the
/// per-column auto policy, anything else forces that encoding everywhere.
EncodingPolicy PolicyForEncoding(Encoding encoding) {
  EncodingPolicy policy;
  policy.kind = encoding;
  return policy;
}

/// Rewrites a resident catalog through the column-file format: every table
/// is serialized to a temp file, reopened demand-paged, and the file
/// unlinked (the mapping keeps the inode alive until the catalog drops),
/// then the same indexes are rebuilt. Statistics ride through the file,
/// so the mapped twin carries bit-identical stats — only the physical
/// residence of the payload bytes differs.
std::shared_ptr<Catalog> RemapCatalog(const Catalog& resident) {
  char tmpl[] = "/tmp/rqp_colf_XXXXXX";
  char* dir = mkdtemp(tmpl);
  RQP_CHECK(dir != nullptr);
  auto mapped = std::make_shared<Catalog>();
  for (const std::string& name : resident.TableNames()) {
    const CatalogEntry* entry = resident.FindTable(name);
    const std::string path = std::string(dir) + "/" + name + ".rqp";
    RQP_CHECK(WriteTableFile(*entry->table, entry->stats, path).ok());
    MappedTable mt;
    RQP_CHECK(OpenMappedTable(path, &mt).ok());
    std::remove(path.c_str());
    RQP_CHECK(mapped->AddTable(mt.table, std::move(mt.stats)).ok());
    for (const auto& [column, index] : entry->indexes) {
      (void)index;
      RQP_CHECK(mapped->BuildIndex(name, column).ok());
    }
  }
  rmdir(dir);
  return mapped;
}

using CatalogKey = std::pair<Encoding, StorageBackend>;

/// One lazily-built catalog per (encoding, backend), shared process-wide.
/// The kMmap variant is the resident build remapped through column files,
/// so asking for kMmap materializes (and caches) the resident twin too.
std::shared_ptr<Catalog> CatalogFor(
    Encoding encoding, StorageBackend backend,
    std::map<CatalogKey, std::shared_ptr<Catalog>>* cats, std::mutex* mu,
    const std::function<std::shared_ptr<Catalog>()>& build_resident) {
  std::lock_guard<std::mutex> lock(*mu);
  std::shared_ptr<Catalog>& slot = (*cats)[{encoding, backend}];
  if (slot == nullptr) {
    // (std::map references are stable across the second operator[].)
    std::shared_ptr<Catalog>& res =
        (*cats)[{encoding, StorageBackend::kResident}];
    if (res == nullptr) res = build_resident();
    slot = backend == StorageBackend::kResident ? res : RemapCatalog(*res);
  }
  return slot;
}

std::mutex* ExternalMu() {
  static std::mutex* mu = new std::mutex();
  return mu;
}

std::map<StorageBackend, std::shared_ptr<Catalog>>* ExternalTpcds() {
  static auto* m = new std::map<StorageBackend, std::shared_ptr<Catalog>>();
  return m;
}

}  // namespace

std::shared_ptr<Catalog> ContextCache::TpcdsCatalog(Encoding encoding,
                                                    StorageBackend backend) {
  {
    std::lock_guard<std::mutex> lock(*ExternalMu());
    auto it = ExternalTpcds()->find(backend);
    if (it != ExternalTpcds()->end()) return it->second;
  }
  static std::mutex* mu = new std::mutex();
  static auto* cats = new std::map<CatalogKey, std::shared_ptr<Catalog>>();
  return CatalogFor(encoding, backend, cats, mu, [encoding] {
    return std::shared_ptr<Catalog>(
        BuildTpcdsCatalog(42, 1.0, PolicyForEncoding(encoding)));
  });
}

std::shared_ptr<Catalog> ContextCache::JobCatalog(Encoding encoding,
                                                  StorageBackend backend) {
  static std::mutex* mu = new std::mutex();
  static auto* cats = new std::map<CatalogKey, std::shared_ptr<Catalog>>();
  return CatalogFor(encoding, backend, cats, mu, [encoding] {
    return std::shared_ptr<Catalog>(
        BuildJobCatalog(7, 1.0, PolicyForEncoding(encoding)));
  });
}

void ContextCache::RegisterExternalTpcds(std::shared_ptr<Catalog> catalog,
                                         StorageBackend backend) {
  std::lock_guard<std::mutex> lock(*ExternalMu());
  (*ExternalTpcds())[backend] = std::move(catalog);
}

ContextCache& ContextCache::Default() {
  static ContextCache* cache = new ContextCache(Options{/*capacity=*/0});
  return *cache;
}

const ContextCache::Entry& ContextCache::GetDefault(const std::string& id,
                                                    const Ess::Config& config) {
  Result<std::shared_ptr<const Entry>> entry = Default().Get(id, config);
  RQP_CHECK(entry.ok());
  // Default() never evicts, so the shared_ptr it retains keeps *entry
  // alive for the process: handing out a reference is sound.
  return **entry;
}

void ContextCache::EvictLocked() {
  if (options_.capacity == 0) return;
  while (slots_.size() > options_.capacity) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    slots_.erase(victim);
    ++stats_.evictions;
  }
  stats_.size = slots_.size();
}

size_t ContextCache::InvalidateQuery(const std::string& id) {
  const std::string prefix = id + "|";
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      lru_.erase(it->second.lru_it);
      it = slots_.erase(it);
      ++dropped;
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  stats_.size = slots_.size();
  return dropped;
}

Result<std::shared_ptr<const ContextCache::Entry>> ContextCache::Get(
    const std::string& id, const Ess::Config& config, bool* cache_hit) {
  return Get(id, config, Encoding::kAuto, /*use_compression=*/true, cache_hit);
}

Result<std::shared_ptr<const ContextCache::Entry>> ContextCache::Get(
    const std::string& id, const Ess::Config& config, Encoding encoding,
    bool use_compression, bool* cache_hit) {
  return Get(id, config, encoding, use_compression, StorageBackend::kResident,
             cache_hit);
}

Result<std::shared_ptr<const ContextCache::Entry>> ContextCache::Get(
    const std::string& id, const Ess::Config& config, Encoding encoding,
    bool use_compression, StorageBackend backend, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  {
    const std::vector<std::string> ids = SuiteQueryIds();
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
      return Status::NotFound("unknown suite query: " + id);
    }
  }
  const std::string key = Key(id, config, encoding, use_compression, backend);

  std::shared_ptr<Node> node;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      ++stats_.hits;
      if (cache_hit != nullptr) *cache_hit = true;
      // Touch: move to the front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      node = it->second.node;
    } else {
      ++stats_.misses;
      node = std::make_shared<Node>();
      lru_.push_front(key);
      slots_[key] = Slot{node, lru_.begin()};
      EvictLocked();
      stats_.size = slots_.size();
    }
  }

  // Build outside the cache lock so distinct keys construct in parallel;
  // the per-node mutex makes same-key racers wait for one build.
  std::lock_guard<std::mutex> build_lock(node->build_mu);
  if (!node->built) {
    auto entry = std::make_shared<Entry>();
    entry->catalog = IsJobQuery(id) ? JobCatalog(encoding, backend)
                                    : TpcdsCatalog(encoding, backend);
    entry->query = std::make_unique<Query>(MakeSuiteQuery(id));
    entry->key = key;
    RQP_CHECK(entry->query->Validate(*entry->catalog).ok());
    Result<std::unique_ptr<Ess>> ess =
        Ess::TryBuild(*entry->catalog, *entry->query, config);
    if (ess.ok()) {
      entry->ess = ess.MoveValue();
      node->entry = std::move(entry);
      node->build_status = Status::OK();
    } else {
      node->build_status = ess.status();
    }
    node->built = true;
    if (!node->build_status.ok()) {
      // Do not cache failures: drop the slot so a later Get retries.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failures;
      auto it = slots_.find(key);
      if (it != slots_.end() && it->second.node == node) {
        lru_.erase(it->second.lru_it);
        slots_.erase(it);
        stats_.size = slots_.size();
      }
    }
  }
  if (!node->build_status.ok()) {
    if (cache_hit != nullptr) *cache_hit = false;
    return node->build_status;
  }
  return node->entry;
}

ContextCache::Stats ContextCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace robustqp
