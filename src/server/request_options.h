// The one per-request knob struct threaded end-to-end through the stack.
//
// Before the service layer every entry point grew its own option bundle:
// Executor::Options{engine, num_threads, use_zone_maps} for the engines,
// EvalOptions{num_threads, fault_spec, fault_seed} for the evaluation
// harness, the threading/build fields of Ess::Config for surface
// construction, and ad-hoc --faults/--fault-seed plumbing in the CLI.
// RequestOptions subsumes all of them: front-ends (CLI flags, the TCP
// line protocol, in-process ServiceRequests) parse into it exactly once,
// and the conversion accessors below derive the legacy structs wherever a
// subsystem still takes its own type.

#ifndef ROBUSTQP_SERVER_REQUEST_OPTIONS_H_
#define ROBUSTQP_SERVER_REQUEST_OPTIONS_H_

#include <cstdint>
#include <string>

#include "ess/ess.h"
#include "exec/executor.h"
#include "storage/column_file.h"
#include "storage/encoding.h"

namespace robustqp {

/// Which robustness machinery answers the request — the three discovery
/// algorithms of the paper, or the traditional optimizer baseline.
enum class RobustnessMode {
  kNative,       // plan frozen at the statistics estimate, no discovery
  kPlanBouquet,  // Section 3: cost-budgeted bouquet execution
  kSpillBound,   // Section 4: spill-mode selectivity discovery
  kAlignedBound, // Section 5: aligned partition replacement
};

/// Parses "native" | "pb" | "sb" | "ab"; returns false on anything else.
bool ParseRobustnessMode(const std::string& name, RobustnessMode* out);

/// Display name ("sb") of a mode — the inverse of ParseRobustnessMode.
const char* RobustnessModeName(RobustnessMode mode);

/// Unified per-request options. Field defaults reproduce the historical
/// defaults of the structs they subsume.
struct RequestOptions {
  // --- execution engine (subsumes Executor::Options) ---
  Executor::Engine engine = Executor::Engine::kBatch;
  /// Worker threads for morsel-parallel scans inside one request's
  /// executions (not the service pool's width); 1 disables, 0 = all cores.
  int num_threads = 1;
  bool use_zone_maps = true;
  /// Fused filter-on-compressed execution over encoded columns (the
  /// Executor::Options::use_compression toggle). Physical only: results
  /// and cost accounting are bit-identical either way.
  bool use_compression = true;
  /// Simulated scatter-gather workers for full batch-engine executions
  /// (the Executor::Options::num_shards knob; CLI --shards, TCP shards=).
  /// Results and cost accounting are bit-identical at any shard count;
  /// <= 1 disables sharding.
  int num_shards = 1;

  // --- storage (which catalog layout the request's context uses) ---
  /// Column storage encoding for the request's catalog: kAuto is the
  /// per-column auto policy (dictionary for low-cardinality columns,
  /// packed/vbyte for the rest), kRaw is the uncompressed layout, and a
  /// specific encoding forces it on every column. Part of the
  /// ContextCache key; the data itself is identical for every choice.
  Encoding encoding = Encoding::kAuto;
  /// Where the catalog's payloads live: resident memory, or demand-paged
  /// column files (CLI --storage, TCP storage=). Physical only — results
  /// and cost accounting are bit-identical across backends — but part of
  /// the ContextCache key, since the two layouts are distinct objects.
  StorageBackend storage = StorageBackend::kResident;

  // --- ESS construction (the Ess::Config fields front-ends expose) ---
  int points_per_dim = 0;  // 0 = DefaultPointsPerDim(D)
  double contour_cost_ratio = 2.0;
  EssBuildMode ess_build_mode = EssBuildMode::kExhaustive;
  double recost_lambda = 2.0;
  /// Threads for the ESS build / evaluation sweeps; 0 = all cores.
  int ess_threads = 0;
  CostModel cost_model = CostModel::PostgresFlavour();

  // --- feedback (closed-loop robustness; CLI --feedback, TCP feedback=) ---
  /// Opt-in: consult the serving instance's FeedbackStore — calibrate the
  /// native seed estimate, warm-start discovery from the observed
  /// confidence region, and record this run's observations (drift
  /// detection included). Off by default; with an empty store the
  /// response payload is bit-identical to feedback disabled.
  bool use_feedback = false;

  // --- chaos (subsumes the EvalOptions fault fields) ---
  /// When non-empty, the deterministic FaultInjector is armed with this
  /// spec for the request's run (see FaultInjector::Configure).
  std::string fault_spec;
  uint64_t fault_seed = 42;

  /// The engine-option view of this request.
  Executor::Options ToExecutorOptions() const;
  /// The ESS-construction view of this request.
  Ess::Config ToEssConfig() const;
};

}  // namespace robustqp

#endif  // ROBUSTQP_SERVER_REQUEST_OPTIONS_H_
