// Cardinality estimation with selectivity injection. Filter selectivities
// come from the catalog's histograms (the paper treats filters as reliably
// estimable); join selectivities come either from the classic
// 1/max(NDV, NDV) formula (the "native" estimate a traditional optimizer
// would use) or from an injected value when the predicate is error-prone —
// the mechanism that lets us place the optimizer at an arbitrary location
// of the ESS, mirroring the paper's modified-PostgreSQL selectivity
// injection (Section 6.1).

#ifndef ROBUSTQP_OPTIMIZER_ESTIMATOR_H_
#define ROBUSTQP_OPTIMIZER_ESTIMATOR_H_

#include <vector>

#include "catalog/catalog.h"
#include "query/query.h"

namespace robustqp {

/// A location in the ESS: one selectivity in (0, 1] per epp dimension.
using EssPoint = std::vector<double>;

/// Per-query cardinality estimator. Construction resolves and caches all
/// statistics lookups; estimation calls are then allocation-free.
class CardinalityEstimator {
 public:
  CardinalityEstimator(const Catalog* catalog, const Query* query);

  /// The native (histogram-based) selectivity of filter `filter_idx`.
  double FilterSelectivity(int filter_idx) const {
    return filter_sel_[static_cast<size_t>(filter_idx)];
  }

  /// Selectivity of filter `filter_idx` at ESS location `q`: the injected
  /// value if the filter is an error-prone predicate, else the native
  /// histogram estimate.
  double FilterSelectivityAt(int filter_idx, const EssPoint& q) const {
    const int dim = query_->EppDimensionOfFilter(filter_idx);
    return dim >= 0 ? q[static_cast<size_t>(dim)]
                    : filter_sel_[static_cast<size_t>(filter_idx)];
  }

  /// Estimated output cardinality of the scan of table `table_idx` after
  /// applying the given filters, with epp filters injected at `q`.
  double FilteredRows(int table_idx, const std::vector<int>& filter_indices,
                      const EssPoint& q) const;

  /// Raw stored row count of table `table_idx`.
  double RawRows(int table_idx) const {
    return raw_rows_[static_cast<size_t>(table_idx)];
  }

  /// The native (statistics-based) selectivity of join `join_idx`:
  /// 1 / max(NDV(left column), NDV(right column)).
  double NativeJoinSelectivity(int join_idx) const {
    return native_join_sel_[static_cast<size_t>(join_idx)];
  }

  /// Selectivity of join `join_idx` at ESS location `q`: the injected
  /// value if the join is an epp, else the native estimate.
  double JoinSelectivity(int join_idx, const EssPoint& q) const {
    const int dim = query_->EppDimensionOfJoin(join_idx);
    return dim >= 0 ? q[static_cast<size_t>(dim)]
                    : native_join_sel_[static_cast<size_t>(join_idx)];
  }

  /// The native estimate of the full ESS location — where a traditional
  /// optimizer believes the query lives (the paper's q_e).
  EssPoint NativeEstimatePoint() const;

  const Query& query() const { return *query_; }

 private:
  const Query* query_;
  std::vector<double> raw_rows_;         // per table index
  std::vector<double> filter_sel_;       // per filter index
  std::vector<double> native_join_sel_;  // per join index
};

}  // namespace robustqp

#endif  // ROBUSTQP_OPTIMIZER_ESTIMATOR_H_
