// The plan cost model. All operator cost formulas are strictly increasing
// in their input and output cardinalities, which (together with
// cardinalities being increasing in every predicate selectivity) gives the
// Plan Cost Monotonicity (PCM) property of Section 2.4, Eq. (5) — the
// load-bearing assumption behind every MSO guarantee in the paper.
//
// Two parameter flavours are provided: a PostgreSQL-like default and a
// "commercial" variant with different operator weightings. The paper's
// Section 1.1.3 observation — PlanBouquet's bound shifts across engines
// while SpillBound's does not — is reproduced by running both flavours
// (bench_platform_dependence).

#ifndef ROBUSTQP_OPTIMIZER_COST_MODEL_H_
#define ROBUSTQP_OPTIMIZER_COST_MODEL_H_

#include <algorithm>
#include <cmath>

namespace robustqp {

/// Per-tuple cost constants (arbitrary cost units, comparable across
/// operators within one flavour).
struct CostParams {
  /// Reading one stored tuple during a sequential scan (includes filter
  /// evaluation).
  double scan_tuple = 1.0;
  /// Inserting one tuple into a hash table (hash-join build).
  double hash_build_tuple = 2.0;
  /// Probing the hash table with one tuple.
  double hash_probe_tuple = 1.2;
  /// Materializing one inner tuple for a block nested-loop join.
  double nlj_materialize_tuple = 0.8;
  /// Comparing one (outer, inner) pair in a block nested-loop join.
  double nlj_pair = 0.02;
  /// Emitting one output tuple from any join.
  double join_output_tuple = 0.4;
  /// Probing a hash index with one outer tuple (index nested-loop join).
  double index_probe = 0.5;
  /// Fetching one index-matched stored tuple (pre-filter).
  double index_fetch = 0.25;
  /// Per tuple-comparison unit of sorting (multiplied by log2 n).
  double sort_tuple = 0.9;
  /// Advancing the merge cursor over one input tuple.
  double merge_tuple = 0.45;
};

/// Cost model: evaluates operator costs from input/output cardinalities.
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams{}) : params_(params) {}

  /// PostgreSQL-flavoured defaults.
  static CostModel PostgresFlavour() { return CostModel(CostParams{}); }

  /// A commercial-engine-flavoured parameterization: relatively cheaper
  /// hashing, pricier nested-loop pairs and output handling. Shifts the
  /// plan diagram (and hence PlanBouquet's rho) without changing D.
  static CostModel CommercialFlavour() {
    CostParams p;
    p.scan_tuple = 1.0;
    p.hash_build_tuple = 1.1;
    p.hash_probe_tuple = 0.7;
    p.nlj_materialize_tuple = 1.0;
    p.nlj_pair = 0.05;
    p.join_output_tuple = 0.8;
    p.index_probe = 0.9;
    p.index_fetch = 0.4;
    p.sort_tuple = 0.5;
    p.merge_tuple = 0.3;
    return CostModel(p);
  }

  const CostParams& params() const { return params_; }

  /// Cost of scanning `raw_rows` stored tuples.
  double ScanCost(double raw_rows) const { return params_.scan_tuple * raw_rows; }

  /// Cost of a hash join given build/probe input and output cardinalities
  /// (excluding child costs).
  double HashJoinCost(double build_rows, double probe_rows,
                      double out_rows) const {
    return params_.hash_build_tuple * build_rows +
           params_.hash_probe_tuple * probe_rows +
           params_.join_output_tuple * out_rows;
  }

  /// Cost of a block nested-loop join given outer/inner input and output
  /// cardinalities (excluding child costs).
  double NLJoinCost(double outer_rows, double inner_rows,
                    double out_rows) const {
    return params_.nlj_materialize_tuple * inner_rows +
           params_.nlj_pair * outer_rows * inner_rows +
           params_.join_output_tuple * out_rows;
  }

  /// Cost of an index nested-loop join: one probe per outer tuple, one
  /// fetch per index match (`fetched_rows` is pre-filter), one output per
  /// surviving tuple. The probed table is never scanned.
  double IndexNLJoinCost(double outer_rows, double fetched_rows,
                         double out_rows) const {
    return params_.index_probe * outer_rows +
           params_.index_fetch * fetched_rows +
           params_.join_output_tuple * out_rows;
  }

  /// Cost of a sort-merge join: sort both inputs (n log2 n), merge, emit.
  double SortMergeJoinCost(double left_rows, double right_rows,
                           double out_rows) const {
    return params_.sort_tuple * (SortTerm(left_rows) + SortTerm(right_rows)) +
           params_.merge_tuple * (left_rows + right_rows) +
           params_.join_output_tuple * out_rows;
  }

  /// n log2 n with the log floored at 1 (strictly increasing in n).
  static double SortTerm(double n) {
    return n * std::max(1.0, std::log2(std::max(n, 1.0)));
  }

 private:
  CostParams params_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_OPTIMIZER_COST_MODEL_H_
