#include "optimizer/optimizer.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/fault.h"
#include "common/status.h"

namespace robustqp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

/// One DP cell: the cheapest subtree covering `mask` whose execution-order
/// state is `state`.
struct Optimizer::DpCell {
  double cost = kInf;
  PlanOp op = PlanOp::kSeqScan;
  uint64_t left_mask = 0;
  int left_state = 0;
  uint64_t right_mask = 0;
  int right_state = 0;
};

/// One entry of a k-best DP cell: the idx-th cheapest subtree covering a
/// mask, with back-pointers into the child cells' entry lists.
struct Optimizer::TopKEntry {
  double cost = kInf;
  PlanOp op = PlanOp::kSeqScan;
  uint64_t left_mask = 0;
  int32_t left_idx = 0;
  uint64_t right_mask = 0;
  int32_t right_idx = 0;
};

struct Optimizer::DpArena {
  std::vector<double> filtered_rows;  // per table index, at the current q
  std::vector<double> join_sel;       // per join index, at the current q
  std::vector<double> card;
  std::vector<DpCell> dp;
  // k-best DP storage: k entries per mask (cost-ascending), entry counts.
  std::vector<TopKEntry> topk;
  std::vector<int32_t> topk_count;
};

Optimizer::DpArena& Optimizer::ThreadArena() {
  static thread_local DpArena arena;
  return arena;
}

Optimizer::Optimizer(const Catalog* catalog, const Query* query,
                     CostModel cost_model)
    : catalog_(catalog),
      query_(query),
      estimator_(catalog, query),
      cost_model_(cost_model),
      num_tables_(query->num_tables()),
      num_states_(query->num_epps() + 1) {
  join_masks_.reserve(query->joins().size());
  inlj_inner_mask_.reserve(query->joins().size());
  for (int j = 0; j < query->num_joins(); ++j) {
    join_masks_.push_back(query->JoinTableMask(j));
    const JoinPredicate& jp = query->joins()[static_cast<size_t>(j)];
    uint64_t inner = 0;
    if (catalog->FindIndex(jp.left_table, jp.left_column) != nullptr) {
      inner |= uint64_t{1} << query->TableIndex(jp.left_table);
    }
    if (catalog->FindIndex(jp.right_table, jp.right_column) != nullptr) {
      inner |= uint64_t{1} << query->TableIndex(jp.right_table);
    }
    inlj_inner_mask_.push_back(inner);
  }
  table_filters_.resize(static_cast<size_t>(num_tables_));
  for (int f = 0; f < static_cast<int>(query->filters().size()); ++f) {
    const int t = query->TableIndex(query->filters()[static_cast<size_t>(f)].table);
    RQP_CHECK(t >= 0);
    table_filters_[static_cast<size_t>(t)].push_back(f);
  }

  // Per-mask structure is independent of the injected selectivities, so it
  // is computed once here instead of on every RunDp call.
  const uint64_t full = (uint64_t{1} << num_tables_) - 1;
  connected_.assign(full + 1, 0);
  mask_join_offsets_.assign(full + 2, 0);
  mask_join_list_.clear();
  const int num_joins = query->num_joins();
  for (uint64_t mask = 1; mask <= full; ++mask) {
    mask_join_offsets_[mask] = static_cast<int32_t>(mask_join_list_.size());
    for (int j = 0; j < num_joins; ++j) {
      const uint64_t jm = join_masks_[static_cast<size_t>(j)];
      if ((jm & mask) == jm) mask_join_list_.push_back(j);
    }
    // Connectivity: expand from the lowest table via contained join edges.
    uint64_t reach = mask & (~mask + 1);
    bool grew = true;
    while (grew) {
      grew = false;
      for (int32_t k = mask_join_offsets_[mask];
           k < static_cast<int32_t>(mask_join_list_.size()); ++k) {
        const uint64_t jm =
            join_masks_[static_cast<size_t>(mask_join_list_[static_cast<size_t>(k)])];
        if ((jm & reach) != 0 && (jm & ~reach) != 0) {
          reach |= jm;
          grew = true;
        }
      }
    }
    connected_[mask] = (reach == mask) ? 1 : 0;
  }
  mask_join_offsets_[full + 1] = static_cast<int32_t>(mask_join_list_.size());
}

void Optimizer::ComputeCards(const EssPoint& q, DpArena* arena) const {
  const int n = num_tables_;
  const uint64_t full = (uint64_t{1} << n) - 1;

  // Per-mask output cardinality (plan-independent under the additive cost
  // model: product of filtered base cardinalities and internal join
  // selectivities). Only connected masks participate in the DP, so the
  // cardinality of a disconnected subset is never read and is skipped.
  // Per-table filtered cardinalities and per-join selectivities at q are
  // mask-independent; evaluate each once instead of per mask. The per-mask
  // products below multiply them in the same (ascending) order as the
  // original per-mask evaluation, so the resulting cardinalities are
  // bit-identical.
  std::vector<double>& fr = arena->filtered_rows;
  fr.resize(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    fr[static_cast<size_t>(t)] =
        estimator_.FilteredRows(t, table_filters_[static_cast<size_t>(t)], q);
  }
  std::vector<double>& js = arena->join_sel;
  js.resize(static_cast<size_t>(query_->num_joins()));
  for (int j = 0; j < query_->num_joins(); ++j) {
    js[static_cast<size_t>(j)] = estimator_.JoinSelectivity(j, q);
  }

  std::vector<double>& card = arena->card;
  card.assign(full + 1, 0.0);
  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (!connected_[mask]) continue;
    double c = 1.0;
    for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
      c *= fr[static_cast<size_t>(std::countr_zero(rest))];
    }
    for (int32_t k = mask_join_offsets_[mask]; k < mask_join_offsets_[mask + 1];
         ++k) {
      c *= js[static_cast<size_t>(mask_join_list_[static_cast<size_t>(k)])];
    }
    // Fractional expected cardinalities are kept unclamped: rounding up to
    // one row would flatten the cost surface at tiny selectivities and
    // break the *strict* plan cost monotonicity (Eq. (5)) the guarantees
    // rely on.
    card[mask] = c;
  }
}

void Optimizer::RunDp(const EssPoint& q, const std::vector<bool>& unlearned,
                      DpArena* arena) const {
  const int n = num_tables_;
  const uint64_t full = (uint64_t{1} << n) - 1;
  const int S = num_states_;

  ComputeCards(q, arena);
  const std::vector<double>& js = arena->join_sel;
  const std::vector<double>& card = arena->card;

  std::vector<DpCell>& dp = arena->dp;
  dp.assign((full + 1) * static_cast<uint64_t>(S), DpCell{});
  auto cell = [&](uint64_t mask, int state) -> DpCell& {
    return dp[mask * static_cast<uint64_t>(S) + static_cast<uint64_t>(state)];
  };

  // Base case: single-table scans. A scan's execution-order state is the
  // first unlearned *filter* epp among its predicates (join epps never
  // live at scans).
  for (int t = 0; t < n; ++t) {
    const uint64_t m = uint64_t{1} << t;
    int leaf_state = 0;
    for (int f : table_filters_[static_cast<size_t>(t)]) {
      const int dim = query_->EppDimensionOfFilter(f);
      if (dim >= 0 && unlearned[static_cast<size_t>(dim)]) {
        leaf_state = dim + 1;
        break;
      }
    }
    cell(m, leaf_state).cost = cost_model_.ScanCost(estimator_.RawRows(t));
    cell(m, leaf_state).op = PlanOp::kSeqScan;
  }

  // Joins, by increasing mask (every strict submask precedes its mask).
  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (!connected_[mask] || (mask & (mask - 1)) == 0) continue;

    // First-unlearned epp among the predicates evaluated at this node
    // (crossing edges are collected in join-index order at reconstruction,
    // so take the smallest-index epp edge fully inside `mask`... the node
    // evaluates exactly the edges crossing the split; computed per split
    // below).
    for (uint64_t s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
      const uint64_t s2 = mask ^ s1;
      if (s1 > s2) continue;  // each unordered split once; orders handled below
      if (!connected_[s1] || !connected_[s2]) continue;

      // Predicates evaluated at this node: edges crossing (s1, s2). Only
      // the joins contained in `mask` (precomputed CSR list) can cross.
      int node_first = 0;  // state encoding: 0 = none, d+1 = dim d
      int num_cross = 0;
      int single_cross = -1;
      for (int32_t k = mask_join_offsets_[mask];
           k < mask_join_offsets_[mask + 1]; ++k) {
        const int j = mask_join_list_[static_cast<size_t>(k)];
        const uint64_t jm = join_masks_[static_cast<size_t>(j)];
        if ((jm & s1) != 0 && (jm & s2) != 0) {
          ++num_cross;
          single_cross = j;
          if (node_first == 0) {
            const int dim = query_->EppDimensionOfJoin(j);
            if (dim >= 0 && unlearned[static_cast<size_t>(dim)]) {
              node_first = dim + 1;
            }
          }
        }
      }
      if (num_cross == 0) continue;

      // Index nested-loop applicability: exactly one crossing predicate,
      // the inner a single indexed table. Cross-product selectivity of
      // the edge for the pre-filter fetch estimate.
      double cross_sel = 1.0;
      if (num_cross == 1) {
        cross_sel = js[static_cast<size_t>(single_cross)];
      }
      const auto inlj_ok = [&](uint64_t inner) {
        return num_cross == 1 && (inner & (inner - 1)) == 0 &&
               (inlj_inner_mask_[static_cast<size_t>(single_cross)] & inner) != 0;
      };

      for (int st1 = 0; st1 < S; ++st1) {
        const double c1 = cell(s1, st1).cost;
        if (c1 == kInf) continue;
        for (int st2 = 0; st2 < S; ++st2) {
          const double c2 = cell(s2, st2).cost;
          if (c2 == kInf) continue;

          // Physical alternatives: {HJ, NLJ} x {s1 left, s2 left}, plus
          // index nested-loop joins where applicable.
          struct Alt {
            PlanOp op;
            uint64_t lm;
            int ls;
            double lc;
            uint64_t rm;
            int rs;
            double rc;
          };
          Alt alts[7];
          int num_alts = 0;
          alts[num_alts++] = {PlanOp::kHashJoin, s1, st1, c1, s2, st2, c2};
          alts[num_alts++] = {PlanOp::kHashJoin, s2, st2, c2, s1, st1, c1};
          alts[num_alts++] = {PlanOp::kNLJoin, s1, st1, c1, s2, st2, c2};
          alts[num_alts++] = {PlanOp::kNLJoin, s2, st2, c2, s1, st1, c1};
          // Sort-merge cost is operand-symmetric; one orientation suffices.
          alts[num_alts++] = {PlanOp::kSortMergeJoin, s1, st1, c1, s2, st2, c2};
          if (inlj_ok(s2)) {
            alts[num_alts++] = {PlanOp::kIndexNLJoin, s1, st1, c1, s2, st2, 0.0};
          }
          if (inlj_ok(s1)) {
            alts[num_alts++] = {PlanOp::kIndexNLJoin, s2, st2, c2, s1, st1, 0.0};
          }
          for (int ai = 0; ai < num_alts; ++ai) {
            const Alt& a = alts[ai];
            double local;
            // Execution order of the children determines whose unlearned
            // epp comes first: (first child, second child, this node).
            int first_state, second_state;
            if (a.op == PlanOp::kHashJoin || a.op == PlanOp::kSortMergeJoin) {
              // Left child executes first (hash build / first sort run).
              local = a.op == PlanOp::kHashJoin
                          ? cost_model_.HashJoinCost(card[a.lm], card[a.rm],
                                                     card[mask])
                          : cost_model_.SortMergeJoinCost(card[a.lm], card[a.rm],
                                                          card[mask]);
              first_state = a.ls;
              second_state = a.rs;
            } else if (a.op == PlanOp::kNLJoin) {
              // Right child is the materialized inner (blocking).
              local = cost_model_.NLJoinCost(card[a.lm], card[a.rm], card[mask]);
              first_state = a.rs;
              second_state = a.ls;
            } else {
              // Index nested-loop: probe the right table's index with the
              // left (outer) stream; the right scan never runs, so its
              // cost does not accrue (a.rc == 0) — but its error-prone
              // filters still resolve during probing, after the outer's.
              // Fetches are pre-filter: outer x raw inner x edge sel.
              int inner_table = 0;
              while ((a.rm & (uint64_t{1} << inner_table)) == 0) ++inner_table;
              const double fetched =
                  card[a.lm] * estimator_.RawRows(inner_table) * cross_sel;
              local = cost_model_.IndexNLJoinCost(card[a.lm], fetched, card[mask]);
              first_state = a.ls;
              second_state = a.rs;
            }
            const int state = first_state != 0
                                  ? first_state
                                  : (second_state != 0 ? second_state
                                                       : node_first);
            const double total = a.lc + a.rc + local;
            DpCell& best = cell(mask, state);
            if (total < best.cost) {
              best.cost = total;
              best.op = a.op;
              best.left_mask = a.lm;
              best.left_state = a.ls;
              best.right_mask = a.rm;
              best.right_state = a.rs;
            }
          }
        }
      }
    }
  }
}

std::unique_ptr<PlanNode> Optimizer::Reconstruct(const std::vector<DpCell>& dp,
                                                 uint64_t mask,
                                                 int state) const {
  const int S = num_states_;
  const DpCell& c = dp[mask * static_cast<uint64_t>(S) + static_cast<uint64_t>(state)];
  RQP_CHECK(c.cost != kInf);
  auto node = std::make_unique<PlanNode>();
  if ((mask & (mask - 1)) == 0) {
    // Single table.
    int t = 0;
    while ((mask & (uint64_t{1} << t)) == 0) ++t;
    node->op = PlanOp::kSeqScan;
    node->table_idx = t;
    node->filter_indices = table_filters_[static_cast<size_t>(t)];
    return node;
  }
  node->op = c.op;
  node->left = Reconstruct(dp, c.left_mask, c.left_state);
  node->right = Reconstruct(dp, c.right_mask, c.right_state);
  for (int j = 0; j < query_->num_joins(); ++j) {
    const uint64_t jm = join_masks_[static_cast<size_t>(j)];
    if ((jm & mask) != jm) continue;
    if ((jm & c.left_mask) != 0 && (jm & c.right_mask) != 0) {
      node->join_indices.push_back(j);
    }
  }
  return node;
}

std::unique_ptr<Plan> Optimizer::Optimize(const EssPoint& q) const {
  RQP_CHECK(static_cast<int>(q.size()) == query_->num_epps());
  optimize_calls_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<bool> none(static_cast<size_t>(query_->num_epps()), false);
  DpArena& arena = ThreadArena();
  RunDp(q, none, &arena);
  const uint64_t full = (uint64_t{1} << num_tables_) - 1;
  // With no unlearned epps, every subtree has state 0.
  return std::make_unique<Plan>(query_, Reconstruct(arena.dp, full, 0));
}

Result<std::unique_ptr<Plan>> Optimizer::TryOptimize(const EssPoint& q) const {
  if (FaultInjector::Armed()) {
    const FaultAction act =
        FaultInjector::Global().Evaluate(fault_site::kOptimizerDp);
    switch (act.kind) {
      case FaultKind::kTransient:
        return Status::Unavailable("injected transient fault at optimizer.dp");
      case FaultKind::kPermanent:
        return Status::Internal("injected permanent fault at optimizer.dp");
      default:
        break;  // spikes/corruption are not meaningful for plan search
    }
  }
  return Optimize(q);
}

std::unique_ptr<PlanNode> Optimizer::ReconstructTopK(const DpArena& arena,
                                                     int k, uint64_t mask,
                                                     int idx) const {
  if ((mask & (mask - 1)) == 0) {
    int t = 0;
    while ((mask & (uint64_t{1} << t)) == 0) ++t;
    auto node = std::make_unique<PlanNode>();
    node->op = PlanOp::kSeqScan;
    node->table_idx = t;
    node->filter_indices = table_filters_[static_cast<size_t>(t)];
    return node;
  }
  const TopKEntry& e =
      arena.topk[mask * static_cast<uint64_t>(k) + static_cast<uint64_t>(idx)];
  RQP_CHECK(e.cost != kInf);
  auto node = std::make_unique<PlanNode>();
  node->op = e.op;
  node->left = ReconstructTopK(arena, k, e.left_mask, e.left_idx);
  node->right = ReconstructTopK(arena, k, e.right_mask, e.right_idx);
  for (int j = 0; j < query_->num_joins(); ++j) {
    const uint64_t jm = join_masks_[static_cast<size_t>(j)];
    if ((jm & mask) != jm) continue;
    if ((jm & e.left_mask) != 0 && (jm & e.right_mask) != 0) {
      node->join_indices.push_back(j);
    }
  }
  return node;
}

std::vector<std::unique_ptr<Plan>> Optimizer::OptimizeTopK(const EssPoint& q,
                                                           int k) const {
  RQP_CHECK(static_cast<int>(q.size()) == query_->num_epps());
  RQP_CHECK(k >= 1);
  optimize_calls_.fetch_add(1, std::memory_order_relaxed);
  const int n = num_tables_;
  const uint64_t full = (uint64_t{1} << n) - 1;
  DpArena& arena = ThreadArena();
  ComputeCards(q, &arena);
  const std::vector<double>& js = arena.join_sel;
  const std::vector<double>& card = arena.card;

  // k-best Selinger DP over connected masks: each cell keeps the k
  // cheapest structurally distinct subtrees, cost-ascending. The k best
  // plans of a mask compose child subplans that are each among the k best
  // of their own mask (costs are additive in the child totals), so
  // enumerating child entry pairs per physical alternative is exhaustive.
  // Spill states are not tracked: k-best search is only used with no
  // unlearned epps, where every subtree has state 0.
  std::vector<TopKEntry>& topk = arena.topk;
  std::vector<int32_t>& cnt = arena.topk_count;
  topk.assign((full + 1) * static_cast<uint64_t>(k), TopKEntry{});
  cnt.assign(full + 1, 0);

  const auto insert_entry = [&](uint64_t mask, const TopKEntry& e) {
    TopKEntry* list = &topk[mask * static_cast<uint64_t>(k)];
    int32_t& c = cnt[mask];
    int pos = c;
    // Stable among equal costs: an equal-cost incumbent stays in front, so
    // tie order follows enumeration order (mirrors RunDp's strict `<`).
    while (pos > 0 && list[pos - 1].cost > e.cost) --pos;
    if (pos >= k) return;
    for (int i = std::min<int>(c, k - 1); i > pos; --i) list[i] = list[i - 1];
    list[pos] = e;
    if (c < k) ++c;
  };

  for (int t = 0; t < n; ++t) {
    TopKEntry e;
    e.cost = cost_model_.ScanCost(estimator_.RawRows(t));
    e.op = PlanOp::kSeqScan;
    insert_entry(uint64_t{1} << t, e);
  }

  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (!connected_[mask] || (mask & (mask - 1)) == 0) continue;
    for (uint64_t s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
      const uint64_t s2 = mask ^ s1;
      if (s1 > s2) continue;
      if (!connected_[s1] || !connected_[s2]) continue;

      int num_cross = 0;
      int single_cross = -1;
      for (int32_t ki = mask_join_offsets_[mask];
           ki < mask_join_offsets_[mask + 1]; ++ki) {
        const int j = mask_join_list_[static_cast<size_t>(ki)];
        const uint64_t jm = join_masks_[static_cast<size_t>(j)];
        if ((jm & s1) != 0 && (jm & s2) != 0) {
          ++num_cross;
          single_cross = j;
        }
      }
      if (num_cross == 0) continue;
      const double cross_sel =
          num_cross == 1 ? js[static_cast<size_t>(single_cross)] : 1.0;
      const auto inlj_ok = [&](uint64_t inner) {
        return num_cross == 1 && (inner & (inner - 1)) == 0 &&
               (inlj_inner_mask_[static_cast<size_t>(single_cross)] & inner) !=
                   0;
      };

      // Physical alternatives, local cost each (depends only on the
      // masks); same set and orientation conventions as RunDp.
      struct AltK {
        PlanOp op;
        uint64_t lm;
        uint64_t rm;
        double local;
        bool probe_inner;  // INLJ: the right child's cost does not accrue
      };
      AltK alts[7];
      int num_alts = 0;
      alts[num_alts++] = {PlanOp::kHashJoin, s1, s2,
                          cost_model_.HashJoinCost(card[s1], card[s2],
                                                   card[mask]),
                          false};
      alts[num_alts++] = {PlanOp::kHashJoin, s2, s1,
                          cost_model_.HashJoinCost(card[s2], card[s1],
                                                   card[mask]),
                          false};
      alts[num_alts++] = {PlanOp::kNLJoin, s1, s2,
                          cost_model_.NLJoinCost(card[s1], card[s2],
                                                 card[mask]),
                          false};
      alts[num_alts++] = {PlanOp::kNLJoin, s2, s1,
                          cost_model_.NLJoinCost(card[s2], card[s1],
                                                 card[mask]),
                          false};
      // Sort-merge cost is operand-symmetric; one orientation suffices.
      alts[num_alts++] = {PlanOp::kSortMergeJoin, s1, s2,
                          cost_model_.SortMergeJoinCost(card[s1], card[s2],
                                                        card[mask]),
                          false};
      for (int side = 0; side < 2; ++side) {
        const uint64_t outer = side == 0 ? s1 : s2;
        const uint64_t inner = side == 0 ? s2 : s1;
        if (!inlj_ok(inner)) continue;
        int inner_table = 0;
        while ((inner & (uint64_t{1} << inner_table)) == 0) ++inner_table;
        const double fetched =
            card[outer] * estimator_.RawRows(inner_table) * cross_sel;
        alts[num_alts++] = {PlanOp::kIndexNLJoin, outer, inner,
                            cost_model_.IndexNLJoinCost(card[outer], fetched,
                                                        card[mask]),
                            true};
      }

      for (int ai = 0; ai < num_alts; ++ai) {
        const AltK& a = alts[ai];
        const TopKEntry* ll = &topk[a.lm * static_cast<uint64_t>(k)];
        const TopKEntry* rl = &topk[a.rm * static_cast<uint64_t>(k)];
        for (int32_t li = 0; li < cnt[a.lm]; ++li) {
          for (int32_t ri = 0; ri < cnt[a.rm]; ++ri) {
            const double lc = ll[li].cost;
            const double rc = a.probe_inner ? 0.0 : rl[ri].cost;
            TopKEntry e;
            e.cost = lc + rc + a.local;
            e.op = a.op;
            e.left_mask = a.lm;
            e.left_idx = li;
            e.right_mask = a.rm;
            e.right_idx = ri;
            insert_entry(mask, e);
          }
        }
      }
    }
  }

  std::vector<std::unique_ptr<Plan>> plans;
  plans.reserve(static_cast<size_t>(cnt[full]));
  for (int32_t i = 0; i < cnt[full]; ++i) {
    plans.push_back(
        std::make_unique<Plan>(query_, ReconstructTopK(arena, k, full, i)));
  }
  return plans;
}

std::unique_ptr<Plan> Optimizer::OptimizeConstrainedSpill(
    const EssPoint& q, int dim, const std::vector<bool>& unlearned) const {
  RQP_CHECK(dim >= 0 && dim < query_->num_epps());
  optimize_calls_.fetch_add(1, std::memory_order_relaxed);
  DpArena& arena = ThreadArena();
  RunDp(q, unlearned, &arena);
  const uint64_t full = (uint64_t{1} << num_tables_) - 1;
  const int state = dim + 1;
  const DpCell& c = arena.dp[full * static_cast<uint64_t>(num_states_) +
                             static_cast<uint64_t>(state)];
  if (c.cost == kInf) return nullptr;
  return std::make_unique<Plan>(query_, Reconstruct(arena.dp, full, state));
}

// Computes per-node rows and cumulative costs. Cardinalities are kept as
// unclamped expectations (see RunDp), so this is exactly consistent with
// the DP's per-mask cardinalities and the DP winner really is the
// CostPlan minimum.
double Optimizer::CostNode(const PlanNode& node, const EssPoint& q,
                           PlanCosting* out) const {
  const size_t id = static_cast<size_t>(node.id);
  if (node.op == PlanOp::kSeqScan) {
    const double rows =
        estimator_.FilteredRows(node.table_idx, node.filter_indices, q);
    out->rows[id] = rows;
    out->cost[id] = cost_model_.ScanCost(estimator_.RawRows(node.table_idx));
    return rows;
  }
  const double lr = CostNode(*node.left, q, out);
  const double rr = CostNode(*node.right, q, out);
  double sel = 1.0;
  for (int j : node.join_indices) sel *= estimator_.JoinSelectivity(j, q);
  const double out_rows = lr * rr * sel;
  out->rows[id] = out_rows;
  double local;
  if (node.op == PlanOp::kHashJoin) {
    local = cost_model_.HashJoinCost(lr, rr, out_rows);
  } else if (node.op == PlanOp::kNLJoin) {
    local = cost_model_.NLJoinCost(lr, rr, out_rows);
  } else if (node.op == PlanOp::kSortMergeJoin) {
    local = cost_model_.SortMergeJoinCost(lr, rr, out_rows);
  } else {
    const double fetched =
        lr * estimator_.RawRows(node.right->table_idx) * sel;
    local = cost_model_.IndexNLJoinCost(lr, fetched, out_rows);
    // The probed table is never scanned under this plan: its subtree
    // keeps its standalone cost (what a spill execution of that scan
    // would pay) but contributes nothing to this node's cumulative cost.
    out->cost[id] = out->cost[static_cast<size_t>(node.left->id)] + local;
    return out_rows;
  }
  out->cost[id] = out->cost[static_cast<size_t>(node.left->id)] +
                  out->cost[static_cast<size_t>(node.right->id)] + local;
  return out_rows;
}

void Optimizer::CostNodeFast(const PlanNode& node, const EssPoint& q,
                             double* rows, double* cost) const {
  if (node.op == PlanOp::kSeqScan) {
    *rows = estimator_.FilteredRows(node.table_idx, node.filter_indices, q);
    *cost = cost_model_.ScanCost(estimator_.RawRows(node.table_idx));
    return;
  }
  double lr, lc, rr, rc;
  CostNodeFast(*node.left, q, &lr, &lc);
  CostNodeFast(*node.right, q, &rr, &rc);
  double sel = 1.0;
  for (int j : node.join_indices) sel *= estimator_.JoinSelectivity(j, q);
  const double out_rows = lr * rr * sel;
  double local;
  if (node.op == PlanOp::kHashJoin) {
    local = cost_model_.HashJoinCost(lr, rr, out_rows);
  } else if (node.op == PlanOp::kNLJoin) {
    local = cost_model_.NLJoinCost(lr, rr, out_rows);
  } else if (node.op == PlanOp::kSortMergeJoin) {
    local = cost_model_.SortMergeJoinCost(lr, rr, out_rows);
  } else {
    const double fetched = lr * estimator_.RawRows(node.right->table_idx) * sel;
    local = cost_model_.IndexNLJoinCost(lr, fetched, out_rows);
    rc = 0.0;  // the probed table is never scanned
  }
  *rows = out_rows;
  *cost = lc + rc + local;
}

PlanCosting Optimizer::CostPlan(const Plan& plan, const EssPoint& q) const {
  RQP_CHECK(static_cast<int>(q.size()) == query_->num_epps());
  PlanCosting out;
  out.rows.assign(static_cast<size_t>(plan.num_nodes()), 0.0);
  out.cost.assign(static_cast<size_t>(plan.num_nodes()), 0.0);
  CostNode(plan.root(), q, &out);
  return out;
}

}  // namespace robustqp
