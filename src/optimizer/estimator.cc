#include "optimizer/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "storage/table.h"

namespace robustqp {

CardinalityEstimator::CardinalityEstimator(const Catalog* catalog,
                                           const Query* query)
    : query_(query) {
  RQP_CHECK(catalog != nullptr && query != nullptr);

  raw_rows_.reserve(query->tables().size());
  for (const auto& t : query->tables()) {
    raw_rows_.push_back(static_cast<double>(catalog->RowCount(t)));
  }

  filter_sel_.reserve(query->filters().size());
  for (const auto& f : query->filters()) {
    const ColumnStats* stats = catalog->FindColumnStats(f.table, f.column);
    RQP_CHECK(stats != nullptr);
    if (std::isnan(f.value)) {
      // A NaN literal satisfies no comparison; keep the floor so plan
      // costs stay finite.
      filter_sel_.push_back(1e-9);
      continue;
    }
    double sel = 1.0;
    // String filters estimate over the string histogram; the numeric
    // histogram for a string column describes rank space, which the
    // estimator cannot place a raw literal into without the dictionary.
    const double le = f.is_string
                          ? stats->str_histogram.EstimateLessEq(f.value_str)
                          : stats->histogram.EstimateLessEq(f.value);
    switch (f.op) {
      case CompareOp::kLt:
      case CompareOp::kLe:
        sel = le;
        break;
      case CompareOp::kGt:
      case CompareOp::kGe:
        sel = 1.0 - le;
        break;
      case CompareOp::kEq:
        sel = stats->distinct_count > 0
                  ? 1.0 / static_cast<double>(stats->distinct_count)
                  : 0.0;
        break;
    }
    filter_sel_.push_back(std::clamp(sel, 1e-9, 1.0));
  }

  native_join_sel_.reserve(query->joins().size());
  for (const auto& jp : query->joins()) {
    const ColumnStats* ls = catalog->FindColumnStats(jp.left_table, jp.left_column);
    const ColumnStats* rs = catalog->FindColumnStats(jp.right_table, jp.right_column);
    RQP_CHECK(ls != nullptr && rs != nullptr);
    const double ndv = static_cast<double>(
        std::max<int64_t>(1, std::max(ls->distinct_count, rs->distinct_count)));
    native_join_sel_.push_back(std::clamp(1.0 / ndv, 1e-12, 1.0));
  }
}

double CardinalityEstimator::FilteredRows(int table_idx,
                                          const std::vector<int>& filter_indices,
                                          const EssPoint& q) const {
  double rows = raw_rows_[static_cast<size_t>(table_idx)];
  for (int f : filter_indices) {
    rows *= FilterSelectivityAt(f, q);
  }
  return std::max(rows, 1.0);
}

EssPoint CardinalityEstimator::NativeEstimatePoint() const {
  EssPoint q(static_cast<size_t>(query_->num_epps()));
  for (int d = 0; d < query_->num_epps(); ++d) {
    const int j = query_->JoinOfEppDimension(d);
    q[static_cast<size_t>(d)] =
        j >= 0 ? native_join_sel_[static_cast<size_t>(j)]
               : filter_sel_[static_cast<size_t>(query_->FilterOfEppDimension(d))];
  }
  return q;
}

}  // namespace robustqp
