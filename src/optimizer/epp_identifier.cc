#include "optimizer/epp_identifier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace robustqp {

double ColumnSkewScore(const ColumnStats& stats) {
  const EquiDepthHistogram& h = stats.histogram;
  if (h.bounds.size() < 2) return 1.0;
  double min_width = std::numeric_limits<double>::infinity();
  double max_width = 0.0;
  for (size_t b = 1; b < h.bounds.size(); ++b) {
    const double width = h.bounds[b] - h.bounds[b - 1];
    if (width <= 0.0) continue;  // duplicate-heavy bucket edges
    min_width = std::min(min_width, width);
    max_width = std::max(max_width, width);
  }
  if (max_width == 0.0 || !std::isfinite(min_width)) return 1.0;
  // Equi-depth buckets hold equal row counts, so a wide bucket means
  // sparse values and a narrow one means hot values: the width ratio is a
  // direct frequency-skew signal.
  return max_width / std::max(min_width, 1.0);
}

std::vector<int> IdentifyErrorProneJoins(const Catalog& catalog,
                                         const Query& query,
                                         const EppIdentifierOptions& options) {
  std::vector<int> flagged;
  for (int j = 0; j < query.num_joins(); ++j) {
    const JoinPredicate& jp = query.joins()[static_cast<size_t>(j)];
    if (options.conservative) {
      flagged.push_back(j);
      continue;
    }
    bool is_epp = false;
    for (const auto& [table, column] :
         {std::pair<const std::string&, const std::string&>{jp.left_table,
                                                            jp.left_column},
          {jp.right_table, jp.right_column}}) {
      const ColumnStats* stats = catalog.FindColumnStats(table, column);
      RQP_CHECK(stats != nullptr);
      if (ColumnSkewScore(*stats) > options.skew_threshold) {
        is_epp = true;
        break;
      }
      if (options.flag_filtered_inputs) {
        for (const auto& f : query.filters()) {
          if (f.table == table) {
            is_epp = true;
            break;
          }
        }
      }
      if (is_epp) break;
    }
    if (is_epp) flagged.push_back(j);
  }
  return flagged;
}

Query WithIdentifiedEpps(const Catalog& catalog, const Query& query,
                         const EppIdentifierOptions& options) {
  return Query(query.name(), query.tables(), query.joins(), query.filters(),
               IdentifyErrorProneJoins(catalog, query, options));
}

}  // namespace robustqp
