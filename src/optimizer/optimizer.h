// Cost-based join-order optimizer (Selinger-style dynamic programming over
// connected table subsets, bushy plans, hash and nested-loop joins with
// both operand orders). Supports:
//
//  * Optimize(q)        — optimal plan with epp selectivities injected at
//                         ESS location q (the repeated-optimizer-call
//                         primitive from which the ESS / POSP / contours
//                         are constructed, Section 2.2);
//  * OptimizeConstrainedSpill(q, j) — least-cost plan whose spill node is
//                         epp j (the engine extension the paper adds for
//                         AlignedBound, Section 6.1);
//  * CostPlan(P, q)     — Cost(P, q) for an arbitrary plan, with per-node
//                         cardinalities and cumulative subtree costs (the
//                         latter drive spill-mode budget semantics).
//
// The constrained search runs the same DP over states (mask, first
// unlearned epp in the subtree's execution order), which is exact because
// the spill dimension composes bottom-up from child states.

#ifndef ROBUSTQP_OPTIMIZER_OPTIMIZER_H_
#define ROBUSTQP_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "optimizer/cost_model.h"
#include "optimizer/estimator.h"
#include "plan/plan.h"

namespace robustqp {

/// Per-node cost annotations for one (plan, ESS location) pair. Indexed by
/// PlanNode::id (pre-order; root is id 0).
struct PlanCosting {
  /// Estimated output cardinality of each node.
  std::vector<double> rows;
  /// Cumulative cost of the subtree rooted at each node (children included).
  std::vector<double> cost;

  double total_cost() const { return cost.empty() ? 0.0 : cost[0]; }
};

/// The query optimizer. Immutable after construction; all methods are
/// const and thread-safe.
class Optimizer {
 public:
  Optimizer(const Catalog* catalog, const Query* query,
            CostModel cost_model = CostModel::PostgresFlavour());

  /// The optimal plan at ESS location `q` (one selectivity per epp).
  std::unique_ptr<Plan> Optimize(const EssPoint& q) const;

  /// The least-cost plan at `q` whose spill dimension — the first epp of
  /// its Section 3.1.3 execution order that is flagged true in
  /// `unlearned` — equals `dim`. Returns nullptr if no plan spills on
  /// `dim` (cannot happen for tree queries, where every epp appears in
  /// every plan, unless `unlearned[dim]` is false).
  std::unique_ptr<Plan> OptimizeConstrainedSpill(
      const EssPoint& q, int dim, const std::vector<bool>& unlearned) const;

  /// Costs an arbitrary plan of this query at `q`.
  PlanCosting CostPlan(const Plan& plan, const EssPoint& q) const;

  /// Total cost only — allocation-free fast path (hot in contour
  /// coverage computation and exhaustive MSO sweeps).
  double PlanCost(const Plan& plan, const EssPoint& q) const {
    double rows = 0.0;
    double cost = 0.0;
    CostNodeFast(plan.root(), q, &rows, &cost);
    return cost;
  }

  const CardinalityEstimator& estimator() const { return estimator_; }
  const CostModel& cost_model() const { return cost_model_; }
  const Query& query() const { return *query_; }

 private:
  struct DpCell;

  /// Runs the (mask, state) DP; returns the table of cells. `states` is
  /// D+1: state 0 = no unlearned epp in subtree, state d+1 = first
  /// unlearned epp is dimension d.
  std::vector<DpCell> RunDp(const EssPoint& q,
                            const std::vector<bool>& unlearned) const;

  std::unique_ptr<PlanNode> Reconstruct(const std::vector<DpCell>& dp,
                                        uint64_t mask, int state) const;

  double CostNode(const PlanNode& node, const EssPoint& q,
                  PlanCosting* out) const;
  void CostNodeFast(const PlanNode& node, const EssPoint& q, double* rows,
                    double* cost) const;

  const Catalog* catalog_;
  const Query* query_;
  CardinalityEstimator estimator_;
  CostModel cost_model_;

  // Precomputed query structure.
  int num_tables_;
  int num_states_;  // query->num_epps() + 1
  std::vector<uint64_t> join_masks_;            // per join index
  std::vector<std::vector<int>> table_filters_;  // filters per table index
  /// Per join index: query-table id usable as the probed inner of an
  /// index nested-loop join (a hash index exists on its join column), or
  /// -1. Both sides may qualify; we store a bitmask of the two table ids.
  std::vector<uint64_t> inlj_inner_mask_;
};

}  // namespace robustqp

#endif  // ROBUSTQP_OPTIMIZER_OPTIMIZER_H_
